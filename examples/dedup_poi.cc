// dedup_poi: near-duplicate detection over single spatio-textual points —
// the original use case of spatio-textual similarity joins (Bouros et al.)
// that the paper builds on. Runs the PPJ-C grid join over a Flickr-like
// photo corpus and reports duplicate clusters (photos of the same POI with
// nearly identical tags taken at nearly the same spot).
//
//   $ ./dedup_poi [num_users] [seed]
//
// Demonstrates: the single-point ST-SJOIN layer (PPJCSelfJoin) under the
// point-set API.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/timer.h"
#include "datagen/generator.h"
#include "datagen/presets.h"
#include "stjoin/ppjc.h"

int main(int argc, char** argv) {
  const size_t num_users = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 150;
  const uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  const stps::ObjectDatabase db = stps::GenerateDataset(
      stps::PresetSpec(stps::DatasetKind::kFlickrLike, num_users, seed));
  std::printf("FlickrLike corpus: %zu photos from %zu users\n",
              db.num_objects(), db.num_users());

  // Two photos are near-duplicates when taken within ~100m (0.001 deg)
  // and their tag sets are 80% Jaccard-similar.
  const stps::MatchThresholds t{0.001, 0.8};
  stps::Timer timer;
  const auto pairs = stps::PPJCSelfJoin(db.AllObjects(), t);
  std::printf("PPJ-C found %zu near-duplicate pairs in %.1f ms\n",
              pairs.size(), timer.ElapsedMillis());

  // Show a few duplicate pairs with their tags.
  const stps::Dictionary& dict = db.dictionary();
  size_t shown = 0;
  for (const auto& [a, b] : pairs) {
    if (shown++ >= 5) break;
    const stps::STObject& oa = db.object(a);
    const stps::STObject& ob = db.object(b);
    std::printf("  photo %u (%s) at (%.4f, %.4f) tags:", oa.id,
                std::string(db.UserName(oa.user)).c_str(), oa.loc.x, oa.loc.y);
    for (const stps::TokenId tok : oa.doc) {
      std::printf(" %s", std::string(dict.TokenString(tok)).c_str());
    }
    std::printf("\n  photo %u (%s) at (%.4f, %.4f) tags:", ob.id,
                std::string(db.UserName(ob.user)).c_str(), ob.loc.x, ob.loc.y);
    for (const stps::TokenId tok : ob.doc) {
      std::printf(" %s", std::string(dict.TokenString(tok)).c_str());
    }
    std::printf("\n  --\n");
  }
  // Count how many objects participate in at least one duplicate pair.
  std::vector<uint8_t> flagged(db.num_objects(), 0);
  for (const auto& [a, b] : pairs) {
    flagged[a] = 1;
    flagged[b] = 1;
  }
  size_t duplicates = 0;
  for (const uint8_t f : flagged) duplicates += f;
  std::printf("%zu of %zu photos (%.1f%%) are part of a duplicate cluster\n",
              duplicates, db.num_objects(),
              100.0 * static_cast<double>(duplicates) /
                  static_cast<double>(db.num_objects()));
  return 0;
}
