// Quickstart: build a tiny database (the paper's Figure 1 scenario) and
// run an STPSJoin query plus its top-k variant.
//
//   $ ./quickstart
//
// Demonstrates: DatabaseBuilder, STPSQuery, RunSTPSJoin, RunTopKSTPSJoin.

#include <cstdio>
#include <string>
#include <vector>

#include "core/stpsjoin.h"

namespace {

void AddObject(stps::DatabaseBuilder& builder, const char* user, double x,
               double y, std::vector<std::string> keywords) {
  builder.AddObject(user, stps::Point{x, y},
                    std::span<const std::string>(keywords));
}

}  // namespace

int main() {
  // The scenario of Figure 1: three users posting geotagged messages
  // around a shopping area, a stadium and a river.
  stps::DatabaseBuilder builder;
  AddObject(builder, "u1", 0.100, 0.100, {"shop", "jeans"});
  AddObject(builder, "u1", 0.800, 0.200, {"tube", "ride"});
  AddObject(builder, "u2", 0.500, 0.520, {"football", "match", "stadium"});
  AddObject(builder, "u2", 0.510, 0.500, {"football", "derby"});
  AddObject(builder, "u2", 0.820, 0.700, {"hurry", "tube", "time"});
  AddObject(builder, "u3", 0.110, 0.105, {"shop", "market"});
  AddObject(builder, "u3", 0.300, 0.800, {"thames", "bridge"});
  AddObject(builder, "u3", 0.860, 0.240, {"bus", "ride"});
  const stps::ObjectDatabase db = std::move(builder).Build();

  std::printf("database: %zu users, %zu objects\n", db.num_users(),
              db.num_objects());

  // STPSJoin: pairs of users whose point sets are at least 30%% mutually
  // matched, where objects match within 0.05 distance and 1/3 Jaccard.
  const stps::STPSQuery query{/*eps_loc=*/0.05, /*eps_doc=*/1.0 / 3,
                              /*eps_u=*/0.3};
  // kAuto lets the cost-model planner pick the execution strategy; every
  // strategy is exact, so the result does not depend on the choice.
  stps::JoinOptions join_options;
  join_options.algorithm = stps::JoinAlgorithm::kAuto;
  const auto pairs = stps::RunSTPSJoin(db, query, join_options);
  std::printf("\nSTPSJoin(eps_loc=%.2f, eps_doc=%.2f, eps_u=%.2f):\n",
              query.eps_loc, query.eps_doc, query.eps_u);
  for (const stps::ScoredUserPair& pair : pairs) {
    std::printf("  %s ~ %s  (sigma = %.3f)\n",
                std::string(db.UserName(pair.a)).c_str(), std::string(db.UserName(pair.b)).c_str(),
                pair.score);
  }
  if (pairs.empty()) std::printf("  (no pairs)\n");

  // Top-k: the 3 most similar user pairs, no eps_u needed.
  const stps::TopKQuery topk{/*eps_loc=*/0.05, /*eps_doc=*/1.0 / 3,
                             /*k=*/3};
  const auto best = stps::RunTopKSTPSJoin(db, topk, stps::TopKAlgorithm::kAuto);
  std::printf("\ntop-%zu STPSJoin:\n", topk.k);
  for (const stps::ScoredUserPair& pair : best) {
    std::printf("  %s ~ %s  (sigma = %.3f)\n",
                std::string(db.UserName(pair.a)).c_str(), std::string(db.UserName(pair.b)).c_str(),
                pair.score);
  }
  return 0;
}
