// nearby_search: the classic location-based-service queries from the
// paper's introduction — "find nearby objects matching certain criteria"
// — served by the SpatialKeywordIndex: a boolean range query and a top-k
// combined-relevance query over a Flickr-like photo corpus.
//
//   $ ./nearby_search [num_users] [seed]
//
// Demonstrates: SpatialKeywordIndex::BooleanRange / TopKRelevant.

#include <cstdio>
#include <cstdlib>

#include "common/timer.h"
#include "datagen/generator.h"
#include "datagen/presets.h"
#include "query/spatial_keyword.h"
#include "text/token_set.h"

int main(int argc, char** argv) {
  const size_t num_users = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 200;
  const uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 11;

  const stps::ObjectDatabase db = stps::GenerateDataset(
      stps::PresetSpec(stps::DatasetKind::kFlickrLike, num_users, seed));
  std::printf("corpus: %zu photos, %zu users, %zu distinct tags\n",
              db.num_objects(), db.num_users(), db.dictionary().size());

  stps::Timer build_timer;
  const stps::SpatialKeywordIndex index(db);
  std::printf("index built in %.1f ms\n\n", build_timer.ElapsedMillis());

  // Query around the corpus centre with the two most frequent tags.
  const stps::Rect& bounds = db.bounds();
  const stps::Point centre{(bounds.min_x + bounds.max_x) / 2,
                           (bounds.min_y + bounds.max_y) / 2};
  stps::TokenVector popular;
  if (db.dictionary().size() >= 2) {
    popular = {static_cast<stps::TokenId>(db.dictionary().size() - 1),
               static_cast<stps::TokenId>(db.dictionary().size() - 2)};
    stps::NormalizeTokenSet(&popular);
  }

  stps::Timer range_timer;
  const auto in_range = index.BooleanRange(centre, 0.02, popular);
  std::printf("boolean range query (r=0.02, %zu required tags): %zu hits "
              "in %.2f ms\n",
              popular.size(), in_range.size(), range_timer.ElapsedMillis());
  for (size_t i = 0; i < std::min<size_t>(3, in_range.size()); ++i) {
    const stps::STObject& o = db.object(in_range[i]);
    std::printf("  photo %u by %s at (%.4f, %.4f)\n", o.id,
                std::string(db.UserName(o.user)).c_str(), o.loc.x, o.loc.y);
  }

  stps::Timer topk_timer;
  const auto best = index.TopKRelevant(centre, popular, 5, /*alpha=*/0.5);
  std::printf("\ntop-5 by combined relevance (alpha=0.5): %.2f ms\n",
              topk_timer.ElapsedMillis());
  const stps::Dictionary& dict = db.dictionary();
  for (const auto& hit : best) {
    const stps::STObject& o = db.object(hit.id);
    std::printf("  score %.3f photo %u (%s) tags:", hit.score, o.id,
                std::string(db.UserName(o.user)).c_str());
    for (const stps::TokenId t : o.doc) {
      std::printf(" %s", std::string(dict.TokenString(t)).c_str());
    }
    std::printf("\n");
  }
  return 0;
}
