// tune_thresholds: when no prior knowledge suggests eps_loc/eps_doc/eps_u
// values, the auto-tuner (paper Section 5.6) discovers thresholds that
// yield a requested result-set size.
//
//   $ ./tune_thresholds [target_size] [num_users] [seed]
//
// Demonstrates: TuneThresholds and its iteration/time reporting.

#include <cstdio>
#include <cstdlib>

#include "core/tuning.h"
#include "datagen/generator.h"
#include "datagen/presets.h"

int main(int argc, char** argv) {
  const size_t target = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 10;
  const size_t num_users =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 200;
  const uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 3;

  const stps::ObjectDatabase db = stps::GenerateDataset(
      stps::PresetSpec(stps::DatasetKind::kFlickrLike, num_users, seed));
  std::printf("FlickrLike: %zu users, %zu objects; target result size %zu\n",
              db.num_users(), db.num_objects(), target);

  stps::TuningOptions options;
  options.initial = {/*eps_loc=*/0.01, /*eps_doc=*/0.1, /*eps_u=*/0.05};
  options.target_size = target;
  options.seed = seed;
  const stps::TuningResult result = stps::TuneThresholds(db, options);

  std::printf("initial S-PPJ-F run: %.1f ms\n", result.initial_join_millis);
  std::printf("tuning: %zu iterations in %.1f ms, %s\n", result.iterations,
              result.tuning_millis,
              result.converged ? "converged" : "NOT converged");
  std::printf("thresholds: eps_loc=%.5f eps_doc=%.3f eps_u=%.3f -> %zu "
              "pairs\n",
              result.thresholds.eps_loc, result.thresholds.eps_doc,
              result.thresholds.eps_u, result.result.size());
  for (const stps::ScoredUserPair& pair : result.result) {
    std::printf("  %-6s ~ %-6s sigma=%.3f\n", std::string(db.UserName(pair.a)).c_str(),
                std::string(db.UserName(pair.b)).c_str(), pair.score);
  }
  return 0;
}
