// communities: the paper's motivating analysis — "discover groups of
// similar users". Runs STPSJoin to build a user-similarity graph, then
// extracts connected components (union-find) as geo-textual communities.
//
//   $ ./communities [num_users] [seed]
//
// Demonstrates: turning STPSJoin output into a downstream mining result.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <numeric>
#include <vector>

#include "core/stpsjoin.h"
#include "datagen/generator.h"
#include "datagen/presets.h"

namespace {

// Minimal union-find over user ids.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }
  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(uint32_t a, uint32_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<uint32_t> parent_;
};

}  // namespace

int main(int argc, char** argv) {
  const size_t num_users = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 300;
  const uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 21;

  const stps::ObjectDatabase db = stps::GenerateDataset(
      stps::PresetSpec(stps::DatasetKind::kGeoTextLike, num_users, seed));
  std::printf("corpus: %zu posts from %zu users\n", db.num_objects(),
              db.num_users());

  stps::STPSQuery query =
      stps::DefaultQuery(stps::DatasetKind::kGeoTextLike);
  query.eps_u = 0.2;  // community edges need moderate similarity
  stps::JoinOptions join_options;
  join_options.algorithm = stps::JoinAlgorithm::kAuto;
  const auto pairs = stps::RunSTPSJoin(db, query, join_options);
  std::printf("similarity graph: %zu edges at sigma >= %.2f\n",
              pairs.size(), query.eps_u);

  UnionFind components(db.num_users());
  for (const stps::ScoredUserPair& pair : pairs) {
    components.Union(pair.a, pair.b);
  }
  std::map<uint32_t, std::vector<stps::UserId>> groups;
  for (stps::UserId u = 0; u < db.num_users(); ++u) {
    groups[components.Find(u)].push_back(u);
  }
  std::vector<const std::vector<stps::UserId>*> communities;
  for (const auto& [root, members] : groups) {
    if (members.size() >= 2) communities.push_back(&members);
  }
  std::sort(communities.begin(), communities.end(),
            [](const auto* a, const auto* b) { return a->size() > b->size(); });

  std::printf("%zu geo-textual communities (>= 2 members):\n",
              communities.size());
  size_t shown = 0;
  for (const auto* members : communities) {
    if (shown++ >= 8) break;
    std::printf("  [%zu members]", members->size());
    for (size_t i = 0; i < std::min<size_t>(6, members->size()); ++i) {
      std::printf(" %s", std::string(db.UserName((*members)[i])).c_str());
    }
    if (members->size() > 6) std::printf(" ...");
    std::printf("\n");
  }
  if (communities.empty()) {
    std::printf("  none — loosen the thresholds or add users\n");
  }
  return 0;
}
