// similar_users: the paper's motivating LBSN scenario at scale — generate
// a Twitter-like corpus of geotagged posts, find all similar user pairs
// with S-PPJ-F, and compare the four join algorithms' wall-clock times.
//
//   $ ./similar_users [num_users] [seed]
//
// Demonstrates: dataset presets, per-algorithm timing, result inspection.

#include <cstdio>
#include <cstdlib>

#include "common/timer.h"
#include "core/stpsjoin.h"
#include "datagen/dataset_stats.h"
#include "datagen/generator.h"
#include "datagen/presets.h"

int main(int argc, char** argv) {
  const size_t num_users = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 250;
  const uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  std::printf("generating TwitterLike dataset with %zu users...\n",
              num_users);
  const stps::ObjectDatabase db = stps::GenerateDataset(
      stps::PresetSpec(stps::DatasetKind::kTwitterLike, num_users, seed));
  const stps::DatasetStats stats = stps::ComputeDatasetStats(db);
  std::printf("%s\n", stats.ToTableRow("TwitterLike").c_str());

  stps::STPSQuery query = stps::DefaultQuery(stps::DatasetKind::kTwitterLike);
  // Slightly relaxed user threshold so small instances return results.
  query.eps_u = 0.2;

  std::printf("\nSTPSJoin(eps_loc=%g, eps_doc=%g, eps_u=%g)\n", query.eps_loc,
              query.eps_doc, query.eps_u);
  std::vector<stps::ScoredUserPair> result;
  for (const stps::JoinAlgorithm algorithm :
       {stps::JoinAlgorithm::kSPPJC, stps::JoinAlgorithm::kSPPJB,
        stps::JoinAlgorithm::kSPPJF, stps::JoinAlgorithm::kSPPJD}) {
    stps::JoinOptions options;
    options.algorithm = algorithm;
    stps::Timer timer;
    result = stps::RunSTPSJoin(db, query, options);
    std::printf("  %-10s %8.1f ms   (%zu pairs)\n",
                std::string(stps::JoinAlgorithmName(algorithm)).c_str(),
                timer.ElapsedMillis(), result.size());
  }

  std::printf("\nmost similar users:\n");
  size_t shown = 0;
  for (const stps::ScoredUserPair& pair : result) {
    if (shown++ >= 10) break;
    std::printf("  %-6s ~ %-6s sigma=%.3f  (%zu vs %zu objects)\n",
                std::string(db.UserName(pair.a)).c_str(), std::string(db.UserName(pair.b)).c_str(),
                pair.score, db.UserObjectCount(pair.a),
                db.UserObjectCount(pair.b));
  }
  if (result.empty()) {
    std::printf("  none at these thresholds — try more users or looser "
                "thresholds\n");
  }
  return 0;
}
