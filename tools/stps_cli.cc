// stps_cli — command-line front end for the library.
//
//   stps_cli generate <kind> <num_users> <out.tsv> [seed]
//       Generate a synthetic dataset (kind: flickr | twitter | geotext |
//       checkin).
//   stps_cli stats <data.tsv>
//       Print Table-1-style descriptive statistics.
//   stps_cli join <data.tsv> <eps_loc> <eps_doc> <eps_u> [--sketch]
//       [--explain] [--mapped] [--shards N] [--prefetch] [algorithm]
//       Run STPSJoin (algorithm: auto | sppjc | sppjb | sppjf | sppjd |
//       brute; default auto — the cost-model planner picks). Prints one
//       "userA userB sigma" row per pair. --sketch draws candidates from
//       the sketch layer (same results). --explain prints the chosen
//       plan and an estimated-vs-actual counter table as JSON instead of
//       the pairs. --mapped opens a .stpsdb v3 snapshot via mmap (O(1)
//       open, pages on demand). --shards N partitions the join by user
//       range onto N threads (bit-identical results; implies sppjf when
//       the algorithm is auto). --prefetch advises the kernel about the
//       scan (madvise) before the join — useful with --mapped.
//   stps_cli topk <data.tsv> <eps_loc> <eps_doc> <k> [--sketch]
//       [--explain] [--mapped] [variant]
//       Run top-k STPSJoin (variant: auto | f | s | p | brute; default
//       auto).
//   stps_cli tune <data.tsv> <target_size> <eps_loc0> <eps_doc0> <eps_u0>
//       Auto-tune thresholds toward a result-set size.
//   stps_cli serve <data.tsv|data.stpsdb|-> <port> [--workers N]
//       [--queue N] [--publish-every N] [--mapped] [--explain]
//       Long-running concurrent query server over an updatable database
//       (line protocol; see server/server.h). "-" starts empty; inserts
//       auto-publish a new epoch every N mutations (default 256).
//       --mapped serves an mmap'd v3 snapshot read-only: queries page
//       the file on demand; INSERT/DELETE/PUBLISH answer "ERR read-only
//       server". --explain prints the update-layer publish counters
//       (delta vs full publishes, blocks reused/rebuilt) at shutdown.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "common/parse.h"
#include "common/timer.h"
#include "core/stpsjoin.h"
#include "core/tuning.h"
#include "core/update.h"
#include "planner/planner.h"
#include "datagen/dataset_stats.h"
#include "datagen/generator.h"
#include "datagen/presets.h"
#include "io/binary.h"
#include "io/tsv.h"
#include "server/server.h"

namespace {

using namespace stps;

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  stps_cli generate <flickr|twitter|geotext|checkin> <num_users> "
      "<out.tsv> "
      "[seed]\n"
      "  stps_cli stats <data.tsv>\n"
      "  stps_cli convert <in.tsv|in.stpsdb> <out.tsv|out.stpsdb>\n"
      "  stps_cli join <data.tsv> <eps_loc> <eps_doc> <eps_u> [--sketch] "
      "[--explain] [--mapped] [--shards N] [--prefetch] "
      "[auto|sppjc|sppjb|sppjf|sppjd|brute]\n"
      "  stps_cli topk <data.tsv> <eps_loc> <eps_doc> <k> [--sketch] "
      "[--explain] [--mapped] [auto|f|s|p|brute]\n"
      "  stps_cli tune <data.tsv> <target_size> <eps_loc0> <eps_doc0> "
      "<eps_u0>\n"
      "  stps_cli serve <data.tsv|data.stpsdb|-> <port> [--workers N] "
      "[--queue N] [--publish-every N] [--mapped] [--explain]\n");
  return 2;
}

// Strict argv parsing (common/parse.h): the strtod/strtoul family would
// quietly turn a mistyped `join db x y z` into eps = 0.0. Each wrapper
// names the offending argument before the usage text goes out.
bool ParseDoubleArg(const char* what, const char* arg, double* out) {
  if (ParseDouble(arg, out)) return true;
  std::fprintf(stderr, "error: invalid %s: '%s'\n", what, arg);
  return false;
}

bool ParseSizeArg(const char* what, const char* arg, size_t* out) {
  if (ParseSize(arg, out)) return true;
  std::fprintf(stderr, "error: invalid %s: '%s'\n", what, arg);
  return false;
}

bool ParseUint64Arg(const char* what, const char* arg, uint64_t* out) {
  if (ParseUint64(arg, out)) return true;
  std::fprintf(stderr, "error: invalid %s: '%s'\n", what, arg);
  return false;
}

bool ParseIntArg(const char* what, const char* arg, int min_value,
                 int max_value, int* out) {
  if (ParseInt(arg, min_value, max_value, out)) return true;
  std::fprintf(stderr, "error: invalid %s: '%s' (expected %d..%d)\n", what,
               arg, min_value, max_value);
  return false;
}

bool ParseKind(const std::string& name, DatasetKind* kind) {
  if (name == "flickr") {
    *kind = DatasetKind::kFlickrLike;
  } else if (name == "twitter") {
    *kind = DatasetKind::kTwitterLike;
  } else if (name == "geotext") {
    *kind = DatasetKind::kGeoTextLike;
  } else if (name == "checkin") {
    *kind = DatasetKind::kCheckinSparse;
  } else {
    return false;
  }
  return true;
}

bool HasSuffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool LoadDatabase(const std::string& path, ObjectDatabase* db,
                  bool mapped = false) {
  if (mapped && !HasSuffix(path, ".stpsdb")) {
    std::fprintf(stderr, "error: --mapped requires a .stpsdb snapshot\n");
    return false;
  }
  Result<ObjectDatabase> loaded =
      mapped                       ? ReadBinaryMapped(path)
      : HasSuffix(path, ".stpsdb") ? ReadBinary(path)
                                   : ReadTsv(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
    return false;
  }
  *db = std::move(loaded).value();
  std::fprintf(stderr, "loaded %zu objects / %zu users from %s%s\n",
               db->num_objects(), db->num_users(), path.c_str(),
               mapped ? " (mmap)" : "");
  return true;
}

int CmdGenerate(int argc, char** argv) {
  if (argc < 5) return Usage();
  DatasetKind kind;
  if (!ParseKind(argv[2], &kind)) return Usage();
  size_t num_users = 0;
  uint64_t seed = 42;
  if (!ParseSizeArg("num_users", argv[3], &num_users) || num_users == 0) {
    return Usage();
  }
  const std::string out_path = argv[4];
  if (argc > 5 && !ParseUint64Arg("seed", argv[5], &seed)) return Usage();
  const ObjectDatabase db =
      GenerateDataset(PresetSpec(kind, num_users, seed));
  const Status status = HasSuffix(out_path, ".stpsdb")
                            ? WriteBinary(db, out_path)
                            : WriteTsv(db, out_path);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %zu objects to %s\n", db.num_objects(),
               out_path.c_str());
  return 0;
}

int CmdConvert(int argc, char** argv) {
  if (argc < 4) return Usage();
  ObjectDatabase db;
  if (!LoadDatabase(argv[2], &db)) return 1;
  const std::string out_path = argv[3];
  const Status status = HasSuffix(out_path, ".stpsdb")
                            ? WriteBinary(db, out_path)
                            : WriteTsv(db, out_path);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %zu objects to %s\n", db.num_objects(),
               out_path.c_str());
  return 0;
}

int CmdStats(int argc, char** argv) {
  if (argc < 3) return Usage();
  ObjectDatabase db;
  if (!LoadDatabase(argv[2], &db)) return 1;
  const DatasetStats stats = ComputeDatasetStats(db);
  std::printf("%-12s %9s %7s   %-16s  %-18s  %-17s\n", "Dataset", "Objects",
              "Users", "Tokens/Object", "Objects/Token", "Objects/User");
  std::printf("%s\n", stats.ToTableRow(argv[2]).c_str());
  std::printf("distinct tokens: %zu\n", stats.num_distinct_tokens);
  return 0;
}

// Emits the --explain JSON document: the executed plan, the planner's
// candidate table, and the estimated-vs-actual counter comparison.
void PrintExplainJson(const char* command, const PhysicalPlan& plan,
                      const JoinStats& stats, size_t result_pairs,
                      double elapsed_ms) {
  std::printf("{\n  \"command\": \"%s\",\n", command);
  std::printf(
      "  \"plan\": {\"shape\": \"%s\", \"threads\": %d, \"grain\": %zu, "
      "\"rtree_fanout\": %d, \"cost_units\": %.6g, \"predicted_ms\": "
      "%.6g},\n",
      PlanShapeName(plan.shape).c_str(), plan.shape.threads, plan.grain,
      plan.rtree_fanout, plan.cost_units, plan.predicted_ms);
  std::printf("  \"considered\": [");
  for (size_t i = 0; i < plan.considered.size(); ++i) {
    const PlanCandidate& c = plan.considered[i];
    std::printf(
        "%s\n    {\"shape\": \"%s\", \"threads\": %d, \"cost_units\": "
        "%.6g, \"predicted_ms\": %.6g}",
        i == 0 ? "" : ",", PlanShapeName(c.shape).c_str(), c.shape.threads,
        c.cost_units, c.predicted_ms);
  }
  std::printf("\n  ],\n");
  std::printf(
      "  \"estimated\": {\"cells_visited\": %.6g, \"candidate_pairs\": "
      "%.6g, \"text_survivors\": %.6g, \"verified_pairs\": %.6g},\n",
      plan.estimate.cells_visited, plan.estimate.candidate_pairs,
      plan.estimate.text_survivors, plan.estimate.verified_pairs);
  std::printf(
      "  \"actual\": {\"cells_visited\": %llu, \"pairs_candidate\": %llu, "
      "\"pairs_verified\": %llu, \"matches_found\": %llu, "
      "\"sketch_candidate_pairs\": %llu, \"planner_estimated_candidates\": "
      "%llu, \"planner_plan_switches\": %llu},\n",
      static_cast<unsigned long long>(stats.cells_visited),
      static_cast<unsigned long long>(stats.pairs_candidate),
      static_cast<unsigned long long>(stats.pairs_verified),
      static_cast<unsigned long long>(stats.matches_found),
      static_cast<unsigned long long>(stats.sketch_candidate_pairs),
      static_cast<unsigned long long>(stats.planner_estimated_candidates),
      static_cast<unsigned long long>(stats.planner_plan_switches));
  std::printf("  \"result_pairs\": %zu,\n  \"elapsed_ms\": %.3f\n}\n",
              result_pairs, elapsed_ms);
}

int CmdJoin(int argc, char** argv) {
  if (argc < 6) return Usage();
  STPSQuery query;
  if (!ParseDoubleArg("eps_loc", argv[3], &query.eps_loc) ||
      !ParseDoubleArg("eps_doc", argv[4], &query.eps_doc) ||
      !ParseDoubleArg("eps_u", argv[5], &query.eps_u)) {
    return Usage();
  }
  JoinOptions options;
  options.algorithm = JoinAlgorithm::kAuto;
  bool explain = false;
  bool mapped = false;
  for (int i = 6; i < argc; ++i) {
    const std::string name = argv[i];
    if (name == "auto") {
      options.algorithm = JoinAlgorithm::kAuto;
    } else if (name == "sppjc") {
      options.algorithm = JoinAlgorithm::kSPPJC;
    } else if (name == "sppjb") {
      options.algorithm = JoinAlgorithm::kSPPJB;
    } else if (name == "sppjf") {
      options.algorithm = JoinAlgorithm::kSPPJF;
    } else if (name == "sppjd") {
      options.algorithm = JoinAlgorithm::kSPPJD;
    } else if (name == "brute") {
      options.algorithm = JoinAlgorithm::kBruteForce;
    } else if (name == "--sketch") {
      query.sketch.enabled = true;
    } else if (name == "--explain") {
      explain = true;
    } else if (name == "--mapped") {
      mapped = true;
    } else if (name == "--prefetch") {
      options.prefetch = true;
    } else if (name == "--shards" && i + 1 < argc) {
      if (!ParseIntArg("shards", argv[++i], 1, 256, &options.shards)) {
        return Usage();
      }
    } else {
      return Usage();
    }
  }
  // Sharded execution runs the S-PPJ-F pipeline; pin the algorithm so
  // kAuto cannot plan a sketch run that would bypass the shard driver.
  if (options.shards > 1 && options.algorithm == JoinAlgorithm::kAuto) {
    options.algorithm = JoinAlgorithm::kSPPJF;
  }
  ObjectDatabase db;
  if (!LoadDatabase(argv[2], &db, mapped)) return 1;
  const PhysicalPlan plan = PlanSTPSJoin(db, query, options);
  JoinStats stats;
  Timer timer;
  const auto result = RunSTPSJoin(db, query, options, &stats);
  const double elapsed_ms = timer.ElapsedMillis();
  const std::string executed =
      options.algorithm == JoinAlgorithm::kAuto
          ? PlanShapeName(plan.shape)
          : std::string(JoinAlgorithmName(options.algorithm));
  std::fprintf(stderr, "%s: %zu pairs in %.1f ms\n", executed.c_str(),
               result.size(), elapsed_ms);
  if (explain) {
    std::fprintf(stderr, "%s", ExplainPlan(plan, &stats).c_str());
    PrintExplainJson("join", plan, stats, result.size(), elapsed_ms);
    return 0;
  }
  for (const ScoredUserPair& pair : result) {
    std::printf("%s\t%s\t%.6f\n", std::string(db.UserName(pair.a)).c_str(),
                std::string(db.UserName(pair.b)).c_str(), pair.score);
  }
  return 0;
}

int CmdTopK(int argc, char** argv) {
  if (argc < 6) return Usage();
  TopKQuery query;
  if (!ParseDoubleArg("eps_loc", argv[3], &query.eps_loc) ||
      !ParseDoubleArg("eps_doc", argv[4], &query.eps_doc) ||
      !ParseSizeArg("k", argv[5], &query.k) || query.k == 0) {
    return Usage();
  }
  TopKAlgorithm algorithm = TopKAlgorithm::kAuto;
  bool explain = false;
  bool mapped = false;
  for (int i = 6; i < argc; ++i) {
    const std::string name = argv[i];
    if (name == "auto") {
      algorithm = TopKAlgorithm::kAuto;
    } else if (name == "f") {
      algorithm = TopKAlgorithm::kF;
    } else if (name == "s") {
      algorithm = TopKAlgorithm::kS;
    } else if (name == "p") {
      algorithm = TopKAlgorithm::kP;
    } else if (name == "brute") {
      algorithm = TopKAlgorithm::kBruteForce;
    } else if (name == "--sketch") {
      query.sketch.enabled = true;
    } else if (name == "--explain") {
      explain = true;
    } else if (name == "--mapped") {
      mapped = true;
    } else {
      return Usage();
    }
  }
  ObjectDatabase db;
  if (!LoadDatabase(argv[2], &db, mapped)) return 1;
  const PhysicalPlan plan = PlanTopKSTPSJoin(db, query);
  JoinStats stats;
  Timer timer;
  const auto result = RunTopKSTPSJoin(db, query, algorithm, &stats);
  const double elapsed_ms = timer.ElapsedMillis();
  const std::string executed = algorithm == TopKAlgorithm::kAuto
                                   ? PlanShapeName(plan.shape)
                                   : std::string(TopKAlgorithmName(algorithm));
  std::fprintf(stderr, "%s: %zu pairs in %.1f ms\n", executed.c_str(),
               result.size(), elapsed_ms);
  if (explain) {
    std::fprintf(stderr, "%s", ExplainPlan(plan, &stats).c_str());
    PrintExplainJson("topk", plan, stats, result.size(), elapsed_ms);
    return 0;
  }
  for (const ScoredUserPair& pair : result) {
    std::printf("%s\t%s\t%.6f\n", std::string(db.UserName(pair.a)).c_str(),
                std::string(db.UserName(pair.b)).c_str(), pair.score);
  }
  return 0;
}

int CmdTune(int argc, char** argv) {
  if (argc < 7) return Usage();
  ObjectDatabase db;
  if (!LoadDatabase(argv[2], &db)) return 1;
  TuningOptions options;
  if (!ParseSizeArg("target_size", argv[3], &options.target_size) ||
      !ParseDoubleArg("eps_loc0", argv[4], &options.initial.eps_loc) ||
      !ParseDoubleArg("eps_doc0", argv[5], &options.initial.eps_doc) ||
      !ParseDoubleArg("eps_u0", argv[6], &options.initial.eps_u)) {
    return Usage();
  }
  const TuningResult result = TuneThresholds(db, options);
  std::fprintf(stderr,
               "initial join (planner): %.1f ms; tuning: %zu iterations in %.1f "
               "ms; %s\n",
               result.initial_join_millis, result.iterations,
               result.tuning_millis,
               result.converged ? "converged" : "NOT converged");
  std::printf("# eps_loc=%.6f eps_doc=%.4f eps_u=%.4f -> %zu pairs\n",
              result.thresholds.eps_loc, result.thresholds.eps_doc,
              result.thresholds.eps_u, result.result.size());
  for (const ScoredUserPair& pair : result.result) {
    std::printf("%s\t%s\t%.6f\n", std::string(db.UserName(pair.a)).c_str(),
                std::string(db.UserName(pair.b)).c_str(), pair.score);
  }
  return 0;
}

std::atomic<bool> g_interrupted{false};

void HandleSignal(int) { g_interrupted.store(true); }

// serve: long-running concurrent query server (see server/server.h for
// the line protocol). "-" starts with an empty database; otherwise the
// dataset is loaded and seeded into the updatable store as epoch 1.
// Prints "LISTENING <port>" on stdout once ready. Stops on SIGINT/
// SIGTERM or a client's SHUTDOWN command.
int CmdServe(int argc, char** argv) {
  if (argc < 4) return Usage();
  const std::string data_path = argv[2];
  ServerOptions server_options;
  if (!ParseIntArg("port", argv[3], 0, 65535, &server_options.port)) {
    return Usage();
  }
  size_t publish_every = 256;
  bool mapped = false;
  bool explain = false;
  for (int i = 4; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--workers" && i + 1 < argc) {
      if (!ParseIntArg("workers", argv[++i], 1, 64,
                       &server_options.num_workers)) {
        return Usage();
      }
    } else if (flag == "--queue" && i + 1 < argc) {
      size_t queue = 0;
      if (!ParseSizeArg("queue", argv[++i], &queue) || queue == 0) {
        return Usage();
      }
      server_options.max_pending = queue;
    } else if (flag == "--publish-every" && i + 1 < argc) {
      if (!ParseSizeArg("publish-every", argv[++i], &publish_every)) {
        return Usage();
      }
    } else if (flag == "--mapped") {
      mapped = true;
    } else if (flag == "--explain") {
      explain = true;
    } else {
      return Usage();
    }
  }

  UpdateOptions update_options;
  update_options.publish_threshold = publish_every;
  UpdatableDatabase updatable(update_options);
  std::unique_ptr<QueryServer> server;
  size_t serve_objects = 0;
  if (mapped) {
    // Read-only over the mmap'd snapshot: the file pages in on demand,
    // nothing is copied, and write commands are rejected.
    if (data_path == "-") {
      std::fprintf(stderr, "error: --mapped requires a .stpsdb snapshot\n");
      return 1;
    }
    auto snapshot = std::make_shared<DatabaseSnapshot>();
    snapshot->epoch = 1;
    if (!LoadDatabase(data_path, &snapshot->db, /*mapped=*/true)) return 1;
    serve_objects = snapshot->db.num_objects();
    server = std::make_unique<QueryServer>(std::move(snapshot),
                                           server_options);
  } else {
    if (data_path != "-") {
      ObjectDatabase db;
      if (!LoadDatabase(data_path, &db)) return 1;
      updatable.SeedFrom(db);
    }
    serve_objects = updatable.live_objects();
    server = std::make_unique<QueryServer>(&updatable, server_options);
  }

  const Status status = server->Start();
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("LISTENING %d\n", server->port());
  std::fflush(stdout);
  std::fprintf(stderr,
               "serving epoch %llu (%zu objects%s) on %s:%d — SHUTDOWN "
               "command or SIGINT stops\n",
               static_cast<unsigned long long>(mapped ? 1 : updatable.epoch()),
               serve_objects, mapped ? ", read-only mmap" : "",
               server_options.host.c_str(), server->port());

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!server->shutdown_requested() && !g_interrupted.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server->Shutdown();
  const ServerStats stats = server->stats();
  std::fprintf(stderr,
               "shut down cleanly: %llu connections (%llu rejected), %llu "
               "requests (%llu failed), final epoch %llu\n",
               static_cast<unsigned long long>(stats.connections_accepted),
               static_cast<unsigned long long>(stats.connections_rejected),
               static_cast<unsigned long long>(stats.requests_served),
               static_cast<unsigned long long>(stats.requests_failed),
               static_cast<unsigned long long>(mapped ? 1 : updatable.epoch()));
  if (explain && !mapped) {
    std::fprintf(stderr, "%s",
                 FormatUpdateStats(updatable.stats()).c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "generate") return CmdGenerate(argc, argv);
  if (command == "stats") return CmdStats(argc, argv);
  if (command == "convert") return CmdConvert(argc, argv);
  if (command == "join") return CmdJoin(argc, argv);
  if (command == "topk") return CmdTopK(argc, argv);
  if (command == "tune") return CmdTune(argc, argv);
  if (command == "serve") return CmdServe(argc, argv);
  return Usage();
}
