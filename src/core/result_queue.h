// Bounded best-k container under the TopKBetter total order, shared by
// every top-k driver (core/topk.cc and the sketch-candidate driver in
// sketch/sketch_join.cc).
//
// Tie semantics at the threshold: a candidate whose score exactly equals
// the tail's enters iff it beats the tail on the id order (TopKBetter is a
// total order, so Offer is deterministic and independent of arrival
// order). Every pruning stage upstream must therefore keep candidates
// whose score can still *equal* Threshold() — which is why those prunes go
// through the exact counting predicates of common/predicates.h and never
// through a rounded quotient: the sequential drivers and the parallel
// drivers (thread-local queues merged via Offer at the end) then resolve
// boundary ties identically.

#ifndef STPS_CORE_RESULT_QUEUE_H_
#define STPS_CORE_RESULT_QUEUE_H_

#include <set>
#include <vector>

#include "core/similarity.h"

namespace stps {

struct TopKBetterCmp {
  bool operator()(const ScoredUserPair& x, const ScoredUserPair& y) const {
    return TopKBetter(x, y);
  }
};

class ResultQueue {
 public:
  explicit ResultQueue(size_t k) : k_(k) {}

  bool full() const { return pairs_.size() >= k_; }

  /// The score a pair must reach to possibly enter (0 until full).
  double Threshold() const { return full() ? Tail().score : 0.0; }

  /// Offers a pair; keeps only the best k.
  void Offer(const ScoredUserPair& pair) {
    if (full() && !TopKBetter(pair, Tail())) return;
    pairs_.insert(pair);
    if (pairs_.size() > k_) pairs_.erase(std::prev(pairs_.end()));
  }

  std::vector<ScoredUserPair> TakeSorted() const {
    return std::vector<ScoredUserPair>(pairs_.begin(), pairs_.end());
  }

 private:
  const ScoredUserPair& Tail() const { return *pairs_.rbegin(); }

  size_t k_;
  std::set<ScoredUserPair, TopKBetterCmp> pairs_;
};

}  // namespace stps

#endif  // STPS_CORE_RESULT_QUEUE_H_
