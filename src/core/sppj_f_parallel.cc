#include "core/sppj_f_parallel.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "common/predicates.h"
#include "core/parallel_util.h"
#include "core/ppjb.h"
#include "core/user_grid.h"

namespace stps {

// One worker's pass over a user: identical filter/refine logic to the
// sequential S-PPJ-F, except that the index is complete and candidates
// are restricted to earlier users in the total order.
void SPPJFProcessUser(const ObjectDatabase& db, const UserGrid& grid,
                      const SpatioTextualGridIndex& index,
                      const STPSQuery& query, UserId u,
                      std::vector<ScoredUserPair>* out, JoinStats* stats) {
  const MatchThresholds t = query.match_thresholds();
  const UserLayout& cu = grid.UserCells(u);
  const size_t nu = db.UserObjectCount(u);
  // Per-worker epoch-stamped accumulator and scratch (user_grid.h):
  // starting a user costs O(1), no map rehash or per-call allocation.
  thread_local UserCandidateTable<CandidateCells> candidates;
  candidates.BeginRound(db.num_users());
  thread_local std::vector<CellId> neighbors;

  thread_local TokenVector tokens;
  for (const UserPartition& cell : cu) {
    DistinctTokens(cell.objects, &tokens);
    neighbors.clear();
    grid.geometry().AppendNeighborhood(cell.id, /*include_self=*/true,
                                       &neighbors);
    for (const CellId other : neighbors) {
      if (stats != nullptr) ++stats->cells_visited;
      for (const TokenId token : tokens) {
        const std::vector<UserId>* users = index.TokenUsers(other, token);
        if (users == nullptr) continue;
        for (const UserId candidate : *users) {
          if (candidate >= u) break;  // lists are ascending by user id
          CandidateCells& cc = candidates[candidate];
          // Opportunistic growth limiting only; SortUnique below is the
          // authoritative dedup (their_cells interleaves across the
          // outer cell loop, so back() checks cannot catch everything).
          if (cc.my_cells.empty() || cc.my_cells.back() != cell.id) {
            cc.my_cells.push_back(cell.id);
          }
          if (cc.their_cells.empty() || cc.their_cells.back() != other) {
            cc.their_cells.push_back(other);
          }
        }
      }
    }
  }
  if (stats != nullptr) {
    const size_t colocated =
        CountColocatedEarlierUsers(grid.geometry(), index, cu, u);
    stats->pairs_candidate += candidates.size();
    stats->pairs_pruned_textual += colocated - candidates.size();
    stats->pairs_pruned_spatial += u - colocated;
  }

  for (const UserId candidate : candidates.SortedTouched()) {
    CandidateCells& cells = candidates[candidate];
    const UserLayout& cv = grid.UserCells(candidate);
    const size_t nv = db.UserObjectCount(candidate);
    SortUnique(&cells.my_cells);
    SortUnique(&cells.their_cells);
    size_t m = 0;
    for (const int64_t c : cells.my_cells) {
      m += PartitionObjectCount(cu, c);
    }
    for (const int64_t c : cells.their_cells) {
      m += PartitionObjectCount(cv, c);
    }
    // Exact counting predicates throughout (common/predicates.h): the
    // sigma_bar prune and the final membership test must agree with the
    // sequential driver decision-for-decision, or the two result sets
    // diverge at pairs whose sigma equals eps_u.
    if (!SigmaAtLeast(m, nu + nv, query.eps_u)) {
      if (stats != nullptr) ++stats->pairs_pruned_count;
      continue;
    }
    if (stats != nullptr) ++stats->pairs_verified;
    size_t matched = 0;
    const double sigma = PPJBPair(cu, nu, cv, nv, grid.geometry(), t,
                                  query.eps_u, stats, &matched);
    if (SigmaAtLeast(matched, nu + nv, query.eps_u)) {
      out->push_back({candidate, u, sigma});
      if (stats != nullptr) ++stats->matches_found;
    }
  }
}

// Builds the complete spatio-textual index (users in id order, so the
// inverted lists are ascending and the u' < u filter can stop early).
void SPPJFBuildFullIndex(const ObjectDatabase& db, const UserGrid& grid,
                         SpatioTextualGridIndex* index) {
  for (UserId u = 0; u < db.num_users(); ++u) {
    index->AddUser(u, grid.UserCells(u));
  }
}

std::vector<ScoredUserPair> SPPJFParallel(const ObjectDatabase& db,
                                          const STPSQuery& query,
                                          const ParallelOptions& parallel,
                                          JoinStats* stats) {
  STPS_CHECK(query.eps_doc > 0.0);
  STPS_CHECK(query.eps_u > 0.0);
  STPS_CHECK(parallel.num_threads >= 1);
  if (db.num_objects() == 0) return {};

  const UserGrid grid(db, query.eps_loc);
  SpatioTextualGridIndex index;
  SPPJFBuildFullIndex(db, grid, &index);

  ThreadPool pool(parallel.num_threads);
  const size_t slots = static_cast<size_t>(pool.num_threads());
  std::vector<std::vector<ScoredUserPair>> per_worker(slots);
  std::vector<JoinStats> worker_stats(slots);
  pool.ParallelForEach(
      0, db.num_users(), parallel.grain, [&](size_t u, int worker) {
        SPPJFProcessUser(db, grid, index, query, static_cast<UserId>(u),
                         &per_worker[static_cast<size_t>(worker)],
                         stats != nullptr
                             ? &worker_stats[static_cast<size_t>(worker)]
                             : nullptr);
      });
  MergeWorkerStats(stats, worker_stats);
  return MergeSortedPairs(&per_worker);
}

std::vector<ScoredUserPair> SPPJFParallel(const ObjectDatabase& db,
                                          const STPSQuery& query,
                                          int num_threads) {
  return SPPJFParallel(db, query, ParallelOptions{num_threads, 0});
}

std::vector<ScoredUserPair> SPPJFParallelHandRolled(const ObjectDatabase& db,
                                                    const STPSQuery& query,
                                                    int num_threads) {
  STPS_CHECK(query.eps_doc > 0.0);
  STPS_CHECK(query.eps_u > 0.0);
  STPS_CHECK(num_threads >= 1);
  std::vector<ScoredUserPair> result;
  if (db.num_objects() == 0) return result;

  const UserGrid grid(db, query.eps_loc);
  SpatioTextualGridIndex index;
  SPPJFBuildFullIndex(db, grid, &index);

  const size_t n = db.num_users();
  std::atomic<uint32_t> next_user{0};
  std::vector<std::vector<ScoredUserPair>> per_thread(
      static_cast<size_t>(num_threads));
  const auto worker = [&](int thread_index) {
    std::vector<ScoredUserPair>& out = per_thread[thread_index];
    for (;;) {
      const uint32_t u = next_user.fetch_add(1, std::memory_order_relaxed);
      if (u >= n) break;
      SPPJFProcessUser(db, grid, index, query, u, &out, nullptr);
    }
  };
  if (num_threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(num_threads);
    for (int i = 0; i < num_threads; ++i) {
      threads.emplace_back(worker, i);
    }
    for (auto& t : threads) t.join();
  }
  for (const auto& partial : per_thread) {
    result.insert(result.end(), partial.begin(), partial.end());
  }
  std::sort(result.begin(), result.end(), PairIdLess);
  return result;
}

}  // namespace stps
