#include "core/sppj_f_parallel.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <unordered_map>

#include "core/ppjb.h"
#include "core/user_grid.h"

namespace stps {

namespace {

struct CandidateCells {
  std::vector<CellId> my_cells;
  std::vector<CellId> their_cells;
};

// One worker's pass over a user: identical filter/refine logic to the
// sequential S-PPJ-F, except that the index is complete and candidates
// are restricted to earlier users in the total order.
void ProcessUser(const ObjectDatabase& db, const UserGrid& grid,
                 const SpatioTextualGridIndex& index, const STPSQuery& query,
                 UserId u, std::vector<ScoredUserPair>* out) {
  const MatchThresholds t = query.match_thresholds();
  const UserPartitionList& cu = grid.UserCells(u);
  const size_t nu = db.UserObjectCount(u);
  std::unordered_map<UserId, CandidateCells> candidates;
  std::vector<CellId> neighbors;

  for (const UserPartition& cell : cu) {
    const TokenVector tokens =
        DistinctTokens(std::span<const ObjectRef>(cell.objects));
    neighbors.clear();
    grid.geometry().AppendNeighborhood(cell.id, /*include_self=*/true,
                                       &neighbors);
    for (const CellId other : neighbors) {
      for (const TokenId token : tokens) {
        const std::vector<UserId>* users = index.TokenUsers(other, token);
        if (users == nullptr) continue;
        for (const UserId candidate : *users) {
          if (candidate >= u) break;  // lists are ascending by user id
          CandidateCells& cc = candidates[candidate];
          if (cc.my_cells.empty() || cc.my_cells.back() != cell.id) {
            cc.my_cells.push_back(cell.id);
          }
          if (cc.their_cells.empty() || cc.their_cells.back() != other) {
            cc.their_cells.push_back(other);
          }
        }
      }
    }
  }

  for (auto& [candidate, cells] : candidates) {
    const UserPartitionList& cv = grid.UserCells(candidate);
    const size_t nv = db.UserObjectCount(candidate);
    std::sort(cells.their_cells.begin(), cells.their_cells.end());
    cells.their_cells.erase(
        std::unique(cells.their_cells.begin(), cells.their_cells.end()),
        cells.their_cells.end());
    size_t m = 0;
    for (const CellId c : cells.my_cells) {
      m += PartitionObjectCount(cu, c);
    }
    for (const CellId c : cells.their_cells) {
      m += PartitionObjectCount(cv, c);
    }
    const double bound = static_cast<double>(m) /
                         static_cast<double>(nu + nv);
    if (bound < query.eps_u) continue;
    const double sigma =
        PPJBPair(cu, nu, cv, nv, grid.geometry(), t, query.eps_u);
    if (sigma >= query.eps_u) {
      out->push_back({candidate, u, sigma});
    }
  }
}

}  // namespace

std::vector<ScoredUserPair> SPPJFParallel(const ObjectDatabase& db,
                                          const STPSQuery& query,
                                          int num_threads) {
  STPS_CHECK(query.eps_doc > 0.0);
  STPS_CHECK(query.eps_u > 0.0);
  STPS_CHECK(num_threads >= 1);
  std::vector<ScoredUserPair> result;
  if (db.num_objects() == 0) return result;

  const UserGrid grid(db, query.eps_loc);
  SpatioTextualGridIndex index;
  for (UserId u = 0; u < db.num_users(); ++u) {
    index.AddUser(u, grid.UserCells(u));
  }

  const size_t n = db.num_users();
  std::atomic<uint32_t> next_user{0};
  std::vector<std::vector<ScoredUserPair>> per_thread(
      static_cast<size_t>(num_threads));
  const auto worker = [&](int thread_index) {
    std::vector<ScoredUserPair>& out = per_thread[thread_index];
    for (;;) {
      const uint32_t u = next_user.fetch_add(1, std::memory_order_relaxed);
      if (u >= n) break;
      ProcessUser(db, grid, index, query, u, &out);
    }
  };
  if (num_threads == 1) {
    worker(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(num_threads);
    for (int i = 0; i < num_threads; ++i) {
      threads.emplace_back(worker, i);
    }
    for (auto& t : threads) t.join();
  }
  for (const auto& partial : per_thread) {
    result.insert(result.end(), partial.begin(), partial.end());
  }
  std::sort(result.begin(), result.end(),
            [](const ScoredUserPair& x, const ScoredUserPair& y) {
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });
  return result;
}

}  // namespace stps
