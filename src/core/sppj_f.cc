#include "core/sppj_f.h"

#include <algorithm>

#include "common/predicates.h"
#include "core/parallel_util.h"
#include "core/ppjb.h"
#include "core/user_grid.h"

namespace stps {

namespace {

// Object count over the supporting cells of a candidate pair — the
// sigma_bar bound's integer numerator, so the prune decision is the exact
// SigmaAtLeast predicate, not a rounded quotient.
size_t SigmaBoundNumerator(const CandidateCells& cells,
                           const UserLayout& mine,
                           const UserLayout& theirs) {
  size_t m = 0;
  for (const int64_t c : cells.my_cells) {
    m += PartitionObjectCount(mine, c);
  }
  for (const int64_t c : cells.their_cells) {
    m += PartitionObjectCount(theirs, c);
  }
  return m;
}

}  // namespace

std::vector<ScoredUserPair> SPPJFAblation(const ObjectDatabase& db,
                                          const STPSQuery& query,
                                          bool use_sigma_bound,
                                          bool use_refine_bound,
                                          JoinStats* stats) {
  // The token-probing filter only sees pairs with at least one textually
  // overlapping object pair; it is complete exactly when a result pair
  // must contain a match (eps_u > 0) and a match must share a token
  // (eps_doc > 0).
  STPS_CHECK(query.eps_doc > 0.0);
  STPS_CHECK(query.eps_u > 0.0);
  std::vector<ScoredUserPair> result;
  if (db.num_objects() == 0) return result;
  const UserGrid grid(db, query.eps_loc);
  const MatchThresholds t = query.match_thresholds();
  const size_t n = db.num_users();

  SpatioTextualGridIndex index;
  std::vector<CellId> neighbors;
  TokenVector tokens;
  // Dense epoch-stamped accumulator (user_grid.h): reused across probing
  // users with an O(1) reset instead of a map rehash/clear, and with
  // deterministic ascending refine order.
  UserCandidateTable<CandidateCells> candidates;

  for (UserId u = 0; u < n; ++u) {
    const UserLayout& cu = grid.UserCells(u);
    const size_t nu = db.UserObjectCount(u);
    candidates.BeginRound(n);

    // Filter: probe the distinct tokens of every cell of u against the
    // inverted lists of the cell and its neighbours.
    for (const UserPartition& cell : cu) {
      DistinctTokens(cell.objects, &tokens);
      neighbors.clear();
      grid.geometry().AppendNeighborhood(cell.id, /*include_self=*/true,
                                         &neighbors);
      for (const CellId other : neighbors) {
        if (stats != nullptr) ++stats->cells_visited;
        for (const TokenId token : tokens) {
          const std::vector<UserId>* users = index.TokenUsers(other, token);
          if (users == nullptr) continue;
          for (const UserId candidate : *users) {
            CandidateCells& cc = candidates[candidate];
            // Cells of u arrive in ascending order, so a back() check
            // fully deduplicates my_cells; their_cells interleaves, so
            // the check only limits growth — SortUnique below is the
            // authoritative dedup for both.
            if (cc.my_cells.empty() || cc.my_cells.back() != cell.id) {
              cc.my_cells.push_back(cell.id);
            }
            if (cc.their_cells.empty() || cc.their_cells.back() != other) {
              cc.their_cells.push_back(other);
            }
          }
        }
      }
    }
    if (stats != nullptr) {
      // Where did the earlier users go? Co-located users without a shared
      // token were pruned textually, the rest spatially.
      const size_t colocated =
          CountColocatedEarlierUsers(grid.geometry(), index, cu, u);
      stats->pairs_candidate += candidates.size();
      stats->pairs_pruned_textual += colocated - candidates.size();
      stats->pairs_pruned_spatial += u - colocated;
    }
    index.AddUser(u, cu);

    // Refine each surviving candidate (ascending by id).
    for (const UserId candidate : candidates.SortedTouched()) {
      CandidateCells& cells = candidates[candidate];
      const UserLayout& cv = grid.UserCells(candidate);
      const size_t nv = db.UserObjectCount(candidate);
      SortUnique(&cells.my_cells);
      SortUnique(&cells.their_cells);
      if (use_sigma_bound) {
        const size_t m = SigmaBoundNumerator(cells, cu, cv);
        if (!SigmaAtLeast(m, nu + nv, query.eps_u)) {
          if (stats != nullptr) ++stats->pairs_pruned_count;
          continue;
        }
      }
      if (stats != nullptr) ++stats->pairs_verified;
      size_t matched = 0;
      const double sigma =
          PPJBPair(cu, nu, cv, nv, grid.geometry(), t,
                   use_refine_bound ? query.eps_u : 0.0, stats, &matched);
      if (SigmaAtLeast(matched, nu + nv, query.eps_u)) {
        result.push_back({std::min(u, candidate), std::max(u, candidate),
                          sigma});
        if (stats != nullptr) ++stats->matches_found;
      }
    }
  }
  std::sort(result.begin(), result.end(), PairIdLess);
  return result;
}

std::vector<ScoredUserPair> SPPJF(const ObjectDatabase& db,
                                  const STPSQuery& query, JoinStats* stats) {
  return SPPJFAblation(db, query, /*use_sigma_bound=*/true,
                       /*use_refine_bound=*/true, stats);
}

}  // namespace stps
