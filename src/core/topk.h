// Top-k STPSJoin algorithms (Section 4.2).
//
//  * TOPK-S-PPJ-F (Algorithm 4): S-PPJ-F with a bounded result queue;
//    users in ascending |Du| order; the user-similarity threshold is the
//    current k-th best score.
//  * TOPK-S-PPJ-S: the same machinery, but users ordered by the grid
//    popularity heuristic s_u = sum over objects of the containing cell's
//    score s_c = |users with objects in c or adjacent cells| (descending).
//  * TOPK-S-PPJ-P: ascending-size order plus the per-user prefilter of
//    Lemma 2 (sigma_bar_u), estimated from the spatio-textual grid index.
//
// All variants return the same deterministic result: the top-k pairs with
// sigma > 0 under the TopKBetter total order (score desc, then ids).

#ifndef STPS_CORE_TOPK_H_
#define STPS_CORE_TOPK_H_

#include <vector>

#include "common/thread_pool.h"
#include "core/database.h"
#include "core/join_stats.h"
#include "core/similarity.h"

namespace stps {

/// Which top-k evaluation strategy to run.
enum class TopKVariant {
  kF,  // TOPK-S-PPJ-F: ascending object-set size
  kS,  // TOPK-S-PPJ-S: popularity-ordered
  kP,  // TOPK-S-PPJ-P: ascending size + Lemma 2 prefilter
};

/// Evaluates the top-k STPSJoin query. Precondition: eps_doc > 0.
/// Result is sorted best-first and has at most k entries (fewer when
/// fewer than k pairs have sigma > 0).
std::vector<ScoredUserPair> TopKSTPSJoin(const ObjectDatabase& db,
                                         const TopKQuery& query,
                                         TopKVariant variant,
                                         JoinStats* stats = nullptr);

/// Parallel top-k: the spatio-textual index is built once over all users
/// in processing-rank order, workers keep thread-local ResultQueues
/// (their thresholds are conservative: a local queue holds k real pairs,
/// so anything it prunes is outside the global top-k), and the local
/// queues are merged at the end. The result is identical to the
/// sequential TopKSTPSJoin at any thread count because the top-k under
/// the TopKBetter total order is unique.
std::vector<ScoredUserPair> TopKSTPSJoinParallel(
    const ObjectDatabase& db, const TopKQuery& query, TopKVariant variant,
    const ParallelOptions& parallel, JoinStats* stats = nullptr);

/// Convenience wrappers.
std::vector<ScoredUserPair> TopKSPPJF(const ObjectDatabase& db,
                                      const TopKQuery& query);
std::vector<ScoredUserPair> TopKSPPJS(const ObjectDatabase& db,
                                      const TopKQuery& query);
std::vector<ScoredUserPair> TopKSPPJP(const ObjectDatabase& db,
                                      const TopKQuery& query);

/// The R-tree-partitioned top-k variant the paper mentions but omits
/// pseudocode for (Section 4.2.1: "the same principle can be
/// straightforwardly applied to S-PPJ-D"): TOPK-S-PPJ-F's queue/threshold
/// machinery over the leaf partitioning of S-PPJ-D.
std::vector<ScoredUserPair> TopKSPPJD(const ObjectDatabase& db,
                                      const TopKQuery& query,
                                      int fanout = 128,
                                      JoinStats* stats = nullptr);

}  // namespace stps

#endif  // STPS_CORE_TOPK_H_
