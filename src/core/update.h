// UpdatableDatabase: incremental insert/delete on top of the immutable
// ObjectDatabase, with epoch/RCU-style snapshots.
//
// The paper's join algorithms run against an immutable, heavily
// layout-optimised ObjectDatabase (user-grouped Z-order slots, CSR token
// arena, SoA mirrors, grid cells, sketches, planner stats — see
// DESIGN.md). Those structures are interlinked by spans and prefix sums;
// mutating them in place would invalidate every reader. Instead this
// layer splits the lifecycle in two:
//
//  * A mutable *store* absorbs writes in O(1) amortised per object:
//    per-user slot lists, a slot free list recycling deleted entries, and
//    an interned-token arena whose holes are tracked and periodically
//    compacted. No query ever reads the store.
//  * Publish() compacts the store's surviving objects (in original
//    insertion order) through DatabaseBuilder::Build into a fresh
//    immutable ObjectDatabase — token signatures, sketch index, and
//    PlannerStats are refreshed as part of the build — and swaps it in as
//    the next epoch's snapshot.
//
// Readers obtain `shared_ptr<const DatabaseSnapshot>` and keep it for the
// whole query: writers never block readers, readers never block writers,
// and superseded snapshots stay alive until the last in-flight query
// drops its reference (RCU grace period by shared_ptr refcount).
//
// Correctness contract (enforced by tests/core/update_test.cc): after any
// interleaving of InsertObjects/DeleteUser, the published snapshot is
// *the same database* a fresh DatabaseBuilder::Build over the surviving
// raw objects (in first-insertion order) would produce — so every join /
// top-k variant returns bit-identical results on either.

#ifndef STPS_CORE_UPDATE_H_
#define STPS_CORE_UPDATE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "core/database.h"

namespace stps {

/// One incoming raw object (a check-in): the external user key plus the
/// object payload, exactly what DatabaseBuilder::AddObject accepts.
struct RawObject {
  std::string user;
  Point loc;
  std::vector<std::string> keywords;
  double time = 0.0;
};

/// An immutable, epoch-stamped view of the database. Queries hold the
/// shared_ptr for their whole run; the view never changes underneath
/// them. Epoch 0 is the empty database before the first Publish().
struct DatabaseSnapshot {
  uint64_t epoch = 0;
  ObjectDatabase db;
};

/// Write-side tuning knobs.
struct UpdateOptions {
  /// Auto-publish when this many mutations (inserted or deleted objects)
  /// accumulate since the last publish. 0 disables auto-publish; callers
  /// then control epochs explicitly via Publish().
  size_t publish_threshold = 0;
  /// Compact the token arena / slot array when dead entries exceed this
  /// fraction of their capacity. Compaction is O(live) and amortised by
  /// the fraction; 0 compacts on every delete (useful in tests).
  double compact_fraction = 0.5;
};

/// Write-side observability counters (monotone).
struct UpdateStats {
  uint64_t objects_inserted = 0;
  uint64_t objects_deleted = 0;
  uint64_t users_deleted = 0;
  uint64_t publishes = 0;
  uint64_t arena_compactions = 0;
  uint64_t slot_compactions = 0;
};

/// Mutable database front end. Thread safety: any number of concurrent
/// readers (snapshot()) against any number of concurrent writers
/// (InsertObjects / DeleteUser / Publish); writers serialise on an
/// internal mutex, readers only touch the snapshot pointer.
class UpdatableDatabase {
 public:
  explicit UpdatableDatabase(UpdateOptions options = {});
  ~UpdatableDatabase() = default;
  STPS_DISALLOW_COPY_AND_ASSIGN(UpdatableDatabase);

  /// Seeds the store with every object of `db` (in its original insertion
  /// order, recovered through db.insertion_order()) and publishes a new
  /// epoch, which is equivalent to `db` itself. Intended for loading an
  /// initial dataset into a fresh instance.
  void SeedFrom(const ObjectDatabase& db);

  /// Inserts one object / a batch of objects. O(tokens) each, amortised.
  void InsertObject(const RawObject& object);
  void InsertObjects(std::span<const RawObject> objects);

  /// Deletes a user's entire point set. Returns false when the user does
  /// not exist (or holds no live objects); the store is unchanged then.
  /// Freed slots and token ranges go onto free lists for reuse; heavily
  /// fragmented storage is compacted per UpdateOptions::compact_fraction.
  bool DeleteUser(std::string_view user_key);

  /// The latest published snapshot. Never null; epoch 0 / empty database
  /// before the first Publish. Wait-free with respect to writers apart
  /// from the pointer copy.
  std::shared_ptr<const DatabaseSnapshot> snapshot() const;

  /// Builds and publishes a new epoch from the current store contents,
  /// even when nothing changed. Returns the new snapshot.
  std::shared_ptr<const DatabaseSnapshot> Publish();

  /// Publishes only when mutations happened since the last publish;
  /// otherwise returns the current snapshot unchanged.
  std::shared_ptr<const DatabaseSnapshot> PublishIfDirty();

  /// True when mutations are pending that no snapshot reflects yet.
  bool dirty() const;

  /// Live (surviving) object count in the store — counts pending
  /// mutations, unlike snapshot()->db.num_objects().
  size_t live_objects() const;

  /// Number of users with at least one live object.
  size_t live_users() const;

  /// Epoch of the latest published snapshot.
  uint64_t epoch() const;

  /// Copy of the write-side counters.
  UpdateStats stats() const;

 private:
  // One stored object. Tokens live in token_arena_[token_begin,
  // token_begin + token_count) as sorted unique interned ids; dead slots
  // keep their extents until compaction reclaims them.
  struct Slot {
    uint32_t user = 0;        // index into users_
    Point loc;
    double time = 0.0;
    uint64_t seq = 0;         // global insertion sequence number
    uint32_t token_begin = 0;
    uint32_t token_count = 0;
    bool live = false;
  };

  struct UserEntry {
    std::string key;
    std::vector<uint32_t> slots;  // live slot ids of this user's set
  };

  // All private helpers expect mutex_ held.
  uint32_t InternUser(std::string_view key);
  uint32_t InternToken(std::string_view token);
  void InsertLocked(const RawObject& object);
  void MaybeCompactLocked();
  void CompactArenaLocked();
  void CompactSlotsLocked();
  std::shared_ptr<const DatabaseSnapshot> PublishLocked();
  void PublishThresholdLocked();

  const UpdateOptions options_;

  mutable std::mutex mutex_;  // guards the store (everything below)
  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;   // recycled dead slot ids
  std::vector<TokenId> token_arena_;   // store-local interned token ids
  size_t dead_tokens_ = 0;             // arena entries owned by dead slots
  std::vector<UserEntry> users_;
  std::unordered_map<std::string, uint32_t> user_index_;
  std::vector<std::string> token_strings_;  // store-local id -> string
  std::unordered_map<std::string, uint32_t> token_index_;
  uint64_t next_seq_ = 0;
  size_t pending_mutations_ = 0;
  UpdateStats stats_;

  mutable std::mutex snapshot_mutex_;  // guards snapshot_ only
  std::shared_ptr<const DatabaseSnapshot> snapshot_;
};

}  // namespace stps

#endif  // STPS_CORE_UPDATE_H_
