// UpdatableDatabase: incremental insert/delete on top of the immutable
// ObjectDatabase, with epoch/RCU-style snapshots.
//
// The paper's join algorithms run against an immutable, heavily
// layout-optimised ObjectDatabase (user-grouped Z-order slots, CSR token
// arena, SoA mirrors, grid cells, sketches, planner stats — see
// DESIGN.md). Those structures are interlinked by spans and prefix sums;
// mutating them in place would invalidate every reader. Instead this
// layer splits the lifecycle in two:
//
//  * A mutable *store* absorbs writes in O(1) amortised per object:
//    per-user slot lists, a slot free list recycling deleted entries, and
//    an interned-token arena whose holes are tracked and periodically
//    compacted. No query ever reads the store.
//  * Publish() produces the next epoch's immutable ObjectDatabase and
//    swaps it in. Small deltas take the O(delta) splice path: only dirty
//    users' blocks (Z-order reorder, SoA mirrors, signatures, sketch
//    rows, planner keys) are rebuilt, everything else is copied from the
//    previous snapshot's columns. Large deltas — or mutations that
//    invalidate a global structure (bounds growth, boundary deletes) —
//    fall back to replaying every survivor through
//    DatabaseBuilder::Build. Both paths produce bit-identical databases;
//    see DESIGN.md §13 for the argument.
//
// Readers obtain `shared_ptr<const DatabaseSnapshot>` and keep it for the
// whole query: writers never block readers, readers never block writers,
// and superseded snapshots stay alive until the last in-flight query
// drops its reference (RCU grace period by shared_ptr refcount).
//
// Correctness contract (enforced by tests/core/update_test.cc): after any
// interleaving of InsertObjects/DeleteUser, the published snapshot is
// *the same database* a fresh DatabaseBuilder::Build over the surviving
// raw objects (in first-insertion order) would produce — so every join /
// top-k variant returns bit-identical results on either.

#ifndef STPS_CORE_UPDATE_H_
#define STPS_CORE_UPDATE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "core/database.h"

namespace stps {

/// One incoming raw object (a check-in): the external user key plus the
/// object payload, exactly what DatabaseBuilder::AddObject accepts.
struct RawObject {
  std::string user;
  Point loc;
  std::vector<std::string> keywords;
  double time = 0.0;
};

/// An immutable, epoch-stamped view of the database. Queries hold the
/// shared_ptr for their whole run; the view never changes underneath
/// them. Epoch 0 is the empty database before the first Publish().
struct DatabaseSnapshot {
  uint64_t epoch = 0;
  ObjectDatabase db;
};

/// Write-side tuning knobs.
struct UpdateOptions {
  /// Auto-publish when this many mutations (inserted or deleted objects)
  /// accumulate since the last publish. 0 disables auto-publish; callers
  /// then control epochs explicitly via Publish().
  size_t publish_threshold = 0;
  /// Compact the token arena / slot array when dead entries exceed this
  /// fraction of their capacity. Compaction is O(live) and amortised by
  /// the fraction; 0 compacts on every delete (useful in tests).
  double compact_fraction = 0.5;
  /// Publish takes the delta path (splice unchanged users' blocks from
  /// the previous snapshot, rebuild only dirty users — see DESIGN.md §13)
  /// while the dirty-user fraction is at most this value; beyond it, or
  /// when a mutation invalidated a global structure (bounds growth /
  /// boundary deletes), Publish falls back to the full rebuild. <= 0
  /// disables the delta path entirely (every publish is a full rebuild).
  double delta_publish_max_fraction = 0.25;
};

/// Write-side observability counters (monotone unless noted).
struct UpdateStats {
  uint64_t objects_inserted = 0;
  uint64_t objects_deleted = 0;
  uint64_t users_deleted = 0;
  uint64_t publishes = 0;
  uint64_t arena_compactions = 0;
  uint64_t slot_compactions = 0;
  /// Publishes that took the delta (splice) path / the full-rebuild path;
  /// delta_publishes + full_publishes == publishes.
  uint64_t delta_publishes = 0;
  uint64_t full_publishes = 0;
  /// Total dirty users across delta publishes (the "delta size" actually
  /// paid for; full publishes don't count here).
  uint64_t dirty_users_published = 0;
  /// Per-user blocks spliced from the previous snapshot vs rebuilt from
  /// the store. Full publishes count every user as rebuilt.
  uint64_t blocks_reused = 0;
  uint64_t blocks_rebuilt = 0;
  /// Wall-clock of the most recent publish and which path it took
  /// (not monotone; meaningless until the first publish).
  double last_publish_ms = 0.0;
  bool last_publish_delta = false;
};

/// Human-readable one-per-line rendering of UpdateStats (the CLI
/// `--explain` / server diagnostics format).
std::string FormatUpdateStats(const UpdateStats& stats);

/// Outcome of a publish attempt (PublishIfDirty): the snapshot to read,
/// whether this call produced it, and how.
struct PublishResult {
  std::shared_ptr<const DatabaseSnapshot> snapshot;
  /// True when this call built and swapped in a new epoch; false when the
  /// store was clean and `snapshot` is the pre-existing epoch.
  bool published = false;
  /// Valid when `published`: true = delta (splice) path, false = full.
  bool delta = false;
  /// Valid when `published`: wall-clock milliseconds of the build+swap.
  double publish_ms = 0.0;
};

/// Mutable database front end. Thread safety: any number of concurrent
/// readers (snapshot()) against any number of concurrent writers
/// (InsertObjects / DeleteUser / Publish); writers serialise on an
/// internal mutex, readers only touch the snapshot pointer.
class UpdatableDatabase {
 public:
  explicit UpdatableDatabase(UpdateOptions options = {});
  ~UpdatableDatabase() = default;
  STPS_DISALLOW_COPY_AND_ASSIGN(UpdatableDatabase);

  /// Seeds the store with every object of `db` (in its original insertion
  /// order, recovered through db.insertion_order()) and publishes a new
  /// epoch, which is equivalent to `db` itself. Intended for loading an
  /// initial dataset into a fresh instance.
  void SeedFrom(const ObjectDatabase& db);

  /// Inserts one object / a batch of objects. O(tokens) each, amortised.
  void InsertObject(const RawObject& object);
  void InsertObjects(std::span<const RawObject> objects);

  /// Deletes a user's entire point set. Returns false when the user does
  /// not exist (or holds no live objects); the store is unchanged then.
  /// Freed slots and token ranges go onto free lists for reuse; heavily
  /// fragmented storage is compacted per UpdateOptions::compact_fraction.
  bool DeleteUser(std::string_view user_key);

  /// The latest published snapshot. Never null; epoch 0 / empty database
  /// before the first Publish. Wait-free with respect to writers apart
  /// from the pointer copy.
  std::shared_ptr<const DatabaseSnapshot> snapshot() const;

  /// Builds and publishes a new epoch from the current store contents,
  /// even when nothing changed. Returns the new snapshot.
  std::shared_ptr<const DatabaseSnapshot> Publish();

  /// Publishes only when mutations happened since the last publish;
  /// otherwise returns the current snapshot unchanged. The result says
  /// whether an epoch was produced, which path built it, and how long it
  /// took — the server PUBLISH reply forwards all three.
  PublishResult PublishIfDirty();

  /// True when mutations are pending that no snapshot reflects yet.
  bool dirty() const;

  /// Live (surviving) object count in the store — counts pending
  /// mutations, unlike snapshot()->db.num_objects().
  size_t live_objects() const;

  /// Number of users with at least one live object.
  size_t live_users() const;

  /// Epoch of the latest published snapshot.
  uint64_t epoch() const;

  /// Copy of the write-side counters.
  UpdateStats stats() const;

 private:
  // One stored object. Tokens live in token_arena_[token_begin,
  // token_begin + token_count) as sorted unique interned ids; dead slots
  // keep their extents until compaction reclaims them.
  struct Slot {
    uint32_t user = 0;        // index into users_
    Point loc;
    double time = 0.0;
    uint64_t seq = 0;         // global insertion sequence number
    uint32_t token_begin = 0;
    uint32_t token_count = 0;
    bool live = false;
  };

  struct UserEntry {
    std::string key;
    std::vector<uint32_t> slots;  // live slot ids of this user's set
  };

  // Outputs of a publish body that RefreshAfterPublishLocked adopts. The
  // planner pairs are maintained by both paths; the two id mappings are
  // filled only by the delta path (which computes them anyway), letting
  // the refresh skip the per-user / per-token hash lookups the full path
  // needs. Empty vectors mean "resolve through the indexes".
  struct PublishScaffold {
    // The published (ZOrderKey, user) pair per object, sorted by key.
    std::vector<std::pair<uint64_t, UserId>> planner_pairs;
    // Store user -> published id (size users_.size(), kNone for users
    // with no published objects).
    std::vector<uint32_t> user_ids;
    // Published dictionary id -> store token id.
    std::vector<uint32_t> dict_store_ids;
  };

  // All private helpers expect mutex_ held.
  uint32_t InternUser(std::string_view key);
  uint32_t InternToken(std::string_view token);
  void InsertLocked(const RawObject& object);
  void MaybeCompactLocked();
  void CompactArenaLocked();
  void CompactSlotsLocked();
  PublishResult PublishLocked();
  void PublishThresholdLocked();
  // True when the pending delta qualifies for the splice path against the
  // current snapshot (fraction threshold, no blocking mutations).
  bool CanDeltaPublishLocked() const;
  // The two publish bodies. Both return the built database and leave the
  // refresh inputs in *out (see PublishScaffold).
  ObjectDatabase BuildFullLocked(PublishScaffold* out);
  ObjectDatabase BuildDeltaLocked(const ObjectDatabase& prev,
                                  PublishScaffold* out);
  // Post-build bookkeeping shared by both paths: store-user -> published
  // id map, dict-id -> store-token map, dirty-set reset, planner pair
  // adoption, publish_seq_ advance.
  void RefreshAfterPublishLocked(const ObjectDatabase& db,
                                 PublishScaffold scaffold);
  // Marks a store user dirty (idempotent within one publish window).
  void MarkUserDirtyLocked(uint32_t user);
  // Marks a token's document frequency as changed since the last publish
  // (idempotent): the delta path re-sorts exactly these tokens and
  // splices the rest of the dictionary order.
  void MarkTokenDirtyLocked(uint32_t token);

  const UpdateOptions options_;

  mutable std::mutex mutex_;  // guards the store (everything below)
  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;   // recycled dead slot ids
  std::vector<TokenId> token_arena_;   // store-local interned token ids
  size_t dead_tokens_ = 0;             // arena entries owned by dead slots
  std::vector<UserEntry> users_;
  std::unordered_map<std::string, uint32_t> user_index_;
  std::vector<std::string> token_strings_;  // store-local id -> string
  std::unordered_map<std::string, uint32_t> token_index_;
  uint64_t next_seq_ = 0;
  size_t pending_mutations_ = 0;
  UpdateStats stats_;

  // Delta-publish bookkeeping (see DESIGN.md §13). Store-local token ids
  // are stable for the store's lifetime (compaction never renumbers
  // them), so token_df_ is a plain parallel array.
  std::vector<uint32_t> token_df_;     // live document frequency per token
  // StableTokenHash per store token, computed once at intern time; the
  // delta path hands these to the sketch splice so it never re-hashes
  // the dictionary's strings.
  std::vector<uint64_t> token_stable_hash_;
  // Tokens whose df changed since the last publish (flag + dense list,
  // reset by RefreshAfterPublishLocked). Everything *not* here kept its
  // (df, string) sort key, so the previous dictionary order splices.
  std::vector<uint8_t> token_dirty_;
  std::vector<uint32_t> dirty_token_list_;
  // Current snapshot's dictionary id -> store token id. Rebuilt on every
  // publish; the delta path composes prev->new token maps through it
  // instead of string hashing.
  std::vector<uint32_t> dict_store_ids_;
  std::vector<uint8_t> user_dirty_;    // store user touched since publish
  size_t dirty_users_ = 0;             // count of set user_dirty_ flags
  bool delta_blocked_ = false;         // a mutation forced the next
                                       // publish onto the full path
  uint64_t publish_seq_ = 0;           // next_seq_ at the last publish
  // Store user -> dense id in the current snapshot (UINT32_MAX when the
  // user has no published objects). Rebuilt on every publish.
  std::vector<uint32_t> user_prev_id_;
  // The snapshot's (ZOrderKey, user) pair per object, sorted by key: the
  // planner-stats input, maintained across delta publishes by filtering
  // out dirty users' pairs and merging in their recomputed ones.
  std::vector<std::pair<uint64_t, UserId>> planner_keys_;

  mutable std::mutex snapshot_mutex_;  // guards snapshot_ only
  std::shared_ptr<const DatabaseSnapshot> snapshot_;
};

}  // namespace stps

#endif  // STPS_CORE_UPDATE_H_
