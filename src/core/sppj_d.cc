#include "core/sppj_d.h"

#include <algorithm>
#include <unordered_map>

#include "spatial/quadtree.h"
#include "spatial/spatial_join.h"
#include "text/token_set.h"

namespace stps {

SpatialPartitioning RTreePartitioning(const ObjectDatabase& db,
                                      int fanout) {
  std::vector<RTree::Entry> entries;
  entries.reserve(db.num_objects());
  for (const STObject& o : db.AllObjects()) {
    entries.push_back(RTree::Entry{o.loc, o.id});
  }
  const RTree tree = RTree::BulkLoad(std::move(entries), fanout);
  SpatialPartitioning out;
  for (const RTree::LeafRef& leaf : tree.CollectLeaves()) {
    out.mbrs.push_back(leaf.mbr);
    std::vector<ObjectId> members;
    members.reserve(leaf.entries.size());
    for (const RTree::Entry& entry : leaf.entries) {
      members.push_back(entry.value);
    }
    out.members.push_back(std::move(members));
  }
  return out;
}

SpatialPartitioning QuadTreePartitioning(const ObjectDatabase& db,
                                         int leaf_capacity) {
  std::vector<QuadTree::Entry> entries;
  entries.reserve(db.num_objects());
  for (const STObject& o : db.AllObjects()) {
    entries.push_back(QuadTree::Entry{o.loc, o.id});
  }
  const QuadTree tree = QuadTree::Build(std::move(entries), leaf_capacity);
  SpatialPartitioning out;
  for (const QuadTree::LeafRef& leaf : tree.CollectLeaves()) {
    out.mbrs.push_back(leaf.mbr);
    std::vector<ObjectId> members;
    members.reserve(leaf.entries.size());
    for (const QuadTree::Entry& entry : leaf.entries) {
      members.push_back(entry.value);
    }
    out.members.push_back(std::move(members));
  }
  return out;
}

LeafPartitionIndex::LeafPartitionIndex(const ObjectDatabase& db,
                                       double eps_loc, int fanout)
    : LeafPartitionIndex(db, eps_loc, RTreePartitioning(db, fanout)) {}

LeafPartitionIndex::LeafPartitionIndex(const ObjectDatabase& db,
                                       double eps_loc,
                                       const SpatialPartitioning& parts) {
  const size_t num_parts = parts.mbrs.size();
  STPS_CHECK(parts.members.size() == num_parts);
  leaf_mbrs_.reserve(num_parts);
  extended_mbrs_.reserve(num_parts);
  per_user_.resize(db.num_users());
  token_users_.resize(num_parts);

  for (uint32_t ordinal = 0; ordinal < num_parts; ++ordinal) {
    leaf_mbrs_.push_back(parts.mbrs[ordinal]);
    extended_mbrs_.push_back(parts.mbrs[ordinal].Extended(eps_loc));
    // Group the partition's objects per user.
    std::unordered_map<UserId, std::vector<ObjectRef>> by_user;
    for (const ObjectId id : parts.members[ordinal]) {
      const STObject& o = db.object(id);
      by_user[o.user].push_back(ObjectRef{&o, db.LocalIndex(o)});
    }
    // Deterministic per-partition user order (ascending id) so the
    // inverted lists are sorted and the u' < u filter can stop early.
    std::vector<UserId> users;
    users.reserve(by_user.size());
    for (const auto& [u, refs] : by_user) users.push_back(u);
    std::sort(users.begin(), users.end());
    auto& leaf_tokens = token_users_[ordinal];
    for (const UserId u : users) {
      per_user_[u].push_back(UserPartition{ordinal, std::move(by_user[u])});
      const TokenVector tokens = DistinctTokens(
          std::span<const ObjectRef>(per_user_[u].back().objects));
      for (const TokenId t : tokens) {
        leaf_tokens[t].push_back(u);
      }
    }
  }
  // per_user_ lists are already sorted by partition ordinal (partitions
  // visited in ascending order).

  // Precompute which extended partition MBRs intersect (spatial join).
  adjacency_.resize(num_parts);
  for (uint32_t l = 0; l < num_parts; ++l) adjacency_[l].push_back(l);
  for (const auto& [i, j] : RectSelfJoin(extended_mbrs_)) {
    adjacency_[i].push_back(j);
    adjacency_[j].push_back(i);
  }
  for (auto& list : adjacency_) std::sort(list.begin(), list.end());
}

const std::vector<UserId>* LeafPartitionIndex::TokenUsers(uint32_t leaf,
                                                          TokenId t) const {
  STPS_DCHECK(leaf < token_users_.size());
  const auto it = token_users_[leaf].find(t);
  if (it == token_users_[leaf].end()) return nullptr;
  return &it->second;
}

namespace {

// Copies the objects of `p` lying inside `box` into *out.
void FilterToBox(const UserPartition* p, const Rect& box,
                 std::vector<ObjectRef>* out) {
  out->clear();
  if (p == nullptr) return;
  for (const ObjectRef& ref : p->objects) {
    if (box.Contains(ref.object->loc)) out->push_back(ref);
  }
}

}  // namespace

double PPJDPair(const UserPartitionList& lu, size_t nu,
                const UserPartitionList& lv, size_t nv,
                const LeafPartitionIndex& index, const MatchThresholds& t,
                double eps_u) {
  if (nu + nv == 0) return 0.0;
  const bool bounded = eps_u > 0.0;
  const double beta = UnmatchedBound(nu, nv, eps_u);
  std::vector<uint8_t> matched_u(nu, 0), matched_v(nv, 0);
  uint32_t matched_total = 0;
  size_t processed_objects = 0;
  std::vector<ObjectRef> scratch_a, scratch_b;

  for (const MergedPartition& cell : MergePartitionLists(lu, lv)) {
    const uint32_t leaf = static_cast<uint32_t>(cell.id);
    const Rect& ext = index.ExtendedMbr(leaf);
    if (cell.u != nullptr) {
      // Join Du_l with Dv_l' for every relevant leaf l' >= l.
      for (const uint32_t other : index.RelevantLeaves(leaf)) {
        if (other < leaf) continue;
        const UserPartition* pv =
            other == leaf ? cell.v : FindPartition(lv, other);
        if (pv == nullptr) continue;
        const Rect box = ext.Intersection(index.ExtendedMbr(other));
        FilterToBox(cell.u, box, &scratch_a);
        FilterToBox(pv, box, &scratch_b);
        matched_total +=
            PPJCrossMark(std::span<const ObjectRef>(scratch_a),
                         std::span<const ObjectRef>(scratch_b), t,
                         &matched_u, &matched_v);
      }
    }
    if (cell.v != nullptr) {
      // Join Du_l' with Dv_l for every relevant leaf l' > l. Note: the
      // paper's Algorithm 3 guards the two sides with an else-if; when a
      // leaf holds objects of both users that would skip join pairs, so
      // both branches execute here (duplicate-free by the >= / > guards).
      for (const uint32_t other : index.RelevantLeaves(leaf)) {
        if (other <= leaf) continue;
        const UserPartition* pu = FindPartition(lu, other);
        if (pu == nullptr) continue;
        const Rect box = ext.Intersection(index.ExtendedMbr(other));
        FilterToBox(pu, box, &scratch_a);
        FilterToBox(cell.v, box, &scratch_b);
        matched_total +=
            PPJCrossMark(std::span<const ObjectRef>(scratch_a),
                         std::span<const ObjectRef>(scratch_b), t,
                         &matched_u, &matched_v);
      }
    }
    processed_objects += (cell.u ? cell.u->objects.size() : 0) +
                         (cell.v ? cell.v->objects.size() : 0);
    if (bounded) {
      // Every pair involving the processed leaves has been evaluated, so
      // their unmatched objects can never match later (lines 21-22 of
      // Algorithm 3). Signed arithmetic: matches may mark objects in
      // leaves not yet processed.
      const double unmatched_lower_bound =
          static_cast<double>(processed_objects) -
          static_cast<double>(matched_total);
      if (unmatched_lower_bound > beta) return 0.0;
    }
  }
  return static_cast<double>(matched_total) / static_cast<double>(nu + nv);
}

std::vector<ScoredUserPair> SPPJD(const ObjectDatabase& db,
                                  const STPSQuery& query,
                                  const SPPJDOptions& options) {
  STPS_CHECK(query.eps_doc > 0.0);
  STPS_CHECK(query.eps_u > 0.0);
  std::vector<ScoredUserPair> result;
  if (db.num_objects() == 0) return result;
  const LeafPartitionIndex index(
      db, query.eps_loc,
      options.partitioning == PartitioningScheme::kRTree
          ? RTreePartitioning(db, options.fanout)
          : QuadTreePartitioning(db, options.fanout));
  const MatchThresholds t = query.match_thresholds();
  const size_t n = db.num_users();

  struct CandidateLeaves {
    std::vector<int64_t> my_leaves;
    std::vector<int64_t> their_leaves;
  };
  std::unordered_map<UserId, CandidateLeaves> candidates;

  for (UserId u = 0; u < n; ++u) {
    const UserPartitionList& lu = index.UserLeaves(u);
    const size_t nu = db.UserObjectCount(u);
    candidates.clear();

    // Filter: probe the distinct tokens of every leaf of u against the
    // inverted lists of the relevant leaves; only users earlier in the
    // total order are candidates (the lists are sorted ascending).
    for (const UserPartition& leaf : lu) {
      const TokenVector tokens =
          DistinctTokens(std::span<const ObjectRef>(leaf.objects));
      for (const uint32_t other :
           index.RelevantLeaves(static_cast<uint32_t>(leaf.id))) {
        for (const TokenId token : tokens) {
          const std::vector<UserId>* users = index.TokenUsers(other, token);
          if (users == nullptr) continue;
          for (const UserId candidate : *users) {
            if (candidate >= u) break;  // sorted ascending
            CandidateLeaves& cl = candidates[candidate];
            if (cl.my_leaves.empty() || cl.my_leaves.back() != leaf.id) {
              cl.my_leaves.push_back(leaf.id);
            }
            if (cl.their_leaves.empty() || cl.their_leaves.back() != other) {
              cl.their_leaves.push_back(other);
            }
          }
        }
      }
    }

    for (auto& [candidate, leaves] : candidates) {
      const UserPartitionList& lv = index.UserLeaves(candidate);
      const size_t nv = db.UserObjectCount(candidate);
      // sigma_bar: assume every object in the supporting leaves matches.
      std::sort(leaves.their_leaves.begin(), leaves.their_leaves.end());
      leaves.their_leaves.erase(
          std::unique(leaves.their_leaves.begin(), leaves.their_leaves.end()),
          leaves.their_leaves.end());
      size_t m = 0;
      for (const int64_t l : leaves.my_leaves) {
        m += PartitionObjectCount(lu, l);
      }
      for (const int64_t l : leaves.their_leaves) {
        m += PartitionObjectCount(lv, l);
      }
      const double bound =
          static_cast<double>(m) / static_cast<double>(nu + nv);
      if (bound < query.eps_u) continue;
      const double sigma = PPJDPair(lu, nu, lv, nv, index, t, query.eps_u);
      if (sigma >= query.eps_u) {
        result.push_back({std::min(u, candidate), std::max(u, candidate),
                          sigma});
      }
    }
  }
  std::sort(result.begin(), result.end(),
            [](const ScoredUserPair& x, const ScoredUserPair& y) {
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });
  return result;
}

}  // namespace stps
