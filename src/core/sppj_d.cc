#include "core/sppj_d.h"

#include <algorithm>
#include <unordered_map>

#include "common/predicates.h"
#include "core/parallel_util.h"
#include "spatial/quadtree.h"
#include "spatial/spatial_join.h"
#include "text/token_set.h"

namespace stps {

SpatialPartitioning RTreePartitioning(const ObjectDatabase& db,
                                      int fanout) {
  std::vector<RTree::Entry> entries;
  entries.reserve(db.num_objects());
  for (const STObject& o : db.AllObjects()) {
    entries.push_back(RTree::Entry{o.loc, o.id});
  }
  const RTree tree = RTree::BulkLoad(std::move(entries), fanout);
  SpatialPartitioning out;
  for (const RTree::LeafRef& leaf : tree.CollectLeaves()) {
    out.mbrs.push_back(leaf.mbr);
    std::vector<ObjectId> members;
    members.reserve(leaf.entries.size());
    for (const RTree::Entry& entry : leaf.entries) {
      members.push_back(entry.value);
    }
    out.members.push_back(std::move(members));
  }
  return out;
}

SpatialPartitioning QuadTreePartitioning(const ObjectDatabase& db,
                                         int leaf_capacity) {
  std::vector<QuadTree::Entry> entries;
  entries.reserve(db.num_objects());
  for (const STObject& o : db.AllObjects()) {
    entries.push_back(QuadTree::Entry{o.loc, o.id});
  }
  const QuadTree tree = QuadTree::Build(std::move(entries), leaf_capacity);
  SpatialPartitioning out;
  for (const QuadTree::LeafRef& leaf : tree.CollectLeaves()) {
    out.mbrs.push_back(leaf.mbr);
    std::vector<ObjectId> members;
    members.reserve(leaf.entries.size());
    for (const QuadTree::Entry& entry : leaf.entries) {
      members.push_back(entry.value);
    }
    out.members.push_back(std::move(members));
  }
  return out;
}

LeafPartitionIndex::LeafPartitionIndex(const ObjectDatabase& db,
                                       double eps_loc, int fanout)
    : LeafPartitionIndex(db, eps_loc, RTreePartitioning(db, fanout)) {}

LeafPartitionIndex::LeafPartitionIndex(const ObjectDatabase& db,
                                       double eps_loc,
                                       const SpatialPartitioning& parts) {
  const size_t num_parts = parts.mbrs.size();
  STPS_CHECK(parts.members.size() == num_parts);
  leaf_mbrs_.reserve(num_parts);
  extended_mbrs_.reserve(num_parts);
  per_user_.resize(db.num_users());
  leaf_users_.resize(num_parts);
  token_users_.resize(num_parts);

  // (leaf ordinal, ref) pairs per user, appended leaf by leaf so every
  // list stays ordinal-sorted; turned into CSR layouts once all leaves
  // are in (the spans must point at the final flat arrays).
  std::vector<std::vector<std::pair<int64_t, ObjectRef>>> keyed(
      db.num_users());
  TokenVector tokens;
  for (uint32_t ordinal = 0; ordinal < num_parts; ++ordinal) {
    leaf_mbrs_.push_back(parts.mbrs[ordinal]);
    extended_mbrs_.push_back(parts.mbrs[ordinal].Extended(eps_loc));
    // Group the partition's objects per user.
    std::unordered_map<UserId, std::vector<ObjectRef>> by_user;
    for (const ObjectId id : parts.members[ordinal]) {
      const STObject& o = db.object(id);
      by_user[o.user].push_back(ObjectRef{&o, db.LocalIndex(o)});
    }
    // Deterministic per-partition user order (ascending id) so the
    // inverted lists are sorted and the u' < u filter can stop early.
    std::vector<UserId> users;
    users.reserve(by_user.size());
    for (const auto& [u, refs] : by_user) users.push_back(u);
    std::sort(users.begin(), users.end());
    auto& leaf_tokens = token_users_[ordinal];
    for (const UserId u : users) {
      const std::vector<ObjectRef>& refs = by_user[u];
      DistinctTokens(std::span<const ObjectRef>(refs), &tokens);
      for (const TokenId t : tokens) {
        leaf_tokens[t].push_back(u);
      }
      for (const ObjectRef& ref : refs) {
        keyed[u].emplace_back(ordinal, ref);
      }
    }
    leaf_users_[ordinal] = std::move(users);
  }
  for (UserId u = 0; u < db.num_users(); ++u) {
    per_user_[u] = MakeUserLayout(keyed[u]);
  }

  // Precompute which extended partition MBRs intersect (spatial join).
  adjacency_.resize(num_parts);
  for (uint32_t l = 0; l < num_parts; ++l) adjacency_[l].push_back(l);
  for (const auto& [i, j] : RectSelfJoin(extended_mbrs_)) {
    adjacency_[i].push_back(j);
    adjacency_[j].push_back(i);
  }
  for (auto& list : adjacency_) std::sort(list.begin(), list.end());
}

const std::vector<UserId>* LeafPartitionIndex::TokenUsers(uint32_t leaf,
                                                          TokenId t) const {
  STPS_DCHECK(leaf < token_users_.size());
  const auto it = token_users_[leaf].find(t);
  if (it == token_users_[leaf].end()) return nullptr;
  return &it->second;
}

namespace {

// Earlier users (< u) sharing a relevant leaf with u, regardless of
// tokens. The leaf-partitioning analogue of CountColocatedEarlierUsers:
// splits the filter's prunes into spatial vs textual for JoinStats.
size_t CountColocatedEarlierUsersD(const LeafPartitionIndex& index,
                                   const UserLayout& lu, UserId u) {
  thread_local std::vector<UserId> colocated;
  colocated.clear();
  for (const UserPartition& leaf : lu) {
    for (const uint32_t other :
         index.RelevantLeaves(static_cast<uint32_t>(leaf.id))) {
      for (const UserId candidate : index.LeafUsers(other)) {
        if (candidate >= u) break;  // lists are ascending by user id
        colocated.push_back(candidate);
      }
    }
  }
  SortUnique(&colocated);
  return colocated.size();
}

// One pass over probing user u: filter via the leaf-level inverted
// lists, sigma_bar count bound, then PPJ-D refinement. Candidates are
// restricted to earlier users so every pair is evaluated exactly once;
// used by both the sequential and the pool-parallel driver.
void ProcessUserD(const ObjectDatabase& db, const LeafPartitionIndex& index,
                  const STPSQuery& query, const MatchThresholds& t, UserId u,
                  std::vector<ScoredUserPair>* out, JoinStats* stats) {
  const UserLayout& lu = index.UserLeaves(u);
  const size_t nu = db.UserObjectCount(u);
  // Dense epoch-stamped accumulator (user_grid.h): one per pool worker,
  // reused across probing users with an O(1) reset instead of a map
  // rehash, and with deterministic ascending refine order.
  thread_local UserCandidateTable<CandidateCells> candidates;
  candidates.BeginRound(db.num_users());

  // Filter: probe the distinct tokens of every leaf of u against the
  // inverted lists of the relevant leaves; only users earlier in the
  // total order are candidates (the lists are sorted ascending).
  thread_local TokenVector tokens;
  for (const UserPartition& leaf : lu) {
    DistinctTokens(leaf.objects, &tokens);
    for (const uint32_t other :
         index.RelevantLeaves(static_cast<uint32_t>(leaf.id))) {
      if (stats != nullptr) ++stats->cells_visited;
      for (const TokenId token : tokens) {
        const std::vector<UserId>* users = index.TokenUsers(other, token);
        if (users == nullptr) continue;
        for (const UserId candidate : *users) {
          if (candidate >= u) break;  // sorted ascending
          CandidateCells& cl = candidates[candidate];
          // Opportunistic growth limiting only; SortUnique below is the
          // authoritative dedup (their_cells interleaves across the
          // outer leaf loop, so back() checks cannot catch everything).
          if (cl.my_cells.empty() || cl.my_cells.back() != leaf.id) {
            cl.my_cells.push_back(leaf.id);
          }
          if (cl.their_cells.empty() || cl.their_cells.back() != other) {
            cl.their_cells.push_back(other);
          }
        }
      }
    }
  }
  if (stats != nullptr) {
    // Where did the earlier users go? Co-located users without a shared
    // token were pruned textually, the rest spatially.
    const size_t colocated = CountColocatedEarlierUsersD(index, lu, u);
    stats->pairs_candidate += candidates.size();
    stats->pairs_pruned_textual += colocated - candidates.size();
    stats->pairs_pruned_spatial += u - colocated;
  }

  for (const UserId candidate : candidates.SortedTouched()) {
    CandidateCells& leaves = candidates[candidate];
    const UserLayout& lv = index.UserLeaves(candidate);
    const size_t nv = db.UserObjectCount(candidate);
    SortUnique(&leaves.my_cells);
    SortUnique(&leaves.their_cells);
    // sigma_bar: assume every object in the supporting leaves matches.
    size_t m = 0;
    for (const int64_t l : leaves.my_cells) {
      m += PartitionObjectCount(lu, l);
    }
    for (const int64_t l : leaves.their_cells) {
      m += PartitionObjectCount(lv, l);
    }
    // sigma_bar >= eps_u as the exact counting predicate: the historical
    // float quotient could reject a pair whose bound equals eps_u.
    if (!SigmaAtLeast(m, nu + nv, query.eps_u)) {
      if (stats != nullptr) ++stats->pairs_pruned_count;
      continue;
    }
    if (stats != nullptr) ++stats->pairs_verified;
    size_t matched = 0;
    const double sigma =
        PPJDPair(lu, nu, lv, nv, index, t, query.eps_u, stats, &matched);
    if (SigmaAtLeast(matched, nu + nv, query.eps_u)) {
      out->push_back({candidate, u, sigma});
      if (stats != nullptr) ++stats->matches_found;
    }
  }
}

LeafPartitionIndex BuildIndex(const ObjectDatabase& db,
                              const STPSQuery& query,
                              const SPPJDOptions& options) {
  return LeafPartitionIndex(
      db, query.eps_loc,
      options.partitioning == PartitioningScheme::kRTree
          ? RTreePartitioning(db, options.fanout)
          : QuadTreePartitioning(db, options.fanout));
}

}  // namespace

double PPJDPair(const UserLayout& lu, size_t nu, const UserLayout& lv,
                size_t nv, const LeafPartitionIndex& index,
                const MatchThresholds& t, double eps_u, JoinStats* stats,
                size_t* matched_out) {
  if (matched_out != nullptr) *matched_out = 0;
  if (nu + nv == 0) return 0.0;
  const bool bounded = eps_u > 0.0;
  // Exact integer Lemma 1 budget (common/predicates.h): never prunes a
  // pair with sigma exactly eps_u.
  const int64_t budget = SigmaUnmatchedBudget(nu + nv, eps_u);
  // Per-thread scratch: flags and the merged leaf traversal survive
  // across user pairs (each pool worker has its own).
  struct DPairScratch {
    std::vector<uint8_t> matched_u, matched_v;
    std::vector<MergedPartition> merged;
  };
  thread_local DPairScratch scratch;
  std::vector<uint8_t>& matched_u = scratch.matched_u;
  std::vector<uint8_t>& matched_v = scratch.matched_v;
  matched_u.assign(nu, 0);
  matched_v.assign(nv, 0);
  uint32_t matched_total = 0;
  size_t processed_objects = 0;

  // Leaf-vs-leaf joins go straight to the batched distance sweep. The
  // historical extended-MBR-intersection box pre-filter is gone: an
  // object outside box(l, l') is farther than eps_loc from every object
  // of the other leaf, so the distance kernel rejects exactly the same
  // pairs before any later filter runs — same matches, same
  // signature-test set, no per-leaf copy.
  MergePartitionLists(lu, lv, &scratch.merged);
  const std::vector<MergedPartition>& merged = scratch.merged;
  for (size_t idx = 0; idx < merged.size(); ++idx) {
    const MergedPartition& cell = merged[idx];
    if (idx + 1 < merged.size()) {
      const MergedPartition& next = merged[idx + 1];
      if (next.u != nullptr) {
        __builtin_prefetch(lu.xs.data() + next.u->begin);
        __builtin_prefetch(lu.ys.data() + next.u->begin);
      }
      if (next.v != nullptr) {
        __builtin_prefetch(lv.xs.data() + next.v->begin);
        __builtin_prefetch(lv.ys.data() + next.v->begin);
      }
    }
    if (stats != nullptr) ++stats->cells_visited;
    const uint32_t leaf = static_cast<uint32_t>(cell.id);
    if (cell.u != nullptr) {
      const CellBlock bu = BlockOf(lu, cell.u);
      // Join Du_l with Dv_l' for every relevant leaf l' >= l.
      for (const uint32_t other : index.RelevantLeaves(leaf)) {
        if (other < leaf) continue;
        const UserPartition* pv =
            other == leaf ? cell.v : FindPartition(lv, other);
        if (pv == nullptr) continue;
        matched_total += PPJCrossMarkBatch(bu, BlockOf(lv, pv), t,
                                           &matched_u, &matched_v, stats);
      }
    }
    if (cell.v != nullptr) {
      const CellBlock bv = BlockOf(lv, cell.v);
      // Join Du_l' with Dv_l for every relevant leaf l' > l. Note: the
      // paper's Algorithm 3 guards the two sides with an else-if; when a
      // leaf holds objects of both users that would skip join pairs, so
      // both branches execute here (duplicate-free by the >= / > guards).
      for (const uint32_t other : index.RelevantLeaves(leaf)) {
        if (other <= leaf) continue;
        const UserPartition* pu = FindPartition(lu, other);
        if (pu == nullptr) continue;
        matched_total += PPJCrossMarkBatch(BlockOf(lu, pu), bv, t,
                                           &matched_u, &matched_v, stats);
      }
    }
    processed_objects += (cell.u ? cell.u->objects.size() : 0) +
                         (cell.v ? cell.v->objects.size() : 0);
    if (bounded) {
      // Every pair involving the processed leaves has been evaluated, so
      // their unmatched objects can never match later (lines 21-22 of
      // Algorithm 3). Signed arithmetic: matches may mark objects in
      // leaves not yet processed.
      const int64_t unmatched_lower_bound =
          static_cast<int64_t>(processed_objects) -
          static_cast<int64_t>(matched_total);
      if (unmatched_lower_bound > budget) {
        if (stats != nullptr) ++stats->refine_early_stops;
        return 0.0;
      }
    }
  }
  if (matched_out != nullptr) *matched_out = matched_total;
  return static_cast<double>(matched_total) / static_cast<double>(nu + nv);
}

std::vector<ScoredUserPair> SPPJD(const ObjectDatabase& db,
                                  const STPSQuery& query,
                                  const SPPJDOptions& options,
                                  JoinStats* stats) {
  STPS_CHECK(query.eps_doc > 0.0);
  STPS_CHECK(query.eps_u > 0.0);
  std::vector<ScoredUserPair> result;
  if (db.num_objects() == 0) return result;
  const LeafPartitionIndex index = BuildIndex(db, query, options);
  const MatchThresholds t = query.match_thresholds();
  for (UserId u = 0; u < db.num_users(); ++u) {
    ProcessUserD(db, index, query, t, u, &result, stats);
  }
  std::sort(result.begin(), result.end(), PairIdLess);
  return result;
}

std::vector<ScoredUserPair> SPPJDParallel(const ObjectDatabase& db,
                                          const STPSQuery& query,
                                          const SPPJDOptions& options,
                                          const ParallelOptions& parallel,
                                          JoinStats* stats) {
  STPS_CHECK(query.eps_doc > 0.0);
  STPS_CHECK(query.eps_u > 0.0);
  STPS_CHECK(parallel.num_threads >= 1);
  if (db.num_objects() == 0) return {};
  const LeafPartitionIndex index = BuildIndex(db, query, options);
  const MatchThresholds t = query.match_thresholds();

  ThreadPool pool(parallel.num_threads);
  const size_t slots = static_cast<size_t>(pool.num_threads());
  std::vector<std::vector<ScoredUserPair>> per_worker(slots);
  std::vector<JoinStats> worker_stats(slots);
  pool.ParallelForEach(
      0, db.num_users(), parallel.grain, [&](size_t u, int worker) {
        ProcessUserD(db, index, query, t, static_cast<UserId>(u),
                     &per_worker[static_cast<size_t>(worker)],
                     stats != nullptr
                         ? &worker_stats[static_cast<size_t>(worker)]
                         : nullptr);
      });
  MergeWorkerStats(stats, worker_stats);
  return MergeSortedPairs(&per_worker);
}

}  // namespace stps
