// Multi-threaded S-PPJ-F — a shared-memory step toward the paper's
// future-work goal of distributed STPSJoin processing.
//
// Unlike the sequential algorithm, the spatio-textual grid index is built
// *once* over all users; workers then process disjoint user subsets,
// restricting candidates to users earlier in the total order, so every
// pair is evaluated by exactly one worker. All shared state is immutable
// during the parallel phase. Scheduling runs on the work-stealing
// ThreadPool (common/thread_pool.h); results and JoinStats counters are
// accumulated per worker slot and merged at the end, so the output is
// bit-identical to SPPJF at any thread count.

#ifndef STPS_CORE_SPPJ_F_PARALLEL_H_
#define STPS_CORE_SPPJ_F_PARALLEL_H_

#include <vector>

#include "common/thread_pool.h"
#include "core/database.h"
#include "core/join_stats.h"
#include "core/similarity.h"

namespace stps {

class UserGrid;                 // core/user_grid.h
class SpatioTextualGridIndex;   // core/user_grid.h

/// One user's filter/refine pass of the parallel S-PPJ-F: candidates are
/// restricted to users earlier in the total order, so each pair is
/// evaluated exactly once no matter how users are distributed over
/// workers. Exported as the unit of work shared by SPPJFParallel and the
/// sharded driver (core/sharded_join.h) — one implementation is what
/// makes their results bit-identical.
void SPPJFProcessUser(const ObjectDatabase& db, const UserGrid& grid,
                      const SpatioTextualGridIndex& index,
                      const STPSQuery& query, UserId u,
                      std::vector<ScoredUserPair>* out, JoinStats* stats);

/// Builds the complete spatio-textual index over all users (ascending id
/// order, so inverted lists ascend and the u' < u filter can stop early).
void SPPJFBuildFullIndex(const ObjectDatabase& db, const UserGrid& grid,
                         SpatioTextualGridIndex* index);

/// Evaluates the STPSJoin query on the work-stealing pool. Produces the
/// same result as SPPJF (sorted by (a, b), exact scores). Preconditions:
/// eps_doc > 0, eps_u > 0, parallel.num_threads >= 1.
std::vector<ScoredUserPair> SPPJFParallel(const ObjectDatabase& db,
                                          const STPSQuery& query,
                                          const ParallelOptions& parallel,
                                          JoinStats* stats = nullptr);

/// Convenience overload: `num_threads` workers, auto grain.
std::vector<ScoredUserPair> SPPJFParallel(const ObjectDatabase& db,
                                          const STPSQuery& query,
                                          int num_threads);

/// The pre-ThreadPool implementation — a plain std::thread loop pulling
/// users off one atomic counter. Kept only as the baseline for
/// bench_parallel_scaling (the pool must not be slower); new callers use
/// SPPJFParallel.
std::vector<ScoredUserPair> SPPJFParallelHandRolled(const ObjectDatabase& db,
                                                    const STPSQuery& query,
                                                    int num_threads);

}  // namespace stps

#endif  // STPS_CORE_SPPJ_F_PARALLEL_H_
