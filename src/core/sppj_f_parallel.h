// Multi-threaded S-PPJ-F — a shared-memory step toward the paper's
// future-work goal of distributed STPSJoin processing.
//
// Unlike the sequential algorithm, the spatio-textual grid index is built
// *once* over all users; each worker thread then processes a disjoint
// subset of users, restricting candidates to users earlier in the total
// order, so every pair is evaluated by exactly one worker. All shared
// state is immutable during the parallel phase.

#ifndef STPS_CORE_SPPJ_F_PARALLEL_H_
#define STPS_CORE_SPPJ_F_PARALLEL_H_

#include <vector>

#include "core/database.h"
#include "core/similarity.h"

namespace stps {

/// Evaluates the STPSJoin query with `num_threads` workers. Produces the
/// same result as SPPJF (sorted by (a, b), exact scores). Preconditions:
/// eps_doc > 0, eps_u > 0, num_threads >= 1.
std::vector<ScoredUserPair> SPPJFParallel(const ObjectDatabase& db,
                                          const STPSQuery& query,
                                          int num_threads);

}  // namespace stps

#endif  // STPS_CORE_SPPJ_F_PARALLEL_H_
