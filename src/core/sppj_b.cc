#include "core/sppj_b.h"

#include <algorithm>

#include "core/ppjb.h"
#include "core/user_grid.h"

namespace stps {

std::vector<ScoredUserPair> SPPJB(const ObjectDatabase& db,
                                  const STPSQuery& query) {
  std::vector<ScoredUserPair> result;
  if (db.num_objects() == 0) return result;
  const UserGrid grid(db, query.eps_loc);
  const MatchThresholds t = query.match_thresholds();
  const size_t n = db.num_users();
  for (UserId u1 = 0; u1 < n; ++u1) {
    for (UserId u2 = 0; u2 < u1; ++u2) {
      const double sigma =
          PPJBPair(grid.UserCells(u1), db.UserObjectCount(u1),
                   grid.UserCells(u2), db.UserObjectCount(u2),
                   grid.geometry(), t, query.eps_u);
      if (sigma >= query.eps_u) {
        result.push_back({u2, u1, sigma});
      }
    }
  }
  std::sort(result.begin(), result.end(),
            [](const ScoredUserPair& x, const ScoredUserPair& y) {
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });
  return result;
}

}  // namespace stps
