#include "core/sppj_b.h"

#include <algorithm>

#include "common/predicates.h"
#include "core/parallel_util.h"
#include "core/ppjb.h"
#include "core/user_grid.h"

namespace stps {

namespace {

// Joins user u1 against every earlier user; shared by the sequential and
// parallel drivers (the parallel driver hands each worker its own `out`
// and `stats`, so results and counters are race-free by construction).
void ProcessUserB(const ObjectDatabase& db, const UserGrid& grid,
                  const STPSQuery& query, const MatchThresholds& t,
                  UserId u1, std::vector<ScoredUserPair>* out,
                  JoinStats* stats) {
  for (UserId u2 = 0; u2 < u1; ++u2) {
    if (stats != nullptr) {
      ++stats->pairs_candidate;
      ++stats->pairs_verified;
    }
    const size_t total = db.UserObjectCount(u1) + db.UserObjectCount(u2);
    size_t matched = 0;
    const double sigma =
        PPJBPair(grid.UserCells(u1), db.UserObjectCount(u1),
                 grid.UserCells(u2), db.UserObjectCount(u2),
                 grid.geometry(), t, query.eps_u, stats, &matched);
    // Membership is the exact counting predicate (common/predicates.h);
    // the double sigma is only the reported score.
    if (SigmaAtLeast(matched, total, query.eps_u)) {
      out->push_back({u2, u1, sigma});
      if (stats != nullptr) ++stats->matches_found;
    }
  }
}

}  // namespace

std::vector<ScoredUserPair> SPPJB(const ObjectDatabase& db,
                                  const STPSQuery& query, JoinStats* stats) {
  std::vector<ScoredUserPair> result;
  if (db.num_objects() == 0) return result;
  const UserGrid grid(db, query.eps_loc);
  const MatchThresholds t = query.match_thresholds();
  const size_t n = db.num_users();
  for (UserId u1 = 0; u1 < n; ++u1) {
    ProcessUserB(db, grid, query, t, u1, &result, stats);
  }
  std::sort(result.begin(), result.end(), PairIdLess);
  return result;
}

std::vector<ScoredUserPair> SPPJBParallel(const ObjectDatabase& db,
                                          const STPSQuery& query,
                                          const ParallelOptions& parallel,
                                          JoinStats* stats) {
  STPS_CHECK(parallel.num_threads >= 1);
  if (db.num_objects() == 0) return {};
  const UserGrid grid(db, query.eps_loc);
  const MatchThresholds t = query.match_thresholds();
  const size_t n = db.num_users();

  ThreadPool pool(parallel.num_threads);
  const size_t slots = static_cast<size_t>(pool.num_threads());
  std::vector<std::vector<ScoredUserPair>> per_worker(slots);
  std::vector<JoinStats> worker_stats(slots);
  pool.ParallelForEach(0, n, parallel.grain, [&](size_t u1, int worker) {
    ProcessUserB(db, grid, query, t, static_cast<UserId>(u1),
                 &per_worker[static_cast<size_t>(worker)],
                 stats != nullptr ? &worker_stats[static_cast<size_t>(worker)]
                                  : nullptr);
  });
  MergeWorkerStats(stats, worker_stats);
  return MergeSortedPairs(&per_worker);
}

}  // namespace stps
