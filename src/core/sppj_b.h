// S-PPJ-B (Section 4.1.2): like S-PPJ-C, but each pair is evaluated with
// the PPJ-B traversal, whose Lemma 1 bound terminates a pair as soon as
// enough unmatched objects prove sigma < eps_u.

#ifndef STPS_CORE_SPPJ_B_H_
#define STPS_CORE_SPPJ_B_H_

#include <vector>

#include "core/database.h"
#include "core/similarity.h"

namespace stps {

/// Evaluates the STPSJoin query with S-PPJ-B. Same output contract as
/// SPPJC.
std::vector<ScoredUserPair> SPPJB(const ObjectDatabase& db,
                                  const STPSQuery& query);

}  // namespace stps

#endif  // STPS_CORE_SPPJ_B_H_
