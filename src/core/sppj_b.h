// S-PPJ-B (Section 4.1.2): like S-PPJ-C, but each pair is evaluated with
// the PPJ-B traversal, whose Lemma 1 bound terminates a pair as soon as
// enough unmatched objects prove sigma < eps_u.

#ifndef STPS_CORE_SPPJ_B_H_
#define STPS_CORE_SPPJ_B_H_

#include <vector>

#include "common/thread_pool.h"
#include "core/database.h"
#include "core/join_stats.h"
#include "core/similarity.h"

namespace stps {

/// Evaluates the STPSJoin query with S-PPJ-B. Same output contract as
/// SPPJC.
std::vector<ScoredUserPair> SPPJB(const ObjectDatabase& db,
                                  const STPSQuery& query,
                                  JoinStats* stats = nullptr);

/// Parallel S-PPJ-B: the probing-user loop is distributed over the
/// work-stealing thread pool; every pair is still evaluated exactly once
/// and the result is bit-identical to SPPJB at any thread count.
std::vector<ScoredUserPair> SPPJBParallel(const ObjectDatabase& db,
                                          const STPSQuery& query,
                                          const ParallelOptions& parallel,
                                          JoinStats* stats = nullptr);

}  // namespace stps

#endif  // STPS_CORE_SPPJ_B_H_
