// Filter/refine instrumentation for the STPSJoin algorithms.
//
// Every join driver can report where the candidate pairs went — the key
// signal for tuning the filters (the PPJoin lineage and SEAL both tune on
// candidate/verification counts). Counters are plain uint64_t: the
// parallel drivers give each worker its own JoinStats and Merge them when
// the join completes, so the hot paths never touch shared memory.
//
// Counter semantics (a pair = unordered user pair considered once):
//  * cells_visited         — cell/leaf visits: (cell, neighbour) probes in
//                            the filter stage plus merged cells traversed
//                            by the refine kernels.
//  * pairs_pruned_spatial  — pairs dismissed because the two users share
//                            no eps_loc-neighbouring partitions (never
//                            surfaced by the grid/leaf filter).
//  * pairs_pruned_textual  — pairs spatially co-located but with no common
//                            token in any co-located partition.
//  * pairs_candidate       — pairs that survived the filter stage (for the
//                            filterless S-PPJ-B/C: every pair).
//  * pairs_pruned_count    — candidates killed by the sigma_bar object-
//                            count upper bound before verification.
//  * pairs_verified        — refine-kernel invocations.
//  * refine_early_stops    — verifications cut short by the Lemma 1
//                            unmatched-object bound inside the kernel.
//  * signature_rejections  — object-level Jaccard tests resolved by the
//                            64-bit bitmap signature bound alone, without
//                            touching either token list (text/intersect.h).
//  * batch_distance_calls  — probe invocations of the batched eps_loc
//                            kernels (spatial/batch.h): one per (probe
//                            object, cell block) pair.
//  * batch_lanes_filled    — candidate distances evaluated by those
//                            invocations (sum of block sizes); divided by
//                            batch_distance_calls this is the average
//                            batch width, the measure of how much the
//                            SoA layout actually amortises.
//  * matches_found         — result pairs (for top-k: the final k).
//  * sketch_candidate_pairs — user pairs surfaced by the per-user sketch
//                            layer's band index (sketch/sketch.h); every
//                            one of them flows into the exact verify
//                            path, so for the sketch drivers this equals
//                            pairs_candidate.
//  * sketch_rejections     — band-index pairs disproven by the occupancy
//                            sketches before verification (each such
//                            rejection is an exact spatial separation
//                            proof; rejected pairs are never candidates).
//  * planner_estimated_candidates — the query planner's pre-run estimate
//                            of pairs_candidate (planner/cost_model.h);
//                            comparing it against the measured counter is
//                            how Explain and the feedback loop judge the
//                            selectivity model. 0 when the run bypassed
//                            the planner (no cached PlannerStats).
//  * planner_plan_switches — 1 when a kAuto run chose a different plan
//                            shape than the previous kAuto run of the
//                            same query signature (0 otherwise, and for
//                            explicit algorithm choices). Summed across
//                            runs it measures planner convergence.
//
// Invariants (asserted by the consistency fuzz suite):
//   pairs_candidate == pairs_pruned_count + pairs_verified
//   pairs_verified  >= matches_found
//   sketch_candidate_pairs >= matches_found   (sketch drivers)

#ifndef STPS_CORE_JOIN_STATS_H_
#define STPS_CORE_JOIN_STATS_H_

#include <cstdint>
#include <cstdio>
#include <string>

namespace stps {

struct JoinStats {
  uint64_t cells_visited = 0;
  uint64_t pairs_pruned_spatial = 0;
  uint64_t pairs_pruned_textual = 0;
  uint64_t pairs_candidate = 0;
  uint64_t pairs_pruned_count = 0;
  uint64_t pairs_verified = 0;
  uint64_t refine_early_stops = 0;
  uint64_t signature_rejections = 0;
  uint64_t batch_distance_calls = 0;
  uint64_t batch_lanes_filled = 0;
  uint64_t matches_found = 0;
  uint64_t sketch_candidate_pairs = 0;
  uint64_t sketch_rejections = 0;
  uint64_t planner_estimated_candidates = 0;
  uint64_t planner_plan_switches = 0;

  /// Sums another accumulator into this one (worker merge).
  void Merge(const JoinStats& o) {
    cells_visited += o.cells_visited;
    pairs_pruned_spatial += o.pairs_pruned_spatial;
    pairs_pruned_textual += o.pairs_pruned_textual;
    pairs_candidate += o.pairs_candidate;
    pairs_pruned_count += o.pairs_pruned_count;
    pairs_verified += o.pairs_verified;
    refine_early_stops += o.refine_early_stops;
    signature_rejections += o.signature_rejections;
    batch_distance_calls += o.batch_distance_calls;
    batch_lanes_filled += o.batch_lanes_filled;
    matches_found += o.matches_found;
    sketch_candidate_pairs += o.sketch_candidate_pairs;
    sketch_rejections += o.sketch_rejections;
    planner_estimated_candidates += o.planner_estimated_candidates;
    planner_plan_switches += o.planner_plan_switches;
  }

  friend bool operator==(const JoinStats& x, const JoinStats& y) {
    return x.cells_visited == y.cells_visited &&
           x.pairs_pruned_spatial == y.pairs_pruned_spatial &&
           x.pairs_pruned_textual == y.pairs_pruned_textual &&
           x.pairs_candidate == y.pairs_candidate &&
           x.pairs_pruned_count == y.pairs_pruned_count &&
           x.pairs_verified == y.pairs_verified &&
           x.refine_early_stops == y.refine_early_stops &&
           x.signature_rejections == y.signature_rejections &&
           x.batch_distance_calls == y.batch_distance_calls &&
           x.batch_lanes_filled == y.batch_lanes_filled &&
           x.matches_found == y.matches_found &&
           x.sketch_candidate_pairs == y.sketch_candidate_pairs &&
           x.sketch_rejections == y.sketch_rejections &&
           x.planner_estimated_candidates == y.planner_estimated_candidates &&
           x.planner_plan_switches == y.planner_plan_switches;
  }
};

/// One-line rendering for bench / log output.
inline std::string FormatJoinStats(const JoinStats& s) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "cells=%llu prunedS/T/C=%llu/%llu/%llu cand=%llu "
                "verified=%llu earlystop=%llu sigrej=%llu batch=%llu/%llu "
                "matches=%llu sketch=%llu/%llu plan_est=%llu switches=%llu",
                static_cast<unsigned long long>(s.cells_visited),
                static_cast<unsigned long long>(s.pairs_pruned_spatial),
                static_cast<unsigned long long>(s.pairs_pruned_textual),
                static_cast<unsigned long long>(s.pairs_pruned_count),
                static_cast<unsigned long long>(s.pairs_candidate),
                static_cast<unsigned long long>(s.pairs_verified),
                static_cast<unsigned long long>(s.refine_early_stops),
                static_cast<unsigned long long>(s.signature_rejections),
                static_cast<unsigned long long>(s.batch_distance_calls),
                static_cast<unsigned long long>(s.batch_lanes_filled),
                static_cast<unsigned long long>(s.matches_found),
                static_cast<unsigned long long>(s.sketch_candidate_pairs),
                static_cast<unsigned long long>(s.sketch_rejections),
                static_cast<unsigned long long>(s.planner_estimated_candidates),
                static_cast<unsigned long long>(s.planner_plan_switches));
  return buf;
}

}  // namespace stps

#endif  // STPS_CORE_JOIN_STATS_H_
