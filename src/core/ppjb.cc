#include "core/ppjb.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/predicates.h"
#include "core/similarity.h"
#include "stjoin/ppj.h"

namespace stps {

namespace {

// The paper numbers grid rows from 1 at the bottom; rows 1, 3, 5, ... are
// the "odd" rows that perform the wide join step and host the bound
// checks. GridGeometry rows are 0-based, so paper-odd <=> even index.
bool IsOddRow(int64_t row) { return (row % 2) == 0; }

// Per-thread scratch for the pair kernels: the flag vectors, neighbour
// list, and merged traversal are reused across the millions of user pairs
// a join evaluates (thread_local so the pool workers never share).
struct PairScratch {
  std::vector<uint8_t> matched_u;
  std::vector<uint8_t> matched_v;
  std::vector<CellId> neighbors;
  std::vector<MergedPartition> merged;
};

PairScratch& LocalScratch() {
  thread_local PairScratch scratch;
  return scratch;
}

// Warms the cache lines of the next merged cell's coordinate blocks while
// the current cell is being joined — the traversal order is known, so the
// streamed SoA reads of the batch kernel rarely miss.
inline void PrefetchMerged(const UserLayout& cu, const UserLayout& cv,
                           const std::vector<MergedPartition>& merged,
                           size_t idx) {
  if (idx + 1 >= merged.size()) return;
  const MergedPartition& next = merged[idx + 1];
  if (next.u != nullptr) {
    __builtin_prefetch(cu.xs.data() + next.u->begin);
    __builtin_prefetch(cu.ys.data() + next.u->begin);
  }
  if (next.v != nullptr) {
    __builtin_prefetch(cv.xs.data() + next.v->begin);
    __builtin_prefetch(cv.ys.data() + next.v->begin);
  }
}

}  // namespace

double PPJCPair(const UserLayout& cu, size_t nu, const UserLayout& cv,
                size_t nv, const GridGeometry& grid,
                const MatchThresholds& t, JoinStats* stats,
                size_t* matched_out) {
  if (matched_out != nullptr) *matched_out = 0;
  if (nu + nv == 0) return 0.0;
  PairScratch& scratch = LocalScratch();
  std::vector<uint8_t>& matched_u = scratch.matched_u;
  std::vector<uint8_t>& matched_v = scratch.matched_v;
  matched_u.assign(nu, 0);
  matched_v.assign(nv, 0);
  uint32_t matched_total = 0;
  std::vector<CellId>& neighbors = scratch.neighbors;
  neighbors.reserve(9);  // 3x3 neighbourhood
  MergePartitionLists(cu, cv, &scratch.merged);
  const std::vector<MergedPartition>& merged = scratch.merged;
  for (size_t idx = 0; idx < merged.size(); ++idx) {
    const MergedPartition& cell = merged[idx];
    PrefetchMerged(cu, cv, merged, idx);
    if (stats != nullptr) ++stats->cells_visited;
    neighbors.clear();
    grid.AppendNeighborhood(cell.id, /*include_self=*/true, &neighbors);
    if (cell.u != nullptr) {
      const CellBlock bu = BlockOf(cu, cell.u);
      // Join Du_c with Dv_n for every adjacent n with id >= c.
      for (const CellId n : neighbors) {
        if (n < cell.id) continue;
        const UserPartition* pv =
            n == cell.id ? cell.v : FindPartition(cv, n);
        if (pv == nullptr) continue;
        matched_total += PPJCrossMarkBatch(bu, BlockOf(cv, pv), t,
                                           &matched_u, &matched_v, stats);
      }
    }
    if (cell.v != nullptr) {
      const CellBlock bv = BlockOf(cv, cell.v);
      // Join Du_n with Dv_c for every adjacent n with id > c (the id == c
      // pair was handled above).
      for (const CellId n : neighbors) {
        if (n <= cell.id) continue;
        const UserPartition* pu = FindPartition(cu, n);
        if (pu == nullptr) continue;
        matched_total += PPJCrossMarkBatch(BlockOf(cu, pu), bv, t,
                                           &matched_u, &matched_v, stats);
      }
    }
  }
  if (matched_out != nullptr) *matched_out = matched_total;
  return static_cast<double>(matched_total) / static_cast<double>(nu + nv);
}

double PPJBPair(const UserLayout& cu, size_t nu, const UserLayout& cv,
                size_t nv, const GridGeometry& grid,
                const MatchThresholds& t, double eps_u, JoinStats* stats,
                size_t* matched_out) {
  if (matched_out != nullptr) *matched_out = 0;
  if (nu + nv == 0) return 0.0;
  const bool bounded = eps_u > 0.0;
  // Lemma 1 as an exact integer budget: stopping when the number of
  // definitely-unmatched objects exceeds it is equivalent to
  // !SigmaAtLeast(best-possible matched, nu + nv, eps_u), so a pair whose
  // sigma lands exactly on eps_u is never pruned (the float form
  // (1 - eps_u) * (nu + nv) could be one ULP too tight).
  const int64_t budget = SigmaUnmatchedBudget(nu + nv, eps_u);
  PairScratch& scratch = LocalScratch();
  std::vector<uint8_t>& matched_u = scratch.matched_u;
  std::vector<uint8_t>& matched_v = scratch.matched_v;
  matched_u.assign(nu, 0);
  matched_v.assign(nv, 0);
  uint32_t matched_total = 0;
  size_t seen_objects = 0;

  MergePartitionLists(cu, cv, &scratch.merged);
  const std::vector<MergedPartition>& merged = scratch.merged;
  std::vector<CellId>& neighbors = scratch.neighbors;
  neighbors.reserve(9);
  int64_t current_row = merged.empty() ? 0 : grid.RowOf(merged.front().id);

  for (size_t idx = 0; idx < merged.size(); ++idx) {
    const MergedPartition& cell = merged[idx];
    PrefetchMerged(cu, cv, merged, idx);
    const int64_t row = grid.RowOf(cell.id);
    if (row != current_row) {
      // The previous row is complete. Every object seen so far has had all
      // of its candidate pairs examined when the completed row was odd, or
      // when an empty row separates it from the next occupied row.
      if (bounded && (IsOddRow(current_row) || row > current_row + 1)) {
        // matched_total may exceed seen_objects (matches can mark objects
        // in cells not yet traversed), so compute the lower bound signed.
        const int64_t unmatched_lower_bound =
            static_cast<int64_t>(seen_objects) -
            static_cast<int64_t>(matched_total);
        if (unmatched_lower_bound > budget) {
          if (stats != nullptr) ++stats->refine_early_stops;
          return 0.0;
        }
      }
      current_row = row;
    }
    if (stats != nullptr) ++stats->cells_visited;
    seen_objects += (cell.u ? cell.u->objects.size() : 0) +
                    (cell.v ? cell.v->objects.size() : 0);

    neighbors.clear();
    if (IsOddRow(row)) {
      grid.AppendOddRowNeighbors(cell.id, &neighbors);
    } else {
      grid.AppendEvenRowNeighbors(cell.id, &neighbors);
    }
    for (const CellId n : neighbors) {
      if (n == cell.id) {
        if (cell.u != nullptr && cell.v != nullptr) {
          matched_total +=
              PPJCrossMarkBatch(BlockOf(cu, cell.u), BlockOf(cv, cell.v), t,
                                &matched_u, &matched_v, stats);
        }
        continue;
      }
      // The traversal enumerates each unordered adjacent cell pair exactly
      // once, so both cross directions are joined here.
      if (cell.u != nullptr) {
        const UserPartition* pv = FindPartition(cv, n);
        if (pv != nullptr) {
          matched_total +=
              PPJCrossMarkBatch(BlockOf(cu, cell.u), BlockOf(cv, pv), t,
                                &matched_u, &matched_v, stats);
        }
      }
      if (cell.v != nullptr) {
        const UserPartition* pu = FindPartition(cu, n);
        if (pu != nullptr) {
          matched_total +=
              PPJCrossMarkBatch(BlockOf(cu, pu), BlockOf(cv, cell.v), t,
                                &matched_u, &matched_v, stats);
        }
      }
    }
  }
  if (matched_out != nullptr) *matched_out = matched_total;
  return static_cast<double>(matched_total) / static_cast<double>(nu + nv);
}

double PairSigma(std::span<const STObject> du, std::span<const STObject> dv,
                 const MatchThresholds& t, size_t* matched_out) {
  if (matched_out != nullptr) *matched_out = 0;
  if (du.empty() || dv.empty()) return 0.0;
  Rect bounds = Rect::Empty();
  for (const STObject& o : du) bounds.ExpandToInclude(o.loc);
  for (const STObject& o : dv) bounds.ExpandToInclude(o.loc);
  const GridGeometry grid(bounds, t.eps_loc);

  const auto build = [&grid](std::span<const STObject> objects) {
    std::vector<std::pair<int64_t, ObjectRef>> keyed;
    keyed.reserve(objects.size());
    for (uint32_t i = 0; i < objects.size(); ++i) {
      keyed.emplace_back(grid.CellOf(objects[i].loc),
                         ObjectRef{&objects[i], i});
    }
    std::stable_sort(keyed.begin(), keyed.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    return MakeUserLayout(keyed);
  };
  const UserLayout cu = build(du);
  const UserLayout cv = build(dv);
  return PPJCPair(cu, du.size(), cv, dv.size(), grid, t, nullptr,
                  matched_out);
}

}  // namespace stps
