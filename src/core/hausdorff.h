// Hausdorff distance between point sets — the similarity measure of the
// closest related work (Adelfio, Nutanong, Samet, SIGSPATIAL 2011). The
// paper argues that its sigma measure captures *partial* similarity that
// the Hausdorff distance (a maximum-discrepancy measure) cannot; the
// bench_ablation_hausdorff driver quantifies that claim by comparing the
// two rankings on the same data.

#ifndef STPS_CORE_HAUSDORFF_H_
#define STPS_CORE_HAUSDORFF_H_

#include <span>
#include <vector>

#include "core/database.h"
#include "core/similarity.h"
#include "stjoin/object.h"

namespace stps {

/// Directed Hausdorff distance h(A -> B) = max_{a in A} min_{b in B}
/// dist(a, b). Returns +inf when A is non-empty and B is empty; 0 when A
/// is empty. O(|A| * |B|) worst case with the classic early-break scan.
double DirectedHausdorff(std::span<const STObject> a,
                         std::span<const STObject> b);

/// Symmetric Hausdorff distance H(A, B) = max(h(A->B), h(B->A)).
double HausdorffDistance(std::span<const STObject> a,
                         std::span<const STObject> b);

/// The k user pairs with the *smallest* Hausdorff distance (purely
/// spatial — keywords are ignored, as in the related work). Results carry
/// the distance in `score` and are sorted ascending by it (ties by ids).
std::vector<ScoredUserPair> HausdorffTopK(const ObjectDatabase& db,
                                          size_t k);

}  // namespace stps

#endif  // STPS_CORE_HAUSDORFF_H_
