#include "core/user_grid.h"

#include <algorithm>

#include "text/token_set.h"

namespace stps {

UserLayout MakeUserLayout(
    std::span<const std::pair<int64_t, ObjectRef>> keyed) {
  UserLayout layout;
  const size_t n = keyed.size();
  layout.refs.reserve(n);
  layout.xs.reserve(n);
  layout.ys.reserve(n);
  for (const auto& [id, ref] : keyed) {
    if (layout.cells.empty() || layout.cells.back().id != id) {
      layout.cells.push_back(UserPartition{
          id, {}, static_cast<uint32_t>(layout.refs.size())});
    }
    layout.refs.push_back(ref);
    layout.xs.push_back(ref.object->loc.x);
    layout.ys.push_back(ref.object->loc.y);
  }
  // Fix up the partition spans only now that refs has its final buffer.
  for (size_t c = 0; c < layout.cells.size(); ++c) {
    UserPartition& p = layout.cells[c];
    const uint32_t end = c + 1 < layout.cells.size()
                             ? layout.cells[c + 1].begin
                             : static_cast<uint32_t>(layout.refs.size());
    p.objects = std::span<const ObjectRef>(layout.refs.data() + p.begin,
                                           end - p.begin);
  }
  return layout;
}

UserGrid::UserGrid(const ObjectDatabase& db, double eps_loc)
    : geometry_(db.bounds(), eps_loc) {
  per_user_.resize(db.num_users());
  std::vector<std::pair<CellId, uint32_t>> scratch;  // (cell, local index)
  std::vector<std::pair<int64_t, ObjectRef>> keyed;
  for (UserId u = 0; u < db.num_users(); ++u) {
    const std::span<const STObject> objects = db.UserObjects(u);
    scratch.clear();
    scratch.reserve(objects.size());
    for (uint32_t i = 0; i < objects.size(); ++i) {
      scratch.emplace_back(geometry_.CellOf(objects[i].loc), i);
    }
    // The Z-ordered slots arrive nearly cell-sorted already; the sort key
    // keeps (cell, local) so a cell's objects stay in slot order.
    std::sort(scratch.begin(), scratch.end());
    keyed.clear();
    keyed.reserve(scratch.size());
    for (const auto& [cell, local] : scratch) {
      keyed.emplace_back(cell, ObjectRef{&objects[local], local});
    }
    per_user_[u] = MakeUserLayout(keyed);
  }
}

const UserPartition* FindPartition(const UserPartitionList& list,
                                   int64_t id) {
  const auto it = std::lower_bound(
      list.begin(), list.end(), id,
      [](const UserPartition& p, int64_t v) { return p.id < v; });
  if (it == list.end() || it->id != id) return nullptr;
  return &*it;
}

size_t PartitionObjectCount(const UserPartitionList& list, int64_t id) {
  const UserPartition* p = FindPartition(list, id);
  return p == nullptr ? 0 : p->objects.size();
}

void MergePartitionLists(const UserPartitionList& cu,
                         const UserPartitionList& cv,
                         std::vector<MergedPartition>* out) {
  out->clear();
  out->reserve(cu.size() + cv.size());
  size_t i = 0, j = 0;
  while (i < cu.size() || j < cv.size()) {
    if (j >= cv.size() || (i < cu.size() && cu[i].id < cv[j].id)) {
      out->push_back({cu[i].id, &cu[i], nullptr});
      ++i;
    } else if (i >= cu.size() || cv[j].id < cu[i].id) {
      out->push_back({cv[j].id, nullptr, &cv[j]});
      ++j;
    } else {
      out->push_back({cu[i].id, &cu[i], &cv[j]});
      ++i;
      ++j;
    }
  }
}

std::vector<MergedPartition> MergePartitionLists(
    const UserPartitionList& cu, const UserPartitionList& cv) {
  std::vector<MergedPartition> merged;
  MergePartitionLists(cu, cv, &merged);
  return merged;
}

void DistinctTokens(std::span<const ObjectRef> objects, TokenVector* out) {
  out->clear();
  for (const ObjectRef& ref : objects) {
    out->insert(out->end(), ref.object->doc.begin(), ref.object->doc.end());
  }
  NormalizeTokenSet(out);
}

TokenVector DistinctTokens(std::span<const ObjectRef> objects) {
  TokenVector tokens;
  DistinctTokens(objects, &tokens);
  return tokens;
}

void SpatioTextualGridIndex::AddUser(UserId u, const UserLayout& cells) {
  thread_local TokenVector tokens;
  for (const UserPartition& cell : cells) {
    CellIndex& index = cells_[cell.id];
    index.users.push_back(u);  // cells ascend, so one entry per (u, cell)
    DistinctTokens(cell.objects, &tokens);
    for (const TokenId t : tokens) {
      index.token_users[t].push_back(u);
    }
  }
}

const std::vector<UserId>* SpatioTextualGridIndex::CellUsers(
    CellId cell) const {
  const auto it = cells_.find(cell);
  if (it == cells_.end()) return nullptr;
  return &it->second.users;
}

const std::vector<UserId>* SpatioTextualGridIndex::TokenUsers(
    CellId cell, TokenId t) const {
  const auto cell_it = cells_.find(cell);
  if (cell_it == cells_.end()) return nullptr;
  const auto token_it = cell_it->second.token_users.find(t);
  if (token_it == cell_it->second.token_users.end()) return nullptr;
  return &token_it->second;
}

size_t CountColocatedEarlierUsers(const GridGeometry& geometry,
                                  const SpatioTextualGridIndex& index,
                                  const UserLayout& cu, UserId u) {
  // Hoisted per-thread scratch: this runs once per probing user in every
  // S-PPJ-F driver, and the two buffers otherwise cost an allocation each
  // per call.
  thread_local std::vector<UserId> colocated;
  thread_local std::vector<CellId> neighbors;
  colocated.clear();
  for (const UserPartition& cell : cu) {
    neighbors.clear();
    geometry.AppendNeighborhood(cell.id, /*include_self=*/true, &neighbors);
    for (const CellId other : neighbors) {
      const std::vector<UserId>* users = index.CellUsers(other);
      if (users == nullptr) continue;
      for (const UserId candidate : *users) {
        if (candidate >= u) break;  // lists ascend by user id
        colocated.push_back(candidate);
      }
    }
  }
  SortUnique(&colocated);
  return colocated.size();
}

}  // namespace stps
