#include "core/database.h"

#include <algorithm>
#include <numeric>

#include "text/token_set.h"

namespace stps {

namespace {

template <typename StringLike>
void AddObjectImpl(std::unordered_map<std::string, uint32_t>* user_index,
                   std::vector<std::string>* user_names,
                   Dictionary* dictionary, std::string_view user_key,
                   std::span<const StringLike> keywords, uint32_t* out_user,
                   TokenVector* out_tokens) {
  auto [it, inserted] =
      user_index->try_emplace(std::string(user_key),
                              static_cast<uint32_t>(user_names->size()));
  if (inserted) user_names->emplace_back(user_key);
  *out_user = it->second;
  out_tokens->clear();
  out_tokens->reserve(keywords.size());
  for (const auto& kw : keywords) {
    out_tokens->push_back(
        dictionary->Intern(std::string_view(kw), /*count_occurrence=*/false));
  }
  // Document frequency counts each token once per object.
  NormalizeTokenSet(out_tokens);
  for (const TokenId t : *out_tokens) dictionary->CountOccurrence(t);
}

}  // namespace

void DatabaseBuilder::AddObject(std::string_view user_key, Point loc,
                                std::span<const std::string_view> keywords,
                                double time) {
  PendingObject obj;
  obj.loc = loc;
  obj.time = time;
  AddObjectImpl(&user_index_, &user_names_, &dictionary_, user_key, keywords,
                &obj.user, &obj.tokens);
  objects_.push_back(std::move(obj));
}

void DatabaseBuilder::AddObject(std::string_view user_key, Point loc,
                                std::span<const std::string> keywords,
                                double time) {
  PendingObject obj;
  obj.loc = loc;
  obj.time = time;
  AddObjectImpl(&user_index_, &user_names_, &dictionary_, user_key, keywords,
                &obj.user, &obj.tokens);
  objects_.push_back(std::move(obj));
}

ObjectDatabase DatabaseBuilder::Build() && {
  ObjectDatabase db;
  const std::vector<TokenId> permutation = dictionary_.FinalizeByFrequency();
  db.dictionary_ = std::move(dictionary_);
  db.user_names_ = std::move(user_names_);

  const size_t num_users = db.user_names_.size();
  // Group objects per user with a counting sort (stable within a user).
  std::vector<uint32_t> counts(num_users, 0);
  for (const PendingObject& o : objects_) ++counts[o.user];
  db.user_begin_.assign(num_users + 1, 0);
  for (size_t u = 0; u < num_users; ++u) {
    db.user_begin_[u + 1] = db.user_begin_[u] + counts[u];
  }
  db.objects_.resize(objects_.size());
  std::vector<uint32_t> cursor(db.user_begin_.begin(),
                               db.user_begin_.end() - 1);
  // Pass 1: assign each object its slot in the user-grouped order and
  // remap its tokens into the frequency order (Remap re-sorts, keeping the
  // set canonical), then size the CSR arena with a prefix sum over slots.
  std::vector<uint32_t> slots(objects_.size());
  db.token_begin_.assign(objects_.size() + 1, 0);
  for (size_t k = 0; k < objects_.size(); ++k) {
    PendingObject& o = objects_[k];
    const uint32_t slot = cursor[o.user]++;
    slots[k] = slot;
    Dictionary::Remap(permutation, &o.tokens);
    db.token_begin_[slot + 1] = static_cast<uint32_t>(o.tokens.size());
  }
  for (size_t i = 0; i < objects_.size(); ++i) {
    db.token_begin_[i + 1] += db.token_begin_[i];
  }
  db.token_data_.resize(db.token_begin_.back());
  // Pass 2: copy tokens into the arena and point every object's doc span
  // (plus its bitmap signature) at its contiguous run.
  for (size_t k = 0; k < objects_.size(); ++k) {
    PendingObject& o = objects_[k];
    const uint32_t slot = slots[k];
    STObject& out = db.objects_[slot];
    out.id = slot;
    out.user = o.user;
    out.loc = o.loc;
    out.time = o.time;
    std::copy(o.tokens.begin(), o.tokens.end(),
              db.token_data_.begin() + db.token_begin_[slot]);
    out.set_doc(db.ObjectTokens(slot));
    db.bounds_.ExpandToInclude(out.loc);
  }
  objects_.clear();
  return db;
}

}  // namespace stps
