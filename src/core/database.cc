#include "core/database.h"

#include <algorithm>
#include <numeric>

#include "text/token_set.h"

namespace stps {

namespace {

template <typename StringLike>
void AddObjectImpl(std::unordered_map<std::string, uint32_t>* user_index,
                   std::vector<std::string>* user_names,
                   Dictionary* dictionary, std::string_view user_key,
                   std::span<const StringLike> keywords, uint32_t* out_user,
                   TokenVector* out_tokens) {
  auto [it, inserted] =
      user_index->try_emplace(std::string(user_key),
                              static_cast<uint32_t>(user_names->size()));
  if (inserted) user_names->emplace_back(user_key);
  *out_user = it->second;
  out_tokens->clear();
  out_tokens->reserve(keywords.size());
  for (const auto& kw : keywords) {
    out_tokens->push_back(
        dictionary->Intern(std::string_view(kw), /*count_occurrence=*/false));
  }
  // Document frequency counts each token once per object.
  NormalizeTokenSet(out_tokens);
  for (const TokenId t : *out_tokens) dictionary->CountOccurrence(t);
}

}  // namespace

void DatabaseBuilder::AddObject(std::string_view user_key, Point loc,
                                std::span<const std::string_view> keywords,
                                double time) {
  PendingObject obj;
  obj.loc = loc;
  obj.time = time;
  AddObjectImpl(&user_index_, &user_names_, &dictionary_, user_key, keywords,
                &obj.user, &obj.tokens);
  objects_.push_back(std::move(obj));
}

void DatabaseBuilder::AddObject(std::string_view user_key, Point loc,
                                std::span<const std::string> keywords,
                                double time) {
  PendingObject obj;
  obj.loc = loc;
  obj.time = time;
  AddObjectImpl(&user_index_, &user_names_, &dictionary_, user_key, keywords,
                &obj.user, &obj.tokens);
  objects_.push_back(std::move(obj));
}

ObjectDatabase DatabaseBuilder::Build() && {
  ObjectDatabase db;
  const std::vector<TokenId> permutation = dictionary_.FinalizeByFrequency();
  db.dictionary_ = std::move(dictionary_);
  db.user_names_ = std::move(user_names_);

  const size_t num_users = db.user_names_.size();
  // Group objects per user with a counting sort (stable within a user).
  std::vector<uint32_t> counts(num_users, 0);
  for (const PendingObject& o : objects_) ++counts[o.user];
  db.user_begin_.assign(num_users + 1, 0);
  for (size_t u = 0; u < num_users; ++u) {
    db.user_begin_[u + 1] = db.user_begin_[u] + counts[u];
  }
  db.objects_.resize(objects_.size());
  std::vector<uint32_t> cursor(db.user_begin_.begin(),
                               db.user_begin_.end() - 1);
  for (PendingObject& o : objects_) {
    const uint32_t slot = cursor[o.user]++;
    STObject& out = db.objects_[slot];
    out.id = slot;
    out.user = o.user;
    out.loc = o.loc;
    out.time = o.time;
    out.doc = std::move(o.tokens);
    Dictionary::Remap(permutation, &out.doc);
    db.bounds_.ExpandToInclude(out.loc);
  }
  objects_.clear();
  return db;
}

}  // namespace stps
