#include "core/database.h"

#include <algorithm>
#include <numeric>

#include "planner/planner_stats.h"
#include "sketch/sketch.h"
#include "spatial/batch.h"
#include "text/token_set.h"

namespace stps {

namespace {

template <typename StringLike>
void AddObjectImpl(std::unordered_map<std::string, uint32_t>* user_index,
                   std::vector<std::string>* user_names,
                   Dictionary* dictionary, std::string_view user_key,
                   std::span<const StringLike> keywords, uint32_t* out_user,
                   TokenVector* out_tokens) {
  auto [it, inserted] =
      user_index->try_emplace(std::string(user_key),
                              static_cast<uint32_t>(user_names->size()));
  if (inserted) user_names->emplace_back(user_key);
  *out_user = it->second;
  out_tokens->clear();
  out_tokens->reserve(keywords.size());
  for (const auto& kw : keywords) {
    out_tokens->push_back(
        dictionary->Intern(std::string_view(kw), /*count_occurrence=*/false));
  }
  // Document frequency counts each token once per object.
  NormalizeTokenSet(out_tokens);
  for (const TokenId t : *out_tokens) dictionary->CountOccurrence(t);
}

}  // namespace

void DatabaseBuilder::AddObject(std::string_view user_key, Point loc,
                                std::span<const std::string_view> keywords,
                                double time) {
  PendingObject obj;
  obj.loc = loc;
  obj.time = time;
  AddObjectImpl(&user_index_, &user_names_, &dictionary_, user_key, keywords,
                &obj.user, &obj.tokens);
  objects_.push_back(std::move(obj));
}

void DatabaseBuilder::AddObject(std::string_view user_key, Point loc,
                                std::span<const std::string> keywords,
                                double time) {
  PendingObject obj;
  obj.loc = loc;
  obj.time = time;
  AddObjectImpl(&user_index_, &user_names_, &dictionary_, user_key, keywords,
                &obj.user, &obj.tokens);
  objects_.push_back(std::move(obj));
}

ObjectDatabase DatabaseBuilder::Build() && {
  ObjectDatabase db;
  const std::vector<TokenId> permutation = dictionary_.FinalizeByFrequency();
  db.dictionary_ = std::move(dictionary_);
  db.user_names_ = std::move(user_names_);
  db.user_index_ = std::move(user_index_);

  const size_t num_users = db.user_names_.size();
  const size_t n = objects_.size();
  // Bounds first: the Z-order keys quantize against them.
  for (const PendingObject& o : objects_) db.bounds_.ExpandToInclude(o.loc);

  // Per-user slot ranges (users keep their dense-id order).
  std::vector<uint32_t> counts(num_users, 0);
  for (const PendingObject& o : objects_) ++counts[o.user];
  db.user_begin_.assign(num_users + 1, 0);
  for (size_t u = 0; u < num_users; ++u) {
    db.user_begin_[u + 1] = db.user_begin_[u] + counts[u];
  }

  // Physical slot order: (user, Morton key), stable so equal-key objects
  // keep their insertion order. `order[slot]` is the AddObject sequence
  // number landing in that slot — the permutation table we also publish.
  std::vector<uint64_t> zkey(n);
  for (size_t k = 0; k < n; ++k) {
    zkey[k] = ZOrderKey(db.bounds_, objects_[k].loc);
  }
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [this, &zkey](uint32_t a, uint32_t b) {
                     if (objects_[a].user != objects_[b].user) {
                       return objects_[a].user < objects_[b].user;
                     }
                     return zkey[a] < zkey[b];
                   });

  // Pass 1: walk the slots in order, remap each object's tokens into the
  // frequency order (Remap re-sorts, keeping the set canonical), and size
  // the CSR arena with a prefix sum over slots.
  db.token_begin_.assign(n + 1, 0);
  for (size_t slot = 0; slot < n; ++slot) {
    PendingObject& o = objects_[order[slot]];
    Dictionary::Remap(permutation, &o.tokens);
    db.token_begin_[slot + 1] = static_cast<uint32_t>(o.tokens.size());
  }
  for (size_t i = 0; i < n; ++i) {
    db.token_begin_[i + 1] += db.token_begin_[i];
  }
  db.token_data_.resize(db.token_begin_.back());

  // Pass 2: copy tokens into the arena, point every object's doc span
  // (plus its bitmap signature) at its contiguous run, and mirror the
  // slot into the SoA arrays the batch kernels stream.
  db.objects_.resize(n);
  db.xs_.resize(n);
  db.ys_.resize(n);
  db.users_.resize(n);
  db.sigs_.resize(n);
  for (size_t slot = 0; slot < n; ++slot) {
    PendingObject& o = objects_[order[slot]];
    STObject& out = db.objects_[slot];
    out.id = static_cast<ObjectId>(slot);
    out.user = o.user;
    out.loc = o.loc;
    out.time = o.time;
    std::copy(o.tokens.begin(), o.tokens.end(),
              db.token_data_.begin() + db.token_begin_[slot]);
    out.set_doc(db.ObjectTokens(slot));
    db.xs_[slot] = o.loc.x;
    db.ys_[slot] = o.loc.y;
    db.users_[slot] = o.user;
    db.sigs_[slot] = out.sig;
  }
  db.insertion_order_ = std::move(order);
  objects_.clear();
  // The sketch layer reads the finished database (bounds, user spans,
  // token arena), so it is the last construction step; io/binary.cc
  // round-trips rebuild it automatically by funnelling through here.
  db.sketches_ = BuildUserSketches(db);
  // Planner statistics likewise read the finished database; caching them
  // here is what lets ComputeDatasetStats and the query planner skip
  // their own scans (and io/binary.cc serialize the summary).
  db.planner_stats_ =
      std::make_shared<const PlannerStats>(ComputePlannerStats(db));
  return db;
}

}  // namespace stps
