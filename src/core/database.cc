#include "core/database.h"

#include <algorithm>
#include <numeric>

#include "planner/planner_stats.h"
#include "sketch/sketch.h"
#include "spatial/batch.h"
#include "text/token_set.h"

namespace stps {

namespace {

template <typename StringLike>
void AddObjectImpl(std::unordered_map<std::string, uint32_t>* user_index,
                   std::vector<std::string>* user_names,
                   Dictionary* dictionary, std::string_view user_key,
                   std::span<const StringLike> keywords, uint32_t* out_user,
                   TokenVector* out_tokens) {
  auto [it, inserted] =
      user_index->try_emplace(std::string(user_key),
                              static_cast<uint32_t>(user_names->size()));
  if (inserted) user_names->emplace_back(user_key);
  *out_user = it->second;
  out_tokens->clear();
  out_tokens->reserve(keywords.size());
  for (const auto& kw : keywords) {
    out_tokens->push_back(
        dictionary->Intern(std::string_view(kw), /*count_occurrence=*/false));
  }
  // Document frequency counts each token once per object.
  NormalizeTokenSet(out_tokens);
  for (const TokenId t : *out_tokens) dictionary->CountOccurrence(t);
}

}  // namespace

void DatabaseBuilder::AddObject(std::string_view user_key, Point loc,
                                std::span<const std::string_view> keywords,
                                double time) {
  PendingObject obj;
  obj.loc = loc;
  obj.time = time;
  AddObjectImpl(&user_index_, &user_names_, &dictionary_, user_key, keywords,
                &obj.user, &obj.tokens);
  objects_.push_back(std::move(obj));
}

void DatabaseBuilder::AddObject(std::string_view user_key, Point loc,
                                std::span<const std::string> keywords,
                                double time) {
  PendingObject obj;
  obj.loc = loc;
  obj.time = time;
  AddObjectImpl(&user_index_, &user_names_, &dictionary_, user_key, keywords,
                &obj.user, &obj.tokens);
  objects_.push_back(std::move(obj));
}

ObjectDatabase DatabaseBuilder::Build() && {
  ObjectDatabase db;
  const std::vector<TokenId> permutation = dictionary_.FinalizeByFrequency();
  db.dictionary_ = std::move(dictionary_);
  db.user_names_ = StringTable(std::move(user_names_), std::move(user_index_));

  const size_t num_users = db.user_names_.size();
  const size_t n = objects_.size();
  // Bounds first: the Z-order keys quantize against them.
  for (const PendingObject& o : objects_) db.bounds_.ExpandToInclude(o.loc);

  // Per-user slot ranges (users keep their dense-id order).
  std::vector<uint32_t> counts(num_users, 0);
  for (const PendingObject& o : objects_) ++counts[o.user];
  std::vector<uint32_t> user_begin(num_users + 1, 0);
  for (size_t u = 0; u < num_users; ++u) {
    user_begin[u + 1] = user_begin[u] + counts[u];
  }
  db.user_begin_ = std::move(user_begin);

  // Physical slot order: (user, Morton key), stable so equal-key objects
  // keep their insertion order. `order[slot]` is the AddObject sequence
  // number landing in that slot — the permutation table we also publish.
  std::vector<uint64_t> zkey(n);
  for (size_t k = 0; k < n; ++k) {
    zkey[k] = ZOrderKey(db.bounds_, objects_[k].loc);
  }
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [this, &zkey](uint32_t a, uint32_t b) {
                     if (objects_[a].user != objects_[b].user) {
                       return objects_[a].user < objects_[b].user;
                     }
                     return zkey[a] < zkey[b];
                   });

  // Pass 1: walk the slots in order, remap each object's tokens into the
  // frequency order (Remap re-sorts, keeping the set canonical), size the
  // CSR arena with a prefix sum over slots, and copy the tokens in. The
  // arena is complete before it moves into its column: pass 2's doc spans
  // point at the column's final storage.
  std::vector<uint32_t> token_begin(n + 1, 0);
  for (size_t slot = 0; slot < n; ++slot) {
    PendingObject& o = objects_[order[slot]];
    Dictionary::Remap(permutation, &o.tokens);
    token_begin[slot + 1] = static_cast<uint32_t>(o.tokens.size());
  }
  for (size_t i = 0; i < n; ++i) {
    token_begin[i + 1] += token_begin[i];
  }
  std::vector<TokenId> token_data(token_begin.back());
  for (size_t slot = 0; slot < n; ++slot) {
    const PendingObject& o = objects_[order[slot]];
    std::copy(o.tokens.begin(), o.tokens.end(),
              token_data.begin() + token_begin[slot]);
  }
  db.token_begin_ = std::move(token_begin);
  db.token_data_ = std::move(token_data);

  // Pass 2: point every object's doc span (plus its bitmap signature) at
  // its contiguous arena run, and mirror the slot into the SoA arrays the
  // batch kernels stream.
  std::vector<double> xs(n), ys(n);
  std::vector<UserId> users(n);
  std::vector<TokenSignature> sigs(n);
  db.objects_.resize(n);
  for (size_t slot = 0; slot < n; ++slot) {
    const PendingObject& o = objects_[order[slot]];
    STObject& out = db.objects_[slot];
    out.id = static_cast<ObjectId>(slot);
    out.user = o.user;
    out.loc = o.loc;
    out.time = o.time;
    out.set_doc(db.ObjectTokens(slot));
    xs[slot] = o.loc.x;
    ys[slot] = o.loc.y;
    users[slot] = o.user;
    sigs[slot] = out.sig;
  }
  db.xs_ = std::move(xs);
  db.ys_ = std::move(ys);
  db.users_ = std::move(users);
  db.sigs_ = std::move(sigs);
  db.insertion_order_ = std::move(order);
  objects_.clear();
  // The sketch layer reads the finished database (bounds, user spans,
  // token arena), so it is the last construction step; io/binary.cc
  // round-trips rebuild it automatically by funnelling through here.
  db.sketches_ = BuildUserSketches(db);
  // Planner statistics likewise read the finished database; caching them
  // here is what lets ComputeDatasetStats and the query planner skip
  // their own scans (and io/binary.cc serialize the summary).
  db.planner_stats_ =
      std::make_shared<const PlannerStats>(ComputePlannerStats(db));
  return db;
}

}  // namespace stps
