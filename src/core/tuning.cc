#include "core/tuning.h"

#include <algorithm>
#include <array>

#include "common/predicates.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/database.h"
#include "core/ppjb.h"
#include "core/stpsjoin.h"

namespace stps {

namespace {

constexpr int kNumParams = 3;  // eps_loc, eps_doc, eps_u

// One node of the depth-first search over the threshold lattice.
struct SearchNode {
  STPSQuery query;
  std::vector<ScoredUserPair> pairs;
  std::array<bool, kNumParams> tried = {false, false, false};
};

// Applies one tightening step to parameter `param`; returns false when the
// step would leave the valid threshold domain.
bool Tighten(const STPSQuery& base, const TuningOptions& options, int param,
             STPSQuery* out) {
  *out = base;
  switch (param) {
    case 0: {
      const double step = options.step_fraction * options.initial.eps_loc;
      out->eps_loc = base.eps_loc - step;
      return out->eps_loc > 0.0;
    }
    case 1: {
      const double step = options.step_fraction * options.initial.eps_doc;
      out->eps_doc = base.eps_doc + step;
      return out->eps_doc <= 1.0;
    }
    default: {
      const double step = options.step_fraction * options.initial.eps_u;
      out->eps_u = base.eps_u + step;
      return out->eps_u <= 1.0;
    }
  }
}

}  // namespace

TuningResult TuneThresholds(const ObjectDatabase& db,
                            const TuningOptions& options) {
  STPS_CHECK(options.initial.eps_doc > 0.0);
  STPS_CHECK(options.initial.eps_u > 0.0);
  STPS_CHECK(options.target_size > 0);
  TuningResult result;
  result.thresholds = options.initial;

  Timer initial_timer;
  // The initial full join is the expensive step of the search; let the
  // planner pick how to run it. Every algorithm is exact, so the tuned
  // thresholds cannot depend on the choice (pinned by tuning_test).
  JoinOptions join_options;
  join_options.algorithm = JoinAlgorithm::kAuto;
  std::vector<ScoredUserPair> initial_pairs =
      RunSTPSJoin(db, options.initial, join_options);
  result.initial_join_millis = initial_timer.ElapsedMillis();
  result.result = initial_pairs;

  if (initial_pairs.size() <= options.target_size) {
    // Already at (or below) the target; nothing to tighten.
    result.converged = !initial_pairs.empty();
    return result;
  }

  Timer tuning_timer;
  Rng rng(options.seed);
  std::array<size_t, kNumParams> modifications = {0, 0, 0};
  std::vector<SearchNode> stack;
  stack.push_back(SearchNode{options.initial, std::move(initial_pairs), {}});

  while (!stack.empty() && result.iterations < options.max_iterations) {
    SearchNode& node = stack.back();
    // Choose an untried parameter: probabilistically, or the least
    // modified one so far.
    std::vector<int> untried;
    for (int p = 0; p < kNumParams; ++p) {
      if (!node.tried[p]) untried.push_back(p);
    }
    if (untried.empty()) {
      stack.pop_back();  // dead end: backtrack
      continue;
    }
    int param = untried.front();
    if (options.probabilistic) {
      param = untried[rng.NextBelow(untried.size())];
    } else {
      for (const int p : untried) {
        if (modifications[p] < modifications[param]) param = p;
      }
    }
    node.tried[param] = true;

    STPSQuery tightened;
    if (!Tighten(node.query, options, param, &tightened)) continue;
    ++modifications[param];
    ++result.iterations;

    // Tightening is monotone: only pairs of the current result can
    // survive, so re-verify those instead of re-running the join.
    std::vector<ScoredUserPair> surviving;
    surviving.reserve(node.pairs.size());
    if (param == 2) {
      // Only eps_u moved: the step is a pure filter. The stored score is
      // sigma's rounded quotient; recover the exact integer numerator from
      // it (exact while the object counts fit a double's mantissa) so the
      // filter is the same counting predicate the joins use.
      for (const ScoredUserPair& pair : node.pairs) {
        const size_t total =
            db.UserObjectCount(pair.a) + db.UserObjectCount(pair.b);
        const size_t matched = MatchedCountFromScore(pair.score, total);
        if (SigmaAtLeast(matched, total, tightened.eps_u)) {
          surviving.push_back(pair);
        }
      }
    } else {
      const MatchThresholds t{tightened.eps_loc, tightened.eps_doc};
      for (const ScoredUserPair& pair : node.pairs) {
        size_t matched = 0;
        const double sigma = PairSigma(db.UserObjects(pair.a),
                                       db.UserObjects(pair.b), t, &matched);
        const size_t total =
            db.UserObjectCount(pair.a) + db.UserObjectCount(pair.b);
        if (SigmaAtLeast(matched, total, tightened.eps_u)) {
          surviving.push_back({pair.a, pair.b, sigma});
        }
      }
    }
    if (surviving.empty()) continue;  // overshoot: try another parameter
    if (surviving.size() <= options.target_size) {
      result.thresholds = tightened;
      result.result = std::move(surviving);
      result.converged = true;
      break;
    }
    stack.push_back(SearchNode{tightened, std::move(surviving), {}});
  }
  if (!result.converged && !stack.empty()) {
    // Report the deepest state reached.
    result.thresholds = stack.back().query;
    result.result = stack.back().pairs;
  }
  result.tuning_millis = tuning_timer.ElapsedMillis();
  return result;
}

}  // namespace stps
