// S-PPJ-D (Section 4.1.4): filter-and-refine STPSJoin over a data-driven
// partitioning — the leaves of an R-tree — instead of the eps_loc grid.
//
// A spatio-textual index is built over the leaves: per leaf, the per-user
// object lists Dl_u and an inverted list token -> users; the intersections
// of the eps_loc-extended leaf MBRs are precomputed with a spatial join.
// Refinement runs PPJ-D (Algorithm 3), which joins only objects inside the
// intersection of the two extended MBRs and applies the same Lemma 1
// early-termination bound as PPJ-B.

#ifndef STPS_CORE_SPPJ_D_H_
#define STPS_CORE_SPPJ_D_H_

#include <vector>

#include "common/thread_pool.h"
#include "core/database.h"
#include "core/join_stats.h"
#include "core/similarity.h"
#include "core/user_grid.h"
#include "spatial/rtree.h"

namespace stps {

/// Which data-driven partitioning S-PPJ-D runs on. The paper uses R-tree
/// leaves; the quadtree alternative follows Rao et al. (BigSpatial 2014),
/// which the paper cites.
enum class PartitioningScheme {
  kRTree,
  kQuadTree,
};

/// Tuning for the partitioning (the paper's Figure 6 parameter: R-tree
/// fanout, or quadtree leaf capacity).
struct SPPJDOptions {
  int fanout = 128;
  PartitioningScheme partitioning = PartitioningScheme::kRTree;
};

/// A materialised space partitioning: per partition, a tight MBR and the
/// member object ids. Produced by the factory functions below; any
/// partitioning with complete, disjoint membership works.
struct SpatialPartitioning {
  std::vector<Rect> mbrs;
  std::vector<std::vector<ObjectId>> members;
};

/// Partitions = leaves of an STR-bulk-loaded R-tree with node capacity
/// `fanout`.
SpatialPartitioning RTreePartitioning(const ObjectDatabase& db, int fanout);

/// Partitions = non-empty leaves of a PR quadtree with the given leaf
/// capacity.
SpatialPartitioning QuadTreePartitioning(const ObjectDatabase& db,
                                         int leaf_capacity);

/// The leaf-level spatio-textual index S-PPJ-D operates on. Exposed so
/// tests and benchmarks can reuse a built index across queries with the
/// same eps_loc/fanout.
class LeafPartitionIndex {
 public:
  /// Convenience: builds over RTreePartitioning(db, fanout).
  LeafPartitionIndex(const ObjectDatabase& db, double eps_loc, int fanout);

  /// Builds the per-partition per-user lists, the per-partition inverted
  /// token lists, and the extended-MBR adjacency over an arbitrary
  /// partitioning.
  LeafPartitionIndex(const ObjectDatabase& db, double eps_loc,
                     const SpatialPartitioning& partitioning);

  STPS_DISALLOW_COPY_AND_ASSIGN(LeafPartitionIndex);

  size_t num_leaves() const { return leaf_mbrs_.size(); }

  /// Lu: the leaves (by ordinal) holding objects of user u, ascending,
  /// with the CSR object/coordinate arrays behind them.
  const UserLayout& UserLeaves(UserId u) const {
    STPS_DCHECK(u < per_user_.size());
    return per_user_[u];
  }

  /// Ordinals of leaves whose extended MBR intersects `leaf`'s extended
  /// MBR (including `leaf` itself), ascending.
  const std::vector<uint32_t>& RelevantLeaves(uint32_t leaf) const {
    STPS_DCHECK(leaf < adjacency_.size());
    return adjacency_[leaf];
  }

  /// The eps_loc-extended MBR of a leaf.
  const Rect& ExtendedMbr(uint32_t leaf) const {
    STPS_DCHECK(leaf < extended_mbrs_.size());
    return extended_mbrs_[leaf];
  }

  /// Users (ascending) having an object with token `t` in `leaf`;
  /// nullptr when none.
  const std::vector<UserId>* TokenUsers(uint32_t leaf, TokenId t) const;

  /// Users (ascending) having any object in `leaf`. Used by the JoinStats
  /// spatial/textual filter breakdown.
  const std::vector<UserId>& LeafUsers(uint32_t leaf) const {
    STPS_DCHECK(leaf < leaf_users_.size());
    return leaf_users_[leaf];
  }

 private:
  std::vector<Rect> leaf_mbrs_;
  std::vector<Rect> extended_mbrs_;
  std::vector<std::vector<uint32_t>> adjacency_;
  std::vector<UserLayout> per_user_;
  std::vector<std::vector<UserId>> leaf_users_;
  std::vector<std::unordered_map<TokenId, std::vector<UserId>>> token_users_;
};

/// PPJ-D (Algorithm 3): sigma for a user pair over the leaf partitioning,
/// with early termination at eps_u (exact whenever sigma >= eps_u; the
/// Lemma 1 stop uses the integer SigmaUnmatchedBudget of
/// common/predicates.h). Leaf-vs-leaf joins run through the batched SoA
/// mark kernel (PPJCrossMarkBatch). `stats` (optional) accrues
/// cells_visited and refine_early_stops plus the batch kernel counters.
/// `matched_out` (optional) receives sigma's integer numerator (0 when
/// pruned) for exact SigmaAtLeast decisions.
double PPJDPair(const UserLayout& lu, size_t nu, const UserLayout& lv,
                size_t nv, const LeafPartitionIndex& index,
                const MatchThresholds& t, double eps_u,
                JoinStats* stats = nullptr, size_t* matched_out = nullptr);

/// Evaluates the STPSJoin query with S-PPJ-D. Same output contract as
/// SPPJC. Preconditions: eps_doc > 0, eps_u > 0 (see S-PPJ-F).
std::vector<ScoredUserPair> SPPJD(const ObjectDatabase& db,
                                  const STPSQuery& query,
                                  const SPPJDOptions& options = {},
                                  JoinStats* stats = nullptr);

/// Parallel S-PPJ-D: the leaf index is built once (it is not
/// incremental), then the probing-user loop runs on the work-stealing
/// pool with candidates restricted to earlier users. Bit-identical to
/// SPPJD at any thread count.
std::vector<ScoredUserPair> SPPJDParallel(const ObjectDatabase& db,
                                          const STPSQuery& query,
                                          const SPPJDOptions& options,
                                          const ParallelOptions& parallel,
                                          JoinStats* stats = nullptr);

}  // namespace stps

#endif  // STPS_CORE_SPPJ_D_H_
