// Pair-level kernels: given the cell (or leaf) lists of two users, compute
// the point-set similarity sigma(Du, Dv).
//
//  * PPJCPair — the non-self PPJ-C traversal (Section 4.1.1): cells in
//    ascending id order, each cell joined with its own and higher-id
//    adjacent cells of the other user. Always exact.
//  * PPJBPair — the PPJ-B traversal (Section 4.1.2, Figure 2b): rows
//    bottom-up; odd rows join all neighbours but East, even rows only West
//    (and self); at the end of every odd row (or across an empty-row gap)
//    the integer Lemma 1 budget (SigmaUnmatchedBudget, exactly consistent
//    with SigmaAtLeast — see common/predicates.h) enables early
//    termination. Returns the exact sigma when sigma >= eps_u and 0 when
//    the pair was pruned.
//
// Every kernel optionally reports sigma's integer numerator through
// `matched_out`; threshold decisions must use SigmaAtLeast on that count,
// not the rounded double quotient.

#ifndef STPS_CORE_PPJB_H_
#define STPS_CORE_PPJB_H_

#include <span>

#include "core/join_stats.h"
#include "core/user_grid.h"
#include "spatial/grid.h"
#include "stjoin/object.h"

namespace stps {

/// Exact sigma via the PPJ-C cell traversal.
/// `cu` / `cv` are the users' CSR cell layouts; `nu` / `nv` = |Du| / |Dv|.
/// Cell-vs-cell joins run through the batched SoA mark kernel
/// (PPJCrossMarkBatch). `stats` (optional) accrues cells_visited for the
/// merged traversal plus the batch kernel counters.
double PPJCPair(const UserLayout& cu, size_t nu, const UserLayout& cv,
                size_t nv, const GridGeometry& grid,
                const MatchThresholds& t, JoinStats* stats = nullptr,
                size_t* matched_out = nullptr);

/// Sigma via the PPJ-B traversal with early termination at threshold
/// eps_u. Returns the exact sigma whenever sigma >= eps_u; returns 0 as
/// soon as the unmatched-object bound proves sigma < eps_u. With
/// eps_u <= 0 it is always exact. `stats` (optional) accrues
/// cells_visited and refine_early_stops plus the batch kernel counters.
double PPJBPair(const UserLayout& cu, size_t nu, const UserLayout& cv,
                size_t nv, const GridGeometry& grid,
                const MatchThresholds& t, double eps_u,
                JoinStats* stats = nullptr, size_t* matched_out = nullptr);

/// Convenience: exact sigma for two raw object sets, building the
/// per-pair cell lists on the fly (used by the threshold auto-tuner to
/// re-verify surviving pairs under tightened thresholds).
double PairSigma(std::span<const STObject> du, std::span<const STObject> dv,
                 const MatchThresholds& t, size_t* matched_out = nullptr);

}  // namespace stps

#endif  // STPS_CORE_PPJB_H_
