// Point-set similarity (the paper's sigma measure), query descriptors,
// result types, and the brute-force reference implementations used by the
// test suite and as the baseline in benchmarks.

#ifndef STPS_CORE_SIMILARITY_H_
#define STPS_CORE_SIMILARITY_H_

#include <limits>
#include <span>
#include <vector>

#include "common/thread_pool.h"
#include "core/database.h"
#include "sketch/options.h"
#include "stjoin/object.h"

namespace stps {

/// An STPSJoin query Q = <eps_loc, eps_doc, eps_u> (Definition 1), plus
/// the optional temporal threshold of the future-work extension
/// (infinite by default, i.e. disabled), the parallel-execution knobs
/// (sequential by default; see common/thread_pool.h), and the sketch
/// candidate-generation opt-in (off by default; see sketch/options.h —
/// enabling it never changes results).
struct STPSQuery {
  double eps_loc = 0.0;
  double eps_doc = 0.0;
  double eps_u = 0.0;
  double eps_time = std::numeric_limits<double>::infinity();
  ParallelOptions parallel = {};
  SketchOptions sketch = {};

  MatchThresholds match_thresholds() const {
    return {eps_loc, eps_doc, eps_time};
  }
};

/// A top-k STPSJoin query Q = <eps_loc, eps_doc, k> (Definition 2).
struct TopKQuery {
  double eps_loc = 0.0;
  double eps_doc = 0.0;
  size_t k = 10;
  double eps_time = std::numeric_limits<double>::infinity();
  ParallelOptions parallel = {};
  SketchOptions sketch = {};

  MatchThresholds match_thresholds() const {
    return {eps_loc, eps_doc, eps_time};
  }
};

/// One result pair with its exact similarity score. Invariant: a < b.
struct ScoredUserPair {
  UserId a = 0;
  UserId b = 0;
  double score = 0.0;

  friend bool operator==(const ScoredUserPair& x, const ScoredUserPair& y) {
    return x.a == y.a && x.b == y.b;
  }
};

/// The deterministic total order used for top-k results: higher score
/// first, ties broken by ascending (a, b). All top-k algorithms in this
/// library agree on it, which makes results reproducible and testable.
inline bool TopKBetter(const ScoredUserPair& x, const ScoredUserPair& y) {
  if (x.score != y.score) return x.score > y.score;
  if (x.a != y.a) return x.a < y.a;
  return x.b < y.b;
}

/// Exact matched-object count (sigma's integer numerator): how many
/// objects of Du and Dv match at least one object of the other set, by
/// exhaustive comparison. O(|Du| * |Dv|). Reference implementation; the
/// optimised kernels must agree with it. Threshold decisions go through
/// SigmaAtLeast(matched, |Du| + |Dv|, eps_u) — never through the rounded
/// quotient (common/predicates.h).
size_t ExactSigmaMatched(std::span<const STObject> du,
                         std::span<const STObject> dv,
                         const MatchThresholds& t);

/// Exact sigma(Du, Dv) as a quotient, for *reporting* scores. O(|Du| *
/// |Dv|). The quotient rounds to nearest; membership decisions must use
/// ExactSigmaMatched + SigmaAtLeast instead.
double ExactSigma(std::span<const STObject> du, std::span<const STObject> dv,
                  const MatchThresholds& t);

// The early-termination bound of Lemma 1 lives in common/predicates.h as
// SigmaUnmatchedBudget(total, eps_u): an *integer* unmatched-object budget
// exactly consistent with SigmaAtLeast. (The historical float form
// (1 - eps_u) * total could reject sigma == eps_u pairs by one ULP.)

/// Brute-force STPSJoin: every user pair, exhaustive sigma. Result sorted
/// by (a, b). Intended for tests and the smallest benchmark sizes only.
std::vector<ScoredUserPair> BruteForceSTPSJoin(const ObjectDatabase& db,
                                               const STPSQuery& query);

/// Brute-force top-k STPSJoin over pairs with sigma > 0, under the
/// TopKBetter total order. Result sorted best-first.
std::vector<ScoredUserPair> BruteForceTopK(const ObjectDatabase& db,
                                           const TopKQuery& query);

}  // namespace stps

#endif  // STPS_CORE_SIMILARITY_H_
