// Sharded STPSJoin execution: partition the join by contiguous user-id
// range into independent shards that run on separate cores, then merge
// deterministically.
//
// Built for the out-of-core path (an mmap'd v3 snapshot, io/binary.h):
// each shard streams its own user range of the arena, so the page
// working sets of the shards are mostly disjoint and a join over a
// database larger than RAM degrades to sequential-ish paging instead of
// thrash. The UserGrid and the full spatio-textual index are built once
// and shared read-only.
//
// Determinism argument (why `--shards N` is bit-identical to the
// unsharded result for every N): the unit of work is SPPJFProcessUser,
// the exact per-user pass SPPJFParallel runs — a user's pass evaluates
// only pairs (candidate, u) with candidate < u, so every pair belongs to
// exactly one user and therefore to exactly one shard, whatever the
// partition. Pair scores depend only on (db, query), never on the shard
// layout; the merge concatenates and sorts by the canonical (a, b) order
// (unique keys, so the sort is a total order); JoinStats counters are
// per-shard sums of the same per-user increments, reassociated by
// integer addition — order-independent. Hence results AND stats are
// byte-for-byte equal to SPPJFParallel at any shard/thread count.

#ifndef STPS_CORE_SHARDED_JOIN_H_
#define STPS_CORE_SHARDED_JOIN_H_

#include <vector>

#include "core/database.h"
#include "core/join_stats.h"
#include "core/similarity.h"

namespace stps {

/// One shard's contiguous user-id range [begin, end).
struct ShardRange {
  UserId begin = 0;
  UserId end = 0;
};

/// Splits the users into at most `shards` contiguous ranges, balanced by
/// cumulative object count (a proxy for per-user join cost). Ranges
/// cover [0, num_users) exactly; fewer ranges are returned when there
/// are not enough users. Precondition: shards >= 1.
std::vector<ShardRange> PlanUserShards(const ObjectDatabase& db, int shards);

/// Evaluates the STPSJoin query with one thread per shard. Bit-identical
/// to SPPJFParallel / the sequential S-PPJ-F (see the determinism
/// argument above). Preconditions: eps_doc > 0, eps_u > 0, shards >= 1.
/// With `prefetch`, the kernel is advised about the scan before it
/// starts: the SoA mirrors and token arena get POSIX_MADV_SEQUENTIAL
/// (the per-user pipeline walks them front to back) and each shard's
/// object/SoA/arena ranges get POSIX_MADV_WILLNEED, batching page-ins of
/// mmap'd snapshots. Advisory only — identical results either way.
std::vector<ScoredUserPair> ShardedSTPSJoin(const ObjectDatabase& db,
                                            const STPSQuery& query,
                                            int shards,
                                            JoinStats* stats = nullptr,
                                            bool prefetch = false);

}  // namespace stps

#endif  // STPS_CORE_SHARDED_JOIN_H_
