#include "core/topk.h"

#include <algorithm>
#include <numeric>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/predicates.h"
#include "core/parallel_util.h"
#include "core/ppjb.h"
#include "core/result_queue.h"
#include "core/sppj_d.h"
#include "core/user_grid.h"

namespace stps {

namespace {

// Ascending |Du| (ties: ascending id) — the order of TOPK-S-PPJ-F / -P.
std::vector<UserId> OrderBySize(const ObjectDatabase& db) {
  std::vector<UserId> order(db.num_users());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&db](UserId a, UserId b) {
    if (db.UserObjectCount(a) != db.UserObjectCount(b)) {
      return db.UserObjectCount(a) < db.UserObjectCount(b);
    }
    return a < b;
  });
  return order;
}

// TOPK-S-PPJ-S ordering: descending popularity score
// s_u = sum over o in Du of s_cell(o), with
// s_c = |users having objects in c or an adjacent cell|.
std::vector<UserId> OrderByPopularity(const ObjectDatabase& db,
                                      const UserGrid& grid) {
  // Occupancy: cell -> distinct users.
  std::unordered_map<CellId, std::vector<UserId>> cell_users;
  for (UserId u = 0; u < db.num_users(); ++u) {
    for (const UserPartition& cell : grid.UserCells(u)) {
      cell_users[cell.id].push_back(u);  // distinct: one entry per (u, cell)
    }
  }
  // Cell scores. Integer throughout: the scores are user counts, and the
  // per-user sums below accumulate in cell_users' unordered_map iteration
  // order — double summation would make the visit order (and thus the
  // whole TOPK-S-PPJ-S traversal) platform-dependent; integer addition is
  // associative, so the order is provably irrelevant.
  std::unordered_map<CellId, uint64_t> cell_score;
  std::vector<CellId> neighbors;
  std::unordered_set<UserId> distinct;
  for (const auto& [cell, users] : cell_users) {
    neighbors.clear();
    grid.geometry().AppendNeighborhood(cell, /*include_self=*/true,
                                       &neighbors);
    distinct.clear();
    for (const CellId n : neighbors) {
      const auto it = cell_users.find(n);
      if (it == cell_users.end()) continue;
      distinct.insert(it->second.begin(), it->second.end());
    }
    cell_score[cell] = distinct.size();
  }
  // User scores: every object contributes its cell's score.
  std::vector<uint64_t> user_score(db.num_users(), 0);
  for (UserId u = 0; u < db.num_users(); ++u) {
    for (const UserPartition& cell : grid.UserCells(u)) {
      user_score[u] += cell_score[cell.id] * cell.objects.size();
    }
  }
  std::vector<UserId> order(db.num_users());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&user_score](UserId a, UserId b) {
    if (user_score[a] != user_score[b]) return user_score[a] > user_score[b];
    return a < b;
  });
  return order;
}

// TOPK-S-PPJ-P prefilter: the number of objects of u that have a token
// appearing (from a previously processed user) in their own or an
// adjacent cell — an overestimate of |M(Du, D_{U'})|. With an incremental
// index (`rank` == nullptr) every indexed user counts; with the full
// index of the parallel driver, only inverted-list entries of earlier
// rank count — the lists are in rank order, so checking the front
// suffices and the estimate equals the incremental one.
size_t EstimateMatchableObjects(const UserLayout& cu,
                                const GridGeometry& geometry,
                                const SpatioTextualGridIndex& index,
                                const std::vector<uint32_t>* rank,
                                uint32_t rank_u) {
  size_t count = 0;
  // Hoisted per-thread scratch (runs once per probing user in the -P
  // variants, sequential and pool-parallel alike).
  thread_local std::vector<CellId> neighbors;
  thread_local std::vector<CellId> occupied;
  for (const UserPartition& cell : cu) {
    neighbors.clear();
    geometry.AppendNeighborhood(cell.id, /*include_self=*/true, &neighbors);
    // Drop neighbour cells with no indexed objects at all.
    occupied.clear();
    for (const CellId n : neighbors) {
      if (index.CellOccupied(n)) occupied.push_back(n);
    }
    if (occupied.empty()) continue;
    for (const ObjectRef& ref : cell.objects) {
      bool matchable = false;
      for (const TokenId t : ref.object->doc) {
        for (const CellId n : occupied) {
          const std::vector<UserId>* users = index.TokenUsers(n, t);
          if (users == nullptr) continue;
          if (rank != nullptr && (*rank)[users->front()] >= rank_u) continue;
          matchable = true;
          break;
        }
        if (matchable) break;
      }
      if (matchable) ++count;
    }
  }
  return count;
}

// Token-probes the cells of u against the index. With `rank` == nullptr
// (incremental index) every indexed user is a candidate; otherwise only
// users of earlier rank are, and the rank-ordered inverted lists allow an
// early break. `candidates` must have had BeginRound called for this user.
void CollectCandidates(const UserGrid& grid,
                       const SpatioTextualGridIndex& index,
                       const UserLayout& cu,
                       const std::vector<uint32_t>* rank, uint32_t rank_u,
                       UserCandidateTable<CandidateCells>* candidates,
                       JoinStats* stats) {
  thread_local std::vector<CellId> neighbors;
  thread_local TokenVector tokens;
  for (const UserPartition& cell : cu) {
    DistinctTokens(cell.objects, &tokens);
    neighbors.clear();
    grid.geometry().AppendNeighborhood(cell.id, /*include_self=*/true,
                                       &neighbors);
    for (const CellId other : neighbors) {
      if (stats != nullptr) ++stats->cells_visited;
      for (const TokenId token : tokens) {
        const std::vector<UserId>* users = index.TokenUsers(other, token);
        if (users == nullptr) continue;
        for (const UserId candidate : *users) {
          if (rank != nullptr && (*rank)[candidate] >= rank_u) {
            break;  // lists are ascending by rank
          }
          CandidateCells& cc = (*candidates)[candidate];
          // Opportunistic growth limiting only; SortUnique in the refine
          // step is the authoritative dedup (their_cells interleaves
          // across the outer cell loop).
          if (cc.my_cells.empty() || cc.my_cells.back() != cell.id) {
            cc.my_cells.push_back(cell.id);
          }
          if (cc.their_cells.empty() || cc.their_cells.back() != other) {
            cc.their_cells.push_back(other);
          }
        }
      }
    }
  }
}

// Refines u's candidates against `queue`: the sigma_bar count bound once
// the queue is full (exact SigmaAtLeast, so a candidate that can still
// *tie* the tail score survives and Offer settles it on the id order),
// then the PPJ-B kernel with the queue threshold as eps_u — whose integer
// Lemma 1 budget likewise never prunes a pair landing exactly on the
// threshold. Any nonzero PPJBPair return is exact, so offered pairs carry
// exact scores.
void RefineCandidates(const ObjectDatabase& db, const UserGrid& grid,
                      const MatchThresholds& t, UserId u,
                      const UserLayout& cu, size_t nu,
                      UserCandidateTable<CandidateCells>* candidates,
                      ResultQueue* queue, JoinStats* stats) {
  if (stats != nullptr) stats->pairs_candidate += candidates->size();
  for (const UserId candidate : candidates->SortedTouched()) {
    CandidateCells& cells = (*candidates)[candidate];
    const UserLayout& cv = grid.UserCells(candidate);
    const size_t nv = db.UserObjectCount(candidate);
    const double eps_u = queue->Threshold();
    if (queue->full()) {
      SortUnique(&cells.my_cells);
      SortUnique(&cells.their_cells);
      size_t m = 0;
      for (const int64_t c : cells.my_cells) {
        m += PartitionObjectCount(cu, c);
      }
      for (const int64_t c : cells.their_cells) {
        m += PartitionObjectCount(cv, c);
      }
      // Prune only when sigma_bar is exactly below the tail score: the
      // rounded quotient m / (nu + nv) could dip one ULP under eps_u for
      // a pair whose bound equals it, dropping a legitimate tie.
      if (!SigmaAtLeast(m, nu + nv, eps_u)) {
        if (stats != nullptr) ++stats->pairs_pruned_count;
        continue;
      }
    }
    if (stats != nullptr) ++stats->pairs_verified;
    const double sigma =
        PPJBPair(cu, nu, cv, nv, grid.geometry(), t, eps_u, stats);
    if (sigma <= 0.0) continue;
    if (stats != nullptr) ++stats->matches_found;
    queue->Offer({std::min(u, candidate), std::max(u, candidate), sigma});
  }
}

}  // namespace

std::vector<ScoredUserPair> TopKSTPSJoin(const ObjectDatabase& db,
                                         const TopKQuery& query,
                                         TopKVariant variant,
                                         JoinStats* stats) {
  STPS_CHECK(query.eps_doc > 0.0);
  STPS_CHECK(query.k > 0);
  ResultQueue queue(query.k);
  if (db.num_objects() == 0) return queue.TakeSorted();

  const UserGrid grid(db, query.eps_loc);
  const MatchThresholds t = query.match_thresholds();
  const std::vector<UserId> order = variant == TopKVariant::kS
                                        ? OrderByPopularity(db, grid)
                                        : OrderBySize(db);

  SpatioTextualGridIndex index;
  UserCandidateTable<CandidateCells> candidates;
  size_t max_prev_size = 0;

  for (const UserId u : order) {
    const UserLayout& cu = grid.UserCells(u);
    const size_t nu = db.UserObjectCount(u);

    // TOPK-S-PPJ-P: Lemma 2 prefilter. Valid because every previously
    // processed user u' has |Du'| <= |Du| under the ascending-size order.
    if (variant == TopKVariant::kP && queue.full() && max_prev_size > 0) {
      const size_t matchable = EstimateMatchableObjects(
          cu, grid.geometry(), index, /*rank=*/nullptr, /*rank_u=*/0);
      // Exact counting form of sigma_bar_u < Threshold() — ties survive.
      if (!SigmaAtLeast(matchable + max_prev_size, nu + max_prev_size,
                        queue.Threshold())) {
        index.AddUser(u, cu);
        max_prev_size = std::max(max_prev_size, nu);
        continue;
      }
    }

    candidates.BeginRound(db.num_users());
    CollectCandidates(grid, index, cu, /*rank=*/nullptr, /*rank_u=*/0,
                      &candidates, stats);
    index.AddUser(u, cu);
    max_prev_size = std::max(max_prev_size, nu);
    RefineCandidates(db, grid, t, u, cu, nu, &candidates, &queue, stats);
  }
  return queue.TakeSorted();
}

std::vector<ScoredUserPair> TopKSTPSJoinParallel(
    const ObjectDatabase& db, const TopKQuery& query, TopKVariant variant,
    const ParallelOptions& parallel, JoinStats* stats) {
  STPS_CHECK(query.eps_doc > 0.0);
  STPS_CHECK(query.k > 0);
  STPS_CHECK(parallel.num_threads >= 1);
  ResultQueue queue(query.k);
  if (db.num_objects() == 0) return queue.TakeSorted();

  const UserGrid grid(db, query.eps_loc);
  const MatchThresholds t = query.match_thresholds();
  const std::vector<UserId> order = variant == TopKVariant::kS
                                        ? OrderByPopularity(db, grid)
                                        : OrderBySize(db);
  std::vector<uint32_t> rank(db.num_users(), 0);
  for (uint32_t r = 0; r < order.size(); ++r) rank[order[r]] = r;

  // Full index, inserted in rank order: the inverted lists ascend by
  // rank, so candidate collection sees exactly the users the sequential
  // incremental index would hold.
  SpatioTextualGridIndex index;
  for (const UserId u : order) index.AddUser(u, grid.UserCells(u));

  ThreadPool pool(parallel.num_threads);
  const size_t slots = static_cast<size_t>(pool.num_threads());
  std::vector<ResultQueue> queues(slots, ResultQueue(query.k));
  std::vector<JoinStats> worker_stats(slots);
  pool.ParallelForEach(
      0, order.size(), parallel.grain, [&](size_t r, int worker) {
        const UserId u = order[r];
        const UserLayout& cu = grid.UserCells(u);
        const size_t nu = db.UserObjectCount(u);
        ResultQueue& local = queues[static_cast<size_t>(worker)];
        JoinStats* ws = stats != nullptr
                            ? &worker_stats[static_cast<size_t>(worker)]
                            : nullptr;

        // Lemma 2 prefilter against the local queue: it holds k real
        // pairs, so anything below its threshold is outside the global
        // top-k too. Under the ascending-size order, the running max of
        // previous sizes is simply the previous user's size.
        if (variant == TopKVariant::kP && r > 0 && local.full()) {
          const size_t max_prev_size = db.UserObjectCount(order[r - 1]);
          if (max_prev_size > 0) {
            const size_t matchable = EstimateMatchableObjects(
                cu, grid.geometry(), index, &rank,
                static_cast<uint32_t>(r));
            // Same exact counting prune as the sequential driver, so the
            // two resolve threshold-grazing users identically.
            if (!SigmaAtLeast(matchable + max_prev_size, nu + max_prev_size,
                              local.Threshold())) {
              return;
            }
          }
        }

        thread_local UserCandidateTable<CandidateCells> candidates;
        candidates.BeginRound(db.num_users());
        CollectCandidates(grid, index, cu, &rank,
                          static_cast<uint32_t>(r), &candidates, ws);
        RefineCandidates(db, grid, t, u, cu, nu, &candidates, &local, ws);
      });

  for (const ResultQueue& local : queues) {
    for (const ScoredUserPair& pair : local.TakeSorted()) {
      queue.Offer(pair);
    }
  }
  MergeWorkerStats(stats, worker_stats);
  return queue.TakeSorted();
}

std::vector<ScoredUserPair> TopKSPPJD(const ObjectDatabase& db,
                                      const TopKQuery& query, int fanout,
                                      JoinStats* stats) {
  STPS_CHECK(query.eps_doc > 0.0);
  STPS_CHECK(query.k > 0);
  ResultQueue queue(query.k);
  if (db.num_objects() == 0) return queue.TakeSorted();

  const LeafPartitionIndex index(db, query.eps_loc, fanout);
  const MatchThresholds t = query.match_thresholds();
  const std::vector<UserId> order = OrderBySize(db);
  // The leaf index holds all users; pair-once semantics come from only
  // accepting candidates processed earlier in the ascending-size order.
  std::vector<uint32_t> rank(db.num_users(), 0);
  for (uint32_t r = 0; r < order.size(); ++r) rank[order[r]] = r;

  UserCandidateTable<CandidateCells> candidates;

  TokenVector tokens;
  for (const UserId u : order) {
    const UserLayout& lu = index.UserLeaves(u);
    const size_t nu = db.UserObjectCount(u);
    candidates.BeginRound(db.num_users());
    for (const UserPartition& leaf : lu) {
      DistinctTokens(leaf.objects, &tokens);
      for (const uint32_t other :
           index.RelevantLeaves(static_cast<uint32_t>(leaf.id))) {
        if (stats != nullptr) ++stats->cells_visited;
        for (const TokenId token : tokens) {
          const std::vector<UserId>* users = index.TokenUsers(other, token);
          if (users == nullptr) continue;
          for (const UserId candidate : *users) {
            if (rank[candidate] >= rank[u]) continue;
            CandidateCells& cl = candidates[candidate];
            if (cl.my_cells.empty() || cl.my_cells.back() != leaf.id) {
              cl.my_cells.push_back(leaf.id);
            }
            if (cl.their_cells.empty() || cl.their_cells.back() != other) {
              cl.their_cells.push_back(other);
            }
          }
        }
      }
    }
    if (stats != nullptr) stats->pairs_candidate += candidates.size();
    for (const UserId candidate : candidates.SortedTouched()) {
      CandidateCells& leaves = candidates[candidate];
      const UserLayout& lv = index.UserLeaves(candidate);
      const size_t nv = db.UserObjectCount(candidate);
      const double eps_u = queue.Threshold();
      if (queue.full()) {
        SortUnique(&leaves.my_cells);
        SortUnique(&leaves.their_cells);
        size_t m = 0;
        for (const int64_t l : leaves.my_cells) {
          m += PartitionObjectCount(lu, l);
        }
        for (const int64_t l : leaves.their_cells) {
          m += PartitionObjectCount(lv, l);
        }
        // Exact counting form of sigma_bar < eps_u (see RefineCandidates).
        if (!SigmaAtLeast(m, nu + nv, eps_u)) {
          if (stats != nullptr) ++stats->pairs_pruned_count;
          continue;
        }
      }
      if (stats != nullptr) ++stats->pairs_verified;
      const double sigma = PPJDPair(lu, nu, lv, nv, index, t, eps_u, stats);
      if (sigma <= 0.0) continue;
      if (stats != nullptr) ++stats->matches_found;
      queue.Offer({std::min(u, candidate), std::max(u, candidate), sigma});
    }
  }
  return queue.TakeSorted();
}

std::vector<ScoredUserPair> TopKSPPJF(const ObjectDatabase& db,
                                      const TopKQuery& query) {
  return TopKSTPSJoin(db, query, TopKVariant::kF);
}

std::vector<ScoredUserPair> TopKSPPJS(const ObjectDatabase& db,
                                      const TopKQuery& query) {
  return TopKSTPSJoin(db, query, TopKVariant::kS);
}

std::vector<ScoredUserPair> TopKSPPJP(const ObjectDatabase& db,
                                      const TopKQuery& query) {
  return TopKSTPSJoin(db, query, TopKVariant::kP);
}

}  // namespace stps
