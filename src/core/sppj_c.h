// S-PPJ-C (Algorithm 1): the baseline STPSJoin evaluation. Every user
// pair is joined with the non-self PPJ-C grid traversal and the exact
// sigma is compared against eps_u.

#ifndef STPS_CORE_SPPJ_C_H_
#define STPS_CORE_SPPJ_C_H_

#include <vector>

#include "common/thread_pool.h"
#include "core/database.h"
#include "core/join_stats.h"
#include "core/similarity.h"

namespace stps {

/// Evaluates the STPSJoin query with the S-PPJ-C baseline.
/// Result pairs (a < b) are sorted by (a, b) and carry exact sigma.
std::vector<ScoredUserPair> SPPJC(const ObjectDatabase& db,
                                  const STPSQuery& query,
                                  JoinStats* stats = nullptr);

/// Parallel S-PPJ-C: the probing-user loop is distributed over the
/// work-stealing thread pool; every pair is still evaluated exactly once
/// and the result is bit-identical to SPPJC at any thread count.
std::vector<ScoredUserPair> SPPJCParallel(const ObjectDatabase& db,
                                          const STPSQuery& query,
                                          const ParallelOptions& parallel,
                                          JoinStats* stats = nullptr);

}  // namespace stps

#endif  // STPS_CORE_SPPJ_C_H_
