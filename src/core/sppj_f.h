// S-PPJ-F (Algorithm 2): filter-and-refine STPSJoin over an incremental
// spatio-textual grid index. For each new user u, candidate users are
// those sharing a token with u in the same or an adjacent cell; the
// sigma_bar upper bound prunes candidates, and survivors are refined with
// the PPJ-B pair kernel. This is the paper's best-performing algorithm.

#ifndef STPS_CORE_SPPJ_F_H_
#define STPS_CORE_SPPJ_F_H_

#include <vector>

#include "core/database.h"
#include "core/join_stats.h"
#include "core/similarity.h"

namespace stps {

/// Evaluates the STPSJoin query with S-PPJ-F. Same output contract as
/// SPPJC.
std::vector<ScoredUserPair> SPPJF(const ObjectDatabase& db,
                                  const STPSQuery& query,
                                  JoinStats* stats = nullptr);

/// Ablation variant used by the benchmarks: disables the sigma_bar
/// candidate bound (`use_sigma_bound` = false) and/or the PPJ-B early
/// termination in refinement (`use_refine_bound` = false) to isolate the
/// contribution of each pruning ingredient.
std::vector<ScoredUserPair> SPPJFAblation(const ObjectDatabase& db,
                                          const STPSQuery& query,
                                          bool use_sigma_bound,
                                          bool use_refine_bound,
                                          JoinStats* stats = nullptr);

}  // namespace stps

#endif  // STPS_CORE_SPPJ_F_H_
