#include "core/similarity.h"

#include <algorithm>

#include "common/predicates.h"

namespace stps {

size_t ExactSigmaMatched(std::span<const STObject> du,
                         std::span<const STObject> dv,
                         const MatchThresholds& t) {
  std::vector<uint8_t> matched_u(du.size(), 0), matched_v(dv.size(), 0);
  for (size_t i = 0; i < du.size(); ++i) {
    for (size_t j = 0; j < dv.size(); ++j) {
      if (matched_u[i] && matched_v[j]) continue;
      if (ObjectsMatch(du[i], dv[j], t)) {
        matched_u[i] = 1;
        matched_v[j] = 1;
      }
    }
  }
  return static_cast<size_t>(
             std::count(matched_u.begin(), matched_u.end(), 1)) +
         static_cast<size_t>(
             std::count(matched_v.begin(), matched_v.end(), 1));
}

double ExactSigma(std::span<const STObject> du, std::span<const STObject> dv,
                  const MatchThresholds& t) {
  if (du.empty() && dv.empty()) return 0.0;
  return static_cast<double>(ExactSigmaMatched(du, dv, t)) /
         static_cast<double>(du.size() + dv.size());
}

std::vector<ScoredUserPair> BruteForceSTPSJoin(const ObjectDatabase& db,
                                               const STPSQuery& query) {
  std::vector<ScoredUserPair> result;
  const MatchThresholds t = query.match_thresholds();
  const size_t n = db.num_users();
  for (UserId a = 0; a < n; ++a) {
    for (UserId b = a + 1; b < n; ++b) {
      const std::span<const STObject> du = db.UserObjects(a);
      const std::span<const STObject> dv = db.UserObjects(b);
      const size_t total = du.size() + dv.size();
      if (total == 0) continue;
      // The exact counting predicate: a sigma of exactly eps_u is in.
      const size_t matched = ExactSigmaMatched(du, dv, t);
      if (SigmaAtLeast(matched, total, query.eps_u)) {
        result.push_back({a, b, static_cast<double>(matched) /
                                    static_cast<double>(total)});
      }
    }
  }
  return result;
}

std::vector<ScoredUserPair> BruteForceTopK(const ObjectDatabase& db,
                                           const TopKQuery& query) {
  std::vector<ScoredUserPair> all;
  const MatchThresholds t = query.match_thresholds();
  const size_t n = db.num_users();
  for (UserId a = 0; a < n; ++a) {
    for (UserId b = a + 1; b < n; ++b) {
      const std::span<const STObject> du = db.UserObjects(a);
      const std::span<const STObject> dv = db.UserObjects(b);
      const size_t total = du.size() + dv.size();
      if (total == 0) continue;
      const size_t matched = ExactSigmaMatched(du, dv, t);
      if (matched > 0) {
        all.push_back({a, b, static_cast<double>(matched) /
                                 static_cast<double>(total)});
      }
    }
  }
  std::sort(all.begin(), all.end(), TopKBetter);
  if (all.size() > query.k) all.resize(query.k);
  return all;
}

}  // namespace stps
