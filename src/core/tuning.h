// Automatic threshold discovery (Section 5.6): given a desired result-set
// size, start from relaxed thresholds, run S-PPJ-F once, then greedily
// tighten one threshold at a time — re-verifying only the surviving pairs
// — with depth-first backtracking when a step empties the result.

#ifndef STPS_CORE_TUNING_H_
#define STPS_CORE_TUNING_H_

#include <cstdint>
#include <vector>

#include "core/database.h"
#include "core/similarity.h"

namespace stps {

/// Controls the tuning search.
struct TuningOptions {
  /// Relaxed starting thresholds; must yield more than `target_size`
  /// pairs for tuning to do anything.
  STPSQuery initial;
  /// Stop once 0 < |result| <= target_size.
  size_t target_size = 10;
  /// Each tightening step moves a threshold by this fraction of its
  /// initial value (eps_loc shrinks; eps_doc / eps_u grow, capped at 1).
  double step_fraction = 0.1;
  /// Pick the threshold to tighten uniformly at random (the paper's
  /// probabilistic strategy); when false, tighten the least-modified one.
  bool probabilistic = true;
  /// Seed for the probabilistic strategy.
  uint64_t seed = 42;
  /// Hard cap on re-verification steps.
  size_t max_iterations = 1000;
};

/// Outcome of a tuning run.
struct TuningResult {
  /// The discovered thresholds.
  STPSQuery thresholds;
  /// The result set at those thresholds.
  std::vector<ScoredUserPair> result;
  /// Number of tightening steps performed (Table 3's iteration count).
  size_t iterations = 0;
  /// Wall-clock time of the initial S-PPJ-F run / of the tuning loop.
  double initial_join_millis = 0.0;
  double tuning_millis = 0.0;
  /// True when 0 < |result| <= target_size was reached.
  bool converged = false;
};

/// Runs the tuning procedure. Precondition: initial eps_doc, eps_u > 0.
TuningResult TuneThresholds(const ObjectDatabase& db,
                            const TuningOptions& options);

}  // namespace stps

#endif  // STPS_CORE_TUNING_H_
