#include "core/sharded_join.h"

#include <thread>

#include "common/macros.h"
#include "common/prefetch.h"
#include "core/parallel_util.h"
#include "core/sppj_f_parallel.h"
#include "core/user_grid.h"

namespace stps {

namespace {

// Advises the kernel about one shard's working set: the contiguous
// object-slot run [first, last) of its user range, mirrored across the
// AoS headers, SoA columns, and the CSR token arena. All five ranges are
// contiguous because the physical layout groups users (and their tokens)
// into runs — the property the sharded scan was built around.
void AdviseShard(const ObjectDatabase& db, const ShardRange& range) {
  if (range.begin >= range.end) return;
  const size_t first = db.UserObjects(range.begin).data() - db.AllObjects().data();
  const std::span<const STObject> last_user = db.UserObjects(range.end - 1);
  const size_t last = (last_user.data() + last_user.size()) - db.AllObjects().data();
  const size_t count = last - first;
  if (count == 0) return;
  AdviseSpan(db.AllObjects().subspan(first, count), PrefetchMode::kWillNeed);
  AdviseSpan(db.xs().subspan(first, count), PrefetchMode::kWillNeed);
  AdviseSpan(db.ys().subspan(first, count), PrefetchMode::kWillNeed);
  AdviseSpan(db.users().subspan(first, count), PrefetchMode::kWillNeed);
  AdviseSpan(db.sigs().subspan(first, count), PrefetchMode::kWillNeed);
  const std::span<const TokenId> first_tokens =
      db.ObjectTokens(static_cast<ObjectId>(first));
  const std::span<const TokenId> last_tokens =
      db.ObjectTokens(static_cast<ObjectId>(last - 1));
  AdviseMemory(first_tokens.data(),
               static_cast<size_t>((last_tokens.data() + last_tokens.size() -
                                    first_tokens.data())) *
                   sizeof(TokenId),
               PrefetchMode::kWillNeed);
}

}  // namespace

std::vector<ShardRange> PlanUserShards(const ObjectDatabase& db,
                                       int shards) {
  STPS_CHECK(shards >= 1);
  const size_t num_users = db.num_users();
  std::vector<ShardRange> ranges;
  if (num_users == 0) return ranges;
  const uint64_t total = db.num_objects();
  // Cut after the user whose cumulative object count crosses the next
  // equal-share boundary; every shard gets at least one user.
  uint64_t seen = 0;
  UserId begin = 0;
  for (UserId u = 0; u < num_users; ++u) {
    seen += db.UserObjectCount(u);
    const size_t k = ranges.size();
    const uint64_t boundary =
        total * (k + 1) / static_cast<uint64_t>(shards);
    const size_t remaining_shards = static_cast<size_t>(shards) - k;
    const size_t remaining_users = num_users - u - 1;
    if ((seen >= boundary && k + 1 < static_cast<size_t>(shards)) ||
        remaining_users < remaining_shards - 1) {
      ranges.push_back({begin, u + 1});
      begin = u + 1;
    }
  }
  if (begin < num_users) {
    ranges.push_back({begin, static_cast<UserId>(num_users)});
  }
  return ranges;
}

std::vector<ScoredUserPair> ShardedSTPSJoin(const ObjectDatabase& db,
                                            const STPSQuery& query,
                                            int shards, JoinStats* stats,
                                            bool prefetch) {
  STPS_CHECK(query.eps_doc > 0.0);
  STPS_CHECK(query.eps_u > 0.0);
  STPS_CHECK(shards >= 1);
  if (db.num_objects() == 0) return {};

  if (prefetch) {
    // The per-user pipeline (index build + shard passes) walks the SoA
    // mirrors and token arena front to back: mark them sequential so the
    // kernel reads ahead and reclaims behind the scan.
    AdviseSpan(db.xs(), PrefetchMode::kSequential);
    AdviseSpan(db.ys(), PrefetchMode::kSequential);
    AdviseSpan(db.users(), PrefetchMode::kSequential);
    AdviseSpan(db.sigs(), PrefetchMode::kSequential);
    AdviseMemory(db.ObjectTokens(0).data(),
                 db.total_tokens() * sizeof(TokenId),
                 PrefetchMode::kSequential);
  }

  // Shared read-only state, built once (same as SPPJFParallel).
  const UserGrid grid(db, query.eps_loc);
  SpatioTextualGridIndex index;
  SPPJFBuildFullIndex(db, grid, &index);

  const std::vector<ShardRange> ranges = PlanUserShards(db, shards);
  if (prefetch) {
    for (const ShardRange& range : ranges) AdviseShard(db, range);
  }
  std::vector<std::vector<ScoredUserPair>> per_shard(ranges.size());
  std::vector<JoinStats> shard_stats(ranges.size());
  const auto run_shard = [&](size_t s) {
    for (UserId u = ranges[s].begin; u < ranges[s].end; ++u) {
      SPPJFProcessUser(db, grid, index, query, u, &per_shard[s],
                       stats != nullptr ? &shard_stats[s] : nullptr);
    }
  };
  if (ranges.size() == 1) {
    run_shard(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(ranges.size());
    for (size_t s = 0; s < ranges.size(); ++s) {
      threads.emplace_back(run_shard, s);
    }
    for (auto& t : threads) t.join();
  }
  MergeWorkerStats(stats, shard_stats);
  return MergeSortedPairs(&per_shard);
}

}  // namespace stps
