// ObjectDatabase: the paper's database D of spatio-textual objects,
// grouped per user into the point sets Du.
//
// Construction goes through DatabaseBuilder, which assigns dense user and
// object ids, computes global token document frequencies, and remaps token
// ids into ascending-frequency order so every stored token set is
// prefix-filter ready.

#ifndef STPS_CORE_DATABASE_H_
#define STPS_CORE_DATABASE_H_

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/column.h"
#include "common/macros.h"
#include "common/string_table.h"
#include "spatial/geometry.h"
#include "stjoin/object.h"
#include "text/dictionary.h"

namespace stps {

class UserSketchIndex;  // sketch/sketch.h
struct PlannerStats;    // planner/planner_stats.h
class SnapshotLoader;   // io/snapshot_v3.cc

/// Immutable database of spatio-textual objects grouped by user.
///
/// All token sets live in one CSR arena (`token_data_` + `token_begin_`):
/// object i's tokens occupy token_data_[token_begin_[i], token_begin_[i+1])
/// and its STObject::doc span points straight into that buffer, so a user's
/// point set is fully contiguous in memory — object headers in one run,
/// tokens in another. The database is move-only: moving a std::vector
/// keeps its heap buffer, so the spans survive; copying would leave them
/// dangling into the source.
///
/// Physical order is (user, Z-order): within each user's run, objects are
/// sorted by the Morton key of their quantized coordinates (ties keep
/// insertion order), so spatially adjacent objects sit in adjacent slots
/// and the grid cell ranges over them are contiguous. Alongside the AoS
/// `objects_`, the same slot order is mirrored into SoA arrays (`xs_`,
/// `ys_`, `users_`, `sigs_`) that the batched spatial kernels
/// (spatial/batch.h) stream without touching STObject records.
/// ObjectIds are still physical slots; `insertion_order()` maps a slot
/// back to its AddObject sequence number, so external consumers can
/// recover the original input order.
///
/// The flat arrays are Column<T>: owned vectors when built by
/// DatabaseBuilder, borrowed arena views when loaded from an mmap'd v3
/// snapshot (io/binary.h). In the borrowed case `arena_` pins the mapping
/// for the database's lifetime; only the AoS object headers are
/// materialized at load, everything else pages on demand.
class ObjectDatabase {
 public:
  ObjectDatabase() = default;
  ObjectDatabase(const ObjectDatabase&) = delete;
  ObjectDatabase& operator=(const ObjectDatabase&) = delete;
  ObjectDatabase(ObjectDatabase&&) = default;
  ObjectDatabase& operator=(ObjectDatabase&&) = default;

  /// Number of users |U|.
  size_t num_users() const {
    return user_begin_.empty() ? 0 : user_begin_.size() - 1;
  }

  /// Number of objects |D|.
  size_t num_objects() const { return objects_.size(); }

  /// The point set Du of a user, as a contiguous span. The i-th element's
  /// *local index* is i; per-user matched flags are addressed by it.
  std::span<const STObject> UserObjects(UserId u) const {
    STPS_DCHECK(u + 1 < user_begin_.size());
    return std::span<const STObject>(objects_.data() + user_begin_[u],
                                     user_begin_[u + 1] - user_begin_[u]);
  }

  /// |Du|.
  size_t UserObjectCount(UserId u) const {
    STPS_DCHECK(u + 1 < user_begin_.size());
    return user_begin_[u + 1] - user_begin_[u];
  }

  /// All objects, grouped by user (user u occupies one contiguous run).
  std::span<const STObject> AllObjects() const {
    return std::span<const STObject>(objects_);
  }

  /// Object by dense id.
  const STObject& object(ObjectId id) const {
    STPS_DCHECK(id < objects_.size());
    return objects_[id];
  }

  /// The position of `o` within its user's span (object ids are slot
  /// indices into the user-grouped object array).
  uint32_t LocalIndex(const STObject& o) const {
    STPS_DCHECK(o.user + 1 < user_begin_.size());
    return o.id - user_begin_[o.user];
  }

  /// The external label of a user (the key passed to AddObject), useful
  /// for presenting results. The view points into the database's storage
  /// (owned or mapped) and is valid for the database's lifetime.
  std::string_view UserName(UserId u) const {
    STPS_DCHECK(u < user_names_.size());
    return user_names_[u];
  }

  /// Resolves an external user key back to its dense id (the inverse of
  /// UserName; amortized O(1) — the reverse index is built on first use).
  /// Returns false for unknown keys.
  bool FindUser(std::string_view user_key, UserId* out) const {
    return user_names_.Find(user_key, out);
  }

  /// The token set of an object as a view into the CSR arena (same span
  /// as object(id).doc).
  std::span<const TokenId> ObjectTokens(ObjectId id) const {
    STPS_DCHECK(id + 1 < token_begin_.size());
    return std::span<const TokenId>(token_data_.data() + token_begin_[id],
                                    token_begin_[id + 1] - token_begin_[id]);
  }

  /// Total number of stored tokens across all objects (arena size).
  size_t total_tokens() const { return token_data_.size(); }

  /// Bounding rectangle of all object locations.
  const Rect& bounds() const { return bounds_; }

  /// SoA mirrors of the object slots (same indexing as AllObjects()):
  /// xs()[i] == object(i).loc.x etc. The batch kernels stream these.
  std::span<const double> xs() const { return xs_; }
  std::span<const double> ys() const { return ys_; }
  std::span<const UserId> users() const { return users_; }
  std::span<const TokenSignature> sigs() const { return sigs_; }

  /// Permutation table of the Z-order layout: insertion_order()[slot] is
  /// the 0-based AddObject sequence number of the object now stored in
  /// `slot`. Reported ObjectIds are slots; this recovers the input order.
  std::span<const uint32_t> insertion_order() const {
    return insertion_order_;
  }

  /// The token dictionary (finalized by frequency). Token ids stored in
  /// objects index into it.
  const Dictionary& dictionary() const { return dictionary_; }

  /// The per-user sketch layer (MinHash signatures, occupancy bitmaps,
  /// and the band index; sketch/sketch.h), built once at Build time —
  /// query-independent, like the SoA mirrors. Present on every built
  /// database; a default-constructed (empty) database has none.
  const UserSketchIndex& sketches() const {
    STPS_DCHECK(sketches_ != nullptr);
    return *sketches_;
  }
  bool has_sketches() const { return sketches_ != nullptr; }

  /// The build-time statistics summary the query planner reads (dyadic
  /// occupancy ladder, token skew, Table-1 dataset stats; see
  /// planner/planner_stats.h). Computed once by DatabaseBuilder::Build —
  /// ComputeDatasetStats and the planner both read this cache instead of
  /// rescanning. A default-constructed (empty) database has none.
  const PlannerStats& planner_stats() const {
    STPS_DCHECK(planner_stats_ != nullptr);
    return *planner_stats_;
  }
  bool has_planner_stats() const { return planner_stats_ != nullptr; }

 private:
  friend class DatabaseBuilder;
  friend class SnapshotLoader;      // io/snapshot_v3.cc: arena-view loads
  friend class UpdatableDatabase;   // core/update.cc: delta publish splice

  std::vector<STObject> objects_;  // always owned (doc spans -> columns)
  Column<uint32_t> user_begin_;    // size num_users() + 1
  Column<TokenId> token_data_;     // CSR token arena, grouped like objects_
  Column<uint32_t> token_begin_;   // size num_objects() + 1
  Column<double> xs_;              // SoA mirrors, slot-indexed
  Column<double> ys_;
  Column<UserId> users_;
  Column<TokenSignature> sigs_;
  Column<uint32_t> insertion_order_;  // slot -> AddObject sequence
  StringTable user_names_;
  Rect bounds_ = Rect::Empty();
  Dictionary dictionary_;
  // shared_ptr (not unique_ptr): the deleter is type-erased, so the
  // forward declaration above suffices for the implicit special members.
  std::shared_ptr<const UserSketchIndex> sketches_;
  std::shared_ptr<const PlannerStats> planner_stats_;
  // Keep-alive for borrowed columns (the mmap'd region). Destruction
  // order is irrelevant: no member destructor dereferences a view.
  std::shared_ptr<const void> arena_;
};

/// Accumulates raw objects and produces an ObjectDatabase.
class DatabaseBuilder {
 public:
  DatabaseBuilder() = default;
  STPS_DISALLOW_COPY_AND_ASSIGN(DatabaseBuilder);

  /// Adds one object for the user identified by `user_key` (users are
  /// created on first sight). `keywords` is an arbitrary bag of strings;
  /// duplicates within one object are collapsed. `time` is the optional
  /// timestamp of the temporal extension.
  void AddObject(std::string_view user_key, Point loc,
                 std::span<const std::string_view> keywords,
                 double time = 0.0);

  /// Convenience overload for std::string keyword containers.
  void AddObject(std::string_view user_key, Point loc,
                 std::span<const std::string> keywords, double time = 0.0);

  /// Number of objects added so far.
  size_t size() const { return objects_.size(); }

  /// Finalizes token frequencies, remaps token ids, groups objects by
  /// user, and returns the immutable database. The builder is consumed.
  ObjectDatabase Build() &&;

 private:
  struct PendingObject {
    uint32_t user = 0;
    Point loc;
    double time = 0.0;
    TokenVector tokens;  // provisional ids
  };

  std::unordered_map<std::string, uint32_t> user_index_;
  std::vector<std::string> user_names_;
  std::vector<PendingObject> objects_;
  Dictionary dictionary_;
};

}  // namespace stps

#endif  // STPS_CORE_DATABASE_H_
