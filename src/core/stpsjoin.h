// Umbrella entry points: run any STPSJoin / top-k STPSJoin algorithm by
// name. This is the recommended public API for applications; the
// per-algorithm headers remain available for benchmarking.

#ifndef STPS_CORE_STPSJOIN_H_
#define STPS_CORE_STPSJOIN_H_

#include <string_view>
#include <vector>

#include "core/database.h"
#include "core/join_stats.h"
#include "core/similarity.h"
#include "core/topk.h"

namespace stps {

/// STPSJoin evaluation strategies (Section 4.1 + brute force).
enum class JoinAlgorithm {
  kBruteForce,
  kSPPJC,
  kSPPJB,
  kSPPJF,
  kSPPJD,
};

/// Top-k evaluation strategies (Section 4.2 + brute force).
enum class TopKAlgorithm {
  kBruteForce,
  kF,
  kS,
  kP,
};

/// Options for RunSTPSJoin.
struct JoinOptions {
  JoinAlgorithm algorithm = JoinAlgorithm::kSPPJF;
  /// R-tree node capacity; only used by S-PPJ-D.
  int rtree_fanout = 128;
  /// Worker threads; kept for backward compatibility with the old
  /// S-PPJ-F-only parallelism. The effective thread count is
  /// max(threads, query.parallel.num_threads); when > 1, every grid- or
  /// leaf-based algorithm dispatches to its pool-parallel driver (brute
  /// force always runs sequentially).
  int threads = 1;
};

/// Evaluates Q = <eps_loc, eps_doc, eps_u>: all user pairs with
/// sigma >= eps_u. Results are sorted by (a, b) and carry exact scores —
/// bit-identical at any thread count. Preconditions for the filter-based
/// algorithms (F, D): eps_doc > 0 and eps_u > 0. `stats` (optional)
/// receives the per-stage filter counters of the run.
std::vector<ScoredUserPair> RunSTPSJoin(const ObjectDatabase& db,
                                        const STPSQuery& query,
                                        const JoinOptions& options = {},
                                        JoinStats* stats = nullptr);

/// Evaluates the top-k query; results best-first under TopKBetter.
/// Precondition for the index-based variants: eps_doc > 0. When
/// query.parallel.num_threads > 1, the index-based variants run on the
/// work-stealing pool (identical results at any thread count).
std::vector<ScoredUserPair> RunTopKSTPSJoin(
    const ObjectDatabase& db, const TopKQuery& query,
    TopKAlgorithm algorithm = TopKAlgorithm::kP, JoinStats* stats = nullptr);

/// Display names ("S-PPJ-F", "TOPK-S-PPJ-P", ...) for reports.
std::string_view JoinAlgorithmName(JoinAlgorithm algorithm);
std::string_view TopKAlgorithmName(TopKAlgorithm algorithm);

}  // namespace stps

#endif  // STPS_CORE_STPSJOIN_H_
