// Umbrella entry points: run any STPSJoin / top-k STPSJoin algorithm by
// name. This is the recommended public API for applications; the
// per-algorithm headers remain available for benchmarking.

#ifndef STPS_CORE_STPSJOIN_H_
#define STPS_CORE_STPSJOIN_H_

#include <string_view>
#include <vector>

#include "core/database.h"
#include "core/join_stats.h"
#include "core/similarity.h"
#include "core/topk.h"

namespace stps {

/// STPSJoin evaluation strategies (Section 4.1 + brute force). kAuto
/// defers the choice to the cost-model planner (planner/planner.h):
/// the plan decides the concrete algorithm, sketch candidate generation,
/// and sequential-vs-pooled execution within the caller's thread budget.
/// All strategies are exact, so kAuto returns bit-identical results to
/// every explicit choice — only the work differs.
enum class JoinAlgorithm {
  kBruteForce,
  kSPPJC,
  kSPPJB,
  kSPPJF,
  kSPPJD,
  kAuto,
};

/// Top-k evaluation strategies (Section 4.2 + brute force). kAuto routes
/// through the planner, as above.
enum class TopKAlgorithm {
  kBruteForce,
  kF,
  kS,
  kP,
  kAuto,
};

/// Options for RunSTPSJoin.
struct JoinOptions {
  JoinAlgorithm algorithm = JoinAlgorithm::kSPPJF;
  /// R-tree node capacity; only used by S-PPJ-D.
  int rtree_fanout = 128;
  /// Worker threads; kept for backward compatibility with the old
  /// S-PPJ-F-only parallelism. The effective thread count is
  /// max(threads, query.parallel.num_threads); when > 1, every grid- or
  /// leaf-based algorithm dispatches to its pool-parallel driver (brute
  /// force always runs sequentially).
  int threads = 1;
  /// When > 1 (and the query is eligible: S-PPJ-F-shaped, no sketch
  /// candidate generation), the join runs on the sharded driver
  /// (core/sharded_join.h): users are partitioned into `shards`
  /// contiguous ranges, one thread per shard, merged deterministically.
  /// Bit-identical to shards == 1. Meant for mmap'd snapshots whose
  /// working set exceeds RAM — shards page mostly disjoint arena ranges.
  int shards = 1;
  /// Advise the kernel about the sharded scan's access pattern before it
  /// starts (common/prefetch.h): POSIX_MADV_SEQUENTIAL over the SoA
  /// mirrors and token arena for the linear per-user pipeline pass, plus
  /// POSIX_MADV_WILLNEED on each shard's object/SoA/arena ranges so page-
  /// ins batch instead of faulting one at a time. Purely advisory — never
  /// changes results — and a no-op off POSIX or on non-mapped databases.
  bool prefetch = false;
};

/// Evaluates Q = <eps_loc, eps_doc, eps_u>: all user pairs with
/// sigma >= eps_u. Results are sorted by (a, b) and carry exact scores —
/// bit-identical at any thread count. Preconditions for the filter-based
/// algorithms (F, D): eps_doc > 0 and eps_u > 0. `stats` (optional)
/// receives the per-stage filter counters of the run.
///
/// When query.sketch.enabled (and eps_doc > 0, eps_u > 0), candidate
/// pairs come from the per-user sketch layer instead of the chosen
/// algorithm's filter stage and are settled by the exact PPJ-B kernel:
/// same results, same order, same scores — only the work differs (see
/// sketch/sketch.h; JoinStats::sketch_* report the candidate flow).
/// Brute force ignores the knob; kAuto decides it per query (the planner
/// may turn sketches on even when the query left them off).
///
/// Every run — explicit algorithms included — feeds its measured
/// JoinStats and wall-clock back into PlannerFeedback, so kAuto's cost
/// coefficients converge onto this machine's observed per-shape speeds.
std::vector<ScoredUserPair> RunSTPSJoin(const ObjectDatabase& db,
                                        const STPSQuery& query,
                                        const JoinOptions& options = {},
                                        JoinStats* stats = nullptr);

/// Evaluates the top-k query; results best-first under TopKBetter.
/// Precondition for the index-based variants: eps_doc > 0. When
/// query.parallel.num_threads > 1, the index-based variants run on the
/// work-stealing pool (identical results at any thread count). When
/// query.sketch.enabled, every index-based variant verifies the sketch
/// layer's candidates in count-min heavy-hitters order instead —
/// bit-identical results, work reported via JoinStats::sketch_*.
std::vector<ScoredUserPair> RunTopKSTPSJoin(
    const ObjectDatabase& db, const TopKQuery& query,
    TopKAlgorithm algorithm = TopKAlgorithm::kP, JoinStats* stats = nullptr);

/// Single-user probe ("find users similar to u"): every user v != u with
/// sigma(Du, Dv) >= eps_u under the query's match thresholds, scored
/// exactly and sorted best-first under the TopKBetter total order (pairs
/// carry a < b like the join results). The exact per-pair kernel is the
/// same ExactSigmaMatched/SigmaAtLeast discipline as the joins, so a
/// probe result is exactly the u-rows of RunSTPSJoin's output.
std::vector<ScoredUserPair> FindSimilarUsers(const ObjectDatabase& db,
                                             UserId u,
                                             const STPSQuery& query);

/// Display names ("S-PPJ-F", "TOPK-S-PPJ-P", ...) for reports.
std::string_view JoinAlgorithmName(JoinAlgorithm algorithm);
std::string_view TopKAlgorithmName(TopKAlgorithm algorithm);

}  // namespace stps

#endif  // STPS_CORE_STPSJOIN_H_
