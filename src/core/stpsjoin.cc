#include "core/stpsjoin.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "core/sppj_b.h"
#include "core/sppj_c.h"
#include "core/sharded_join.h"
#include "core/sppj_d.h"
#include "core/sppj_f.h"
#include "core/sppj_f_parallel.h"
#include "planner/feedback.h"
#include "planner/planner.h"
#include "sketch/sketch_join.h"

namespace stps {

namespace {

uint64_t RoundCount(double v) {
  if (!std::isfinite(v) || v <= 0.0) return 0;
  return static_cast<uint64_t>(std::llround(v));
}

/// Executes a concrete (non-auto) join shape. Factored out so the
/// umbrella can time the execution and feed the planner.
std::vector<ScoredUserPair> DispatchJoin(const ObjectDatabase& db,
                                         const STPSQuery& query,
                                         const JoinOptions& options,
                                         int threads,
                                         const ParallelOptions& parallel,
                                         bool use_sketch, JoinStats* stats) {
  if (use_sketch) return SketchSTPSJoin(db, query, parallel, stats);
  switch (options.algorithm) {
    case JoinAlgorithm::kBruteForce: {
      std::vector<ScoredUserPair> result = BruteForceSTPSJoin(db, query);
      if (stats != nullptr) {
        // Brute force considers and verifies every user pair; account for
        // it so kAuto-resolved runs keep the counter invariants.
        const uint64_t users = db.num_users();
        const uint64_t all_pairs = users < 2 ? 0 : users * (users - 1) / 2;
        stats->pairs_candidate += all_pairs;
        stats->pairs_verified += all_pairs;
        stats->matches_found += result.size();
      }
      return result;
    }
    case JoinAlgorithm::kSPPJC:
      if (threads > 1) return SPPJCParallel(db, query, parallel, stats);
      return SPPJC(db, query, stats);
    case JoinAlgorithm::kSPPJB:
      if (threads > 1) return SPPJBParallel(db, query, parallel, stats);
      return SPPJB(db, query, stats);
    case JoinAlgorithm::kSPPJF:
      if (threads > 1) return SPPJFParallel(db, query, parallel, stats);
      return SPPJF(db, query, stats);
    case JoinAlgorithm::kSPPJD:
      if (threads > 1) {
        return SPPJDParallel(db, query, SPPJDOptions{options.rtree_fanout},
                             parallel, stats);
      }
      return SPPJD(db, query, SPPJDOptions{options.rtree_fanout}, stats);
    case JoinAlgorithm::kAuto:
      break;  // resolved by RunSTPSJoin before dispatch
  }
  STPS_CHECK(false);
  return {};
}

/// Executes a concrete (non-auto) top-k shape.
std::vector<ScoredUserPair> DispatchTopK(const ObjectDatabase& db,
                                         const TopKQuery& query,
                                         TopKAlgorithm algorithm,
                                         bool use_sketch, JoinStats* stats) {
  if (use_sketch) return SketchTopKSTPSJoin(db, query, query.parallel, stats);
  const bool parallel = query.parallel.num_threads > 1;
  switch (algorithm) {
    case TopKAlgorithm::kBruteForce: {
      std::vector<ScoredUserPair> result = BruteForceTopK(db, query);
      if (stats != nullptr) {
        const uint64_t users = db.num_users();
        const uint64_t all_pairs = users < 2 ? 0 : users * (users - 1) / 2;
        stats->pairs_candidate += all_pairs;
        stats->pairs_verified += all_pairs;
        stats->matches_found += result.size();
      }
      return result;
    }
    case TopKAlgorithm::kF:
      if (parallel) {
        return TopKSTPSJoinParallel(db, query, TopKVariant::kF,
                                    query.parallel, stats);
      }
      return TopKSTPSJoin(db, query, TopKVariant::kF, stats);
    case TopKAlgorithm::kS:
      if (parallel) {
        return TopKSTPSJoinParallel(db, query, TopKVariant::kS,
                                    query.parallel, stats);
      }
      return TopKSTPSJoin(db, query, TopKVariant::kS, stats);
    case TopKAlgorithm::kP:
      if (parallel) {
        return TopKSTPSJoinParallel(db, query, TopKVariant::kP,
                                    query.parallel, stats);
      }
      return TopKSTPSJoin(db, query, TopKVariant::kP, stats);
    case TopKAlgorithm::kAuto:
      break;  // resolved by RunTopKSTPSJoin before dispatch
  }
  STPS_CHECK(false);
  return {};
}

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

std::vector<ScoredUserPair> RunSTPSJoin(const ObjectDatabase& db,
                                        const STPSQuery& query,
                                        const JoinOptions& options,
                                        JoinStats* stats) {
  if (options.algorithm == JoinAlgorithm::kAuto) {
    const PhysicalPlan plan = PlanSTPSJoin(db, query, options);
    STPSQuery resolved = query;
    resolved.sketch.enabled = plan.shape.sketch;
    resolved.parallel.num_threads = plan.shape.threads;
    resolved.parallel.grain = plan.grain;
    JoinOptions ropts = options;
    ropts.algorithm = plan.shape.join;
    ropts.threads = plan.shape.threads;
    ropts.rtree_fanout = plan.rtree_fanout;
    // The recursive call times the run and records the feedback; here we
    // only track whether the choice moved since the last identical query.
    std::vector<ScoredUserPair> result =
        RunSTPSJoin(db, resolved, ropts, stats);
    const bool switched = PlannerFeedback::Global().NoteChosenPlan(
        plan.query_signature, plan.shape);
    if (stats != nullptr) {
      stats->planner_estimated_candidates =
          RoundCount(plan.estimate.candidate_pairs);
      stats->planner_plan_switches = switched ? 1 : 0;
    }
    return result;
  }

  // Either knob may request parallelism; take the stronger one.
  const int threads = std::max(options.threads, query.parallel.num_threads);
  const ParallelOptions parallel{threads, query.parallel.grain};
  // Sketch-generated candidates replace the per-algorithm filter stage
  // for every non-brute algorithm (verification is the shared PPJ-B
  // kernel, so results stay bit-identical). The band index is only a
  // sound filter when a match implies a common token, i.e. eps_doc > 0
  // with a real threshold eps_u > 0; otherwise fall through to the
  // requested algorithm unchanged.
  const bool use_sketch = query.sketch.enabled &&
                          options.algorithm != JoinAlgorithm::kBruteForce &&
                          query.eps_doc > 0.0 && query.eps_u > 0.0;

  // Sharded execution (core/sharded_join.h): one thread per contiguous
  // user range, built for paging over mmap'd snapshots. It runs the
  // S-PPJ-F pipeline whatever exact algorithm was requested — all
  // non-brute algorithms return bit-identical results, so this only
  // changes the work, not the answer. Skips planner feedback: shard
  // timings would poison the per-shape cost coefficients.
  if (options.shards > 1 && !use_sketch &&
      options.algorithm != JoinAlgorithm::kBruteForce &&
      query.eps_doc > 0.0 && query.eps_u > 0.0) {
    return ShardedSTPSJoin(db, query, options.shards, stats,
                           options.prefetch);
  }

  // Time the run and fold the measurement into the planner's feedback —
  // for explicit choices too, so benchmark sweeps over the static
  // variants calibrate kAuto as a side effect.
  const bool record = db.has_planner_stats();
  PlanShape shape;
  shape.topk = false;
  shape.join = options.algorithm;
  shape.sketch = use_sketch;
  shape.threads = threads > 1 ? threads : 1;
  PlanEstimate estimate;
  double cost_units = 0.0;
  if (record) {
    estimate = EstimateJoinStages(db.planner_stats(), query.eps_loc,
                                  query.eps_doc, query.eps_u);
    cost_units = EstimateShapeCost(db.planner_stats(), shape, estimate);
  }
  JoinStats local;
  JoinStats* sink = stats != nullptr ? stats : &local;
  const auto start = std::chrono::steady_clock::now();
  std::vector<ScoredUserPair> result =
      DispatchJoin(db, query, options, threads, parallel, use_sketch, sink);
  if (record) {
    PlannerFeedback::Global().Record(shape, estimate, cost_units, *sink,
                                     ElapsedMs(start));
    if (stats != nullptr) {
      stats->planner_estimated_candidates =
          RoundCount(estimate.candidate_pairs);
    }
  }
  return result;
}

std::vector<ScoredUserPair> RunTopKSTPSJoin(const ObjectDatabase& db,
                                            const TopKQuery& query,
                                            TopKAlgorithm algorithm,
                                            JoinStats* stats) {
  if (algorithm == TopKAlgorithm::kAuto) {
    const PhysicalPlan plan = PlanTopKSTPSJoin(db, query);
    TopKQuery resolved = query;
    resolved.sketch.enabled = plan.shape.sketch;
    resolved.parallel.num_threads = plan.shape.threads;
    resolved.parallel.grain = plan.grain;
    std::vector<ScoredUserPair> result =
        RunTopKSTPSJoin(db, resolved, plan.shape.topk_algorithm, stats);
    const bool switched = PlannerFeedback::Global().NoteChosenPlan(
        plan.query_signature, plan.shape);
    if (stats != nullptr) {
      stats->planner_estimated_candidates =
          RoundCount(plan.estimate.candidate_pairs);
      stats->planner_plan_switches = switched ? 1 : 0;
    }
    return result;
  }

  // Sketch candidates with the heavy-hitters verification order stand in
  // for every index-based variant (kF/kS/kP differ only in traversal
  // order, which sketches supersede; brute force stays brute force).
  const bool use_sketch =
      query.sketch.enabled && algorithm != TopKAlgorithm::kBruteForce;

  const bool record = db.has_planner_stats();
  PlanShape shape;
  shape.topk = true;
  shape.topk_algorithm = algorithm;
  shape.sketch = use_sketch;
  shape.threads = query.parallel.num_threads > 1 ? query.parallel.num_threads
                                                 : 1;
  PlanEstimate estimate;
  double cost_units = 0.0;
  if (record) {
    // Top-k discovers its similarity threshold at run time; estimate
    // with open textual/count thresholds, matching PlanTopKSTPSJoin.
    estimate = EstimateJoinStages(db.planner_stats(), query.eps_loc,
                                  query.eps_doc, 0.0);
    cost_units = EstimateShapeCost(db.planner_stats(), shape, estimate);
  }
  JoinStats local;
  JoinStats* sink = stats != nullptr ? stats : &local;
  const auto start = std::chrono::steady_clock::now();
  std::vector<ScoredUserPair> result =
      DispatchTopK(db, query, algorithm, use_sketch, sink);
  if (record) {
    PlannerFeedback::Global().Record(shape, estimate, cost_units, *sink,
                                     ElapsedMs(start));
    if (stats != nullptr) {
      stats->planner_estimated_candidates =
          RoundCount(estimate.candidate_pairs);
    }
  }
  return result;
}

std::vector<ScoredUserPair> FindSimilarUsers(const ObjectDatabase& db,
                                             UserId u,
                                             const STPSQuery& query) {
  std::vector<ScoredUserPair> result;
  if (u >= db.num_users()) return result;
  const MatchThresholds t = query.match_thresholds();
  const std::span<const STObject> du = db.UserObjects(u);
  for (UserId v = 0; v < db.num_users(); ++v) {
    if (v == u) continue;
    const std::span<const STObject> dv = db.UserObjects(v);
    const size_t total = du.size() + dv.size();
    if (total == 0) continue;
    const size_t matched = ExactSigmaMatched(du, dv, t);
    if (SigmaAtLeast(matched, total, query.eps_u)) {
      result.push_back({std::min(u, v), std::max(u, v),
                        static_cast<double>(matched) /
                            static_cast<double>(total)});
    }
  }
  std::sort(result.begin(), result.end(), TopKBetter);
  return result;
}

std::string_view JoinAlgorithmName(JoinAlgorithm algorithm) {
  switch (algorithm) {
    case JoinAlgorithm::kBruteForce:
      return "BruteForce";
    case JoinAlgorithm::kSPPJC:
      return "S-PPJ-C";
    case JoinAlgorithm::kSPPJB:
      return "S-PPJ-B";
    case JoinAlgorithm::kSPPJF:
      return "S-PPJ-F";
    case JoinAlgorithm::kSPPJD:
      return "S-PPJ-D";
    case JoinAlgorithm::kAuto:
      return "Auto";
  }
  return "unknown";
}

std::string_view TopKAlgorithmName(TopKAlgorithm algorithm) {
  switch (algorithm) {
    case TopKAlgorithm::kBruteForce:
      return "TOPK-BruteForce";
    case TopKAlgorithm::kF:
      return "TOPK-S-PPJ-F";
    case TopKAlgorithm::kS:
      return "TOPK-S-PPJ-S";
    case TopKAlgorithm::kP:
      return "TOPK-S-PPJ-P";
    case TopKAlgorithm::kAuto:
      return "TOPK-Auto";
  }
  return "unknown";
}

}  // namespace stps
