#include "core/stpsjoin.h"

#include <algorithm>

#include "core/sppj_b.h"
#include "core/sppj_c.h"
#include "core/sppj_d.h"
#include "core/sppj_f.h"
#include "core/sppj_f_parallel.h"
#include "sketch/sketch_join.h"

namespace stps {

std::vector<ScoredUserPair> RunSTPSJoin(const ObjectDatabase& db,
                                        const STPSQuery& query,
                                        const JoinOptions& options,
                                        JoinStats* stats) {
  // Either knob may request parallelism; take the stronger one.
  const int threads =
      std::max(options.threads, query.parallel.num_threads);
  const ParallelOptions parallel{threads, query.parallel.grain};
  // Sketch-generated candidates replace the per-algorithm filter stage
  // for every non-brute algorithm (verification is the shared PPJ-B
  // kernel, so results stay bit-identical). The band index is only a
  // sound filter when a match implies a common token, i.e. eps_doc > 0
  // with a real threshold eps_u > 0; otherwise fall through to the
  // requested algorithm unchanged.
  if (query.sketch.enabled && options.algorithm != JoinAlgorithm::kBruteForce &&
      query.eps_doc > 0.0 && query.eps_u > 0.0) {
    return SketchSTPSJoin(db, query, parallel, stats);
  }
  switch (options.algorithm) {
    case JoinAlgorithm::kBruteForce:
      return BruteForceSTPSJoin(db, query);
    case JoinAlgorithm::kSPPJC:
      if (threads > 1) return SPPJCParallel(db, query, parallel, stats);
      return SPPJC(db, query, stats);
    case JoinAlgorithm::kSPPJB:
      if (threads > 1) return SPPJBParallel(db, query, parallel, stats);
      return SPPJB(db, query, stats);
    case JoinAlgorithm::kSPPJF:
      if (threads > 1) return SPPJFParallel(db, query, parallel, stats);
      return SPPJF(db, query, stats);
    case JoinAlgorithm::kSPPJD:
      if (threads > 1) {
        return SPPJDParallel(db, query, SPPJDOptions{options.rtree_fanout},
                             parallel, stats);
      }
      return SPPJD(db, query, SPPJDOptions{options.rtree_fanout}, stats);
  }
  STPS_CHECK(false);
  return {};
}

std::vector<ScoredUserPair> RunTopKSTPSJoin(const ObjectDatabase& db,
                                            const TopKQuery& query,
                                            TopKAlgorithm algorithm,
                                            JoinStats* stats) {
  // Sketch candidates with the heavy-hitters verification order stand in
  // for every index-based variant (kF/kS/kP differ only in traversal
  // order, which sketches supersede; brute force stays brute force).
  if (query.sketch.enabled && algorithm != TopKAlgorithm::kBruteForce) {
    return SketchTopKSTPSJoin(db, query, query.parallel, stats);
  }
  const bool parallel = query.parallel.num_threads > 1;
  switch (algorithm) {
    case TopKAlgorithm::kBruteForce:
      return BruteForceTopK(db, query);
    case TopKAlgorithm::kF:
      if (parallel) {
        return TopKSTPSJoinParallel(db, query, TopKVariant::kF,
                                    query.parallel, stats);
      }
      return TopKSTPSJoin(db, query, TopKVariant::kF, stats);
    case TopKAlgorithm::kS:
      if (parallel) {
        return TopKSTPSJoinParallel(db, query, TopKVariant::kS,
                                    query.parallel, stats);
      }
      return TopKSTPSJoin(db, query, TopKVariant::kS, stats);
    case TopKAlgorithm::kP:
      if (parallel) {
        return TopKSTPSJoinParallel(db, query, TopKVariant::kP,
                                    query.parallel, stats);
      }
      return TopKSTPSJoin(db, query, TopKVariant::kP, stats);
  }
  STPS_CHECK(false);
  return {};
}

std::string_view JoinAlgorithmName(JoinAlgorithm algorithm) {
  switch (algorithm) {
    case JoinAlgorithm::kBruteForce:
      return "BruteForce";
    case JoinAlgorithm::kSPPJC:
      return "S-PPJ-C";
    case JoinAlgorithm::kSPPJB:
      return "S-PPJ-B";
    case JoinAlgorithm::kSPPJF:
      return "S-PPJ-F";
    case JoinAlgorithm::kSPPJD:
      return "S-PPJ-D";
  }
  return "unknown";
}

std::string_view TopKAlgorithmName(TopKAlgorithm algorithm) {
  switch (algorithm) {
    case TopKAlgorithm::kBruteForce:
      return "TOPK-BruteForce";
    case TopKAlgorithm::kF:
      return "TOPK-S-PPJ-F";
    case TopKAlgorithm::kS:
      return "TOPK-S-PPJ-S";
    case TopKAlgorithm::kP:
      return "TOPK-S-PPJ-P";
  }
  return "unknown";
}

}  // namespace stps
