#include "core/stpsjoin.h"

#include "core/sppj_b.h"
#include "core/sppj_c.h"
#include "core/sppj_d.h"
#include "core/sppj_f.h"
#include "core/sppj_f_parallel.h"

namespace stps {

std::vector<ScoredUserPair> RunSTPSJoin(const ObjectDatabase& db,
                                        const STPSQuery& query,
                                        const JoinOptions& options) {
  switch (options.algorithm) {
    case JoinAlgorithm::kBruteForce:
      return BruteForceSTPSJoin(db, query);
    case JoinAlgorithm::kSPPJC:
      return SPPJC(db, query);
    case JoinAlgorithm::kSPPJB:
      return SPPJB(db, query);
    case JoinAlgorithm::kSPPJF:
      if (options.threads > 1) {
        return SPPJFParallel(db, query, options.threads);
      }
      return SPPJF(db, query);
    case JoinAlgorithm::kSPPJD:
      return SPPJD(db, query, SPPJDOptions{options.rtree_fanout});
  }
  STPS_CHECK(false);
  return {};
}

std::vector<ScoredUserPair> RunTopKSTPSJoin(const ObjectDatabase& db,
                                            const TopKQuery& query,
                                            TopKAlgorithm algorithm) {
  switch (algorithm) {
    case TopKAlgorithm::kBruteForce:
      return BruteForceTopK(db, query);
    case TopKAlgorithm::kF:
      return TopKSPPJF(db, query);
    case TopKAlgorithm::kS:
      return TopKSPPJS(db, query);
    case TopKAlgorithm::kP:
      return TopKSPPJP(db, query);
  }
  STPS_CHECK(false);
  return {};
}

std::string_view JoinAlgorithmName(JoinAlgorithm algorithm) {
  switch (algorithm) {
    case JoinAlgorithm::kBruteForce:
      return "BruteForce";
    case JoinAlgorithm::kSPPJC:
      return "S-PPJ-C";
    case JoinAlgorithm::kSPPJB:
      return "S-PPJ-B";
    case JoinAlgorithm::kSPPJF:
      return "S-PPJ-F";
    case JoinAlgorithm::kSPPJD:
      return "S-PPJ-D";
  }
  return "unknown";
}

std::string_view TopKAlgorithmName(TopKAlgorithm algorithm) {
  switch (algorithm) {
    case TopKAlgorithm::kBruteForce:
      return "TOPK-BruteForce";
    case TopKAlgorithm::kF:
      return "TOPK-S-PPJ-F";
    case TopKAlgorithm::kS:
      return "TOPK-S-PPJ-S";
    case TopKAlgorithm::kP:
      return "TOPK-S-PPJ-P";
  }
  return "unknown";
}

}  // namespace stps
