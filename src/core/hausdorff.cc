#include "core/hausdorff.h"

#include <algorithm>
#include <limits>

#include "common/predicates.h"

namespace stps {

double DirectedHausdorff(std::span<const STObject> a,
                         std::span<const STObject> b) {
  if (a.empty()) return 0.0;
  if (b.empty()) return std::numeric_limits<double>::infinity();
  double max_min = 0.0;
  for (const STObject& oa : a) {
    double min_sq = std::numeric_limits<double>::infinity();
    for (const STObject& ob : b) {
      const double d = SquaredDistance(oa.loc, ob.loc);
      if (d < min_sq) {
        min_sq = d;
        // Early break: once this point is provably within the current
        // maximum of B, it cannot raise the maximum. Same squared-distance
        // predicate form as every other eps_loc comparison
        // (common/predicates.h), so the break and the update below agree
        // exactly at the boundary.
        if (WithinEpsLoc(min_sq, max_min)) break;
      }
    }
    if (!WithinEpsLoc(min_sq, max_min)) max_min = std::sqrt(min_sq);
  }
  return max_min;
}

double HausdorffDistance(std::span<const STObject> a,
                         std::span<const STObject> b) {
  return std::max(DirectedHausdorff(a, b), DirectedHausdorff(b, a));
}

std::vector<ScoredUserPair> HausdorffTopK(const ObjectDatabase& db,
                                          size_t k) {
  std::vector<ScoredUserPair> all;
  const size_t n = db.num_users();
  for (UserId a = 0; a < n; ++a) {
    for (UserId b = a + 1; b < n; ++b) {
      all.push_back(
          {a, b, HausdorffDistance(db.UserObjects(a), db.UserObjects(b))});
    }
  }
  // Smaller distance = more similar, so sort ascending.
  std::sort(all.begin(), all.end(),
            [](const ScoredUserPair& x, const ScoredUserPair& y) {
              if (x.score != y.score) return x.score < y.score;
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });
  if (all.size() > k) all.resize(k);
  return all;
}

}  // namespace stps
