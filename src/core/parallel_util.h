// Small shared helpers for the parallel join drivers: merging per-worker
// result vectors / stats accumulators back into the caller's view.

#ifndef STPS_CORE_PARALLEL_UTIL_H_
#define STPS_CORE_PARALLEL_UTIL_H_

#include <algorithm>
#include <vector>

#include "core/join_stats.h"
#include "core/similarity.h"

namespace stps {

/// Canonical STPSJoin result order: ascending (a, b).
inline bool PairIdLess(const ScoredUserPair& x, const ScoredUserPair& y) {
  if (x.a != y.a) return x.a < y.a;
  return x.b < y.b;
}

/// Concatenates the per-worker partial results and sorts them into the
/// canonical (a, b) order. Pairs are unique across workers, so the final
/// order — and therefore the whole result — is independent of how the
/// users were distributed over workers.
inline std::vector<ScoredUserPair> MergeSortedPairs(
    std::vector<std::vector<ScoredUserPair>>* per_worker) {
  std::vector<ScoredUserPair> result;
  size_t total = 0;
  for (const auto& partial : *per_worker) total += partial.size();
  result.reserve(total);
  for (const auto& partial : *per_worker) {
    result.insert(result.end(), partial.begin(), partial.end());
  }
  std::sort(result.begin(), result.end(), PairIdLess);
  return result;
}

/// Sums the per-worker counters into `*stats` (no-op when null).
inline void MergeWorkerStats(JoinStats* stats,
                             const std::vector<JoinStats>& worker_stats) {
  if (stats == nullptr) return;
  for (const JoinStats& ws : worker_stats) stats->Merge(ws);
}

}  // namespace stps

#endif  // STPS_CORE_PARALLEL_UTIL_H_
