// Per-user spatial partitioning structures shared by the S-PPJ-* family.
//
// UserGrid materialises, for a query's eps_loc grid, the per-user cell
// lists Cu (sorted by cell id) with the objects Du_c of each cell; the
// PPJ-C / PPJ-B pair kernels merge two such lists. The same structure
// doubles as the per-leaf partition lists of S-PPJ-D (ids are leaf
// ordinals instead of grid cell ids).
//
// SpatioTextualGridIndex is the incremental index of S-PPJ-F (Figure 3):
// per occupied cell, an inverted list token -> users having an object with
// that token in the cell.

#ifndef STPS_CORE_USER_GRID_H_
#define STPS_CORE_USER_GRID_H_

#include <algorithm>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/database.h"
#include "spatial/grid.h"
#include "stjoin/ppj.h"

namespace stps {

/// The objects of one user inside one spatial partition (grid cell or
/// R-tree leaf). `id` is the partition id; `objects` carry user-local
/// indices for matched-flag bookkeeping.
struct UserPartition {
  int64_t id = 0;
  std::vector<ObjectRef> objects;
};

/// Sorted list of partitions occupied by one user (the paper's Cu / Lu).
using UserPartitionList = std::vector<UserPartition>;

/// Builds the per-user cell lists for a grid with cell extent eps_loc.
class UserGrid {
 public:
  /// Precondition: db has at least one object, eps_loc > 0.
  UserGrid(const ObjectDatabase& db, double eps_loc);

  const GridGeometry& geometry() const { return geometry_; }

  /// Cu: the cells occupied by user u, ascending by cell id.
  const UserPartitionList& UserCells(UserId u) const {
    STPS_DCHECK(u < per_user_.size());
    return per_user_[u];
  }

  size_t num_users() const { return per_user_.size(); }

 private:
  GridGeometry geometry_;
  std::vector<UserPartitionList> per_user_;
};

/// Returns |Du_p| for partition `id` in a sorted UserPartitionList, or 0
/// when the user does not occupy it.
size_t PartitionObjectCount(const UserPartitionList& list, int64_t id);

/// Finds the partition with the given id; nullptr when absent.
const UserPartition* FindPartition(const UserPartitionList& list, int64_t id);

/// The distinct tokens appearing in `objects` (ascending).
TokenVector DistinctTokens(std::span<const ObjectRef> objects);

/// Scratch-reusing variant: clears *out and fills it with the distinct
/// tokens of `objects` (ascending). Hot loops pass a hoisted buffer to
/// avoid one allocation per partition.
void DistinctTokens(std::span<const ObjectRef> objects, TokenVector* out);

/// Sorts `*v` ascending and drops duplicates. The single authoritative
/// dedup for candidate cell/leaf bookkeeping: the filter loops only
/// perform an opportunistic back() check to limit growth, so supporting
/// cell lists MUST pass through here before being counted into the
/// sigma_bar bound (interleaved cell visits leave interior duplicates).
template <typename T>
void SortUnique(std::vector<T>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

/// One element of the merged traversal over two users' partition lists.
struct MergedPartition {
  int64_t id = 0;
  const UserPartition* u = nullptr;  // nullptr when the user is absent
  const UserPartition* v = nullptr;
};

/// Merges two sorted partition lists into the ascending sequence of
/// distinct ids with per-side pointers.
std::vector<MergedPartition> MergePartitionLists(const UserPartitionList& cu,
                                                 const UserPartitionList& cv);

/// Scratch-reusing variant: clears *out and fills it with the merged
/// traversal. Hot loops pass a hoisted buffer to avoid one allocation per
/// user pair.
void MergePartitionLists(const UserPartitionList& cu,
                         const UserPartitionList& cv,
                         std::vector<MergedPartition>* out);

/// The objects of a possibly-absent partition (empty span for nullptr).
inline std::span<const ObjectRef> PartitionObjects(const UserPartition* p) {
  return p == nullptr ? std::span<const ObjectRef>()
                      : std::span<const ObjectRef>(p->objects);
}

/// Incremental per-cell inverted index: token -> users (S-PPJ-F /
/// TOPK-S-PPJ-*). Users must be added at most once each.
class SpatioTextualGridIndex {
 public:
  SpatioTextualGridIndex() = default;

  /// Indexes every (cell, token) of the user's cell list.
  void AddUser(UserId u, const UserPartitionList& cells);

  /// The users (in insertion order) having an object with token `t` in
  /// cell `cell`; nullptr when none.
  const std::vector<UserId>* TokenUsers(CellId cell, TokenId t) const;

  /// The users (in insertion order, one entry each) having any object in
  /// `cell`; nullptr when the cell is empty. Used by the JoinStats
  /// spatial/textual filter breakdown.
  const std::vector<UserId>* CellUsers(CellId cell) const;

  /// True when cell `cell` holds any indexed object.
  bool CellOccupied(CellId cell) const {
    return cells_.find(cell) != cells_.end();
  }

 private:
  struct CellIndex {
    std::unordered_map<TokenId, std::vector<UserId>> token_users;
    std::vector<UserId> users;  // insertion order, one entry per user
  };
  std::unordered_map<CellId, CellIndex> cells_;
};

/// Number of distinct indexed users with id < u having an object in
/// `cu`'s cells or their neighbourhood — the users that pass the spatial
/// part of the S-PPJ-F filter for user u. Requires the index's per-cell
/// user lists to be ascending by id (true when users are added in id
/// order). Only used for the JoinStats spatial/textual breakdown.
size_t CountColocatedEarlierUsers(const GridGeometry& geometry,
                                  const SpatioTextualGridIndex& index,
                                  const UserPartitionList& cu, UserId u);

}  // namespace stps

#endif  // STPS_CORE_USER_GRID_H_
