// Per-user spatial partitioning structures shared by the S-PPJ-* family.
//
// UserGrid materialises, for a query's eps_loc grid, the per-user cell
// lists Cu (sorted by cell id) with the objects Du_c of each cell; the
// PPJ-C / PPJ-B pair kernels merge two such lists. The same structure
// doubles as the per-leaf partition lists of S-PPJ-D (ids are leaf
// ordinals instead of grid cell ids).
//
// Storage is CSR: a UserLayout owns one flat, cell-grouped array of
// object refs plus SoA coordinate mirrors, and each UserPartition is just
// a contiguous range into it. Because the database slots are Z-ordered,
// a cell's objects are (mostly) adjacent in the source arrays too, and
// the batched eps_loc kernels (spatial/batch.h) stream a whole cell block
// per probe instead of chasing one STObject pointer per candidate.
//
// SpatioTextualGridIndex is the incremental index of S-PPJ-F (Figure 3):
// per occupied cell, an inverted list token -> users having an object with
// that token in the cell.

#ifndef STPS_CORE_USER_GRID_H_
#define STPS_CORE_USER_GRID_H_

#include <algorithm>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/database.h"
#include "spatial/grid.h"
#include "stjoin/ppj.h"

namespace stps {

/// The objects of one user inside one spatial partition (grid cell or
/// R-tree leaf). `id` is the partition id; `objects` is a view into the
/// owning UserLayout's CSR ref array starting at offset `begin` (the same
/// offset addresses the layout's xs/ys coordinate blocks). Refs carry
/// user-local indices for matched-flag bookkeeping.
struct UserPartition {
  int64_t id = 0;
  std::span<const ObjectRef> objects;
  uint32_t begin = 0;
};

/// Sorted list of partitions occupied by one user (the paper's Cu / Lu).
using UserPartitionList = std::vector<UserPartition>;

/// Cell-grouped CSR layout of one user's objects: `refs` (and the aligned
/// coordinate mirrors `xs`/`ys`) hold the objects partition by partition
/// in ascending partition-id order; `cells` delimits the ranges.
/// Move-only: the partition spans point into `refs`' heap buffer, which a
/// move preserves and a copy would not.
struct UserLayout {
  UserPartitionList cells;
  std::vector<ObjectRef> refs;
  std::vector<double> xs;
  std::vector<double> ys;

  UserLayout() = default;
  UserLayout(const UserLayout&) = delete;
  UserLayout& operator=(const UserLayout&) = delete;
  UserLayout(UserLayout&&) = default;
  UserLayout& operator=(UserLayout&&) = default;

  /// Range-for iterates the partitions, as with a bare UserPartitionList.
  UserPartitionList::const_iterator begin() const { return cells.begin(); }
  UserPartitionList::const_iterator end() const { return cells.end(); }
  bool empty() const { return cells.empty(); }
};

/// Builds a UserLayout from (partition id, ref) pairs that are already
/// sorted ascending by id (order within a partition is preserved). The
/// coordinate mirrors are filled from the refs' STObjects.
UserLayout MakeUserLayout(
    std::span<const std::pair<int64_t, ObjectRef>> keyed);

/// The coordinate block of a possibly-absent partition in its layout:
/// empty for nullptr. This is what the batch kernels consume.
inline CellBlock BlockOf(const UserLayout& layout, const UserPartition* p) {
  if (p == nullptr) return CellBlock{};
  return CellBlock{p->objects, layout.xs.data() + p->begin,
                   layout.ys.data() + p->begin};
}

/// Builds the per-user cell lists for a grid with cell extent eps_loc.
class UserGrid {
 public:
  /// Precondition: db has at least one object, eps_loc > 0.
  UserGrid(const ObjectDatabase& db, double eps_loc);

  const GridGeometry& geometry() const { return geometry_; }

  /// Cu: the cells occupied by user u, ascending by cell id, with the
  /// CSR object/coordinate arrays behind them.
  const UserLayout& UserCells(UserId u) const {
    STPS_DCHECK(u < per_user_.size());
    return per_user_[u];
  }

  size_t num_users() const { return per_user_.size(); }

 private:
  GridGeometry geometry_;
  std::vector<UserLayout> per_user_;
};

/// Returns |Du_p| for partition `id` in a sorted UserPartitionList, or 0
/// when the user does not occupy it.
size_t PartitionObjectCount(const UserPartitionList& list, int64_t id);

/// Finds the partition with the given id; nullptr when absent.
const UserPartition* FindPartition(const UserPartitionList& list, int64_t id);

/// UserLayout conveniences for the same lookups.
inline const UserPartition* FindPartition(const UserLayout& layout,
                                          int64_t id) {
  return FindPartition(layout.cells, id);
}
inline size_t PartitionObjectCount(const UserLayout& layout, int64_t id) {
  return PartitionObjectCount(layout.cells, id);
}

/// The distinct tokens appearing in `objects` (ascending).
TokenVector DistinctTokens(std::span<const ObjectRef> objects);

/// Scratch-reusing variant: clears *out and fills it with the distinct
/// tokens of `objects` (ascending). Hot loops pass a hoisted buffer to
/// avoid one allocation per partition.
void DistinctTokens(std::span<const ObjectRef> objects, TokenVector* out);

/// Sorts `*v` ascending and drops duplicates. The single authoritative
/// dedup for candidate cell/leaf bookkeeping: the filter loops only
/// perform an opportunistic back() check to limit growth, so supporting
/// cell lists MUST pass through here before being counted into the
/// sigma_bar bound (interleaved cell visits leave interior duplicates).
template <typename T>
void SortUnique(std::vector<T>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

/// One element of the merged traversal over two users' partition lists.
struct MergedPartition {
  int64_t id = 0;
  const UserPartition* u = nullptr;  // nullptr when the user is absent
  const UserPartition* v = nullptr;
};

/// Merges two sorted partition lists into the ascending sequence of
/// distinct ids with per-side pointers.
std::vector<MergedPartition> MergePartitionLists(const UserPartitionList& cu,
                                                 const UserPartitionList& cv);

/// Scratch-reusing variant: clears *out and fills it with the merged
/// traversal. Hot loops pass a hoisted buffer to avoid one allocation per
/// user pair.
void MergePartitionLists(const UserPartitionList& cu,
                         const UserPartitionList& cv,
                         std::vector<MergedPartition>* out);

inline void MergePartitionLists(const UserLayout& cu, const UserLayout& cv,
                                std::vector<MergedPartition>* out) {
  MergePartitionLists(cu.cells, cv.cells, out);
}

/// The objects of a possibly-absent partition (empty span for nullptr).
inline std::span<const ObjectRef> PartitionObjects(const UserPartition* p) {
  return p == nullptr ? std::span<const ObjectRef>() : p->objects;
}

/// The cells of u whose objects may match a candidate (my_cells) and the
/// candidate's own supporting cells (their_cells) — the inputs of the
/// sigma_bar count bound. Shared by the S-PPJ-F/-D filters and the top-k
/// drivers (partition ids are cell ids or leaf ordinals alike).
struct CandidateCells {
  std::vector<int64_t> my_cells;
  std::vector<int64_t> their_cells;

  void Clear() {
    my_cells.clear();
    their_cells.clear();
  }
};

/// Dense epoch-stamped per-user candidate accumulator, replacing the
/// unordered_map<UserId, V> tables of the filter loops: operator[] is an
/// array index plus a stamp compare, and starting a new probing user is
/// O(1) — no rehash, no per-round clear of the value slots (a slot is
/// lazily Clear()ed the first time its stamp misses the current round).
/// SortedTouched() yields this round's candidates ascending by id, making
/// the refine order deterministic (the maps iterated in hash order).
template <typename V>
class UserCandidateTable {
 public:
  /// Starts a new round for a universe of `num_users` users.
  void BeginRound(size_t num_users) {
    if (stamp_.size() < num_users) {
      stamp_.resize(num_users, 0);
      values_.resize(num_users);
    }
    touched_.clear();
    if (++round_ == 0) {  // stamp wraparound: invalidate everything
      std::fill(stamp_.begin(), stamp_.end(), 0u);
      round_ = 1;
    }
  }

  /// The value slot of user `u`, cleared on first touch this round.
  V& operator[](UserId u) {
    STPS_DCHECK(u < stamp_.size());
    if (stamp_[u] != round_) {
      stamp_[u] = round_;
      values_[u].Clear();
      touched_.push_back(u);
    }
    return values_[u];
  }

  /// Number of users touched this round.
  size_t size() const { return touched_.size(); }

  /// The users touched this round, sorted ascending (in place).
  std::span<const UserId> SortedTouched() {
    std::sort(touched_.begin(), touched_.end());
    return touched_;
  }

 private:
  uint32_t round_ = 0;
  std::vector<uint32_t> stamp_;
  std::vector<V> values_;
  std::vector<UserId> touched_;
};

/// Incremental per-cell inverted index: token -> users (S-PPJ-F /
/// TOPK-S-PPJ-*). Users must be added at most once each.
class SpatioTextualGridIndex {
 public:
  SpatioTextualGridIndex() = default;

  /// Indexes every (cell, token) of the user's cell list.
  void AddUser(UserId u, const UserLayout& cells);

  /// The users (in insertion order) having an object with token `t` in
  /// cell `cell`; nullptr when none.
  const std::vector<UserId>* TokenUsers(CellId cell, TokenId t) const;

  /// The users (in insertion order, one entry each) having any object in
  /// `cell`; nullptr when the cell is empty. Used by the JoinStats
  /// spatial/textual filter breakdown.
  const std::vector<UserId>* CellUsers(CellId cell) const;

  /// True when cell `cell` holds any indexed object.
  bool CellOccupied(CellId cell) const {
    return cells_.find(cell) != cells_.end();
  }

 private:
  struct CellIndex {
    std::unordered_map<TokenId, std::vector<UserId>> token_users;
    std::vector<UserId> users;  // insertion order, one entry per user
  };
  std::unordered_map<CellId, CellIndex> cells_;
};

/// Number of distinct indexed users with id < u having an object in
/// `cu`'s cells or their neighbourhood — the users that pass the spatial
/// part of the S-PPJ-F filter for user u. Requires the index's per-cell
/// user lists to be ascending by id (true when users are added in id
/// order). Only used for the JoinStats spatial/textual breakdown.
size_t CountColocatedEarlierUsers(const GridGeometry& geometry,
                                  const SpatioTextualGridIndex& index,
                                  const UserLayout& cu, UserId u);

}  // namespace stps

#endif  // STPS_CORE_USER_GRID_H_
