#include "core/update.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <utility>

#include "common/timer.h"
#include "planner/planner_stats.h"
#include "sketch/sketch.h"
#include "spatial/batch.h"
#include "text/dictionary.h"
#include "text/token_set.h"

namespace stps {

namespace {
constexpr uint32_t kNone = std::numeric_limits<uint32_t>::max();
}  // namespace

std::string FormatUpdateStats(const UpdateStats& stats) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "objects: inserted=%llu deleted=%llu users_deleted=%llu\n"
      "publishes: total=%llu delta=%llu full=%llu dirty_users=%llu\n"
      "blocks: reused=%llu rebuilt=%llu\n"
      "last publish: %s, %.3f ms\n"
      "compactions: arena=%llu slots=%llu",
      static_cast<unsigned long long>(stats.objects_inserted),
      static_cast<unsigned long long>(stats.objects_deleted),
      static_cast<unsigned long long>(stats.users_deleted),
      static_cast<unsigned long long>(stats.publishes),
      static_cast<unsigned long long>(stats.delta_publishes),
      static_cast<unsigned long long>(stats.full_publishes),
      static_cast<unsigned long long>(stats.dirty_users_published),
      static_cast<unsigned long long>(stats.blocks_reused),
      static_cast<unsigned long long>(stats.blocks_rebuilt),
      stats.publishes == 0 ? "none"
      : stats.last_publish_delta ? "delta"
                                 : "full",
      stats.last_publish_ms,
      static_cast<unsigned long long>(stats.arena_compactions),
      static_cast<unsigned long long>(stats.slot_compactions));
  return std::string(buf);
}

UpdatableDatabase::UpdatableDatabase(UpdateOptions options)
    : options_(options) {
  // Epoch 0 is a *built* empty database, not a default-constructed one:
  // queries rely on Build()'s invariants (user_begin_ sentinel, planner
  // stats, sketch index) even when the database holds nothing yet.
  auto initial = std::make_shared<DatabaseSnapshot>();
  DatabaseBuilder builder;
  initial->db = std::move(builder).Build();
  snapshot_ = std::move(initial);
}

uint32_t UpdatableDatabase::InternUser(std::string_view key) {
  auto [it, inserted] = user_index_.try_emplace(
      std::string(key), static_cast<uint32_t>(users_.size()));
  if (inserted) {
    users_.push_back(UserEntry{std::string(key), {}});
  }
  return it->second;
}

uint32_t UpdatableDatabase::InternToken(std::string_view token) {
  auto [it, inserted] = token_index_.try_emplace(
      std::string(token), static_cast<uint32_t>(token_strings_.size()));
  if (inserted) {
    token_strings_.emplace_back(token);
    token_df_.push_back(0);
    token_stable_hash_.push_back(StableTokenHash(token));
    token_dirty_.push_back(0);
  }
  return it->second;
}

void UpdatableDatabase::MarkTokenDirtyLocked(uint32_t token) {
  if (!token_dirty_[token]) {
    token_dirty_[token] = 1;
    dirty_token_list_.push_back(token);
  }
}

void UpdatableDatabase::MarkUserDirtyLocked(uint32_t user) {
  if (user >= user_dirty_.size()) user_dirty_.resize(users_.size(), 0);
  if (!user_dirty_[user]) {
    user_dirty_[user] = 1;
    ++dirty_users_;
  }
}

void UpdatableDatabase::InsertLocked(const RawObject& object) {
  // Intern, sort, and dedup the keyword set up front (AddObject collapses
  // duplicates the same way, so publishing the normalized set builds the
  // same database as publishing the raw one).
  TokenVector tokens;
  tokens.reserve(object.keywords.size());
  for (const std::string& kw : object.keywords) {
    tokens.push_back(InternToken(kw));
  }
  NormalizeTokenSet(&tokens);
  // Document frequency counts each token once per (normalized) object —
  // the same accounting DatabaseBuilder::AddObject performs, maintained
  // here incrementally so the delta path can rebuild the dictionary
  // without re-interning every survivor.
  for (const TokenId t : tokens) {
    ++token_df_[t];
    MarkTokenDirtyLocked(t);
  }

  // An insert outside the published bounds grows them, which would shift
  // every Z-order key and sketch grid frame — only a full rebuild can
  // absorb that. Inserts inside (or on) the bounds leave them untouched.
  // Safe without snapshot_mutex_: snapshot_ is only ever reassigned under
  // mutex_, which this thread holds.
  const Rect& bounds = snapshot_->db.bounds();
  if (bounds.IsEmpty() || !bounds.Contains(object.loc)) {
    delta_blocked_ = true;
  }

  uint32_t slot_id;
  if (!free_slots_.empty()) {
    slot_id = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot_id = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& slot = slots_[slot_id];
  slot.user = InternUser(object.user);
  slot.loc = object.loc;
  slot.time = object.time;
  slot.seq = next_seq_++;
  slot.token_begin = static_cast<uint32_t>(token_arena_.size());
  slot.token_count = static_cast<uint32_t>(tokens.size());
  slot.live = true;
  token_arena_.insert(token_arena_.end(), tokens.begin(), tokens.end());
  users_[slot.user].slots.push_back(slot_id);
  MarkUserDirtyLocked(slot.user);
  ++stats_.objects_inserted;
  ++pending_mutations_;
}

void UpdatableDatabase::InsertObject(const RawObject& object) {
  InsertObjects(std::span<const RawObject>(&object, 1));
}

void UpdatableDatabase::InsertObjects(std::span<const RawObject> objects) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const RawObject& object : objects) InsertLocked(object);
  PublishThresholdLocked();
}

bool UpdatableDatabase::DeleteUser(std::string_view user_key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = user_index_.find(std::string(user_key));
  if (it == user_index_.end()) return false;
  UserEntry& user = users_[it->second];
  if (user.slots.empty()) return false;
  const Rect& bounds = snapshot_->db.bounds();  // safe, see InsertLocked
  for (const uint32_t slot_id : user.slots) {
    Slot& slot = slots_[slot_id];
    STPS_DCHECK(slot.live);
    slot.live = false;
    dead_tokens_ += slot.token_count;
    for (uint32_t i = 0; i < slot.token_count; ++i) {
      const TokenId t = token_arena_[slot.token_begin + i];
      STPS_DCHECK(token_df_[t] > 0);
      --token_df_[t];
      MarkTokenDirtyLocked(t);
    }
    // Deleting a point that sits on the published bounds boundary can
    // shrink the survivors' bounds; interior deletes cannot (the extreme
    // points still survive), so only boundary deletes block the delta
    // path. min/max are exact over the fold order, so "no boundary
    // deletes and no out-of-bounds inserts" proves bounds equality.
    if (!bounds.IsEmpty() &&
        (slot.loc.x == bounds.min_x || slot.loc.x == bounds.max_x ||
         slot.loc.y == bounds.min_y || slot.loc.y == bounds.max_y)) {
      delta_blocked_ = true;
    }
    free_slots_.push_back(slot_id);
    ++stats_.objects_deleted;
    ++pending_mutations_;
  }
  user.slots.clear();
  MarkUserDirtyLocked(it->second);
  ++stats_.users_deleted;
  MaybeCompactLocked();
  PublishThresholdLocked();
  return true;
}

void UpdatableDatabase::MaybeCompactLocked() {
  if (dead_tokens_ >
      options_.compact_fraction * static_cast<double>(token_arena_.size())) {
    CompactArenaLocked();
  }
  if (static_cast<double>(free_slots_.size()) >
      options_.compact_fraction * static_cast<double>(slots_.size())) {
    CompactSlotsLocked();
  }
}

void UpdatableDatabase::CompactArenaLocked() {
  // Rewrite the arena keeping only live extents. Live runs are copied in
  // slot order (the arena's order is irrelevant to publishing, which
  // walks slots); extents shrink-to-front so no slot ever overlaps the
  // region still to be copied.
  std::vector<TokenId> packed;
  packed.reserve(token_arena_.size() - dead_tokens_);
  for (Slot& slot : slots_) {
    if (!slot.live) continue;
    const uint32_t begin = static_cast<uint32_t>(packed.size());
    packed.insert(packed.end(), token_arena_.begin() + slot.token_begin,
                  token_arena_.begin() + slot.token_begin + slot.token_count);
    slot.token_begin = begin;
  }
  token_arena_ = std::move(packed);
  dead_tokens_ = 0;
  ++stats_.arena_compactions;
}

void UpdatableDatabase::CompactSlotsLocked() {
  // Drop dead slots, renumbering the live ones in place (stable, so seq
  // order within the array is preserved) and rewriting the per-user slot
  // lists to the new ids.
  std::vector<uint32_t> remap(slots_.size(), 0);
  size_t next = 0;
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[i].live) continue;
    remap[i] = static_cast<uint32_t>(next);
    if (next != i) slots_[next] = std::move(slots_[i]);
    ++next;
  }
  slots_.resize(next);
  free_slots_.clear();
  for (UserEntry& user : users_) {
    for (uint32_t& slot_id : user.slots) slot_id = remap[slot_id];
  }
  ++stats_.slot_compactions;
}

bool UpdatableDatabase::CanDeltaPublishLocked() const {
  if (options_.delta_publish_max_fraction <= 0.0) return false;
  if (delta_blocked_) return false;
  const ObjectDatabase& prev = snapshot_->db;
  if (prev.num_users() == 0) return false;  // epoch 0 / emptied database
  const double fraction = static_cast<double>(dirty_users_) /
                          static_cast<double>(prev.num_users());
  return fraction <= options_.delta_publish_max_fraction;
}

ObjectDatabase UpdatableDatabase::BuildFullLocked(PublishScaffold* out) {
  // Surviving objects replay through DatabaseBuilder in their original
  // insertion order, which makes the published database definitionally
  // identical to a fresh build of the survivors — Build() refreshes the
  // Z-order layout, CSR arena, SoA mirrors, signatures, sketch index,
  // and PlannerStats in one pass.
  std::vector<const Slot*> live;
  live.reserve(slots_.size() - free_slots_.size());
  for (const Slot& slot : slots_) {
    if (slot.live) live.push_back(&slot);
  }
  std::sort(live.begin(), live.end(),
            [](const Slot* a, const Slot* b) { return a->seq < b->seq; });

  DatabaseBuilder builder;
  std::vector<std::string_view> keywords;
  for (const Slot* slot : live) {
    keywords.clear();
    for (uint32_t i = 0; i < slot->token_count; ++i) {
      keywords.push_back(token_strings_[token_arena_[slot->token_begin + i]]);
    }
    builder.AddObject(users_[slot->user].key, slot->loc,
                      std::span<const std::string_view>(keywords),
                      slot->time);
  }
  ObjectDatabase db = std::move(builder).Build();

  // (Re)seed the maintained planner pairs from the fresh database. The
  // id mappings stay empty: RefreshAfterPublishLocked resolves them
  // through the indexes on the full path.
  out->planner_pairs.clear();
  out->planner_pairs.reserve(db.num_objects());
  for (const STObject& o : db.AllObjects()) {
    out->planner_pairs.emplace_back(ZOrderKey(db.bounds(), o.loc), o.user);
  }
  std::sort(out->planner_pairs.begin(), out->planner_pairs.end());
  return db;
}

ObjectDatabase UpdatableDatabase::BuildDeltaLocked(const ObjectDatabase& prev,
                                                   PublishScaffold* out) {
  const bool profile = std::getenv("STPS_DELTA_PROFILE") != nullptr;
  Timer stage_timer;
  double last_elapsed = 0.0;
  const auto stage = [&](const char* name) {
    if (!profile) return;
    const double now = stage_timer.ElapsedMillis();
    std::fprintf(stderr, "  delta stage %-12s %8.3f ms\n", name,
                 now - last_elapsed);
    last_elapsed = now;
  };
  // The O(delta) publish path: rebuild dirty users' blocks from the
  // store, splice every other user's columns from `prev`. Bit-identity
  // with BuildFullLocked rests on three facts the guards established:
  //  * bounds are unchanged (no out-of-bounds insert, no boundary
  //    delete), so Z-order keys and sketch grid frames are unchanged;
  //  * only whole-user deletes exist, so a retained user kept all its
  //    previous objects — its block survives verbatim modulo token-id
  //    remapping and replay-rank compaction;
  //  * token dfs are maintained exactly as AddObject counts them, so the
  //    rebuilt dictionary is the one a fresh build would finalize.

  // --- 1. Classify store users and fix the new user ordering. ---
  // Fresh-build user ids follow first appearance in the survivor replay.
  // Retained users (first live slot predates the last publish) replay
  // their previous first object, so they keep their relative prev-id
  // order and all precede every fresh user (whose objects are all
  // pending); fresh users order by their first pending seq.
  struct NewUser {
    uint32_t store = 0;     // index into users_
    uint32_t prev = kNone;  // id in `prev` (retained users only)
    bool dirty = false;
  };
  std::vector<NewUser> new_users;
  std::vector<std::pair<uint64_t, uint32_t>> fresh;  // (first seq, store u)
  for (uint32_t u = 0; u < users_.size(); ++u) {
    if (users_[u].slots.empty()) continue;
    const bool dirty = u < user_dirty_.size() && user_dirty_[u] != 0;
    const uint64_t first_seq = slots_[users_[u].slots.front()].seq;
    if (first_seq < publish_seq_) {
      STPS_CHECK(u < user_prev_id_.size() && user_prev_id_[u] != kNone);
      new_users.push_back(NewUser{u, user_prev_id_[u], dirty});
    } else {
      STPS_DCHECK(dirty);  // fresh users were inserted into post-publish
      fresh.emplace_back(first_seq, u);
    }
  }
  std::sort(
      new_users.begin(), new_users.end(),
      [](const NewUser& a, const NewUser& b) { return a.prev < b.prev; });
  std::sort(fresh.begin(), fresh.end());
  for (const auto& [seq, u] : fresh) {
    new_users.push_back(NewUser{u, kNone, true});
  }
  const size_t num_users = new_users.size();

  // prev id -> new id for *clean* retained users (sketch splice targets,
  // planner-pair rewrites); prev_retained additionally covers dirty
  // retained users (their previous objects survive, their blocks don't).
  std::vector<uint32_t> prev_to_new_user(prev.num_users(), kNone);
  std::vector<uint8_t> prev_retained(prev.num_users(), 0);
  size_t clean_count = 0;
  for (uint32_t nu = 0; nu < num_users; ++nu) {
    const NewUser& info = new_users[nu];
    if (info.prev == kNone) continue;
    prev_retained[info.prev] = 1;
    if (!info.dirty) {
      prev_to_new_user[info.prev] = nu;
      ++clean_count;
    }
  }
  stats_.blocks_reused += clean_count;
  stats_.blocks_rebuilt += num_users - clean_count;

  stage("classify");
  // --- 2. Dictionary splice from the maintained live dfs. ---
  // Exactly FinalizeByFrequency's order: ascending (df, string). A token
  // whose df did not move since the last publish kept its sort key, so
  // the previous dictionary order — filtered of dirty tokens — is a
  // sorted subsequence of the new order; only the dirty live tokens are
  // re-sorted and merged in. Keys are unique (strings are), so the merge
  // reproduces the full sort without touching O(V log V) comparisons.
  const Dictionary& prev_dict = prev.dictionary();
  STPS_DCHECK(dict_store_ids_.size() == prev_dict.size());
  std::vector<uint32_t> changed;
  changed.reserve(dirty_token_list_.size());
  for (const uint32_t t : dirty_token_list_) {
    if (token_df_[t] > 0) changed.push_back(t);
  }
  const auto token_less = [this](uint32_t a, uint32_t b) {
    if (token_df_[a] != token_df_[b]) return token_df_[a] < token_df_[b];
    return token_strings_[a] < token_strings_[b];
  };
  std::sort(changed.begin(), changed.end(), token_less);
  std::vector<uint32_t>& dict_store_ids = out->dict_store_ids;
  dict_store_ids.clear();
  dict_store_ids.reserve(dict_store_ids_.size() + changed.size());
  size_t ci = 0;
  for (const uint32_t s : dict_store_ids_) {
    if (token_dirty_[s]) continue;  // re-emitted from `changed` if live
    while (ci < changed.size() && token_less(changed[ci], s)) {
      dict_store_ids.push_back(changed[ci++]);
    }
    dict_store_ids.push_back(s);
  }
  while (ci < changed.size()) dict_store_ids.push_back(changed[ci++]);

  std::vector<std::string> dict_strings;
  std::vector<uint64_t> dict_freq;
  dict_strings.reserve(dict_store_ids.size());
  dict_freq.reserve(dict_store_ids.size());
  std::vector<TokenId> store_to_new(token_df_.size(), kNone);
  std::vector<uint64_t> stable_hashes(dict_store_ids.size());
  for (uint32_t i = 0; i < dict_store_ids.size(); ++i) {
    const uint32_t t = dict_store_ids[i];
    STPS_DCHECK(token_df_[t] > 0);
    store_to_new[t] = static_cast<TokenId>(i);
    dict_strings.push_back(token_strings_[t]);
    dict_freq.push_back(token_df_[t]);
    stable_hashes[i] = token_stable_hash_[t];
  }
  stage("dict-sort");
  // prev token id -> new token id: a pure array composition through the
  // maintained store ids. kNone for tokens whose last surviving
  // occurrence was deleted — those are only ever referenced by blocks we
  // rebuild from the store anyway.
  std::vector<TokenId> prev_to_new_token(prev_dict.size(), kNone);
  for (TokenId pt = 0; pt < prev_dict.size(); ++pt) {
    prev_to_new_token[pt] = store_to_new[dict_store_ids_[pt]];
  }

  stage("dict-remap");
  // --- 3. Replay-rank scaffolding. ---
  // insertion_order() values are ranks in the survivor replay: previous
  // survivors keep their previous replay order compacted over deleted
  // users' objects; pending inserts follow, in seq order.
  const size_t n_prev = prev.num_objects();
  const std::span<const uint32_t> prev_io = prev.insertion_order();
  const std::span<const UserId> prev_user_col = prev.users();
  std::vector<uint8_t> survived(n_prev, 0);
  for (size_t s = 0; s < n_prev; ++s) {
    survived[prev_io[s]] = prev_retained[prev_user_col[s]];
  }
  std::vector<uint32_t> compact(n_prev, 0);  // prev rank -> survivor rank
  uint32_t r_surv = 0;
  for (size_t r = 0; r < n_prev; ++r) {
    compact[r] = r_surv;
    r_surv += survived[r];
  }
  std::vector<uint64_t> pending_seqs;
  for (const Slot& slot : slots_) {
    if (slot.live && slot.seq >= publish_seq_) {
      pending_seqs.push_back(slot.seq);
    }
  }
  std::sort(pending_seqs.begin(), pending_seqs.end());
  const auto replay_of_seq = [&](uint64_t seq) {
    const auto it =
        std::lower_bound(pending_seqs.begin(), pending_seqs.end(), seq);
    STPS_DCHECK(it != pending_seqs.end() && *it == seq);
    return r_surv + static_cast<uint32_t>(it - pending_seqs.begin());
  };

  stage("scaffold");
  // --- 4. Per-user blocks: slot plan, counts, token extents. ---
  const Rect& bounds = prev.bounds();
  std::vector<uint32_t> user_begin(num_users + 1, 0);
  for (uint32_t nu = 0; nu < num_users; ++nu) {
    const NewUser& info = new_users[nu];
    const uint32_t count =
        info.dirty ? static_cast<uint32_t>(users_[info.store].slots.size())
                   : static_cast<uint32_t>(prev.UserObjectCount(info.prev));
    user_begin[nu + 1] = user_begin[nu] + count;
  }
  const size_t n = user_begin.back();
  STPS_CHECK(n == r_surv + pending_seqs.size());

  std::vector<uint32_t> insertion_order(n, 0);
  std::vector<uint32_t> store_slot_of(n, kNone);  // dirty blocks only
  std::vector<uint32_t> prev_slot_of(n, kNone);   // clean blocks only
  std::vector<uint32_t> token_begin(n + 1, 0);
  std::vector<uint32_t> block_ranks;                       // scratch
  std::vector<uint32_t> replay;                            // scratch
  std::vector<std::pair<uint64_t, uint32_t>> slot_order;   // scratch
  for (uint32_t nu = 0; nu < num_users; ++nu) {
    const NewUser& info = new_users[nu];
    const uint32_t base = user_begin[nu];
    if (!info.dirty) {
      // Splice: the block keeps its previous physical (Z-order) layout —
      // same point set, same bounds, same keys.
      const uint32_t pb = prev.user_begin_[info.prev];
      const uint32_t pe = prev.user_begin_[info.prev + 1];
      for (uint32_t i = 0; i < pe - pb; ++i) {
        prev_slot_of[base + i] = pb + i;
        insertion_order[base + i] = compact[prev_io[pb + i]];
        token_begin[base + i + 1] =
            prev.token_begin_[pb + i + 1] - prev.token_begin_[pb + i];
      }
      continue;
    }
    // Rebuild: the store's slot list is in seq order. A dirty retained
    // user's first |prev block| slots are its previous objects, and the
    // block's sorted previous replay ranks align 1:1 with that seq-
    // ordered prefix (whole-user deletes: the user kept everything).
    const std::vector<uint32_t>& slot_ids = users_[info.store].slots;
    const size_t k = slot_ids.size();
    replay.resize(k);
    size_t prev_count = 0;
    if (info.prev != kNone) {
      const uint32_t pb = prev.user_begin_[info.prev];
      const uint32_t pe = prev.user_begin_[info.prev + 1];
      block_ranks.assign(prev_io.begin() + pb, prev_io.begin() + pe);
      std::sort(block_ranks.begin(), block_ranks.end());
      prev_count = block_ranks.size();
      STPS_CHECK(prev_count <= k);
    }
    slot_order.clear();
    slot_order.reserve(k);
    for (size_t i = 0; i < k; ++i) {
      const Slot& slot = slots_[slot_ids[i]];
      if (i < prev_count) {
        STPS_DCHECK(slot.seq < publish_seq_);
        replay[i] = compact[block_ranks[i]];
      } else {
        STPS_DCHECK(slot.seq >= publish_seq_);
        replay[i] = replay_of_seq(slot.seq);
      }
      slot_order.emplace_back(ZOrderKey(bounds, slot.loc),
                              static_cast<uint32_t>(i));
    }
    // Physical order within the block: (zkey, replay) — replay is
    // monotone in list position, so a stable sort by key matches the
    // builder's stable sort over replay-ordered input.
    std::stable_sort(slot_order.begin(), slot_order.end(),
                     [](const std::pair<uint64_t, uint32_t>& a,
                        const std::pair<uint64_t, uint32_t>& b) {
                       return a.first < b.first;
                     });
    for (size_t j = 0; j < k; ++j) {
      const uint32_t idx = slot_order[j].second;
      store_slot_of[base + j] = slot_ids[idx];
      insertion_order[base + j] = replay[idx];
      token_begin[base + j + 1] = slots_[slot_ids[idx]].token_count;
    }
  }
  for (size_t i = 0; i < n; ++i) token_begin[i + 1] += token_begin[i];

  stage("blocks");
  // --- 5. Token arena: gather + remap, re-sorting only when the id
  // permutation reordered an object's set. ---
  std::vector<TokenId> token_data(token_begin.back());
  for (size_t i = 0; i < n; ++i) {
    TokenId* dst = token_data.data() + token_begin[i];
    const size_t count = token_begin[i + 1] - token_begin[i];
    if (prev_slot_of[i] != kNone) {
      const uint32_t ps = prev_slot_of[i];
      const TokenId* src = prev.token_data_.data() + prev.token_begin_[ps];
      for (size_t t = 0; t < count; ++t) {
        STPS_DCHECK(prev_to_new_token[src[t]] != kNone);
        dst[t] = prev_to_new_token[src[t]];
      }
    } else {
      const Slot& slot = slots_[store_slot_of[i]];
      const TokenId* src = token_arena_.data() + slot.token_begin;
      for (size_t t = 0; t < count; ++t) {
        STPS_DCHECK(store_to_new[src[t]] != kNone);
        dst[t] = store_to_new[src[t]];
      }
    }
    if (!std::is_sorted(dst, dst + count)) std::sort(dst, dst + count);
  }

  stage("arena");
  // --- 6. Assemble the database: columns, AoS objects, SoA mirrors. ---
  ObjectDatabase db;
  db.bounds_ = bounds;
  db.dictionary_ = Dictionary::FromSortedEntries(std::move(dict_strings),
                                                 std::move(dict_freq));
  db.user_begin_ = std::move(user_begin);
  db.token_begin_ = std::move(token_begin);
  db.token_data_ = std::move(token_data);

  // No user appeared or disappeared (the common delta): every retained
  // user keeps its previous id (retained users precede fresh ones and
  // sort by prev id), so the name table is element-wise the previous
  // one — share it. StringTable copies are O(1) (shared string storage),
  // and the already-built lazy Find index rides along. Otherwise build
  // the names fresh, leaving the name -> id index to StringTable's lazy
  // (call_once) build: the first FindUser pays it, not the publish.
  // Either way serialization and equality only see the strings.
  if (fresh.empty() && num_users == prev.num_users()) {
    db.user_names_ = prev.user_names_;
  } else {
    std::vector<std::string> names(num_users);
    for (uint32_t nu = 0; nu < num_users; ++nu) {
      names[nu] = users_[new_users[nu].store].key;
    }
    db.user_names_ = StringTable(std::move(names));
  }
  stage("names");

  std::vector<double> xs(n), ys(n);
  std::vector<UserId> users_col(n);
  std::vector<TokenSignature> sigs(n);
  db.objects_.resize(n);
  for (uint32_t nu = 0; nu < num_users; ++nu) {
    const uint32_t begin = db.user_begin_[nu];
    const uint32_t end = db.user_begin_[nu + 1];
    for (uint32_t i = begin; i < end; ++i) {
      STObject& out = db.objects_[i];
      out.id = static_cast<ObjectId>(i);
      out.user = nu;
      if (prev_slot_of[i] != kNone) {
        const STObject& po = prev.objects_[prev_slot_of[i]];
        out.loc = po.loc;
        out.time = po.time;
      } else {
        const Slot& slot = slots_[store_slot_of[i]];
        out.loc = slot.loc;
        out.time = slot.time;
      }
      // Signatures hash token *ids*, which the dictionary rebuild may
      // have shifted even for clean users — recompute for everyone
      // (multiply-shift per token, negligible next to a full rebuild).
      out.set_doc(db.ObjectTokens(i));
      xs[i] = out.loc.x;
      ys[i] = out.loc.y;
      users_col[i] = nu;
      sigs[i] = out.sig;
    }
  }
  db.xs_ = std::move(xs);
  db.ys_ = std::move(ys);
  db.users_ = std::move(users_col);
  db.sigs_ = std::move(sigs);
  db.insertion_order_ = std::move(insertion_order);

  stage("assemble");
  // --- 7. Sketch layer: splice clean users' rows, recompute dirty. ---
  STPS_CHECK(prev.has_sketches());
  std::vector<uint32_t> sketch_prev_of_new(num_users, kNone);
  for (uint32_t nu = 0; nu < num_users; ++nu) {
    const NewUser& info = new_users[nu];
    if (info.prev != kNone && !info.dirty) sketch_prev_of_new[nu] = info.prev;
  }
  db.sketches_ = std::make_shared<const UserSketchIndex>(
      db, prev.sketches(), std::span<const uint32_t>(sketch_prev_of_new),
      prev.sketches().params(),
      std::span<const uint64_t>(stable_hashes));

  stage("sketch");
  // --- 8. Planner stats from the maintained key multiset: drop dirty /
  // deleted users' pairs, rewrite clean users' ids, merge in the dirty
  // users' recomputed pairs. Keys are bounds-relative and bounds are
  // unchanged, so kept keys are exact. ---
  STPS_DCHECK(planner_keys_.size() == n_prev);
  std::vector<std::pair<uint64_t, UserId>> kept;
  kept.reserve(planner_keys_.size());
  for (const auto& [key, pu] : planner_keys_) {
    const uint32_t nu = prev_to_new_user[pu];
    if (nu == kNone) continue;
    kept.emplace_back(key, nu);
  }
  std::vector<std::pair<uint64_t, UserId>> dirty_pairs;
  for (size_t i = 0; i < n; ++i) {
    if (store_slot_of[i] == kNone) continue;
    dirty_pairs.emplace_back(ZOrderKey(bounds, db.objects_[i].loc),
                             db.objects_[i].user);
  }
  std::sort(dirty_pairs.begin(), dirty_pairs.end());
  out->planner_pairs.resize(kept.size() + dirty_pairs.size());
  std::merge(kept.begin(), kept.end(), dirty_pairs.begin(),
             dirty_pairs.end(), out->planner_pairs.begin(),
             [](const std::pair<uint64_t, UserId>& a,
                const std::pair<uint64_t, UserId>& b) {
               return a.first < b.first;
             });
  std::vector<uint64_t> sorted_keys(out->planner_pairs.size());
  for (size_t i = 0; i < out->planner_pairs.size(); ++i) {
    sorted_keys[i] = out->planner_pairs[i].first;
  }
  stage("planner-merge");
  db.planner_stats_ = std::make_shared<const PlannerStats>(
      ComputePlannerStats(db, sorted_keys));
  stage("planner-stats");

  // The build already knows every store user's published id — hand the
  // mapping to the refresh so it skips the per-user name lookups.
  out->user_ids.assign(users_.size(), kNone);
  for (uint32_t nu = 0; nu < num_users; ++nu) {
    out->user_ids[new_users[nu].store] = nu;
  }
  return db;
}

void UpdatableDatabase::RefreshAfterPublishLocked(const ObjectDatabase& db,
                                                  PublishScaffold scaffold) {
  planner_keys_ = std::move(scaffold.planner_pairs);
  if (scaffold.user_ids.size() == users_.size()) {
    user_prev_id_ = std::move(scaffold.user_ids);
  } else {
    user_prev_id_.assign(users_.size(), kNone);
    for (uint32_t u = 0; u < users_.size(); ++u) {
      if (users_[u].slots.empty()) continue;
      uint32_t id = 0;
      const bool found = db.FindUser(users_[u].key, &id);
      STPS_CHECK(found);
      user_prev_id_[u] = id;
    }
  }
  const Dictionary& dict = db.dictionary();
  if (scaffold.dict_store_ids.size() == dict.size() &&
      !scaffold.dict_store_ids.empty()) {
    dict_store_ids_ = std::move(scaffold.dict_store_ids);
  } else {
    // Full path: every published token was interned in the store, so the
    // string index recovers its store id.
    dict_store_ids_.assign(dict.size(), 0);
    for (TokenId t = 0; t < dict.size(); ++t) {
      const auto it = token_index_.find(std::string(dict.TokenString(t)));
      STPS_CHECK(it != token_index_.end());
      dict_store_ids_[t] = it->second;
    }
  }
  for (const uint32_t t : dirty_token_list_) token_dirty_[t] = 0;
  dirty_token_list_.clear();
  user_dirty_.assign(users_.size(), 0);
  dirty_users_ = 0;
  delta_blocked_ = false;
  publish_seq_ = next_seq_;
  pending_mutations_ = 0;
}

PublishResult UpdatableDatabase::PublishLocked() {
  Timer timer;
  const bool use_delta = CanDeltaPublishLocked();
  PublishScaffold scaffold;
  auto next = std::make_shared<DatabaseSnapshot>();
  // Safe without snapshot_mutex_: snapshot_ is only ever reassigned under
  // mutex_, which this thread holds.
  next->epoch = snapshot_->epoch + 1;
  if (use_delta) {
    ++stats_.delta_publishes;
    stats_.dirty_users_published += dirty_users_;
    next->db = BuildDeltaLocked(snapshot_->db, &scaffold);
  } else {
    ++stats_.full_publishes;
    next->db = BuildFullLocked(&scaffold);
    stats_.blocks_rebuilt += next->db.num_users();
  }
  RefreshAfterPublishLocked(next->db, std::move(scaffold));
  ++stats_.publishes;
  stats_.last_publish_delta = use_delta;
  std::shared_ptr<const DatabaseSnapshot> published = std::move(next);
  {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    snapshot_ = published;
  }
  stats_.last_publish_ms = timer.ElapsedMillis();
  PublishResult result;
  result.snapshot = std::move(published);
  result.published = true;
  result.delta = use_delta;
  result.publish_ms = stats_.last_publish_ms;
  return result;
}

void UpdatableDatabase::PublishThresholdLocked() {
  if (options_.publish_threshold > 0 &&
      pending_mutations_ >= options_.publish_threshold) {
    PublishLocked();
  }
}

std::shared_ptr<const DatabaseSnapshot> UpdatableDatabase::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_;
}

std::shared_ptr<const DatabaseSnapshot> UpdatableDatabase::Publish() {
  std::lock_guard<std::mutex> lock(mutex_);
  return PublishLocked().snapshot;
}

PublishResult UpdatableDatabase::PublishIfDirty() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (pending_mutations_ == 0) {
    PublishResult result;
    result.snapshot = snapshot_;  // reassignments hold mutex_, safe
    return result;
  }
  return PublishLocked();
}

bool UpdatableDatabase::dirty() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_mutations_ > 0;
}

size_t UpdatableDatabase::live_objects() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slots_.size() - free_slots_.size();
}

size_t UpdatableDatabase::live_users() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t count = 0;
  for (const UserEntry& user : users_) {
    if (!user.slots.empty()) ++count;
  }
  return count;
}

uint64_t UpdatableDatabase::epoch() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_->epoch;
}

UpdateStats UpdatableDatabase::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void UpdatableDatabase::SeedFrom(const ObjectDatabase& db) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Walk slots in AddObject sequence order so the store replays the
    // exact insertion history of `db`.
    const std::span<const uint32_t> seq = db.insertion_order();
    std::vector<uint32_t> by_seq(db.num_objects());
    for (uint32_t slot = 0; slot < by_seq.size(); ++slot) {
      STPS_DCHECK(seq[slot] < by_seq.size());
      by_seq[seq[slot]] = slot;
    }
    const Dictionary& dict = db.dictionary();
    RawObject raw;
    for (const uint32_t slot : by_seq) {
      const STObject& o = db.object(slot);
      raw.user = db.UserName(o.user);
      raw.loc = o.loc;
      raw.time = o.time;
      raw.keywords.clear();
      for (const TokenId t : o.doc) raw.keywords.emplace_back(dict.TokenString(t));
      InsertLocked(raw);
    }
  }
  Publish();
}

}  // namespace stps
