#include "core/update.h"

#include <algorithm>
#include <utility>

#include "text/dictionary.h"
#include "text/token_set.h"

namespace stps {

UpdatableDatabase::UpdatableDatabase(UpdateOptions options)
    : options_(options) {
  // Epoch 0 is a *built* empty database, not a default-constructed one:
  // queries rely on Build()'s invariants (user_begin_ sentinel, planner
  // stats, sketch index) even when the database holds nothing yet.
  auto initial = std::make_shared<DatabaseSnapshot>();
  DatabaseBuilder builder;
  initial->db = std::move(builder).Build();
  snapshot_ = std::move(initial);
}

uint32_t UpdatableDatabase::InternUser(std::string_view key) {
  auto [it, inserted] = user_index_.try_emplace(
      std::string(key), static_cast<uint32_t>(users_.size()));
  if (inserted) {
    users_.push_back(UserEntry{std::string(key), {}});
  }
  return it->second;
}

uint32_t UpdatableDatabase::InternToken(std::string_view token) {
  auto [it, inserted] = token_index_.try_emplace(
      std::string(token), static_cast<uint32_t>(token_strings_.size()));
  if (inserted) {
    token_strings_.emplace_back(token);
  }
  return it->second;
}

void UpdatableDatabase::InsertLocked(const RawObject& object) {
  // Intern, sort, and dedup the keyword set up front (AddObject collapses
  // duplicates the same way, so publishing the normalized set builds the
  // same database as publishing the raw one).
  TokenVector tokens;
  tokens.reserve(object.keywords.size());
  for (const std::string& kw : object.keywords) {
    tokens.push_back(InternToken(kw));
  }
  NormalizeTokenSet(&tokens);

  uint32_t slot_id;
  if (!free_slots_.empty()) {
    slot_id = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot_id = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& slot = slots_[slot_id];
  slot.user = InternUser(object.user);
  slot.loc = object.loc;
  slot.time = object.time;
  slot.seq = next_seq_++;
  slot.token_begin = static_cast<uint32_t>(token_arena_.size());
  slot.token_count = static_cast<uint32_t>(tokens.size());
  slot.live = true;
  token_arena_.insert(token_arena_.end(), tokens.begin(), tokens.end());
  users_[slot.user].slots.push_back(slot_id);
  ++stats_.objects_inserted;
  ++pending_mutations_;
}

void UpdatableDatabase::InsertObject(const RawObject& object) {
  InsertObjects(std::span<const RawObject>(&object, 1));
}

void UpdatableDatabase::InsertObjects(std::span<const RawObject> objects) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const RawObject& object : objects) InsertLocked(object);
  PublishThresholdLocked();
}

bool UpdatableDatabase::DeleteUser(std::string_view user_key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = user_index_.find(std::string(user_key));
  if (it == user_index_.end()) return false;
  UserEntry& user = users_[it->second];
  if (user.slots.empty()) return false;
  for (const uint32_t slot_id : user.slots) {
    Slot& slot = slots_[slot_id];
    STPS_DCHECK(slot.live);
    slot.live = false;
    dead_tokens_ += slot.token_count;
    free_slots_.push_back(slot_id);
    ++stats_.objects_deleted;
    ++pending_mutations_;
  }
  user.slots.clear();
  ++stats_.users_deleted;
  MaybeCompactLocked();
  PublishThresholdLocked();
  return true;
}

void UpdatableDatabase::MaybeCompactLocked() {
  if (dead_tokens_ >
      options_.compact_fraction * static_cast<double>(token_arena_.size())) {
    CompactArenaLocked();
  }
  if (static_cast<double>(free_slots_.size()) >
      options_.compact_fraction * static_cast<double>(slots_.size())) {
    CompactSlotsLocked();
  }
}

void UpdatableDatabase::CompactArenaLocked() {
  // Rewrite the arena keeping only live extents. Live runs are copied in
  // slot order (the arena's order is irrelevant to publishing, which
  // walks slots); extents shrink-to-front so no slot ever overlaps the
  // region still to be copied.
  std::vector<TokenId> packed;
  packed.reserve(token_arena_.size() - dead_tokens_);
  for (Slot& slot : slots_) {
    if (!slot.live) continue;
    const uint32_t begin = static_cast<uint32_t>(packed.size());
    packed.insert(packed.end(), token_arena_.begin() + slot.token_begin,
                  token_arena_.begin() + slot.token_begin + slot.token_count);
    slot.token_begin = begin;
  }
  token_arena_ = std::move(packed);
  dead_tokens_ = 0;
  ++stats_.arena_compactions;
}

void UpdatableDatabase::CompactSlotsLocked() {
  // Drop dead slots, renumbering the live ones in place (stable, so seq
  // order within the array is preserved) and rewriting the per-user slot
  // lists to the new ids.
  std::vector<uint32_t> remap(slots_.size(), 0);
  size_t next = 0;
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[i].live) continue;
    remap[i] = static_cast<uint32_t>(next);
    if (next != i) slots_[next] = std::move(slots_[i]);
    ++next;
  }
  slots_.resize(next);
  free_slots_.clear();
  for (UserEntry& user : users_) {
    for (uint32_t& slot_id : user.slots) slot_id = remap[slot_id];
  }
  ++stats_.slot_compactions;
}

std::shared_ptr<const DatabaseSnapshot> UpdatableDatabase::PublishLocked() {
  // Surviving objects replay through DatabaseBuilder in their original
  // insertion order, which makes the published database definitionally
  // identical to a fresh build of the survivors — Build() refreshes the
  // Z-order layout, CSR arena, SoA mirrors, signatures, sketch index,
  // and PlannerStats in one pass.
  std::vector<const Slot*> live;
  live.reserve(slots_.size() - free_slots_.size());
  for (const Slot& slot : slots_) {
    if (slot.live) live.push_back(&slot);
  }
  std::sort(live.begin(), live.end(),
            [](const Slot* a, const Slot* b) { return a->seq < b->seq; });

  DatabaseBuilder builder;
  std::vector<std::string_view> keywords;
  for (const Slot* slot : live) {
    keywords.clear();
    for (uint32_t i = 0; i < slot->token_count; ++i) {
      keywords.push_back(token_strings_[token_arena_[slot->token_begin + i]]);
    }
    builder.AddObject(users_[slot->user].key, slot->loc,
                      std::span<const std::string_view>(keywords),
                      slot->time);
  }

  auto next = std::make_shared<DatabaseSnapshot>();
  // Safe without snapshot_mutex_: snapshot_ is only ever reassigned under
  // mutex_, which this thread holds.
  next->epoch = snapshot_->epoch + 1;
  next->db = std::move(builder).Build();
  pending_mutations_ = 0;
  ++stats_.publishes;
  std::shared_ptr<const DatabaseSnapshot> published = std::move(next);
  {
    std::lock_guard<std::mutex> lock(snapshot_mutex_);
    snapshot_ = published;
  }
  return published;
}

void UpdatableDatabase::PublishThresholdLocked() {
  if (options_.publish_threshold > 0 &&
      pending_mutations_ >= options_.publish_threshold) {
    PublishLocked();
  }
}

std::shared_ptr<const DatabaseSnapshot> UpdatableDatabase::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_;
}

std::shared_ptr<const DatabaseSnapshot> UpdatableDatabase::Publish() {
  std::lock_guard<std::mutex> lock(mutex_);
  return PublishLocked();
}

std::shared_ptr<const DatabaseSnapshot> UpdatableDatabase::PublishIfDirty() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (pending_mutations_ == 0) return snapshot();
  return PublishLocked();
}

bool UpdatableDatabase::dirty() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_mutations_ > 0;
}

size_t UpdatableDatabase::live_objects() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slots_.size() - free_slots_.size();
}

size_t UpdatableDatabase::live_users() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t count = 0;
  for (const UserEntry& user : users_) {
    if (!user.slots.empty()) ++count;
  }
  return count;
}

uint64_t UpdatableDatabase::epoch() const {
  std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_->epoch;
}

UpdateStats UpdatableDatabase::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void UpdatableDatabase::SeedFrom(const ObjectDatabase& db) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Walk slots in AddObject sequence order so the store replays the
    // exact insertion history of `db`.
    const std::span<const uint32_t> seq = db.insertion_order();
    std::vector<uint32_t> by_seq(db.num_objects());
    for (uint32_t slot = 0; slot < by_seq.size(); ++slot) {
      STPS_DCHECK(seq[slot] < by_seq.size());
      by_seq[seq[slot]] = slot;
    }
    const Dictionary& dict = db.dictionary();
    RawObject raw;
    for (const uint32_t slot : by_seq) {
      const STObject& o = db.object(slot);
      raw.user = db.UserName(o.user);
      raw.loc = o.loc;
      raw.time = o.time;
      raw.keywords.clear();
      for (const TokenId t : o.doc) raw.keywords.emplace_back(dict.TokenString(t));
      InsertLocked(raw);
    }
  }
  Publish();
}

}  // namespace stps
