// On-disk layout of the v3 "STPSDB03" snapshot: one relocatable,
// 64-byte-aligned arena addressed entirely by offsets, so a reader can
// mmap the file and point the in-memory columns straight at it.
//
//   HeaderV3 (112 bytes, at offset 0)
//   SectionEntry[section_count] (40 bytes each, at header.table_offset)
//   u64 table_checksum (FNV-1a over the table bytes)
//   sections, each zero-padded up to 64-byte alignment
//   u64 file_checksum (FNV-1a over bytes [0, file_size - 8))
//
// Conventions:
//  * Everything is little-endian; the format refuses to build on
//    big-endian hosts (static_assert below) rather than byte-swap.
//  * Offsets are absolute file offsets; section payloads never contain
//    pointers, only indices — the arena is position-independent.
//  * Every section's payload is a flat array of fixed-size elements
//    (ElementSize() below); entry.size == entry.count * ElementSize().
//  * The header and table carry their own checksums so an O(1) open can
//    validate them without touching section payloads; per-section and
//    whole-file checksums exist for the verifying reader. The trailing
//    whole-file checksum also covers the alignment padding, so no byte
//    of the file is outside some checksum's span.
//
// See DESIGN.md §10 for the rationale and the v1/v2 compatibility story.

#ifndef STPS_IO_FORMAT_V3_H_
#define STPS_IO_FORMAT_V3_H_

#include <bit>
#include <cstddef>
#include <cstdint>

namespace stps {

static_assert(std::endian::native == std::endian::little,
              "STPSDB03 snapshots are little-endian on disk");

inline constexpr char kMagicV3[8] = {'S', 'T', 'P', 'S', 'D', 'B', '0', '3'};
inline constexpr size_t kV3Alignment = 64;

/// Incremental FNV-1a, the same function the v2 stream uses.
inline uint64_t FnvUpdate(uint64_t hash, const void* data, size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001B3ULL;
  }
  return hash;
}
inline constexpr uint64_t kFnvSeed = 0xCBF29CE484222325ULL;

inline uint64_t Fnv(const void* data, size_t size) {
  return FnvUpdate(kFnvSeed, data, size);
}

/// True when `v` survives a cast to the 32-bit on-disk field. The v2
/// stream and the v3 CSR begin-arrays both store 32-bit counts; writers
/// must check this instead of letting static_cast truncate silently.
inline bool FitsU32(uint64_t v) { return v <= 0xFFFFFFFFull; }

/// Section identifiers. Values are stable on-disk contract; new kinds
/// append, existing values never change meaning.
enum SectionKind : uint32_t {
  kSecUserBegin = 1,        // u32 x (num_users + 1)
  kSecTokenBegin = 2,       // u32 x (num_objects + 1)
  kSecTokenData = 3,        // u32 (TokenId) x total_tokens
  kSecXs = 4,               // f64 x num_objects
  kSecYs = 5,               // f64 x num_objects
  kSecTimes = 6,            // f64 x num_objects
  kSecUsers = 7,            // u32 (UserId) x num_objects
  kSecSigs = 8,             // u64 (TokenSignature) x num_objects
  kSecInsertionOrder = 9,   // u32 x num_objects
  kSecUserNameOffsets = 10,  // u64 x (num_users + 1)
  kSecUserNameBlob = 11,     // char x user_name_offsets.back()
  kSecDictOffsets = 12,      // u64 x (num_dict_tokens + 1)
  kSecDictBlob = 13,         // char x dict_offsets.back()
  kSecDictFreq = 14,         // u64 x num_dict_tokens
  kSecPlannerStats = 15,     // 65 x u64/f64 fields (520 bytes); flags bit 0
  kSecSketchMeta = 16,       // SketchMetaV3 (88 bytes); flags bit 1
  kSecSketchMinhash = 17,    // u64 x (num_users * num_hashes)
  kSecSketchOccCells = 18,   // u32, CSR data
  kSecSketchOccBegin = 19,   // u32 x (num_users + 1)
  kSecSketchMasks = 20,      // u64 x num_users
  kSecSketchUserKeys = 21,   // u64, CSR data
  kSecSketchUserKeyBegin = 22,  // u32 x (num_users + 1)
  kSecSketchPostKeys = 23,      // u64
  kSecSketchPostBegin = 24,     // u32 x (post_keys + 1)
  kSecSketchPostUsers = 25,     // u32 (UserId)
  kSecSketchRowSalts = 26,      // u64 x num_hashes
  kSecMaxKind = 26,
};

/// Fixed-size file header. memcpy'd to/from the mapped bytes (every
/// field is naturally aligned; the struct has no padding).
struct HeaderV3 {
  char magic[8];        // kMagicV3
  uint64_t file_size;   // exact file size in bytes, checksum included
  uint64_t flags;       // bit 0: planner stats, bit 1: sketch layer
  uint64_t num_users;
  uint64_t num_objects;
  uint64_t num_dict_tokens;
  uint64_t total_tokens;
  double min_x, min_y, max_x, max_y;  // Rect bounds (Empty() sentinel ok)
  uint64_t section_count;
  uint64_t table_offset;      // == sizeof(HeaderV3)
  uint64_t header_checksum;   // FNV-1a over the preceding 104 bytes
};
static_assert(sizeof(HeaderV3) == 112);

inline constexpr uint64_t kFlagPlannerStats = 1ull << 0;
inline constexpr uint64_t kFlagSketches = 1ull << 1;

/// One section-table row.
struct SectionEntry {
  uint32_t kind;      // SectionKind
  uint32_t reserved;  // zero
  uint64_t offset;    // absolute, kV3Alignment-aligned
  uint64_t size;      // payload bytes == count * ElementSize(kind)
  uint64_t count;     // element count
  uint64_t checksum;  // FNV-1a over the payload bytes
};
static_assert(sizeof(SectionEntry) == 40);

/// Fixed-size scalar block of the sketch layer (kSecSketchMeta).
struct SketchMetaV3 {
  uint64_t num_hashes;
  uint64_t num_bands;
  uint64_t index_grid_bits;
  uint64_t occupancy_grid_bits;
  uint64_t seed;
  uint64_t band_salt;
  uint64_t num_users;
  double min_x, min_y, width_x, width_y;
};
static_assert(sizeof(SketchMetaV3) == 88);

inline constexpr size_t kPlannerStatsBlockSize = 65 * 8;  // 520 bytes

/// Bytes per element of a section's payload array. Blob/meta sections
/// are byte arrays (element size 1 / the block itself).
inline size_t ElementSize(uint32_t kind) {
  switch (kind) {
    case kSecUserBegin:
    case kSecTokenBegin:
    case kSecTokenData:
    case kSecUsers:
    case kSecInsertionOrder:
    case kSecSketchOccCells:
    case kSecSketchOccBegin:
    case kSecSketchUserKeyBegin:
    case kSecSketchPostBegin:
    case kSecSketchPostUsers:
      return 4;
    case kSecXs:
    case kSecYs:
    case kSecTimes:
    case kSecSigs:
    case kSecUserNameOffsets:
    case kSecDictOffsets:
    case kSecDictFreq:
    case kSecSketchMinhash:
    case kSecSketchMasks:
    case kSecSketchUserKeys:
    case kSecSketchPostKeys:
    case kSecSketchRowSalts:
      return 8;
    case kSecUserNameBlob:
    case kSecDictBlob:
      return 1;
    case kSecPlannerStats:
      return kPlannerStatsBlockSize;
    case kSecSketchMeta:
      return sizeof(SketchMetaV3);
    default:
      return 0;  // unknown kind
  }
}

}  // namespace stps

#endif  // STPS_IO_FORMAT_V3_H_
