// TSV persistence for spatio-textual object databases.
//
// Format, one object per line:
//   <user-key> \t <x> \t <y> \t <kw1,kw2,...>
// Lines starting with '#' are comments. This is the interchange format
// for real crawls (geotagged tweets / photos) exported from other tools.

#ifndef STPS_IO_TSV_H_
#define STPS_IO_TSV_H_

#include <string>

#include "common/status.h"
#include "core/database.h"

namespace stps {

/// Writes `db` to `path`. Overwrites existing files.
Status WriteTsv(const ObjectDatabase& db, const std::string& path);

/// Reads a database from `path`.
Result<ObjectDatabase> ReadTsv(const std::string& path);

}  // namespace stps

#endif  // STPS_IO_TSV_H_
