// STPSDB03 arena writer and loader (see io/format_v3.h for the byte
// layout, io/binary.h for the trust-vs-verify loading model).

#include "io/snapshot_v3.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "io/binary.h"
#include "io/format_v3.h"
#include "io/stats_codec.h"
#include "planner/planner_stats.h"
#include "sketch/sketch.h"

namespace stps {

namespace {

uint64_t RoundUp(uint64_t v, uint64_t align) {
  return (v + align - 1) / align * align;
}

// Sequential file writer tracking position and the running whole-file
// FNV; deferred write errors (ENOSPC) fold into ok() at Finish.
class StreamOut {
 public:
  explicit StreamOut(const std::string& path)
      : out_(path, std::ios::binary | std::ios::trunc) {}

  bool ok() const { return static_cast<bool>(out_); }

  void Write(const void* p, size_t n) {
    out_.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
    fnv_ = FnvUpdate(fnv_, p, n);
    pos_ += n;
  }

  void PadTo(uint64_t target) {
    static constexpr char kZeros[kV3Alignment] = {};
    while (pos_ < target) {
      const size_t chunk = static_cast<size_t>(
          std::min<uint64_t>(sizeof(kZeros), target - pos_));
      Write(kZeros, chunk);
    }
  }

  uint64_t pos() const { return pos_; }
  uint64_t fnv() const { return fnv_; }

  // Writes the trailing checksum (not part of the hashed range), then
  // flushes and closes so ok() reflects deferred errors.
  void Finish(uint64_t trailing) {
    out_.write(reinterpret_cast<const char*>(&trailing), sizeof(trailing));
    out_.flush();
    if (out_.is_open()) out_.close();
  }

 private:
  std::ofstream out_;
  uint64_t fnv_ = kFnvSeed;
  uint64_t pos_ = 0;
};

// In-memory field writer/reader for the fixed-size planner-stats block.
class MemWriter {
 public:
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  const std::string& bytes() const { return buf_; }

 private:
  void Raw(const void* p, size_t n) {
    buf_.append(static_cast<const char*>(p), n);
  }
  std::string buf_;
};

class MemReader {
 public:
  MemReader(const char* p, size_t n) : p_(p), end_(p + n) {}
  bool U64(uint64_t* v) { return Raw(v, sizeof(*v)); }
  bool F64(double* v) { return Raw(v, sizeof(*v)); }

 private:
  bool Raw(void* d, size_t n) {
    if (static_cast<size_t>(end_ - p_) < n) return false;
    std::memcpy(d, p_, n);
    p_ += n;
    return true;
  }
  const char* p_;
  const char* end_;
};

// Parsed + validated header and section table (the O(1) open checks).
struct ParsedArena {
  HeaderV3 header;
  SectionEntry sec[kSecMaxKind + 1] = {};
  bool present[kSecMaxKind + 1] = {};
};

Status ParseArena(const char* data, size_t size, ParsedArena* out) {
  if (size < sizeof(HeaderV3) + 2 * sizeof(uint64_t)) {
    return Status::Corruption("file too small for v3 snapshot");
  }
  HeaderV3& h = out->header;
  std::memcpy(&h, data, sizeof(h));
  if (std::memcmp(h.magic, kMagicV3, sizeof(kMagicV3)) != 0) {
    return Status::Corruption("bad magic: not a v3 snapshot");
  }
  if (Fnv(data, offsetof(HeaderV3, header_checksum)) != h.header_checksum) {
    return Status::Corruption("header checksum mismatch");
  }
  if (h.file_size != size) {
    return Status::Corruption("file size disagrees with header");
  }
  if (h.table_offset != sizeof(HeaderV3)) {
    return Status::Corruption("bad section table offset");
  }
  if (h.section_count == 0 || h.section_count > kSecMaxKind) {
    return Status::Corruption("bad section count");
  }
  // Every count costs >= 4 bytes per element somewhere in the file, so a
  // header claiming more elements than bytes is corrupt — checked before
  // any count-sized allocation or arithmetic (overflow guard).
  if (h.num_users > h.file_size || h.num_objects > h.file_size ||
      h.num_dict_tokens > h.file_size || h.total_tokens > h.file_size) {
    return Status::Corruption("implausible counts in header");
  }
  const uint64_t table_bytes = h.section_count * sizeof(SectionEntry);
  const uint64_t body_begin = h.table_offset + table_bytes + sizeof(uint64_t);
  if (body_begin + sizeof(uint64_t) > size) {
    return Status::Corruption("section table exceeds file");
  }
  uint64_t stored_table_sum = 0;
  std::memcpy(&stored_table_sum, data + h.table_offset + table_bytes,
              sizeof(stored_table_sum));
  if (Fnv(data + h.table_offset, table_bytes) != stored_table_sum) {
    return Status::Corruption("section table checksum mismatch");
  }
  for (uint64_t i = 0; i < h.section_count; ++i) {
    SectionEntry e;
    std::memcpy(&e, data + h.table_offset + i * sizeof(SectionEntry),
                sizeof(e));
    const size_t elem = ElementSize(e.kind);
    if (elem == 0) return Status::Corruption("unknown section kind");
    if (e.reserved != 0) return Status::Corruption("bad section entry");
    if (out->present[e.kind]) return Status::Corruption("duplicate section");
    if (e.count > h.file_size) {
      return Status::Corruption("implausible section count");
    }
    if (e.size != e.count * elem) {
      return Status::Corruption("section size disagrees with count");
    }
    if (e.offset % kV3Alignment != 0 || e.offset < body_begin ||
        e.offset + e.size > h.file_size - sizeof(uint64_t) ||
        e.offset + e.size < e.offset) {
      return Status::Corruption("section out of bounds");
    }
    out->sec[e.kind] = e;
    out->present[e.kind] = true;
  }

  // Presence and fixed counts. Variable-count sections (blobs, sketch
  // CSR data) are cross-checked against payload contents at Load time.
  const auto need = [&](uint32_t kind, uint64_t count) -> bool {
    return out->present[kind] && out->sec[kind].count == count;
  };
  const bool core_ok =
      need(kSecUserBegin, h.num_users + 1) &&
      need(kSecTokenBegin, h.num_objects + 1) &&
      need(kSecTokenData, h.total_tokens) && need(kSecXs, h.num_objects) &&
      need(kSecYs, h.num_objects) && need(kSecTimes, h.num_objects) &&
      need(kSecUsers, h.num_objects) && need(kSecSigs, h.num_objects) &&
      need(kSecInsertionOrder, h.num_objects) &&
      need(kSecUserNameOffsets, h.num_users + 1) &&
      out->present[kSecUserNameBlob] &&
      need(kSecDictOffsets, h.num_dict_tokens + 1) &&
      out->present[kSecDictBlob] && need(kSecDictFreq, h.num_dict_tokens);
  if (!core_ok) return Status::Corruption("missing or missized section");
  const bool want_stats = (h.flags & kFlagPlannerStats) != 0;
  const bool want_sketch = (h.flags & kFlagSketches) != 0;
  if (want_stats != need(kSecPlannerStats, 1)) {
    return Status::Corruption("planner-stats section disagrees with flags");
  }
  for (uint32_t kind = kSecSketchMeta; kind <= kSecSketchRowSalts; ++kind) {
    if (out->present[kind] != want_sketch) {
      return Status::Corruption("sketch sections disagree with flags");
    }
  }
  const uint64_t expected_sections = 14 + (want_stats ? 1 : 0) +
                                     (want_sketch ? 11 : 0);
  if (h.section_count != expected_sections) {
    return Status::Corruption("unexpected section count");
  }
  return Status::OK();
}

template <typename T>
std::span<const T> SecSpan(const char* data, const SectionEntry& e) {
  return {reinterpret_cast<const T*>(data + e.offset),
          static_cast<size_t>(e.count)};
}

// begin[0] == 0, nondecreasing, begin.back() == total. The check that
// keeps every CSR access in bounds, in trust mode too.
bool ValidBegins(std::span<const uint32_t> begin, uint64_t total) {
  if (begin.empty() || begin.front() != 0) return false;
  for (size_t i = 1; i < begin.size(); ++i) {
    if (begin[i] < begin[i - 1]) return false;
  }
  return begin.back() == total;
}

bool ValidOffsets(std::span<const uint64_t> offsets, uint64_t total) {
  if (offsets.empty() || offsets.front() != 0) return false;
  for (size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) return false;
  }
  return offsets.back() == total;
}

template <typename T>
bool SpanEq(std::span<const T> a, std::span<const T> b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

}  // namespace

Status SnapshotLoader::Write(const ObjectDatabase& db,
                             const std::string& path) {
  const size_t n = db.num_objects();
  const size_t nu = db.num_users();
  // The CSR begin-arrays store 32-bit offsets: refuse to write a database
  // they cannot index instead of truncating (mirrors the v2 check).
  if (!FitsU32(n) || !FitsU32(db.total_tokens())) {
    return Status::InvalidArgument(
        "database too large for 32-bit CSR offsets");
  }

  // Side arrays the in-memory layout does not keep flat.
  std::vector<uint32_t> begin_fallback{0};
  std::span<const uint32_t> user_begin = db.user_begin_.span();
  if (user_begin.empty()) user_begin = begin_fallback;
  std::span<const uint32_t> token_begin = db.token_begin_.span();
  if (token_begin.empty()) token_begin = begin_fallback;

  std::vector<double> times(n);
  for (size_t i = 0; i < n; ++i) times[i] = db.objects_[i].time;

  std::vector<uint64_t> name_offsets(nu + 1, 0);
  std::string name_blob;
  for (UserId u = 0; u < nu; ++u) {
    name_blob.append(db.UserName(u));
    name_offsets[u + 1] = name_blob.size();
  }

  const Dictionary& dict = db.dictionary();
  const size_t nd = dict.size();
  std::vector<uint64_t> dict_offsets(nd + 1, 0);
  std::vector<uint64_t> dict_freq(nd, 0);
  std::string dict_blob;
  for (TokenId t = 0; t < nd; ++t) {
    dict_blob.append(dict.TokenString(t));
    dict_offsets[t + 1] = dict_blob.size();
    dict_freq[t] = dict.Frequency(t);
  }

  MemWriter stats_block;
  if (db.has_planner_stats()) {
    WriteStats(&stats_block, db.planner_stats());
    STPS_CHECK(stats_block.bytes().size() == kPlannerStatsBlockSize);
  }

  SketchMetaV3 meta = {};
  SketchParts parts;
  const bool have_sketch = db.has_sketches();
  if (have_sketch) {
    parts = db.sketches().parts();
    meta.num_hashes = parts.params.num_hashes;
    meta.num_bands = parts.params.num_bands;
    meta.index_grid_bits = parts.params.index_grid_bits;
    meta.occupancy_grid_bits = parts.params.occupancy_grid_bits;
    meta.seed = parts.params.seed;
    meta.band_salt = parts.band_salt;
    meta.num_users = parts.num_users;
    meta.min_x = parts.min_x;
    meta.min_y = parts.min_y;
    meta.width_x = parts.width_x;
    meta.width_y = parts.width_y;
  }

  struct Payload {
    uint32_t kind;
    const void* data;
    uint64_t count;
  };
  std::vector<Payload> payloads;
  const auto add = [&payloads](uint32_t kind, const void* data,
                               uint64_t count) {
    payloads.push_back({kind, data, count});
  };
  add(kSecUserBegin, user_begin.data(), user_begin.size());
  add(kSecTokenBegin, token_begin.data(), token_begin.size());
  add(kSecTokenData, db.token_data_.data(), db.token_data_.size());
  add(kSecXs, db.xs_.data(), n);
  add(kSecYs, db.ys_.data(), n);
  add(kSecTimes, times.data(), n);
  add(kSecUsers, db.users_.data(), n);
  add(kSecSigs, db.sigs_.data(), n);
  add(kSecInsertionOrder, db.insertion_order_.data(), n);
  add(kSecUserNameOffsets, name_offsets.data(), name_offsets.size());
  add(kSecUserNameBlob, name_blob.data(), name_blob.size());
  add(kSecDictOffsets, dict_offsets.data(), dict_offsets.size());
  add(kSecDictBlob, dict_blob.data(), dict_blob.size());
  add(kSecDictFreq, dict_freq.data(), dict_freq.size());
  if (db.has_planner_stats()) {
    add(kSecPlannerStats, stats_block.bytes().data(), 1);
  }
  if (have_sketch) {
    add(kSecSketchMeta, &meta, 1);
    add(kSecSketchMinhash, parts.minhash.data(), parts.minhash.size());
    add(kSecSketchOccCells, parts.occ_cells.data(), parts.occ_cells.size());
    add(kSecSketchOccBegin, parts.occ_begin.data(), parts.occ_begin.size());
    add(kSecSketchMasks, parts.masks.data(), parts.masks.size());
    add(kSecSketchUserKeys, parts.user_keys.data(), parts.user_keys.size());
    add(kSecSketchUserKeyBegin, parts.user_key_begin.data(),
        parts.user_key_begin.size());
    add(kSecSketchPostKeys, parts.post_keys.data(), parts.post_keys.size());
    add(kSecSketchPostBegin, parts.post_begin.data(),
        parts.post_begin.size());
    add(kSecSketchPostUsers, parts.post_users.data(),
        parts.post_users.size());
    add(kSecSketchRowSalts, parts.row_salts.data(), parts.row_salts.size());
  }

  // Precompute the layout, then stream it out in one pass.
  const uint64_t table_offset = sizeof(HeaderV3);
  const uint64_t table_bytes = payloads.size() * sizeof(SectionEntry);
  uint64_t cursor = table_offset + table_bytes + sizeof(uint64_t);
  std::vector<SectionEntry> entries;
  entries.reserve(payloads.size());
  for (const Payload& p : payloads) {
    cursor = RoundUp(cursor, kV3Alignment);
    SectionEntry e = {};
    e.kind = p.kind;
    e.offset = cursor;
    e.count = p.count;
    e.size = p.count * ElementSize(p.kind);
    e.checksum = Fnv(p.data, static_cast<size_t>(e.size));
    entries.push_back(e);
    cursor += e.size;
  }
  const uint64_t file_size = cursor + sizeof(uint64_t);

  HeaderV3 header = {};
  std::memcpy(header.magic, kMagicV3, sizeof(kMagicV3));
  header.file_size = file_size;
  header.flags = (db.has_planner_stats() ? kFlagPlannerStats : 0) |
                 (have_sketch ? kFlagSketches : 0);
  header.num_users = nu;
  header.num_objects = n;
  header.num_dict_tokens = nd;
  header.total_tokens = db.total_tokens();
  header.min_x = db.bounds_.min_x;
  header.min_y = db.bounds_.min_y;
  header.max_x = db.bounds_.max_x;
  header.max_y = db.bounds_.max_y;
  header.section_count = payloads.size();
  header.table_offset = table_offset;
  header.header_checksum = Fnv(&header, offsetof(HeaderV3, header_checksum));

  StreamOut out(path);
  if (!out.ok()) {
    return Status::IOError("cannot open for writing: " + path);
  }
  out.Write(&header, sizeof(header));
  out.Write(entries.data(), static_cast<size_t>(table_bytes));
  const uint64_t table_sum =
      Fnv(entries.data(), static_cast<size_t>(table_bytes));
  out.Write(&table_sum, sizeof(table_sum));
  for (size_t i = 0; i < payloads.size(); ++i) {
    out.PadTo(entries[i].offset);
    out.Write(payloads[i].data, static_cast<size_t>(entries[i].size));
  }
  STPS_CHECK(out.pos() == file_size - sizeof(uint64_t));
  out.Finish(out.fnv());
  if (!out.ok()) {
    return Status::IOError("write failed: " + path);
  }
  return Status::OK();
}

Status SnapshotLoader::CheckHeader(const char* data, size_t size) {
  ParsedArena parsed;
  return ParseArena(data, size, &parsed);
}

Result<ObjectDatabase> SnapshotLoader::Load(std::shared_ptr<const void> owner,
                                            const char* data, size_t size,
                                            bool verify) {
  ParsedArena a;
  if (Status s = ParseArena(data, size, &a); !s.ok()) return s;
  const HeaderV3& h = a.header;
  const size_t n = static_cast<size_t>(h.num_objects);
  const size_t nu = static_cast<size_t>(h.num_users);
  const size_t nd = static_cast<size_t>(h.num_dict_tokens);

  if (verify) {
    for (uint32_t kind = 1; kind <= kSecMaxKind; ++kind) {
      if (!a.present[kind]) continue;
      const SectionEntry& e = a.sec[kind];
      if (Fnv(data + e.offset, static_cast<size_t>(e.size)) != e.checksum) {
        return Status::Corruption("section checksum mismatch");
      }
    }
    uint64_t trailing = 0;
    std::memcpy(&trailing, data + size - sizeof(trailing), sizeof(trailing));
    if (Fnv(data, size - sizeof(trailing)) != trailing) {
      return Status::Corruption("file checksum mismatch");
    }
  }

  const auto user_begin = SecSpan<uint32_t>(data, a.sec[kSecUserBegin]);
  const auto token_begin = SecSpan<uint32_t>(data, a.sec[kSecTokenBegin]);
  const auto token_data = SecSpan<TokenId>(data, a.sec[kSecTokenData]);
  const auto xs = SecSpan<double>(data, a.sec[kSecXs]);
  const auto ys = SecSpan<double>(data, a.sec[kSecYs]);
  const auto times = SecSpan<double>(data, a.sec[kSecTimes]);
  const auto users = SecSpan<UserId>(data, a.sec[kSecUsers]);
  const auto sigs = SecSpan<TokenSignature>(data, a.sec[kSecSigs]);
  const auto order = SecSpan<uint32_t>(data, a.sec[kSecInsertionOrder]);
  const auto name_offsets =
      SecSpan<uint64_t>(data, a.sec[kSecUserNameOffsets]);
  const auto name_blob = SecSpan<char>(data, a.sec[kSecUserNameBlob]);
  const auto dict_offsets = SecSpan<uint64_t>(data, a.sec[kSecDictOffsets]);
  const auto dict_blob = SecSpan<char>(data, a.sec[kSecDictBlob]);
  const auto dict_freq = SecSpan<uint64_t>(data, a.sec[kSecDictFreq]);

  // Structural validation: everything a later accessor indexes with must
  // be proven in bounds here, in trust mode too (O(objects + users);
  // token-scale payloads stay untouched).
  if (!ValidBegins(user_begin, h.num_objects)) {
    return Status::Corruption("bad user CSR layout");
  }
  if (!ValidBegins(token_begin, h.total_tokens)) {
    return Status::Corruption("bad token CSR layout");
  }
  if (!ValidOffsets(name_offsets, a.sec[kSecUserNameBlob].count)) {
    return Status::Corruption("bad user-name offsets");
  }
  if (!ValidOffsets(dict_offsets, a.sec[kSecDictBlob].count)) {
    return Status::Corruption("bad dictionary offsets");
  }
  {
    std::vector<bool> seen(n, false);
    for (const uint32_t src : order) {
      if (src >= n || seen[src]) {
        return Status::Corruption("insertion order is not a permutation");
      }
      seen[src] = true;
    }
  }

  ObjectDatabase db;
  db.arena_ = std::move(owner);
  db.user_begin_ = Column<uint32_t>::Borrow(user_begin);
  db.token_begin_ = Column<uint32_t>::Borrow(token_begin);
  db.token_data_ = Column<TokenId>::Borrow(token_data);
  db.xs_ = Column<double>::Borrow(xs);
  db.ys_ = Column<double>::Borrow(ys);
  db.users_ = Column<UserId>::Borrow(users);
  db.sigs_ = Column<TokenSignature>::Borrow(sigs);
  db.insertion_order_ = Column<uint32_t>::Borrow(order);
  db.user_names_ = StringTable::Borrow(name_offsets, name_blob);
  db.dictionary_ = Dictionary::Borrowed(dict_offsets, dict_blob, dict_freq);
  db.bounds_ = Rect{h.min_x, h.min_y, h.max_x, h.max_y};

  // Materialize the AoS object headers (the only O(objects) allocation
  // of a mapped load). Trust mode copies the stored signatures; verify
  // mode recomputes them from the token arena and compares.
  db.objects_.resize(n);
  for (UserId u = 0; u < nu; ++u) {
    for (uint32_t slot = user_begin[u]; slot < user_begin[u + 1]; ++slot) {
      if (users[slot] != u) {
        return Status::Corruption("objects not grouped by user");
      }
      STObject& o = db.objects_[slot];
      o.id = slot;
      o.user = u;
      o.loc = Point{xs[slot], ys[slot]};
      o.time = times[slot];
      const std::span<const TokenId> doc{
          token_data.data() + token_begin[slot],
          token_begin[slot + 1] - token_begin[slot]};
      if (verify) {
        for (size_t k = 0; k < doc.size(); ++k) {
          if (doc[k] >= nd || (k > 0 && doc[k] <= doc[k - 1])) {
            return Status::Corruption("token set not canonical");
          }
        }
        o.set_doc(doc);
        if (o.sig != sigs[slot]) {
          return Status::Corruption("signature mismatch");
        }
      } else {
        o.doc = doc;
        o.sig = sigs[slot];
      }
    }
  }

  if ((h.flags & kFlagPlannerStats) != 0) {
    MemReader reader(data + a.sec[kSecPlannerStats].offset,
                     kPlannerStatsBlockSize);
    PlannerStats stats;
    if (!ReadStats(&reader, &stats)) {
      return Status::Corruption("bad planner-stats block");
    }
    db.planner_stats_ = std::make_shared<const PlannerStats>(stats);
  }

  SketchParams sketch_params;
  if ((h.flags & kFlagSketches) != 0) {
    SketchMetaV3 meta;
    std::memcpy(&meta, data + a.sec[kSecSketchMeta].offset, sizeof(meta));
    // The borrowed UserSketchIndex ctor skips the building ctor's CHECKs,
    // so enforce the same parameter envelope (plus count consistency)
    // here as Corruption instead of aborting later.
    if (meta.num_users != h.num_users || meta.num_hashes == 0 ||
        !FitsU32(meta.num_hashes) || meta.num_bands == 0 ||
        !FitsU32(meta.num_bands) || meta.index_grid_bits < 1 ||
        meta.index_grid_bits > 15 || meta.occupancy_grid_bits < 3 ||
        meta.occupancy_grid_bits > 15) {
      return Status::Corruption("bad sketch parameters");
    }
    const auto minhash = SecSpan<uint64_t>(data, a.sec[kSecSketchMinhash]);
    const auto occ_cells =
        SecSpan<uint32_t>(data, a.sec[kSecSketchOccCells]);
    const auto occ_begin =
        SecSpan<uint32_t>(data, a.sec[kSecSketchOccBegin]);
    const auto masks = SecSpan<uint64_t>(data, a.sec[kSecSketchMasks]);
    const auto user_keys =
        SecSpan<uint64_t>(data, a.sec[kSecSketchUserKeys]);
    const auto user_key_begin =
        SecSpan<uint32_t>(data, a.sec[kSecSketchUserKeyBegin]);
    const auto post_keys =
        SecSpan<uint64_t>(data, a.sec[kSecSketchPostKeys]);
    const auto post_begin =
        SecSpan<uint32_t>(data, a.sec[kSecSketchPostBegin]);
    const auto post_users = SecSpan<UserId>(data, a.sec[kSecSketchPostUsers]);
    const auto row_salts =
        SecSpan<uint64_t>(data, a.sec[kSecSketchRowSalts]);
    if (minhash.size() != nu * meta.num_hashes ||
        row_salts.size() != meta.num_hashes || masks.size() != nu ||
        occ_begin.size() != nu + 1 || user_key_begin.size() != nu + 1 ||
        post_begin.size() != post_keys.size() + 1) {
      return Status::Corruption("missized sketch section");
    }
    if (!ValidBegins(occ_begin, occ_cells.size()) ||
        !ValidBegins(user_key_begin, user_keys.size()) ||
        !ValidBegins(post_begin, post_users.size())) {
      return Status::Corruption("bad sketch CSR layout");
    }
    SketchParts parts;
    parts.params.num_hashes = static_cast<uint32_t>(meta.num_hashes);
    parts.params.num_bands = static_cast<uint32_t>(meta.num_bands);
    parts.params.index_grid_bits =
        static_cast<uint32_t>(meta.index_grid_bits);
    parts.params.occupancy_grid_bits =
        static_cast<uint32_t>(meta.occupancy_grid_bits);
    parts.params.seed = meta.seed;
    parts.num_users = meta.num_users;
    parts.band_salt = meta.band_salt;
    parts.min_x = meta.min_x;
    parts.min_y = meta.min_y;
    parts.width_x = meta.width_x;
    parts.width_y = meta.width_y;
    parts.minhash = minhash;
    parts.occ_cells = occ_cells;
    parts.occ_begin = occ_begin;
    parts.masks = masks;
    parts.user_keys = user_keys;
    parts.user_key_begin = user_key_begin;
    parts.post_keys = post_keys;
    parts.post_begin = post_begin;
    parts.post_users = post_users;
    parts.row_salts = row_salts;
    sketch_params = parts.params;
    db.sketches_ = std::make_shared<const UserSketchIndex>(parts);
  }

  if (verify) {
    // Structural cross-checks: rebuild what the writer derived and
    // compare. Agreement proves the payload decodes to the database the
    // writer saw — the same discipline as the v2 planner-stats check.
    if (db.has_planner_stats() &&
        !(ComputePlannerStats(db) == db.planner_stats())) {
      return Status::Corruption(
          "planner stats disagree with loaded database");
    }
    if (db.has_sketches()) {
      const UserSketchIndex rebuilt(db, sketch_params);
      const SketchParts got = db.sketches().parts();
      const SketchParts want = rebuilt.parts();
      const bool same =
          got.num_users == want.num_users &&
          got.band_salt == want.band_salt && got.min_x == want.min_x &&
          got.min_y == want.min_y && got.width_x == want.width_x &&
          got.width_y == want.width_y && SpanEq(got.minhash, want.minhash) &&
          SpanEq(got.occ_cells, want.occ_cells) &&
          SpanEq(got.occ_begin, want.occ_begin) &&
          SpanEq(got.masks, want.masks) &&
          SpanEq(got.user_keys, want.user_keys) &&
          SpanEq(got.user_key_begin, want.user_key_begin) &&
          SpanEq(got.post_keys, want.post_keys) &&
          SpanEq(got.post_begin, want.post_begin) &&
          SpanEq(got.post_users, want.post_users) &&
          SpanEq(got.row_salts, want.row_salts);
      if (!same) {
        return Status::Corruption(
            "sketch layer disagrees with loaded database");
      }
    }
    // Dictionary invariants the id order depends on: ascending document
    // frequency, ties strictly lexicographic (also rules out duplicate
    // strings). User names must be unique for FindUser to be total.
    for (TokenId t = 1; t < nd; ++t) {
      if (dict_freq[t - 1] > dict_freq[t] ||
          (dict_freq[t - 1] == dict_freq[t] &&
           db.dictionary().TokenString(t - 1) >=
               db.dictionary().TokenString(t))) {
        return Status::Corruption("dictionary order violated");
      }
    }
    std::vector<std::string_view> names(nu);
    for (UserId u = 0; u < nu; ++u) names[u] = db.UserName(u);
    std::sort(names.begin(), names.end());
    if (std::adjacent_find(names.begin(), names.end()) != names.end()) {
      return Status::Corruption("duplicate user name");
    }
  }
  return db;
}

Result<MappedSnapshot> MappedSnapshot::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("cannot open for reading: " + path);
  }
  struct stat st = {};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Status::IOError("cannot stat: " + path);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size < sizeof(HeaderV3) + 2 * sizeof(uint64_t)) {
    ::close(fd);
    return Status::Corruption("file too small for v3 snapshot");
  }
  void* mem = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (mem == MAP_FAILED) {
    return Status::IOError("mmap failed: " + path);
  }
  std::shared_ptr<const void> region(
      mem, [size](const void* p) { ::munmap(const_cast<void*>(p), size); });
  const char* data = static_cast<const char*>(mem);
  if (Status s = SnapshotLoader::CheckHeader(data, size); !s.ok()) return s;
  MappedSnapshot snapshot;
  snapshot.region_ = std::move(region);
  snapshot.data_ = data;
  snapshot.size_ = size;
  return snapshot;
}

Result<ObjectDatabase> MappedSnapshot::Load() const {
  if (data_ == nullptr) {
    return Status::InvalidArgument("snapshot not open");
  }
  return SnapshotLoader::Load(region_, data_, size_, /*verify=*/false);
}

Result<ObjectDatabase> MappedSnapshot::LoadVerified() const {
  if (data_ == nullptr) {
    return Status::InvalidArgument("snapshot not open");
  }
  return SnapshotLoader::Load(region_, data_, size_, /*verify=*/true);
}

Result<ObjectDatabase> ReadBinaryMapped(const std::string& path) {
  Result<MappedSnapshot> snapshot = MappedSnapshot::Open(path);
  if (!snapshot.ok()) return snapshot.status();
  return snapshot.value().Load();
}

}  // namespace stps
