#include "io/binary.h"

#include <cstring>
#include <fstream>
#include <vector>

#include "planner/planner_stats.h"

namespace stps {

namespace {

constexpr char kMagic[8] = {'S', 'T', 'P', 'S', 'D', 'B', '0', '2'};
// Legacy snapshots without the planner-stats block; still readable.
constexpr char kMagicV1[8] = {'S', 'T', 'P', 'S', 'D', 'B', '0', '1'};

// Incremental FNV-1a over the serialized byte stream.
class Checksum {
 public:
  void Update(const void* data, size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < size; ++i) {
      hash_ ^= bytes[i];
      hash_ *= 0x100000001B3ULL;
    }
  }
  uint64_t value() const { return hash_; }

 private:
  uint64_t hash_ = 0xCBF29CE484222325ULL;
};

class Writer {
 public:
  explicit Writer(const std::string& path)
      : out_(path, std::ios::binary | std::ios::trunc) {}

  bool ok() const { return static_cast<bool>(out_); }

  void Raw(const void* data, size_t size) {
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(size));
    checksum_.Update(data, size);
  }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }
  // Writes the trailing checksum, then flushes and closes, folding any
  // deferred write error (ENOSPC surfacing at flush/close time) into the
  // stream state so ok() reflects it. A Status is only as good as this
  // check: without it a full disk still returned OkStatus.
  void Finish() {
    const uint64_t sum = checksum_.value();
    out_.write(reinterpret_cast<const char*>(&sum), sizeof(sum));
    out_.flush();
    if (out_.is_open()) out_.close();  // close() sets failbit on failure
  }

 private:
  std::ofstream out_;
  Checksum checksum_;
};

class Reader {
 public:
  explicit Reader(const std::string& path)
      : in_(path, std::ios::binary) {}

  bool ok() const { return static_cast<bool>(in_) && !failed_; }
  bool failed() const { return failed_; }

  bool Raw(void* data, size_t size) {
    in_.read(static_cast<char*>(data), static_cast<std::streamsize>(size));
    if (static_cast<size_t>(in_.gcount()) != size) {
      failed_ = true;
      return false;
    }
    checksum_.Update(data, size);
    return true;
  }
  bool U32(uint32_t* v) { return Raw(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Raw(v, sizeof(*v)); }
  bool F64(double* v) { return Raw(v, sizeof(*v)); }
  bool Str(std::string* s, uint32_t max_len = 1 << 20) {
    uint32_t len = 0;
    if (!U32(&len)) return false;
    if (len > max_len) {
      failed_ = true;
      return false;
    }
    s->resize(len);
    return len == 0 || Raw(s->data(), len);
  }
  // Reads the trailing checksum (not folded into the running hash) and
  // compares it with the accumulated value.
  bool VerifyChecksum() {
    const uint64_t expected = checksum_.value();
    uint64_t stored = 0;
    in_.read(reinterpret_cast<char*>(&stored), sizeof(stored));
    if (static_cast<size_t>(in_.gcount()) != sizeof(stored)) return false;
    return stored == expected;
  }

 private:
  std::ifstream in_;
  Checksum checksum_;
  bool failed_ = false;
};

void WriteStats(Writer* writer, const PlannerStats& s) {
  writer->U64(s.dataset.num_objects);
  writer->U64(s.dataset.num_users);
  writer->U64(s.dataset.num_distinct_tokens);
  writer->F64(s.dataset.tokens_per_object_mean);
  writer->F64(s.dataset.tokens_per_object_stddev);
  writer->F64(s.dataset.objects_per_token_mean);
  writer->F64(s.dataset.objects_per_token_stddev);
  writer->F64(s.dataset.objects_per_user_mean);
  writer->F64(s.dataset.objects_per_user_stddev);
  for (const OccupancyLevel& level : s.occupancy) {
    writer->U64(level.occupied_cells);
    writer->U64(level.sum_sq_counts);
    writer->U64(level.max_cell_count);
  }
  writer->F64(s.extent_x);
  writer->F64(s.extent_y);
  writer->U64(s.total_token_occurrences);
  writer->F64(s.token_collision_rate);
  writer->F64(s.token_top_frequency);
}

bool ReadStats(Reader* reader, PlannerStats* s) {
  uint64_t num_objects = 0, num_users = 0, num_tokens = 0;
  bool ok = reader->U64(&num_objects) && reader->U64(&num_users) &&
            reader->U64(&num_tokens) &&
            reader->F64(&s->dataset.tokens_per_object_mean) &&
            reader->F64(&s->dataset.tokens_per_object_stddev) &&
            reader->F64(&s->dataset.objects_per_token_mean) &&
            reader->F64(&s->dataset.objects_per_token_stddev) &&
            reader->F64(&s->dataset.objects_per_user_mean) &&
            reader->F64(&s->dataset.objects_per_user_stddev);
  if (!ok) return false;
  s->dataset.num_objects = static_cast<size_t>(num_objects);
  s->dataset.num_users = static_cast<size_t>(num_users);
  s->dataset.num_distinct_tokens = static_cast<size_t>(num_tokens);
  for (OccupancyLevel& level : s->occupancy) {
    if (!reader->U64(&level.occupied_cells) ||
        !reader->U64(&level.sum_sq_counts) ||
        !reader->U64(&level.max_cell_count)) {
      return false;
    }
  }
  return reader->F64(&s->extent_x) && reader->F64(&s->extent_y) &&
         reader->U64(&s->total_token_occurrences) &&
         reader->F64(&s->token_collision_rate) &&
         reader->F64(&s->token_top_frequency);
}

}  // namespace

Status WriteBinary(const ObjectDatabase& db, const std::string& path) {
  Writer writer(path);
  if (!writer.ok()) {
    return Status::IOError("cannot open for writing: " + path);
  }
  writer.Raw(kMagic, sizeof(kMagic));
  writer.U64(db.num_users());
  writer.U64(db.num_objects());
  const Dictionary& dict = db.dictionary();
  writer.U64(dict.size());
  for (TokenId t = 0; t < dict.size(); ++t) {
    writer.Str(dict.TokenString(t));
  }
  for (UserId u = 0; u < db.num_users(); ++u) {
    writer.Str(db.UserName(u));
    writer.U32(static_cast<uint32_t>(db.UserObjectCount(u)));
  }
  for (const STObject& o : db.AllObjects()) {
    writer.F64(o.loc.x);
    writer.F64(o.loc.y);
    writer.F64(o.time);
    writer.U32(static_cast<uint32_t>(o.doc.size()));
    for (const TokenId t : o.doc) {
      writer.U32(t);
    }
  }
  // The planner-stats block (v2). Every built database carries one; a
  // default-constructed (empty) database does not.
  if (db.has_planner_stats()) {
    writer.U32(1);
    WriteStats(&writer, db.planner_stats());
  } else {
    writer.U32(0);
  }
  writer.Finish();
  if (!writer.ok()) {
    return Status::IOError("write failed: " + path);
  }
  return Status::OK();
}

Result<ObjectDatabase> ReadBinary(const std::string& path) {
  Reader reader(path);
  if (!reader.ok()) {
    return Status::IOError("cannot open for reading: " + path);
  }
  char magic[sizeof(kMagic)];
  if (!reader.Raw(magic, sizeof(magic))) {
    return Status::Corruption("bad magic: not an stps binary snapshot");
  }
  const bool has_stats_block =
      std::memcmp(magic, kMagic, sizeof(kMagic)) == 0;
  if (!has_stats_block &&
      std::memcmp(magic, kMagicV1, sizeof(kMagicV1)) != 0) {
    return Status::Corruption("bad magic: not an stps binary snapshot");
  }
  uint64_t user_count = 0, object_count = 0, token_count = 0;
  if (!reader.U64(&user_count) || !reader.U64(&object_count) ||
      !reader.U64(&token_count)) {
    return Status::Corruption("truncated header");
  }
  constexpr uint64_t kSanityLimit = 1ULL << 40;
  if (user_count > kSanityLimit || object_count > kSanityLimit ||
      token_count > kSanityLimit) {
    return Status::Corruption("implausible counts in header");
  }
  std::vector<std::string> tokens(token_count);
  for (auto& token : tokens) {
    if (!reader.Str(&token)) return Status::Corruption("truncated token");
  }
  std::vector<std::string> user_names(user_count);
  std::vector<uint32_t> user_objects(user_count);
  for (uint64_t u = 0; u < user_count; ++u) {
    if (!reader.Str(&user_names[u]) || !reader.U32(&user_objects[u])) {
      return Status::Corruption("truncated user table");
    }
  }
  uint64_t total = 0;
  for (const uint32_t n : user_objects) total += n;
  if (total != object_count) {
    return Status::Corruption("object counts do not add up");
  }

  DatabaseBuilder builder;
  std::vector<std::string_view> keywords;
  for (uint64_t u = 0; u < user_count; ++u) {
    for (uint32_t i = 0; i < user_objects[u]; ++i) {
      double x = 0, y = 0, time = 0;
      uint32_t doc_len = 0;
      if (!reader.F64(&x) || !reader.F64(&y) || !reader.F64(&time) ||
          !reader.U32(&doc_len)) {
        return Status::Corruption("truncated object");
      }
      if (doc_len > token_count) {
        return Status::Corruption("object keyword count exceeds dictionary");
      }
      keywords.clear();
      for (uint32_t k = 0; k < doc_len; ++k) {
        uint32_t token_id = 0;
        if (!reader.U32(&token_id)) {
          return Status::Corruption("truncated keyword list");
        }
        if (token_id >= token_count) {
          return Status::Corruption("token id out of range");
        }
        keywords.push_back(tokens[token_id]);
      }
      builder.AddObject(user_names[u], Point{x, y},
                        std::span<const std::string_view>(keywords), time);
    }
  }
  PlannerStats stored_stats;
  bool compare_stats = false;
  if (has_stats_block) {
    uint32_t present = 0;
    if (!reader.U32(&present) || present > 1) {
      return Status::Corruption("truncated planner-stats block");
    }
    if (present == 1) {
      if (!ReadStats(&reader, &stored_stats)) {
        return Status::Corruption("truncated planner-stats block");
      }
      compare_stats = true;
    }
  }
  if (!reader.VerifyChecksum()) {
    return Status::Corruption("checksum mismatch");
  }
  ObjectDatabase db = std::move(builder).Build();
  // Build() recomputed the summary from the decoded objects; agreeing
  // with the serialized copy proves the object payload decoded to the
  // same database the writer saw (a structural check the byte checksum
  // cannot give us on its own).
  if (compare_stats && (!db.has_planner_stats() ||
                        !(db.planner_stats() == stored_stats))) {
    return Status::Corruption("planner stats disagree with rebuilt database");
  }
  return db;
}

}  // namespace stps
