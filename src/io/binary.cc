#include "io/binary.h"

#include <cstring>
#include <fstream>
#include <vector>

#include "io/format_v3.h"
#include "io/snapshot_v3.h"
#include "io/stats_codec.h"
#include "planner/planner_stats.h"

namespace stps {

namespace {

constexpr char kMagic[8] = {'S', 'T', 'P', 'S', 'D', 'B', '0', '2'};
// Legacy snapshots without the planner-stats block; still readable.
constexpr char kMagicV1[8] = {'S', 'T', 'P', 'S', 'D', 'B', '0', '1'};

// Incremental FNV-1a over the serialized byte stream.
class Checksum {
 public:
  void Update(const void* data, size_t size) {
    hash_ = FnvUpdate(hash_, data, size);
  }
  uint64_t value() const { return hash_; }

 private:
  uint64_t hash_ = kFnvSeed;
};

class Writer {
 public:
  explicit Writer(const std::string& path)
      : out_(path, std::ios::binary | std::ios::trunc) {}

  bool ok() const { return static_cast<bool>(out_); }

  void Raw(const void* data, size_t size) {
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(size));
    checksum_.Update(data, size);
  }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }
  // Writes the trailing checksum, then flushes and closes, folding any
  // deferred write error (ENOSPC surfacing at flush/close time) into the
  // stream state so ok() reflects it. A Status is only as good as this
  // check: without it a full disk still returned OkStatus.
  void Finish() {
    const uint64_t sum = checksum_.value();
    out_.write(reinterpret_cast<const char*>(&sum), sizeof(sum));
    out_.flush();
    if (out_.is_open()) out_.close();  // close() sets failbit on failure
  }

 private:
  std::ofstream out_;
  Checksum checksum_;
};

class Reader {
 public:
  explicit Reader(const std::string& path)
      : in_(path, std::ios::binary) {
    if (in_) {
      in_.seekg(0, std::ios::end);
      const auto end = in_.tellg();
      file_size_ = end < 0 ? 0 : static_cast<uint64_t>(end);
      in_.seekg(0, std::ios::beg);
    }
  }

  bool ok() const { return static_cast<bool>(in_) && !failed_; }
  bool failed() const { return failed_; }
  uint64_t file_size() const { return file_size_; }

  bool Raw(void* data, size_t size) {
    in_.read(static_cast<char*>(data), static_cast<std::streamsize>(size));
    if (static_cast<size_t>(in_.gcount()) != size) {
      failed_ = true;
      return false;
    }
    checksum_.Update(data, size);
    return true;
  }
  bool U32(uint32_t* v) { return Raw(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Raw(v, sizeof(*v)); }
  bool F64(double* v) { return Raw(v, sizeof(*v)); }
  bool Str(std::string* s, uint32_t max_len = 1 << 20) {
    uint32_t len = 0;
    if (!U32(&len)) return false;
    if (len > max_len) {
      failed_ = true;
      return false;
    }
    s->resize(len);
    return len == 0 || Raw(s->data(), len);
  }
  // Reads the trailing checksum (not folded into the running hash),
  // compares it with the accumulated value, and requires EOF right after
  // it: a snapshot with trailing garbage is corrupt, not clean — the
  // appended bytes are unchecksummed and a concatenation would otherwise
  // read as the first file.
  bool VerifyChecksum() {
    const uint64_t expected = checksum_.value();
    uint64_t stored = 0;
    in_.read(reinterpret_cast<char*>(&stored), sizeof(stored));
    if (static_cast<size_t>(in_.gcount()) != sizeof(stored)) return false;
    if (stored != expected) return false;
    in_.peek();
    return in_.eof();
  }

 private:
  std::ifstream in_;
  Checksum checksum_;
  uint64_t file_size_ = 0;
  bool failed_ = false;
};

Status WriteBinaryV2(const ObjectDatabase& db, const std::string& path) {
  // The on-disk counts are 32-bit: refuse to write what would silently
  // truncate (and decode to wrong data while passing its own checksum).
  for (UserId u = 0; u < db.num_users(); ++u) {
    if (!FitsU32(db.UserObjectCount(u))) {
      return Status::InvalidArgument(
          "user object count exceeds 32-bit snapshot field");
    }
  }
  for (const STObject& o : db.AllObjects()) {
    if (!FitsU32(o.doc.size())) {
      return Status::InvalidArgument(
          "object keyword count exceeds 32-bit snapshot field");
    }
  }
  Writer writer(path);
  if (!writer.ok()) {
    return Status::IOError("cannot open for writing: " + path);
  }
  writer.Raw(kMagic, sizeof(kMagic));
  writer.U64(db.num_users());
  writer.U64(db.num_objects());
  const Dictionary& dict = db.dictionary();
  writer.U64(dict.size());
  for (TokenId t = 0; t < dict.size(); ++t) {
    writer.Str(dict.TokenString(t));
  }
  for (UserId u = 0; u < db.num_users(); ++u) {
    writer.Str(db.UserName(u));
    writer.U32(static_cast<uint32_t>(db.UserObjectCount(u)));
  }
  for (const STObject& o : db.AllObjects()) {
    writer.F64(o.loc.x);
    writer.F64(o.loc.y);
    writer.F64(o.time);
    writer.U32(static_cast<uint32_t>(o.doc.size()));
    for (const TokenId t : o.doc) {
      writer.U32(t);
    }
  }
  // The planner-stats block (v2). Every built database carries one; a
  // default-constructed (empty) database does not.
  if (db.has_planner_stats()) {
    writer.U32(1);
    WriteStats(&writer, db.planner_stats());
  } else {
    writer.U32(0);
  }
  writer.Finish();
  if (!writer.ok()) {
    return Status::IOError("write failed: " + path);
  }
  return Status::OK();
}

Result<ObjectDatabase> ReadBinaryV2(Reader& reader, bool has_stats_block) {
  uint64_t user_count = 0, object_count = 0, token_count = 0;
  if (!reader.U64(&user_count) || !reader.U64(&object_count) ||
      !reader.U64(&token_count)) {
    return Status::Corruption("truncated header");
  }
  // Every serialized token, user, and object costs at least one byte of
  // payload, so counts are bounded by the file size. Checking that
  // *before* the count-sized allocations below keeps a 32-byte corrupt
  // file from demanding terabytes of heap.
  const uint64_t limit = reader.file_size();
  if (user_count > limit || object_count > limit || token_count > limit) {
    return Status::Corruption("implausible counts in header");
  }
  std::vector<std::string> tokens(token_count);
  for (auto& token : tokens) {
    if (!reader.Str(&token)) return Status::Corruption("truncated token");
  }
  std::vector<std::string> user_names(user_count);
  std::vector<uint32_t> user_objects(user_count);
  for (uint64_t u = 0; u < user_count; ++u) {
    if (!reader.Str(&user_names[u]) || !reader.U32(&user_objects[u])) {
      return Status::Corruption("truncated user table");
    }
  }
  uint64_t total = 0;
  for (const uint32_t n : user_objects) total += n;
  if (total != object_count) {
    return Status::Corruption("object counts do not add up");
  }

  DatabaseBuilder builder;
  std::vector<std::string_view> keywords;
  for (uint64_t u = 0; u < user_count; ++u) {
    for (uint32_t i = 0; i < user_objects[u]; ++i) {
      double x = 0, y = 0, time = 0;
      uint32_t doc_len = 0;
      if (!reader.F64(&x) || !reader.F64(&y) || !reader.F64(&time) ||
          !reader.U32(&doc_len)) {
        return Status::Corruption("truncated object");
      }
      if (doc_len > token_count) {
        return Status::Corruption("object keyword count exceeds dictionary");
      }
      keywords.clear();
      for (uint32_t k = 0; k < doc_len; ++k) {
        uint32_t token_id = 0;
        if (!reader.U32(&token_id)) {
          return Status::Corruption("truncated keyword list");
        }
        if (token_id >= token_count) {
          return Status::Corruption("token id out of range");
        }
        keywords.push_back(tokens[token_id]);
      }
      builder.AddObject(user_names[u], Point{x, y},
                        std::span<const std::string_view>(keywords), time);
    }
  }
  PlannerStats stored_stats;
  bool compare_stats = false;
  if (has_stats_block) {
    uint32_t present = 0;
    if (!reader.U32(&present) || present > 1) {
      return Status::Corruption("truncated planner-stats block");
    }
    if (present == 1) {
      if (!ReadStats(&reader, &stored_stats)) {
        return Status::Corruption("truncated planner-stats block");
      }
      compare_stats = true;
    }
  }
  if (!reader.VerifyChecksum()) {
    return Status::Corruption("checksum mismatch");
  }
  ObjectDatabase db = std::move(builder).Build();
  // Build() recomputed the summary from the decoded objects; agreeing
  // with the serialized copy proves the object payload decoded to the
  // same database the writer saw (a structural check the byte checksum
  // cannot give us on its own).
  if (compare_stats && (!db.has_planner_stats() ||
                        !(db.planner_stats() == stored_stats))) {
    return Status::Corruption("planner stats disagree with rebuilt database");
  }
  return db;
}

}  // namespace

Status WriteBinary(const ObjectDatabase& db, const std::string& path,
                   SnapshotFormat format) {
  if (format == SnapshotFormat::kV3Arena) {
    return SnapshotLoader::Write(db, path);
  }
  return WriteBinaryV2(db, path);
}

Result<ObjectDatabase> ReadBinary(const std::string& path) {
  Reader reader(path);
  if (!reader.ok()) {
    return Status::IOError("cannot open for reading: " + path);
  }
  char magic[sizeof(kMagic)];
  if (!reader.Raw(magic, sizeof(magic))) {
    return Status::Corruption("bad magic: not an stps binary snapshot");
  }
  if (std::memcmp(magic, kMagicV3, sizeof(kMagicV3)) == 0) {
    // v3 arena: read the file to heap and run the fully-verifying load
    // (every section checksum plus the structural cross-checks).
    std::ifstream in(path, std::ios::binary);
    auto buffer = std::make_shared<std::vector<char>>(
        static_cast<size_t>(reader.file_size()));
    if (!in.read(buffer->data(),
                 static_cast<std::streamsize>(buffer->size()))) {
      return Status::IOError("short read: " + path);
    }
    const char* data = buffer->data();
    const size_t size = buffer->size();
    return SnapshotLoader::Load(std::move(buffer), data, size,
                                /*verify=*/true);
  }
  const bool has_stats_block =
      std::memcmp(magic, kMagic, sizeof(kMagic)) == 0;
  if (!has_stats_block &&
      std::memcmp(magic, kMagicV1, sizeof(kMagicV1)) != 0) {
    return Status::Corruption("bad magic: not an stps binary snapshot");
  }
  return ReadBinaryV2(reader, has_stats_block);
}

}  // namespace stps
