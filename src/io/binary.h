// Binary snapshot format for ObjectDatabase — the fast-reload companion
// to the human-readable TSV format. Layout (little-endian):
//
//   magic "STPSDB01" | u64 user_count | u64 object_count | u64 token_count
//   dictionary: token_count x (u32 len, bytes)   -- in token-id order
//   users:      user_count  x (u32 len, bytes, u32 object_count)
//   objects:    object_count x (f64 x, f64 y, f64 time,
//                               u32 doc_len, doc_len x u32 token_id)
//               -- grouped by user, in user order
//   u64 checksum (FNV-1a over everything before it)
//
// Readers validate the magic, all counts, token-id ranges and the
// checksum, and report Status::Corruption on any mismatch.

#ifndef STPS_IO_BINARY_H_
#define STPS_IO_BINARY_H_

#include <string>

#include "common/status.h"
#include "core/database.h"

namespace stps {

/// Writes `db` to `path` in the binary snapshot format.
Status WriteBinary(const ObjectDatabase& db, const std::string& path);

/// Reads a database from a binary snapshot.
Result<ObjectDatabase> ReadBinary(const std::string& path);

}  // namespace stps

#endif  // STPS_IO_BINARY_H_
