// Binary snapshot format for ObjectDatabase — the fast-reload companion
// to the human-readable TSV format. Layout (little-endian):
//
//   magic "STPSDB02" | u64 user_count | u64 object_count | u64 token_count
//   dictionary: token_count x (u32 len, bytes)   -- in token-id order
//   users:      user_count  x (u32 len, bytes, u32 object_count)
//   objects:    object_count x (f64 x, f64 y, f64 time,
//                               u32 doc_len, doc_len x u32 token_id)
//               -- grouped by user, in user order
//   stats:      u32 present | when present, the PlannerStats block
//               (dataset metrics, dyadic occupancy ladder, token skew;
//               see planner/planner_stats.h) in field order
//   u64 checksum (FNV-1a over everything before it)
//
// Readers validate the magic, all counts, token-id ranges and the
// checksum, and report Status::Corruption on any mismatch. The reader
// rebuilds the database through DatabaseBuilder (which recomputes the
// planner statistics), then cross-checks the recomputed summary against
// the serialized block — a structural integrity check on top of the byte
// checksum. "STPSDB01" snapshots (no stats block) are still read.

#ifndef STPS_IO_BINARY_H_
#define STPS_IO_BINARY_H_

#include <string>

#include "common/status.h"
#include "core/database.h"

namespace stps {

/// Writes `db` to `path` in the binary snapshot format.
Status WriteBinary(const ObjectDatabase& db, const std::string& path);

/// Reads a database from a binary snapshot.
Result<ObjectDatabase> ReadBinary(const std::string& path);

}  // namespace stps

#endif  // STPS_IO_BINARY_H_
