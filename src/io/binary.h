// Binary snapshot formats for ObjectDatabase — the fast-reload companion
// to the human-readable TSV format.
//
// Two formats share one API:
//
//  * v2 "STPSDB02" — the legacy sequential stream (dictionary, user
//    table, objects, planner-stats block, trailing FNV-1a checksum).
//    Readers rebuild the database through DatabaseBuilder and
//    cross-check the recomputed planner stats against the serialized
//    block. "STPSDB01" (no stats block) is still read.
//
//  * v3 "STPSDB03" — a relocatable, 64-byte-aligned arena that *is* the
//    in-memory layout: the CSR token arena, SoA mirrors, per-user spans,
//    dictionary, planner stats, and sketch layer as flat sections
//    addressed by offsets (see io/format_v3.h for the byte layout and
//    DESIGN.md §10 for the design). ReadBinaryMapped opens a v3 file
//    with mmap in O(1) and pages on demand; ReadBinary reads it to heap
//    and fully verifies every section checksum plus the structural
//    cross-checks (planner-stats and sketch rebuild comparison).
//
// WriteBinary defaults to v3; pass SnapshotFormat::kV2Stream for the
// legacy stream. ReadBinary dispatches on the magic, so existing callers
// read either format transparently.

#ifndef STPS_IO_BINARY_H_
#define STPS_IO_BINARY_H_

#include <cstddef>
#include <memory>
#include <string>

#include "common/status.h"
#include "core/database.h"

namespace stps {

enum class SnapshotFormat {
  kV2Stream,  // legacy sequential stream ("STPSDB02")
  kV3Arena,   // mmap-able relocatable arena ("STPSDB03")
};

/// Writes `db` to `path` in the selected snapshot format.
Status WriteBinary(const ObjectDatabase& db, const std::string& path,
                   SnapshotFormat format = SnapshotFormat::kV3Arena);

/// Reads a database from a binary snapshot (any format version). This is
/// the *verifying* path: every byte is read and checksummed, and the
/// structural cross-checks run before the database is returned.
Result<ObjectDatabase> ReadBinary(const std::string& path);

/// An open, memory-mapped v3 snapshot. Open() is O(1) in the file size:
/// it maps the file and validates only the fixed-size header and the
/// section table; section payloads page in on first touch. Databases
/// returned by Load() borrow the mapping (the MappedSnapshot may be
/// destroyed; the mapping lives until the last database drops it).
class MappedSnapshot {
 public:
  MappedSnapshot() = default;

  /// Maps `path`. Fails with Status::Corruption unless the file is a
  /// well-formed v3 snapshot (header + section table checks only).
  static Result<MappedSnapshot> Open(const std::string& path);

  /// Materializes a database view over the mapping. O(objects + users):
  /// builds the AoS object headers and validates the structural
  /// invariants (CSR monotonicity, permutation, grouping) that keep
  /// every later access in bounds — but *trusts* the payload bytes (no
  /// checksum pass, nothing token-scale is touched). Use LoadVerified()
  /// or ReadBinary() for untrusted files.
  Result<ObjectDatabase> Load() const;

  /// Like Load() but additionally verifies every section checksum, the
  /// whole-file checksum, recomputed signatures, planner stats, and a
  /// sketch-layer rebuild comparison. Reads the entire file.
  Result<ObjectDatabase> LoadVerified() const;

  /// Size of the mapped file in bytes. Zero for a default-constructed
  /// (unopened) snapshot.
  size_t file_size() const { return size_; }

 private:
  std::shared_ptr<const void> region_;  // munmap deleter
  const char* data_ = nullptr;
  size_t size_ = 0;
};

/// Convenience: MappedSnapshot::Open + Load. The returned database keeps
/// the mapping alive.
Result<ObjectDatabase> ReadBinaryMapped(const std::string& path);

}  // namespace stps

#endif  // STPS_IO_BINARY_H_
