// Serialization of the PlannerStats block, shared by the v2 stream
// (io/binary.cc) and the v3 arena section (io/snapshot_v3.cc). The field
// order is on-disk contract for both formats: 3 dataset u64, 6 dataset
// f64, 17 x 3 occupancy u64, extent_x/y f64, total_token_occurrences
// u64, token_collision_rate / token_top_frequency f64 — 65 8-byte
// fields (kPlannerStatsBlockSize).
//
// Writer needs:  void U64(uint64_t), void F64(double)
// Reader needs:  bool U64(uint64_t*), bool F64(double*)

#ifndef STPS_IO_STATS_CODEC_H_
#define STPS_IO_STATS_CODEC_H_

#include <cstdint>

#include "planner/planner_stats.h"

namespace stps {

template <typename W>
void WriteStats(W* writer, const PlannerStats& s) {
  writer->U64(s.dataset.num_objects);
  writer->U64(s.dataset.num_users);
  writer->U64(s.dataset.num_distinct_tokens);
  writer->F64(s.dataset.tokens_per_object_mean);
  writer->F64(s.dataset.tokens_per_object_stddev);
  writer->F64(s.dataset.objects_per_token_mean);
  writer->F64(s.dataset.objects_per_token_stddev);
  writer->F64(s.dataset.objects_per_user_mean);
  writer->F64(s.dataset.objects_per_user_stddev);
  for (const OccupancyLevel& level : s.occupancy) {
    writer->U64(level.occupied_cells);
    writer->U64(level.sum_sq_counts);
    writer->U64(level.max_cell_count);
  }
  writer->F64(s.extent_x);
  writer->F64(s.extent_y);
  writer->U64(s.total_token_occurrences);
  writer->F64(s.token_collision_rate);
  writer->F64(s.token_top_frequency);
}

template <typename R>
bool ReadStats(R* reader, PlannerStats* s) {
  uint64_t num_objects = 0, num_users = 0, num_tokens = 0;
  bool ok = reader->U64(&num_objects) && reader->U64(&num_users) &&
            reader->U64(&num_tokens) &&
            reader->F64(&s->dataset.tokens_per_object_mean) &&
            reader->F64(&s->dataset.tokens_per_object_stddev) &&
            reader->F64(&s->dataset.objects_per_token_mean) &&
            reader->F64(&s->dataset.objects_per_token_stddev) &&
            reader->F64(&s->dataset.objects_per_user_mean) &&
            reader->F64(&s->dataset.objects_per_user_stddev);
  if (!ok) return false;
  s->dataset.num_objects = static_cast<size_t>(num_objects);
  s->dataset.num_users = static_cast<size_t>(num_users);
  s->dataset.num_distinct_tokens = static_cast<size_t>(num_tokens);
  for (OccupancyLevel& level : s->occupancy) {
    if (!reader->U64(&level.occupied_cells) ||
        !reader->U64(&level.sum_sq_counts) ||
        !reader->U64(&level.max_cell_count)) {
      return false;
    }
  }
  return reader->F64(&s->extent_x) && reader->F64(&s->extent_y) &&
         reader->U64(&s->total_token_occurrences) &&
         reader->F64(&s->token_collision_rate) &&
         reader->F64(&s->token_top_frequency);
}

}  // namespace stps

#endif  // STPS_IO_STATS_CODEC_H_
