// Internal interface between io/binary.cc (the public snapshot API) and
// io/snapshot_v3.cc (the v3 arena writer/loader). Not installed; tests
// include it to drive the loader over in-memory buffers.

#ifndef STPS_IO_SNAPSHOT_V3_H_
#define STPS_IO_SNAPSHOT_V3_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "core/database.h"

namespace stps {

/// The v3 writer/loader. A class (not free functions) so ObjectDatabase
/// can befriend it: arena-view loads assign the private columns
/// directly, bypassing DatabaseBuilder.
class SnapshotLoader {
 public:
  /// Writes `db` to `path` as an STPSDB03 arena.
  static Status Write(const ObjectDatabase& db, const std::string& path);

  /// Builds a database over an arena held in memory (heap buffer or mmap
  /// region). `owner` keeps [data, data + size) alive and is pinned by
  /// the returned database. With verify=false this is the trusting O(1)
  /// mapped path (structural validation only); with verify=true every
  /// checksum and structural cross-check runs (see io/binary.h).
  static Result<ObjectDatabase> Load(std::shared_ptr<const void> owner,
                                     const char* data, size_t size,
                                     bool verify);

  /// Validates the fixed-size header and section table of a candidate v3
  /// arena — the O(1) part of Load, exposed so MappedSnapshot::Open can
  /// fail fast without touching section payloads.
  static Status CheckHeader(const char* data, size_t size);
};

}  // namespace stps

#endif  // STPS_IO_SNAPSHOT_V3_H_
