#include "io/tsv.h"

#include <fstream>
#include <vector>

#include "common/parse.h"

namespace stps {

Status WriteTsv(const ObjectDatabase& db, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IOError("cannot open for writing: " + path);
  }
  // Round-trippable double formatting.
  out.precision(17);
  out << "# stps objects: user\tx\ty\tkeywords[\ttime]\n";
  const Dictionary& dict = db.dictionary();
  for (const STObject& o : db.AllObjects()) {
    out << db.UserName(o.user) << '\t' << o.loc.x << '\t' << o.loc.y << '\t';
    for (size_t i = 0; i < o.doc.size(); ++i) {
      if (i > 0) out << ',';
      out << dict.TokenString(o.doc[i]);
    }
    out << '\t' << o.time << '\n';
  }
  out.flush();
  // Fold close-time errors into the stream state too: buffered bytes can
  // still hit ENOSPC when the descriptor drains on close.
  if (out.is_open()) out.close();
  if (!out) {
    return Status::IOError("write failed: " + path);
  }
  return Status::OK();
}

Result<ObjectDatabase> ReadTsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open for reading: " + path);
  }
  DatabaseBuilder builder;
  std::string line;
  size_t line_number = 0;
  std::vector<std::string_view> keywords;
  while (std::getline(in, line)) {
    ++line_number;
    // std::getline splits on '\n' only; files written on Windows (or
    // transferred with CRLF line endings) leave a trailing '\r' that would
    // otherwise end up glued onto the last field of every row.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    // Split into exactly four tab fields.
    size_t pos = 0;
    std::string_view fields[4];
    const std::string_view view(line);
    for (int f = 0; f < 4; ++f) {
      const size_t tab = view.find('\t', pos);
      if (f < 3) {
        if (tab == std::string_view::npos) {
          return Status::Corruption("line " + std::to_string(line_number) +
                                    ": expected 4 tab-separated fields");
        }
        fields[f] = view.substr(pos, tab - pos);
        pos = tab + 1;
      } else {
        fields[f] = view.substr(pos);
      }
    }
    // Full-field parses (common/parse.h): strtod would accept "1.5abc"
    // and silently drop the garbage tail.
    double x = 0.0, y = 0.0;
    if (!ParseDouble(fields[1], &x)) {
      return Status::Corruption("line " + std::to_string(line_number) +
                                ": bad x coordinate");
    }
    if (!ParseDouble(fields[2], &y)) {
      return Status::Corruption("line " + std::to_string(line_number) +
                                ": bad y coordinate");
    }
    // Optional trailing time column.
    double time = 0.0;
    std::string_view kw = fields[3];
    const size_t time_tab = kw.find('\t');
    if (time_tab != std::string_view::npos) {
      const std::string_view time_field = kw.substr(time_tab + 1);
      kw = kw.substr(0, time_tab);
      if (!ParseDouble(time_field, &time)) {
        return Status::Corruption("line " + std::to_string(line_number) +
                                  ": bad time value");
      }
    }
    keywords.clear();
    size_t start = 0;
    while (start <= kw.size()) {
      const size_t comma = kw.find(',', start);
      const std::string_view token =
          comma == std::string_view::npos ? kw.substr(start)
                                          : kw.substr(start, comma - start);
      if (!token.empty()) keywords.push_back(token);
      if (comma == std::string_view::npos) break;
      start = comma + 1;
    }
    builder.AddObject(fields[0], Point{x, y},
                      std::span<const std::string_view>(keywords), time);
  }
  // getline() reports a device-level read error the same way as EOF;
  // without this check a failing disk truncates the dataset silently.
  if (in.bad()) {
    return Status::IOError("read failed: " + path);
  }
  return std::move(builder).Build();
}

}  // namespace stps
