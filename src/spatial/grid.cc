#include "spatial/grid.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace stps {

GridGeometry::GridGeometry(const Rect& bounds, double cell_size)
    : bounds_(bounds), cell_size_(cell_size) {
  STPS_CHECK(cell_size > 0.0);
  STPS_CHECK(!bounds.IsEmpty());
  columns_ = std::max<int64_t>(
      1, static_cast<int64_t>(
             std::ceil((bounds.max_x - bounds.min_x) / cell_size)));
  rows_ = std::max<int64_t>(
      1, static_cast<int64_t>(
             std::ceil((bounds.max_y - bounds.min_y) / cell_size)));
}

int64_t GridGeometry::ColumnOf(const Point& p) const {
  const int64_t c =
      static_cast<int64_t>(std::floor((p.x - bounds_.min_x) / cell_size_));
  return std::clamp<int64_t>(c, 0, columns_ - 1);
}

int64_t GridGeometry::RowOf(const Point& p) const {
  const int64_t r =
      static_cast<int64_t>(std::floor((p.y - bounds_.min_y) / cell_size_));
  return std::clamp<int64_t>(r, 0, rows_ - 1);
}

void GridGeometry::AppendNeighborhood(CellId id, bool include_self,
                                      std::vector<CellId>* out) const {
  const int64_t col = ColumnOf(id);
  const int64_t row = RowOf(id);
  for (int64_t dr = -1; dr <= 1; ++dr) {
    const int64_t r = row + dr;
    if (r < 0 || r >= rows_) continue;
    for (int64_t dc = -1; dc <= 1; ++dc) {
      const int64_t c = col + dc;
      if (c < 0 || c >= columns_) continue;
      if (dr == 0 && dc == 0 && !include_self) continue;
      out->push_back(IdOf(c, r));
    }
  }
}

void GridGeometry::AppendLowerNeighbors(CellId id,
                                        std::vector<CellId>* out) const {
  const int64_t col = ColumnOf(id);
  const int64_t row = RowOf(id);
  // Row below: SW, S, SE.
  if (row > 0) {
    for (int64_t dc = -1; dc <= 1; ++dc) {
      const int64_t c = col + dc;
      if (c < 0 || c >= columns_) continue;
      out->push_back(IdOf(c, row - 1));
    }
  }
  // Same row: W.
  if (col > 0) out->push_back(IdOf(col - 1, row));
}

void GridGeometry::AppendOddRowNeighbors(CellId id,
                                         std::vector<CellId>* out) const {
  const int64_t col = ColumnOf(id);
  const int64_t row = RowOf(id);
  for (int64_t dr = -1; dr <= 1; ++dr) {
    const int64_t r = row + dr;
    if (r < 0 || r >= rows_) continue;
    for (int64_t dc = -1; dc <= 1; ++dc) {
      const int64_t c = col + dc;
      if (c < 0 || c >= columns_) continue;
      if (dr == 0 && dc == 1) continue;  // skip the East cell
      out->push_back(IdOf(c, r));
    }
  }
}

void GridGeometry::AppendEvenRowNeighbors(CellId id,
                                          std::vector<CellId>* out) const {
  const int64_t col = ColumnOf(id);
  const int64_t row = RowOf(id);
  if (col > 0) out->push_back(IdOf(col - 1, row));
  out->push_back(id);
}

}  // namespace stps
