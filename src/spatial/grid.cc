#include "spatial/grid.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/macros.h"
#include "common/predicates.h"

namespace stps {

namespace {

// Conservatively inflates the requested cell size so that cell assignment
// is *filter-sound*: two points at distance <= cell_size must land in the
// same or adjacent rows/columns, or the grid join silently drops the pair
// before any exact check runs (common/predicates.h rounding policy —
// filters may only over-approximate).
//
// ColumnOf computes floor((x - min_x) / cell). Both the subtraction and
// the division round to nearest, each off by <= 1/2 ULP of a value no
// larger in magnitude than the bounds coordinates (the quotient is scaled
// by 1/cell, so its absolute error in *coordinate* units stays at that
// same scale). Two points exactly cell_size apart can therefore straddle
// two column boundaries when each computation rounds the wrong way.
// Growing the cell by a few ULPs of the largest coordinate magnitude makes
// every real inter-boundary gap strictly wider than the original
// cell_size, absorbing the rounding. The margin is absolute, not relative
// to cell_size: for eps_loc = 1e-3 over a +/-180 domain the rounding error
// lives at the magnitude of the coordinates, not of the cell.
double ConservativeCellSize(const Rect& bounds, double cell_size) {
  const double magnitude =
      std::max({std::fabs(bounds.min_x), std::fabs(bounds.max_x),
                std::fabs(bounds.min_y), std::fabs(bounds.max_y), cell_size});
  const double margin =
      8.0 * std::numeric_limits<double>::epsilon() * magnitude;
  return AddRoundUp(cell_size, margin);
}

}  // namespace

GridGeometry::GridGeometry(const Rect& bounds, double cell_size)
    : bounds_(bounds), cell_size_(ConservativeCellSize(bounds, cell_size)) {
  STPS_CHECK(cell_size > 0.0);
  STPS_CHECK(!bounds.IsEmpty());
  columns_ = std::max<int64_t>(
      1, static_cast<int64_t>(
             std::ceil((bounds.max_x - bounds.min_x) / cell_size_)));
  rows_ = std::max<int64_t>(
      1, static_cast<int64_t>(
             std::ceil((bounds.max_y - bounds.min_y) / cell_size_)));
}

int64_t GridGeometry::ColumnOf(const Point& p) const {
  const int64_t c =
      static_cast<int64_t>(std::floor((p.x - bounds_.min_x) / cell_size_));
  return std::clamp<int64_t>(c, 0, columns_ - 1);
}

int64_t GridGeometry::RowOf(const Point& p) const {
  const int64_t r =
      static_cast<int64_t>(std::floor((p.y - bounds_.min_y) / cell_size_));
  return std::clamp<int64_t>(r, 0, rows_ - 1);
}

void GridGeometry::AppendNeighborhood(CellId id, bool include_self,
                                      std::vector<CellId>* out) const {
  const int64_t col = ColumnOf(id);
  const int64_t row = RowOf(id);
  for (int64_t dr = -1; dr <= 1; ++dr) {
    const int64_t r = row + dr;
    if (r < 0 || r >= rows_) continue;
    for (int64_t dc = -1; dc <= 1; ++dc) {
      const int64_t c = col + dc;
      if (c < 0 || c >= columns_) continue;
      if (dr == 0 && dc == 0 && !include_self) continue;
      out->push_back(IdOf(c, r));
    }
  }
}

void GridGeometry::AppendLowerNeighbors(CellId id,
                                        std::vector<CellId>* out) const {
  const int64_t col = ColumnOf(id);
  const int64_t row = RowOf(id);
  // Row below: SW, S, SE.
  if (row > 0) {
    for (int64_t dc = -1; dc <= 1; ++dc) {
      const int64_t c = col + dc;
      if (c < 0 || c >= columns_) continue;
      out->push_back(IdOf(c, row - 1));
    }
  }
  // Same row: W.
  if (col > 0) out->push_back(IdOf(col - 1, row));
}

void GridGeometry::AppendOddRowNeighbors(CellId id,
                                         std::vector<CellId>* out) const {
  const int64_t col = ColumnOf(id);
  const int64_t row = RowOf(id);
  for (int64_t dr = -1; dr <= 1; ++dr) {
    const int64_t r = row + dr;
    if (r < 0 || r >= rows_) continue;
    for (int64_t dc = -1; dc <= 1; ++dc) {
      const int64_t c = col + dc;
      if (c < 0 || c >= columns_) continue;
      if (dr == 0 && dc == 1) continue;  // skip the East cell
      out->push_back(IdOf(c, r));
    }
  }
}

void GridGeometry::AppendEvenRowNeighbors(CellId id,
                                          std::vector<CellId>* out) const {
  const int64_t col = ColumnOf(id);
  const int64_t row = RowOf(id);
  if (col > 0) out->push_back(IdOf(col - 1, row));
  out->push_back(id);
}

}  // namespace stps
