// AVX2 implementations of the batch eps_loc kernels. This is the only
// translation unit compiled with -mavx2 (see src/CMakeLists.txt), and it
// is only reached behind the __builtin_cpu_supports("avx2") dispatch in
// batch.cc, so nothing here can fault on pre-AVX2 hardware.
//
// Numeric contract (see batch.h): sub, mul, mul, add, compare — each
// operation rounded once, exactly like the scalar WithinEpsLoc chain.
// _mm256_fmadd_pd would skip the intermediate rounding of dx*dx and flip
// verdicts at ±1 ULP boundaries, so FMA is deliberately absent (and the
// file is not compiled with -mfma, so the compiler cannot contract the
// intrinsics either).

#include "spatial/batch.h"

#if defined(STPS_BATCH_HAS_AVX2)

#include <immintrin.h>

#include "common/predicates.h"

namespace stps {
namespace batch_internal {

namespace {

// kCompress4[mask][j] = the j-th set lane of the 4-bit mask, ascending.
// Entries past the popcount are don't-care (overwritten by later stores
// or past the returned count).
alignas(16) constexpr uint32_t kCompress4[16][4] = {
    {0, 0, 0, 0}, {0, 0, 0, 0}, {1, 0, 0, 0}, {0, 1, 0, 0},
    {2, 0, 0, 0}, {0, 2, 0, 0}, {1, 2, 0, 0}, {0, 1, 2, 0},
    {3, 0, 0, 0}, {0, 3, 0, 0}, {1, 3, 0, 0}, {0, 1, 3, 0},
    {2, 3, 0, 0}, {0, 2, 3, 0}, {1, 2, 3, 0}, {0, 1, 2, 3},
};

// Lane mask of (probe - q)^2 <= eps^2 for 4 points. _CMP_LE_OQ matches
// the scalar <= (quiet, ordered: NaN compares false).
inline int WithinMask4(__m256d px, __m256d py, __m256d qx, __m256d qy,
                       __m256d e2) {
  const __m256d dx = _mm256_sub_pd(px, qx);
  const __m256d dy = _mm256_sub_pd(py, qy);
  const __m256d d2 =
      _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
  return _mm256_movemask_pd(_mm256_cmp_pd(d2, e2, _CMP_LE_OQ));
}

}  // namespace

size_t CountWithinEpsLocAvx2(const Point& probe, const double* xs,
                             const double* ys, size_t n, double eps_loc) {
  const __m256d px = _mm256_set1_pd(probe.x);
  const __m256d py = _mm256_set1_pd(probe.y);
  // eps^2 rounded once in scalar, then broadcast — the same value the
  // scalar predicate compares against.
  const __m256d e2 = _mm256_set1_pd(eps_loc * eps_loc);
  size_t count = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const int mask = WithinMask4(px, py, _mm256_loadu_pd(xs + i),
                                 _mm256_loadu_pd(ys + i), e2);
    count += static_cast<size_t>(__builtin_popcount(
        static_cast<unsigned>(mask)));
  }
  for (; i < n; ++i) {
    const double dx = probe.x - xs[i];
    const double dy = probe.y - ys[i];
    count += WithinEpsLoc(dx * dx + dy * dy, eps_loc) ? 1 : 0;
  }
  return count;
}

size_t CollectWithinEpsLocAvx2(const Point& probe, const double* xs,
                               const double* ys, size_t n, double eps_loc,
                               uint32_t* out) {
  const __m256d px = _mm256_set1_pd(probe.x);
  const __m256d py = _mm256_set1_pd(probe.y);
  const __m256d e2 = _mm256_set1_pd(eps_loc * eps_loc);
  size_t count = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const int mask = WithinMask4(px, py, _mm256_loadu_pd(xs + i),
                                 _mm256_loadu_pd(ys + i), e2);
    // Table-compacted store: 4 lanes are always written (count + 4 <=
    // i + 4 <= n, so the slack stays inside the caller's n-entry buffer),
    // only popcount(mask) of them survive.
    const __m128i lanes = _mm_load_si128(
        reinterpret_cast<const __m128i*>(kCompress4[mask]));
    const __m128i pos =
        _mm_add_epi32(lanes, _mm_set1_epi32(static_cast<int>(i)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + count), pos);
    count += static_cast<size_t>(__builtin_popcount(
        static_cast<unsigned>(mask)));
  }
  for (; i < n; ++i) {
    const double dx = probe.x - xs[i];
    const double dy = probe.y - ys[i];
    out[count] = static_cast<uint32_t>(i);
    count += WithinEpsLoc(dx * dx + dy * dy, eps_loc) ? 1 : 0;
  }
  return count;
}

size_t CountWithinEpsLocAvx2(const Point& probe, const double* xs,
                             const double* ys, std::span<const uint32_t> idx,
                             double eps_loc) {
  const __m256d px = _mm256_set1_pd(probe.x);
  const __m256d py = _mm256_set1_pd(probe.y);
  const __m256d e2 = _mm256_set1_pd(eps_loc * eps_loc);
  const size_t n = idx.size();
  size_t count = 0;
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m128i vidx = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(idx.data() + j));
    const __m256d qx = _mm256_i32gather_pd(xs, vidx, 8);
    const __m256d qy = _mm256_i32gather_pd(ys, vidx, 8);
    const int mask = WithinMask4(px, py, qx, qy, e2);
    count += static_cast<size_t>(__builtin_popcount(
        static_cast<unsigned>(mask)));
  }
  for (; j < n; ++j) {
    const uint32_t i = idx[j];
    const double dx = probe.x - xs[i];
    const double dy = probe.y - ys[i];
    count += WithinEpsLoc(dx * dx + dy * dy, eps_loc) ? 1 : 0;
  }
  return count;
}

size_t CollectWithinEpsLocAvx2(const Point& probe, const double* xs,
                               const double* ys,
                               std::span<const uint32_t> idx, double eps_loc,
                               uint32_t* out) {
  const __m256d px = _mm256_set1_pd(probe.x);
  const __m256d py = _mm256_set1_pd(probe.y);
  const __m256d e2 = _mm256_set1_pd(eps_loc * eps_loc);
  const size_t n = idx.size();
  size_t count = 0;
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m128i vidx = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(idx.data() + j));
    const __m256d qx = _mm256_i32gather_pd(xs, vidx, 8);
    const __m256d qy = _mm256_i32gather_pd(ys, vidx, 8);
    const int mask = WithinMask4(px, py, qx, qy, e2);
    // Compact the surviving *index values*: gather them from vidx via the
    // same lane table, then store all 4 (slack as above).
    const __m128i lanes = _mm_load_si128(
        reinterpret_cast<const __m128i*>(kCompress4[mask]));
    const __m128i packed = _mm_castps_si128(_mm_permutevar_ps(
        _mm_castsi128_ps(vidx), lanes));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + count), packed);
    count += static_cast<size_t>(__builtin_popcount(
        static_cast<unsigned>(mask)));
  }
  for (; j < n; ++j) {
    const uint32_t i = idx[j];
    const double dx = probe.x - xs[i];
    const double dy = probe.y - ys[i];
    out[count] = i;
    count += WithinEpsLoc(dx * dx + dy * dy, eps_loc) ? 1 : 0;
  }
  return count;
}

}  // namespace batch_internal
}  // namespace stps

#endif  // STPS_BATCH_HAS_AVX2
