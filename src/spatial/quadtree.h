// PR quadtree over 2-D points — the alternative space partitioning
// studied for spatio-textual joins by Rao, Lin, Samet (BigSpatial 2014),
// cited by the paper. Used as a second data-partitioning backend for
// S-PPJ-D-style processing (see core/sppj_d.h) and benchmarked against
// the R-tree leaves in bench_ablation_partitioning.

#ifndef STPS_SPATIAL_QUADTREE_H_
#define STPS_SPATIAL_QUADTREE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/macros.h"
#include "spatial/geometry.h"

namespace stps {

/// A point-region quadtree: every internal node splits its square region
/// into four quadrants; leaves hold up to `leaf_capacity` points (more
/// only at `max_depth`, where splitting stops).
class QuadTree {
 public:
  /// A stored (point, payload) pair.
  struct Entry {
    Point point;
    uint32_t value = 0;
  };

  /// A leaf region exposed to partition-based algorithms. `region` is the
  /// node's quadrant; `mbr` the tight bounding box of its entries.
  struct LeafRef {
    uint32_t ordinal = 0;
    Rect region;
    Rect mbr;
    std::span<const Entry> entries;
  };

  /// Creates an empty tree over `bounds`.
  /// Preconditions: leaf_capacity >= 1, max_depth >= 1.
  QuadTree(const Rect& bounds, int leaf_capacity, int max_depth = 24);

  QuadTree(QuadTree&&) = default;
  QuadTree& operator=(QuadTree&&) = default;

  /// Builds a tree over `entries` (bounds = their bounding box).
  static QuadTree Build(std::vector<Entry> entries, int leaf_capacity,
                        int max_depth = 24);

  /// Inserts one point. Points outside the root bounds are clamped onto
  /// the boundary region (the tree never rejects data).
  void Insert(const Point& point, uint32_t value);

  /// Appends the payloads of all points inside `query`.
  void RangeQuery(const Rect& query, std::vector<uint32_t>* out) const;

  /// Number of stored points.
  size_t size() const { return size_; }

  /// Collects all (non-empty) leaves in depth-first quadrant order.
  /// Spans are invalidated by Insert.
  std::vector<LeafRef> CollectLeaves() const;

  /// Verifies structural invariants (region containment, capacity /
  /// depth limits). For tests.
  bool CheckInvariants() const;

 private:
  struct Node {
    Rect region;
    int depth = 1;
    // children[0..3] = SW, SE, NW, NE; -1 while a leaf.
    int32_t children[4] = {-1, -1, -1, -1};
    std::vector<Entry> entries;  // leaves only

    bool is_leaf() const { return children[0] < 0; }
  };

  int32_t NewNode(const Rect& region, int depth);
  void InsertInto(int32_t node_id, Entry entry);
  void Split(int32_t node_id);
  int QuadrantOf(const Node& node, const Point& p) const;
  void CollectLeavesRecursive(int32_t node_id,
                              std::vector<LeafRef>* out) const;
  bool CheckNode(int32_t node_id) const;

  int leaf_capacity_;
  int max_depth_;
  size_t size_ = 0;
  std::vector<Node> nodes_;  // nodes_[0] is the root
};

}  // namespace stps

#endif  // STPS_SPATIAL_QUADTREE_H_
