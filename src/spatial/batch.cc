#include "spatial/batch.h"

#include "common/predicates.h"

namespace stps {

namespace {

// Spreads the low 16 bits of v so bit i lands at position 2i.
uint32_t SpreadBits16(uint32_t v) {
  v &= 0xffffu;
  v = (v | (v << 8)) & 0x00ff00ffu;
  v = (v | (v << 4)) & 0x0f0f0f0fu;
  v = (v | (v << 2)) & 0x33333333u;
  v = (v | (v << 1)) & 0x55555555u;
  return v;
}

// 16-bit quantization across [lo, hi]. Monotone and total: NaN-free
// inputs inside the bounds land in [0, 65535]; a degenerate extent (all
// points share the coordinate) maps everything to 0.
uint32_t Quantize16(double v, double lo, double hi) {
  const double extent = hi - lo;
  if (!(extent > 0.0)) return 0;
  const double scaled = (v - lo) / extent * 65536.0;
  if (!(scaled > 0.0)) return 0;
  if (scaled >= 65535.0) return 65535;
  return static_cast<uint32_t>(scaled);
}

}  // namespace

uint64_t ZOrderKey(const Rect& bounds, const Point& p) {
  const uint32_t qx = Quantize16(p.x, bounds.min_x, bounds.max_x);
  const uint32_t qy = Quantize16(p.y, bounds.min_y, bounds.max_y);
  return static_cast<uint64_t>(SpreadBits16(qx)) |
         (static_cast<uint64_t>(SpreadBits16(qy)) << 1);
}

// The scalar loops evaluate WithinEpsLoc on the same dx*dx + dy*dy chain
// as SquaredDistance; in ISO mode (-ffp-contract=off) the compiler may
// vectorize them but not contract mul+add into FMA, so verdicts stay
// bitwise identical to the one-at-a-time predicate.

size_t CountWithinEpsLocScalar(const Point& probe, const double* xs,
                               const double* ys, size_t n, double eps_loc) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = probe.x - xs[i];
    const double dy = probe.y - ys[i];
    count += WithinEpsLoc(dx * dx + dy * dy, eps_loc) ? 1 : 0;
  }
  return count;
}

size_t CollectWithinEpsLocScalar(const Point& probe, const double* xs,
                                 const double* ys, size_t n, double eps_loc,
                                 uint32_t* out) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = probe.x - xs[i];
    const double dy = probe.y - ys[i];
    // Unconditional store + guarded advance keeps the loop branch-light.
    out[count] = static_cast<uint32_t>(i);
    count += WithinEpsLoc(dx * dx + dy * dy, eps_loc) ? 1 : 0;
  }
  return count;
}

size_t CountWithinEpsLocScalar(const Point& probe, const double* xs,
                               const double* ys,
                               std::span<const uint32_t> idx,
                               double eps_loc) {
  size_t count = 0;
  for (const uint32_t i : idx) {
    const double dx = probe.x - xs[i];
    const double dy = probe.y - ys[i];
    count += WithinEpsLoc(dx * dx + dy * dy, eps_loc) ? 1 : 0;
  }
  return count;
}

size_t CollectWithinEpsLocScalar(const Point& probe, const double* xs,
                                 const double* ys,
                                 std::span<const uint32_t> idx,
                                 double eps_loc, uint32_t* out) {
  size_t count = 0;
  for (const uint32_t i : idx) {
    const double dx = probe.x - xs[i];
    const double dy = probe.y - ys[i];
    out[count] = i;
    count += WithinEpsLoc(dx * dx + dy * dy, eps_loc) ? 1 : 0;
  }
  return count;
}

#if defined(STPS_BATCH_HAS_AVX2)
namespace batch_internal {
// Implemented in batch_avx2.cc (the only translation unit built with
// -mavx2, so AVX2 code cannot leak into paths run on older CPUs).
size_t CountWithinEpsLocAvx2(const Point& probe, const double* xs,
                             const double* ys, size_t n, double eps_loc);
size_t CollectWithinEpsLocAvx2(const Point& probe, const double* xs,
                               const double* ys, size_t n, double eps_loc,
                               uint32_t* out);
size_t CountWithinEpsLocAvx2(const Point& probe, const double* xs,
                             const double* ys, std::span<const uint32_t> idx,
                             double eps_loc);
size_t CollectWithinEpsLocAvx2(const Point& probe, const double* xs,
                               const double* ys,
                               std::span<const uint32_t> idx, double eps_loc,
                               uint32_t* out);
}  // namespace batch_internal
#endif  // STPS_BATCH_HAS_AVX2

bool BatchKernelsUseAvx2() {
#if defined(STPS_BATCH_HAS_AVX2) && (defined(__x86_64__) || defined(__i386__))
  static const bool supported = __builtin_cpu_supports("avx2");
  return supported;
#else
  return false;
#endif
}

size_t CountWithinEpsLoc(const Point& probe, const double* xs,
                         const double* ys, size_t n, double eps_loc) {
#if defined(STPS_BATCH_HAS_AVX2)
  if (BatchKernelsUseAvx2()) {
    return batch_internal::CountWithinEpsLocAvx2(probe, xs, ys, n, eps_loc);
  }
#endif
  return CountWithinEpsLocScalar(probe, xs, ys, n, eps_loc);
}

size_t CollectWithinEpsLoc(const Point& probe, const double* xs,
                           const double* ys, size_t n, double eps_loc,
                           uint32_t* out) {
#if defined(STPS_BATCH_HAS_AVX2)
  if (BatchKernelsUseAvx2()) {
    return batch_internal::CollectWithinEpsLocAvx2(probe, xs, ys, n, eps_loc,
                                                   out);
  }
#endif
  return CollectWithinEpsLocScalar(probe, xs, ys, n, eps_loc, out);
}

size_t CountWithinEpsLoc(const Point& probe, const double* xs,
                         const double* ys, std::span<const uint32_t> idx,
                         double eps_loc) {
#if defined(STPS_BATCH_HAS_AVX2)
  if (BatchKernelsUseAvx2()) {
    return batch_internal::CountWithinEpsLocAvx2(probe, xs, ys, idx, eps_loc);
  }
#endif
  return CountWithinEpsLocScalar(probe, xs, ys, idx, eps_loc);
}

size_t CollectWithinEpsLoc(const Point& probe, const double* xs,
                           const double* ys, std::span<const uint32_t> idx,
                           double eps_loc, uint32_t* out) {
#if defined(STPS_BATCH_HAS_AVX2)
  if (BatchKernelsUseAvx2()) {
    return batch_internal::CollectWithinEpsLocAvx2(probe, xs, ys, idx,
                                                   eps_loc, out);
  }
#endif
  return CollectWithinEpsLocScalar(probe, xs, ys, idx, eps_loc, out);
}

}  // namespace stps
