// Spatial joins over rectangle collections.
//
// S-PPJ-D precomputes which eps_loc-extended R-tree leaf MBRs intersect.
// RectSelfJoin provides that via a plane sweep (the classic optimisation
// of Brinkhoff, Kriegel, Seeger, SIGMOD 1993 applied to a flat rectangle
// list); RTreeLeafJoin wires it to a tree's leaves.

#ifndef STPS_SPATIAL_SPATIAL_JOIN_H_
#define STPS_SPATIAL_SPATIAL_JOIN_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "spatial/geometry.h"
#include "spatial/rtree.h"

namespace stps {

/// All index pairs (i, j), i < j, of intersecting rectangles, found with a
/// sweep along the x axis. O(n log n + output), assuming bounded overlap.
std::vector<std::pair<uint32_t, uint32_t>> RectSelfJoin(
    const std::vector<Rect>& rects);

/// All index pairs (i, j) with left[i] intersecting right[j].
std::vector<std::pair<uint32_t, uint32_t>> RectCrossJoin(
    const std::vector<Rect>& left, const std::vector<Rect>& right);

/// Adjacency lists over a tree's leaves: result[l] holds the ordinals of
/// every leaf (including l itself) whose `margin`-extended MBR intersects
/// the `margin`-extended MBR of leaf l, sorted ascending.
std::vector<std::vector<uint32_t>> LeafAdjacency(const RTree& tree,
                                                 double margin);

}  // namespace stps

#endif  // STPS_SPATIAL_SPATIAL_JOIN_H_
