// Sparse uniform grid geometry.
//
// The paper's grid algorithms (PPJ-C, PPJ-B, S-PPJ-*) use a dynamic grid
// whose cell extent equals the spatial threshold eps_loc, with cell ids
// assigned row-wise from the bottom row upwards (Figure 2). Domains can be
// huge relative to eps_loc (e.g. eps_loc = 0.001 over a country-sized
// extent), so the grid is purely *geometric*: it maps points to 64-bit
// cell ids and enumerates neighbour ids without materialising cells.
// Callers keep occupied cells in hash maps / sorted lists.

#ifndef STPS_SPATIAL_GRID_H_
#define STPS_SPATIAL_GRID_H_

#include <cstdint>
#include <vector>

#include "spatial/geometry.h"

namespace stps {

/// Row-major cell identifier: id = row * columns + column.
using CellId = int64_t;

/// Geometry of a uniform grid over a bounding rectangle.
class GridGeometry {
 public:
  /// Covers `bounds` with square cells of side `cell_size`, inflated by a
  /// few ULPs of the coordinate magnitude so that points within
  /// `cell_size` of each other always land in the same or adjacent
  /// rows/columns despite floating-point rounding in the cell assignment
  /// (see grid.cc and the rounding policy in common/predicates.h). A point
  /// exactly on a cell boundary is therefore assigned the lower cell.
  /// Preconditions: cell_size > 0, !bounds.IsEmpty().
  GridGeometry(const Rect& bounds, double cell_size);

  /// Column index of a point (clamped to the grid extent).
  int64_t ColumnOf(const Point& p) const;

  /// Row index of a point (clamped to the grid extent).
  int64_t RowOf(const Point& p) const;

  /// Row-major id of the cell containing `p`.
  CellId CellOf(const Point& p) const {
    return RowOf(p) * columns_ + ColumnOf(p);
  }

  /// Id from explicit coordinates. Precondition: in range.
  CellId IdOf(int64_t column, int64_t row) const {
    return row * columns_ + column;
  }

  int64_t ColumnOf(CellId id) const { return id % columns_; }
  int64_t RowOf(CellId id) const { return id / columns_; }

  int64_t columns() const { return columns_; }
  int64_t rows() const { return rows_; }
  double cell_size() const { return cell_size_; }
  const Rect& bounds() const { return bounds_; }

  /// Appends the ids of the (up to 8) cells adjacent to `id`, plus `id`
  /// itself when `include_self`, clipped to the grid extent. Order is
  /// deterministic: row-major ascending.
  void AppendNeighborhood(CellId id, bool include_self,
                          std::vector<CellId>* out) const;

  /// Appends the adjacent cell ids strictly smaller than `id` (the cells
  /// PPJ-C joins a cell with: W, SW, S, SE).
  void AppendLowerNeighbors(CellId id, std::vector<CellId>* out) const;

  /// Appends the neighbourhood used by the PPJ-B odd-row step: all
  /// adjacent cells except the one directly to the East, plus self.
  void AppendOddRowNeighbors(CellId id, std::vector<CellId>* out) const;

  /// The PPJ-B even-row step neighbourhood: the cell directly to the West
  /// (if any) plus the cell itself. All other adjacencies of an even-row
  /// cell are covered by the odd rows above and below it; the within-cell
  /// pair is covered nowhere else, so self is included here.
  void AppendEvenRowNeighbors(CellId id, std::vector<CellId>* out) const;

 private:
  Rect bounds_;
  double cell_size_;
  int64_t columns_ = 1;
  int64_t rows_ = 1;
};

}  // namespace stps

#endif  // STPS_SPATIAL_GRID_H_
