#include "spatial/spatial_join.h"

#include <algorithm>
#include <numeric>

namespace stps {

namespace {

// Sweep-line core shared by the self and cross joins. Emits every pair of
// rectangles (a from A, b from B) that intersect; `emit` receives original
// indices.
template <typename Emit>
void SweepJoin(const std::vector<Rect>& a, const std::vector<Rect>& b,
               Emit emit) {
  std::vector<uint32_t> order_a(a.size()), order_b(b.size());
  std::iota(order_a.begin(), order_a.end(), 0u);
  std::iota(order_b.begin(), order_b.end(), 0u);
  const auto by_min_x = [](const std::vector<Rect>& rects) {
    return [&rects](uint32_t l, uint32_t r) {
      if (rects[l].min_x != rects[r].min_x)
        return rects[l].min_x < rects[r].min_x;
      return l < r;
    };
  };
  std::sort(order_a.begin(), order_a.end(), by_min_x(a));
  std::sort(order_b.begin(), order_b.end(), by_min_x(b));

  // Classic sweep: advance over both sorted sequences; the rectangle with
  // the smaller min_x scans the other side's rectangles that start before
  // it ends.
  size_t ia = 0, ib = 0;
  while (ia < order_a.size() && ib < order_b.size()) {
    const bool a_first = a[order_a[ia]].min_x <= b[order_b[ib]].min_x;
    if (a_first) {
      const Rect& ra = a[order_a[ia]];
      for (size_t j = ib; j < order_b.size(); ++j) {
        const Rect& rb = b[order_b[j]];
        if (rb.min_x > ra.max_x) break;
        if (ra.min_y <= rb.max_y && rb.min_y <= ra.max_y) {
          emit(order_a[ia], order_b[j]);
        }
      }
      ++ia;
    } else {
      const Rect& rb = b[order_b[ib]];
      for (size_t j = ia; j < order_a.size(); ++j) {
        const Rect& ra = a[order_a[j]];
        if (ra.min_x > rb.max_x) break;
        if (ra.min_y <= rb.max_y && rb.min_y <= ra.max_y) {
          emit(order_a[j], order_b[ib]);
        }
      }
      ++ib;
    }
  }
}

}  // namespace

std::vector<std::pair<uint32_t, uint32_t>> RectSelfJoin(
    const std::vector<Rect>& rects) {
  std::vector<std::pair<uint32_t, uint32_t>> result;
  if (rects.size() < 2) return result;
  std::vector<uint32_t> order(rects.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&rects](uint32_t l, uint32_t r) {
    if (rects[l].min_x != rects[r].min_x)
      return rects[l].min_x < rects[r].min_x;
    return l < r;
  });
  for (size_t i = 0; i < order.size(); ++i) {
    const Rect& ri = rects[order[i]];
    for (size_t j = i + 1; j < order.size(); ++j) {
      const Rect& rj = rects[order[j]];
      if (rj.min_x > ri.max_x) break;
      if (ri.min_y <= rj.max_y && rj.min_y <= ri.max_y) {
        result.emplace_back(std::min(order[i], order[j]),
                            std::max(order[i], order[j]));
      }
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<std::pair<uint32_t, uint32_t>> RectCrossJoin(
    const std::vector<Rect>& left, const std::vector<Rect>& right) {
  std::vector<std::pair<uint32_t, uint32_t>> result;
  if (left.empty() || right.empty()) return result;
  SweepJoin(left, right,
            [&result](uint32_t i, uint32_t j) { result.emplace_back(i, j); });
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<std::vector<uint32_t>> LeafAdjacency(const RTree& tree,
                                                 double margin) {
  const std::vector<RTree::LeafRef> leaves = tree.CollectLeaves();
  std::vector<Rect> extended;
  extended.reserve(leaves.size());
  for (const RTree::LeafRef& leaf : leaves) {
    extended.push_back(leaf.mbr.Extended(margin));
  }
  std::vector<std::vector<uint32_t>> adjacency(leaves.size());
  for (uint32_t l = 0; l < leaves.size(); ++l) adjacency[l].push_back(l);
  for (const auto& [i, j] : RectSelfJoin(extended)) {
    adjacency[i].push_back(j);
    adjacency[j].push_back(i);
  }
  for (auto& list : adjacency) std::sort(list.begin(), list.end());
  return adjacency;
}

}  // namespace stps
