// R-tree over 2-D points (Guttman, SIGMOD 1984) with STR bulk loading
// (Leutenegger et al.) and quadratic-split insertion.
//
// S-PPJ-D treats the R-tree leaves as a data-driven partitioning of the
// object database; the `fanout` parameter studied in the paper's Figure 6
// is the node capacity. The tree also supports range queries, used by the
// substrate tests and the examples.

#ifndef STPS_SPATIAL_RTREE_H_
#define STPS_SPATIAL_RTREE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/macros.h"
#include "spatial/geometry.h"

namespace stps {

/// An R-tree indexing points with opaque uint32 payloads.
class RTree {
 public:
  /// A stored (point, payload) pair.
  struct Entry {
    Point point;
    uint32_t value = 0;
  };

  /// A leaf node exposed to partition-based algorithms (S-PPJ-D).
  struct LeafRef {
    /// Dense ordinal in left-to-right tree order; stable until the next
    /// mutation of the tree.
    uint32_t ordinal = 0;
    Rect mbr;
    std::span<const Entry> entries;
  };

  /// Creates an empty tree. Precondition: fanout >= 2.
  explicit RTree(int fanout);

  RTree(RTree&&) = default;
  RTree& operator=(RTree&&) = default;

  /// Builds a tree over `entries` with Sort-Tile-Recursive packing.
  static RTree BulkLoad(std::vector<Entry> entries, int fanout);

  /// Inserts one point (Guttman: least-enlargement descent, quadratic
  /// split on overflow).
  void Insert(const Point& point, uint32_t value);

  /// Appends the payloads of all points inside `query` to `out`.
  void RangeQuery(const Rect& query, std::vector<uint32_t>* out) const;

  /// Appends the payloads of all points within distance `eps` of `center`.
  void RadiusQuery(const Point& center, double eps,
                   std::vector<uint32_t>* out) const;

  /// Branch-and-bound nearest neighbour. Returns false on an empty tree;
  /// otherwise stores the closest stored point (ties: first encountered)
  /// and its payload/distance.
  bool NearestNeighbor(const Point& query, Point* nearest, uint32_t* value,
                       double* distance) const;

  /// Number of stored points.
  size_t size() const { return size_; }

  /// Node capacity.
  int fanout() const { return fanout_; }

  /// Tree height (0 for an empty tree, 1 when the root is a leaf).
  int Height() const;

  /// Collects all leaves in left-to-right order. The spans point into the
  /// tree and are invalidated by Insert.
  std::vector<LeafRef> CollectLeaves() const;

  /// Root MBR; Rect::Empty() for an empty tree.
  Rect RootMbr() const;

  /// Verifies structural invariants (MBR containment, fanout bounds,
  /// uniform leaf depth). Returns true when consistent. For tests.
  bool CheckInvariants() const;

 private:
  struct Node {
    Rect mbr = Rect::Empty();
    bool is_leaf = true;
    std::vector<int32_t> children;  // internal nodes
    std::vector<Entry> entries;     // leaves
  };

  int32_t NewNode(bool is_leaf);
  // Returns the id of a newly created sibling when `node_id` split.
  int32_t InsertRecursive(int32_t node_id, const Entry& entry);
  int32_t SplitLeaf(int32_t node_id);
  int32_t SplitInternal(int32_t node_id);
  void CollectLeavesRecursive(int32_t node_id,
                              std::vector<LeafRef>* out) const;
  void RangeQueryRecursive(int32_t node_id, const Rect& query,
                           std::vector<uint32_t>* out) const;
  bool CheckNode(int32_t node_id, int depth, int leaf_depth) const;
  int DepthOfLeftmostLeaf() const;

  int fanout_;
  size_t size_ = 0;
  int32_t root_ = -1;
  std::vector<Node> nodes_;
};

}  // namespace stps

#endif  // STPS_SPATIAL_RTREE_H_
