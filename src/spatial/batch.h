// Data-oriented spatial filter kernels.
//
// The S-PPJ grid probes are the hot loop of every join variant: one probe
// object against the objects of one cell (or leaf) block. This header
// provides batched forms of the eps_loc predicate that stream the
// structure-of-arrays coordinate buffers built by DatabaseBuilder /
// MakeUserLayout instead of chasing STObject pointers, plus the Z-order
// key those layouts are clustered by.
//
// Exactness contract: every kernel returns *identical verdicts* to the
// scalar predicate chain
//     WithinEpsLoc(SquaredDistance(probe, q), eps_loc)
// of common/predicates.h / spatial/geometry.h — the same subtractions,
// the same two multiplies, the same add, each rounded once, compared
// against the same once-rounded eps_loc * eps_loc. The AVX2 path uses
// explicit mul/mul/add (never FMA: contraction would skip a rounding and
// flip boundary verdicts), and the scalar fallback compiles in ISO mode
// (-ffp-contract=off), so the boundary-oracle suite holds with zero
// tolerance on either path.
//
// Dispatch policy (mirrors the -mpopcnt handling in the top-level
// CMakeLists): batch_avx2.cc is compiled with -mavx2 only when the
// compiler knows the flag (STPS_BATCH_HAS_AVX2), and the AVX2 entry
// points are selected at runtime via __builtin_cpu_supports("avx2"),
// cached after the first call. Everything else falls back to the scalar
// loops below, which GCC auto-vectorizes where profitable.

#ifndef STPS_SPATIAL_BATCH_H_
#define STPS_SPATIAL_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <span>

#include "spatial/geometry.h"

namespace stps {

/// 32-bit Morton (Z-order) key of `p` over `bounds`: each coordinate is
/// quantized to 16 bits across the bounds extent (degenerate extents map
/// to 0) and the bits are interleaved, y in the odd positions. Sorting
/// points by this key clusters spatial neighbours in memory, which is
/// what makes the cell blocks the batch kernels stream contiguous. The
/// key is eps_loc-agnostic: one layout serves every query threshold.
uint64_t ZOrderKey(const Rect& bounds, const Point& p);

/// Number of points among (xs[i], ys[i]), i in [0, n), within eps_loc of
/// `probe` (boundary inclusive, exact per the contract above).
size_t CountWithinEpsLoc(const Point& probe, const double* xs,
                         const double* ys, size_t n, double eps_loc);

/// Writes the positions i (ascending) of every point within eps_loc of
/// `probe` into out[0..result). `out` must have room for n entries.
size_t CollectWithinEpsLoc(const Point& probe, const double* xs,
                           const double* ys, size_t n, double eps_loc,
                           uint32_t* out);

/// Gather form: counts over the subset xs[idx[j]] for j in [0, idx.size()).
size_t CountWithinEpsLoc(const Point& probe, const double* xs,
                         const double* ys, std::span<const uint32_t> idx,
                         double eps_loc);

/// Gather form: writes the *index values* idx[j] (in idx order) of every
/// selected point into out[0..result). `out` must have room for
/// idx.size() entries.
size_t CollectWithinEpsLoc(const Point& probe, const double* xs,
                           const double* ys, std::span<const uint32_t> idx,
                           double eps_loc, uint32_t* out);

/// Scalar reference implementations, always available — the differential
/// test and the benchmarks compare the dispatched kernels against these.
size_t CountWithinEpsLocScalar(const Point& probe, const double* xs,
                               const double* ys, size_t n, double eps_loc);
size_t CollectWithinEpsLocScalar(const Point& probe, const double* xs,
                                 const double* ys, size_t n, double eps_loc,
                                 uint32_t* out);
size_t CountWithinEpsLocScalar(const Point& probe, const double* xs,
                               const double* ys,
                               std::span<const uint32_t> idx, double eps_loc);
size_t CollectWithinEpsLocScalar(const Point& probe, const double* xs,
                                 const double* ys,
                                 std::span<const uint32_t> idx,
                                 double eps_loc, uint32_t* out);

/// True when the dispatched kernels run the AVX2 path on this machine
/// (compiled in and supported by the CPU).
bool BatchKernelsUseAvx2();

}  // namespace stps

#endif  // STPS_SPATIAL_BATCH_H_
