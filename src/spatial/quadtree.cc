#include "spatial/quadtree.h"

#include <algorithm>

namespace stps {

QuadTree::QuadTree(const Rect& bounds, int leaf_capacity, int max_depth)
    : leaf_capacity_(leaf_capacity), max_depth_(max_depth) {
  STPS_CHECK(leaf_capacity >= 1);
  STPS_CHECK(max_depth >= 1);
  STPS_CHECK(!bounds.IsEmpty());
  nodes_.push_back(Node{bounds, 1, {-1, -1, -1, -1}, {}});
}

QuadTree QuadTree::Build(std::vector<Entry> entries, int leaf_capacity,
                         int max_depth) {
  Rect bounds = Rect::Empty();
  for (const Entry& e : entries) bounds.ExpandToInclude(e.point);
  if (bounds.IsEmpty()) bounds = {0, 0, 1, 1};
  QuadTree tree(bounds, leaf_capacity, max_depth);
  for (const Entry& e : entries) tree.Insert(e.point, e.value);
  return tree;
}

int32_t QuadTree::NewNode(const Rect& region, int depth) {
  nodes_.push_back(Node{region, depth, {-1, -1, -1, -1}, {}});
  return static_cast<int32_t>(nodes_.size() - 1);
}

int QuadTree::QuadrantOf(const Node& node, const Point& p) const {
  const double mid_x = (node.region.min_x + node.region.max_x) / 2;
  const double mid_y = (node.region.min_y + node.region.max_y) / 2;
  const int east = p.x > mid_x ? 1 : 0;
  const int north = p.y > mid_y ? 2 : 0;
  return east + north;
}

void QuadTree::Insert(const Point& point, uint32_t value) {
  Entry entry{point, value};
  // Clamp stray points onto the root region so they are never lost.
  const Rect& root = nodes_[0].region;
  entry.point.x = std::clamp(entry.point.x, root.min_x, root.max_x);
  entry.point.y = std::clamp(entry.point.y, root.min_y, root.max_y);
  InsertInto(0, entry);
  ++size_;
}

void QuadTree::InsertInto(int32_t node_id, Entry entry) {
  for (;;) {
    Node& node = nodes_[node_id];
    if (!node.is_leaf()) {
      node_id = node.children[QuadrantOf(node, entry.point)];
      continue;
    }
    node.entries.push_back(entry);
    if (node.entries.size() > static_cast<size_t>(leaf_capacity_) &&
        node.depth < max_depth_) {
      Split(node_id);
    }
    return;
  }
}

void QuadTree::Split(int32_t node_id) {
  // Note: NewNode may reallocate nodes_, so copy what we need first.
  const Rect region = nodes_[node_id].region;
  const int depth = nodes_[node_id].depth;
  std::vector<Entry> entries = std::move(nodes_[node_id].entries);
  nodes_[node_id].entries.clear();

  const double mid_x = (region.min_x + region.max_x) / 2;
  const double mid_y = (region.min_y + region.max_y) / 2;
  const Rect quadrants[4] = {
      {region.min_x, region.min_y, mid_x, mid_y},  // SW
      {mid_x, region.min_y, region.max_x, mid_y},  // SE
      {region.min_x, mid_y, mid_x, region.max_y},  // NW
      {mid_x, mid_y, region.max_x, region.max_y},  // NE
  };
  int32_t child_ids[4];
  for (int q = 0; q < 4; ++q) {
    child_ids[q] = NewNode(quadrants[q], depth + 1);
  }
  for (int q = 0; q < 4; ++q) nodes_[node_id].children[q] = child_ids[q];
  for (Entry& e : entries) {
    const int q = QuadrantOf(nodes_[node_id], e.point);
    InsertInto(nodes_[node_id].children[q], e);
  }
}

void QuadTree::RangeQuery(const Rect& query,
                          std::vector<uint32_t>* out) const {
  if (size_ == 0) return;
  std::vector<int32_t> stack = {0};
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    if (!node.region.Intersects(query)) continue;
    if (node.is_leaf()) {
      for (const Entry& e : node.entries) {
        if (query.Contains(e.point)) out->push_back(e.value);
      }
    } else {
      for (const int32_t child : node.children) stack.push_back(child);
    }
  }
}

std::vector<QuadTree::LeafRef> QuadTree::CollectLeaves() const {
  std::vector<LeafRef> out;
  CollectLeavesRecursive(0, &out);
  return out;
}

void QuadTree::CollectLeavesRecursive(int32_t node_id,
                                      std::vector<LeafRef>* out) const {
  const Node& node = nodes_[node_id];
  if (node.is_leaf()) {
    if (node.entries.empty()) return;  // skip empty quadrants
    LeafRef ref;
    ref.ordinal = static_cast<uint32_t>(out->size());
    ref.region = node.region;
    ref.mbr = Rect::Empty();
    for (const Entry& e : node.entries) ref.mbr.ExpandToInclude(e.point);
    ref.entries = std::span<const Entry>(node.entries);
    out->push_back(ref);
    return;
  }
  for (const int32_t child : node.children) {
    CollectLeavesRecursive(child, out);
  }
}

bool QuadTree::CheckInvariants() const {
  size_t total = 0;
  for (const LeafRef& leaf : CollectLeaves()) total += leaf.entries.size();
  if (total != size_) return false;
  return CheckNode(0);
}

bool QuadTree::CheckNode(int32_t node_id) const {
  const Node& node = nodes_[node_id];
  if (node.is_leaf()) {
    if (node.entries.size() > static_cast<size_t>(leaf_capacity_) &&
        node.depth < max_depth_) {
      return false;  // should have split
    }
    for (const Entry& e : node.entries) {
      if (!node.region.Contains(e.point)) return false;
    }
    return true;
  }
  for (const int32_t child : node.children) {
    if (child < 0) return false;  // partially-split node
    if (!node.region.ContainsRect(nodes_[child].region)) return false;
    if (nodes_[child].depth != node.depth + 1) return false;
    if (!CheckNode(child)) return false;
  }
  return true;
}

}  // namespace stps
