// Planar geometry primitives: points, axis-aligned rectangles, distances.

#ifndef STPS_SPATIAL_GEOMETRY_H_
#define STPS_SPATIAL_GEOMETRY_H_

#include <cmath>

#include "common/predicates.h"

namespace stps {

/// A 2-D point (e.g. lon/lat treated as planar coordinates, as in the
/// paper's Euclidean-distance model).
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
};

/// Squared Euclidean distance (avoids the sqrt on hot paths).
inline double SquaredDistance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Euclidean distance.
inline double Distance(const Point& a, const Point& b) {
  return std::sqrt(SquaredDistance(a, b));
}

/// True iff dist(a, b) <= eps, computed without a sqrt. This is the one
/// spatial verification predicate (common/predicates.h): every layer
/// compares the same SquaredDistance form against the same rounded square,
/// so no two layers can disagree at the eps_loc boundary.
inline bool WithinDistance(const Point& a, const Point& b, double eps) {
  return WithinEpsLoc(SquaredDistance(a, b), eps);
}

/// Axis-aligned rectangle [min_x, max_x] x [min_y, max_y].
struct Rect {
  double min_x = 0.0;
  double min_y = 0.0;
  double max_x = 0.0;
  double max_y = 0.0;

  /// The degenerate rectangle covering a single point.
  static Rect FromPoint(const Point& p) { return {p.x, p.y, p.x, p.y}; }

  /// An "empty" rectangle that is the identity for ExpandToInclude.
  static Rect Empty();

  /// True when this rectangle is the Empty() sentinel.
  bool IsEmpty() const { return min_x > max_x || min_y > max_y; }

  /// True when `p` lies inside or on the boundary.
  bool Contains(const Point& p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }

  /// True when `other` lies fully inside this rectangle.
  bool ContainsRect(const Rect& other) const {
    return other.min_x >= min_x && other.max_x <= max_x &&
           other.min_y >= min_y && other.max_y <= max_y;
  }

  /// True when the closed rectangles share at least one point.
  bool Intersects(const Rect& other) const {
    return min_x <= other.max_x && other.min_x <= max_x &&
           min_y <= other.max_y && other.min_y <= max_y;
  }

  /// The intersection rectangle; result.IsEmpty() when disjoint.
  Rect Intersection(const Rect& other) const;

  /// Grows the rectangle to cover `p`.
  void ExpandToInclude(const Point& p);

  /// Grows the rectangle to cover `other`.
  void ExpandToInclude(const Rect& other);

  /// The rectangle enlarged by `margin` on every side (the paper's
  /// eps_loc-extended MBR). A *filter* box: each side rounds outward one
  /// ULP (common/predicates.h rounding policy), so the result provably
  /// covers every point within `margin` of the rectangle — round-to-nearest
  /// subtraction alone could fall short of `min_x - margin` and silently
  /// exclude a boundary point from a downstream exact check.
  Rect Extended(double margin) const {
    return {SubRoundDown(min_x, margin), SubRoundDown(min_y, margin),
            AddRoundUp(max_x, margin), AddRoundUp(max_y, margin)};
  }

  /// Area; 0 for degenerate rectangles.
  double Area() const {
    if (IsEmpty()) return 0.0;
    return (max_x - min_x) * (max_y - min_y);
  }

  /// Semi-perimeter growth if `other` were merged in (R-tree heuristic).
  double EnlargementFor(const Rect& other) const;

  friend bool operator==(const Rect& a, const Rect& b) {
    return a.min_x == b.min_x && a.min_y == b.min_y && a.max_x == b.max_x &&
           a.max_y == b.max_y;
  }
};

/// Minimum distance from point `p` to rectangle `r` (0 when inside).
double MinDistance(const Point& p, const Rect& r);

}  // namespace stps

#endif  // STPS_SPATIAL_GEOMETRY_H_
