#include "spatial/geometry.h"

#include <algorithm>
#include <limits>

namespace stps {

Rect Rect::Empty() {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  return {kInf, kInf, -kInf, -kInf};
}

Rect Rect::Intersection(const Rect& other) const {
  Rect r;
  r.min_x = std::max(min_x, other.min_x);
  r.min_y = std::max(min_y, other.min_y);
  r.max_x = std::min(max_x, other.max_x);
  r.max_y = std::min(max_y, other.max_y);
  return r;
}

void Rect::ExpandToInclude(const Point& p) {
  min_x = std::min(min_x, p.x);
  min_y = std::min(min_y, p.y);
  max_x = std::max(max_x, p.x);
  max_y = std::max(max_y, p.y);
}

void Rect::ExpandToInclude(const Rect& other) {
  if (other.IsEmpty()) return;
  min_x = std::min(min_x, other.min_x);
  min_y = std::min(min_y, other.min_y);
  max_x = std::max(max_x, other.max_x);
  max_y = std::max(max_y, other.max_y);
}

double Rect::EnlargementFor(const Rect& other) const {
  Rect merged = *this;
  merged.ExpandToInclude(other);
  return merged.Area() - Area();
}

double MinDistance(const Point& p, const Rect& r) {
  const double dx = std::max({r.min_x - p.x, 0.0, p.x - r.max_x});
  const double dy = std::max({r.min_y - p.y, 0.0, p.y - r.max_y});
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace stps
