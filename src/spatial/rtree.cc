#include "spatial/rtree.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace stps {

namespace {

// Guttman's quadratic split: pick the two rectangles wasting the most area
// as seeds, then assign the rest by strongest preference. `rects` holds the
// bounding rectangle of each item. Returns the item indices for each group.
void QuadraticSplit(const std::vector<Rect>& rects, int min_fill,
                    std::vector<uint32_t>* group_a,
                    std::vector<uint32_t>* group_b) {
  const size_t n = rects.size();
  STPS_CHECK(n >= 2);
  // Seed selection: maximise dead area of the pair's bounding box.
  size_t seed_a = 0, seed_b = 1;
  double worst = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      Rect merged = rects[i];
      merged.ExpandToInclude(rects[j]);
      const double dead = merged.Area() - rects[i].Area() - rects[j].Area();
      if (dead > worst) {
        worst = dead;
        seed_a = i;
        seed_b = j;
      }
    }
  }
  group_a->clear();
  group_b->clear();
  group_a->push_back(static_cast<uint32_t>(seed_a));
  group_b->push_back(static_cast<uint32_t>(seed_b));
  Rect mbr_a = rects[seed_a];
  Rect mbr_b = rects[seed_b];

  std::vector<bool> assigned(n, false);
  assigned[seed_a] = assigned[seed_b] = true;
  size_t remaining = n - 2;
  while (remaining > 0) {
    // Force-assign when one group must take everything left to reach the
    // minimum fill.
    if (group_a->size() + remaining == static_cast<size_t>(min_fill)) {
      for (size_t i = 0; i < n; ++i) {
        if (!assigned[i]) {
          group_a->push_back(static_cast<uint32_t>(i));
          assigned[i] = true;
        }
      }
      break;
    }
    if (group_b->size() + remaining == static_cast<size_t>(min_fill)) {
      for (size_t i = 0; i < n; ++i) {
        if (!assigned[i]) {
          group_b->push_back(static_cast<uint32_t>(i));
          assigned[i] = true;
        }
      }
      break;
    }
    // Pick the unassigned item with the greatest preference difference.
    size_t best = n;
    double best_diff = -1.0;
    double best_da = 0.0, best_db = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (assigned[i]) continue;
      const double da = mbr_a.EnlargementFor(rects[i]);
      const double db = mbr_b.EnlargementFor(rects[i]);
      const double diff = std::abs(da - db);
      if (diff > best_diff) {
        best_diff = diff;
        best = i;
        best_da = da;
        best_db = db;
      }
    }
    STPS_DCHECK(best < n);
    bool to_a;
    if (best_da != best_db) {
      to_a = best_da < best_db;
    } else if (mbr_a.Area() != mbr_b.Area()) {
      to_a = mbr_a.Area() < mbr_b.Area();
    } else {
      to_a = group_a->size() <= group_b->size();
    }
    if (to_a) {
      group_a->push_back(static_cast<uint32_t>(best));
      mbr_a.ExpandToInclude(rects[best]);
    } else {
      group_b->push_back(static_cast<uint32_t>(best));
      mbr_b.ExpandToInclude(rects[best]);
    }
    assigned[best] = true;
    --remaining;
  }
}

}  // namespace

RTree::RTree(int fanout) : fanout_(fanout) { STPS_CHECK(fanout >= 2); }

int32_t RTree::NewNode(bool is_leaf) {
  nodes_.emplace_back();
  nodes_.back().is_leaf = is_leaf;
  return static_cast<int32_t>(nodes_.size() - 1);
}

RTree RTree::BulkLoad(std::vector<Entry> entries, int fanout) {
  RTree tree(fanout);
  tree.size_ = entries.size();
  if (entries.empty()) return tree;

  // STR leaf packing: sort by x, cut into ceil(sqrt(P)) vertical slabs,
  // sort each slab by y, cut into runs of `fanout`.
  const size_t n = entries.size();
  const size_t leaves = (n + fanout - 1) / fanout;
  const size_t slabs =
      std::max<size_t>(1, static_cast<size_t>(std::ceil(std::sqrt(
                              static_cast<double>(leaves)))));
  const size_t slab_capacity =
      ((leaves + slabs - 1) / slabs) * static_cast<size_t>(fanout);
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              if (a.point.x != b.point.x) return a.point.x < b.point.x;
              return a.point.y < b.point.y;
            });

  std::vector<int32_t> level;  // current level's node ids
  for (size_t slab_start = 0; slab_start < n; slab_start += slab_capacity) {
    const size_t slab_end = std::min(n, slab_start + slab_capacity);
    std::sort(entries.begin() + slab_start, entries.begin() + slab_end,
              [](const Entry& a, const Entry& b) {
                if (a.point.y != b.point.y) return a.point.y < b.point.y;
                return a.point.x < b.point.x;
              });
    for (size_t run = slab_start; run < slab_end;
         run += static_cast<size_t>(fanout)) {
      const size_t run_end = std::min(slab_end, run + fanout);
      const int32_t leaf = tree.NewNode(/*is_leaf=*/true);
      Node& node = tree.nodes_[leaf];
      node.entries.assign(entries.begin() + run, entries.begin() + run_end);
      for (const Entry& e : node.entries) node.mbr.ExpandToInclude(e.point);
      level.push_back(leaf);
    }
  }

  // Pack upper levels with the same STR strategy over node MBR centres.
  while (level.size() > 1) {
    std::sort(level.begin(), level.end(), [&tree](int32_t a, int32_t b) {
      const Rect& ra = tree.nodes_[a].mbr;
      const Rect& rb = tree.nodes_[b].mbr;
      const double ax = (ra.min_x + ra.max_x) / 2;
      const double bx = (rb.min_x + rb.max_x) / 2;
      if (ax != bx) return ax < bx;
      return (ra.min_y + ra.max_y) / 2 < (rb.min_y + rb.max_y) / 2;
    });
    const size_t count = level.size();
    const size_t parents = (count + fanout - 1) / fanout;
    const size_t parent_slabs =
        std::max<size_t>(1, static_cast<size_t>(std::ceil(std::sqrt(
                                static_cast<double>(parents)))));
    const size_t parent_slab_capacity =
        ((parents + parent_slabs - 1) / parent_slabs) *
        static_cast<size_t>(fanout);
    std::vector<int32_t> next_level;
    for (size_t slab_start = 0; slab_start < count;
         slab_start += parent_slab_capacity) {
      const size_t slab_end = std::min(count, slab_start +
                                                  parent_slab_capacity);
      std::sort(level.begin() + slab_start, level.begin() + slab_end,
                [&tree](int32_t a, int32_t b) {
                  const Rect& ra = tree.nodes_[a].mbr;
                  const Rect& rb = tree.nodes_[b].mbr;
                  const double ay = (ra.min_y + ra.max_y) / 2;
                  const double by = (rb.min_y + rb.max_y) / 2;
                  if (ay != by) return ay < by;
                  return (ra.min_x + ra.max_x) / 2 <
                         (rb.min_x + rb.max_x) / 2;
                });
      for (size_t run = slab_start; run < slab_end;
           run += static_cast<size_t>(fanout)) {
        const size_t run_end = std::min(slab_end, run + fanout);
        const int32_t parent = tree.NewNode(/*is_leaf=*/false);
        Node& node = tree.nodes_[parent];
        node.children.assign(level.begin() + run, level.begin() + run_end);
        for (const int32_t child : node.children) {
          node.mbr.ExpandToInclude(tree.nodes_[child].mbr);
        }
        next_level.push_back(parent);
      }
    }
    level = std::move(next_level);
  }
  tree.root_ = level.front();
  return tree;
}

void RTree::Insert(const Point& point, uint32_t value) {
  const Entry entry{point, value};
  if (root_ < 0) {
    root_ = NewNode(/*is_leaf=*/true);
    nodes_[root_].entries.push_back(entry);
    nodes_[root_].mbr = Rect::FromPoint(point);
    size_ = 1;
    return;
  }
  const int32_t sibling = InsertRecursive(root_, entry);
  if (sibling >= 0) {
    const int32_t new_root = NewNode(/*is_leaf=*/false);
    nodes_[new_root].children = {root_, sibling};
    nodes_[new_root].mbr = nodes_[root_].mbr;
    nodes_[new_root].mbr.ExpandToInclude(nodes_[sibling].mbr);
    root_ = new_root;
  }
  ++size_;
}

int32_t RTree::InsertRecursive(int32_t node_id, const Entry& entry) {
  Node& node = nodes_[node_id];
  node.mbr.ExpandToInclude(entry.point);
  if (node.is_leaf) {
    node.entries.push_back(entry);
    if (node.entries.size() > static_cast<size_t>(fanout_)) {
      return SplitLeaf(node_id);
    }
    return -1;
  }
  // Choose the child needing the least enlargement (ties: smaller area).
  const Rect point_rect = Rect::FromPoint(entry.point);
  int32_t best_child = -1;
  double best_enlargement = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  for (const int32_t child : node.children) {
    const double enlargement = nodes_[child].mbr.EnlargementFor(point_rect);
    const double area = nodes_[child].mbr.Area();
    if (enlargement < best_enlargement ||
        (enlargement == best_enlargement && area < best_area)) {
      best_enlargement = enlargement;
      best_area = area;
      best_child = child;
    }
  }
  const int32_t split = InsertRecursive(best_child, entry);
  if (split >= 0) {
    // Re-fetch: InsertRecursive may have reallocated nodes_.
    Node& self = nodes_[node_id];
    self.children.push_back(split);
    self.mbr.ExpandToInclude(nodes_[split].mbr);
    if (self.children.size() > static_cast<size_t>(fanout_)) {
      return SplitInternal(node_id);
    }
  }
  return -1;
}

int32_t RTree::SplitLeaf(int32_t node_id) {
  const int min_fill = std::max(1, fanout_ * 2 / 5);
  std::vector<Entry> items = std::move(nodes_[node_id].entries);
  std::vector<Rect> rects;
  rects.reserve(items.size());
  for (const Entry& e : items) rects.push_back(Rect::FromPoint(e.point));
  std::vector<uint32_t> group_a, group_b;
  QuadraticSplit(rects, min_fill, &group_a, &group_b);

  const int32_t sibling = NewNode(/*is_leaf=*/true);
  Node& self = nodes_[node_id];
  Node& other = nodes_[sibling];
  self.entries.clear();
  self.mbr = Rect::Empty();
  for (const uint32_t i : group_a) {
    self.entries.push_back(items[i]);
    self.mbr.ExpandToInclude(items[i].point);
  }
  for (const uint32_t i : group_b) {
    other.entries.push_back(items[i]);
    other.mbr.ExpandToInclude(items[i].point);
  }
  return sibling;
}

int32_t RTree::SplitInternal(int32_t node_id) {
  const int min_fill = std::max(1, fanout_ * 2 / 5);
  std::vector<int32_t> items = std::move(nodes_[node_id].children);
  std::vector<Rect> rects;
  rects.reserve(items.size());
  for (const int32_t child : items) rects.push_back(nodes_[child].mbr);
  std::vector<uint32_t> group_a, group_b;
  QuadraticSplit(rects, min_fill, &group_a, &group_b);

  const int32_t sibling = NewNode(/*is_leaf=*/false);
  Node& self = nodes_[node_id];
  Node& other = nodes_[sibling];
  self.children.clear();
  self.mbr = Rect::Empty();
  for (const uint32_t i : group_a) {
    self.children.push_back(items[i]);
    self.mbr.ExpandToInclude(rects[i]);
  }
  for (const uint32_t i : group_b) {
    other.children.push_back(items[i]);
    other.mbr.ExpandToInclude(rects[i]);
  }
  return sibling;
}

void RTree::RangeQuery(const Rect& query,
                       std::vector<uint32_t>* out) const {
  if (root_ < 0) return;
  RangeQueryRecursive(root_, query, out);
}

void RTree::RangeQueryRecursive(int32_t node_id, const Rect& query,
                                std::vector<uint32_t>* out) const {
  const Node& node = nodes_[node_id];
  if (!node.mbr.Intersects(query)) return;
  if (node.is_leaf) {
    for (const Entry& e : node.entries) {
      if (query.Contains(e.point)) out->push_back(e.value);
    }
    return;
  }
  for (const int32_t child : node.children) {
    RangeQueryRecursive(child, query, out);
  }
}

void RTree::RadiusQuery(const Point& center, double eps,
                        std::vector<uint32_t>* out) const {
  if (root_ < 0) return;
  // Filter box: rounds outward (common/predicates.h) so it provably covers
  // the eps-disc; the exact WithinDistance check below decides membership.
  const Rect box{SubRoundDown(center.x, eps), SubRoundDown(center.y, eps),
                 AddRoundUp(center.x, eps), AddRoundUp(center.y, eps)};
  std::vector<int32_t> stack = {root_};
  while (!stack.empty()) {
    const int32_t node_id = stack.back();
    stack.pop_back();
    const Node& node = nodes_[node_id];
    if (!node.mbr.Intersects(box)) continue;
    if (node.is_leaf) {
      for (const Entry& e : node.entries) {
        if (WithinDistance(e.point, center, eps)) out->push_back(e.value);
      }
    } else {
      for (const int32_t child : node.children) stack.push_back(child);
    }
  }
}

bool RTree::NearestNeighbor(const Point& query, Point* nearest,
                            uint32_t* value, double* distance) const {
  if (root_ < 0 || size_ == 0) return false;
  double best = std::numeric_limits<double>::infinity();
  Point best_point;
  uint32_t best_value = 0;
  // Depth-first branch and bound: descend children in increasing MBR
  // distance, prune subtrees farther than the current best.
  struct Frame {
    int32_t node;
    double min_dist;
  };
  std::vector<Frame> stack = {{root_, MinDistance(query, nodes_[root_].mbr)}};
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    if (frame.min_dist >= best) continue;
    const Node& node = nodes_[frame.node];
    if (node.is_leaf) {
      for (const Entry& e : node.entries) {
        const double d = Distance(e.point, query);
        if (d < best) {
          best = d;
          best_point = e.point;
          best_value = e.value;
        }
      }
      continue;
    }
    // Push children sorted so the closest is expanded first (it ends up
    // on top of the stack).
    std::vector<Frame> children;
    children.reserve(node.children.size());
    for (const int32_t child : node.children) {
      const double d = MinDistance(query, nodes_[child].mbr);
      if (d < best) children.push_back({child, d});
    }
    std::sort(children.begin(), children.end(),
              [](const Frame& a, const Frame& b) {
                return a.min_dist > b.min_dist;
              });
    stack.insert(stack.end(), children.begin(), children.end());
  }
  if (nearest != nullptr) *nearest = best_point;
  if (value != nullptr) *value = best_value;
  if (distance != nullptr) *distance = best;
  return true;
}

int RTree::Height() const {
  if (root_ < 0) return 0;
  return DepthOfLeftmostLeaf();
}

int RTree::DepthOfLeftmostLeaf() const {
  int depth = 1;
  int32_t node = root_;
  while (!nodes_[node].is_leaf) {
    node = nodes_[node].children.front();
    ++depth;
  }
  return depth;
}

std::vector<RTree::LeafRef> RTree::CollectLeaves() const {
  std::vector<LeafRef> out;
  if (root_ >= 0) CollectLeavesRecursive(root_, &out);
  return out;
}

void RTree::CollectLeavesRecursive(int32_t node_id,
                                   std::vector<LeafRef>* out) const {
  const Node& node = nodes_[node_id];
  if (node.is_leaf) {
    LeafRef ref;
    ref.ordinal = static_cast<uint32_t>(out->size());
    ref.mbr = node.mbr;
    ref.entries = std::span<const Entry>(node.entries);
    out->push_back(ref);
    return;
  }
  for (const int32_t child : node.children) {
    CollectLeavesRecursive(child, out);
  }
}

Rect RTree::RootMbr() const {
  if (root_ < 0) return Rect::Empty();
  return nodes_[root_].mbr;
}

bool RTree::CheckInvariants() const {
  if (root_ < 0) return size_ == 0;
  const int leaf_depth = DepthOfLeftmostLeaf();
  if (!CheckNode(root_, 1, leaf_depth)) return false;
  // Entry count must match size().
  size_t total = 0;
  for (const LeafRef& leaf : CollectLeaves()) total += leaf.entries.size();
  return total == size_;
}

bool RTree::CheckNode(int32_t node_id, int depth, int leaf_depth) const {
  const Node& node = nodes_[node_id];
  if (node.is_leaf) {
    if (depth != leaf_depth) return false;
    if (node_id != root_ && node.entries.empty()) return false;
    if (node.entries.size() > static_cast<size_t>(fanout_)) return false;
    Rect mbr = Rect::Empty();
    for (const Entry& e : node.entries) mbr.ExpandToInclude(e.point);
    return node.entries.empty() ? node.mbr.IsEmpty() || size_ == 0
                                : mbr == node.mbr;
  }
  if (node.children.empty() ||
      node.children.size() > static_cast<size_t>(fanout_)) {
    return false;
  }
  Rect mbr = Rect::Empty();
  for (const int32_t child : node.children) {
    if (!node.mbr.ContainsRect(nodes_[child].mbr)) return false;
    if (!CheckNode(child, depth + 1, leaf_depth)) return false;
    mbr.ExpandToInclude(nodes_[child].mbr);
  }
  return mbr == node.mbr;
}

}  // namespace stps
