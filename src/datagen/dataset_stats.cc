#include "datagen/dataset_stats.h"

#include <cstdio>

#include "common/stats.h"
#include "planner/planner_stats.h"

namespace stps {

DatasetStats ComputeDatasetStats(const ObjectDatabase& db) {
  if (db.has_planner_stats()) return db.planner_stats().dataset;
  return ComputeDatasetStatsUncached(db);
}

DatasetStats ComputeDatasetStatsUncached(const ObjectDatabase& db) {
  DatasetStats stats;
  stats.num_objects = db.num_objects();
  stats.num_users = db.num_users();

  RunningStats tokens_per_object;
  for (const STObject& o : db.AllObjects()) {
    tokens_per_object.Add(static_cast<double>(o.doc.size()));
  }
  stats.tokens_per_object_mean = tokens_per_object.Mean();
  stats.tokens_per_object_stddev = tokens_per_object.StdDev();

  RunningStats objects_per_token;
  const Dictionary& dict = db.dictionary();
  for (TokenId t = 0; t < dict.size(); ++t) {
    const uint64_t df = dict.Frequency(t);
    if (df > 0) objects_per_token.Add(static_cast<double>(df));
  }
  stats.num_distinct_tokens = objects_per_token.count();
  stats.objects_per_token_mean = objects_per_token.Mean();
  stats.objects_per_token_stddev = objects_per_token.StdDev();

  RunningStats objects_per_user;
  for (UserId u = 0; u < db.num_users(); ++u) {
    objects_per_user.Add(static_cast<double>(db.UserObjectCount(u)));
  }
  stats.objects_per_user_mean = objects_per_user.Mean();
  stats.objects_per_user_stddev = objects_per_user.StdDev();
  return stats;
}

std::string DatasetStats::ToTableRow(const std::string& name) const {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "%-12s %9zu %7zu   %6.2f (%6.2f)   %6.2f (%8.2f)   %7.2f "
                "(%7.2f)",
                name.c_str(), num_objects, num_users, tokens_per_object_mean,
                tokens_per_object_stddev, objects_per_token_mean,
                objects_per_token_stddev, objects_per_user_mean,
                objects_per_user_stddev);
  return buffer;
}

}  // namespace stps
