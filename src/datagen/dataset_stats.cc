#include "datagen/dataset_stats.h"

#include <cmath>
#include <cstdio>

#include "planner/planner_stats.h"

namespace stps {

DatasetStats ComputeDatasetStats(const ObjectDatabase& db) {
  if (db.has_planner_stats()) return db.planner_stats().dataset;
  return ComputeDatasetStatsUncached(db);
}

namespace {

// Population mean / stddev from exact integer moments. The observations
// are all small counts, so the two sums are exact in uint64 and the
// whole pass is integer adds — no per-element floating-point division
// (this runs on the publish path, where a Welford accumulator's serial
// division chain was the bottleneck of the stats pass).
void FinishMoments(uint64_t n, uint64_t sum, uint64_t sum_sq, double* mean,
                   double* stddev) {
  if (n == 0) {
    *mean = 0.0;
    *stddev = 0.0;
    return;
  }
  const double nd = static_cast<double>(n);
  const double m = static_cast<double>(sum) / nd;
  const double variance = static_cast<double>(sum_sq) / nd - m * m;
  *mean = m;
  *stddev = variance > 0.0 ? std::sqrt(variance) : 0.0;
}

}  // namespace

DatasetStats ComputeDatasetStatsUncached(const ObjectDatabase& db) {
  DatasetStats stats;
  stats.num_objects = db.num_objects();
  stats.num_users = db.num_users();

  uint64_t sum = 0, sum_sq = 0;
  for (const STObject& o : db.AllObjects()) {
    const uint64_t k = o.doc.size();
    sum += k;
    sum_sq += k * k;
  }
  FinishMoments(db.num_objects(), sum, sum_sq,
                &stats.tokens_per_object_mean,
                &stats.tokens_per_object_stddev);

  const Dictionary& dict = db.dictionary();
  uint64_t distinct = 0;
  sum = sum_sq = 0;
  for (TokenId t = 0; t < dict.size(); ++t) {
    const uint64_t df = dict.Frequency(t);
    if (df == 0) continue;
    ++distinct;
    sum += df;
    sum_sq += df * df;
  }
  stats.num_distinct_tokens = distinct;
  FinishMoments(distinct, sum, sum_sq, &stats.objects_per_token_mean,
                &stats.objects_per_token_stddev);

  sum = sum_sq = 0;
  for (UserId u = 0; u < db.num_users(); ++u) {
    const uint64_t k = db.UserObjectCount(u);
    sum += k;
    sum_sq += k * k;
  }
  FinishMoments(db.num_users(), sum, sum_sq, &stats.objects_per_user_mean,
                &stats.objects_per_user_stddev);
  return stats;
}

std::string DatasetStats::ToTableRow(const std::string& name) const {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "%-12s %9zu %7zu   %6.2f (%6.2f)   %6.2f (%8.2f)   %7.2f "
                "(%7.2f)",
                name.c_str(), num_objects, num_users, tokens_per_object_mean,
                tokens_per_object_stddev, objects_per_token_mean,
                objects_per_token_stddev, objects_per_user_mean,
                objects_per_user_stddev);
  return buffer;
}

}  // namespace stps
