// Descriptive dataset statistics — the metrics of the paper's Table 1.

#ifndef STPS_DATAGEN_DATASET_STATS_H_
#define STPS_DATAGEN_DATASET_STATS_H_

#include <cstddef>
#include <string>

#include "core/database.h"

namespace stps {

/// Table 1 metrics: mean and standard deviation of tokens per object,
/// objects per token (document frequency) and objects per user.
struct DatasetStats {
  size_t num_objects = 0;
  size_t num_users = 0;
  size_t num_distinct_tokens = 0;
  double tokens_per_object_mean = 0.0;
  double tokens_per_object_stddev = 0.0;
  double objects_per_token_mean = 0.0;
  double objects_per_token_stddev = 0.0;
  double objects_per_user_mean = 0.0;
  double objects_per_user_stddev = 0.0;

  /// One line in the format of Table 1.
  std::string ToTableRow(const std::string& name) const;
};

/// Computes the metrics over a database.
DatasetStats ComputeDatasetStats(const ObjectDatabase& db);

}  // namespace stps

#endif  // STPS_DATAGEN_DATASET_STATS_H_
