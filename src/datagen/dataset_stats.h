// Descriptive dataset statistics — the metrics of the paper's Table 1.
//
// Since the planner PR these are computed once at DatabaseBuilder::Build
// time and cached on the ObjectDatabase (inside PlannerStats, see
// planner/planner_stats.h); ComputeDatasetStats returns the cached copy
// when present, so callers pay a struct copy, not a database scan.

#ifndef STPS_DATAGEN_DATASET_STATS_H_
#define STPS_DATAGEN_DATASET_STATS_H_

#include <cstddef>
#include <string>

#include "core/database.h"

namespace stps {

/// Table 1 metrics: mean and standard deviation of tokens per object,
/// objects per token (document frequency) and objects per user.
struct DatasetStats {
  size_t num_objects = 0;
  size_t num_users = 0;
  size_t num_distinct_tokens = 0;
  double tokens_per_object_mean = 0.0;
  double tokens_per_object_stddev = 0.0;
  double objects_per_token_mean = 0.0;
  double objects_per_token_stddev = 0.0;
  double objects_per_user_mean = 0.0;
  double objects_per_user_stddev = 0.0;

  /// One line in the format of Table 1.
  std::string ToTableRow(const std::string& name) const;

  friend bool operator==(const DatasetStats& a, const DatasetStats& b) {
    return a.num_objects == b.num_objects && a.num_users == b.num_users &&
           a.num_distinct_tokens == b.num_distinct_tokens &&
           a.tokens_per_object_mean == b.tokens_per_object_mean &&
           a.tokens_per_object_stddev == b.tokens_per_object_stddev &&
           a.objects_per_token_mean == b.objects_per_token_mean &&
           a.objects_per_token_stddev == b.objects_per_token_stddev &&
           a.objects_per_user_mean == b.objects_per_user_mean &&
           a.objects_per_user_stddev == b.objects_per_user_stddev;
  }
};

/// The metrics of a database: the copy cached at build time when the
/// database has one (every DatabaseBuilder::Build product does), else a
/// fresh scan.
DatasetStats ComputeDatasetStats(const ObjectDatabase& db);

/// Always scans. Only DatabaseBuilder::Build (via ComputePlannerStats)
/// and tests verifying the cache should need this.
DatasetStats ComputeDatasetStatsUncached(const ObjectDatabase& db);

}  // namespace stps

#endif  // STPS_DATAGEN_DATASET_STATS_H_
