// Dataset presets mirroring the paper's three evaluation corpora
// (Table 1). Sizes scale with `num_users`; the per-user / per-object /
// per-token distributions stay fixed, so a smaller instance is a uniform
// subsample in the same regime. Default query thresholds are the paper's
// per-dataset defaults (Figures 4 and 7).

#ifndef STPS_DATAGEN_PRESETS_H_
#define STPS_DATAGEN_PRESETS_H_

#include "core/similarity.h"
#include "datagen/generator.h"

namespace stps {

/// The three evaluation regimes.
enum class DatasetKind {
  kFlickrLike,    // city extent, POI-dominated, rich near-duplicate tags
  kTwitterLike,   // city extent, diverse short texts, many objects/user
  kGeoTextLike,   // country extent, sparse short posts
  kCheckinSparse, // country extent, city count scales with users: the
                  // close-pair graph grows near-linearly, not
                  // quadratically (sketch benchmark regime)
};

/// The generator spec for `kind` at the given scale.
/// Table 1 calibration targets:
///   Flickr : 8.04 (8.15) tokens/object, 98.7 (420) objects/user
///   Twitter: 2.08 (1.43) tokens/object, 243 (345) objects/user
///   GeoText: 1.64 (1.01) tokens/object, 17.5 (13) objects/user
DatasetSpec PresetSpec(DatasetKind kind, size_t num_users, uint64_t seed);

/// The paper's default STPSJoin thresholds for the dataset
/// (GeoText: .001/.3/.3, Flickr: .001/.6/.6, Twitter: .001/.4/.4).
STPSQuery DefaultQuery(DatasetKind kind);

/// Display name ("FlickrLike", ...).
const char* DatasetKindName(DatasetKind kind);

}  // namespace stps

#endif  // STPS_DATAGEN_PRESETS_H_
