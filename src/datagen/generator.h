// Synthetic spatio-textual social-media data.
//
// The paper evaluates on Flickr, Twitter and GeoText crawls that cannot be
// redistributed; this generator produces datasets with the same structural
// properties (documented in DESIGN.md): POI hotspots with shared token
// pools (near-duplicate photo tags), Zipf background vocabulary, per-user
// home locality, and heavy-tailed objects-per-user / tokens-per-object
// distributions calibrated against the paper's Table 1.

#ifndef STPS_DATAGEN_GENERATOR_H_
#define STPS_DATAGEN_GENERATOR_H_

#include <cstdint>
#include <string>

#include "core/database.h"
#include "spatial/geometry.h"

namespace stps {

/// Parameters of the generative model. The presets in presets.h fill
/// these in for the three paper datasets.
struct DatasetSpec {
  /// Display name ("FlickrLike", ...).
  std::string name = "Synthetic";
  /// Number of users to generate.
  size_t num_users = 1000;
  /// RNG seed; identical specs yield identical databases.
  uint64_t seed = 7;

  // --- Spatial model -----------------------------------------------------
  /// The world rectangle (coordinates behave like lon/lat degrees).
  Rect extent = {0.0, 0.0, 1.0, 1.0};
  /// Number of point-of-interest hotspots.
  size_t num_pois = 200;
  /// Zipf exponent of POI popularity.
  double poi_zipf_theta = 1.0;
  /// Gaussian spread of object locations around their POI.
  double poi_sigma = 0.0005;
  /// Probability that an object is anchored at a POI (vs. the user's
  /// home neighbourhood).
  double poi_probability = 0.5;
  /// Home-neighbourhood radius for non-POI objects.
  double user_radius = 0.02;
  /// When > 0, user homes cluster around this many random centres
  /// (country-scale datasets: cities); 0 = uniform homes.
  size_t num_user_clusters = 0;
  /// Gaussian spread of homes around their cluster centre.
  double cluster_sigma = 0.3;

  // --- Text model --------------------------------------------------------
  /// Global vocabulary size; token popularity is Zipf(token_zipf_theta).
  size_t vocabulary_size = 20000;
  double token_zipf_theta = 0.8;
  /// Tokens drawn per object: lognormal with these moments, >= 1.
  double tokens_per_object_mean = 3.0;
  double tokens_per_object_stddev = 2.0;
  /// Tokens a POI's pool holds (drawn once per POI from the vocabulary).
  size_t poi_pool_size = 12;
  /// For a POI-anchored object, the probability that each token comes
  /// from the POI pool rather than the global vocabulary.
  double poi_token_probability = 0.8;

  // --- Near-duplicate accounts -------------------------------------------
  /// Fraction of users generated as a "twin" of the previous user —
  /// mirrors the duplicate/bot accounts and cross-posted content present
  /// in real crawls, which is what produces STPSJoin result pairs at the
  /// paper's strict user-similarity thresholds.
  double twin_fraction = 0.0;
  /// Per-object probability that a twin copies the object (location
  /// jittered, same keywords) rather than generating a fresh one.
  double twin_copy_probability = 0.85;
  /// Gaussian jitter applied to copied object locations.
  double twin_jitter = 0.0003;
  /// Gaussian jitter applied to copied object timestamps.
  double twin_time_jitter = 1.0;

  // --- Temporal model ------------------------------------------------------
  /// Object timestamps are uniform in [0, time_horizon] (days). The
  /// temporal dimension only matters for queries with finite eps_time.
  double time_horizon = 365.0;

  // --- User model --------------------------------------------------------
  /// Objects per user: lognormal with these moments, clamped below by
  /// min_objects_per_user and above by max_objects_per_user (0 = no cap).
  double objects_per_user_mean = 50.0;
  double objects_per_user_stddev = 100.0;
  size_t min_objects_per_user = 2;
  size_t max_objects_per_user = 0;
};

/// Generates the database described by `spec`. Deterministic in the spec.
ObjectDatabase GenerateDataset(const DatasetSpec& spec);

}  // namespace stps

#endif  // STPS_DATAGEN_GENERATOR_H_
