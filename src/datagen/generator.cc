#include "datagen/generator.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/rng.h"

namespace stps {

namespace {

double Clamp(double v, double lo, double hi) {
  return std::min(std::max(v, lo), hi);
}

Point ClampToExtent(Point p, const Rect& extent) {
  p.x = Clamp(p.x, extent.min_x, extent.max_x);
  p.y = Clamp(p.y, extent.min_y, extent.max_y);
  return p;
}

}  // namespace

ObjectDatabase GenerateDataset(const DatasetSpec& spec) {
  STPS_CHECK(spec.num_users > 0);
  STPS_CHECK(spec.num_pois > 0);
  STPS_CHECK(spec.vocabulary_size > 0);
  Rng rng(spec.seed);

  // Pre-render the vocabulary strings once ("t0", "t1", ...).
  std::vector<std::string> vocabulary(spec.vocabulary_size);
  for (size_t i = 0; i < spec.vocabulary_size; ++i) {
    vocabulary[i] = "t" + std::to_string(i);
  }
  const ZipfSampler token_sampler(spec.vocabulary_size, spec.token_zipf_theta);
  const ZipfSampler poi_sampler(spec.num_pois, spec.poi_zipf_theta);

  // POI hotspots: a location and a token pool each.
  std::vector<Point> poi_locations(spec.num_pois);
  std::vector<std::vector<size_t>> poi_pools(spec.num_pois);
  for (size_t p = 0; p < spec.num_pois; ++p) {
    poi_locations[p] = {rng.Uniform(spec.extent.min_x, spec.extent.max_x),
                        rng.Uniform(spec.extent.min_y, spec.extent.max_y)};
    poi_pools[p].reserve(spec.poi_pool_size);
    for (size_t i = 0; i < spec.poi_pool_size; ++i) {
      poi_pools[p].push_back(token_sampler.Sample(rng));
    }
  }

  // Optional city clusters for user homes (country-scale datasets).
  std::vector<Point> clusters(spec.num_user_clusters);
  for (auto& c : clusters) {
    c = {rng.Uniform(spec.extent.min_x, spec.extent.max_x),
         rng.Uniform(spec.extent.min_y, spec.extent.max_y)};
  }

  const LogNormalParams objects_per_user = LogNormalParams::FromMoments(
      spec.objects_per_user_mean, spec.objects_per_user_stddev);
  const LogNormalParams tokens_per_object = LogNormalParams::FromMoments(
      spec.tokens_per_object_mean, spec.tokens_per_object_stddev);

  DatabaseBuilder builder;
  std::vector<std::string_view> keywords;
  // Previous user's objects, kept for twin (near-duplicate account)
  // generation.
  struct GeneratedObject {
    Point loc;
    double time = 0.0;
    std::vector<size_t> tokens;  // vocabulary indices
  };
  std::vector<GeneratedObject> previous_user;
  Point previous_home{0, 0};
  std::vector<GeneratedObject> current_user;

  for (size_t u = 0; u < spec.num_users; ++u) {
    const std::string user_key = "u" + std::to_string(u);
    current_user.clear();
    const bool twin = u > 0 && !previous_user.empty() &&
                      rng.Bernoulli(spec.twin_fraction);
    // Home location.
    Point home;
    if (twin) {
      home = previous_home;
    } else if (clusters.empty()) {
      home = {rng.Uniform(spec.extent.min_x, spec.extent.max_x),
              rng.Uniform(spec.extent.min_y, spec.extent.max_y)};
    } else {
      const Point& centre = clusters[rng.NextBelow(clusters.size())];
      home = ClampToExtent({rng.Gaussian(centre.x, spec.cluster_sigma),
                            rng.Gaussian(centre.y, spec.cluster_sigma)},
                           spec.extent);
    }
    // Object count: twins mirror the previous user's activity volume.
    size_t count;
    if (twin) {
      count = previous_user.size();
    } else {
      count = static_cast<size_t>(
          std::max(1.0, rng.LogNormal(objects_per_user.mu,
                                      objects_per_user.sigma)));
      count = std::max(count, spec.min_objects_per_user);
      if (spec.max_objects_per_user > 0) {
        count = std::min(count, spec.max_objects_per_user);
      }
    }

    for (size_t i = 0; i < count; ++i) {
      if (twin && rng.Bernoulli(spec.twin_copy_probability)) {
        // Near-copy of the previous user's i-th object.
        const GeneratedObject& source = previous_user[i];
        GeneratedObject copy;
        copy.loc = ClampToExtent(
            {rng.Gaussian(source.loc.x, spec.twin_jitter),
             rng.Gaussian(source.loc.y, spec.twin_jitter)},
            spec.extent);
        copy.time = rng.Gaussian(source.time, spec.twin_time_jitter);
        copy.tokens = source.tokens;
        current_user.push_back(std::move(copy));
        continue;
      }
      Point loc;
      const std::vector<size_t>* pool = nullptr;
      if (rng.Bernoulli(spec.poi_probability)) {
        const size_t poi = poi_sampler.Sample(rng);
        loc = ClampToExtent(
            {rng.Gaussian(poi_locations[poi].x, spec.poi_sigma),
             rng.Gaussian(poi_locations[poi].y, spec.poi_sigma)},
            spec.extent);
        pool = &poi_pools[poi];
      } else {
        loc = ClampToExtent({rng.Gaussian(home.x, spec.user_radius),
                             rng.Gaussian(home.y, spec.user_radius)},
                            spec.extent);
      }
      size_t token_count = static_cast<size_t>(
          std::max(1.0, rng.LogNormal(tokens_per_object.mu,
                                      tokens_per_object.sigma)));
      token_count = std::min(token_count, spec.vocabulary_size);
      // Draw *distinct* tokens so the tokens-per-object statistic matches
      // the spec (objects hold keyword sets, and duplicate draws would
      // otherwise collapse). Bounded retries keep degenerate configs safe.
      keywords.clear();
      std::vector<size_t> chosen;
      size_t attempts = 0;
      const size_t max_attempts = 4 * token_count + 8;
      while (chosen.size() < token_count && attempts++ < max_attempts) {
        size_t token;
        if (pool != nullptr && rng.Bernoulli(spec.poi_token_probability)) {
          token = (*pool)[rng.NextBelow(pool->size())];
        } else {
          token = token_sampler.Sample(rng);
        }
        if (std::find(chosen.begin(), chosen.end(), token) == chosen.end()) {
          chosen.push_back(token);
        }
      }
      if (chosen.empty()) chosen.push_back(token_sampler.Sample(rng));
      current_user.push_back(GeneratedObject{
          loc, rng.Uniform(0.0, spec.time_horizon), std::move(chosen)});
    }
    // Materialise the user's objects.
    for (const GeneratedObject& obj : current_user) {
      keywords.clear();
      for (const size_t token : obj.tokens) {
        keywords.push_back(vocabulary[token]);
      }
      builder.AddObject(user_key, obj.loc, keywords, obj.time);
    }
    previous_user = std::move(current_user);
    current_user.clear();
    previous_home = home;
  }
  return std::move(builder).Build();
}

}  // namespace stps
