#include "datagen/presets.h"

#include <algorithm>

#include "common/macros.h"

namespace stps {

DatasetSpec PresetSpec(DatasetKind kind, size_t num_users, uint64_t seed) {
  STPS_CHECK(num_users > 0);
  DatasetSpec spec;
  spec.num_users = num_users;
  spec.seed = seed;
  switch (kind) {
    case DatasetKind::kFlickrLike: {
      // London-extent photo corpus: most objects sit at popular POIs and
      // carry near-duplicate tag sets drawn from small per-POI pools.
      spec.name = "FlickrLike";
      spec.extent = {0.0, 0.0, 0.3, 0.2};
      spec.num_pois = std::max<size_t>(200, num_users / 2);
      spec.poi_zipf_theta = 0.6;
      spec.poi_sigma = 0.0008;
      spec.poi_probability = 0.8;
      spec.user_radius = 0.02;
      spec.vocabulary_size = std::max<size_t>(2000, 30 * num_users);
      spec.token_zipf_theta = 0.8;
      spec.tokens_per_object_mean = 8.04;
      spec.tokens_per_object_stddev = 8.15;
      spec.poi_pool_size = 7;
      spec.poi_token_probability = 0.88;
      spec.objects_per_user_mean = 98.7;
      spec.objects_per_user_stddev = 420.0;
      spec.max_objects_per_user = 3000;
      // Popular-POI photo streams contain many near-duplicate accounts.
      spec.twin_fraction = 0.06;
      spec.twin_copy_probability = 0.9;
      spec.twin_jitter = 0.0004;
      break;
    }
    case DatasetKind::kTwitterLike: {
      // London-extent tweet corpus: many short, diverse messages per
      // user, weaker POI coupling.
      spec.name = "TwitterLike";
      spec.extent = {0.0, 0.0, 0.3, 0.2};
      spec.num_pois = std::max<size_t>(60, num_users / 8);
      spec.poi_zipf_theta = 0.9;
      spec.poi_sigma = 0.001;
      spec.poi_probability = 0.35;
      spec.user_radius = 0.03;
      spec.vocabulary_size = std::max<size_t>(4000, 80 * num_users);
      spec.token_zipf_theta = 0.9;
      spec.tokens_per_object_mean = 2.08;
      spec.tokens_per_object_stddev = 1.43;
      spec.poi_pool_size = 6;
      spec.poi_token_probability = 0.6;
      spec.objects_per_user_mean = 243.0;
      spec.objects_per_user_stddev = 345.0;
      spec.max_objects_per_user = 3000;
      // Bot/cross-posting accounts: the source of high-sigma pairs in a
      // corpus whose organic messages are too diverse to match.
      spec.twin_fraction = 0.02;
      spec.twin_copy_probability = 0.85;
      spec.twin_jitter = 0.0004;
      break;
    }
    case DatasetKind::kGeoTextLike: {
      // Country-extent microblog corpus: users cluster in cities, posts
      // are very short, the grid at eps_loc = 0.001 is extremely sparse.
      spec.name = "GeoTextLike";
      spec.extent = {-125.0, 25.0, -67.0, 49.0};
      spec.num_user_clusters = 60;
      spec.cluster_sigma = 0.2;
      spec.num_pois = 300;
      spec.poi_zipf_theta = 1.0;
      spec.poi_sigma = 0.001;
      spec.poi_probability = 0.25;
      spec.user_radius = 0.05;
      spec.vocabulary_size = std::max<size_t>(1000, 8 * num_users);
      spec.token_zipf_theta = 0.9;
      spec.tokens_per_object_mean = 1.64;
      spec.tokens_per_object_stddev = 1.01;
      spec.poi_pool_size = 5;
      spec.poi_token_probability = 0.7;
      spec.objects_per_user_mean = 17.5;
      spec.objects_per_user_stddev = 13.0;
      spec.max_objects_per_user = 200;
      spec.twin_fraction = 0.035;
      spec.twin_copy_probability = 0.85;
      spec.twin_jitter = 0.0004;
      break;
    }
    case DatasetKind::kCheckinSparse: {
      // Country-extent check-in corpus engineered so spatial density per
      // city stays constant as num_users grows: the city count scales
      // linearly with users, so brute force degrades quadratically while
      // the real close-pair graph grows near-linearly — the regime where
      // sub-quadratic candidate generation pays off.
      spec.name = "CheckinSparse";
      spec.extent = {-125.0, 25.0, -67.0, 49.0};
      spec.num_user_clusters = std::max<size_t>(32, num_users / 8);
      spec.cluster_sigma = 0.05;
      spec.num_pois = std::max<size_t>(200, num_users / 4);
      spec.poi_zipf_theta = 0.8;
      spec.poi_sigma = 0.001;
      spec.poi_probability = 0.4;
      spec.user_radius = 0.02;
      spec.vocabulary_size = std::max<size_t>(2000, 20 * num_users);
      spec.token_zipf_theta = 0.9;
      spec.tokens_per_object_mean = 2.5;
      spec.tokens_per_object_stddev = 1.5;
      spec.poi_pool_size = 6;
      spec.poi_token_probability = 0.7;
      spec.objects_per_user_mean = 8.0;
      spec.objects_per_user_stddev = 6.0;
      spec.max_objects_per_user = 64;
      spec.twin_fraction = 0.05;
      spec.twin_copy_probability = 0.85;
      spec.twin_jitter = 0.0004;
      break;
    }
  }
  return spec;
}

STPSQuery DefaultQuery(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kFlickrLike:
      return {0.001, 0.6, 0.6};
    case DatasetKind::kTwitterLike:
      return {0.001, 0.4, 0.4};
    case DatasetKind::kGeoTextLike:
      return {0.001, 0.3, 0.3};
    case DatasetKind::kCheckinSparse:
      return {0.001, 0.4, 0.4};
  }
  return {0.001, 0.4, 0.4};
}

const char* DatasetKindName(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kFlickrLike:
      return "FlickrLike";
    case DatasetKind::kTwitterLike:
      return "TwitterLike";
    case DatasetKind::kGeoTextLike:
      return "GeoTextLike";
    case DatasetKind::kCheckinSparse:
      return "CheckinSparse";
  }
  return "unknown";
}

}  // namespace stps
