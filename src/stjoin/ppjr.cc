#include "stjoin/ppjr.h"

#include <algorithm>

#include "spatial/rtree.h"
#include "spatial/spatial_join.h"
#include "stjoin/ppj.h"

namespace stps {

std::vector<std::pair<ObjectId, ObjectId>> PPJRSelfJoin(
    std::span<const STObject> objects, const MatchThresholds& t,
    int fanout) {
  std::vector<std::pair<ObjectId, ObjectId>> result;
  if (objects.size() < 2) return result;

  std::vector<RTree::Entry> entries;
  entries.reserve(objects.size());
  for (const STObject& o : objects) {
    // Payload = index into `objects` (ids may be arbitrary).
    entries.push_back(
        RTree::Entry{o.loc, static_cast<uint32_t>(&o - objects.data())});
  }
  const RTree tree = RTree::BulkLoad(std::move(entries), fanout);
  const std::vector<RTree::LeafRef> leaves = tree.CollectLeaves();
  const auto adjacency = LeafAdjacency(tree, t.eps_loc);

  // Per-leaf object pointer lists.
  std::vector<std::vector<const STObject*>> leaf_objects(leaves.size());
  for (const RTree::LeafRef& leaf : leaves) {
    for (const RTree::Entry& e : leaf.entries) {
      leaf_objects[leaf.ordinal].push_back(&objects[e.value]);
    }
  }

  std::vector<const STObject*> side_a, side_b;
  for (uint32_t l = 0; l < leaves.size(); ++l) {
    // Leaf self-join.
    auto self_pairs = PPJSelfPairs(
        std::span<const STObject* const>(leaf_objects[l]), t);
    result.insert(result.end(), self_pairs.begin(), self_pairs.end());
    // Cross joins with higher-ordinal adjacent leaves, restricted to the
    // intersection of the extended MBRs (objects outside it cannot match
    // across the pair).
    const Rect ext_l = leaves[l].mbr.Extended(t.eps_loc);
    for (const uint32_t other : adjacency[l]) {
      if (other <= l) continue;
      const Rect box = ext_l.Intersection(
          leaves[other].mbr.Extended(t.eps_loc));
      side_a.clear();
      side_b.clear();
      for (const STObject* o : leaf_objects[l]) {
        if (box.Contains(o->loc)) side_a.push_back(o);
      }
      for (const STObject* o : leaf_objects[other]) {
        if (box.Contains(o->loc)) side_b.push_back(o);
      }
      auto cross = PPJCrossPairs(std::span<const STObject* const>(side_a),
                                 std::span<const STObject* const>(side_b),
                                 t);
      for (auto& [a, b] : cross) {
        result.emplace_back(std::min(a, b), std::max(a, b));
      }
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace stps
