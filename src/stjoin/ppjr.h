// PPJ-R: the R-tree-based spatio-textual similarity self-join for single
// points (Bouros et al., PVLDB 2012) — the data-partitioning counterpart
// of PPJ-C. The tree's leaves partition the data; each leaf is
// self-joined and each pair of leaves with intersecting eps_loc-extended
// MBRs is cross-joined, restricted to the intersection region.

#ifndef STPS_STJOIN_PPJR_H_
#define STPS_STJOIN_PPJR_H_

#include <span>
#include <utility>
#include <vector>

#include "stjoin/object.h"

namespace stps {

/// Returns all object-id pairs (a < b) in `objects` that match under `t`,
/// evaluated over an R-tree partitioning with the given node capacity.
/// Identical output to PPJCSelfJoin.
std::vector<std::pair<ObjectId, ObjectId>> PPJRSelfJoin(
    std::span<const STObject> objects, const MatchThresholds& t,
    int fanout = 128);

}  // namespace stps

#endif  // STPS_STJOIN_PPJR_H_
