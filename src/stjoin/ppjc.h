// PPJ-C: the grid-based spatio-textual similarity self-join for single
// points, ST-SJOIN(D, eps_loc, eps_doc) (Bouros et al., PVLDB 2012).
//
// A sparse grid with cell extent eps_loc is built at query time; each
// occupied cell is joined with itself and with its lower-id neighbours
// (W, SW, S, SE), so every object pair is examined at most once and only
// when the two objects can be within eps_loc.
//
// This is the single-point baseline the paper generalises; it also powers
// the POI-deduplication example and the threshold auto-tuner.

#ifndef STPS_STJOIN_PPJC_H_
#define STPS_STJOIN_PPJC_H_

#include <span>
#include <utility>
#include <vector>

#include "stjoin/object.h"

namespace stps {

/// Returns all object-id pairs (a < b) in `objects` that match under `t`.
/// Precondition: objects have distinct ids and canonical token sets.
std::vector<std::pair<ObjectId, ObjectId>> PPJCSelfJoin(
    std::span<const STObject> objects, const MatchThresholds& t);

}  // namespace stps

#endif  // STPS_STJOIN_PPJC_H_
