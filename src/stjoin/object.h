// The spatio-textual object model of the paper (Section 3): an object is a
// triple <user, location, keyword set>, and two objects *match* when they
// are within eps_loc spatially and at least eps_doc Jaccard-similar
// textually.

#ifndef STPS_STJOIN_OBJECT_H_
#define STPS_STJOIN_OBJECT_H_

#include <cstdint>
#include <limits>
#include <span>

#include "common/predicates.h"
#include "spatial/geometry.h"
#include "text/intersect.h"
#include "text/types.h"

namespace stps {

/// Dense user identifier (0-based; the total order ≺U of the paper is the
/// numeric order of these ids unless an algorithm re-orders explicitly).
using UserId = uint32_t;

/// Dense object identifier within an ObjectDatabase.
using ObjectId = uint32_t;

/// A spatio-textual object o = <u, loc, doc> with an optional timestamp
/// (the paper's future-work temporal dimension; ignored unless a query
/// sets a finite eps_time).
///
/// `doc` is a non-owning view: objects built through DatabaseBuilder point
/// into the database's CSR token arena, standalone objects (tests, ad-hoc
/// queries) into caller-owned storage that must outlive the object.
struct STObject {
  ObjectId id = 0;
  UserId user = 0;
  Point loc;
  /// Creation time in arbitrary units (e.g. days). 0 when untimed.
  double time = 0.0;
  /// Canonical token set; ids follow the global ascending-document-
  /// frequency order (prefix-filter ready). Always assign through
  /// set_doc() so `sig` stays in sync.
  std::span<const TokenId> doc;
  /// 64-bit bitmap signature of `doc` (see text/intersect.h). Invariant:
  /// sig == ComputeSignature(doc); set_doc() maintains it.
  TokenSignature sig = 0;

  /// Points `doc` at `tokens` (not copied — the storage must outlive this
  /// object) and recomputes the signature.
  void set_doc(std::span<const TokenId> tokens) {
    doc = tokens;
    sig = ComputeSignature(tokens);
  }
};

/// Spatio-textual(-temporal) thresholds of a join query.
struct MatchThresholds {
  /// Maximum Euclidean distance eps_loc.
  double eps_loc = 0.0;
  /// Minimum Jaccard similarity eps_doc.
  double eps_doc = 0.0;
  /// Maximum timestamp difference; infinity = temporal dimension off.
  double eps_time = std::numeric_limits<double>::infinity();
};

/// True when the objects' timestamps are within eps_time (always true at
/// the default infinite threshold).
inline bool TimeCompatible(const STObject& a, const STObject& b,
                           double eps_time) {
  return WithinEpsTime(a.time, b.time, eps_time);
}

/// The paper's matching predicate mu(o, o') extended with the temporal
/// dimension: dist <= eps_loc, Jaccard >= eps_doc, |dt| <= eps_time.
/// The textual test is signature-gated; pass `signature_rejections` to
/// count gate hits.
inline bool ObjectsMatch(const STObject& a, const STObject& b,
                         const MatchThresholds& t,
                         uint64_t* signature_rejections = nullptr) {
  return WithinDistance(a.loc, b.loc, t.eps_loc) &&
         TimeCompatible(a, b, t.eps_time) &&
         SignatureGatedJaccardAtLeast(a.doc, a.sig, b.doc, b.sig, t.eps_doc,
                                      signature_rejections);
}

}  // namespace stps

#endif  // STPS_STJOIN_OBJECT_H_
