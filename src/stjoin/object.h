// The spatio-textual object model of the paper (Section 3): an object is a
// triple <user, location, keyword set>, and two objects *match* when they
// are within eps_loc spatially and at least eps_doc Jaccard-similar
// textually.

#ifndef STPS_STJOIN_OBJECT_H_
#define STPS_STJOIN_OBJECT_H_

#include <cmath>
#include <cstdint>
#include <limits>

#include "spatial/geometry.h"
#include "text/token_set.h"
#include "text/types.h"

namespace stps {

/// Dense user identifier (0-based; the total order ≺U of the paper is the
/// numeric order of these ids unless an algorithm re-orders explicitly).
using UserId = uint32_t;

/// Dense object identifier within an ObjectDatabase.
using ObjectId = uint32_t;

/// A spatio-textual object o = <u, loc, doc> with an optional timestamp
/// (the paper's future-work temporal dimension; ignored unless a query
/// sets a finite eps_time).
struct STObject {
  ObjectId id = 0;
  UserId user = 0;
  Point loc;
  /// Creation time in arbitrary units (e.g. days). 0 when untimed.
  double time = 0.0;
  /// Canonical token set; ids follow the global ascending-document-
  /// frequency order (prefix-filter ready).
  TokenVector doc;
};

/// Spatio-textual(-temporal) thresholds of a join query.
struct MatchThresholds {
  /// Maximum Euclidean distance eps_loc.
  double eps_loc = 0.0;
  /// Minimum Jaccard similarity eps_doc.
  double eps_doc = 0.0;
  /// Maximum timestamp difference; infinity = temporal dimension off.
  double eps_time = std::numeric_limits<double>::infinity();
};

/// True when the objects' timestamps are within eps_time (always true at
/// the default infinite threshold).
inline bool TimeCompatible(const STObject& a, const STObject& b,
                           double eps_time) {
  return std::fabs(a.time - b.time) <= eps_time;
}

/// The paper's matching predicate mu(o, o') extended with the temporal
/// dimension: dist <= eps_loc, Jaccard >= eps_doc, |dt| <= eps_time.
inline bool ObjectsMatch(const STObject& a, const STObject& b,
                         const MatchThresholds& t) {
  return WithinDistance(a.loc, b.loc, t.eps_loc) &&
         TimeCompatible(a, b, t.eps_time) &&
         JaccardAtLeast(a.doc, b.doc, t.eps_doc);
}

}  // namespace stps

#endif  // STPS_STJOIN_OBJECT_H_
