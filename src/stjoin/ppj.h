// PPJ: the spatio-textual join kernel (Bouros, Ge, Mamoulis, PVLDB 2012).
//
// PPJ extends PPJOIN's candidate generation with the spatial distance
// predicate. This file provides the two kernel shapes the point-set
// algorithms need:
//   * pair-collecting joins (used by the single-point ST-SJOIN and the
//     deduplication example), and
//   * flag-marking joins (used by PPJ-B / PPJ-D, which only need to know
//     *which objects* of each user matched, i.e. the sets M(Du, Du')).
//
// For small inputs the kernel degenerates to a filtered nested loop —
// cells/leaves typically hold a handful of objects and an inverted index
// would cost more than it saves; the crossover is picked empirically.

#ifndef STPS_STJOIN_PPJ_H_
#define STPS_STJOIN_PPJ_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/join_stats.h"
#include "stjoin/object.h"

namespace stps {

/// A reference to an object together with its position in the owning
/// user's object list (used to address per-user matched flags).
struct ObjectRef {
  const STObject* object = nullptr;
  uint32_t local = 0;
};

/// A contiguous cell (or leaf) block in SoA form: the refs of one
/// UserPartition plus the matching slices of the owning layout's
/// coordinate arrays (xs[i] == refs[i].object->loc.x). Built by
/// BlockOf() in core/user_grid.h; consumed by the batched mark kernel.
struct CellBlock {
  std::span<const ObjectRef> refs;
  const double* xs = nullptr;
  const double* ys = nullptr;
};

/// All matching object-id pairs between `left` and `right` (cross join).
/// When `stats` is given, signature-filter rejections are counted into it.
std::vector<std::pair<ObjectId, ObjectId>> PPJCrossPairs(
    std::span<const STObject* const> left,
    std::span<const STObject* const> right, const MatchThresholds& t,
    JoinStats* stats = nullptr);

/// All matching object-id pairs (a.id < b.id) within `objects` (self join).
/// When `stats` is given, signature-filter rejections are counted into it.
std::vector<std::pair<ObjectId, ObjectId>> PPJSelfPairs(
    std::span<const STObject* const> objects, const MatchThresholds& t,
    JoinStats* stats = nullptr);

/// Marks matched flags: for every matching pair (a in left, b in right),
/// sets (*left_matched)[a.local] and (*right_matched)[b.local]. Pairs
/// whose both sides are already matched are skipped (their outcome cannot
/// change the flags). Returns the number of flags newly set (across both
/// sides), so callers can maintain |M(Du,Dv)| + |M(Dv,Du)| incrementally.
/// When `stats` is given, signature-filter rejections are counted into it.
uint32_t PPJCrossMark(std::span<const ObjectRef> left,
                      std::span<const ObjectRef> right,
                      const MatchThresholds& t,
                      std::vector<uint8_t>* left_matched,
                      std::vector<uint8_t>* right_matched,
                      JoinStats* stats = nullptr);

/// Batched form of PPJCrossMark over SoA cell blocks: per probe object of
/// `left`, one CollectWithinEpsLoc sweep over `right`'s coordinate block
/// (spatial/batch.h) selects the within-eps_loc candidates, then the
/// time/size/signature/Jaccard chain runs on the survivors only. Flag and
/// counter semantics are identical to PPJCrossMark's nested-loop form —
/// the spatial predicate is evaluated first either way, so
/// signature_rejections counts the same tests — plus batch_distance_calls
/// / batch_lanes_filled accounting when `stats` is given.
uint32_t PPJCrossMarkBatch(const CellBlock& left, const CellBlock& right,
                           const MatchThresholds& t,
                           std::vector<uint8_t>* left_matched,
                           std::vector<uint8_t>* right_matched,
                           JoinStats* stats = nullptr);

}  // namespace stps

#endif  // STPS_STJOIN_PPJ_H_
