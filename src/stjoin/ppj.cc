#include "stjoin/ppj.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "spatial/batch.h"
#include "text/intersect.h"
#include "text/similarity.h"

namespace stps {

namespace {

// Below this many object-pair combinations a filtered nested loop beats
// building an inverted index (measured on the cell-sized inputs the
// point-set algorithms produce).
constexpr size_t kNestedLoopLimit = 1024;

bool SizeCompatible(size_t a, size_t b, double eps_doc) {
  if (eps_doc <= 0.0) return true;
  return b >= MinSizeForJaccard(a, eps_doc) &&
         b <= MaxSizeForJaccard(a, eps_doc);
}

// Inverted index over the probing prefixes of one side of a cross join.
class PrefixIndex {
 public:
  template <typename GetObject>
  PrefixIndex(size_t count, double eps_doc, const GetObject& get) {
    for (uint32_t i = 0; i < count; ++i) {
      const std::span<const TokenId> doc = get(i)->doc;
      const size_t prefix = PrefixLengthForJaccard(doc.size(), eps_doc);
      for (size_t p = 0; p < prefix; ++p) {
        postings_[doc[p]].push_back(i);
      }
    }
    stamps_.assign(count, 0);
  }

  // Appends (deduplicated) candidate indices sharing a prefix token with
  // `doc` into *out.
  void Probe(std::span<const TokenId> doc, double eps_doc,
             std::vector<uint32_t>* out) {
    ++round_;
    const size_t prefix = PrefixLengthForJaccard(doc.size(), eps_doc);
    for (size_t p = 0; p < prefix; ++p) {
      const auto it = postings_.find(doc[p]);
      if (it == postings_.end()) continue;
      for (const uint32_t candidate : it->second) {
        if (stamps_[candidate] == round_) continue;
        stamps_[candidate] = round_;
        out->push_back(candidate);
      }
    }
  }

 private:
  std::unordered_map<TokenId, std::vector<uint32_t>> postings_;
  std::vector<uint32_t> stamps_;
  uint32_t round_ = 0;
};

}  // namespace

std::vector<std::pair<ObjectId, ObjectId>> PPJCrossPairs(
    std::span<const STObject* const> left,
    std::span<const STObject* const> right, const MatchThresholds& t,
    JoinStats* stats) {
  std::vector<std::pair<ObjectId, ObjectId>> result;
  if (left.empty() || right.empty()) return result;
  uint64_t* const sigrej =
      stats != nullptr ? &stats->signature_rejections : nullptr;
  if (left.size() * right.size() <= kNestedLoopLimit || t.eps_doc <= 0.0) {
    for (const STObject* a : left) {
      for (const STObject* b : right) {
        if (!WithinDistance(a->loc, b->loc, t.eps_loc)) continue;
        if (!TimeCompatible(*a, *b, t.eps_time)) continue;
        if (!SizeCompatible(a->doc.size(), b->doc.size(), t.eps_doc)) continue;
        if (SignatureGatedJaccardAtLeast(a->doc, a->sig, b->doc, b->sig,
                                         t.eps_doc, sigrej)) {
          result.emplace_back(a->id, b->id);
        }
      }
    }
    return result;
  }
  PrefixIndex index(right.size(), t.eps_doc,
                    [&right](uint32_t i) { return right[i]; });
  std::vector<uint32_t> candidates;
  for (const STObject* a : left) {
    candidates.clear();
    index.Probe(a->doc, t.eps_doc, &candidates);
    for (const uint32_t c : candidates) {
      const STObject* b = right[c];
      if (!WithinDistance(a->loc, b->loc, t.eps_loc)) continue;
      if (!TimeCompatible(*a, *b, t.eps_time)) continue;
      if (!SizeCompatible(a->doc.size(), b->doc.size(), t.eps_doc)) continue;
      if (SignatureGatedJaccardAtLeast(a->doc, a->sig, b->doc, b->sig,
                                       t.eps_doc, sigrej)) {
        result.emplace_back(a->id, b->id);
      }
    }
  }
  return result;
}

std::vector<std::pair<ObjectId, ObjectId>> PPJSelfPairs(
    std::span<const STObject* const> objects, const MatchThresholds& t,
    JoinStats* stats) {
  std::vector<std::pair<ObjectId, ObjectId>> result;
  const size_t n = objects.size();
  if (n < 2) return result;
  uint64_t* const sigrej =
      stats != nullptr ? &stats->signature_rejections : nullptr;
  if (n * n <= kNestedLoopLimit || t.eps_doc <= 0.0) {
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        const STObject* a = objects[i];
        const STObject* b = objects[j];
        if (!WithinDistance(a->loc, b->loc, t.eps_loc)) continue;
        if (!TimeCompatible(*a, *b, t.eps_time)) continue;
        if (!SizeCompatible(a->doc.size(), b->doc.size(), t.eps_doc))
          continue;
        if (SignatureGatedJaccardAtLeast(a->doc, a->sig, b->doc, b->sig,
                                         t.eps_doc, sigrej)) {
          result.emplace_back(std::min(a->id, b->id), std::max(a->id, b->id));
        }
      }
    }
    return result;
  }
  PrefixIndex index(n, t.eps_doc, [&objects](uint32_t i) {
    return objects[i];
  });
  std::vector<uint32_t> candidates;
  for (uint32_t i = 0; i < n; ++i) {
    const STObject* a = objects[i];
    candidates.clear();
    index.Probe(a->doc, t.eps_doc, &candidates);
    for (const uint32_t c : candidates) {
      if (c <= i) continue;  // each unordered pair once
      const STObject* b = objects[c];
      if (!WithinDistance(a->loc, b->loc, t.eps_loc)) continue;
      if (!TimeCompatible(*a, *b, t.eps_time)) continue;
      if (!SizeCompatible(a->doc.size(), b->doc.size(), t.eps_doc)) continue;
      if (SignatureGatedJaccardAtLeast(a->doc, a->sig, b->doc, b->sig,
                                       t.eps_doc, sigrej)) {
        result.emplace_back(std::min(a->id, b->id), std::max(a->id, b->id));
      }
    }
  }
  return result;
}

uint32_t PPJCrossMark(std::span<const ObjectRef> left,
                      std::span<const ObjectRef> right,
                      const MatchThresholds& t,
                      std::vector<uint8_t>* left_matched,
                      std::vector<uint8_t>* right_matched,
                      JoinStats* stats) {
  if (left.empty() || right.empty()) return 0;
  uint64_t* const sigrej =
      stats != nullptr ? &stats->signature_rejections : nullptr;
  uint32_t newly_matched = 0;
  const auto mark = [&](const ObjectRef& a, const ObjectRef& b) {
    if (!(*left_matched)[a.local]) {
      (*left_matched)[a.local] = 1;
      ++newly_matched;
    }
    if (!(*right_matched)[b.local]) {
      (*right_matched)[b.local] = 1;
      ++newly_matched;
    }
  };
  if (left.size() * right.size() <= kNestedLoopLimit || t.eps_doc <= 0.0) {
    for (const ObjectRef& a : left) {
      for (const ObjectRef& b : right) {
        if ((*left_matched)[a.local] && (*right_matched)[b.local]) continue;
        if (!WithinDistance(a.object->loc, b.object->loc, t.eps_loc))
          continue;
        if (!TimeCompatible(*a.object, *b.object, t.eps_time)) continue;
        if (!SizeCompatible(a.object->doc.size(), b.object->doc.size(),
                            t.eps_doc)) {
          continue;
        }
        if (SignatureGatedJaccardAtLeast(a.object->doc, a.object->sig,
                                         b.object->doc, b.object->sig,
                                         t.eps_doc, sigrej)) {
          mark(a, b);
        }
      }
    }
    return newly_matched;
  }
  PrefixIndex index(right.size(), t.eps_doc, [&right](uint32_t i) {
    return right[i].object;
  });
  std::vector<uint32_t> candidates;
  for (const ObjectRef& a : left) {
    candidates.clear();
    index.Probe(a.object->doc, t.eps_doc, &candidates);
    for (const uint32_t c : candidates) {
      const ObjectRef& b = right[c];
      if ((*left_matched)[a.local] && (*right_matched)[b.local]) continue;
      if (!WithinDistance(a.object->loc, b.object->loc, t.eps_loc)) continue;
      if (!TimeCompatible(*a.object, *b.object, t.eps_time)) continue;
      if (!SizeCompatible(a.object->doc.size(), b.object->doc.size(),
                          t.eps_doc)) {
        continue;
      }
      if (SignatureGatedJaccardAtLeast(a.object->doc, a.object->sig,
                                       b.object->doc, b.object->sig,
                                       t.eps_doc, sigrej)) {
        mark(a, b);
      }
    }
  }
  return newly_matched;
}

uint32_t PPJCrossMarkBatch(const CellBlock& left, const CellBlock& right,
                           const MatchThresholds& t,
                           std::vector<uint8_t>* left_matched,
                           std::vector<uint8_t>* right_matched,
                           JoinStats* stats) {
  if (left.refs.empty() || right.refs.empty()) return 0;
  uint64_t* const sigrej =
      stats != nullptr ? &stats->signature_rejections : nullptr;
  uint32_t newly_matched = 0;
  const auto mark = [&](const ObjectRef& a, const ObjectRef& b) {
    if (!(*left_matched)[a.local]) {
      (*left_matched)[a.local] = 1;
      ++newly_matched;
    }
    if (!(*right_matched)[b.local]) {
      (*right_matched)[b.local] = 1;
      ++newly_matched;
    }
  };
  // Per-thread hit buffer: CollectWithinEpsLoc writes at most |right|
  // positions per probe; reused across every block pair a join touches.
  thread_local std::vector<uint32_t> hits;
  if (hits.size() < right.refs.size()) hits.resize(right.refs.size());
  for (size_t i = 0; i < left.refs.size(); ++i) {
    const Point probe{left.xs[i], left.ys[i]};
    const size_t hit_count = CollectWithinEpsLoc(
        probe, right.xs, right.ys, right.refs.size(), t.eps_loc,
        hits.data());
    if (stats != nullptr) {
      ++stats->batch_distance_calls;
      stats->batch_lanes_filled += right.refs.size();
    }
    if (hit_count == 0) continue;
    const ObjectRef& a = left.refs[i];
    for (size_t h = 0; h < hit_count; ++h) {
      const ObjectRef& b = right.refs[hits[h]];
      if ((*left_matched)[a.local] && (*right_matched)[b.local]) continue;
      if (!TimeCompatible(*a.object, *b.object, t.eps_time)) continue;
      if (!SizeCompatible(a.object->doc.size(), b.object->doc.size(),
                          t.eps_doc)) {
        continue;
      }
      if (SignatureGatedJaccardAtLeast(a.object->doc, a.object->sig,
                                       b.object->doc, b.object->sig,
                                       t.eps_doc, sigrej)) {
        mark(a, b);
      }
    }
  }
  return newly_matched;
}

}  // namespace stps
