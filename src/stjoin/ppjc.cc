#include "stjoin/ppjc.h"

#include <algorithm>
#include <unordered_map>

#include "spatial/grid.h"
#include "stjoin/ppj.h"

namespace stps {

std::vector<std::pair<ObjectId, ObjectId>> PPJCSelfJoin(
    std::span<const STObject> objects, const MatchThresholds& t) {
  std::vector<std::pair<ObjectId, ObjectId>> result;
  if (objects.size() < 2) return result;

  Rect bounds = Rect::Empty();
  for (const STObject& o : objects) bounds.ExpandToInclude(o.loc);
  const GridGeometry grid(bounds, t.eps_loc);

  // Bucket objects into occupied cells.
  std::unordered_map<CellId, std::vector<const STObject*>> cells;
  cells.reserve(objects.size());
  for (const STObject& o : objects) {
    cells[grid.CellOf(o.loc)].push_back(&o);
  }
  std::vector<CellId> occupied;
  occupied.reserve(cells.size());
  for (const auto& [id, bucket] : cells) occupied.push_back(id);
  std::sort(occupied.begin(), occupied.end());

  std::vector<CellId> neighbors;
  for (const CellId cell : occupied) {
    const auto& bucket = cells[cell];
    // Self join of the cell.
    auto self_pairs =
        PPJSelfPairs(std::span<const STObject* const>(bucket), t);
    result.insert(result.end(), self_pairs.begin(), self_pairs.end());
    // Cross joins with the lower-id adjacent cells only; the symmetric
    // (higher-id) pairs are produced when those cells are visited.
    neighbors.clear();
    grid.AppendLowerNeighbors(cell, &neighbors);
    for (const CellId n : neighbors) {
      const auto it = cells.find(n);
      if (it == cells.end()) continue;
      auto cross = PPJCrossPairs(std::span<const STObject* const>(bucket),
                                 std::span<const STObject* const>(it->second),
                                 t);
      for (auto& [a, b] : cross) {
        result.emplace_back(std::min(a, b), std::max(a, b));
      }
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace stps
