// Online feedback for the query planner.
//
// Every run routed through RunSTPSJoin / RunTopKSTPSJoin — explicit
// algorithm choices included, not just kAuto — records (plan shape,
// estimated stages, measured JoinStats, elapsed ms) here. The planner
// then prices a shape as `estimated units x EWMA(measured ms / estimated
// units)` and scales its candidate estimates by the learned
// actual/estimated ratio, so repeated queries on a live database converge
// onto the measured-fastest variant instead of the a-priori model: the
// paper's Sec. 5.6 discipline (tune from observed runs) extended from
// thresholds to physical-plan choice.
//
// The map is process-global shared mutable state guarded by one mutex;
// joins are ms-scale, so one lock per run is noise. The TSan stage of
// scripts/check_all.sh runs the planner differential suite, which hammers
// Record/Predict/NoteChosenPlan from concurrent threads.

#ifndef STPS_PLANNER_FEEDBACK_H_
#define STPS_PLANNER_FEEDBACK_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "core/join_stats.h"
#include "planner/cost_model.h"

namespace stps {

class PlannerFeedback {
 public:
  /// The process-wide instance the umbrella entry points feed.
  static PlannerFeedback& Global();

  PlannerFeedback() = default;

  /// Predicted wall-clock for `cost_units` of work under `shape`: the
  /// shape's learned ms-per-unit EWMA when the shape has been observed,
  /// else the cross-shape global EWMA (so one measured run calibrates the
  /// machine's overall speed and unobserved shapes are ranked purely by
  /// their cost units — no optimistic prior to chase), else the
  /// calibration default.
  double PredictMillis(const PlanShape& shape, double cost_units) const;

  /// Learned actual/estimated candidate-pair ratio for `shape` (1 until
  /// observed). The planner passes this to EstimateShapeCost so count
  /// mispredictions self-correct.
  double CandidateCorrection(const PlanShape& shape) const;

  /// Folds one measured run into the shape's coefficients. `cost_units`
  /// is EstimateShapeCost for this shape with correction 1 (the raw model
  /// output, so the ms-per-unit EWMA stays comparable across runs).
  void Record(const PlanShape& shape, const PlanEstimate& estimate,
              double cost_units, const JoinStats& stats, double elapsed_ms);

  /// Remembers the plan chosen for a query signature; returns true when
  /// it differs from the previous choice for the same signature (a "plan
  /// switch" — the convergence signal JoinStats surfaces).
  bool NoteChosenPlan(uint64_t query_signature, const PlanShape& shape);

  /// Number of runs folded in so far.
  uint64_t total_records() const;

  /// Drops all learned state (tests; a fresh process starts empty).
  void Reset();

 private:
  struct ShapeKey {
    // Canonical small-int encoding of a PlanShape.
    uint32_t bits = 0;
    friend bool operator==(const ShapeKey& a, const ShapeKey& b) {
      return a.bits == b.bits;
    }
  };
  struct ShapeKeyHash {
    size_t operator()(const ShapeKey& k) const {
      uint64_t x = k.bits * 0x9E3779B97F4A7C15ull;
      x ^= x >> 32;
      return static_cast<size_t>(x);
    }
  };
  struct Entry {
    double ewma_ms_per_unit = 0.0;
    double ewma_candidate_ratio = 1.0;
    uint64_t runs = 0;
  };

  static ShapeKey KeyOf(const PlanShape& shape);

  mutable std::mutex mutex_;
  std::unordered_map<ShapeKey, Entry, ShapeKeyHash> entries_;
  std::unordered_map<uint64_t, ShapeKey> last_plan_;
  double global_ms_per_unit_ = 0.0;  // cross-shape EWMA
  uint64_t total_records_ = 0;
};

}  // namespace stps

#endif  // STPS_PLANNER_FEEDBACK_H_
