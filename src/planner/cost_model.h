// Selectivity estimation and cost accounting for the query planner.
//
// Two layers, deliberately separated:
//
//  * `EstimateJoinStages` predicts the *stage counts* of a query from the
//    build-time PlannerStats alone — cells visited, candidate user pairs
//    surviving the spatial filter, survivors of the textual co-location
//    filter, pairs reaching the refine kernel — plus a per-pair refine
//    cost. The estimates are algorithm-independent (every S-PPJ variant
//    walks the same candidate funnel, they differ in which stages they
//    skip) and deliberately coarse: they only need to rank plans, and the
//    online feedback (planner/feedback.h) corrects their scale from
//    measured JoinStats. Guaranteed properties, relied on by the planner
//    and pinned by tests: every estimate is finite and >= 0,
//    candidate/verified counts are nondecreasing in eps_loc and
//    nonincreasing in eps_doc and eps_u.
//
//  * `EstimateShapeCost` converts stage counts into abstract work units
//    for one physical plan shape (algorithm x sketch x threads),
//    charging each shape only for the stages it executes: S-PPJ-B/C pay
//    for every spatially co-located pair, S-PPJ-F/D pay the index build
//    plus textual survivors only, the sketch path pays band probes plus
//    full-point-set verifications, parallel shapes amortise refine work
//    across threads behind a fixed pool-spin-up charge. Units are
//    "elementary kernel operations"; PlannerFeedback's EWMA of measured
//    ms-per-unit per shape turns them into milliseconds.

#ifndef STPS_PLANNER_COST_MODEL_H_
#define STPS_PLANNER_COST_MODEL_H_

#include <cstdint>
#include <string>

#include "core/stpsjoin.h"
#include "planner/planner_stats.h"

namespace stps {

/// One physical plan shape — the unit the cost model prices and the
/// feedback map is keyed by. `join` is meaningful when !topk,
/// `topk_algorithm` when topk; the sketch flag overrides the algorithm's
/// filter stage exactly as RunSTPSJoin's routing does.
struct PlanShape {
  bool topk = false;
  JoinAlgorithm join = JoinAlgorithm::kSPPJF;
  TopKAlgorithm topk_algorithm = TopKAlgorithm::kP;
  bool sketch = false;
  int threads = 1;

  friend bool operator==(const PlanShape& a, const PlanShape& b) {
    return a.topk == b.topk && a.join == b.join &&
           a.topk_algorithm == b.topk_algorithm && a.sketch == b.sketch &&
           a.threads == b.threads;
  }
};

/// Display name of a shape's algorithm ("S-PPJ-F", "TOPK-S-PPJ-P",
/// "sketch+S-PPJ-F", ...), for Explain output and bench tables.
std::string PlanShapeName(const PlanShape& shape);

/// Estimated per-stage candidate counts for a query, plus the derived
/// per-pair refine cost. All values finite and >= 0.
struct PlanEstimate {
  double cells_visited = 0.0;       // (cell, neighbour) filter probes
  double colocated_object_pairs = 0.0;  // object pairs within ~eps_loc
  double candidate_pairs = 0.0;     // user pairs past the spatial filter
  double text_survivors = 0.0;      // ... also past the textual filter
  double verified_pairs = 0.0;      // ... reaching the refine kernel
  double verify_cost_per_pair = 0.0;  // refine units per verified pair
};

/// Predicts the stage counts of Q = <eps_loc, eps_doc, eps_u> over a
/// database summarised by `stats`. For top-k queries pass eps_doc and
/// eps_u = 0 (the threshold is discovered at run time; the k-dependent
/// discount is applied by EstimateShapeCost).
PlanEstimate EstimateJoinStages(const PlannerStats& stats, double eps_loc,
                                double eps_doc, double eps_u);

/// Total work units shape `shape` spends to execute a query with stage
/// counts `est`. `candidate_correction` scales the candidate-derived
/// stages (the feedback's learned actual/estimated ratio; pass 1 when
/// none). Finite and >= 0.
double EstimateShapeCost(const PlannerStats& stats, const PlanShape& shape,
                         const PlanEstimate& est,
                         double candidate_correction = 1.0);

}  // namespace stps

#endif  // STPS_PLANNER_COST_MODEL_H_
