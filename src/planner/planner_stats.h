// Build-time statistics backing the cost-model query planner.
//
// `PlannerStats` is the query-independent summary the planner's
// selectivity estimator reads: a multi-resolution spatial occupancy
// histogram (dyadic Morton-prefix cells, so one pass at build time serves
// every query eps_loc), the token-frequency skew of the dictionary, and
// the Table-1 dataset statistics (per-user set sizes, tokens per object)
// it embeds. Every `DatabaseBuilder::Build` computes one and caches it on
// the `ObjectDatabase`; `io/binary.cc` serializes it into the snapshot so
// external tools can read the summary without scanning the objects.
//
// The occupancy ladder: level L partitions the database bounds into
// 2^L x 2^L dyadic cells (a cell is a 2L-bit Morton-key prefix; level 0
// is the whole extent, level 16 the full 16-bit quantization of
// spatial/batch.h's ZOrderKey). Per level we keep the number of occupied
// cells, the sum of squared per-cell counts (the Σ n_c² term that
// estimates co-located object pairs), and the densest cell. Coarsening
// is monotone — merging cells can only grow Σ n_c² — which is what makes
// the derived candidate estimates monotone in eps_loc.

#ifndef STPS_PLANNER_PLANNER_STATS_H_
#define STPS_PLANNER_PLANNER_STATS_H_

#include <array>
#include <cstdint>
#include <span>

#include "core/database.h"
#include "datagen/dataset_stats.h"

namespace stps {

/// One rung of the dyadic occupancy ladder.
struct OccupancyLevel {
  uint64_t occupied_cells = 0;  // non-empty cells at this resolution
  uint64_t sum_sq_counts = 0;   // Σ over cells of (objects in cell)²
  uint64_t max_cell_count = 0;  // densest cell

  friend bool operator==(const OccupancyLevel& a, const OccupancyLevel& b) {
    return a.occupied_cells == b.occupied_cells &&
           a.sum_sq_counts == b.sum_sq_counts &&
           a.max_cell_count == b.max_cell_count;
  }
};

/// The planner's view of a database. Plain data, deterministic in the
/// database contents, cheap to serialize (fixed-size block).
struct PlannerStats {
  /// Dyadic levels 0..16: level L cuts each axis into 2^L strips.
  static constexpr int kLevels = 17;

  /// Table-1 metrics (objects/user, tokens/object, df distribution) —
  /// the cached copy `ComputeDatasetStats` returns (satellite: computed
  /// once at build, not per caller).
  DatasetStats dataset;

  std::array<OccupancyLevel, kLevels> occupancy = {};

  /// Bounds extent per axis (level-L cell size is extent / 2^L).
  double extent_x = 0.0;
  double extent_y = 0.0;

  /// Σ over tokens of df (total stored token occurrences, by document
  /// frequency — duplicates within an object collapsed).
  uint64_t total_token_occurrences = 0;
  /// Σ df² / (Σ df)²: the probability that two token occurrences drawn
  /// at random are the same token. The textual-collision knob of the
  /// selectivity estimator; 0 for an empty dictionary.
  double token_collision_rate = 0.0;
  /// max df / Σ df: head skew of the token distribution.
  double token_top_frequency = 0.0;

  friend bool operator==(const PlannerStats& a, const PlannerStats& b) {
    return a.dataset == b.dataset && a.occupancy == b.occupancy &&
           a.extent_x == b.extent_x && a.extent_y == b.extent_y &&
           a.total_token_occurrences == b.total_token_occurrences &&
           a.token_collision_rate == b.token_collision_rate &&
           a.token_top_frequency == b.token_top_frequency;
  }
};

/// Computes the full summary by scanning the database once (plus one
/// key sort). Called by DatabaseBuilder::Build; everyone else should
/// read the cached copy via ObjectDatabase::planner_stats().
PlannerStats ComputePlannerStats(const ObjectDatabase& db);

/// Same summary, but the caller supplies the sorted Morton keys of every
/// object (ascending; one `ZOrderKey(db.bounds(), o.loc)` per object, in
/// any object order). The delta publish path (core/update.cc) maintains
/// this key multiset incrementally across epochs, turning the O(n log n)
/// sort into an O(delta log delta + n) merge. Produces bit-identical
/// stats to the scanning overload — the ladder walk only sees the sorted
/// multiset, never which object owned a key.
PlannerStats ComputePlannerStats(const ObjectDatabase& db,
                                 std::span<const uint64_t> sorted_zkeys);

}  // namespace stps

#endif  // STPS_PLANNER_PLANNER_STATS_H_
