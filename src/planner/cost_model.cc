#include "planner/cost_model.h"

#include <algorithm>
#include <cmath>

namespace stps {

namespace {

// Fixed charge (in work units) for spinning up the thread pool and
// merging per-worker results; at the default ~ns-per-unit scale this is
// a few hundred microseconds, which matches the measured break-even of
// the pool drivers on small inputs.
constexpr double kPoolOverheadUnits = 150e3;
// Fraction of perfect scaling the work-stealing pool achieves on the
// join workloads (memory-bound refine stages do not scale linearly).
constexpr double kParallelEfficiency = 0.75;

double Clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

double NonNegative(double v) {
  return (std::isfinite(v) && v > 0.0) ? v : 0.0;
}

// Log-space interpolation of a per-level occupancy series at fractional
// level `x` (continuous, monotone between the rungs because the series
// itself is monotone in the level).
double InterpolateLevels(const PlannerStats& stats, double x,
                         uint64_t OccupancyLevel::*field) {
  const int last = PlannerStats::kLevels - 1;
  x = std::clamp(x, 0.0, static_cast<double>(last));
  const int i = std::min(static_cast<int>(x), last - 1);
  const double frac = x - i;
  const double lo =
      static_cast<double>(std::max<uint64_t>(1, stats.occupancy[i].*field));
  const double hi = static_cast<double>(
      std::max<uint64_t>(1, stats.occupancy[i + 1].*field));
  return std::exp((1.0 - frac) * std::log(lo) + frac * std::log(hi));
}

}  // namespace

PlanEstimate EstimateJoinStages(const PlannerStats& stats, double eps_loc,
                                double eps_doc, double eps_u) {
  PlanEstimate est;
  const double n = static_cast<double>(stats.dataset.num_objects);
  const double users = static_cast<double>(stats.dataset.num_users);
  if (n <= 0.0 || users < 2.0) return est;
  const double m = std::max(1.0, stats.dataset.objects_per_user_mean);
  const double t = std::max(0.0, stats.dataset.tokens_per_object_mean);
  const double max_user_pairs = users * (users - 1.0) / 2.0;
  const double max_object_pairs = n * (n - 1.0) / 2.0;

  // Spatial stage: pick the dyadic level whose cell size matches eps_loc
  // (level = log2(extent / eps_loc)) and read the co-located object-pair
  // mass off the occupancy ladder. Smaller eps_loc -> finer level ->
  // smaller sum of squared cell counts, so the estimate is nondecreasing
  // in eps_loc by construction.
  const double extent = std::max(stats.extent_x, stats.extent_y);
  double level = static_cast<double>(PlannerStats::kLevels - 1);
  if (eps_loc > 0.0 && extent > 0.0 && eps_loc < extent) {
    level = std::log2(extent / eps_loc);
  } else if (eps_loc > 0.0) {
    level = 0.0;  // threshold covers the whole extent: everything pairs
  }
  const double sum_sq =
      InterpolateLevels(stats, level, &OccupancyLevel::sum_sq_counts);
  const double occupied =
      InterpolateLevels(stats, level, &OccupancyLevel::occupied_cells);
  // Same-cell unordered pairs, inflated ~4.5x for the 8-cell adjacency
  // the grid filters probe, capped at the all-pairs ceiling.
  const double within = std::max(0.0, (sum_sq - n) / 2.0);
  est.colocated_object_pairs =
      std::min(max_object_pairs, 4.5 * within);
  est.cells_visited = NonNegative(occupied * 9.0);

  // A user pair is a spatial candidate when at least one of its object
  // pairs is co-located; with ~(1 - 1/U) of co-located pairs crossing
  // users, saturate Poisson-style against the all-pairs ceiling (keeps
  // the estimate monotone and below U(U-1)/2).
  const double crossing =
      est.colocated_object_pairs * (1.0 - 1.0 / users);
  const double lambda =
      max_user_pairs > 0.0 ? crossing / max_user_pairs : 0.0;
  est.candidate_pairs = max_user_pairs * (1.0 - std::exp(-lambda));

  // Textual stage: probability a candidate pair shares any token,
  // estimated from the dictionary's collision rate over the ~m*t token
  // occurrences each side holds. eps_doc only tightens the filter, so
  // survivors interpolate from "everything" at eps_doc = 0 down to the
  // shared-token mass at eps_doc = 1 (nonincreasing in eps_doc).
  const double tokens_per_user = m * t;
  const double share_rate = NonNegative(
      tokens_per_user * tokens_per_user * stats.token_collision_rate);
  const double p_share = 1.0 - std::exp(-share_rate);
  const double doc = Clamp01(eps_doc);
  est.text_survivors =
      est.candidate_pairs * ((1.0 - doc) + doc * p_share);

  // Count-bound stage: the sigma_bar upper bound kills a fraction of
  // candidates that grows with eps_u (half at eps_u = 1 is the measured
  // ballpark on the bench presets; feedback refines it).
  est.verified_pairs = est.text_survivors * (1.0 - 0.5 * Clamp01(eps_u));

  // Refine cost: a verified pair compares the co-located object pairs of
  // the merged cell walk (at least one pass over a point set, at most
  // the full |Du| x |Dv| product), each comparison costing a distance
  // test plus a token-list intersection.
  const double pairs_per_candidate =
      est.colocated_object_pairs / std::max(1.0, est.candidate_pairs);
  est.verify_cost_per_pair =
      std::clamp(pairs_per_candidate, m, m * m) * (t + 4.0);

  est.cells_visited = NonNegative(est.cells_visited);
  est.colocated_object_pairs = NonNegative(est.colocated_object_pairs);
  est.candidate_pairs = NonNegative(est.candidate_pairs);
  est.text_survivors = NonNegative(est.text_survivors);
  est.verified_pairs = NonNegative(est.verified_pairs);
  est.verify_cost_per_pair = NonNegative(est.verify_cost_per_pair);
  return est;
}

double EstimateShapeCost(const PlannerStats& stats, const PlanShape& shape,
                         const PlanEstimate& est,
                         double candidate_correction) {
  const double n = static_cast<double>(stats.dataset.num_objects);
  const double users = static_cast<double>(stats.dataset.num_users);
  const double m = std::max(1.0, stats.dataset.objects_per_user_mean);
  const double t = std::max(0.0, stats.dataset.tokens_per_object_mean);
  const double correction =
      (std::isfinite(candidate_correction) && candidate_correction > 0.0)
          ? candidate_correction
          : 1.0;
  const double max_user_pairs = std::max(0.0, users * (users - 1.0) / 2.0);
  const double per_pair = std::max(1.0, est.verify_cost_per_pair);
  const double brute_per_pair = m * m * (t + 4.0);

  double build = 0.0;   // query-independent setup (grid/index/tree)
  double refine = 0.0;  // candidate-driven work, parallelisable
  const JoinAlgorithm algorithm =
      shape.topk ? JoinAlgorithm::kSPPJF : shape.join;

  if (shape.sketch) {
    // Band-index probe per user plus a full PPJ-B point-set verification
    // per surfaced candidate; the band index surfaces a superset of the
    // textual survivors (shared token => shared band, plus collisions).
    build = users * 64.0;
    refine = 1.3 * correction * est.text_survivors * brute_per_pair;
  } else {
    switch (algorithm) {
      case JoinAlgorithm::kBruteForce:
        refine = max_user_pairs * brute_per_pair;
        break;
      case JoinAlgorithm::kSPPJC:
        // No textual filter: every spatially co-located pair is refined,
        // and every co-located object pair is touched by the cell merge.
        build = 2.0 * n;
        refine = correction * (est.candidate_pairs * per_pair +
                               2.0 * est.colocated_object_pairs);
        break;
      case JoinAlgorithm::kSPPJB:
        // Same funnel as S-PPJ-C with the odd/even row partitioning
        // halving the duplicate neighbour visits.
        build = 2.0 * n;
        refine = 0.9 * correction * (est.candidate_pairs * per_pair +
                                     2.0 * est.colocated_object_pairs);
        break;
      case JoinAlgorithm::kSPPJF:
        // Incremental inverted index: pay per stored (object, token) to
        // build and probe, refine only the textual survivors, plus
        // per-candidate bookkeeping for the count bound.
        build = 2.0 * n * (t + 2.0);
        refine = correction * (est.text_survivors * per_pair +
                               4.0 * est.candidate_pairs) +
                 est.cells_visited * (t + 1.0);
        break;
      case JoinAlgorithm::kSPPJD:
        // S-PPJ-F's funnel over R-tree leaves: tree build on top, mildly
        // worse partition locality.
        build = 2.0 * n * (t + 2.0) +
                n * std::log2(std::max(2.0, n));
        refine = 1.15 * (correction * (est.text_survivors * per_pair +
                                       4.0 * est.candidate_pairs) +
                         est.cells_visited * (t + 1.0));
        break;
      default:
        refine = max_user_pairs * brute_per_pair;
        break;
    }
  }

  if (shape.topk) {
    // The result-queue threshold prunes the refine tail once k real
    // pairs are queued; the discount is deliberately mild (the queue
    // only helps after it fills).
    refine *= 0.8;
    if (shape.topk_algorithm == TopKAlgorithm::kS) refine *= 1.05;
    if (shape.topk_algorithm == TopKAlgorithm::kP) refine *= 0.9;
    if (shape.topk_algorithm == TopKAlgorithm::kBruteForce) {
      build = 0.0;
      refine = max_user_pairs * brute_per_pair;
    }
  }

  double total = build + refine;
  if (shape.threads > 1) {
    total = build + refine / (kParallelEfficiency * shape.threads) +
            kPoolOverheadUnits;
  }
  return NonNegative(total);
}

std::string PlanShapeName(const PlanShape& shape) {
  std::string name;
  if (shape.sketch) name += "sketch+";
  name += shape.topk ? TopKAlgorithmName(shape.topk_algorithm)
                     : JoinAlgorithmName(shape.join);
  return name;
}

}  // namespace stps
