// Cost-model-driven physical planning for RunSTPSJoin / RunTopKSTPSJoin.
//
// `PlanSTPSJoin` enumerates the feasible plan shapes for a query — every
// algorithm whose preconditions hold, sketch candidate generation on and
// off, sequential and pooled execution within the caller's thread budget
// — prices each one through the cost model (planner/cost_model.h) scaled
// by the online feedback's learned coefficients (planner/feedback.h), and
// returns the cheapest. Every shape computes the exact same result set
// (the library's algorithms are all exact), so the planner can only ever
// be wrong about speed, never about answers; JoinAlgorithm::kAuto /
// TopKAlgorithm::kAuto route through here.
//
// `ExplainPlan` renders the decision: the chosen shape, the estimated
// stage counts, the rejected alternatives with their predicted costs,
// and — when the caller passes the measured JoinStats back in — an
// estimated-vs-actual counter table.

#ifndef STPS_PLANNER_PLANNER_H_
#define STPS_PLANNER_PLANNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/stpsjoin.h"
#include "planner/cost_model.h"

namespace stps {

/// One priced alternative the planner considered.
struct PlanCandidate {
  PlanShape shape;
  double cost_units = 0.0;
  double predicted_ms = 0.0;
};

/// The planner's decision for one query: the shape to execute plus the
/// physical knobs RunSTPSJoin needs, the estimates backing the choice,
/// and the full candidate table for Explain output.
struct PhysicalPlan {
  PlanShape shape;
  /// ParallelFor chunk size to use (0 = the pool's automatic choice).
  size_t grain = 0;
  /// R-tree node capacity, honoured when shape.join == kSPPJD.
  int rtree_fanout = 128;
  /// Stage estimates for the query (shape-independent).
  PlanEstimate estimate;
  /// Cost of the chosen shape in model units (feedback-corrected).
  double cost_units = 0.0;
  /// Predicted wall-clock of the chosen shape.
  double predicted_ms = 0.0;
  /// Hash of (database identity, thresholds) keying plan-switch
  /// detection in PlannerFeedback::NoteChosenPlan.
  uint64_t query_signature = 0;
  /// Every feasible shape with its price, cheapest first.
  std::vector<PlanCandidate> considered;
};

/// Plans Q = <eps_loc, eps_doc, eps_u>. `options` carries the caller's
/// knobs: `options.threads` (max'd with query.parallel.num_threads) is
/// the thread *budget* — the planner picks sequential execution when the
/// pool spin-up costs more than it saves — and `options.rtree_fanout`
/// passes through. `options.algorithm` is ignored (the planner chooses).
/// Sketch candidate generation is considered whenever it is sound for
/// the query, even when query.sketch.enabled is false: enabling it never
/// changes results, only work.
PhysicalPlan PlanSTPSJoin(const ObjectDatabase& db, const STPSQuery& query,
                          const JoinOptions& options = {});

/// Plans a top-k query; the thread budget is query.parallel.num_threads.
PhysicalPlan PlanTopKSTPSJoin(const ObjectDatabase& db,
                              const TopKQuery& query);

/// Human-readable rendering of a plan: chosen shape, stage estimates,
/// candidate table. With `actual`, appends an estimated-vs-actual
/// counter comparison from the measured run.
std::string ExplainPlan(const PhysicalPlan& plan,
                        const JoinStats* actual = nullptr);

}  // namespace stps

#endif  // STPS_PLANNER_PLANNER_H_
