#include "planner/planner_stats.h"

#include <algorithm>
#include <bit>
#include <vector>

#include "common/macros.h"
#include "spatial/batch.h"
#include "text/dictionary.h"

namespace stps {

namespace {

// The ladder + token-skew summary over an already-sorted key multiset.
PlannerStats ComputeFromSortedKeys(const ObjectDatabase& db,
                                   std::span<const uint64_t> keys) {
  PlannerStats stats;
  stats.dataset = ComputeDatasetStatsUncached(db);

  const Rect& bounds = db.bounds();
  if (!bounds.IsEmpty()) {
    stats.extent_x = bounds.max_x - bounds.min_x;
    stats.extent_y = bounds.max_y - bounds.min_y;
  }

  // Occupancy ladder: at level L a dyadic cell is the top 2L bits of the
  // key (2 bits per level; keys are 32-bit Morton values held in uint64,
  // so the level-0 prefix is 0 for every key). All levels come out of a
  // single walk over the sorted keys: adjacent keys split a level-L run
  // iff their XOR reaches above the kept 32 - 2L bits, so the XOR's bit
  // width names the shallowest splitting level and every deeper level
  // splits with it.
  const size_t n = keys.size();
  size_t run_start[PlannerStats::kLevels] = {};
  const auto close_run = [&stats](int level, uint64_t count) {
    OccupancyLevel& occ = stats.occupancy[level];
    occ.occupied_cells += 1;
    occ.sum_sq_counts += count * count;
    occ.max_cell_count = std::max(occ.max_cell_count, count);
  };
  for (size_t i = 1; i < n; ++i) {
    const uint64_t diff = keys[i - 1] ^ keys[i];
    if (diff == 0) continue;
    // Splits at level L iff 2L > 32 - bit_width(diff).
    const int min_level = (32 - std::bit_width(diff)) / 2 + 1;
    for (int level = min_level; level < PlannerStats::kLevels; ++level) {
      close_run(level, i - run_start[level]);
      run_start[level] = i;
    }
  }
  if (n > 0) {
    for (int level = 0; level < PlannerStats::kLevels; ++level) {
      close_run(level, n - run_start[level]);
    }
  }

  // Token skew from the dictionary's document frequencies.
  const Dictionary& dict = db.dictionary();
  uint64_t total = 0;
  uint64_t max_df = 0;
  double sum_sq = 0.0;
  for (TokenId t = 0; t < dict.size(); ++t) {
    const uint64_t df = dict.Frequency(t);
    total += df;
    max_df = std::max(max_df, df);
    sum_sq += static_cast<double>(df) * static_cast<double>(df);
  }
  stats.total_token_occurrences = total;
  if (total > 0) {
    const double total_d = static_cast<double>(total);
    stats.token_collision_rate = sum_sq / (total_d * total_d);
    stats.token_top_frequency = static_cast<double>(max_df) / total_d;
  }
  return stats;
}

}  // namespace

PlannerStats ComputePlannerStats(const ObjectDatabase& db) {
  std::vector<uint64_t> keys;
  keys.reserve(db.num_objects());
  for (const STObject& o : db.AllObjects()) {
    keys.push_back(ZOrderKey(db.bounds(), o.loc));
  }
  std::sort(keys.begin(), keys.end());
  return ComputeFromSortedKeys(db, keys);
}

PlannerStats ComputePlannerStats(const ObjectDatabase& db,
                                 std::span<const uint64_t> sorted_zkeys) {
  STPS_DCHECK(sorted_zkeys.size() == db.num_objects());
  STPS_DCHECK(
      std::is_sorted(sorted_zkeys.begin(), sorted_zkeys.end()));
  return ComputeFromSortedKeys(db, sorted_zkeys);
}

}  // namespace stps
