#include "planner/planner_stats.h"

#include <algorithm>
#include <vector>

#include "spatial/batch.h"
#include "text/dictionary.h"

namespace stps {

PlannerStats ComputePlannerStats(const ObjectDatabase& db) {
  PlannerStats stats;
  stats.dataset = ComputeDatasetStatsUncached(db);

  const Rect& bounds = db.bounds();
  if (!bounds.IsEmpty()) {
    stats.extent_x = bounds.max_x - bounds.min_x;
    stats.extent_y = bounds.max_y - bounds.min_y;
  }

  // Occupancy ladder: one Morton key per object, sorted once; at level L
  // a dyadic cell is the top 2L bits of the key, so each level is a
  // run-length walk over the sorted keys.
  const size_t n = db.num_objects();
  std::vector<uint64_t> keys;
  keys.reserve(n);
  for (const STObject& o : db.AllObjects()) {
    keys.push_back(ZOrderKey(bounds, o.loc));
  }
  std::sort(keys.begin(), keys.end());
  for (int level = 0; level < PlannerStats::kLevels; ++level) {
    OccupancyLevel& occ = stats.occupancy[level];
    // 2 bits per level; keys are 32-bit Morton values held in uint64, so
    // the level-0 shift of 32 cleanly yields prefix 0 for every key.
    const int shift = 32 - 2 * level;
    size_t i = 0;
    while (i < n) {
      const uint64_t prefix = keys[i] >> shift;
      size_t j = i;
      while (j < n && (keys[j] >> shift) == prefix) ++j;
      const uint64_t count = j - i;
      occ.occupied_cells += 1;
      occ.sum_sq_counts += count * count;
      occ.max_cell_count = std::max(occ.max_cell_count, count);
      i = j;
    }
  }

  // Token skew from the dictionary's document frequencies.
  const Dictionary& dict = db.dictionary();
  uint64_t total = 0;
  uint64_t max_df = 0;
  double sum_sq = 0.0;
  for (TokenId t = 0; t < dict.size(); ++t) {
    const uint64_t df = dict.Frequency(t);
    total += df;
    max_df = std::max(max_df, df);
    sum_sq += static_cast<double>(df) * static_cast<double>(df);
  }
  stats.total_token_occurrences = total;
  if (total > 0) {
    const double total_d = static_cast<double>(total);
    stats.token_collision_rate = sum_sq / (total_d * total_d);
    stats.token_top_frequency = static_cast<double>(max_df) / total_d;
  }
  return stats;
}

}  // namespace stps
