#include "planner/planner.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "planner/feedback.h"

namespace stps {

namespace {

uint64_t HashMix(uint64_t h, uint64_t v) {
  // FNV-1a over the value's bytes.
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFFu;
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t HashDouble(uint64_t h, double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return HashMix(h, bits);
}

constexpr uint64_t kFnvOffset = 14695981039346656037ull;

/// Prices every shape in `shapes` and returns the plan choosing the
/// cheapest (predicted milliseconds; ties go to the earlier entry, so
/// the enumeration order below is a deterministic preference order).
PhysicalPlan PickCheapest(const PlannerStats& stats,
                          const PlanEstimate& estimate,
                          std::vector<PlanShape> shapes) {
  PlannerFeedback& feedback = PlannerFeedback::Global();
  PhysicalPlan plan;
  plan.estimate = estimate;
  plan.considered.reserve(shapes.size());
  size_t best = 0;
  for (size_t i = 0; i < shapes.size(); ++i) {
    PlanCandidate c;
    c.shape = shapes[i];
    c.cost_units = EstimateShapeCost(stats, c.shape, estimate,
                                     feedback.CandidateCorrection(c.shape));
    c.predicted_ms = feedback.PredictMillis(c.shape, c.cost_units);
    plan.considered.push_back(c);
    if (c.predicted_ms < plan.considered[best].predicted_ms) best = i;
  }
  plan.shape = plan.considered[best].shape;
  plan.cost_units = plan.considered[best].cost_units;
  plan.predicted_ms = plan.considered[best].predicted_ms;
  std::stable_sort(plan.considered.begin(), plan.considered.end(),
                   [](const PlanCandidate& a, const PlanCandidate& b) {
                     return a.predicted_ms < b.predicted_ms;
                   });
  return plan;
}

}  // namespace

PhysicalPlan PlanSTPSJoin(const ObjectDatabase& db, const STPSQuery& query,
                          const JoinOptions& options) {
  PhysicalPlan fallback;
  fallback.shape.topk = false;
  fallback.shape.join = JoinAlgorithm::kBruteForce;
  fallback.rtree_fanout = options.rtree_fanout;
  if (db.num_objects() == 0 || db.num_users() < 2 ||
      !db.has_planner_stats()) {
    // Nothing to join (or nothing to plan with): brute force settles the
    // handful of pairs without any index build.
    return fallback;
  }
  const PlannerStats& stats = db.planner_stats();
  const int budget = std::max(
      1, std::max(options.threads, query.parallel.num_threads));

  // Feasible shapes, in deterministic preference order (ties in predicted
  // cost resolve to the earlier entry). Preconditions mirror the
  // per-algorithm contracts in core/stpsjoin.h: the grid algorithms need
  // a positive spatial threshold, the filter-at-a-time pair (F, D) and
  // the sketch path additionally need real textual and similarity
  // thresholds.
  const bool grid_ok = query.eps_loc > 0.0;
  const bool filter_ok =
      grid_ok && query.eps_doc > 0.0 && query.eps_u > 0.0;
  // Sketch verification re-walks the eps_loc user grid, so it shares the
  // grid precondition on top of the textual ones.
  const bool sketch_ok = grid_ok && db.has_sketches() &&
                         query.eps_doc > 0.0 && query.eps_u > 0.0;
  std::vector<PlanShape> shapes;
  const int thread_options[2] = {1, budget};
  const int num_thread_options = budget > 1 ? 2 : 1;
  for (int ti = 0; ti < num_thread_options; ++ti) {
    const int threads = thread_options[ti];
    PlanShape s;
    s.topk = false;
    s.threads = threads;
    if (filter_ok) {
      s.join = JoinAlgorithm::kSPPJF;
      shapes.push_back(s);
      s.join = JoinAlgorithm::kSPPJD;
      shapes.push_back(s);
    }
    if (sketch_ok) {
      s.join = JoinAlgorithm::kSPPJF;
      s.sketch = true;
      shapes.push_back(s);
      s.sketch = false;
    }
    if (grid_ok) {
      s.join = JoinAlgorithm::kSPPJB;
      shapes.push_back(s);
      s.join = JoinAlgorithm::kSPPJC;
      shapes.push_back(s);
    }
    if (threads == 1) {  // brute force has no parallel driver
      s.join = JoinAlgorithm::kBruteForce;
      shapes.push_back(s);
    }
  }

  PhysicalPlan plan = PickCheapest(
      stats,
      EstimateJoinStages(stats, query.eps_loc, query.eps_doc, query.eps_u),
      std::move(shapes));
  plan.grain = query.parallel.grain;
  plan.rtree_fanout = options.rtree_fanout;
  uint64_t sig = kFnvOffset;
  sig = HashMix(sig, 1);  // join query tag
  sig = HashDouble(sig, query.eps_loc);
  sig = HashDouble(sig, query.eps_doc);
  sig = HashDouble(sig, query.eps_u);
  sig = HashDouble(sig, query.eps_time);
  sig = HashMix(sig, db.num_objects());
  sig = HashMix(sig, db.num_users());
  plan.query_signature = sig;
  return plan;
}

PhysicalPlan PlanTopKSTPSJoin(const ObjectDatabase& db,
                              const TopKQuery& query) {
  PhysicalPlan fallback;
  fallback.shape.topk = true;
  fallback.shape.topk_algorithm = TopKAlgorithm::kBruteForce;
  if (db.num_objects() == 0 || db.num_users() < 2 ||
      !db.has_planner_stats()) {
    return fallback;
  }
  const PlannerStats& stats = db.planner_stats();
  const int budget = std::max(1, query.parallel.num_threads);

  // The index-based variants require eps_doc > 0 (core/topk.h) and build
  // the eps_loc user grid, so both thresholds must be real; the sketch
  // path shares those preconditions (a band collision implies a shared
  // token only when textual overlap is required for a match at all, and
  // its verification re-walks the same grid).
  const bool index_ok = query.eps_doc > 0.0 && query.eps_loc > 0.0;
  const bool sketch_ok = index_ok && db.has_sketches();
  std::vector<PlanShape> shapes;
  const int thread_options[2] = {1, budget};
  const int num_thread_options = budget > 1 ? 2 : 1;
  for (int ti = 0; ti < num_thread_options; ++ti) {
    const int threads = thread_options[ti];
    PlanShape s;
    s.topk = true;
    s.threads = threads;
    if (index_ok) {
      s.topk_algorithm = TopKAlgorithm::kP;
      shapes.push_back(s);
      s.topk_algorithm = TopKAlgorithm::kF;
      shapes.push_back(s);
      s.topk_algorithm = TopKAlgorithm::kS;
      shapes.push_back(s);
    }
    if (sketch_ok) {
      s.topk_algorithm = TopKAlgorithm::kP;
      s.sketch = true;
      shapes.push_back(s);
      s.sketch = false;
    }
    if (threads == 1) {
      s.topk_algorithm = TopKAlgorithm::kBruteForce;
      shapes.push_back(s);
    }
  }

  // Top-k discovers its similarity threshold at run time; estimate the
  // funnel with open textual/similarity thresholds (the k-dependent
  // queue discount lives in EstimateShapeCost).
  PhysicalPlan plan =
      PickCheapest(stats, EstimateJoinStages(stats, query.eps_loc,
                                             query.eps_doc, 0.0),
                   std::move(shapes));
  plan.grain = query.parallel.grain;
  uint64_t sig = kFnvOffset;
  sig = HashMix(sig, 2);  // top-k query tag
  sig = HashDouble(sig, query.eps_loc);
  sig = HashDouble(sig, query.eps_doc);
  sig = HashMix(sig, query.k);
  sig = HashDouble(sig, query.eps_time);
  sig = HashMix(sig, db.num_objects());
  sig = HashMix(sig, db.num_users());
  plan.query_signature = sig;
  return plan;
}

std::string ExplainPlan(const PhysicalPlan& plan, const JoinStats* actual) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "plan: %s threads=%d grain=%zu fanout=%d "
                "(%.3g units, predicted %.3f ms)\n",
                PlanShapeName(plan.shape).c_str(), plan.shape.threads,
                plan.grain, plan.rtree_fanout, plan.cost_units,
                plan.predicted_ms);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "estimate: cells=%.3g colocated=%.3g candidates=%.3g "
                "text_survivors=%.3g verified=%.3g cost/pair=%.3g\n",
                plan.estimate.cells_visited,
                plan.estimate.colocated_object_pairs,
                plan.estimate.candidate_pairs, plan.estimate.text_survivors,
                plan.estimate.verified_pairs,
                plan.estimate.verify_cost_per_pair);
  out += buf;
  for (const PlanCandidate& c : plan.considered) {
    std::snprintf(buf, sizeof(buf), "  %-24s threads=%-2d %12.3g units "
                  "-> %9.3f ms%s\n",
                  PlanShapeName(c.shape).c_str(), c.shape.threads,
                  c.cost_units, c.predicted_ms,
                  c.shape == plan.shape ? "   [chosen]" : "");
    out += buf;
  }
  if (actual != nullptr) {
    const auto row = [&out, &buf](const char* name, double est,
                                  uint64_t act) {
      std::snprintf(buf, sizeof(buf), "  %-18s est %14.0f   actual %14" PRIu64
                    "\n", name, est, act);
      out += buf;
    };
    out += "estimated vs actual:\n";
    row("cells_visited", plan.estimate.cells_visited, actual->cells_visited);
    row("candidate_pairs", plan.estimate.candidate_pairs,
        std::max(actual->pairs_candidate, actual->sketch_candidate_pairs));
    row("verified_pairs", plan.estimate.verified_pairs,
        actual->pairs_verified);
    std::snprintf(buf, sizeof(buf), "  %-18s actual %14" PRIu64 "\n",
                  "matches_found", actual->matches_found);
    out += buf;
  }
  return out;
}

}  // namespace stps
