#include "planner/feedback.h"

#include <algorithm>
#include <cmath>

namespace stps {

namespace {

// EWMA weight of the newest observation. High enough that the bench's
// warm-up runs dominate the prior within 2-3 repetitions, low enough
// that one noisy timing does not flip the plan choice.
constexpr double kAlpha = 0.4;

// Calibration prior: milliseconds per abstract work unit before any run
// of a shape has been measured. One "unit" is roughly one elementary
// kernel operation (a distance test, a token comparison), a few ns on
// current hardware.
constexpr double kDefaultMsPerUnit = 2e-6;

// Observations are clamped into a sane band before entering the EWMA so
// a degenerate run (zero estimate, timer quantisation) cannot poison the
// learned coefficient forever.
constexpr double kMinMsPerUnit = kDefaultMsPerUnit / 256.0;
constexpr double kMaxMsPerUnit = kDefaultMsPerUnit * 256.0;
constexpr double kMinRatio = 1.0 / 64.0;
constexpr double kMaxRatio = 64.0;

}  // namespace

PlannerFeedback& PlannerFeedback::Global() {
  static PlannerFeedback* instance = new PlannerFeedback();
  return *instance;
}

PlannerFeedback::ShapeKey PlannerFeedback::KeyOf(const PlanShape& shape) {
  ShapeKey key;
  key.bits = static_cast<uint32_t>(shape.topk ? 1 : 0) |
             (static_cast<uint32_t>(shape.join) << 1) |
             (static_cast<uint32_t>(shape.topk_algorithm) << 4) |
             (static_cast<uint32_t>(shape.sketch ? 1 : 0) << 7) |
             (static_cast<uint32_t>(std::clamp(shape.threads, 0, 0xFFFF))
              << 8);
  return key;
}

double PlannerFeedback::PredictMillis(const PlanShape& shape,
                                      double cost_units) const {
  double per_unit = kDefaultMsPerUnit;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(KeyOf(shape));
    if (it != entries_.end() && it->second.runs > 0) {
      per_unit = it->second.ewma_ms_per_unit;
    } else if (total_records_ > 0) {
      per_unit = global_ms_per_unit_;
    }
  }
  const double units =
      (std::isfinite(cost_units) && cost_units > 0.0) ? cost_units : 0.0;
  return per_unit * units;
}

double PlannerFeedback::CandidateCorrection(const PlanShape& shape) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(KeyOf(shape));
  if (it == entries_.end() || it->second.runs == 0) return 1.0;
  return it->second.ewma_candidate_ratio;
}

void PlannerFeedback::Record(const PlanShape& shape,
                             const PlanEstimate& estimate, double cost_units,
                             const JoinStats& stats, double elapsed_ms) {
  if (!std::isfinite(elapsed_ms) || elapsed_ms < 0.0) return;
  if (!std::isfinite(cost_units) || cost_units < 0.0) return;

  // The actual/estimated ratio only means something when the estimator
  // produced a real positive count. Guard the denominator *before*
  // forming the quotient: a zero estimate (empty database, fully pruned
  // plan) or a non-finite one must not enter the EWMA at all — clamping
  // actual/max(1, 0) would fabricate a ratio of up to kMaxRatio and
  // poison the learned correction for every later query of this shape.
  const bool has_estimate = std::isfinite(estimate.candidate_pairs) &&
                            estimate.candidate_pairs >= 1.0;
  double ratio = 1.0;
  if (has_estimate) {
    const double actual_candidates = std::max(
        1.0, static_cast<double>(std::max(stats.pairs_candidate,
                                          stats.sketch_candidate_pairs)));
    ratio = std::clamp(actual_candidates / estimate.candidate_pairs,
                       kMinRatio, kMaxRatio);
  }

  const double units = std::max(1.0, cost_units);
  const double per_unit =
      std::clamp(elapsed_ms / units, kMinMsPerUnit, kMaxMsPerUnit);

  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entries_[KeyOf(shape)];
  if (entry.runs == 0) {
    entry.ewma_ms_per_unit = per_unit;
    if (has_estimate) entry.ewma_candidate_ratio = ratio;
  } else {
    entry.ewma_ms_per_unit =
        (1.0 - kAlpha) * entry.ewma_ms_per_unit + kAlpha * per_unit;
    if (has_estimate) {
      entry.ewma_candidate_ratio =
          (1.0 - kAlpha) * entry.ewma_candidate_ratio + kAlpha * ratio;
    }
  }
  ++entry.runs;
  global_ms_per_unit_ = total_records_ == 0
                            ? per_unit
                            : (1.0 - kAlpha) * global_ms_per_unit_ +
                                  kAlpha * per_unit;
  ++total_records_;
}

bool PlannerFeedback::NoteChosenPlan(uint64_t query_signature,
                                     const PlanShape& shape) {
  const ShapeKey key = KeyOf(shape);
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = last_plan_.try_emplace(query_signature, key);
  if (inserted) return false;
  const bool switched = !(it->second == key);
  it->second = key;
  return switched;
}

uint64_t PlannerFeedback::total_records() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_records_;
}

void PlannerFeedback::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  last_plan_.clear();
  global_ms_per_unit_ = 0.0;
  total_records_ = 0;
}

}  // namespace stps
