#include "textjoin/allpairs.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "common/macros.h"
#include "text/similarity.h"
#include "text/token_set.h"

namespace stps {

std::vector<IndexPair> AllPairsSelf(const std::vector<TokenVector>& records,
                                    double threshold) {
  // ALL-PAIRS is PPJOIN with the positional and suffix filters disabled:
  // candidate generation degenerates to prefix + size filtering, which is
  // exactly Bayardo et al.'s pruned inverted-index probe.
  TextJoinOptions options;
  options.threshold = threshold;
  options.positional_filter = false;
  options.suffix_filter = false;
  return PPJoinSelf(records, options);
}

}  // namespace stps
