#include "textjoin/ppjoin.h"

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "text/intersect.h"
#include "text/similarity.h"
#include "text/token_set.h"

namespace stps {

namespace textjoin_internal {

namespace {

// Splits `s` at token `w`: *left gets the elements < w, *right the
// elements > w, and *diff is 1 when w itself is absent from s. The split
// always happens at the true insertion position, so the length-difference
// arithmetic in SuffixFilterBound is a genuine Hamming lower bound (a
// window-restricted search, as in the original pseudocode, can misfire
// when w lies outside the window's *value* range even though the
// alignment shift is small).
void Partition(std::span<const TokenId> s, TokenId w,
               std::span<const TokenId>* left,
               std::span<const TokenId>* right, int* diff) {
  const auto it = std::lower_bound(s.begin(), s.end(), w);
  const size_t p = static_cast<size_t>(it - s.begin());
  if (it != s.end() && *it == w) {
    *left = s.subspan(0, p);
    *right = s.subspan(p + 1);
    *diff = 0;
  } else {
    *left = s.subspan(0, p);
    *right = s.subspan(p);
    *diff = 1;
  }
}

}  // namespace

int SuffixFilterBound(std::span<const TokenId> x, std::span<const TokenId> y,
                      int hmax, int depth, int max_depth) {
  const int len_diff =
      std::abs(static_cast<int>(x.size()) - static_cast<int>(y.size()));
  if (x.empty() || y.empty()) {
    return static_cast<int>(x.size() + y.size());  // exact Hamming distance
  }
  if (depth > max_depth) return len_diff;  // trivial lower bound
  if (hmax < len_diff) return len_diff;    // already decided by lengths

  const size_t mid = y.size() / 2;
  const TokenId w = y[mid];
  std::span<const TokenId> x_left, x_right;
  int diff = 0;
  Partition(x, w, &x_left, &x_right, &diff);
  const std::span<const TokenId> y_left = y.subspan(0, mid);
  const std::span<const TokenId> y_right = y.subspan(mid + 1);
  const int left_diff = std::abs(static_cast<int>(x_left.size()) -
                                 static_cast<int>(y_left.size()));
  const int right_diff = std::abs(static_cast<int>(x_right.size()) -
                                  static_cast<int>(y_right.size()));
  int bound = left_diff + right_diff + diff;
  if (bound > hmax) return bound;
  const int h_left = SuffixFilterBound(x_left, y_left,
                                       hmax - right_diff - diff, depth + 1,
                                       max_depth);
  bound = h_left + right_diff + diff;
  if (bound > hmax) return bound;
  const int h_right = SuffixFilterBound(x_right, y_right,
                                        hmax - h_left - diff, depth + 1,
                                        max_depth);
  return h_left + h_right + diff;
}

}  // namespace textjoin_internal

namespace {

using textjoin_internal::SuffixFilterBound;

constexpr int32_t kKilled = -1;

// Shared candidate-accumulation state, reset between probe records.
struct CandidateSet {
  // overlap[i] > 0: partial overlap; kKilled: pruned for this probe.
  std::vector<int32_t> overlap;
  std::vector<uint32_t> touched;

  explicit CandidateSet(size_t n) : overlap(n, 0) { touched.reserve(64); }

  void Reset() {
    for (const uint32_t id : touched) overlap[id] = 0;
    touched.clear();
  }
};

// Applies the PPJOIN(+) filters for a shared token of records x (at
// position i) and y (at position j). Updates the candidate state.
void ProcessSharedToken(const TokenVector& x, size_t i, const TokenVector& y,
                        size_t j, uint32_t y_id, const TextJoinOptions& opt,
                        CandidateSet* cands) {
  int32_t& count = cands->overlap[y_id];
  if (count == kKilled) return;
  const size_t alpha = MinOverlapForJaccard(x.size(), y.size(), opt.threshold);
  const size_t remaining =
      1 + std::min(x.size() - i - 1, y.size() - j - 1);
  if (count == 0) {
    cands->touched.push_back(y_id);
    if (opt.positional_filter && remaining < alpha) {
      count = kKilled;
      return;
    }
    if (opt.suffix_filter && alpha > 1) {
      const std::span<const TokenId> xs(x.data() + i + 1, x.size() - i - 1);
      const std::span<const TokenId> ys(y.data() + j + 1, y.size() - j - 1);
      const int hmax = static_cast<int>(xs.size() + ys.size()) -
                       2 * (static_cast<int>(alpha) - 1);
      if (hmax < 0 ||
          SuffixFilterBound(xs, ys, hmax, 0, opt.suffix_filter_max_depth) >
              hmax) {
        count = kKilled;
        return;
      }
    }
    count = 1;
  } else {
    if (opt.positional_filter &&
        static_cast<size_t>(count) + remaining < alpha) {
      count = kKilled;
      return;
    }
    ++count;
  }
}

struct Posting {
  uint32_t record;
  uint32_t position;
};

}  // namespace

std::vector<IndexPair> PPJoinSelf(const std::vector<TokenVector>& records,
                                  const TextJoinOptions& options) {
  STPS_CHECK(options.threshold > 0.0 && options.threshold <= 1.0);
  const size_t n = records.size();
  std::vector<IndexPair> result;
  if (n < 2) return result;

  // Process in non-decreasing size order (ties by index for determinism);
  // this enables the shorter indexing prefix.
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (records[a].size() != records[b].size())
      return records[a].size() < records[b].size();
    return a < b;
  });

  std::unordered_map<TokenId, std::vector<Posting>> index;
  CandidateSet cands(n);
  // Bitmap signatures gate the verification step: survivors of the prefix
  // filters still fail the exact test most of the time at low thresholds.
  std::vector<TokenSignature> sigs(n);
  for (size_t r = 0; r < n; ++r) sigs[r] = ComputeSignature(records[r]);

  for (const uint32_t xi : order) {
    const TokenVector& x = records[xi];
    if (x.empty()) continue;
    cands.Reset();
    const size_t probe_prefix = PrefixLengthForJaccard(x.size(),
                                                       options.threshold);
    const size_t min_size = MinSizeForJaccard(x.size(), options.threshold);
    for (size_t i = 0; i < probe_prefix; ++i) {
      const auto it = index.find(x[i]);
      if (it == index.end()) continue;
      for (const Posting& posting : it->second) {
        const TokenVector& y = records[posting.record];
        if (y.size() < min_size) continue;  // size filter
        ProcessSharedToken(x, i, y, posting.position, posting.record, options,
                           &cands);
      }
    }
    // Verification with the signature-gated exact predicate.
    for (const uint32_t yi : cands.touched) {
      if (cands.overlap[yi] <= 0) continue;
      if (SignatureGatedJaccardAtLeast(x, sigs[xi], records[yi], sigs[yi],
                                       options.threshold)) {
        result.emplace_back(std::min(xi, yi), std::max(xi, yi));
      }
    }
    // Index x under its (shorter) indexing prefix.
    const size_t index_prefix =
        IndexPrefixLengthForJaccard(x.size(), options.threshold);
    for (size_t i = 0; i < index_prefix; ++i) {
      index[x[i]].push_back(Posting{xi, static_cast<uint32_t>(i)});
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<IndexPair> PPJoinCross(std::span<const TokenVector> left,
                                   std::span<const TokenVector> right,
                                   const TextJoinOptions& options) {
  STPS_CHECK(options.threshold > 0.0 && options.threshold <= 1.0);
  std::vector<IndexPair> result;
  if (left.empty() || right.empty()) return result;

  // Index the full probing prefixes of the right side (no size-order
  // assumption holds across two independent collections).
  std::unordered_map<TokenId, std::vector<Posting>> index;
  for (uint32_t yi = 0; yi < right.size(); ++yi) {
    const TokenVector& y = right[yi];
    const size_t prefix = PrefixLengthForJaccard(y.size(), options.threshold);
    for (size_t j = 0; j < prefix; ++j) {
      index[y[j]].push_back(Posting{yi, static_cast<uint32_t>(j)});
    }
  }

  std::vector<TokenSignature> right_sigs(right.size());
  for (size_t r = 0; r < right.size(); ++r) {
    right_sigs[r] = ComputeSignature(right[r]);
  }

  CandidateSet cands(right.size());
  for (uint32_t xi = 0; xi < left.size(); ++xi) {
    const TokenVector& x = left[xi];
    if (x.empty()) continue;
    const TokenSignature x_sig = ComputeSignature(x);
    cands.Reset();
    const size_t probe_prefix =
        PrefixLengthForJaccard(x.size(), options.threshold);
    const size_t min_size = MinSizeForJaccard(x.size(), options.threshold);
    const size_t max_size = MaxSizeForJaccard(x.size(), options.threshold);
    for (size_t i = 0; i < probe_prefix; ++i) {
      const auto it = index.find(x[i]);
      if (it == index.end()) continue;
      for (const Posting& posting : it->second) {
        const TokenVector& y = right[posting.record];
        if (y.size() < min_size || y.size() > max_size) continue;
        ProcessSharedToken(x, i, y, posting.position, posting.record, options,
                           &cands);
      }
    }
    for (const uint32_t yi : cands.touched) {
      if (cands.overlap[yi] <= 0) continue;
      if (SignatureGatedJaccardAtLeast(x, x_sig, right[yi], right_sigs[yi],
                                       options.threshold)) {
        result.emplace_back(xi, yi);
      }
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

}  // namespace stps
