// ALL-PAIRS set-similarity self-join (Bayardo, Ma, Srikant, WWW 2007):
// prefix + size filtering without positional/suffix filters. Kept as the
// comparison baseline for the PPJOIN ablation benchmark.

#ifndef STPS_TEXTJOIN_ALLPAIRS_H_
#define STPS_TEXTJOIN_ALLPAIRS_H_

#include <vector>

#include "textjoin/ppjoin.h"

namespace stps {

/// Self-join: all index pairs (i, j), i < j, with Jaccard >= threshold.
/// Same output contract as PPJoinSelf.
std::vector<IndexPair> AllPairsSelf(const std::vector<TokenVector>& records,
                                    double threshold);

}  // namespace stps

#endif  // STPS_TEXTJOIN_ALLPAIRS_H_
