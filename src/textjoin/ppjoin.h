// PPJOIN / PPJOIN+ set-similarity joins (Xiao, Wang, Lin, Yu, Wang:
// "Efficient similarity joins for near-duplicate detection", TODS 2011).
//
// Records are canonical token sets (strictly increasing TokenVector) whose
// token ids follow the global ascending-document-frequency order assigned
// by Dictionary::FinalizeByFrequency. PPJOIN combines:
//   * prefix filtering  — candidates must share a token in their t-prefixes,
//   * size filtering    — |y| must lie in [t|x|, |x|/t],
//   * positional filtering — the position of the shared token bounds the
//     achievable overlap,
//   * suffix filtering (PPJOIN+) — a divide-and-conquer lower bound on the
//     Hamming distance of the record suffixes.
//
// All filters are conservative with respect to the canonical predicate
// JaccardAtLeast; the final verification uses that predicate, so every
// join in this library agrees bit-for-bit on borderline pairs.

#ifndef STPS_TEXTJOIN_PPJOIN_H_
#define STPS_TEXTJOIN_PPJOIN_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "text/types.h"

namespace stps {

/// Tuning knobs for the PPJOIN family. Defaults give PPJOIN+.
struct TextJoinOptions {
  /// Jaccard similarity threshold in (0, 1].
  double threshold = 0.5;
  /// Enables the positional filter (PPJOIN).
  bool positional_filter = true;
  /// Enables the suffix filter (PPJOIN+).
  bool suffix_filter = true;
  /// Maximum recursion depth of the suffix filter.
  int suffix_filter_max_depth = 2;
};

/// An output pair of record indices.
using IndexPair = std::pair<uint32_t, uint32_t>;

/// Self-join: returns all index pairs (i, j), i < j, with
/// Jaccard(records[i], records[j]) >= options.threshold.
/// Precondition: every record is a canonical token set.
std::vector<IndexPair> PPJoinSelf(const std::vector<TokenVector>& records,
                                  const TextJoinOptions& options);

/// Cross-join R x S: returns all (i, j) with
/// Jaccard(left[i], right[j]) >= options.threshold.
std::vector<IndexPair> PPJoinCross(std::span<const TokenVector> left,
                                   std::span<const TokenVector> right,
                                   const TextJoinOptions& options);

namespace textjoin_internal {

/// Lower bound on the Hamming distance between canonical token sets x and
/// y, via recursive median partitioning. Guaranteed <= the true Hamming
/// distance whenever the true distance is <= hmax; values > hmax mean
/// "provably greater than hmax". Exposed for testing.
int SuffixFilterBound(std::span<const TokenId> x, std::span<const TokenId> y,
                      int hmax, int depth, int max_depth);

}  // namespace textjoin_internal

}  // namespace stps

#endif  // STPS_TEXTJOIN_PPJOIN_H_
