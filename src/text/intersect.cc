#include "text/intersect.h"

namespace stps {

namespace {

// First position in [lo, a.size()) with a[pos] >= key, located by
// exponential probing from `lo` followed by binary search of the bracket.
size_t GallopLowerBound(std::span<const TokenId> a, size_t lo, TokenId key) {
  size_t step = 1;
  size_t hi = lo;
  while (hi < a.size() && a[hi] < key) {
    lo = hi + 1;
    hi += step;
    step <<= 1;
  }
  hi = std::min(hi, a.size());
  return static_cast<size_t>(
      std::lower_bound(a.begin() + static_cast<ptrdiff_t>(lo),
                       a.begin() + static_cast<ptrdiff_t>(hi), key) -
      a.begin());
}

}  // namespace

size_t IntersectCountMerge(std::span<const TokenId> a,
                           std::span<const TokenId> b) {
  size_t i = 0, j = 0, overlap = 0;
  const size_t na = a.size(), nb = b.size();
  while (i < na && j < nb) {
    const TokenId x = a[i];
    const TokenId y = b[j];
    // Cursor advances are data-dependent arithmetic, not branches: the
    // three-way comparison never mispredicts its way through the loop.
    overlap += static_cast<size_t>(x == y);
    i += static_cast<size_t>(x <= y);
    j += static_cast<size_t>(y <= x);
  }
  return overlap;
}

size_t IntersectCountGallop(std::span<const TokenId> a,
                            std::span<const TokenId> b) {
  std::span<const TokenId> small = a.size() <= b.size() ? a : b;
  std::span<const TokenId> large = a.size() <= b.size() ? b : a;
  size_t pos = 0, overlap = 0;
  for (const TokenId key : small) {
    pos = GallopLowerBound(large, pos, key);
    if (pos == large.size()) break;
    if (large[pos] == key) {
      ++overlap;
      ++pos;
    }
  }
  return overlap;
}

size_t IntersectCount(std::span<const TokenId> a, std::span<const TokenId> b) {
  const size_t small = std::min(a.size(), b.size());
  const size_t large = std::max(a.size(), b.size());
  if (small == 0) return 0;
  // Multiply, not divide: an integer division here costs as much as the
  // whole merge of two small sets.
  if (large >= small * kGallopSizeRatio) return IntersectCountGallop(a, b);
  return IntersectCountMerge(a, b);
}

namespace {

size_t IntersectCountAtLeastMerge(std::span<const TokenId> a,
                                  std::span<const TokenId> b,
                                  size_t required) {
  size_t i = 0, j = 0, overlap = 0;
  const size_t na = a.size(), nb = b.size();
  while (i < na && j < nb) {
    // Early abandon: even matching every remaining token cannot reach
    // `required`.
    if (overlap + std::min(na - i, nb - j) < required) return overlap;
    const TokenId x = a[i];
    const TokenId y = b[j];
    overlap += static_cast<size_t>(x == y);
    i += static_cast<size_t>(x <= y);
    j += static_cast<size_t>(y <= x);
  }
  return overlap;
}

size_t IntersectCountAtLeastGallop(std::span<const TokenId> a,
                                   std::span<const TokenId> b,
                                   size_t required) {
  std::span<const TokenId> small = a.size() <= b.size() ? a : b;
  std::span<const TokenId> large = a.size() <= b.size() ? b : a;
  size_t pos = 0, overlap = 0;
  for (size_t k = 0; k < small.size(); ++k) {
    if (overlap + (small.size() - k) < required) return overlap;
    pos = GallopLowerBound(large, pos, small[k]);
    if (pos == large.size()) break;
    if (large[pos] == small[k]) {
      ++overlap;
      ++pos;
    }
  }
  return overlap;
}

}  // namespace

size_t IntersectCountAtLeast(std::span<const TokenId> a,
                             std::span<const TokenId> b, size_t required) {
  const size_t small = std::min(a.size(), b.size());
  const size_t large = std::max(a.size(), b.size());
  if (small == 0) return 0;
  if (large >= small * kGallopSizeRatio) {
    return IntersectCountAtLeastGallop(a, b, required);
  }
  return IntersectCountAtLeastMerge(a, b, required);
}

}  // namespace stps
