#include "text/dictionary.h"

#include <algorithm>
#include <numeric>

#include "common/macros.h"

namespace stps {

Dictionary Dictionary::Borrowed(std::span<const uint64_t> offsets,
                                std::span<const char> blob,
                                std::span<const uint64_t> frequency) {
  Dictionary dict;
  dict.borrowed_strings_ = StringTable::Borrow(offsets, blob);
  dict.borrowed_frequency_ = frequency;
  dict.borrowed_ = true;
  dict.finalized_ = true;
  STPS_CHECK(dict.borrowed_strings_.size() == frequency.size());
  return dict;
}

Dictionary Dictionary::FromSortedEntries(std::vector<std::string> strings,
                                         std::vector<uint64_t> frequency) {
  STPS_CHECK(strings.size() == frequency.size());
  Dictionary dict;
  dict.strings_ = std::move(strings);
  dict.frequency_ = std::move(frequency);
  dict.finalized_ = true;
  for (TokenId id = 1; id < dict.strings_.size(); ++id) {
    // Strictly ascending (frequency, string) — which also proves the
    // entries distinct.
    STPS_DCHECK(dict.frequency_[id - 1] < dict.frequency_[id] ||
                (dict.frequency_[id - 1] == dict.frequency_[id] &&
                 dict.strings_[id - 1] < dict.strings_[id]));
  }
  dict.lazy_ = std::make_shared<LazyIndex>();
  return dict;
}

TokenId Dictionary::Intern(std::string_view token, bool count_occurrence) {
  STPS_CHECK(!borrowed_);
  STPS_CHECK(!finalized_);
  auto [it, inserted] = index_.try_emplace(std::string(token), 0);
  if (inserted) {
    it->second = static_cast<TokenId>(strings_.size());
    strings_.emplace_back(token);
    frequency_.push_back(0);
  }
  if (count_occurrence) ++frequency_[it->second];
  return it->second;
}

void Dictionary::CountOccurrence(TokenId id) {
  STPS_CHECK(!borrowed_);
  STPS_CHECK(!finalized_);
  STPS_CHECK(id < frequency_.size());
  ++frequency_[id];
}

bool Dictionary::Lookup(std::string_view token, TokenId* id) const {
  if (borrowed_) return borrowed_strings_.Find(token, id);
  if (lazy_ != nullptr) {
    LazyIndex& lazy = *lazy_;
    std::call_once(lazy.once, [&] {
      lazy.map.reserve(strings_.size());
      for (TokenId t = 0; t < strings_.size(); ++t) {
        lazy.map.emplace(strings_[t], t);
      }
    });
    const auto it = lazy.map.find(std::string(token));
    if (it == lazy.map.end()) return false;
    *id = it->second;
    return true;
  }
  const auto it = index_.find(std::string(token));
  if (it == index_.end()) return false;
  *id = it->second;
  return true;
}

std::string_view Dictionary::TokenString(TokenId id) const {
  STPS_CHECK(id < size());
  if (borrowed_) return borrowed_strings_[id];
  return strings_[id];
}

uint64_t Dictionary::Frequency(TokenId id) const {
  STPS_CHECK(id < size());
  if (borrowed_) return borrowed_frequency_[id];
  return frequency_[id];
}

std::vector<TokenId> Dictionary::FinalizeByFrequency() {
  STPS_CHECK(!borrowed_);
  STPS_CHECK(!finalized_);
  finalized_ = true;
  const size_t n = strings_.size();
  // order[k] = old id that should receive new id k.
  std::vector<TokenId> order(n);
  std::iota(order.begin(), order.end(), TokenId{0});
  std::sort(order.begin(), order.end(), [this](TokenId a, TokenId b) {
    if (frequency_[a] != frequency_[b]) return frequency_[a] < frequency_[b];
    return strings_[a] < strings_[b];
  });
  std::vector<TokenId> permutation(n);
  for (TokenId new_id = 0; new_id < n; ++new_id) {
    permutation[order[new_id]] = new_id;
  }
  // Rebuild the internal tables in the new order.
  std::vector<std::string> new_strings(n);
  std::vector<uint64_t> new_frequency(n);
  for (TokenId old_id = 0; old_id < n; ++old_id) {
    const TokenId new_id = permutation[old_id];
    new_strings[new_id] = std::move(strings_[old_id]);
    new_frequency[new_id] = frequency_[old_id];
  }
  strings_ = std::move(new_strings);
  frequency_ = std::move(new_frequency);
  index_.clear();
  for (TokenId id = 0; id < n; ++id) index_.emplace(strings_[id], id);
  return permutation;
}

void Dictionary::Remap(const std::vector<TokenId>& permutation,
                       TokenVector* tokens) {
  for (auto& t : *tokens) {
    STPS_DCHECK(t < permutation.size());
    t = permutation[t];
  }
  std::sort(tokens->begin(), tokens->end());
}

}  // namespace stps
