// Operations on sorted token-id sequences: overlap, Jaccard,
// normalisation. The counting functions take spans so they work equally
// over owned TokenVectors and views into the ObjectDatabase token arena;
// they route through the kernels in text/intersect.h.

#ifndef STPS_TEXT_TOKEN_SET_H_
#define STPS_TEXT_TOKEN_SET_H_

#include <cstddef>
#include <span>

#include "text/types.h"

namespace stps {

/// Sorts and deduplicates `tokens` in place (turns a bag into a set).
void NormalizeTokenSet(TokenVector* tokens);

/// True when `tokens` is strictly increasing (the canonical set form).
bool IsNormalizedTokenSet(std::span<const TokenId> tokens);

/// |a ∩ b| for two canonical token sets.
size_t OverlapSize(std::span<const TokenId> a, std::span<const TokenId> b);

/// |a ∩ b| with early abandon: returns as soon as the overlap can no
/// longer reach `required` (the result is then some value < required).
size_t OverlapSizeAtLeast(std::span<const TokenId> a,
                          std::span<const TokenId> b, size_t required);

/// Jaccard similarity |a ∩ b| / |a ∪ b|. Defined as 0 when either set is
/// empty (no keywords carry no textual evidence of similarity).
double Jaccard(std::span<const TokenId> a, std::span<const TokenId> b);

/// True iff Jaccard(a, b) >= threshold, using integer arithmetic with
/// early-abandon overlap counting (no floating-point division).
bool JaccardAtLeast(std::span<const TokenId> a, std::span<const TokenId> b,
                    double threshold);

}  // namespace stps

#endif  // STPS_TEXT_TOKEN_SET_H_
