// Operations on sorted token-id vectors: overlap, Jaccard, normalisation.

#ifndef STPS_TEXT_TOKEN_SET_H_
#define STPS_TEXT_TOKEN_SET_H_

#include <cstddef>

#include "text/types.h"

namespace stps {

/// Sorts and deduplicates `tokens` in place (turns a bag into a set).
void NormalizeTokenSet(TokenVector* tokens);

/// True when `tokens` is strictly increasing (the canonical set form).
bool IsNormalizedTokenSet(const TokenVector& tokens);

/// |a ∩ b| for two canonical token sets. O(|a| + |b|).
size_t OverlapSize(const TokenVector& a, const TokenVector& b);

/// |a ∩ b| with early abandon: returns as soon as the overlap can no
/// longer reach `required` (the result is then some value < required).
size_t OverlapSizeAtLeast(const TokenVector& a, const TokenVector& b,
                          size_t required);

/// Jaccard similarity |a ∩ b| / |a ∪ b|. Defined as 0 when either set is
/// empty (no keywords carry no textual evidence of similarity).
double Jaccard(const TokenVector& a, const TokenVector& b);

/// True iff Jaccard(a, b) >= threshold, using integer arithmetic with
/// early-abandon overlap counting (no floating-point division).
bool JaccardAtLeast(const TokenVector& a, const TokenVector& b,
                    double threshold);

}  // namespace stps

#endif  // STPS_TEXT_TOKEN_SET_H_
