#include "text/similarity.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace stps {

using similarity_detail::CeilConservative;
using similarity_detail::FloorGenerous;

size_t MinSizeForJaccard(size_t size_x, double threshold) {
  if (threshold <= 0.0) return 0;
  return CeilConservative(threshold * static_cast<double>(size_x));
}

size_t MaxSizeForJaccard(size_t size_x, double threshold) {
  if (threshold <= 0.0) return std::numeric_limits<size_t>::max();
  return FloorGenerous(static_cast<double>(size_x) / threshold);
}

size_t PrefixLengthForJaccard(size_t size, double threshold) {
  if (size == 0) return 0;
  const size_t keep = CeilConservative(threshold * static_cast<double>(size));
  // p = size - keep + 1, clamped to [1, size] (keep may be 0 when t == 0).
  const size_t p = size - std::min(keep, size) + 1;
  return std::min(p, size);
}

size_t IndexPrefixLengthForJaccard(size_t size, double threshold) {
  if (size == 0) return 0;
  const size_t keep = CeilConservative(2.0 * threshold / (1.0 + threshold) *
                                       static_cast<double>(size));
  const size_t p = size - std::min(keep, size) + 1;
  return std::min(p, size);
}

}  // namespace stps
