// Prefix-filtering bounds for Jaccard similarity joins (Chaudhuri et al.,
// Bayardo et al., Xiao et al.). All bounds are conservative with respect to
// the canonical predicate JaccardAtLeast: they may admit false candidates
// but never reject a true match.

#ifndef STPS_TEXT_SIMILARITY_H_
#define STPS_TEXT_SIMILARITY_H_

#include <cstddef>

namespace stps {

/// Minimum overlap o = |x ∩ y| required for Jaccard(x, y) >= t given the
/// two set sizes: o >= t/(1+t) * (|x|+|y|).
size_t MinOverlapForJaccard(size_t size_x, size_t size_y, double threshold);

/// Smallest |y| that can still satisfy Jaccard(x, y) >= t: |y| >= t * |x|.
size_t MinSizeForJaccard(size_t size_x, double threshold);

/// Largest |y| that can still satisfy Jaccard(x, y) >= t: |y| <= |x| / t.
/// Returns SIZE_MAX when t == 0.
size_t MaxSizeForJaccard(size_t size_x, double threshold);

/// Probing-prefix length for a record of `size` tokens at Jaccard
/// threshold t: |x| - ceil(t * |x|) + 1 (clamped to [0, size]). Two
/// records with Jaccard >= t must share a token inside both prefixes.
size_t PrefixLengthForJaccard(size_t size, double threshold);

/// Indexing-prefix length |x| - ceil(2t/(1+t) * |x|) + 1, valid when the
/// probing side is processed in non-decreasing size order (PPJOIN
/// self-join optimisation).
size_t IndexPrefixLengthForJaccard(size_t size, double threshold);

}  // namespace stps

#endif  // STPS_TEXT_SIMILARITY_H_
