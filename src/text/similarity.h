// Prefix-filtering bounds for Jaccard similarity joins (Chaudhuri et al.,
// Bayardo et al., Xiao et al.).
//
// This header is now a forwarding shim: the bounds moved into
// common/predicates.h, the single audited predicate layer, where they are
// computed *exactly* (extremal integers of the canonical cross-multiplied
// predicate) instead of via the historical epsilon-fudged ceil/floor.
// Text-layer code keeps including "text/similarity.h"; the definitions it
// gets are the canonical ones.

#ifndef STPS_TEXT_SIMILARITY_H_
#define STPS_TEXT_SIMILARITY_H_

#include "common/predicates.h"  // IWYU pragma: export

#endif  // STPS_TEXT_SIMILARITY_H_
