// Prefix-filtering bounds for Jaccard similarity joins (Chaudhuri et al.,
// Bayardo et al., Xiao et al.). All bounds are conservative with respect to
// the canonical predicate JaccardAtLeast: they may admit false candidates
// but never reject a true match.

#ifndef STPS_TEXT_SIMILARITY_H_
#define STPS_TEXT_SIMILARITY_H_

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace stps {

namespace similarity_detail {

/// Conservative ceil: shaves an epsilon first so values that are integral
/// up to floating-point noise do not get bumped to the next integer, which
/// would make a filter bound too tight.
inline size_t CeilConservative(double v) {
  return static_cast<size_t>(std::max(0.0, std::ceil(v - 1e-9)));
}

/// Conservative floor in the opposite direction (for upper bounds).
inline size_t FloorGenerous(double v) {
  return static_cast<size_t>(std::max(0.0, std::floor(v + 1e-9)));
}

}  // namespace similarity_detail

/// Minimum overlap o = |x ∩ y| required for Jaccard(x, y) >= t given the
/// two set sizes: o >= t/(1+t) * (|x|+|y|). Inline: this sits ahead of
/// every signature gate in the verification hot path.
inline size_t MinOverlapForJaccard(size_t size_x, size_t size_y,
                                   double threshold) {
  if (threshold <= 0.0) return 0;
  const double v = threshold / (1.0 + threshold) *
                   static_cast<double>(size_x + size_y);
  return similarity_detail::CeilConservative(v);
}

/// Smallest |y| that can still satisfy Jaccard(x, y) >= t: |y| >= t * |x|.
size_t MinSizeForJaccard(size_t size_x, double threshold);

/// Largest |y| that can still satisfy Jaccard(x, y) >= t: |y| <= |x| / t.
/// Returns SIZE_MAX when t == 0.
size_t MaxSizeForJaccard(size_t size_x, double threshold);

/// Probing-prefix length for a record of `size` tokens at Jaccard
/// threshold t: |x| - ceil(t * |x|) + 1 (clamped to [0, size]). Two
/// records with Jaccard >= t must share a token inside both prefixes.
size_t PrefixLengthForJaccard(size_t size, double threshold);

/// Indexing-prefix length |x| - ceil(2t/(1+t) * |x|) + 1, valid when the
/// probing side is processed in non-decreasing size order (PPJOIN
/// self-join optimisation).
size_t IndexPrefixLengthForJaccard(size_t size, double threshold);

}  // namespace stps

#endif  // STPS_TEXT_SIMILARITY_H_
