#include "text/token_set.h"

#include <algorithm>

#include "text/intersect.h"

namespace stps {

void NormalizeTokenSet(TokenVector* tokens) {
  std::sort(tokens->begin(), tokens->end());
  tokens->erase(std::unique(tokens->begin(), tokens->end()), tokens->end());
}

bool IsNormalizedTokenSet(std::span<const TokenId> tokens) {
  for (size_t i = 1; i < tokens.size(); ++i) {
    if (tokens[i - 1] >= tokens[i]) return false;
  }
  return true;
}

size_t OverlapSize(std::span<const TokenId> a, std::span<const TokenId> b) {
  return IntersectCount(a, b);
}

size_t OverlapSizeAtLeast(std::span<const TokenId> a,
                          std::span<const TokenId> b, size_t required) {
  return IntersectCountAtLeast(a, b, required);
}

double Jaccard(std::span<const TokenId> a, std::span<const TokenId> b) {
  if (a.empty() || b.empty()) return 0.0;
  const size_t overlap = IntersectCount(a, b);
  return static_cast<double>(overlap) /
         static_cast<double>(a.size() + b.size() - overlap);
}

bool JaccardAtLeast(std::span<const TokenId> a, std::span<const TokenId> b,
                    double threshold) {
  return JaccardAtLeastKernel(a, b, threshold);
}

}  // namespace stps
