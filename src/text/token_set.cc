#include "text/token_set.h"

#include <algorithm>
#include <cmath>

namespace stps {

void NormalizeTokenSet(TokenVector* tokens) {
  std::sort(tokens->begin(), tokens->end());
  tokens->erase(std::unique(tokens->begin(), tokens->end()), tokens->end());
}

bool IsNormalizedTokenSet(const TokenVector& tokens) {
  for (size_t i = 1; i < tokens.size(); ++i) {
    if (tokens[i - 1] >= tokens[i]) return false;
  }
  return true;
}

size_t OverlapSize(const TokenVector& a, const TokenVector& b) {
  size_t i = 0, j = 0, overlap = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++overlap;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return overlap;
}

size_t OverlapSizeAtLeast(const TokenVector& a, const TokenVector& b,
                          size_t required) {
  size_t i = 0, j = 0, overlap = 0;
  while (i < a.size() && j < b.size()) {
    // Early abandon: even matching every remaining token cannot reach
    // `required`.
    const size_t best_possible =
        overlap + std::min(a.size() - i, b.size() - j);
    if (best_possible < required) return overlap;
    if (a[i] == b[j]) {
      ++overlap;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return overlap;
}

double Jaccard(const TokenVector& a, const TokenVector& b) {
  if (a.empty() || b.empty()) return 0.0;
  const size_t overlap = OverlapSize(a, b);
  return static_cast<double>(overlap) /
         static_cast<double>(a.size() + b.size() - overlap);
}

bool JaccardAtLeast(const TokenVector& a, const TokenVector& b,
                    double threshold) {
  if (threshold <= 0.0) return true;
  if (a.empty() || b.empty()) return false;
  // J(a,b) >= t  <=>  o >= t/(1+t) * (|a|+|b|), where o = |a ∩ b|.
  const double exact =
      threshold / (1.0 + threshold) * static_cast<double>(a.size() + b.size());
  // Conservative rounding: the required count errs low by an epsilon so a
  // borderline-true pair is never rejected by rounding; the final exact
  // check below resolves it.
  const size_t required = static_cast<size_t>(std::max(
      0.0, std::ceil(exact - 1e-9)));
  const size_t overlap = OverlapSizeAtLeast(a, b, required);
  if (overlap < required) return false;
  // Exact predicate: o / (|a|+|b|-o) >= t, evaluated without division.
  return static_cast<double>(overlap) >=
         threshold * static_cast<double>(a.size() + b.size() - overlap);
}

}  // namespace stps
