// String <-> token id mapping with document-frequency-based id assignment.
//
// Prefix filtering (PPJOIN / ALL-PAIRS) requires a global token ordering by
// ascending document frequency so that record prefixes contain the rarest
// tokens. Dictionary assigns provisional ids during ingestion and then
// remaps them so that the natural order of the final ids *is* that
// frequency order; token vectors sorted by id are then prefix-filter ready.

#ifndef STPS_TEXT_DICTIONARY_H_
#define STPS_TEXT_DICTIONARY_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/string_table.h"
#include "text/types.h"

namespace stps {

/// Bidirectional token dictionary.
///
/// Usage: call Intern() for every keyword occurrence (it counts document
/// frequency when `count_occurrence` is true), then FinalizeByFrequency()
/// once, and remap all stored token vectors via Remap().
///
/// A dictionary is either *owned* (built through Intern, the normal path)
/// or *borrowed*: a read-only view over string/frequency storage in an
/// external arena (the mmap'd snapshot path). Borrowed dictionaries are
/// finalized by construction and reject every mutator.
class Dictionary {
 public:
  Dictionary() = default;

  /// Borrowed (arena-view) mode: `offsets` holds size+1 monotone entries
  /// into `blob` (the StringTable layout); `frequency` the per-id document
  /// frequencies. The caller keeps the backing storage alive and has
  /// validated the offsets.
  static Dictionary Borrowed(std::span<const uint64_t> offsets,
                             std::span<const char> blob,
                             std::span<const uint64_t> frequency);

  /// Owned, finalized-by-construction mode: adopts `strings`/`frequency`
  /// already in the final id order — ascending (frequency, string), the
  /// exact order FinalizeByFrequency produces. The delta publish path
  /// (core/update.cc) uses this to splice the dictionary from maintained
  /// document-frequency counters in O(V) instead of re-interning every
  /// surviving keyword occurrence; the string -> id index is built lazily
  /// on the first Lookup (thread-safe), so constructing the dictionary
  /// never hashes the vocabulary. The order precondition is DCHECK'd;
  /// violating it silently breaks prefix filtering.
  static Dictionary FromSortedEntries(std::vector<std::string> strings,
                                      std::vector<uint64_t> frequency);

  /// Returns the id for `token`, creating it if unseen. When
  /// `count_occurrence` is true the token's document-frequency counter is
  /// incremented (call once per containing document).
  TokenId Intern(std::string_view token, bool count_occurrence = true);

  /// Increments the document-frequency counter of `id`. Used when callers
  /// intern with count_occurrence=false to deduplicate within a document
  /// first. Precondition: not finalized, id < size().
  void CountOccurrence(TokenId id);

  /// Returns the id for `token`, or false if it was never interned.
  bool Lookup(std::string_view token, TokenId* id) const;

  /// The string for an id. Precondition: id < size(). The view points
  /// into the dictionary's storage (owned strings or the borrowed arena)
  /// and is valid for the dictionary's lifetime.
  std::string_view TokenString(TokenId id) const;

  /// Document frequency recorded for an id. Precondition: id < size().
  uint64_t Frequency(TokenId id) const;

  /// Number of distinct tokens.
  size_t size() const {
    return borrowed_ ? borrowed_strings_.size() : strings_.size();
  }

  /// True for arena-view dictionaries (read-only by construction).
  bool borrowed() const { return borrowed_; }

  /// Reassigns ids so ascending id order equals ascending document
  /// frequency (ties broken lexicographically for determinism). Returns the
  /// permutation old_id -> new_id, which callers must apply to every stored
  /// TokenVector via Remap(). May be called at most once.
  std::vector<TokenId> FinalizeByFrequency();

  /// True once FinalizeByFrequency has run.
  bool finalized() const { return finalized_; }

  /// Applies a FinalizeByFrequency permutation to `tokens` and re-sorts it.
  static void Remap(const std::vector<TokenId>& permutation,
                    TokenVector* tokens);

 private:
  // Lazily-built string -> id map for FromSortedEntries dictionaries
  // (call_once, same pattern as StringTable::Find). Behind a shared_ptr
  // so the dictionary stays movable.
  struct LazyIndex {
    std::once_flag once;
    std::unordered_map<std::string, TokenId> map;
  };

  std::unordered_map<std::string, TokenId> index_;
  std::vector<std::string> strings_;
  std::vector<uint64_t> frequency_;
  std::shared_ptr<LazyIndex> lazy_;  // FromSortedEntries mode only
  bool finalized_ = false;
  // Borrowed mode only: the arena views (string lookup is lazy, inside
  // StringTable, so loading a snapshot never touches the string blob).
  StringTable borrowed_strings_;
  std::span<const uint64_t> borrowed_frequency_;
  bool borrowed_ = false;
};

}  // namespace stps

#endif  // STPS_TEXT_DICTIONARY_H_
