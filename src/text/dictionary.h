// String <-> token id mapping with document-frequency-based id assignment.
//
// Prefix filtering (PPJOIN / ALL-PAIRS) requires a global token ordering by
// ascending document frequency so that record prefixes contain the rarest
// tokens. Dictionary assigns provisional ids during ingestion and then
// remaps them so that the natural order of the final ids *is* that
// frequency order; token vectors sorted by id are then prefix-filter ready.

#ifndef STPS_TEXT_DICTIONARY_H_
#define STPS_TEXT_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "text/types.h"

namespace stps {

/// Bidirectional token dictionary.
///
/// Usage: call Intern() for every keyword occurrence (it counts document
/// frequency when `count_occurrence` is true), then FinalizeByFrequency()
/// once, and remap all stored token vectors via Remap().
class Dictionary {
 public:
  Dictionary() = default;

  /// Returns the id for `token`, creating it if unseen. When
  /// `count_occurrence` is true the token's document-frequency counter is
  /// incremented (call once per containing document).
  TokenId Intern(std::string_view token, bool count_occurrence = true);

  /// Increments the document-frequency counter of `id`. Used when callers
  /// intern with count_occurrence=false to deduplicate within a document
  /// first. Precondition: not finalized, id < size().
  void CountOccurrence(TokenId id);

  /// Returns the id for `token`, or false if it was never interned.
  bool Lookup(std::string_view token, TokenId* id) const;

  /// The string for an id. Precondition: id < size().
  const std::string& TokenString(TokenId id) const;

  /// Document frequency recorded for an id. Precondition: id < size().
  uint64_t Frequency(TokenId id) const;

  /// Number of distinct tokens.
  size_t size() const { return strings_.size(); }

  /// Reassigns ids so ascending id order equals ascending document
  /// frequency (ties broken lexicographically for determinism). Returns the
  /// permutation old_id -> new_id, which callers must apply to every stored
  /// TokenVector via Remap(). May be called at most once.
  std::vector<TokenId> FinalizeByFrequency();

  /// True once FinalizeByFrequency has run.
  bool finalized() const { return finalized_; }

  /// Applies a FinalizeByFrequency permutation to `tokens` and re-sorts it.
  static void Remap(const std::vector<TokenId>& permutation,
                    TokenVector* tokens);

 private:
  std::unordered_map<std::string, TokenId> index_;
  std::vector<std::string> strings_;
  std::vector<uint64_t> frequency_;
  bool finalized_ = false;
};

}  // namespace stps

#endif  // STPS_TEXT_DICTIONARY_H_
