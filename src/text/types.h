// Fundamental identifier types shared by the textual modules.

#ifndef STPS_TEXT_TYPES_H_
#define STPS_TEXT_TYPES_H_

#include <cstdint>
#include <vector>

namespace stps {

/// Integer id of a keyword. Ids are assigned by Dictionary; after
/// Dictionary::FinalizeByFrequency the numeric order of ids equals the
/// ascending-document-frequency order required by prefix filtering.
using TokenId = uint32_t;

/// A record's keyword set: strictly increasing vector of token ids.
using TokenVector = std::vector<TokenId>;

}  // namespace stps

#endif  // STPS_TEXT_TYPES_H_
