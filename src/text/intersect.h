// Cache-friendly set-intersection kernels and 64-bit bitmap token
// signatures (the SEAL / PPJOIN-lineage cheap-filter idea applied at the
// object level).
//
// A signature hashes every token of a set into one of 64 bits. Signatures
// are *conservative*: they can prove two sets share few (or no) tokens,
// but they can never reject a pair that actually meets the overlap
// requirement — see SignatureOverlapUpperBound for the bound and its
// proof sketch. The verification kernels below (branch-reduced merge and
// galloping search, selected by a size-ratio heuristic) compute exact
// overlaps over contiguous token arrays; combined with the CSR token
// arena in ObjectDatabase they turn verification into linear scans.

#ifndef STPS_TEXT_INTERSECT_H_
#define STPS_TEXT_INTERSECT_H_

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>

#include "common/predicates.h"
#include "text/types.h"

namespace stps {

/// 64-bit hashed token bitmap. Empty sets have signature 0.
using TokenSignature = uint64_t;

/// The signature bit of one token: top 6 bits of a Fibonacci
/// (multiply-shift) hash, so consecutive dictionary ids spread evenly.
inline uint32_t SignatureBit(TokenId t) {
  return static_cast<uint32_t>(
      (static_cast<uint64_t>(t) * 0x9E3779B97F4A7C15ull) >> 58);
}

/// OR of the signature bits of every token.
inline TokenSignature ComputeSignature(std::span<const TokenId> tokens) {
  TokenSignature sig = 0;
  for (const TokenId t : tokens) {
    sig |= TokenSignature{1} << SignatureBit(t);
  }
  return sig;
}

/// Conservative upper bound on |a ∩ b| given the two signatures and the
/// exact set sizes.
///
/// Soundness: every token sets exactly one bit. A token of `a` whose bit
/// is absent from `sb` cannot occur in `b` (it would have set that bit).
/// Distinct bits of `sa & ~sb` are set by distinct tokens of `a`, so at
/// least popcount(sa & ~sb) tokens of `a` are outside the intersection:
/// |a ∩ b| <= |a| - popcount(sa & ~sb), and symmetrically for `b`. When
/// the signatures share no bit the sets share no token at all (a common
/// token would set a common bit), which is strictly stronger than the
/// subtraction bound under in-set hash collisions.
inline size_t SignatureOverlapUpperBound(TokenSignature sa, size_t na,
                                         TokenSignature sb, size_t nb) {
  const TokenSignature common = sa & sb;
  const size_t only_a = static_cast<size_t>(std::popcount(sa ^ common));
  const size_t only_b = static_cast<size_t>(std::popcount(sb ^ common));
  const size_t bound = std::min(na - only_a, nb - only_b);
  // Unconditional popcounts + a conditional move: the disjointness test is
  // data-dependent and would mispredict on mixed workloads as a branch.
  return common == 0 ? 0 : bound;
}

/// |a ∩ b| by branch-reduced merge: one pass, cursor advances computed
/// arithmetically so the comparison outcome does not steer a branch.
/// O(|a| + |b|).
size_t IntersectCountMerge(std::span<const TokenId> a,
                           std::span<const TokenId> b);

/// |a ∩ b| by galloping (exponential + binary) search of each element of
/// the smaller set in the larger one. O(|small| * log |large|) — wins
/// when the sizes are badly skewed.
size_t IntersectCountGallop(std::span<const TokenId> a,
                            std::span<const TokenId> b);

/// Size-ratio crossover: galloping beats the merge roughly when the
/// larger set is this many times the smaller (see bench_kernels).
inline constexpr size_t kGallopSizeRatio = 16;

/// |a ∩ b| via the kernel the size heuristic picks.
size_t IntersectCount(std::span<const TokenId> a, std::span<const TokenId> b);

/// Early-abandoning |a ∩ b|: returns as soon as the overlap can no longer
/// reach `required` (the result is then some value < required). Selects
/// merge or galloping by the size heuristic.
size_t IntersectCountAtLeast(std::span<const TokenId> a,
                             std::span<const TokenId> b, size_t required);

/// Exact Jaccard(a, b) >= threshold over spans, with early-abandon
/// overlap counting. Identical decisions to the canonical JaccardAtLeast.
inline bool JaccardAtLeastKernel(std::span<const TokenId> a,
                                 std::span<const TokenId> b,
                                 double threshold) {
  if (threshold <= 0.0) return true;
  if (a.empty() || b.empty()) return false;
  // MinOverlapForJaccard (common/predicates.h) is the *exact* boundary of
  // the canonical predicate: J(a,b) >= t <=> o >= required. No trailing
  // floating-point verification step — the count comparison is the test.
  const size_t required = MinOverlapForJaccard(a.size(), b.size(), threshold);
  return IntersectCountAtLeast(a, b, required) >= required;
}

/// Signature-gated Jaccard predicate: rejects via the signature bound
/// when it already proves the required overlap unreachable (bumping
/// *signature_rejections when provided), otherwise falls through to the
/// exact kernel. Requires sa/sb == ComputeSignature(a/b); conservative by
/// construction — never rejects a pair the exact kernel accepts.
///
/// Inline on purpose: on filter-heavy workloads the overwhelmingly common
/// outcome is a rejection that needs only the sizes and two popcounts —
/// an out-of-line call would cost more than the gate itself (see
/// bench_kernels).
inline bool SignatureGatedJaccardAtLeast(
    std::span<const TokenId> a, TokenSignature sa, std::span<const TokenId> b,
    TokenSignature sb, double threshold,
    uint64_t* signature_rejections = nullptr) {
  if (threshold <= 0.0) return true;
  if (a.empty() || b.empty()) return false;
  const size_t required = MinOverlapForJaccard(a.size(), b.size(), threshold);
  if (required > 0 &&
      SignatureOverlapUpperBound(sa, a.size(), sb, b.size()) < required) {
    if (signature_rejections != nullptr) ++*signature_rejections;
    return false;
  }
  // `required` is the exact predicate boundary (see JaccardAtLeastKernel).
  return IntersectCountAtLeast(a, b, required) >= required;
}

}  // namespace stps

#endif  // STPS_TEXT_INTERSECT_H_
