// Join drivers over sketch-generated candidates: the pairs come from
// UserSketchIndex::GenerateCandidates (a provable superset of every
// result pair — see sketch/sketch.h), and every candidate is settled by
// the exact PPJ-B kernel, so results are bit-identical to brute force at
// any thread count. RunSTPSJoin / RunTopKSTPSJoin dispatch here when
// query.sketch.enabled (core/stpsjoin.cc); the per-algorithm headers stay
// sketch-free.

#ifndef STPS_SKETCH_SKETCH_JOIN_H_
#define STPS_SKETCH_SKETCH_JOIN_H_

#include <vector>

#include "common/thread_pool.h"
#include "core/join_stats.h"
#include "core/similarity.h"

namespace stps {

/// Threshold join over sketch candidates. Preconditions: eps_doc > 0 and
/// eps_u > 0 (the same contract as the filter-based algorithms — with
/// eps_doc == 0, empty-doc objects can match without a common token and
/// the band index would not be a sound filter). Results sorted by (a, b)
/// with exact scores, identical at any `parallel.num_threads`.
std::vector<ScoredUserPair> SketchSTPSJoin(const ObjectDatabase& db,
                                           const STPSQuery& query,
                                           const ParallelOptions& parallel,
                                           JoinStats* stats = nullptr);

/// Top-k join over sketch candidates, verified in the heavy-hitters-first
/// priority order so the result queue's threshold rises early and the
/// PPJ-B Lemma 1 budget prunes the tail. Precondition: eps_doc > 0.
/// Results best-first under TopKBetter, identical at any thread count.
std::vector<ScoredUserPair> SketchTopKSTPSJoin(
    const ObjectDatabase& db, const TopKQuery& query,
    const ParallelOptions& parallel, JoinStats* stats = nullptr);

}  // namespace stps

#endif  // STPS_SKETCH_SKETCH_JOIN_H_
