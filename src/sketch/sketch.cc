#include "sketch/sketch.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>

#include "common/macros.h"
#include "core/database.h"
#include "core/user_grid.h"
#include "sketch/count_min.h"

namespace stps {

namespace {

// Clamped cell coordinate of `v` on an n-cell axis over [lo, lo + width].
// Degenerate axes (width == 0, every point identical) collapse to cell 0.
uint32_t CellCoord(double v, double lo, double width, uint32_t n) {
  if (!(width > 0.0)) return 0;
  const double f = (v - lo) * static_cast<double>(n) / width;
  if (!(f > 0.0)) return 0;
  if (f >= static_cast<double>(n)) return n - 1;
  return static_cast<uint32_t>(f);
}

// Conservative per-axis probe radius in cells: two points within `eps`
// of each other on this axis have cell coordinates differing by at most
// floor(eps * n / width) + 1 in exact arithmetic; one more cell absorbs
// the floating-point rounding of the cell assignment (the same
// always-over policy as Rect::Extended — see common/predicates.h).
int64_t RadiusCells(double eps, double width, uint32_t n) {
  if (!(width > 0.0)) return n;  // degenerate axis: everything co-located
  const double cells = eps * static_cast<double>(n) / width;
  if (!(cells < static_cast<double>(n))) return n;
  return static_cast<int64_t>(cells) + 2;
}

// Dilates an 8x8 occupancy bitmap by rx columns and ry rows (saturating
// at the grid border; radii >= 8 flood the mask).
uint64_t DilateMask(uint64_t m, int64_t rx, int64_t ry) {
  constexpr uint64_t kCol0 = 0x0101010101010101ull;
  constexpr uint64_t kCol7 = 0x8080808080808080ull;
  if (rx >= 8 || ry >= 8) return m != 0 ? ~0ull : 0ull;
  for (int64_t i = 0; i < rx; ++i) {
    m |= ((m & ~kCol7) << 1) | ((m & ~kCol0) >> 1);
  }
  for (int64_t i = 0; i < ry; ++i) {
    m |= (m << 8) | (m >> 8);
  }
  return m;
}

// True when some cell of `au` is within the (rx, ry) window of some cell
// of `av` on the G x G occupancy grid. Probes the longer sorted list with
// one binary search per (cell, row) window of the shorter.
bool CellListsClose(std::span<const uint32_t> au, std::span<const uint32_t> av,
                    int64_t rx, int64_t ry, uint32_t g) {
  if (au.empty() || av.empty()) return false;
  if (au.size() > av.size()) std::swap(au, av);
  const int64_t last = static_cast<int64_t>(g) - 1;
  for (const uint32_t cell : au) {
    const int64_t row = cell / g;
    const int64_t col = cell % g;
    const int64_t r1 = std::min(last, row + ry);
    const int64_t c0 = std::max<int64_t>(0, col - rx);
    const int64_t c1 = std::min(last, col + rx);
    for (int64_t r = std::max<int64_t>(0, row - ry); r <= r1; ++r) {
      const uint32_t lo = static_cast<uint32_t>(r * g + c0);
      const uint32_t hi = static_cast<uint32_t>(r * g + c1);
      const auto it = std::lower_bound(av.begin(), av.end(), lo);
      if (it != av.end() && *it <= hi) return true;
    }
  }
  return false;
}

template <typename T>
void SortUniqueVec(std::vector<T>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

// Co-occurrence accumulator slot for UserCandidateTable.
struct PairHits {
  uint32_t hits = 0;
  void Clear() { hits = 0; }
};

uint64_t PairKey(UserId a, UserId b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

void CheckParams(const SketchParams& params) {
  STPS_CHECK(params.num_hashes >= 1);
  STPS_CHECK(params.num_bands >= 1);
  STPS_CHECK(params.index_grid_bits >= 1 && params.index_grid_bits <= 15);
  STPS_CHECK(params.occupancy_grid_bits >= 3 &&
             params.occupancy_grid_bits <= 15);
}

// Epoch-stable per-token hash values, indexed by token id (see
// StableTokenHash in sketch.h). Both hash families key off these, so a
// user's rows survive the dictionary's per-publish id reassignment.
std::vector<uint64_t> ComputeStableHashes(const Dictionary& dict) {
  std::vector<uint64_t> stable(dict.size());
  for (TokenId t = 0; t < stable.size(); ++t) {
    stable[t] = StableTokenHash(dict.TokenString(t));
  }
  return stable;
}

// The per-user arrays both constructors build (postings are derived from
// them afterwards). minhash/masks/begins are pre-sized by the caller;
// occ_cells/user_keys grow as users are appended in id order.
struct SketchArrays {
  std::vector<uint64_t> minhash;
  std::vector<uint32_t> occ_begin;
  std::vector<uint32_t> user_key_begin;
  std::vector<uint64_t> masks;
  std::vector<uint32_t> occ_cells;
  std::vector<uint64_t> user_keys;
};

struct UserScratch {
  std::vector<uint32_t> cells;
  std::vector<uint64_t> keys;
  TokenVector union_tokens;
};

// Computes user u's rows from the database and appends them to `out`.
// Pure function of (u's point set, params, salts, grid frames) — the
// delta constructor relies on that to splice unchanged users instead.
void AppendUserRows(const ObjectDatabase& db, UserId u,
                    std::span<const uint64_t> stable,
                    const SketchParams& params, uint64_t band_salt,
                    std::span<const uint64_t> row_salts, double min_x,
                    double min_y, double width_x, double width_y,
                    SketchArrays* out, UserScratch* scratch) {
  const uint32_t g = 1u << params.occupancy_grid_bits;
  const uint32_t ic = 1u << params.index_grid_bits;
  const uint32_t fold = params.occupancy_grid_bits - 3;

  std::vector<uint32_t>& cells = scratch->cells;
  std::vector<uint64_t>& keys = scratch->keys;
  TokenVector& union_tokens = scratch->union_tokens;
  cells.clear();
  keys.clear();
  union_tokens.clear();
  for (const STObject& o : db.UserObjects(u)) {
    const uint32_t col = CellCoord(o.loc.x, min_x, width_x, g);
    const uint32_t row = CellCoord(o.loc.y, min_y, width_y, g);
    cells.push_back(row * g + col);
    const uint64_t icell =
        static_cast<uint64_t>(CellCoord(o.loc.y, min_y, width_y, ic)) * ic +
        CellCoord(o.loc.x, min_x, width_x, ic);
    for (const TokenId t : o.doc) {
      union_tokens.push_back(t);
      const uint64_t band =
          SketchMix64(stable[t] ^ band_salt) % params.num_bands;
      keys.push_back(icell * params.num_bands + band);
    }
  }
  SortUniqueVec(&cells);
  SortUniqueVec(&keys);
  SortUniqueVec(&union_tokens);

  out->occ_cells.insert(out->occ_cells.end(), cells.begin(), cells.end());
  out->occ_begin[u + 1] = static_cast<uint32_t>(out->occ_cells.size());
  out->user_keys.insert(out->user_keys.end(), keys.begin(), keys.end());
  out->user_key_begin[u + 1] = static_cast<uint32_t>(out->user_keys.size());

  uint64_t mask = 0;
  for (const uint32_t cell : cells) {
    const uint32_t mrow = (cell / g) >> fold;
    const uint32_t mcol = (cell % g) >> fold;
    mask |= 1ull << (mrow * 8 + mcol);
  }
  out->masks[u] = mask;

  uint64_t* rows =
      out->minhash.data() + static_cast<size_t>(u) * params.num_hashes;
  for (const TokenId t : union_tokens) {
    for (uint32_t i = 0; i < params.num_hashes; ++i) {
      const uint64_t h = SketchMix64(stable[t] ^ row_salts[i]);
      if (h < rows[i]) rows[i] = h;
    }
  }
}

// Inverts the per-user key lists into flat postings (sorted distinct keys
// -> ascending user lists). Small key spaces (the default 16x16 grid x
// 256 bands = 65536) take an O(keys + space) counting sort: one count
// pass, one offset pass emitting the distinct keys, one scatter walking
// users in ascending id so per-key user lists come out ascending without
// a comparison sort. Larger spaces fall back to the flat pair sort; both
// paths produce identical arrays.
void BuildPostings(std::span<const uint64_t> user_keys,
                   std::span<const uint32_t> user_key_begin,
                   size_t num_users, uint64_t key_space,
                   std::vector<uint64_t>* post_keys,
                   std::vector<uint32_t>* post_begin,
                   std::vector<UserId>* post_users) {
  constexpr uint64_t kCountingSortLimit = 1ull << 24;
  if (key_space > 0 && key_space <= kCountingSortLimit) {
    std::vector<uint32_t> counts(key_space, 0);
    for (const uint64_t key : user_keys) {
      STPS_DCHECK(key < key_space);
      ++counts[key];
    }
    post_users->resize(user_keys.size());
    const size_t max_distinct =
        std::min<size_t>(key_space, user_keys.size());
    post_keys->reserve(max_distinct);
    post_begin->reserve(max_distinct + 1);
    uint32_t offset = 0;
    for (uint64_t key = 0; key < key_space; ++key) {
      const uint32_t count = counts[key];
      if (count == 0) continue;
      post_keys->push_back(key);
      post_begin->push_back(offset);
      counts[key] = offset;  // becomes the scatter cursor
      offset += count;
    }
    post_begin->push_back(offset);
    for (UserId u = 0; u < num_users; ++u) {
      for (uint32_t i = user_key_begin[u]; i < user_key_begin[u + 1]; ++i) {
        (*post_users)[counts[user_keys[i]]++] = u;
      }
    }
    return;
  }

  std::vector<std::pair<uint64_t, UserId>> flat;
  flat.reserve(user_keys.size());
  for (UserId u = 0; u < num_users; ++u) {
    for (uint32_t i = user_key_begin[u]; i < user_key_begin[u + 1]; ++i) {
      flat.emplace_back(user_keys[i], u);
    }
  }
  std::sort(flat.begin(), flat.end());
  post_users->reserve(flat.size());
  for (const auto& [key, u] : flat) {
    if (post_keys->empty() || post_keys->back() != key) {
      post_keys->push_back(key);
      post_begin->push_back(static_cast<uint32_t>(post_users->size()));
    }
    post_users->push_back(u);
  }
  post_begin->push_back(static_cast<uint32_t>(post_users->size()));
}

uint64_t KeySpace(const SketchParams& params) {
  const uint64_t ic = uint64_t{1} << params.index_grid_bits;
  return ic * ic * params.num_bands;
}

}  // namespace

UserSketchIndex::UserSketchIndex(const ObjectDatabase& db,
                                 const SketchParams& params)
    : params_(params), num_users_(db.num_users()) {
  CheckParams(params_);

  SketchSaltStream salts(params_.seed);
  band_salt_ = salts.Next();
  std::vector<uint64_t> row_salts;
  row_salts.reserve(params_.num_hashes);
  for (uint32_t i = 0; i < params_.num_hashes; ++i) {
    row_salts.push_back(salts.Next());
  }

  const Rect& bounds = db.bounds();
  if (!bounds.IsEmpty()) {
    min_x_ = bounds.min_x;
    min_y_ = bounds.min_y;
    width_x_ = bounds.max_x - bounds.min_x;
    width_y_ = bounds.max_y - bounds.min_y;
  }

  const std::vector<uint64_t> stable = ComputeStableHashes(db.dictionary());

  SketchArrays arrays;
  arrays.minhash.assign(num_users_ * params_.num_hashes,
                        std::numeric_limits<uint64_t>::max());
  arrays.masks.assign(num_users_, 0);
  arrays.occ_begin.assign(num_users_ + 1, 0);
  arrays.user_key_begin.assign(num_users_ + 1, 0);

  UserScratch scratch;
  for (UserId u = 0; u < num_users_; ++u) {
    AppendUserRows(db, u, stable, params_, band_salt_, row_salts, min_x_,
                   min_y_, width_x_, width_y_, &arrays, &scratch);
  }

  std::vector<uint64_t> post_keys;
  std::vector<uint32_t> post_begin;
  std::vector<UserId> post_users;
  BuildPostings(arrays.user_keys, arrays.user_key_begin, num_users_,
                KeySpace(params_), &post_keys, &post_begin, &post_users);

  minhash_ = std::move(arrays.minhash);
  occ_cells_ = std::move(arrays.occ_cells);
  occ_begin_ = std::move(arrays.occ_begin);
  masks_ = std::move(arrays.masks);
  user_keys_ = std::move(arrays.user_keys);
  user_key_begin_ = std::move(arrays.user_key_begin);
  post_keys_ = std::move(post_keys);
  post_begin_ = std::move(post_begin);
  post_users_ = std::move(post_users);
  row_salts_ = std::move(row_salts);
}

UserSketchIndex::UserSketchIndex(const ObjectDatabase& db,
                                 const UserSketchIndex& prev,
                                 std::span<const uint32_t> prev_user_of_new,
                                 const SketchParams& params,
                                 std::span<const uint64_t> stable_hashes)
    : params_(params), num_users_(db.num_users()) {
  CheckParams(params_);
  STPS_CHECK(params_ == prev.params_);
  STPS_CHECK(prev_user_of_new.size() == num_users_);

  // Same salt derivation as the fresh constructor (pure function of the
  // seed), so computed and spliced rows agree on the hash families.
  SketchSaltStream salts(params_.seed);
  band_salt_ = salts.Next();
  std::vector<uint64_t> row_salts;
  row_salts.reserve(params_.num_hashes);
  for (uint32_t i = 0; i < params_.num_hashes; ++i) {
    row_salts.push_back(salts.Next());
  }

  const Rect& bounds = db.bounds();
  if (!bounds.IsEmpty()) {
    min_x_ = bounds.min_x;
    min_y_ = bounds.min_y;
    width_x_ = bounds.max_x - bounds.min_x;
    width_y_ = bounds.max_y - bounds.min_y;
  }
  // Splicing is only sound when both grids are framed identically — the
  // delta publish path falls back to a full rebuild on any bounds change.
  STPS_CHECK(min_x_ == prev.min_x_ && min_y_ == prev.min_y_ &&
             width_x_ == prev.width_x_ && width_y_ == prev.width_y_);

  std::vector<uint64_t> computed_stable;
  if (stable_hashes.empty() && db.dictionary().size() > 0) {
    computed_stable = ComputeStableHashes(db.dictionary());
    stable_hashes = computed_stable;
  }
  STPS_CHECK(stable_hashes.size() == db.dictionary().size());
  const std::span<const uint64_t> stable = stable_hashes;

  SketchArrays arrays;
  // Unlike the fresh constructor, minhash grows in append order (run
  // block copies and per-dirty-user sentinel rows) instead of being
  // pre-filled: splices overwrite ~every row, so the up-front
  // num_users * num_hashes sentinel fill would be pure wasted bandwidth.
  arrays.minhash.reserve(num_users_ * params_.num_hashes);
  arrays.masks.assign(num_users_, 0);
  arrays.occ_begin.assign(num_users_ + 1, 0);
  arrays.user_key_begin.assign(num_users_ + 1, 0);
  // Splices dominate (that is the point of the delta path): size the
  // growing arrays to the previous epoch up front so the per-user
  // insert loop never reallocates mid-splice.
  arrays.occ_cells.reserve(prev.occ_cells_.size());
  arrays.user_keys.reserve(prev.user_keys_.size());

  // Spliced users come in long runs of consecutive prev ids (the delta
  // publish keeps retained users in prev-id order, and dirty users are
  // sparse), so each run's CSR payloads move as one block copy with the
  // begins recovered by offset arithmetic — not one insert per user.
  UserScratch scratch;
  UserId u = 0;
  while (u < num_users_) {
    const uint32_t pu = prev_user_of_new[u];
    if (pu == UINT32_MAX) {
      // AppendUserRows min-folds into pre-set sentinel rows.
      arrays.minhash.insert(arrays.minhash.end(), params_.num_hashes,
                            std::numeric_limits<uint64_t>::max());
      AppendUserRows(db, u, stable, params_, band_salt_, row_salts, min_x_,
                     min_y_, width_x_, width_y_, &arrays, &scratch);
      ++u;
      continue;
    }
    STPS_CHECK(pu < prev.num_users_);
    UserId run_end = u + 1;
    while (run_end < num_users_ &&
           prev_user_of_new[run_end] == pu + (run_end - u)) {
      ++run_end;
    }
    const uint32_t pu_end = pu + (run_end - u);
    STPS_CHECK(pu_end <= prev.num_users_);

    const uint32_t cell_lo = prev.occ_begin_[pu];
    const uint32_t cell_hi = prev.occ_begin_[pu_end];
    const uint32_t cell_base = static_cast<uint32_t>(arrays.occ_cells.size());
    arrays.occ_cells.insert(arrays.occ_cells.end(),
                            prev.occ_cells_.begin() + cell_lo,
                            prev.occ_cells_.begin() + cell_hi);
    const uint32_t key_lo = prev.user_key_begin_[pu];
    const uint32_t key_hi = prev.user_key_begin_[pu_end];
    const uint32_t key_base = static_cast<uint32_t>(arrays.user_keys.size());
    arrays.user_keys.insert(arrays.user_keys.end(),
                            prev.user_keys_.begin() + key_lo,
                            prev.user_keys_.begin() + key_hi);
    for (UserId w = u; w < run_end; ++w) {
      const uint32_t pw = pu + (w - u);
      arrays.occ_begin[w + 1] =
          cell_base + (prev.occ_begin_[pw + 1] - cell_lo);
      arrays.user_key_begin[w + 1] =
          key_base + (prev.user_key_begin_[pw + 1] - key_lo);
    }
    arrays.minhash.insert(arrays.minhash.end(),
                          prev.minhash_.begin() +
                              static_cast<size_t>(pu) * params_.num_hashes,
                          prev.minhash_.begin() +
                              static_cast<size_t>(pu_end) * params_.num_hashes);
    std::copy(prev.masks_.begin() + pu, prev.masks_.begin() + pu_end,
              arrays.masks.begin() + u);
    u = run_end;
  }
  STPS_CHECK(arrays.minhash.size() ==
             static_cast<size_t>(num_users_) * params_.num_hashes);

  std::vector<uint64_t> post_keys;
  std::vector<uint32_t> post_begin;
  std::vector<UserId> post_users;
  BuildPostings(arrays.user_keys, arrays.user_key_begin, num_users_,
                KeySpace(params_), &post_keys, &post_begin, &post_users);

  minhash_ = std::move(arrays.minhash);
  occ_cells_ = std::move(arrays.occ_cells);
  occ_begin_ = std::move(arrays.occ_begin);
  masks_ = std::move(arrays.masks);
  user_keys_ = std::move(arrays.user_keys);
  user_key_begin_ = std::move(arrays.user_key_begin);
  post_keys_ = std::move(post_keys);
  post_begin_ = std::move(post_begin);
  post_users_ = std::move(post_users);
  row_salts_ = std::move(row_salts);
}

UserSketchIndex::UserSketchIndex(const SketchParts& parts)
    : params_(parts.params),
      num_users_(parts.num_users),
      min_x_(parts.min_x),
      min_y_(parts.min_y),
      width_x_(parts.width_x),
      width_y_(parts.width_y),
      minhash_(Column<uint64_t>::Borrow(parts.minhash)),
      occ_cells_(Column<uint32_t>::Borrow(parts.occ_cells)),
      occ_begin_(Column<uint32_t>::Borrow(parts.occ_begin)),
      masks_(Column<uint64_t>::Borrow(parts.masks)),
      user_keys_(Column<uint64_t>::Borrow(parts.user_keys)),
      user_key_begin_(Column<uint32_t>::Borrow(parts.user_key_begin)),
      post_keys_(Column<uint64_t>::Borrow(parts.post_keys)),
      post_begin_(Column<uint32_t>::Borrow(parts.post_begin)),
      post_users_(Column<UserId>::Borrow(parts.post_users)),
      band_salt_(parts.band_salt),
      row_salts_(Column<uint64_t>::Borrow(parts.row_salts)) {}

SketchParts UserSketchIndex::parts() const {
  SketchParts p;
  p.params = params_;
  p.num_users = num_users_;
  p.band_salt = band_salt_;
  p.min_x = min_x_;
  p.min_y = min_y_;
  p.width_x = width_x_;
  p.width_y = width_y_;
  p.minhash = minhash_;
  p.occ_cells = occ_cells_;
  p.occ_begin = occ_begin_;
  p.masks = masks_;
  p.user_keys = user_keys_;
  p.user_key_begin = user_key_begin_;
  p.post_keys = post_keys_;
  p.post_begin = post_begin_;
  p.post_users = post_users_;
  p.row_salts = row_salts_;
  return p;
}

std::span<const UserId> UserSketchIndex::Postings(uint64_t key) const {
  const auto it = std::lower_bound(post_keys_.begin(), post_keys_.end(), key);
  if (it == post_keys_.end() || *it != key) return {};
  const size_t i = static_cast<size_t>(it - post_keys_.begin());
  return {post_users_.data() + post_begin_[i],
          post_begin_[i + 1] - post_begin_[i]};
}

double UserSketchIndex::EstimateUnionJaccard(UserId u, UserId v) const {
  // Empty union token sets have sentinel-only signatures; their Jaccard
  // is 0 by convention, not the 1.0 the all-equal rows would suggest.
  if (UserKeys(u).empty() || UserKeys(v).empty()) return 0.0;
  const std::span<const uint64_t> a = MinHash(u);
  const std::span<const uint64_t> b = MinHash(v);
  uint32_t equal = 0;
  for (size_t i = 0; i < a.size(); ++i) equal += a[i] == b[i] ? 1 : 0;
  return static_cast<double>(equal) / static_cast<double>(a.size());
}

bool UserSketchIndex::OccupancyClose(UserId u, UserId v,
                                     double eps_loc) const {
  const uint32_t g = 1u << params_.occupancy_grid_bits;
  const uint64_t dilated = DilateMask(masks_[u],
                                      RadiusCells(eps_loc, width_x_, 8),
                                      RadiusCells(eps_loc, width_y_, 8));
  if ((dilated & masks_[v]) == 0) return false;
  return CellListsClose(OccupancyCells(u), OccupancyCells(v),
                        RadiusCells(eps_loc, width_x_, g),
                        RadiusCells(eps_loc, width_y_, g), g);
}

SketchCandidates UserSketchIndex::GenerateCandidates(
    double eps_loc, const SketchOptions& options) const {
  SketchCandidates out;
  if (num_users_ == 0 || post_keys_.empty()) return out;

  const uint64_t bands = params_.num_bands;
  const uint32_t g = 1u << params_.occupancy_grid_bits;
  const int64_t ic = int64_t{1} << params_.index_grid_bits;
  const int64_t irx = RadiusCells(eps_loc, width_x_, static_cast<uint32_t>(ic));
  const int64_t iry = RadiusCells(eps_loc, width_y_, static_cast<uint32_t>(ic));
  const int64_t mrx = RadiusCells(eps_loc, width_x_, 8);
  const int64_t mry = RadiusCells(eps_loc, width_y_, 8);
  const int64_t frx = RadiusCells(eps_loc, width_x_, g);
  const int64_t fry = RadiusCells(eps_loc, width_y_, g);

  struct Cand {
    UserId a = 0;
    UserId b = 0;
    uint64_t estimate = 0;
  };
  std::vector<Cand> cands;
  UserCandidateTable<PairHits> table;
  CountMinSketch cms(/*log2_width=*/12, /*depth=*/4,
                     params_.seed ^ 0xC0117E57ull);

  for (UserId u = 0; u < num_users_; ++u) {
    table.BeginRound(num_users_);
    for (const uint64_t key : UserKeys(u)) {
      const uint64_t band = key % bands;
      const int64_t icell = static_cast<int64_t>(key / bands);
      const int64_t irow = icell / ic;
      const int64_t icol = icell % ic;
      const int64_t r1 = std::min(ic - 1, irow + iry);
      const int64_t c0 = std::max<int64_t>(0, icol - irx);
      const int64_t c1 = std::min(ic - 1, icol + irx);
      for (int64_t r = std::max<int64_t>(0, irow - iry); r <= r1; ++r) {
        for (int64_t c = c0; c <= c1; ++c) {
          const uint64_t probe =
              static_cast<uint64_t>(r * ic + c) * bands + band;
          for (const UserId v : Postings(probe)) {
            if (v >= u) break;  // postings ascend by user id
            ++table[v].hits;
          }
        }
      }
    }
    if (table.size() == 0) continue;
    const uint64_t dilated = DilateMask(masks_[u], mrx, mry);
    for (const UserId v : table.SortedTouched()) {
      // Occupancy rejection is exact spatial disproof: the bitmap first
      // (one AND), then the fine cell lists. Dilation radii round
      // outward, so a rejected pair provably has no object pair within
      // eps_loc — rejection can never drop a result.
      if ((dilated & masks_[v]) == 0 ||
          !CellListsClose(OccupancyCells(u), OccupancyCells(v), frx, fry,
                          g)) {
        ++out.rejections;
        continue;
      }
      const uint32_t hits = table[v].hits;
      const uint64_t key = PairKey(v, u);
      cms.Add(key, hits);
      cands.push_back({v, u, cms.Estimate(key)});
    }
  }

  // Canonical (a, b) order for the pair list; the priority permutation
  // carries the heavy-hitters-first verification order on top of it.
  std::sort(cands.begin(), cands.end(), [](const Cand& x, const Cand& y) {
    if (x.a != y.a) return x.a < y.a;
    return x.b < y.b;
  });
  const uint32_t total = static_cast<uint32_t>(cands.size());
  out.pairs.reserve(total);
  for (const Cand& c : cands) out.pairs.emplace_back(c.a, c.b);

  out.priority.resize(total);
  std::iota(out.priority.begin(), out.priority.end(), 0u);
  const auto heavier = [&cands](uint32_t i, uint32_t j) {
    if (cands[i].estimate != cands[j].estimate) {
      return cands[i].estimate > cands[j].estimate;
    }
    return i < j;  // ties: ascending (a, b)
  };
  const uint32_t heavy =
      std::min<uint32_t>(options.heavy_capacity, total);
  if (heavy < total) {
    std::nth_element(out.priority.begin(), out.priority.begin() + heavy,
                     out.priority.end(), heavier);
    std::sort(out.priority.begin(), out.priority.begin() + heavy, heavier);
    std::sort(out.priority.begin() + heavy, out.priority.end());
  } else {
    std::sort(out.priority.begin(), out.priority.end(), heavier);
  }
  return out;
}

std::shared_ptr<const UserSketchIndex> BuildUserSketches(
    const ObjectDatabase& db, const SketchParams& params) {
  return std::make_shared<const UserSketchIndex>(db, params);
}

}  // namespace stps
