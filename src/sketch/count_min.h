// Count-min sketch: a fixed-size frequency summary with a one-sided
// error guarantee — Estimate(key) >= true count, always (each of the
// `depth` rows stores the true count plus whatever collided into the same
// cell, and the minimum over rows is still an over-count). The candidate
// generator uses it to rank pair co-occurrence counts for the top-k
// heavy-hitters pass without a per-pair hash map; the one-sidedness means
// a genuinely heavy pair can never be under-ranked by more than the
// collision noise, and (as with every sketch in this library) the ranking
// only orders exact verification — it never decides membership.

#ifndef STPS_SKETCH_COUNT_MIN_H_
#define STPS_SKETCH_COUNT_MIN_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "common/macros.h"

namespace stps {

/// SplitMix64 finalizer: the shared bit-mixer of the sketch layer. Maps
/// any 64-bit key to a well-distributed 64-bit value; distinct salts give
/// independent-enough hash functions for minhash rows, LSH bands, and
/// count-min rows alike.
inline uint64_t SketchMix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

/// Deterministic salt stream for deriving per-row / per-band seeds from
/// one master seed (SplitMix64's state update + finalizer).
class SketchSaltStream {
 public:
  explicit SketchSaltStream(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    state_ += 0x9E3779B97F4A7C15ull;
    return SketchMix64(state_);
  }

 private:
  uint64_t state_;
};

/// depth x 2^log2_width counter matrix. Saturating adds keep the
/// never-under-count guarantee even at (absurd) counter overflow.
class CountMinSketch {
 public:
  CountMinSketch(uint32_t log2_width, uint32_t depth, uint64_t seed)
      : mask_((1ull << log2_width) - 1),
        depth_(depth),
        cells_(static_cast<size_t>(depth) << log2_width, 0) {
    STPS_CHECK(log2_width >= 1 && log2_width < 32);
    STPS_CHECK(depth >= 1);
    SketchSaltStream salts(seed);
    salts_.reserve(depth);
    for (uint32_t d = 0; d < depth; ++d) salts_.push_back(salts.Next());
  }

  /// Adds `count` occurrences of `key`.
  void Add(uint64_t key, uint64_t count) {
    for (uint32_t d = 0; d < depth_; ++d) {
      uint64_t& cell = cells_[Slot(d, key)];
      const uint64_t room = std::numeric_limits<uint64_t>::max() - cell;
      cell += count < room ? count : room;
    }
  }

  /// An upper bound on the total count added for `key` (exact when no
  /// row collided; never below the true count).
  uint64_t Estimate(uint64_t key) const {
    uint64_t best = std::numeric_limits<uint64_t>::max();
    for (uint32_t d = 0; d < depth_; ++d) {
      const uint64_t cell = cells_[Slot(d, key)];
      if (cell < best) best = cell;
    }
    return best;
  }

  size_t width() const { return mask_ + 1; }
  uint32_t depth() const { return depth_; }

 private:
  size_t Slot(uint32_t d, uint64_t key) const {
    return (static_cast<size_t>(d) * (mask_ + 1)) +
           (SketchMix64(key ^ salts_[d]) & mask_);
  }

  uint64_t mask_;
  uint32_t depth_;
  std::vector<uint64_t> salts_;
  std::vector<uint64_t> cells_;
};

}  // namespace stps

#endif  // STPS_SKETCH_COUNT_MIN_H_
