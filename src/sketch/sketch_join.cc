#include "sketch/sketch_join.h"

#include <algorithm>
#include <cstdint>

#include "common/predicates.h"
#include "core/database.h"
#include "core/parallel_util.h"
#include "core/ppjb.h"
#include "core/result_queue.h"
#include "core/user_grid.h"
#include "sketch/sketch.h"

namespace stps {

std::vector<ScoredUserPair> SketchSTPSJoin(const ObjectDatabase& db,
                                           const STPSQuery& query,
                                           const ParallelOptions& parallel,
                                           JoinStats* stats) {
  STPS_CHECK(query.eps_doc > 0.0);
  STPS_CHECK(query.eps_u > 0.0);
  if (db.num_objects() == 0) return {};

  const SketchCandidates cand =
      db.sketches().GenerateCandidates(query.eps_loc, query.sketch);
  if (stats != nullptr) {
    stats->sketch_candidate_pairs += cand.pairs.size();
    stats->sketch_rejections += cand.rejections;
    stats->pairs_candidate += cand.pairs.size();
  }
  if (cand.pairs.empty()) return {};

  const UserGrid grid(db, query.eps_loc);
  const MatchThresholds t = query.match_thresholds();
  const size_t n = cand.pairs.size();

  // Every candidate verifies independently into its own slot, so the
  // surviving pairs — already in (a, b) order — need no post-merge sort
  // and the result is bit-identical at any thread count. With
  // num_threads == 1 the pool runs the loop inline in ascending order.
  std::vector<ScoredUserPair> slot(n);
  std::vector<uint8_t> hit(n, 0);
  ThreadPool pool(std::max(parallel.num_threads, 1));
  std::vector<JoinStats> worker_stats(
      static_cast<size_t>(pool.num_threads()));
  pool.ParallelForEach(0, n, parallel.grain, [&](size_t i, int worker) {
    const auto [a, b] = cand.pairs[i];
    JoinStats* ws = stats != nullptr
                        ? &worker_stats[static_cast<size_t>(worker)]
                        : nullptr;
    const UserLayout& cu = grid.UserCells(a);
    const UserLayout& cv = grid.UserCells(b);
    const size_t na = db.UserObjectCount(a);
    const size_t nb = db.UserObjectCount(b);
    if (ws != nullptr) ++ws->pairs_verified;
    size_t matched = 0;
    const double sigma = PPJBPair(cu, na, cv, nb, grid.geometry(), t,
                                  query.eps_u, ws, &matched);
    // Membership on the exact count, exactly as the brute-force
    // reference: a pruned kernel leaves a partial count that can only
    // fail the (monotone) predicate, and a passing count implies the
    // kernel ran to completion, so `sigma` is the exact score.
    if (!SigmaAtLeast(matched, na + nb, query.eps_u)) return;
    if (ws != nullptr) ++ws->matches_found;
    slot[i] = {a, b, sigma};
    hit[i] = 1;
  });
  MergeWorkerStats(stats, worker_stats);

  std::vector<ScoredUserPair> out;
  for (size_t i = 0; i < n; ++i) {
    if (hit[i] != 0) out.push_back(slot[i]);
  }
  return out;
}

namespace {

// Settles one candidate against a queue: verify at the queue's current
// threshold (the PPJ-B Lemma 1 budget is exactly consistent with
// SigmaAtLeast, so a pair that can still tie the tail score is never
// pruned — same contract as core/topk.cc's RefineCandidates) and offer
// any sigma > 0 discovery.
void VerifyIntoQueue(const ObjectDatabase& db, const UserGrid& grid,
                     const MatchThresholds& t,
                     const std::pair<UserId, UserId>& pair,
                     ResultQueue* queue, JoinStats* stats) {
  const auto [a, b] = pair;
  const UserLayout& cu = grid.UserCells(a);
  const UserLayout& cv = grid.UserCells(b);
  const size_t na = db.UserObjectCount(a);
  const size_t nb = db.UserObjectCount(b);
  const double eps_u = queue->Threshold();
  if (stats != nullptr) ++stats->pairs_verified;
  const double sigma =
      PPJBPair(cu, na, cv, nb, grid.geometry(), t, eps_u, stats);
  if (sigma <= 0.0) return;
  if (stats != nullptr) ++stats->matches_found;
  queue->Offer({a, b, sigma});
}

}  // namespace

std::vector<ScoredUserPair> SketchTopKSTPSJoin(
    const ObjectDatabase& db, const TopKQuery& query,
    const ParallelOptions& parallel, JoinStats* stats) {
  STPS_CHECK(query.eps_doc > 0.0);
  STPS_CHECK(query.k > 0);
  ResultQueue queue(query.k);
  if (db.num_objects() == 0) return queue.TakeSorted();

  const SketchCandidates cand =
      db.sketches().GenerateCandidates(query.eps_loc, query.sketch);
  if (stats != nullptr) {
    stats->sketch_candidate_pairs += cand.pairs.size();
    stats->sketch_rejections += cand.rejections;
    stats->pairs_candidate += cand.pairs.size();
  }
  if (cand.pairs.empty()) return queue.TakeSorted();

  const UserGrid grid(db, query.eps_loc);
  const MatchThresholds t = query.match_thresholds();

  const int threads = std::max(parallel.num_threads, 1);
  if (threads == 1) {
    // Heavy-hitters-first: the count-min-ranked pairs fill the queue with
    // high-overlap pairs early, so Threshold() rises after ~k pairs and
    // the Lemma 1 budget early-terminates most of the tail.
    for (const uint32_t idx : cand.priority) {
      VerifyIntoQueue(db, grid, t, cand.pairs[idx], &queue, stats);
    }
    return queue.TakeSorted();
  }

  // Thread-local queues, merged via Offer: a local queue only ever holds
  // real (exactly verified) pairs, so its threshold is a sound global
  // bound — any pair it prunes is beaten by k real pairs and cannot be in
  // the global top-k (same argument as TopKSTPSJoinParallel).
  ThreadPool pool(threads);
  const size_t slots = static_cast<size_t>(pool.num_threads());
  std::vector<ResultQueue> queues(slots, ResultQueue(query.k));
  std::vector<JoinStats> worker_stats(slots);
  pool.ParallelForEach(
      0, cand.priority.size(), parallel.grain, [&](size_t i, int worker) {
        JoinStats* ws = stats != nullptr
                            ? &worker_stats[static_cast<size_t>(worker)]
                            : nullptr;
        VerifyIntoQueue(db, grid, t, cand.pairs[cand.priority[i]],
                        &queues[static_cast<size_t>(worker)], ws);
      });
  for (const ResultQueue& local : queues) {
    for (const ScoredUserPair& pair : local.TakeSorted()) {
      queue.Offer(pair);
    }
  }
  MergeWorkerStats(stats, worker_stats);
  return queue.TakeSorted();
}

}  // namespace stps
