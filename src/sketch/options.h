// Query-level knobs for the sketch-accelerated candidate generation
// layer (sketch/sketch.h). Kept dependency-free so core/similarity.h can
// embed it in the query descriptors without pulling the sketch headers
// into every translation unit.

#ifndef STPS_SKETCH_OPTIONS_H_
#define STPS_SKETCH_OPTIONS_H_

#include <cstdint>

namespace stps {

/// Per-query opt-in for sketch-based candidate generation. Off by
/// default; when enabled, RunSTPSJoin / RunTopKSTPSJoin generate
/// candidate user pairs from the per-user sketches built at database
/// construction time and feed them into the exact verification kernels —
/// results are bit-identical to the exact path, sketches only skip work
/// (the PR 2 signature-gate contract, lifted from objects to users).
struct SketchOptions {
  bool enabled = false;
  /// Size of the count-min heavy-hitters list that seeds the top-k
  /// verification order (highest estimated co-occurrence first, so the
  /// result queue's threshold rises early and the exact kernels' Lemma 1
  /// budget prunes the tail). Order never affects results.
  uint32_t heavy_capacity = 1024;
};

}  // namespace stps

#endif  // STPS_SKETCH_OPTIONS_H_
