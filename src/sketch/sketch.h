// Per-user sketch layer: MinHash signatures over each user's union token
// set, spatial occupancy bitmaps over a fixed coarse grid, and a
// deterministic (cell, token-band) inverted index that generates
// candidate user pairs without enumerating the quadratic pair space.
//
// Soundness contract (the whole point — see DESIGN.md "Sketch layer"):
// for any query with eps_doc > 0, a user pair with sigma > 0 has at least
// one matching object pair, which (a) shares a token — and a shared token
// lands both users in the *same* band, because the band of a token is a
// pure function band(t) = mix(t) mod B, not a probabilistic minhash row —
// and (b) lies within eps_loc, so the two objects' index cells are within
// the conservatively-rounded probe radius. GenerateCandidates therefore
// returns a superset of every pair any threshold join (eps_u > 0) or
// top-k query at that eps_loc can report. The probabilistic structures
// (MinHash, count-min) only *order* candidates for verification; they
// never decide membership. Candidates are rejected only by the occupancy
// sketches, whose dilation radii round outward, so every rejection is a
// proof of spatial separation.
//
// Built once per database (DatabaseBuilder::Build), independent of any
// query threshold: the index grid is fixed-resolution, and eps_loc enters
// only through the probe radius at generation time.

#ifndef STPS_SKETCH_SKETCH_H_
#define STPS_SKETCH_SKETCH_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "common/column.h"
#include "sketch/count_min.h"
#include "sketch/options.h"
#include "stjoin/object.h"

namespace stps {

class ObjectDatabase;

/// Epoch-stable 64-bit hash of a token: FNV-1a over the token *string*,
/// finished by the sketch layer's shared mixer. Every hash family in the
/// sketch layer (MinHash rows, LSH bands) keys off this value rather than
/// the token id, because ids are reassigned by document frequency on
/// every publish — hashing the string makes a user's sketch rows a pure
/// function of its token *set*, which is what lets the delta publish path
/// (core/update.cc) splice unchanged users' rows across epochs while the
/// fresh build computes bit-identical values.
inline uint64_t StableTokenHash(std::string_view token) {
  uint64_t h = 0xCBF29CE484222325ull;  // FNV offset basis
  for (const char c : token) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;  // FNV prime
  }
  return SketchMix64(h);
}

/// Build-time shape of the sketch layer. The defaults are sized for the
/// library's workloads (hundreds of thousands of users, tens of tokens
/// per object); they are compile-time-free knobs, not query parameters.
struct SketchParams {
  /// MinHash rows per user (k = 64: standard error 1/sqrt(k) ~ 0.125).
  uint32_t num_hashes = 64;
  /// Token band count B of the deterministic LSH-band index. More bands
  /// mean fewer spurious band collisions (two different tokens mapping to
  /// one band) at the cost of more index entries per user.
  uint32_t num_bands = 256;
  /// log2 of the inverted-index grid resolution per axis (4 -> 16x16).
  /// Coarse on purpose: index entries are (cell, band) pairs, and the
  /// probe loop scans a neighbourhood of cells per entry.
  uint32_t index_grid_bits = 4;
  /// log2 of the occupancy grid resolution per axis (6 -> 64x64). The
  /// per-user sorted cell lists at this resolution (plus their 8x8
  /// folded bitmap) provide the pair-level spatial rejection test.
  uint32_t occupancy_grid_bits = 6;
  /// Master seed for every hash family in the layer.
  uint64_t seed = 0x53545053u;  // "STPS"

  friend bool operator==(const SketchParams& a, const SketchParams& b) {
    return a.num_hashes == b.num_hashes && a.num_bands == b.num_bands &&
           a.index_grid_bits == b.index_grid_bits &&
           a.occupancy_grid_bits == b.occupancy_grid_bits && a.seed == b.seed;
  }
};

/// Output of one candidate-generation pass.
struct SketchCandidates {
  /// Candidate pairs, a < b, sorted ascending by (a, b) — a superset of
  /// every pair the exact join can report at the generating eps_loc.
  std::vector<std::pair<UserId, UserId>> pairs;
  /// Verification order as indices into `pairs`: the count-min heavy
  /// hitters first (descending estimated co-occurrence), then the rest in
  /// (a, b) order. Top-k drivers follow it so the queue threshold rises
  /// early; threshold joins ignore it.
  std::vector<uint32_t> priority;
  /// Pairs surfaced by the band index but disproven by the occupancy
  /// sketches (counted into JoinStats::sketch_rejections).
  uint64_t rejections = 0;
};

/// Flat-view decomposition of a UserSketchIndex: every scalar plus spans
/// over the ten POD arrays. The snapshot writer serializes from it and
/// the mmap loader reconstructs an index that borrows the arena through
/// it (io/snapshot_v3.cc); verify-mode loads compare a rebuilt index
/// against it element-wise.
struct SketchParts {
  SketchParams params;
  uint64_t num_users = 0;
  uint64_t band_salt = 0;
  double min_x = 0.0, min_y = 0.0, width_x = 0.0, width_y = 0.0;
  std::span<const uint64_t> minhash;
  std::span<const uint32_t> occ_cells;
  std::span<const uint32_t> occ_begin;
  std::span<const uint64_t> masks;
  std::span<const uint64_t> user_keys;
  std::span<const uint32_t> user_key_begin;
  std::span<const uint64_t> post_keys;
  std::span<const uint32_t> post_begin;
  std::span<const UserId> post_users;
  std::span<const uint64_t> row_salts;
};

/// Immutable per-user sketches + band index for one database. Moved-into
/// the ObjectDatabase as a shared_ptr at Build time.
class UserSketchIndex {
 public:
  UserSketchIndex(const ObjectDatabase& db, const SketchParams& params);

  /// Delta (splice) mode, for the incremental publish path: users whose
  /// point sets did not change between epochs copy their rows (MinHash,
  /// occupancy cells, mask, band keys) straight out of `prev`; the rest
  /// are computed from `db` exactly like the fresh constructor. This is
  /// bit-identical to `UserSketchIndex(db, params)` because every
  /// per-user row is a pure function of the user's point set: hashes key
  /// off StableTokenHash (epoch-stable), and both grids are framed by
  /// db.bounds(), which the caller guarantees equals the bounds `prev`
  /// was built against. Preconditions (checked): params == prev.params(),
  /// prev_user_of_new.size() == db.num_users(), and each mapped id is a
  /// user of `prev` with the same point set as its new counterpart.
  /// `prev_user_of_new[u]` is the user's id in the previous epoch, or
  /// UINT32_MAX to rebuild u from `db`. `stable_hashes`, when non-empty,
  /// must hold StableTokenHash(dict.TokenString(t)) per token id — the
  /// publish path maintains these per interned token, sparing the splice
  /// an O(dictionary) re-hash; empty recomputes them here.
  UserSketchIndex(const ObjectDatabase& db, const UserSketchIndex& prev,
                  std::span<const uint32_t> prev_user_of_new,
                  const SketchParams& params,
                  std::span<const uint64_t> stable_hashes = {});

  /// Borrowed (arena-view) mode: adopts the spans of `parts` without
  /// copying. The caller keeps the backing storage alive and has
  /// validated the CSR invariants (io/snapshot_v3.cc).
  explicit UserSketchIndex(const SketchParts& parts);

  /// The flat-view decomposition of this index (spans point into the
  /// index's storage).
  SketchParts parts() const;

  const SketchParams& params() const { return params_; }
  size_t num_users() const { return num_users_; }

  /// The MinHash signature of user u's union token set (num_hashes rows;
  /// rows are UINT64_MAX when the union is empty).
  std::span<const uint64_t> MinHash(UserId u) const {
    return {minhash_.data() + static_cast<size_t>(u) * params_.num_hashes,
            params_.num_hashes};
  }

  /// MinHash estimate of the Jaccard similarity of the union token sets
  /// (matching rows / num_hashes; 0 when either union is empty).
  double EstimateUnionJaccard(UserId u, UserId v) const;

  /// Sorted distinct occupancy-grid cells (row * G + col) of user u.
  std::span<const uint32_t> OccupancyCells(UserId u) const {
    return {occ_cells_.data() + occ_begin_[u],
            occ_begin_[u + 1] - occ_begin_[u]};
  }

  /// 8x8 folded occupancy bitmap of user u (bit row * 8 + col).
  uint64_t OccupancyMask(UserId u) const { return masks_[u]; }

  /// Sorted distinct (index cell * num_bands + band) keys of user u.
  std::span<const uint64_t> UserKeys(UserId u) const {
    return {user_keys_.data() + user_key_begin_[u],
            user_key_begin_[u + 1] - user_key_begin_[u]};
  }

  /// Generates the candidate pairs for queries at `eps_loc` (see the
  /// soundness contract above). Deterministic in (db, params, eps_loc,
  /// options.heavy_capacity).
  SketchCandidates GenerateCandidates(double eps_loc,
                                      const SketchOptions& options) const;

  /// True when the occupancy sketches cannot rule out that u and v have
  /// objects within eps_loc of each other (bitmap test, then the exact
  /// cell-list window probe). A false return is a proof of separation.
  bool OccupancyClose(UserId u, UserId v, double eps_loc) const;

 private:
  // Users with any object in index cell `key / num_bands` holding a token
  // of band `key % num_bands`, ascending by user id; empty when none.
  std::span<const UserId> Postings(uint64_t key) const;

  SketchParams params_;
  size_t num_users_ = 0;
  // Grid frames (index grid and occupancy grid share the db bounds).
  double min_x_ = 0.0, min_y_ = 0.0, width_x_ = 0.0, width_y_ = 0.0;

  // Owned when built from a database, borrowed when loaded from an
  // mmap'd snapshot (the ObjectDatabase's arena_ pins the storage).
  Column<uint64_t> minhash_;      // num_users * num_hashes
  Column<uint32_t> occ_cells_;    // CSR: sorted distinct fine cells
  Column<uint32_t> occ_begin_;    // size num_users + 1
  Column<uint64_t> masks_;        // 8x8 folds of occ_cells_
  Column<uint64_t> user_keys_;    // CSR: sorted distinct (cell, band)
  Column<uint32_t> user_key_begin_;
  // Flat postings: sorted distinct keys -> ascending user lists.
  Column<uint64_t> post_keys_;
  Column<uint32_t> post_begin_;   // size post_keys_ + 1
  Column<UserId> post_users_;
  uint64_t band_salt_ = 0;
  Column<uint64_t> row_salts_;    // minhash row seeds
};

/// Builds the sketch layer for a finished database. Called by
/// DatabaseBuilder::Build; exposed for tests that want custom params.
std::shared_ptr<const UserSketchIndex> BuildUserSketches(
    const ObjectDatabase& db, const SketchParams& params = {});

}  // namespace stps

#endif  // STPS_SKETCH_SKETCH_H_
