// QueryServer: a long-running concurrent query server over an
// UpdatableDatabase, speaking a line protocol on a TCP socket.
//
// Execution model: one poll-based accept thread plus a fixed pool of
// request workers. Accepted connections enter a bounded queue (the
// admission control surface); when the queue is full the connection is
// turned away immediately with "ERR busy" — backpressure the client can
// see — instead of piling up latency. Each worker serves one connection
// at a time, one request per line, every query running against the
// epoch snapshot it grabbed at dispatch (writers never invalidate it).
//
// Protocol (requests are single lines, '\n'-terminated; fields split on
// spaces; responses start with "OK" or "ERR"):
//
//   PING
//     -> OK pong
//   JOIN <eps_loc> <eps_doc> <eps_u> [ALGO <auto|sppjc|sppjb|sppjf|
//        sppjd|brute>] [THREADS <n>] [SKETCH]
//     -> OK <n_pairs> <epoch>, then n_pairs lines "<userA> <userB> <sigma>"
//   TOPK <eps_loc> <eps_doc> <k> [ALGO <auto|f|s|p|brute>]
//        [THREADS <n>] [SKETCH]
//     -> same row format
//   PROBE <user> <eps_loc> <eps_doc> <eps_u>
//     -> similar-users rows for one user, best-first
//   INSERT <user> <x> <y> <kw1,kw2,...|-> [time]
//     -> OK <live_objects> <epoch>   ("-" inserts an empty keyword set)
//   DELETE <user>
//     -> OK <live_objects> <epoch> | ERR unknown user
//   PUBLISH
//     -> OK <epoch>   (epoch of the snapshot now served)
//
// Read-only mode: constructed from a fixed DatabaseSnapshot (e.g. an
// mmap'd v3 snapshot opened via ReadBinaryMapped) the server answers
// every query against that one snapshot and rejects INSERT / DELETE /
// PUBLISH with "ERR read-only server". Queries page the arena on demand;
// nothing is copied per connection.
//   EPOCH
//     -> OK <epoch>
//   STATS
//     -> OK one line of server+database counters
//   SLEEP <ms>
//     -> OK slept     (testing aid: occupies a worker)
//   QUIT
//     -> OK bye, connection closes
//   SHUTDOWN
//     -> OK shutting down; the server stops accepting and drains
//
// Graceful shutdown: Shutdown() (or a client's SHUTDOWN) stops the
// accept loop, lets every in-flight request finish and respond, closes
// queued-but-unserved connections with "ERR shutting down", and joins
// all threads. Safe to call more than once.

#ifndef STPS_SERVER_SERVER_H_
#define STPS_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "core/update.h"

namespace stps {

struct ServerOptions {
  /// Bind address. Loopback by default: the server is an internal
  /// component, not an internet-facing endpoint.
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  int port = 0;
  /// Request worker threads.
  int num_workers = 4;
  /// Admission control: connections waiting for a worker beyond this
  /// bound are rejected with "ERR busy".
  size_t max_pending = 16;
  /// Per-connection idle timeout; connections silent for this long are
  /// closed. Also bounds shutdown latency of idle connections.
  int idle_timeout_ms = 30000;
  /// Upper bound a client may request via THREADS.
  int max_query_threads = 16;
};

struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_rejected = 0;
  uint64_t requests_served = 0;
  uint64_t requests_failed = 0;  // requests answered with ERR
};

class QueryServer {
 public:
  /// The server serves and mutates `db`, which must outlive it.
  explicit QueryServer(UpdatableDatabase* db, ServerOptions options = {});

  /// Read-only server over one fixed snapshot (see the header comment).
  /// The snapshot is shared, not copied — an mmap'd database stays
  /// mapped, not materialised.
  explicit QueryServer(std::shared_ptr<const DatabaseSnapshot> snapshot,
                       ServerOptions options = {});
  ~QueryServer();
  STPS_DISALLOW_COPY_AND_ASSIGN(QueryServer);

  /// Binds, listens, and spawns the accept + worker threads.
  Status Start();

  /// The bound port (after a successful Start).
  int port() const { return port_; }

  /// Flags the server to stop and wakes every thread; returns without
  /// joining. Called from worker threads on SHUTDOWN.
  void RequestShutdown();

  /// True once RequestShutdown / Shutdown has been initiated.
  bool shutdown_requested() const {
    return stopping_.load(std::memory_order_acquire);
  }

  /// Blocks until shutdown has been requested (SHUTDOWN command or
  /// RequestShutdown), polling so signal handlers can flip flags.
  void WaitForShutdownRequest();

  /// Full graceful shutdown: stop accepting, drain, join. Idempotent.
  void Shutdown();

  /// True when constructed over a fixed snapshot (no write commands).
  bool read_only() const { return db_ == nullptr; }

  ServerStats stats() const;

 private:
  void AcceptLoop();
  void WorkerLoop();
  void HandleConnection(int fd);
  // Executes one request line, appending the response (one or more
  // '\n'-terminated lines) to *out. Returns false when the connection
  // should close after the response is sent.
  bool HandleRequest(const std::string& line, std::string* out);
  // The snapshot queries run against: the live epoch in read-write mode,
  // the fixed one in read-only mode.
  std::shared_ptr<const DatabaseSnapshot> CurrentSnapshot() const;

  UpdatableDatabase* const db_;  // null in read-only mode
  const std::shared_ptr<const DatabaseSnapshot> fixed_snapshot_;
  const ServerOptions options_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  // Serializes Start/Shutdown and guards the lifecycle flags below, so
  // concurrent Shutdown calls (destructor racing a signal thread) cannot
  // double-join the worker threads.
  std::mutex lifecycle_mutex_;
  bool started_ = false;   // guarded by lifecycle_mutex_
  bool joined_ = false;    // guarded by lifecycle_mutex_

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;  // accepted fds awaiting a worker

  mutable std::mutex stats_mutex_;
  ServerStats stats_;

  std::mutex shutdown_mutex_;
  std::condition_variable shutdown_cv_;
};

}  // namespace stps

#endif  // STPS_SERVER_SERVER_H_
