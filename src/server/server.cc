#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

#include "common/parse.h"
#include "core/stpsjoin.h"

namespace stps {

namespace {

// Poll interval for blocking points (accept, reads, queue waits): the
// upper bound on how long shutdown can go unnoticed by any thread.
constexpr int kPollMs = 100;

// One request line may not exceed this (a malicious or broken client
// must not grow our buffer without bound).
constexpr size_t kMaxLineBytes = 1 << 16;

std::vector<std::string_view> SplitFields(std::string_view line) {
  std::vector<std::string_view> fields;
  size_t pos = 0;
  while (pos < line.size()) {
    while (pos < line.size() && line[pos] == ' ') ++pos;
    const size_t start = pos;
    while (pos < line.size() && line[pos] != ' ') ++pos;
    if (pos > start) fields.push_back(line.substr(start, pos - start));
  }
  return fields;
}

bool ParseJoinAlgorithm(std::string_view name, JoinAlgorithm* out) {
  if (name == "auto") *out = JoinAlgorithm::kAuto;
  else if (name == "sppjc") *out = JoinAlgorithm::kSPPJC;
  else if (name == "sppjb") *out = JoinAlgorithm::kSPPJB;
  else if (name == "sppjf") *out = JoinAlgorithm::kSPPJF;
  else if (name == "sppjd") *out = JoinAlgorithm::kSPPJD;
  else if (name == "brute") *out = JoinAlgorithm::kBruteForce;
  else return false;
  return true;
}

bool ParseTopKAlgorithm(std::string_view name, TopKAlgorithm* out) {
  if (name == "auto") *out = TopKAlgorithm::kAuto;
  else if (name == "f") *out = TopKAlgorithm::kF;
  else if (name == "s") *out = TopKAlgorithm::kS;
  else if (name == "p") *out = TopKAlgorithm::kP;
  else if (name == "brute") *out = TopKAlgorithm::kBruteForce;
  else return false;
  return true;
}

void AppendPairRows(const ObjectDatabase& db,
                    const std::vector<ScoredUserPair>& pairs,
                    uint64_t epoch, std::string* out) {
  char buffer[64];
  out->append("OK ");
  std::snprintf(buffer, sizeof(buffer), "%zu %llu\n", pairs.size(),
                static_cast<unsigned long long>(epoch));
  out->append(buffer);
  for (const ScoredUserPair& pair : pairs) {
    out->append(db.UserName(pair.a));
    out->push_back(' ');
    out->append(db.UserName(pair.b));
    std::snprintf(buffer, sizeof(buffer), " %.6f\n", pair.score);
    out->append(buffer);
  }
}

bool SendAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

QueryServer::QueryServer(UpdatableDatabase* db, ServerOptions options)
    : db_(db), options_(std::move(options)) {
  STPS_CHECK(db != nullptr);
}

QueryServer::QueryServer(std::shared_ptr<const DatabaseSnapshot> snapshot,
                         ServerOptions options)
    : db_(nullptr),
      fixed_snapshot_(std::move(snapshot)),
      options_(std::move(options)) {
  STPS_CHECK(fixed_snapshot_ != nullptr);
}

std::shared_ptr<const DatabaseSnapshot> QueryServer::CurrentSnapshot() const {
  return db_ != nullptr ? db_->snapshot() : fixed_snapshot_;
}

QueryServer::~QueryServer() { Shutdown(); }

Status QueryServer::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  STPS_CHECK(!started_);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError("socket() failed");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("bind failed on " + options_.host + ":" +
                           std::to_string(options_.port));
  }
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("listen failed");
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  const int workers = std::max(1, options_.num_workers);
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void QueryServer::RequestShutdown() {
  stopping_.store(true, std::memory_order_release);
  // The empty critical sections order the flag store before the notify
  // with respect to waiters that checked the predicate under the lock —
  // without them a waiter could check, miss the store, then sleep
  // through the notification.
  { std::lock_guard<std::mutex> lock(queue_mutex_); }
  queue_cv_.notify_all();
  { std::lock_guard<std::mutex> lock(shutdown_mutex_); }
  shutdown_cv_.notify_all();
}

void QueryServer::WaitForShutdownRequest() {
  std::unique_lock<std::mutex> lock(shutdown_mutex_);
  shutdown_cv_.wait(lock, [this] { return shutdown_requested(); });
}

void QueryServer::Shutdown() {
  RequestShutdown();
  // One caller joins; concurrent or repeated calls see started_/joined_
  // under the lock and return without touching the threads. Workers never
  // call Shutdown (the SHUTDOWN command only flags RequestShutdown), so
  // holding the lock across the joins cannot deadlock.
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (!started_ || joined_) return;
  if (accept_thread_.joinable()) accept_thread_.join();
  // Turn away connections that were admitted but never reached a worker.
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    for (const int fd : pending_) {
      SendAll(fd, "ERR shutting down\n");
      ::close(fd);
    }
    pending_.clear();
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  joined_ = true;
}

ServerStats QueryServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void QueryServer::AcceptLoop() {
  while (!shutdown_requested()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMs);
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    bool admitted = false;
    bool shutting_down = false;
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      if (shutdown_requested()) {
        shutting_down = true;
      } else if (pending_.size() < options_.max_pending) {
        pending_.push_back(fd);
        admitted = true;
      }
    }
    if (admitted) {
      queue_cv_.notify_one();
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.connections_accepted;
    } else {
      // Backpressure: tell the client why, don't make it wait. "busy"
      // invites a retry; "shutting down" tells it not to bother.
      SendAll(fd, shutting_down ? "ERR shutting down\n" : "ERR busy\n");
      ::close(fd);
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.connections_rejected;
    }
  }
}

void QueryServer::WorkerLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return !pending_.empty() || shutdown_requested();
      });
      if (pending_.empty()) {
        if (shutdown_requested()) return;
        continue;
      }
      fd = pending_.front();
      pending_.pop_front();
    }
    HandleConnection(fd);
  }
}

void QueryServer::HandleConnection(int fd) {
  std::string buffer;
  char chunk[4096];
  auto idle_since = std::chrono::steady_clock::now();
  for (;;) {
    // Serve every complete line already buffered.
    size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      std::string response;
      const bool keep_open = HandleRequest(line, &response);
      const bool sent = SendAll(fd, response);
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.requests_served;
        if (response.rfind("ERR", 0) == 0) ++stats_.requests_failed;
      }
      if (!keep_open || !sent) {
        ::close(fd);
        return;
      }
      idle_since = std::chrono::steady_clock::now();
    }
    if (buffer.size() > kMaxLineBytes) {
      SendAll(fd, "ERR request line too long\n");
      ::close(fd);
      return;
    }
    // In-flight requests finish (above); idle connections close once a
    // shutdown is underway.
    if (shutdown_requested()) {
      ::close(fd);
      return;
    }
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMs);
    if (ready < 0) {
      ::close(fd);
      return;
    }
    if (ready == 0) {
      const auto idle = std::chrono::steady_clock::now() - idle_since;
      if (idle > std::chrono::milliseconds(options_.idle_timeout_ms)) {
        SendAll(fd, "ERR idle timeout\n");
        ::close(fd);
        return;
      }
      continue;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {  // peer closed or error
      ::close(fd);
      return;
    }
    buffer.append(chunk, static_cast<size_t>(n));
  }
}

bool QueryServer::HandleRequest(const std::string& line, std::string* out) {
  const std::vector<std::string_view> fields = SplitFields(line);
  if (fields.empty()) {
    out->append("ERR empty request\n");
    return true;
  }
  const std::string_view command = fields[0];

  if (command == "PING") {
    out->append("OK pong\n");
    return true;
  }

  if (command == "QUIT") {
    out->append("OK bye\n");
    return false;
  }

  if (command == "SHUTDOWN") {
    out->append("OK shutting down\n");
    RequestShutdown();
    return false;
  }

  if (command == "EPOCH") {
    out->append("OK " + std::to_string(CurrentSnapshot()->epoch) + "\n");
    return true;
  }

  if (command == "PUBLISH") {
    if (read_only()) {
      out->append("ERR read-only server\n");
      return true;
    }
    // PublishIfDirty reports whether a new epoch was actually produced
    // and which path (delta splice vs full rebuild) built it.
    const PublishResult result = db_->PublishIfDirty();
    char buffer[96];
    if (result.published) {
      std::snprintf(buffer, sizeof(buffer), "OK %llu %s %.3f\n",
                    static_cast<unsigned long long>(result.snapshot->epoch),
                    result.delta ? "delta" : "full", result.publish_ms);
    } else {
      std::snprintf(buffer, sizeof(buffer), "OK %llu unchanged 0.000\n",
                    static_cast<unsigned long long>(result.snapshot->epoch));
    }
    out->append(buffer);
    return true;
  }

  if (command == "STATS") {
    const auto snapshot = CurrentSnapshot();
    const UpdateStats update = read_only() ? UpdateStats{} : db_->stats();
    ServerStats server;
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      server = stats_;
    }
    char buffer[768];
    std::snprintf(
        buffer, sizeof(buffer),
        "OK epoch=%llu objects=%zu users=%zu live_objects=%zu "
        "inserted=%llu deleted=%llu publishes=%llu delta_publishes=%llu "
        "full_publishes=%llu dirty_users_published=%llu blocks_reused=%llu "
        "blocks_rebuilt=%llu last_publish_ms=%.3f accepted=%llu "
        "rejected=%llu served=%llu failed=%llu\n",
        static_cast<unsigned long long>(snapshot->epoch),
        snapshot->db.num_objects(), snapshot->db.num_users(),
        read_only() ? snapshot->db.num_objects() : db_->live_objects(),
        static_cast<unsigned long long>(update.objects_inserted),
        static_cast<unsigned long long>(update.objects_deleted),
        static_cast<unsigned long long>(update.publishes),
        static_cast<unsigned long long>(update.delta_publishes),
        static_cast<unsigned long long>(update.full_publishes),
        static_cast<unsigned long long>(update.dirty_users_published),
        static_cast<unsigned long long>(update.blocks_reused),
        static_cast<unsigned long long>(update.blocks_rebuilt),
        update.last_publish_ms,
        static_cast<unsigned long long>(server.connections_accepted),
        static_cast<unsigned long long>(server.connections_rejected),
        static_cast<unsigned long long>(server.requests_served),
        static_cast<unsigned long long>(server.requests_failed));
    out->append(buffer);
    return true;
  }

  if (command == "SLEEP") {
    uint64_t ms = 0;
    if (fields.size() != 2 || !ParseUint64(fields[1], &ms) || ms > 10000) {
      out->append("ERR usage: SLEEP <ms up to 10000>\n");
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    out->append("OK slept\n");
    return true;
  }

  if (command == "INSERT") {
    if (read_only()) {
      out->append("ERR read-only server\n");
      return true;
    }
    if (fields.size() < 5 || fields.size() > 6) {
      out->append("ERR usage: INSERT <user> <x> <y> <kw1,kw2,...|-> [time]\n");
      return true;
    }
    RawObject object;
    object.user = std::string(fields[1]);
    if (!ParseDouble(fields[2], &object.loc.x) ||
        !ParseDouble(fields[3], &object.loc.y)) {
      out->append("ERR bad coordinates\n");
      return true;
    }
    if (fields.size() == 6 && !ParseDouble(fields[5], &object.time)) {
      out->append("ERR bad time\n");
      return true;
    }
    const std::string_view kw = fields[4];
    if (kw != "-") {
      size_t start = 0;
      while (start <= kw.size()) {
        const size_t comma = kw.find(',', start);
        const std::string_view token =
            comma == std::string_view::npos ? kw.substr(start)
                                            : kw.substr(start, comma - start);
        if (!token.empty()) object.keywords.emplace_back(token);
        if (comma == std::string_view::npos) break;
        start = comma + 1;
      }
    }
    db_->InsertObject(object);
    out->append("OK " + std::to_string(db_->live_objects()) + " " +
                std::to_string(db_->epoch()) + "\n");
    return true;
  }

  if (command == "DELETE") {
    if (read_only()) {
      out->append("ERR read-only server\n");
      return true;
    }
    if (fields.size() != 2) {
      out->append("ERR usage: DELETE <user>\n");
      return true;
    }
    if (!db_->DeleteUser(fields[1])) {
      out->append("ERR unknown user\n");
      return true;
    }
    out->append("OK " + std::to_string(db_->live_objects()) + " " +
                std::to_string(db_->epoch()) + "\n");
    return true;
  }

  if (command == "JOIN" || command == "TOPK" || command == "PROBE") {
    // Every query runs against the snapshot taken here; concurrent
    // writers publish new epochs without disturbing it (read-only mode
    // always serves the one fixed snapshot).
    const auto snapshot = CurrentSnapshot();
    const ObjectDatabase& db = snapshot->db;

    if (command == "PROBE") {
      STPSQuery query;
      if (fields.size() != 5 || !ParseDouble(fields[2], &query.eps_loc) ||
          !ParseDouble(fields[3], &query.eps_doc) ||
          !ParseDouble(fields[4], &query.eps_u)) {
        out->append("ERR usage: PROBE <user> <eps_loc> <eps_doc> <eps_u>\n");
        return true;
      }
      if (query.eps_loc < 0 || query.eps_doc < 0 || query.eps_doc > 1 ||
          query.eps_u < 0 || query.eps_u > 1) {
        out->append("ERR thresholds out of range\n");
        return true;
      }
      // Resolve the external key to the snapshot's dense id.
      UserId user = 0;
      if (!db.FindUser(fields[1], &user)) {
        out->append("ERR unknown user\n");
        return true;
      }
      AppendPairRows(db, FindSimilarUsers(db, user, query), snapshot->epoch,
                     out);
      return true;
    }

    // JOIN / TOPK share the option-token tail.
    bool sketch = false;
    int threads = 1;
    std::string_view algorithm_name;
    bool options_ok = true;
    for (size_t i = 4; i < fields.size(); ++i) {
      if (fields[i] == "SKETCH") {
        sketch = true;
      } else if (fields[i] == "THREADS" && i + 1 < fields.size()) {
        if (!ParseInt(fields[++i], 1, options_.max_query_threads, &threads)) {
          options_ok = false;
        }
      } else if (fields[i] == "ALGO" && i + 1 < fields.size()) {
        algorithm_name = fields[++i];
      } else {
        options_ok = false;
      }
    }

    if (command == "JOIN") {
      STPSQuery query;
      JoinOptions join_options;
      join_options.algorithm = JoinAlgorithm::kAuto;
      if (!options_ok || fields.size() < 4 ||
          !ParseDouble(fields[1], &query.eps_loc) ||
          !ParseDouble(fields[2], &query.eps_doc) ||
          !ParseDouble(fields[3], &query.eps_u) ||
          (!algorithm_name.empty() &&
           !ParseJoinAlgorithm(algorithm_name, &join_options.algorithm))) {
        out->append(
            "ERR usage: JOIN <eps_loc> <eps_doc> <eps_u> [ALGO <name>] "
            "[THREADS <n>] [SKETCH]\n");
        return true;
      }
      if (query.eps_loc < 0 || query.eps_doc < 0 || query.eps_doc > 1 ||
          query.eps_u < 0 || query.eps_u > 1) {
        out->append("ERR thresholds out of range\n");
        return true;
      }
      // The filter-based algorithms require real textual thresholds;
      // kAuto and brute force handle the degenerate cases themselves.
      if (join_options.algorithm != JoinAlgorithm::kAuto &&
          join_options.algorithm != JoinAlgorithm::kBruteForce &&
          (query.eps_doc <= 0 || query.eps_u <= 0)) {
        out->append("ERR this algorithm requires eps_doc > 0 and eps_u > 0\n");
        return true;
      }
      query.sketch.enabled = sketch;
      query.parallel.num_threads = threads;
      AppendPairRows(db, RunSTPSJoin(db, query, join_options),
                     snapshot->epoch, out);
      return true;
    }

    TopKQuery query;
    TopKAlgorithm algorithm = TopKAlgorithm::kAuto;
    if (!options_ok || fields.size() < 4 ||
        !ParseDouble(fields[1], &query.eps_loc) ||
        !ParseDouble(fields[2], &query.eps_doc) ||
        !ParseSize(fields[3], &query.k) || query.k == 0 ||
        (!algorithm_name.empty() &&
         !ParseTopKAlgorithm(algorithm_name, &algorithm))) {
      out->append(
          "ERR usage: TOPK <eps_loc> <eps_doc> <k> [ALGO <name>] "
          "[THREADS <n>] [SKETCH]\n");
      return true;
    }
    if (query.eps_loc < 0 || query.eps_doc < 0 || query.eps_doc > 1) {
      out->append("ERR thresholds out of range\n");
      return true;
    }
    if (algorithm != TopKAlgorithm::kAuto &&
        algorithm != TopKAlgorithm::kBruteForce && query.eps_doc <= 0) {
      out->append("ERR this variant requires eps_doc > 0\n");
      return true;
    }
    query.sketch.enabled = sketch;
    query.parallel.num_threads = threads;
    AppendPairRows(db, RunTopKSTPSJoin(db, query, algorithm),
                   snapshot->epoch, out);
    return true;
  }

  out->append("ERR unknown command\n");
  return true;
}

}  // namespace stps
