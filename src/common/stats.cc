#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace stps {

double RunningStats::Mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::Variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::StdDev() const { return std::sqrt(Variance()); }

double RunningStats::Min() const { return count_ == 0 ? 0.0 : min_; }

double RunningStats::Max() const { return count_ == 0 ? 0.0 : max_; }

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(count_ + other.count_);
  const double delta = other.mean_ - mean_;
  const double new_mean =
      mean_ + delta * static_cast<double>(other.count_) / total;
  m2_ = m2_ + other.m2_ +
        delta * delta * static_cast<double>(count_) *
            static_cast<double>(other.count_) / total;
  mean_ = new_mean;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

}  // namespace stps
