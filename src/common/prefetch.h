// Memory-advice hints for scans over mmap'd snapshots (io/binary.h).
//
// The sharded join streams mostly-disjoint user ranges of a mapped
// arena; telling the kernel which ranges are about to be touched
// (POSIX_MADV_WILLNEED) lets it batch the page-ins instead of taking one
// major fault per page, and marking a linear pass POSIX_MADV_SEQUENTIAL
// enables aggressive readahead plus early reclaim behind the scan. The
// hints are purely advisory: they never change results, only paging
// behaviour, and every call degrades to a no-op on platforms without
// posix_madvise (or on ranges that are not page-backed — errors are
// deliberately ignored).

#ifndef STPS_COMMON_PREFETCH_H_
#define STPS_COMMON_PREFETCH_H_

#include <cstddef>
#include <cstdint>
#include <span>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#include <unistd.h>
#define STPS_HAS_POSIX_MADVISE 1
#else
#define STPS_HAS_POSIX_MADVISE 0
#endif

namespace stps {

enum class PrefetchMode {
  kWillNeed,    // touch soon, in no particular order
  kSequential,  // one linear front-to-back pass
};

/// Advises the kernel about an upcoming access pattern over [addr,
/// addr + bytes). The range is widened to page boundaries (posix_madvise
/// requires a page-aligned start); zero-length and null ranges are
/// no-ops, and failures (e.g. anonymous heap memory on some kernels) are
/// ignored — the hint is best-effort by design.
inline void AdviseMemory(const void* addr, size_t bytes, PrefetchMode mode) {
#if STPS_HAS_POSIX_MADVISE
  if (addr == nullptr || bytes == 0) return;
  static const uintptr_t kPageMask =
      static_cast<uintptr_t>(sysconf(_SC_PAGESIZE)) - 1;
  const uintptr_t begin = reinterpret_cast<uintptr_t>(addr) & ~kPageMask;
  const uintptr_t end =
      (reinterpret_cast<uintptr_t>(addr) + bytes + kPageMask) & ~kPageMask;
  const int advice = mode == PrefetchMode::kSequential
                         ? POSIX_MADV_SEQUENTIAL
                         : POSIX_MADV_WILLNEED;
  (void)posix_madvise(reinterpret_cast<void*>(begin),
                      static_cast<size_t>(end - begin), advice);
#else
  (void)addr;
  (void)bytes;
  (void)mode;
#endif
}

/// Span convenience wrapper.
template <typename T>
inline void AdviseSpan(std::span<const T> span, PrefetchMode mode) {
  AdviseMemory(span.data(), span.size_bytes(), mode);
}

}  // namespace stps

#endif  // STPS_COMMON_PREFETCH_H_
