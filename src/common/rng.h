// Deterministic random number generation and the samplers used by the
// synthetic dataset generators (uniform, Gaussian, lognormal, Zipf).
//
// A self-contained xoshiro256** engine is used instead of std::mt19937 so
// that generated datasets are reproducible across standard libraries and
// platforms (std:: distributions are not portable bit-for-bit).

#ifndef STPS_COMMON_RNG_H_
#define STPS_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace stps {

/// xoshiro256** pseudo-random generator, seeded via splitmix64.
/// Satisfies the UniformRandomBitGenerator concept.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the generator. Identical seeds yield identical streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit value.
  uint64_t operator()() { return Next(); }
  uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Precondition: n > 0.
  uint64_t NextBelow(uint64_t n);

  /// Uniform integer in [lo, hi]. Precondition: lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal deviate (Box–Muller; one value per call).
  double NextGaussian();

  /// Normal deviate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Lognormal deviate with the given *underlying normal* parameters.
  double LogNormal(double mu, double sigma);

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p);

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

/// Samples ranks 0..n-1 with probability proportional to 1/(rank+1)^theta
/// (a Zipf/zeta law). Precomputes the CDF once; each draw is a binary
/// search, so sampling is O(log n).
class ZipfSampler {
 public:
  /// Builds the sampler for `n` ranks with exponent `theta`.
  /// Preconditions: n > 0, theta >= 0.
  ZipfSampler(size_t n, double theta);

  /// Draws a rank in [0, n).
  size_t Sample(Rng& rng) const;

  /// Number of ranks.
  size_t size() const { return cdf_.size(); }

  /// Probability mass of the given rank.
  double Probability(size_t rank) const;

 private:
  std::vector<double> cdf_;
};

/// Computes lognormal underlying parameters (mu, sigma) that realise the
/// requested distribution mean and standard deviation. Used to calibrate
/// objects-per-user and tokens-per-object against the paper's Table 1.
struct LogNormalParams {
  double mu = 0.0;
  double sigma = 1.0;

  /// Solves for (mu, sigma) from target mean/stddev of the lognormal
  /// variate itself. Preconditions: mean > 0, stddev >= 0.
  static LogNormalParams FromMoments(double mean, double stddev);
};

}  // namespace stps

#endif  // STPS_COMMON_RNG_H_
