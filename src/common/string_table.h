// StringTable: an immutable id -> string table that either owns its
// strings (std::vector<std::string>, the DatabaseBuilder path) or borrows
// them as an offsets-plus-blob view into an external arena (the mmap'd
// snapshot path — see io/binary.h). The borrowed layout is the on-disk
// layout: `offsets` has size()+1 entries and string i occupies
// blob[offsets[i], offsets[i+1]).
//
// Owned storage sits behind a shared_ptr-to-const, so copying a table is
// O(1) and shares the strings: the delta publish path hands the previous
// epoch's table to the next one whenever the user set did not change,
// instead of re-copying thousands of names per publish.
//
// The reverse mapping (Find) is built lazily on first use, so opening a
// mapped snapshot never touches the string payload; the index state lives
// behind a shared_ptr so the table stays movable (ObjectDatabase moves)
// — and a copied table shares the index too, built or not.

#ifndef STPS_COMMON_STRING_TABLE_H_
#define STPS_COMMON_STRING_TABLE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/macros.h"

namespace stps {

class StringTable {
 public:
  StringTable() = default;

  /// Owned mode. `prebuilt_index` (name -> id) is adopted when provided,
  /// so builders that interned through a map anyway pay nothing extra.
  explicit StringTable(std::vector<std::string> strings)
      : owned_(std::make_shared<const std::vector<std::string>>(
            std::move(strings))),
        index_(std::make_shared<FindIndex>()) {}

  StringTable(std::vector<std::string> strings,
              std::unordered_map<std::string, uint32_t> prebuilt_index)
      : owned_(std::make_shared<const std::vector<std::string>>(
            std::move(strings))),
        index_(std::make_shared<FindIndex>()) {
    index_->map = std::move(prebuilt_index);
    std::call_once(index_->once, [] {});  // mark the lazy build as done
  }

  /// Borrowed mode: `offsets` must hold n+1 monotone entries ending at
  /// blob.size() (the caller validates; accessors only DCHECK).
  static StringTable Borrow(std::span<const uint64_t> offsets,
                            std::span<const char> blob) {
    StringTable table;
    table.offsets_ = offsets;
    table.blob_ = blob;
    table.borrowed_ = true;
    table.index_ = std::make_shared<FindIndex>();
    return table;
  }

  size_t size() const {
    if (borrowed_) return offsets_.empty() ? 0 : offsets_.size() - 1;
    return owned_ ? owned_->size() : 0;
  }

  std::string_view operator[](size_t i) const {
    STPS_DCHECK(i < size());
    if (!borrowed_) return (*owned_)[i];
    const uint64_t begin = offsets_[i];
    const uint64_t end = offsets_[i + 1];
    STPS_DCHECK(begin <= end && end <= blob_.size());
    return std::string_view(blob_.data() + begin,
                            static_cast<size_t>(end - begin));
  }

  /// Resolves a string back to its id. The name -> id map is built once,
  /// on the first call (thread-safe); ids are dense [0, size()).
  bool Find(std::string_view key, uint32_t* id) const {
    if (size() == 0) return false;
    FindIndex& index = *index_;
    std::call_once(index.once, [&] {
      index.map.reserve(size());
      for (size_t i = 0; i < size(); ++i) {
        index.map.emplace((*this)[i], static_cast<uint32_t>(i));
      }
    });
    const auto it = index.map.find(std::string(key));
    if (it == index.map.end()) return false;
    *id = it->second;
    return true;
  }

 private:
  struct FindIndex {
    std::once_flag once;
    std::unordered_map<std::string, uint32_t> map;
  };

  std::shared_ptr<const std::vector<std::string>> owned_;
  std::span<const uint64_t> offsets_;  // borrowed mode only
  std::span<const char> blob_;
  bool borrowed_ = false;
  // shared_ptr keeps the table movable (once_flag is not).
  std::shared_ptr<FindIndex> index_;
};

}  // namespace stps

#endif  // STPS_COMMON_STRING_TABLE_H_
