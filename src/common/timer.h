// Wall-clock timer used by the benchmark drivers and examples.

#ifndef STPS_COMMON_TIMER_H_
#define STPS_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace stps {

/// Measures elapsed wall-clock time. Starts running on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the timer.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Reset, in milliseconds.
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time since construction / last Reset, in seconds.
  double ElapsedSeconds() const { return ElapsedMillis() / 1000.0; }

  /// Elapsed time in whole microseconds (for coarse reporting).
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace stps

#endif  // STPS_COMMON_TIMER_H_
