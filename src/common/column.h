// Column<T>: an immutable array that either owns its storage (a
// std::vector filled at build time) or borrows it (a span into an
// external arena, e.g. an mmap'd snapshot — see io/binary.h).
//
// The read side is uniform: every accessor goes through the span view, so
// consumers cannot tell (and must not care) which mode a column is in.
// Moving a column is safe in both modes: moving a std::vector keeps its
// heap buffer, so an owned column's view stays valid, and a borrowed view
// never pointed into the object at all. Whoever creates a borrowed column
// is responsible for keeping the backing arena alive (ObjectDatabase pins
// it with a shared_ptr).

#ifndef STPS_COMMON_COLUMN_H_
#define STPS_COMMON_COLUMN_H_

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "common/macros.h"

namespace stps {

template <typename T>
class Column {
 public:
  Column() = default;

  /// Owned mode: adopts the vector.
  Column(std::vector<T> values)  // NOLINT(google-explicit-constructor)
      : owned_(std::move(values)), view_(owned_) {}

  Column& operator=(std::vector<T> values) {
    owned_ = std::move(values);
    view_ = owned_;
    return *this;
  }

  /// Borrowed mode: a view into storage someone else keeps alive.
  static Column Borrow(std::span<const T> view) {
    Column column;
    column.view_ = view;
    return column;
  }

  Column(const Column&) = delete;
  Column& operator=(const Column&) = delete;
  Column(Column&& other) noexcept
      : owned_(std::move(other.owned_)), view_(other.view_) {
    other.view_ = {};
  }
  Column& operator=(Column&& other) noexcept {
    owned_ = std::move(other.owned_);
    view_ = other.view_;
    other.view_ = {};
    return *this;
  }

  size_t size() const { return view_.size(); }
  bool empty() const { return view_.empty(); }
  const T* data() const { return view_.data(); }
  const T* begin() const { return view_.data(); }
  const T* end() const { return view_.data() + view_.size(); }
  const T& operator[](size_t i) const {
    STPS_DCHECK(i < view_.size());
    return view_[i];
  }
  const T& back() const {
    STPS_DCHECK(!view_.empty());
    return view_[view_.size() - 1];
  }
  std::span<const T> span() const { return view_; }
  operator std::span<const T>() const { return view_; }  // NOLINT

 private:
  std::vector<T> owned_;
  std::span<const T> view_;
};

}  // namespace stps

#endif  // STPS_COMMON_COLUMN_H_
