// Minimal Status/Result types for recoverable errors (mainly I/O).
//
// Modelled after the Status idiom common in database codebases (RocksDB,
// Arrow): library functions that can fail for environmental reasons return
// a Status (or StatusOr-like Result<T>) instead of throwing.

#ifndef STPS_COMMON_STATUS_H_
#define STPS_COMMON_STATUS_H_

#include <string>
#include <utility>

#include "common/macros.h"

namespace stps {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIOError,
  kCorruption,
};

/// Lightweight success/error carrier. Cheap to copy when OK.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }

  /// True when the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The error category.
  StatusCode code() const { return code_; }

  /// Human-readable message; empty for OK.
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<category>: <message>" for logs and tests.
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// A value or an error. `value()` may only be called when `ok()`.
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return some_value;`.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit from error status: allows `return Status::IOError(...);`.
  Result(Status status) : status_(std::move(status)) {
    STPS_CHECK(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// The held value. Precondition: ok().
  const T& value() const& {
    STPS_CHECK(ok());
    return value_;
  }
  T& value() & {
    STPS_CHECK(ok());
    return value_;
  }
  T&& value() && {
    STPS_CHECK(ok());
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace stps

#endif  // STPS_COMMON_STATUS_H_
