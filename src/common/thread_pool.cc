#include "common/thread_pool.h"

#include <algorithm>

namespace stps {

namespace {

// Which pool (if any) the current thread belongs to, and its slot. Lets
// nested ParallelFor calls from a worker run chunks under the worker's
// own slot, keeping the slots of concurrently running chunks distinct.
struct ThreadSlot {
  const ThreadPool* pool = nullptr;
  int slot = 0;
};
thread_local ThreadSlot tls_slot;

}  // namespace

ThreadPool::ThreadPool(int num_threads) : num_threads_(num_threads) {
  STPS_CHECK(num_threads >= 1);
  queues_.resize(static_cast<size_t>(num_threads));
  workers_.reserve(static_cast<size_t>(num_threads - 1));
  for (int slot = 1; slot < num_threads; ++slot) {
    workers_.emplace_back([this, slot] { WorkerLoop(slot); });
  }
}

ThreadPool::~ThreadPool() {
  WaitIdle();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

int ThreadPool::CallerSlot() const {
  return tls_slot.pool == this ? tls_slot.slot : 0;
}

bool ThreadPool::TryPopLocked(int slot, Task* task) {
  std::deque<Task>& own = queues_[static_cast<size_t>(slot)];
  if (!own.empty()) {
    *task = std::move(own.back());
    own.pop_back();
    return true;
  }
  for (int step = 1; step < num_threads_; ++step) {
    std::deque<Task>& victim =
        queues_[static_cast<size_t>((slot + step) % num_threads_)];
    if (!victim.empty()) {
      *task = std::move(victim.front());
      victim.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::RunTask(int slot, Task task) {
  const ThreadSlot saved = tls_slot;
  tls_slot = {this, slot};
  std::exception_ptr error;
  try {
    task.fn(slot);
  } catch (...) {
    error = std::current_exception();
  }
  tls_slot = saved;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (error) {
      std::exception_ptr& sink =
          task.batch != nullptr ? task.batch->error : detached_error_;
      if (!sink) sink = error;
    }
    if (task.batch != nullptr) --task.batch->remaining;
    --pending_;
  }
  // Completion may unblock a ParallelFor caller or WaitIdle; new-work
  // notifications happen at enqueue time.
  cv_.notify_all();
}

void ThreadPool::WorkerLoop(int slot) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    Task task;
    if (TryPopLocked(slot, &task)) {
      lock.unlock();
      RunTask(slot, std::move(task));
      lock.lock();
      continue;
    }
    if (stop_) return;
    cv_.wait(lock);
  }
}

void ThreadPool::ParallelFor(
    size_t begin, size_t end, size_t grain,
    const std::function<void(size_t, size_t, int)>& body) {
  if (begin >= end) return;
  const size_t n = end - begin;
  const size_t chunk =
      grain > 0
          ? grain
          : std::max<size_t>(1, n / (static_cast<size_t>(num_threads_) * 8));
  if (num_threads_ == 1) {
    // Serial reference behaviour: chunks in ascending order, slot 0,
    // exceptions propagate directly.
    for (size_t lo = begin; lo < end; lo += chunk) {
      body(lo, std::min(end, lo + chunk), 0);
    }
    return;
  }

  Batch batch;
  const int caller = CallerSlot();
  {
    std::lock_guard<std::mutex> lock(mu_);
    size_t queue = static_cast<size_t>(caller);
    for (size_t lo = begin; lo < end; lo += chunk) {
      const size_t hi = std::min(end, lo + chunk);
      queues_[queue % static_cast<size_t>(num_threads_)].push_back(
          Task{[&body, lo, hi](int worker) { body(lo, hi, worker); },
               &batch});
      ++queue;
      ++batch.remaining;
      ++pending_;
    }
  }
  cv_.notify_all();

  // Help until the batch drains: run own/stolen tasks (possibly from
  // other batches — that only speeds global progress), sleep only when
  // no task is runnable anywhere.
  std::unique_lock<std::mutex> lock(mu_);
  while (batch.remaining > 0) {
    Task task;
    if (TryPopLocked(caller, &task)) {
      lock.unlock();
      RunTask(caller, std::move(task));
      lock.lock();
      continue;
    }
    cv_.wait(lock);
  }
  std::exception_ptr error = batch.error;
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

void ThreadPool::ParallelForEach(size_t begin, size_t end, size_t grain,
                                 const std::function<void(size_t, int)>& fn) {
  ParallelFor(begin, end, grain,
              [&fn](size_t lo, size_t hi, int worker) {
                for (size_t i = lo; i < hi; ++i) fn(i, worker);
              });
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const size_t queue = next_queue_++ % static_cast<size_t>(num_threads_);
    queues_[queue].push_back(
        Task{[fn = std::move(fn)](int) { fn(); }, nullptr});
    ++pending_;
  }
  cv_.notify_all();
}

void ThreadPool::WaitIdle() {
  const int caller = CallerSlot();
  std::unique_lock<std::mutex> lock(mu_);
  while (pending_ > 0) {
    Task task;
    if (TryPopLocked(caller, &task)) {
      lock.unlock();
      RunTask(caller, std::move(task));
      lock.lock();
      continue;
    }
    cv_.wait(lock);
  }
  std::exception_ptr error = detached_error_;
  detached_error_ = nullptr;
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

}  // namespace stps
