#include "common/predicates.h"

#include <algorithm>

namespace stps {

// All derived bounds below follow the same recipe: a double estimate lands
// within a few counts of the true integer boundary (the estimate's relative
// error is a handful of ULPs, so the absolute error stays tiny at the
// magnitudes these counts take), and a fix-up loop walks to the exact
// extremal value using only the exact RatioAtLeast comparator. The loops
// are correct for any estimate — a bad estimate costs iterations, never
// exactness.

uint64_t MinCountForRatio(uint64_t den, double threshold) {
  if (threshold <= 0.0) return 0;
  // den == 0: RatioAtLeast(num, 0, t > 0) holds iff num > 0, so the
  // smallest satisfying count is 1 — which is > den, signalling that the
  // ratio is unattainable with a zero denominator (see SigmaUnmatchedBudget).
  if (den == 0) return 1;
  const double est = threshold * static_cast<double>(den);
  uint64_t c = est >= static_cast<double>(den)
                   ? den
                   : static_cast<uint64_t>(est > 0.0 ? est : 0.0);
  while (c > 0 && RatioAtLeast(c - 1, den, threshold)) --c;
  while (c <= den && !RatioAtLeast(c, den, threshold)) ++c;
  return c;  // den + 1 <=> impossible (threshold > 1)
}

size_t MinSizeForJaccard(size_t size_x, double threshold) {
  // J(x, y) >= t forces |y| >= |x ∩ y| >= t * |y ∪ x| >= ... the classical
  // bound |y| >= ceil(t * |x|); exact via MinCountForRatio.
  return static_cast<size_t>(MinCountForRatio(size_x, threshold));
}

size_t MaxSizeForJaccard(size_t size_x, double threshold) {
  if (threshold <= 0.0) return std::numeric_limits<size_t>::max();
  if (size_x == 0) return 0;
  // Largest n with size_x >= t * n, i.e. RatioAtLeast(size_x, n, t).
  const double est = static_cast<double>(size_x) / threshold;
  if (est >= 9.2e18) return std::numeric_limits<size_t>::max();  // saturate
  uint64_t n = static_cast<uint64_t>(est);
  while (n > 0 && !RatioAtLeast(size_x, n, threshold)) --n;
  while (RatioAtLeast(size_x, n + 1, threshold)) ++n;
  return static_cast<size_t>(n);
}

size_t PrefixLengthForJaccard(size_t size, double threshold) {
  if (size == 0) return 0;
  const uint64_t keep = MinCountForRatio(size, threshold);
  const size_t p =
      size - static_cast<size_t>(std::min<uint64_t>(keep, size)) + 1;
  return std::min(p, size);
}

size_t IndexPrefixLengthForJaccard(size_t size, double threshold) {
  if (size == 0) return 0;
  // keep = smallest k with k * (1 + t) >= 2t * size, which rearranges to
  // k >= t * (2 * size - k): exactly RatioAtLeast(k, 2 * size - k, t).
  const uint64_t s2 = 2 * static_cast<uint64_t>(size);
  const double est =
      2.0 * threshold / (1.0 + threshold) * static_cast<double>(size);
  uint64_t k = est >= static_cast<double>(size)
                   ? size
                   : static_cast<uint64_t>(est > 0.0 ? est : 0.0);
  while (k > 0 && RatioAtLeast(k - 1, s2 - (k - 1), threshold)) --k;
  while (k < size && !RatioAtLeast(k, s2 - k, threshold)) ++k;
  const size_t p = size - static_cast<size_t>(k) + 1;
  return std::min(p, size);
}

int64_t SigmaUnmatchedBudget(size_t total, double eps_u) {
  const uint64_t need = MinCountForRatio(total, eps_u);
  if (need > total) return -1;
  return static_cast<int64_t>(total - need);
}

}  // namespace stps
