// Streaming descriptive statistics (mean / standard deviation) used by the
// dataset statistics reporter (Table 1) and the benchmark drivers.

#ifndef STPS_COMMON_STATS_H_
#define STPS_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>

namespace stps {

/// Welford online accumulator for mean and (population) standard deviation.
class RunningStats {
 public:
  /// Adds one observation. Inline: the dataset-stats pass over every
  /// object/token/user sits on the publish path, where the per-call
  /// overhead of an out-of-line Add dominated the arithmetic.
  void Add(double x) {
    if (count_ == 0) {
      min_ = max_ = x;
    } else {
      if (x < min_) min_ = x;
      if (x > max_) max_ = x;
    }
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
  }

  /// Number of observations so far.
  size_t count() const { return count_; }

  /// Arithmetic mean; 0 when empty.
  double Mean() const;

  /// Population variance; 0 when fewer than two observations.
  double Variance() const;

  /// Population standard deviation.
  double StdDev() const;

  /// Smallest / largest observation; 0 when empty.
  double Min() const;
  double Max() const;

  /// Sum of all observations.
  double Sum() const { return sum_; }

  /// Merges another accumulator into this one.
  void Merge(const RunningStats& other);

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace stps

#endif  // STPS_COMMON_STATS_H_
