// Strict numeric parsing for user-facing inputs (CLI arguments, server
// protocol fields, TSV cells).
//
// The C strtod/strtoul family silently accepts trailing garbage
// ("1.5abc" -> 1.5), negative values for unsigned conversions ("-1"
// wraps), and returns 0 on totally non-numeric input — so a mistyped
// command line like `join db x y z` would quietly run with eps = 0.
// These helpers succeed only when the *entire* field is a valid number
// in range, and leave *out untouched on failure.

#ifndef STPS_COMMON_PARSE_H_
#define STPS_COMMON_PARSE_H_

#include <charconv>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string_view>
#include <system_error>

namespace stps {

/// Full-string floating-point parse. Accepts an optional leading '+'
/// (from_chars itself does not); rejects empty fields, trailing garbage,
/// out-of-range magnitudes, and non-finite values ("nan"/"inf", which
/// from_chars accepts — a NaN threshold slips past every ordered range
/// check downstream, so it must die here).
inline bool ParseDouble(std::string_view s, double* out) {
  if (!s.empty() && s.front() == '+') s.remove_prefix(1);
  if (s.empty()) return false;
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) return false;
  if (!std::isfinite(value)) return false;
  *out = value;
  return true;
}

/// Full-string unsigned decimal parse. Rejects signs entirely: "-1" is
/// an error, never a wraparound.
inline bool ParseUint64(std::string_view s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), value, 10);
  if (ec != std::errc() || ptr != s.data() + s.size()) return false;
  *out = value;
  return true;
}

/// Full-string size_t parse via ParseUint64 with a range check.
inline bool ParseSize(std::string_view s, size_t* out) {
  uint64_t value = 0;
  if (!ParseUint64(s, &value)) return false;
  if (value > std::numeric_limits<size_t>::max()) return false;
  *out = static_cast<size_t>(value);
  return true;
}

/// Full-string signed int parse with an inclusive range gate.
inline bool ParseInt(std::string_view s, int min_value, int max_value,
                     int* out) {
  if (!s.empty() && s.front() == '+') s.remove_prefix(1);
  if (s.empty()) return false;
  int value = 0;
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), value, 10);
  if (ec != std::errc() || ptr != s.data() + s.size()) return false;
  if (value < min_value || value > max_value) return false;
  *out = value;
  return true;
}

}  // namespace stps

#endif  // STPS_COMMON_PARSE_H_
