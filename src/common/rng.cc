#include "common/rng.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace stps {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::NextBelow(uint64_t n) {
  STPS_DCHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  STPS_DCHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box–Muller transform.
  double u1 = NextDouble();
  while (u1 <= 0.0) u1 = NextDouble();
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Gaussian(mu, sigma));
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

ZipfSampler::ZipfSampler(size_t n, double theta) {
  STPS_CHECK(n > 0);
  STPS_CHECK(theta >= 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = total;
  }
  for (auto& v : cdf_) v /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

size_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfSampler::Probability(size_t rank) const {
  STPS_CHECK(rank < cdf_.size());
  if (rank == 0) return cdf_[0];
  return cdf_[rank] - cdf_[rank - 1];
}

LogNormalParams LogNormalParams::FromMoments(double mean, double stddev) {
  STPS_CHECK(mean > 0.0);
  STPS_CHECK(stddev >= 0.0);
  // For X ~ LogNormal(mu, sigma): E[X] = exp(mu + sigma^2/2),
  // Var[X] = (exp(sigma^2) - 1) exp(2 mu + sigma^2).
  const double cv2 = (stddev / mean) * (stddev / mean);
  LogNormalParams p;
  p.sigma = std::sqrt(std::log(1.0 + cv2));
  p.mu = std::log(mean) - 0.5 * p.sigma * p.sigma;
  return p;
}

}  // namespace stps
