// The canonical threshold predicates of the STPS join.
//
// The join definition is all boundary conditions: a pair of objects matches
// iff dist <= eps_loc AND J >= eps_doc AND |dt| <= eps_time, and a pair of
// users matches iff sigma >= eps_u. Every layer of the system — grid and
// R-tree filters, PPJOIN prefix bounds, the intersection kernels, the
// brute-force oracle, the top-k queue — must agree on these predicates *at
// the threshold itself*, or a rounding disagreement between two layers
// silently changes the result set exactly at the values the paper sweeps.
//
// This header is the single audited policy. The contract, stated once and
// referenced from every call site:
//
//   * VERIFICATION IS EXACT. A predicate that decides membership in the
//     result set (JaccardAtLeast, SigmaAtLeast, WithinEpsLoc, WithinEpsTime)
//     evaluates the mathematical condition with no rounding of its own.
//     Every double threshold t is a binary rational (t = mantissa * 2^exp);
//     counting predicates compare integer cross-products of that rational
//     in 128-bit arithmetic, so "J >= eps_doc" means exactly that, even
//     when the true Jaccard equals eps_doc as a rational.
//   * FILTERS MAY ONLY OVER-APPROXIMATE. A derived bound used to prune
//     (prefix length, min/max size, the Lemma 1 unmatched budget, a spatial
//     query box) may admit extra candidates but must never reject a pair
//     the exact predicate accepts. When a bound cannot be made exact it
//     must round in the generous direction (see AddRoundUp/SubRoundDown).
//
// Derived bounds in this header are exact (not merely conservative): each is
// defined as the extremal integer satisfying the corresponding RatioAtLeast
// condition, computed by a float estimate plus an exact integer fix-up, so
// e.g. `overlap >= MinOverlapForJaccard(...)` *is* the Jaccard predicate and
// kernels need no trailing floating-point verification step.
//
// Domain: thresholds are finite doubles; callers validate (0, 1] where the
// algorithms require it. t <= 0 makes every "at least" predicate true.

#ifndef STPS_COMMON_PREDICATES_H_
#define STPS_COMMON_PREDICATES_H_

#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace stps {

namespace predicates_internal {

// A finite threshold t > 0 decomposed exactly as t = mantissa * 2^exponent
// with an odd mantissa of at most 53 bits. Exact because every finite
// double *is* such a binary rational.
struct BinaryRational {
  uint64_t mantissa;
  int exponent;
};

inline BinaryRational Decompose(double t) {
  const uint64_t bits = std::bit_cast<uint64_t>(t);
  const int biased = static_cast<int>((bits >> 52) & 0x7FF);
  uint64_t mantissa = bits & ((uint64_t{1} << 52) - 1);
  int exponent;
  if (biased == 0) {
    exponent = -1074;  // subnormal
  } else {
    mantissa |= uint64_t{1} << 52;
    exponent = biased - 1075;
  }
  const int tz = std::countr_zero(mantissa);
  mantissa >>= tz;
  exponent += tz;
  return {mantissa, exponent};
}

inline int BitWidth128(unsigned __int128 v) {
  const uint64_t hi = static_cast<uint64_t>(v >> 64);
  return hi != 0 ? 64 + std::bit_width(hi)
                 : std::bit_width(static_cast<uint64_t>(v));
}

}  // namespace predicates_internal

// ---------------------------------------------------------------------------
// Exact rational comparison — the root every counting predicate reduces to.
// ---------------------------------------------------------------------------

/// Exact `num / den >= threshold` over non-negative integer counts, i.e.
/// `num >= threshold * den` with no floating-point rounding anywhere.
/// [verification: exact]
///
/// With threshold = m * 2^e (odd m, see Decompose) the condition becomes
/// `num * 2^-e >= m * den`; m * den < 2^117 always fits unsigned __int128,
/// and the shifted side is compared by bit width when it would not.
///
/// Conventions: threshold <= 0 is always satisfied (a count ratio is >= 0);
/// den == 0 reads as an infinite ratio, satisfied iff num > 0 (this makes
/// JaccardAtLeast over two empty sets false for any positive threshold,
/// matching the kernels in text/intersect.h).
inline bool RatioAtLeast(uint64_t num, uint64_t den, double threshold) {
  if (threshold <= 0.0) return true;
  if (den == 0) return num > 0;
  if (num == 0) return false;
  if (num >= den && threshold <= 1.0) return true;  // common fast path
  if (!(threshold < std::numeric_limits<double>::infinity())) return false;
  const predicates_internal::BinaryRational r =
      predicates_internal::Decompose(threshold);
  const unsigned __int128 rhs =
      static_cast<unsigned __int128>(r.mantissa) * den;  // < 2^117
  if (r.exponent >= 0) {
    // threshold >= 1 territory: num >= (m * den) << e.
    if (predicates_internal::BitWidth128(rhs) + r.exponent > 64) return false;
    return static_cast<unsigned __int128>(num) >= (rhs << r.exponent);
  }
  const int shift = -r.exponent;  // in [1, 1074]
  // lhs = num << shift. If its bit width exceeds 117 it already dwarfs rhs.
  if (std::bit_width(num) + shift > 117) return true;
  return (static_cast<unsigned __int128>(num) << shift) >= rhs;
}

/// Smallest count c in [0, den] with RatioAtLeast(c, den, threshold), i.e.
/// the exact ceil(threshold * den) for threshold in (0, 1]. Returns den + 1
/// when no count suffices (threshold > 1). [verification: exact]
uint64_t MinCountForRatio(uint64_t den, double threshold);

// ---------------------------------------------------------------------------
// Spatial and temporal predicates.
// ---------------------------------------------------------------------------

/// `dist(a, b) <= eps_loc` in squared-distance form — no sqrt, ever.
/// [verification: exact relative to the canonical operands]
///
/// `eps_loc * eps_loc` rounds to nearest, so the predicate is exact with
/// respect to the *rounded* square. That is the policy: all layers compare
/// the same SquaredDistance value against the same rounded square, so they
/// cannot disagree with each other at the boundary. Spatial *filters* must
/// not reuse this comparison with differently-rounded operands; they widen
/// with AddRoundUp/SubRoundDown instead.
inline bool WithinEpsLoc(double squared_distance, double eps_loc) {
  return squared_distance <= eps_loc * eps_loc;
}

/// `|time_a - time_b| <= eps_time`. [verification: exact]
inline bool WithinEpsTime(double time_a, double time_b, double eps_time) {
  return std::fabs(time_a - time_b) <= eps_time;
}

/// `a + b` rounded toward +inf: the result is >= the real sum. For growing
/// filter boxes / margins. [filter: over-approximates]
inline double AddRoundUp(double a, double b) {
  return std::nextafter(a + b, std::numeric_limits<double>::infinity());
}

/// `a - b` rounded toward -inf: the result is <= the real difference.
/// [filter: over-approximates]
inline double SubRoundDown(double a, double b) {
  return std::nextafter(a - b, -std::numeric_limits<double>::infinity());
}

// ---------------------------------------------------------------------------
// Jaccard predicates and the PPJOIN-family derived bounds.
// ---------------------------------------------------------------------------

/// Exact `J(a, b) >= eps_doc` given |a ∩ b| and the two set sizes:
/// cross-multiplied as overlap >= eps_doc * (|a| + |b| - overlap), with the
/// rational path of RatioAtLeast. Two empty sets never match a positive
/// threshold. [verification: exact]
inline bool JaccardAtLeast(size_t overlap, size_t size_a, size_t size_b,
                           double eps_doc) {
  return RatioAtLeast(overlap, size_a + size_b - overlap, eps_doc);
}

/// Smallest overlap o with JaccardAtLeast(o, size_a, size_b, threshold):
/// the exact ceil(t / (1 + t) * (|a| + |b|)) boundary, so a kernel may
/// decide the pair by `overlap >= MinOverlapForJaccard(...)` alone.
/// Returns 0 when both sets are empty (callers guard empties; the canonical
/// predicate is false there). [verification: exact]
///
/// Hot path (PPJOIN calls this per posting): a float estimate lands within
/// a few counts of the boundary and an exact fix-up loop walks the rest —
/// multiplies and shifts only, no 128-bit division.
inline size_t MinOverlapForJaccard(size_t size_a, size_t size_b,
                                   double threshold) {
  if (threshold <= 0.0) return 0;
  const uint64_t s = static_cast<uint64_t>(size_a) + size_b;
  if (s == 0) return 0;
  const double est = threshold / (1.0 + threshold) * static_cast<double>(s);
  uint64_t o = est >= static_cast<double>(s)
                   ? s
                   : static_cast<uint64_t>(est > 0.0 ? est : 0.0);
  while (o > 0 && RatioAtLeast(o - 1, s - (o - 1), threshold)) --o;
  while (o < s && !RatioAtLeast(o, s - o, threshold)) ++o;
  return static_cast<size_t>(o);
}

/// Smallest |y| that can reach J(x, y) >= threshold: exact ceil(t * |x|).
/// [filter bound, but exact]
size_t MinSizeForJaccard(size_t size_x, double threshold);

/// Largest |y| that can reach J(x, y) >= threshold: exact floor(|x| / t),
/// saturating at SIZE_MAX for tiny thresholds. [filter bound, but exact]
size_t MaxSizeForJaccard(size_t size_x, double threshold);

/// Probing prefix length |x| - ceil(t * |x|) + 1 with the exact ceiling.
/// [filter bound, but exact]
size_t PrefixLengthForJaccard(size_t size, double threshold);

/// Indexing prefix length |x| - ceil(2t / (1 + t) * |x|) + 1 with the exact
/// ceiling (smallest k with k * (1 + t) >= 2t * |x|, evaluated as
/// RatioAtLeast(k, 2|x| - k, t)). [filter bound, but exact]
size_t IndexPrefixLengthForJaccard(size_t size, double threshold);

// ---------------------------------------------------------------------------
// Sigma (set-similarity of user object sets) predicates.
// ---------------------------------------------------------------------------

/// Exact `sigma = matched / total >= eps_u` in counting form, where
/// total = |Du| + |Dv|. Never evaluate sigma as a float quotient when the
/// counts are available. [verification: exact]
inline bool SigmaAtLeast(size_t matched, size_t total, double eps_u) {
  return RatioAtLeast(matched, total, eps_u);
}

/// Lemma 1 early-stop budget: the largest number of *unmatched* objects a
/// user pair with |Du| + |Dv| = total may accumulate and still possibly
/// satisfy SigmaAtLeast; -1 when even zero unmatched objects cannot (so a
/// kernel may stop as soon as `unmatched > budget`). Exactly consistent
/// with SigmaAtLeast by construction:
///   unmatched > total - MinCountForRatio(total, eps_u)
///     <=> matched_best = total - unmatched < MinCountForRatio(...)
///     <=> !SigmaAtLeast(matched_best, total, eps_u),
/// so the stop never kills a pair with sigma exactly eps_u — the historical
/// float form (1 - eps_u) * total did, one ULP at a time.
/// [filter bound, but exact]
int64_t SigmaUnmatchedBudget(size_t total, double eps_u);

/// `score >= threshold` over an already-rounded float score (e.g. a sigma
/// stored as a quotient by an earlier stage). The quotient fl(m / total)
/// rounds to nearest, so this can only OVER-accept relative to the exact
/// counting predicate — never use it to reject final results when counts
/// are recoverable (see MatchedCountFromScore). [filter: over-approximates]
inline bool ScoreAtLeast(double score, double threshold) {
  return score >= threshold;
}

/// Recovers the integer matched count m from a sigma stored as the rounded
/// quotient fl(m / total). Exact while total < 2^52: the quotient carries a
/// relative error <= 2^-53, so m' = score * total is within 1/2 of m and
/// llround snaps to it. [verification: exact under that bound]
inline size_t MatchedCountFromScore(double score, size_t total) {
  return static_cast<size_t>(
      std::llround(score * static_cast<double>(total)));
}

/// Converts a reported round-to-nearest score back into a threshold that
/// provably re-admits every pair whose reported score is >= `score` (e.g.
/// feeding a top-k tail score into a threshold join as eps_u). The true
/// rational behind a reported score s lies in [s - ulp/2, s + ulp/2], so
/// stepping one ULP down is both sufficient and the tightest safe choice.
/// [filter: over-approximates by at most one ULP]
inline double ThresholdFromScore(double score) {
  if (score <= 0.0) return 0.0;
  return std::nextafter(score, 0.0);
}

}  // namespace stps

#endif  // STPS_COMMON_PREDICATES_H_
