// Contract-checking macros used across the stps library.
//
// The library follows a no-exceptions policy: contract violations (caller
// bugs) abort via STPS_CHECK, while recoverable failures (e.g. I/O) are
// reported through stps::Status.

#ifndef STPS_COMMON_MACROS_H_
#define STPS_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

/// Aborts the process with a diagnostic when `condition` is false.
/// Used for preconditions and internal invariants; always enabled.
#define STPS_CHECK(condition)                                              \
  do {                                                                     \
    if (!(condition)) {                                                    \
      std::fprintf(stderr, "STPS_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #condition);                                  \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

/// Like STPS_CHECK but compiled out in release builds. Use on hot paths.
#ifdef NDEBUG
#define STPS_DCHECK(condition) \
  do {                         \
  } while (0)
#else
#define STPS_DCHECK(condition) STPS_CHECK(condition)
#endif

/// Marks a class as neither copyable nor movable.
#define STPS_DISALLOW_COPY_AND_ASSIGN(TypeName) \
  TypeName(const TypeName&) = delete;           \
  TypeName& operator=(const TypeName&) = delete

#endif  // STPS_COMMON_MACROS_H_
