// Work-stealing thread pool shared by every parallel join driver.
//
// A ThreadPool owns a fixed set of workers, each with its own task deque:
// owners push and pop at the back (LIFO, for locality), idle workers steal
// from the front of the other deques (FIFO, so the oldest — typically
// largest — chunks migrate first). ParallelFor splits an index range into
// chunks ("dynamic chunking": many more chunks than workers, so fast
// workers drain the slow workers' deques) and blocks until every chunk has
// run, with the calling thread itself executing and stealing chunks while
// it waits. Because the caller participates, ParallelFor may be invoked
// from inside a pool task (nested submission) without deadlock.
//
// Concurrency notes:
//  * The deques are guarded by one pool mutex. Tasks are coarse chunks, so
//    the lock is taken O(#chunks) times per ParallelFor, not O(#items);
//    for the join workloads this is noise next to the per-chunk work.
//  * One external thread may drive a pool instance at a time (pool worker
//    threads may additionally issue nested calls). The join drivers create
//    a pool per invocation, which satisfies this trivially.
//  * Exceptions thrown by a task are captured and rethrown to the caller:
//    ParallelFor rethrows the first chunk exception after the whole batch
//    has finished; WaitIdle rethrows the first exception of detached
//    Submit tasks. The stps library itself never throws (no-exceptions
//    policy) — propagation exists for client callables and the tests.

#ifndef STPS_COMMON_THREAD_POOL_H_
#define STPS_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/macros.h"

namespace stps {

/// Execution knobs for the parallel join drivers. A field of STPSQuery /
/// TopKQuery, so callers opt in per query.
struct ParallelOptions {
  /// Worker count; 1 (the default) selects the sequential driver.
  int num_threads = 1;
  /// Iterations per ParallelFor chunk; 0 picks a chunk size yielding
  /// ~8 chunks per worker (good load balance at low scheduling cost).
  size_t grain = 0;
};

class ThreadPool {
 public:
  /// Spawns `num_threads - 1` background workers; the thread calling
  /// ParallelFor / WaitIdle acts as the remaining worker (slot 0).
  /// Precondition: num_threads >= 1.
  explicit ThreadPool(int num_threads);

  /// Drains every queued task, then joins the workers.
  ~ThreadPool();

  STPS_DISALLOW_COPY_AND_ASSIGN(ThreadPool);

  int num_threads() const { return num_threads_; }

  /// Runs body(chunk_begin, chunk_end, worker) over disjoint chunks
  /// covering [begin, end), `grain` iterations per chunk (0 = auto).
  /// `worker` is the executing slot in [0, num_threads()); two chunks
  /// running concurrently always see different slots, so per-slot
  /// accumulators need no synchronisation. Blocks until every chunk has
  /// run; rethrows the first chunk exception. With num_threads() == 1
  /// the chunks run inline, in ascending order — exactly a serial loop.
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t, size_t, int)>& body);

  /// Per-index convenience over ParallelFor: fn(index, worker).
  void ParallelForEach(size_t begin, size_t end, size_t grain,
                       const std::function<void(size_t, int)>& fn);

  /// Enqueues a detached task. Tasks may Submit further tasks.
  void Submit(std::function<void()> fn);

  /// Blocks until every queued task (including Submit tasks spawned by
  /// other tasks) has completed, executing tasks itself while it waits.
  /// Rethrows the first exception thrown by a detached task.
  void WaitIdle();

 private:
  // Completion state of one ParallelFor call, on the caller's stack.
  struct Batch {
    size_t remaining = 0;
    std::exception_ptr error;
  };

  struct Task {
    std::function<void(int worker)> fn;
    Batch* batch = nullptr;  // nullptr for detached Submit tasks
  };

  // The slot the calling thread runs tasks under: its worker slot for
  // pool threads, 0 for the external caller.
  int CallerSlot() const;

  // Pops a task: own back first, then steals the front of the other
  // deques (round-robin from slot + 1). Requires mu_ held.
  bool TryPopLocked(int slot, Task* task);

  // Executes `task` on `slot`, recording exceptions and completion.
  void RunTask(int slot, Task task);

  void WorkerLoop(int slot);

  const int num_threads_;
  std::mutex mu_;
  std::condition_variable cv_;                // new work & task completion
  std::vector<std::deque<Task>> queues_;      // one per slot
  size_t pending_ = 0;                        // queued + running tasks
  std::exception_ptr detached_error_;         // first Submit-task error
  size_t next_queue_ = 0;                     // Submit round-robin cursor
  bool stop_ = false;
  std::vector<std::thread> workers_;          // slots 1 .. num_threads-1
};

}  // namespace stps

#endif  // STPS_COMMON_THREAD_POOL_H_
