#include "query/ir_tree.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "text/token_set.h"

namespace stps {

namespace {

// Two independent bit positions per token (splitmix-style mixing).
uint64_t MixToken(TokenId token, uint64_t salt) {
  uint64_t z = (static_cast<uint64_t>(token) + 1) * 0x9E3779B97F4A7C15ULL +
               salt;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

void BloomTokenSignature::Add(TokenId token) {
  const uint64_t h1 = MixToken(token, 0x1234);
  const uint64_t h2 = MixToken(token, 0xABCD);
  bits_[(h1 >> 6) % kWords] |= 1ULL << (h1 & 63);
  bits_[(h2 >> 6) % kWords] |= 1ULL << (h2 & 63);
}

void BloomTokenSignature::Merge(const BloomTokenSignature& other) {
  for (size_t i = 0; i < kWords; ++i) bits_[i] |= other.bits_[i];
}

bool BloomTokenSignature::MightContain(TokenId token) const {
  const uint64_t h1 = MixToken(token, 0x1234);
  const uint64_t h2 = MixToken(token, 0xABCD);
  return (bits_[(h1 >> 6) % kWords] & (1ULL << (h1 & 63))) != 0 &&
         (bits_[(h2 >> 6) % kWords] & (1ULL << (h2 & 63))) != 0;
}

size_t BloomTokenSignature::PossibleOverlap(const TokenVector& query) const {
  size_t count = 0;
  for (const TokenId t : query) {
    if (MightContain(t)) ++count;
  }
  return count;
}

IRTree::IRTree(const ObjectDatabase& db, int fanout) : db_(db) {
  STPS_CHECK(fanout >= 2);
  const Rect& bounds = db.bounds();
  diagonal_ = bounds.IsEmpty()
                  ? 1.0
                  : std::max(1e-12, Distance({bounds.min_x, bounds.min_y},
                                             {bounds.max_x, bounds.max_y}));
  Build(fanout);
}

void IRTree::Build(int fanout) {
  const size_t n = db_.num_objects();
  if (n == 0) return;
  // STR leaf packing over object ids.
  std::vector<ObjectId> ids(n);
  for (ObjectId i = 0; i < n; ++i) ids[i] = i;
  std::sort(ids.begin(), ids.end(), [this](ObjectId a, ObjectId b) {
    const Point& pa = db_.object(a).loc;
    const Point& pb = db_.object(b).loc;
    if (pa.x != pb.x) return pa.x < pb.x;
    return pa.y < pb.y;
  });
  const size_t leaves = (n + fanout - 1) / fanout;
  const size_t slabs = std::max<size_t>(
      1, static_cast<size_t>(std::ceil(std::sqrt(
             static_cast<double>(leaves)))));
  const size_t slab_capacity =
      ((leaves + slabs - 1) / slabs) * static_cast<size_t>(fanout);

  std::vector<int32_t> level;
  for (size_t slab_start = 0; slab_start < n; slab_start += slab_capacity) {
    const size_t slab_end = std::min(n, slab_start + slab_capacity);
    std::sort(ids.begin() + slab_start, ids.begin() + slab_end,
              [this](ObjectId a, ObjectId b) {
                const Point& pa = db_.object(a).loc;
                const Point& pb = db_.object(b).loc;
                if (pa.y != pb.y) return pa.y < pb.y;
                return pa.x < pb.x;
              });
    for (size_t run = slab_start; run < slab_end;
         run += static_cast<size_t>(fanout)) {
      const size_t run_end = std::min(slab_end, run + fanout);
      Node node;
      node.is_leaf = true;
      node.objects.assign(ids.begin() + run, ids.begin() + run_end);
      for (const ObjectId id : node.objects) {
        const STObject& o = db_.object(id);
        node.mbr.ExpandToInclude(o.loc);
        for (const TokenId t : o.doc) node.signature.Add(t);
      }
      nodes_.push_back(std::move(node));
      level.push_back(static_cast<int32_t>(nodes_.size() - 1));
    }
  }
  // Upper levels: plain runs over the (already spatially coherent) level.
  while (level.size() > 1) {
    std::vector<int32_t> next_level;
    for (size_t run = 0; run < level.size();
         run += static_cast<size_t>(fanout)) {
      const size_t run_end =
          std::min(level.size(), run + static_cast<size_t>(fanout));
      Node node;
      node.is_leaf = false;
      node.children.assign(level.begin() + run, level.begin() + run_end);
      for (const int32_t child : node.children) {
        node.mbr.ExpandToInclude(nodes_[child].mbr);
        node.signature.Merge(nodes_[child].signature);
      }
      nodes_.push_back(std::move(node));
      next_level.push_back(static_cast<int32_t>(nodes_.size() - 1));
    }
    level = std::move(next_level);
  }
  root_ = level.front();
}

std::vector<SpatialKeywordIndex::ScoredObject> IRTree::TopKRelevant(
    const Point& loc, const TokenVector& doc, size_t k, double alpha) const {
  STPS_CHECK(alpha >= 0.0 && alpha <= 1.0);
  std::vector<SpatialKeywordIndex::ScoredObject> best;
  if (k == 0 || root_ < 0) return best;
  const auto better = [](const SpatialKeywordIndex::ScoredObject& x,
                         const SpatialKeywordIndex::ScoredObject& y) {
    if (x.score != y.score) return x.score > y.score;
    return x.id < y.id;
  };
  const auto offer = [&](ObjectId id, double score) {
    const SpatialKeywordIndex::ScoredObject candidate{id, score};
    if (best.size() == k && !better(candidate, best.back())) return;
    const auto pos =
        std::upper_bound(best.begin(), best.end(), candidate, better);
    best.insert(pos, candidate);
    if (best.size() > k) best.pop_back();
  };

  // Upper bound of any object's score below `node`.
  const auto node_bound = [&](const Node& node) {
    const double spatial = 1.0 - MinDistance(loc, node.mbr) / diagonal_;
    double textual = 0.0;
    if (!doc.empty()) {
      const size_t overlap = node.signature.PossibleOverlap(doc);
      textual = static_cast<double>(overlap) /
                static_cast<double>(doc.size());
    }
    return alpha * spatial + (1.0 - alpha) * textual;
  };

  struct Frame {
    double bound;
    int32_t node;
    bool operator<(const Frame& other) const {
      return bound < other.bound;  // max-heap on the bound
    }
  };
  std::priority_queue<Frame> frontier;
  frontier.push({node_bound(nodes_[root_]), root_});
  while (!frontier.empty()) {
    const Frame frame = frontier.top();
    frontier.pop();
    // Prune when even the most optimistic object below cannot strictly
    // beat the current k-th result (ids below are unknown, so ties must
    // still be explored).
    if (best.size() == k && best.back().score > frame.bound) break;
    const Node& node = nodes_[frame.node];
    if (node.is_leaf) {
      for (const ObjectId id : node.objects) {
        const STObject& o = db_.object(id);
        const double spatial = 1.0 - Distance(o.loc, loc) / diagonal_;
        const double score =
            alpha * spatial + (1.0 - alpha) * Jaccard(doc, o.doc);
        offer(id, score);
      }
      continue;
    }
    for (const int32_t child : node.children) {
      const double bound = node_bound(nodes_[child]);
      if (best.size() == k && best.back().score > bound) continue;
      frontier.push({bound, child});
    }
  }
  return best;
}

std::vector<ObjectId> IRTree::BooleanRange(const Point& center,
                                           double radius,
                                           const TokenVector& required) const {
  std::vector<ObjectId> result;
  if (root_ < 0) return result;
  // Filter box: rounds outward (common/predicates.h) so it provably covers
  // the radius disc; WithinDistance below is the exact predicate.
  const Rect box{SubRoundDown(center.x, radius),
                 SubRoundDown(center.y, radius),
                 AddRoundUp(center.x, radius), AddRoundUp(center.y, radius)};
  std::vector<int32_t> stack = {root_};
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    if (!node.mbr.Intersects(box)) continue;
    // Textual pruning: a subtree missing any required token is useless.
    bool possible = true;
    for (const TokenId t : required) {
      if (!node.signature.MightContain(t)) {
        possible = false;
        break;
      }
    }
    if (!possible) continue;
    if (node.is_leaf) {
      for (const ObjectId id : node.objects) {
        const STObject& o = db_.object(id);
        if (!WithinDistance(o.loc, center, radius)) continue;
        if (OverlapSize(o.doc, required) == required.size()) {
          result.push_back(id);
        }
      }
    } else {
      for (const int32_t child : node.children) stack.push_back(child);
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

int IRTree::Height() const {
  if (root_ < 0) return 0;
  int height = 1;
  int32_t node = root_;
  while (!nodes_[node].is_leaf) {
    node = nodes_[node].children.front();
    ++height;
  }
  return height;
}

}  // namespace stps
