// Classic spatial-keyword queries over a spatio-textual object database —
// the query types (Section 2.1) that motivated spatio-textual indexing
// and against which the paper positions STPSJoin: boolean range queries
// ("objects near X containing these keywords") and top-k relevance
// queries ("the k best objects by combined spatial-textual score").

#ifndef STPS_QUERY_SPATIAL_KEYWORD_H_
#define STPS_QUERY_SPATIAL_KEYWORD_H_

#include <vector>

#include "core/database.h"
#include "spatial/rtree.h"

namespace stps {

/// Read-only search index over a database: an R-tree over the object
/// locations plus the database's token dictionary for keyword lookup.
class SpatialKeywordIndex {
 public:
  /// Builds the index. `db` must outlive the index.
  explicit SpatialKeywordIndex(const ObjectDatabase& db, int fanout = 64);

  STPS_DISALLOW_COPY_AND_ASSIGN(SpatialKeywordIndex);

  /// Boolean range query: ids of all objects within `radius` of `center`
  /// whose keyword set contains *all* of `required` (canonical token
  /// set). Result sorted ascending.
  std::vector<ObjectId> BooleanRange(const Point& center, double radius,
                                     const TokenVector& required) const;

  /// An object with its combined relevance score.
  struct ScoredObject {
    ObjectId id = 0;
    double score = 0.0;
  };

  /// Top-k relevance query: the k objects maximising
  ///   alpha * (1 - dist(loc, o)/diagonal) + (1 - alpha) * Jaccard(doc, o)
  /// (the standard linear spatial-textual combination; `diagonal` is the
  /// database bounding-box diagonal). Ties broken by ascending object id.
  /// Precondition: 0 <= alpha <= 1.
  std::vector<ScoredObject> TopKRelevant(const Point& loc,
                                         const TokenVector& doc, size_t k,
                                         double alpha) const;

  /// The normalisation diagonal used by TopKRelevant.
  double diagonal() const { return diagonal_; }

 private:
  const ObjectDatabase& db_;
  RTree tree_;
  double diagonal_;
};

}  // namespace stps

#endif  // STPS_QUERY_SPATIAL_KEYWORD_H_
