// IR-tree: an R-tree whose every node carries a textual summary of the
// keywords stored beneath it (Cong, Jensen, Wu, PVLDB 2009; Li et al.,
// TKDE 2011 — cited in the paper's related work). The summary here is a
// Bloom-style token signature: compact, and sufficient for an upper
// bound on the Jaccard similarity achievable in a subtree, which combines
// with the spatial MinDistance bound into a best-first top-k search.

#ifndef STPS_QUERY_IR_TREE_H_
#define STPS_QUERY_IR_TREE_H_

#include <array>
#include <cstdint>
#include <vector>

#include "core/database.h"
#include "query/spatial_keyword.h"

namespace stps {

/// A fixed-size Bloom signature over token ids.
class BloomTokenSignature {
 public:
  /// Adds a token to the signature.
  void Add(TokenId token);

  /// Folds another signature in (parent = union of children).
  void Merge(const BloomTokenSignature& other);

  /// False only when the token is definitely absent below this node.
  bool MightContain(TokenId token) const;

  /// Upper bound on |query ∩ subtree-document| for a canonical query
  /// token set: the number of query tokens that might be present.
  size_t PossibleOverlap(const TokenVector& query) const;

 private:
  static constexpr size_t kWords = 8;  // 512 bits
  std::array<uint64_t, kWords> bits_ = {};
};

/// Read-only IR-tree over a database (STR-packed).
class IRTree {
 public:
  /// Builds the tree. `db` must outlive the tree.
  explicit IRTree(const ObjectDatabase& db, int fanout = 64);

  STPS_DISALLOW_COPY_AND_ASSIGN(IRTree);

  /// Same query and scoring contract as
  /// SpatialKeywordIndex::TopKRelevant — score =
  /// alpha * (1 - dist/diagonal) + (1 - alpha) * Jaccard, ties by id —
  /// but evaluated with per-node spatial *and* textual upper bounds.
  std::vector<SpatialKeywordIndex::ScoredObject> TopKRelevant(
      const Point& loc, const TokenVector& doc, size_t k,
      double alpha) const;

  /// Boolean range query with signature pruning: subtrees whose
  /// signature rules out any required token are skipped entirely.
  std::vector<ObjectId> BooleanRange(const Point& center, double radius,
                                     const TokenVector& required) const;

  /// The normalisation diagonal used by TopKRelevant.
  double diagonal() const { return diagonal_; }

  /// Tree height (1 = the root is a leaf); 0 when empty.
  int Height() const;

 private:
  struct Node {
    Rect mbr = Rect::Empty();
    bool is_leaf = true;
    BloomTokenSignature signature;
    std::vector<int32_t> children;  // internal
    std::vector<ObjectId> objects;  // leaves
  };

  void Build(int fanout);

  const ObjectDatabase& db_;
  double diagonal_ = 1.0;
  int32_t root_ = -1;
  std::vector<Node> nodes_;
};

}  // namespace stps

#endif  // STPS_QUERY_IR_TREE_H_
