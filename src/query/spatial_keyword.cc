#include "query/spatial_keyword.h"

#include <algorithm>
#include <cmath>

#include "text/token_set.h"

namespace stps {

namespace {

// True when `superset` (canonical) contains every token of `subset`.
bool ContainsAll(std::span<const TokenId> superset,
                 std::span<const TokenId> subset) {
  return OverlapSize(superset, subset) == subset.size();
}

}  // namespace

SpatialKeywordIndex::SpatialKeywordIndex(const ObjectDatabase& db,
                                         int fanout)
    : db_(db), tree_(fanout) {
  std::vector<RTree::Entry> entries;
  entries.reserve(db.num_objects());
  for (const STObject& o : db.AllObjects()) {
    entries.push_back(RTree::Entry{o.loc, o.id});
  }
  tree_ = RTree::BulkLoad(std::move(entries), fanout);
  const Rect& bounds = db.bounds();
  diagonal_ = bounds.IsEmpty()
                  ? 1.0
                  : std::max(1e-12, Distance({bounds.min_x, bounds.min_y},
                                             {bounds.max_x, bounds.max_y}));
}

std::vector<ObjectId> SpatialKeywordIndex::BooleanRange(
    const Point& center, double radius, const TokenVector& required) const {
  std::vector<uint32_t> in_range;
  tree_.RadiusQuery(center, radius, &in_range);
  std::vector<ObjectId> result;
  result.reserve(in_range.size());
  for (const uint32_t id : in_range) {
    if (ContainsAll(db_.object(id).doc, required)) {
      result.push_back(id);
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<SpatialKeywordIndex::ScoredObject>
SpatialKeywordIndex::TopKRelevant(const Point& loc, const TokenVector& doc,
                                  size_t k, double alpha) const {
  STPS_CHECK(alpha >= 0.0 && alpha <= 1.0);
  std::vector<ScoredObject> best;  // kept sorted best-first
  const auto better = [](const ScoredObject& x, const ScoredObject& y) {
    if (x.score != y.score) return x.score > y.score;
    return x.id < y.id;
  };
  const auto offer = [&](ObjectId id, double score) {
    const ScoredObject candidate{id, score};
    if (best.size() == k && !better(candidate, best.back())) return;
    const auto pos =
        std::upper_bound(best.begin(), best.end(), candidate, better);
    best.insert(pos, candidate);
    if (best.size() > k) best.pop_back();
  };
  const auto score_of = [&](const STObject& o) {
    const double spatial = 1.0 - Distance(o.loc, loc) / diagonal_;
    return alpha * spatial + (1.0 - alpha) * Jaccard(doc, o.doc);
  };

  if (k == 0 || db_.num_objects() == 0) return best;
  if (alpha <= 0.0) {
    // Pure textual relevance: no spatial bound can terminate early.
    for (const STObject& o : db_.AllObjects()) offer(o.id, score_of(o));
    return best;
  }

  // Expanding-ring search: objects farther than radius r score at most
  // alpha * (1 - r/diagonal) + (1 - alpha); stop growing once the k-th
  // score strictly beats that bound (strict, so equal-score ties with
  // lower ids outside the ring are never lost), or once the ring covers
  // every stored point.
  const Rect& bounds = db_.bounds();
  const double max_reach =
      std::sqrt(std::pow(std::max(std::fabs(loc.x - bounds.min_x),
                                  std::fabs(loc.x - bounds.max_x)),
                         2) +
                std::pow(std::max(std::fabs(loc.y - bounds.min_y),
                                  std::fabs(loc.y - bounds.max_y)),
                         2));
  double radius = diagonal_ / 64.0;
  std::vector<uint8_t> seen(db_.num_objects(), 0);
  for (;;) {
    std::vector<uint32_t> in_range;
    tree_.RadiusQuery(loc, radius, &in_range);
    for (const uint32_t id : in_range) {
      if (seen[id]) continue;  // rings overlap; score each object once
      seen[id] = 1;
      offer(id, score_of(db_.object(id)));
    }
    const double outside_bound =
        alpha * (1.0 - radius / diagonal_) + (1.0 - alpha);
    if (best.size() == k && best.back().score > outside_bound) break;
    if (radius >= max_reach) break;  // the ring covers everything
    radius *= 2.0;
  }
  return best;
}

}  // namespace stps
