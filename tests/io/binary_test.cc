#include "io/binary.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/generator.h"
#include "datagen/presets.h"
#include "io/format_v3.h"
#include "planner/planner_stats.h"
#include "test_util.h"

namespace stps {
namespace {

using testing_util::BuildRandomDatabase;
using testing_util::RandomDbSpec;

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

void ExpectSameDatabases(const ObjectDatabase& a, const ObjectDatabase& b) {
  ASSERT_EQ(a.num_users(), b.num_users());
  ASSERT_EQ(a.num_objects(), b.num_objects());
  for (UserId u = 0; u < a.num_users(); ++u) {
    EXPECT_EQ(a.UserName(u), b.UserName(u));
    const auto oa = a.UserObjects(u);
    const auto ob = b.UserObjects(u);
    ASSERT_EQ(oa.size(), ob.size());
    for (size_t i = 0; i < oa.size(); ++i) {
      EXPECT_EQ(oa[i].loc, ob[i].loc);
      EXPECT_DOUBLE_EQ(oa[i].time, ob[i].time);
      std::vector<std::string> sa, sb;
      for (const TokenId t : oa[i].doc) {
        sa.emplace_back(a.dictionary().TokenString(t));
      }
      for (const TokenId t : ob[i].doc) {
        sb.emplace_back(b.dictionary().TokenString(t));
      }
      std::sort(sa.begin(), sa.end());
      std::sort(sb.begin(), sb.end());
      EXPECT_EQ(sa, sb);
    }
  }
}

TEST(BinaryIoTest, RoundTripRandomDatabase) {
  const ObjectDatabase original = BuildRandomDatabase(RandomDbSpec{});
  const std::string path = TempPath("roundtrip.stpsdb");
  ASSERT_TRUE(WriteBinary(original, path).ok());
  Result<ObjectDatabase> loaded = ReadBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameDatabases(original, loaded.value());
  std::remove(path.c_str());
}

TEST(BinaryIoTest, RoundTripGeneratedDatasetWithTimestamps) {
  const ObjectDatabase original =
      GenerateDataset(PresetSpec(DatasetKind::kGeoTextLike, 40, 3));
  const std::string path = TempPath("geotext.stpsdb");
  ASSERT_TRUE(WriteBinary(original, path).ok());
  Result<ObjectDatabase> loaded = ReadBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameDatabases(original, loaded.value());
  std::remove(path.c_str());
}

TEST(BinaryIoTest, RoundTripEmptyDatabase) {
  DatabaseBuilder builder;
  const ObjectDatabase original = std::move(builder).Build();
  const std::string path = TempPath("empty.stpsdb");
  ASSERT_TRUE(WriteBinary(original, path).ok());
  Result<ObjectDatabase> loaded = ReadBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_objects(), 0u);
  std::remove(path.c_str());
}

TEST(BinaryIoTest, RoundTripPreservesPlannerStats) {
  RandomDbSpec spec;
  spec.seed = 77;
  const ObjectDatabase original = BuildRandomDatabase(spec);
  ASSERT_TRUE(original.has_planner_stats());
  const std::string path = TempPath("stats.stpsdb");
  ASSERT_TRUE(WriteBinary(original, path).ok());
  Result<ObjectDatabase> loaded = ReadBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // The snapshot carries the stats block and the reader cross-checks it
  // against the rebuilt database, so a successful load means the cached
  // summary is byte-equal to a fresh computation.
  ASSERT_TRUE(loaded.value().has_planner_stats());
  EXPECT_TRUE(loaded.value().planner_stats() == original.planner_stats());
  EXPECT_TRUE(loaded.value().planner_stats() ==
              ComputePlannerStats(loaded.value()));
  std::remove(path.c_str());
}

TEST(BinaryIoTest, EmptyDatabaseStatsRoundTrip) {
  DatabaseBuilder builder;
  const ObjectDatabase original = std::move(builder).Build();
  const std::string path = TempPath("emptystats.stpsdb");
  ASSERT_TRUE(WriteBinary(original, path).ok());
  Result<ObjectDatabase> loaded = ReadBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  if (original.has_planner_stats()) {
    ASSERT_TRUE(loaded.value().has_planner_stats());
    EXPECT_TRUE(loaded.value().planner_stats() == original.planner_stats());
  }
  std::remove(path.c_str());
}

TEST(BinaryIoTest, MissingFileFails) {
  const Result<ObjectDatabase> r = ReadBinary("/nonexistent/x.stpsdb");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(BinaryIoTest, RejectsWrongMagic) {
  const std::string path = TempPath("notadb.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "definitely not a snapshot";
  }
  const Result<ObjectDatabase> r = ReadBinary(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(BinaryIoTest, DetectsTruncation) {
  const ObjectDatabase db = BuildRandomDatabase(RandomDbSpec{});
  const std::string path = TempPath("trunc.stpsdb");
  ASSERT_TRUE(WriteBinary(db, path).ok());
  // Chop the file at several points; every prefix must be rejected.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  for (const double fraction : {0.05, 0.3, 0.7, 0.99}) {
    const std::string cut = TempPath("cut.stpsdb");
    {
      std::ofstream out(cut, std::ios::binary);
      out.write(bytes.data(),
                static_cast<std::streamsize>(bytes.size() * fraction));
    }
    const Result<ObjectDatabase> r = ReadBinary(cut);
    EXPECT_FALSE(r.ok()) << "fraction " << fraction;
    EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
    std::remove(cut.c_str());
  }
  std::remove(path.c_str());
}

TEST(BinaryIoTest, DetectsBitFlips) {
  const ObjectDatabase db = BuildRandomDatabase(RandomDbSpec{});
  const std::string path = TempPath("flip.stpsdb");
  ASSERT_TRUE(WriteBinary(db, path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  // Flip one byte deep in the payload (past header and dictionary).
  const size_t position = bytes.size() * 3 / 4;
  bytes[position] = static_cast<char>(bytes[position] ^ 0x5A);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  const Result<ObjectDatabase> r = ReadBinary(path);
  EXPECT_FALSE(r.ok());
  std::remove(path.c_str());
}

TEST(BinaryIoTest, RoundTripV2StreamFormat) {
  const ObjectDatabase original = BuildRandomDatabase(RandomDbSpec{});
  const std::string path = TempPath("roundtrip_v2.stpsdb");
  ASSERT_TRUE(WriteBinary(original, path, SnapshotFormat::kV2Stream).ok());
  Result<ObjectDatabase> loaded = ReadBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameDatabases(original, loaded.value());
  std::remove(path.c_str());
}

TEST(BinaryIoTest, RoundTripMapped) {
  const ObjectDatabase original = BuildRandomDatabase(RandomDbSpec{});
  const std::string path = TempPath("roundtrip_mapped.stpsdb");
  ASSERT_TRUE(WriteBinary(original, path).ok());
  Result<ObjectDatabase> loaded = ReadBinaryMapped(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameDatabases(original, loaded.value());
  std::remove(path.c_str());
}

TEST(BinaryIoTest, MappedOpenRejectsV2Stream) {
  // The mmap fast path is v3-only; a v2 stream must fail cleanly, not be
  // misparsed as an arena.
  const ObjectDatabase db = BuildRandomDatabase(RandomDbSpec{});
  const std::string path = TempPath("v2_for_mmap.stpsdb");
  ASSERT_TRUE(WriteBinary(db, path, SnapshotFormat::kV2Stream).ok());
  const Result<ObjectDatabase> r = ReadBinaryMapped(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

// Regression: a 32-byte file whose header claims 2^39 tokens used to be
// bounded only by a 2^40 sanity limit — the reader pre-allocated half a
// terabyte of string headers before discovering the file was empty. The
// counts must be bounded by what the file could possibly hold.
TEST(BinaryIoTest, ImplausibleHeaderCountsRejectedBeforeAllocation) {
  const std::string path = TempPath("huge_counts.stpsdb");
  {
    std::ofstream out(path, std::ios::binary);
    out.write("STPSDB02", 8);
    const uint64_t users = 0, objects = 0, tokens = 1ULL << 39;
    out.write(reinterpret_cast<const char*>(&users), 8);
    out.write(reinterpret_cast<const char*>(&objects), 8);
    out.write(reinterpret_cast<const char*>(&tokens), 8);
  }
  const Result<ObjectDatabase> r = ReadBinary(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  EXPECT_NE(r.status().ToString().find("implausible"), std::string::npos)
      << r.status().ToString();
  std::remove(path.c_str());
}

// Regression: the reader verified the trailing checksum but accepted any
// bytes appended after it — a concatenation of two snapshots read as the
// first. Trailing data is corruption.
TEST(BinaryIoTest, RejectsTrailingBytesAfterChecksum) {
  const ObjectDatabase db = BuildRandomDatabase(RandomDbSpec{});
  for (const SnapshotFormat format :
       {SnapshotFormat::kV2Stream, SnapshotFormat::kV3Arena}) {
    const std::string path = TempPath("trailing.stpsdb");
    ASSERT_TRUE(WriteBinary(db, path, format).ok());
    {
      std::ofstream out(path, std::ios::binary | std::ios::app);
      out << "extra";
    }
    const Result<ObjectDatabase> r = ReadBinary(path);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
    std::remove(path.c_str());
  }
}

// The guard behind the silent-truncation bugfix: on-disk counts are
// 32-bit, and the writers refuse (Status::InvalidArgument) anything that
// FitsU32 rejects instead of static_cast'ing it to garbage. Building a
// >4G-object user in a test is impractical, so the boundary is pinned
// here and the writer paths assert on it.
TEST(BinaryIoTest, FitsU32Boundary) {
  EXPECT_TRUE(FitsU32(0));
  EXPECT_TRUE(FitsU32(0xFFFFFFFFull));
  EXPECT_FALSE(FitsU32(0x100000000ull));
  EXPECT_FALSE(FitsU32(~0ull));
}

TEST(BinaryIoTest, WriteToUnwritablePathFails) {
  const ObjectDatabase db = BuildRandomDatabase(RandomDbSpec{});
  // Nonexistent directory: the open itself fails.
  const Status missing = WriteBinary(
      db, std::string(::testing::TempDir()) + "/no_such_dir/out.stpsdb");
  EXPECT_FALSE(missing.ok());
  // /dev/full (when present) accepts the open but fails every flush with
  // ENOSPC — the disk-full case. Before the close-time stream check the
  // writer reported OkStatus here and the caller shipped a torn file.
  if (std::ifstream("/dev/full").good()) {
    const Status full = WriteBinary(db, "/dev/full");
    EXPECT_FALSE(full.ok());
  }
}

}  // namespace
}  // namespace stps
