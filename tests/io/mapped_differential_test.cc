// Differential check of the three ways a database can exist in memory:
// the originally built one, a heap load of its v3 snapshot (ReadBinary,
// fully verified), and an mmap'd borrowed-arena view (ReadBinaryMapped).
// Every join and top-k configuration must produce bit-identical results
// — same pairs, same scores to the bit, same JoinStats counters — on all
// three. This is the contract that makes the mmap path a drop-in: no
// caller can tell whether the columns are owned or borrowed.

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/stpsjoin.h"
#include "io/binary.h"
#include "planner/planner_stats.h"
#include "test_util.h"

namespace stps {
namespace {

using testing_util::BuildRandomDatabase;
using testing_util::RandomDbSpec;

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

void ExpectBitIdentical(const std::vector<ScoredUserPair>& x,
                        const std::vector<ScoredUserPair>& y,
                        const char* what) {
  ASSERT_EQ(x.size(), y.size()) << what;
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(x[i].a, y[i].a) << what << " row " << i;
    EXPECT_EQ(x[i].b, y[i].b) << what << " row " << i;
    // Bitwise, not approximate: the variants must run the identical
    // arithmetic on identical data.
    EXPECT_EQ(x[i].score, y[i].score) << what << " row " << i;
  }
}

class MappedDifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RandomDbSpec spec;
    spec.num_users = 24;
    spec.seed = 4242;
    original_ = BuildRandomDatabase(spec);
    path_ = TempPath("differential.stpsdb");
    ASSERT_TRUE(WriteBinary(original_, path_).ok());
    Result<ObjectDatabase> heap = ReadBinary(path_);
    ASSERT_TRUE(heap.ok()) << heap.status().ToString();
    heap_ = std::move(heap).value();
    Result<ObjectDatabase> mapped = ReadBinaryMapped(path_);
    ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
    mapped_ = std::move(mapped).value();
  }

  void TearDown() override { std::remove(path_.c_str()); }

  ObjectDatabase original_, heap_, mapped_;
  std::string path_;
};

TEST_F(MappedDifferentialTest, JoinsIdenticalAcrossVariants) {
  STPSQuery query;
  query.eps_loc = 0.1;
  query.eps_doc = 0.3;
  query.eps_u = 0.2;
  for (const JoinAlgorithm algorithm :
       {JoinAlgorithm::kSPPJC, JoinAlgorithm::kSPPJB, JoinAlgorithm::kSPPJF,
        JoinAlgorithm::kSPPJD, JoinAlgorithm::kBruteForce}) {
    for (const int threads : {1, 2}) {
      for (const bool sketch : {false, true}) {
        STPSQuery q = query;
        q.sketch.enabled = sketch;
        q.parallel.num_threads = threads;
        JoinOptions options;
        options.algorithm = algorithm;
        JoinStats so, sh, sm;
        const auto ro = RunSTPSJoin(original_, q, options, &so);
        const auto rh = RunSTPSJoin(heap_, q, options, &sh);
        const auto rm = RunSTPSJoin(mapped_, q, options, &sm);
        const std::string what =
            std::string(JoinAlgorithmName(algorithm)) + " threads=" +
            std::to_string(threads) + " sketch=" + (sketch ? "1" : "0");
        ExpectBitIdentical(ro, rh, (what + " heap").c_str());
        ExpectBitIdentical(ro, rm, (what + " mapped").c_str());
        EXPECT_TRUE(so == sh) << what << ": heap stats diverge\n"
                              << FormatJoinStats(so) << "\n"
                              << FormatJoinStats(sh);
        EXPECT_TRUE(so == sm) << what << ": mapped stats diverge\n"
                              << FormatJoinStats(so) << "\n"
                              << FormatJoinStats(sm);
      }
    }
  }
}

TEST_F(MappedDifferentialTest, TopKIdenticalAcrossVariants) {
  TopKQuery query;
  query.eps_loc = 0.1;
  query.eps_doc = 0.3;
  query.k = 10;
  for (const TopKAlgorithm algorithm :
       {TopKAlgorithm::kF, TopKAlgorithm::kS, TopKAlgorithm::kP,
        TopKAlgorithm::kBruteForce}) {
    for (const bool sketch : {false, true}) {
      TopKQuery q = query;
      q.sketch.enabled = sketch;
      JoinStats so, sh, sm;
      const auto ro = RunTopKSTPSJoin(original_, q, algorithm, &so);
      const auto rh = RunTopKSTPSJoin(heap_, q, algorithm, &sh);
      const auto rm = RunTopKSTPSJoin(mapped_, q, algorithm, &sm);
      const std::string what = std::string(TopKAlgorithmName(algorithm)) +
                               " sketch=" + (sketch ? "1" : "0");
      ExpectBitIdentical(ro, rh, (what + " heap").c_str());
      ExpectBitIdentical(ro, rm, (what + " mapped").c_str());
      EXPECT_TRUE(so == sh) << what << ": heap stats diverge";
      EXPECT_TRUE(so == sm) << what << ": mapped stats diverge";
    }
  }
}

TEST_F(MappedDifferentialTest, MappedAndHeapLookupsAgree) {
  ASSERT_EQ(heap_.num_users(), mapped_.num_users());
  ASSERT_EQ(heap_.num_objects(), mapped_.num_objects());
  for (UserId u = 0; u < heap_.num_users(); ++u) {
    EXPECT_EQ(heap_.UserName(u), mapped_.UserName(u));
    UserId found = 0;
    ASSERT_TRUE(mapped_.FindUser(heap_.UserName(u), &found));
    EXPECT_EQ(found, u);
    const auto oh = heap_.UserObjects(u);
    const auto om = mapped_.UserObjects(u);
    ASSERT_EQ(oh.size(), om.size());
    for (size_t i = 0; i < oh.size(); ++i) {
      EXPECT_EQ(oh[i].loc, om[i].loc);
      EXPECT_EQ(oh[i].sig, om[i].sig);
      ASSERT_EQ(oh[i].doc.size(), om[i].doc.size());
      for (size_t k = 0; k < oh[i].doc.size(); ++k) {
        EXPECT_EQ(oh[i].doc[k], om[i].doc[k]);
      }
    }
  }
  EXPECT_TRUE(heap_.planner_stats() == mapped_.planner_stats());
}

}  // namespace
}  // namespace stps
