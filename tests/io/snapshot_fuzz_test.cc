// Snapshot corruption fuzz: every single-bit flip and every truncation of
// a valid snapshot (stride-sampled across the whole file) must come back
// as a Status error from the verifying readers — never a crash, never a
// silently wrong database. Covers both on-disk formats (v2 stream and v3
// arena) and the mmap open path.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "io/binary.h"
#include "test_util.h"

namespace stps {
namespace {

using testing_util::BuildRandomDatabase;
using testing_util::RandomDbSpec;

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Writes a snapshot of a small random database and returns its bytes.
std::string SnapshotBytes(SnapshotFormat format, const char* name) {
  RandomDbSpec spec;
  spec.num_users = 12;
  spec.seed = 99;
  const ObjectDatabase db = BuildRandomDatabase(spec);
  const std::string path = TempPath(name);
  EXPECT_TRUE(WriteBinary(db, path, format).ok());
  std::string bytes = ReadFile(path);
  EXPECT_GT(bytes.size(), 0u);
  std::remove(path.c_str());
  return bytes;
}

// Every verifying read of `mutated` must fail with a Status error. For
// v3 bytes also drives the mmap path: LoadVerified must fail too, and
// the trusting Load must not crash (it may succeed with bogus payload —
// that is its contract — but structural validation must hold).
void ExpectRejected(const std::string& mutated, const char* what,
                    size_t position) {
  const std::string path = TempPath("mutated.stpsdb");
  WriteFile(path, mutated);
  const Result<ObjectDatabase> heap = ReadBinary(path);
  EXPECT_FALSE(heap.ok()) << what << " at byte " << position
                          << " was accepted by ReadBinary";
  Result<MappedSnapshot> mapped = MappedSnapshot::Open(path);
  if (mapped.ok()) {
    const Result<ObjectDatabase> verified = mapped.value().LoadVerified();
    EXPECT_FALSE(verified.ok())
        << what << " at byte " << position
        << " was accepted by MappedSnapshot::LoadVerified";
    // Trusting load: outcome unconstrained, crashing is the only failure.
    const Result<ObjectDatabase> trusted = mapped.value().Load();
    (void)trusted;
  }
  std::remove(path.c_str());
}

void FuzzBitFlips(const std::string& bytes) {
  // ~80 positions spread over the file, one bit each (the bit index
  // rotates so all eight lanes get coverage across positions).
  const size_t stride = std::max<size_t>(1, bytes.size() / 80);
  size_t i = 0;
  for (size_t pos = 0; pos < bytes.size(); pos += stride, ++i) {
    std::string mutated = bytes;
    mutated[pos] = static_cast<char>(mutated[pos] ^ (1u << (i % 8)));
    ExpectRejected(mutated, "bit flip", pos);
  }
  // The trailing checksum bytes exactly.
  for (size_t pos = bytes.size() - 8; pos < bytes.size(); ++pos) {
    std::string mutated = bytes;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x80);
    ExpectRejected(mutated, "checksum bit flip", pos);
  }
}

void FuzzTruncations(const std::string& bytes) {
  const size_t stride = std::max<size_t>(1, bytes.size() / 32);
  for (size_t cut = 0; cut < bytes.size(); cut += stride) {
    ExpectRejected(bytes.substr(0, cut), "truncation", cut);
  }
  ExpectRejected(bytes.substr(0, bytes.size() - 1), "truncation",
                 bytes.size() - 1);
}

void FuzzTrailingGarbage(const std::string& bytes) {
  for (const size_t extra : {size_t{1}, size_t{8}, size_t{4096}}) {
    ExpectRejected(bytes + std::string(extra, '\x7f'), "trailing garbage",
                   bytes.size() + extra);
  }
}

TEST(SnapshotFuzzTest, V3BitFlipsRejected) {
  FuzzBitFlips(SnapshotBytes(SnapshotFormat::kV3Arena, "fuzz3.stpsdb"));
}

TEST(SnapshotFuzzTest, V3TruncationsRejected) {
  FuzzTruncations(SnapshotBytes(SnapshotFormat::kV3Arena, "fuzz3t.stpsdb"));
}

TEST(SnapshotFuzzTest, V3TrailingGarbageRejected) {
  FuzzTrailingGarbage(
      SnapshotBytes(SnapshotFormat::kV3Arena, "fuzz3g.stpsdb"));
}

TEST(SnapshotFuzzTest, V2BitFlipsRejected) {
  FuzzBitFlips(SnapshotBytes(SnapshotFormat::kV2Stream, "fuzz2.stpsdb"));
}

TEST(SnapshotFuzzTest, V2TruncationsRejected) {
  FuzzTruncations(SnapshotBytes(SnapshotFormat::kV2Stream, "fuzz2t.stpsdb"));
}

TEST(SnapshotFuzzTest, V2TrailingGarbageRejected) {
  FuzzTrailingGarbage(
      SnapshotBytes(SnapshotFormat::kV2Stream, "fuzz2g.stpsdb"));
}

}  // namespace
}  // namespace stps
