#include "io/tsv.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"

namespace stps {
namespace {

using testing_util::BuildRandomDatabase;
using testing_util::RandomDbSpec;

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(TsvTest, RoundTripPreservesEverything) {
  const ObjectDatabase original = BuildRandomDatabase(RandomDbSpec{});
  const std::string path = TempPath("roundtrip.tsv");
  ASSERT_TRUE(WriteTsv(original, path).ok());
  Result<ObjectDatabase> loaded = ReadTsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const ObjectDatabase& db = loaded.value();
  ASSERT_EQ(db.num_users(), original.num_users());
  ASSERT_EQ(db.num_objects(), original.num_objects());
  for (UserId u = 0; u < db.num_users(); ++u) {
    EXPECT_EQ(db.UserName(u), original.UserName(u));
    const auto a = original.UserObjects(u);
    const auto b = db.UserObjects(u);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].loc, b[i].loc);
      // Token ids may differ across databases; compare keyword strings.
      ASSERT_EQ(a[i].doc.size(), b[i].doc.size());
      std::vector<std::string> sa, sb;
      for (const TokenId t : a[i].doc) {
        sa.push_back(original.dictionary().TokenString(t));
      }
      for (const TokenId t : b[i].doc) {
        sb.push_back(db.dictionary().TokenString(t));
      }
      std::sort(sa.begin(), sa.end());
      std::sort(sb.begin(), sb.end());
      EXPECT_EQ(sa, sb);
    }
  }
  std::remove(path.c_str());
}

TEST(TsvTest, ReadMissingFileFails) {
  const Result<ObjectDatabase> r = ReadTsv("/nonexistent/dir/file.tsv");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(TsvTest, WriteToUnwritablePathFails) {
  const ObjectDatabase db = BuildRandomDatabase(RandomDbSpec{});
  EXPECT_FALSE(WriteTsv(db, "/nonexistent/dir/file.tsv").ok());
}

TEST(TsvTest, RejectsMalformedLines) {
  const std::string path = TempPath("malformed.tsv");
  {
    std::ofstream out(path);
    out << "useronly\n";
  }
  const Result<ObjectDatabase> r = ReadTsv(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(TsvTest, RejectsBadCoordinates) {
  const std::string path = TempPath("badcoord.tsv");
  {
    std::ofstream out(path);
    out << "user\tnot_a_number\t2.0\ta,b\n";
  }
  const Result<ObjectDatabase> r = ReadTsv(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(TsvTest, SkipsCommentsAndBlankLines) {
  const std::string path = TempPath("comments.tsv");
  {
    std::ofstream out(path);
    out << "# header comment\n";
    out << "\n";
    out << "alice\t1.5\t2.5\tcoffee,park\n";
  }
  const Result<ObjectDatabase> r = ReadTsv(path);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().num_objects(), 1u);
  EXPECT_EQ(r.value().UserName(0), "alice");
  EXPECT_EQ(r.value().object(0).doc.size(), 2u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace stps
