#include "io/tsv.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"

namespace stps {
namespace {

using testing_util::BuildRandomDatabase;
using testing_util::RandomDbSpec;

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(TsvTest, RoundTripPreservesEverything) {
  const ObjectDatabase original = BuildRandomDatabase(RandomDbSpec{});
  const std::string path = TempPath("roundtrip.tsv");
  ASSERT_TRUE(WriteTsv(original, path).ok());
  Result<ObjectDatabase> loaded = ReadTsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const ObjectDatabase& db = loaded.value();
  ASSERT_EQ(db.num_users(), original.num_users());
  ASSERT_EQ(db.num_objects(), original.num_objects());
  for (UserId u = 0; u < db.num_users(); ++u) {
    EXPECT_EQ(db.UserName(u), original.UserName(u));
    const auto a = original.UserObjects(u);
    const auto b = db.UserObjects(u);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].loc, b[i].loc);
      // Token ids may differ across databases; compare keyword strings.
      ASSERT_EQ(a[i].doc.size(), b[i].doc.size());
      std::vector<std::string> sa, sb;
      for (const TokenId t : a[i].doc) {
        sa.emplace_back(original.dictionary().TokenString(t));
      }
      for (const TokenId t : b[i].doc) {
        sb.emplace_back(db.dictionary().TokenString(t));
      }
      std::sort(sa.begin(), sa.end());
      std::sort(sb.begin(), sb.end());
      EXPECT_EQ(sa, sb);
    }
  }
  std::remove(path.c_str());
}

TEST(TsvTest, ReadMissingFileFails) {
  const Result<ObjectDatabase> r = ReadTsv("/nonexistent/dir/file.tsv");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(TsvTest, WriteToUnwritablePathFails) {
  const ObjectDatabase db = BuildRandomDatabase(RandomDbSpec{});
  EXPECT_FALSE(WriteTsv(db, "/nonexistent/dir/file.tsv").ok());
}

TEST(TsvTest, RejectsMalformedLines) {
  const std::string path = TempPath("malformed.tsv");
  {
    std::ofstream out(path);
    out << "useronly\n";
  }
  const Result<ObjectDatabase> r = ReadTsv(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(TsvTest, RejectsBadCoordinates) {
  const std::string path = TempPath("badcoord.tsv");
  {
    std::ofstream out(path);
    out << "user\tnot_a_number\t2.0\ta,b\n";
  }
  const Result<ObjectDatabase> r = ReadTsv(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(TsvTest, SkipsCommentsAndBlankLines) {
  const std::string path = TempPath("comments.tsv");
  {
    std::ofstream out(path);
    out << "# header comment\n";
    out << "\n";
    out << "alice\t1.5\t2.5\tcoffee,park\n";
  }
  const Result<ObjectDatabase> r = ReadTsv(path);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().num_objects(), 1u);
  EXPECT_EQ(r.value().UserName(0), "alice");
  EXPECT_EQ(r.value().object(0).doc.size(), 2u);
  std::remove(path.c_str());
}

TEST(TsvTest, ReadsCrlfLineEndings) {
  // Files written on Windows (or transferred in text mode) end lines with
  // "\r\n"; the reader must strip the '\r' rather than glue it onto the
  // last field of every row.
  const std::string path = TempPath("crlf.tsv");
  {
    std::ofstream out(path, std::ios::binary);
    out << "# comment with CR\r\n";
    out << "\r\n";  // blank CRLF line is still a blank line
    out << "alice\t1.5\t2.5\tcoffee,park\t3.25\r\n";
    out << "bob\t-0.5\t4.0\ttea\r\n";  // no time column
  }
  const Result<ObjectDatabase> r = ReadTsv(path);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const ObjectDatabase& db = r.value();
  ASSERT_EQ(db.num_objects(), 2u);
  EXPECT_EQ(db.UserName(db.object(0).user), "alice");
  EXPECT_DOUBLE_EQ(db.object(0).time, 3.25);
  ASSERT_EQ(db.object(0).doc.size(), 2u);
  EXPECT_EQ(db.UserName(db.object(1).user), "bob");
  // The keyword must be exactly "tea", not "tea\r".
  ASSERT_EQ(db.object(1).doc.size(), 1u);
  EXPECT_EQ(db.dictionary().TokenString(db.object(1).doc[0]), "tea");
  EXPECT_DOUBLE_EQ(db.object(1).time, 0.0);
  std::remove(path.c_str());
}

TEST(TsvTest, CrlfAndLfReadsAgree) {
  // Round-trip regression: the same database serialised with LF and with
  // CRLF endings must load identically.
  const ObjectDatabase original = BuildRandomDatabase(RandomDbSpec{});
  const std::string lf_path = TempPath("agree_lf.tsv");
  ASSERT_TRUE(WriteTsv(original, lf_path).ok());
  // Rewrite with CRLF endings.
  const std::string crlf_path = TempPath("agree_crlf.tsv");
  {
    std::ifstream in(lf_path);
    std::ofstream out(crlf_path, std::ios::binary);
    std::string line;
    while (std::getline(in, line)) out << line << "\r\n";
  }
  Result<ObjectDatabase> from_lf = ReadTsv(lf_path);
  Result<ObjectDatabase> from_crlf = ReadTsv(crlf_path);
  ASSERT_TRUE(from_lf.ok());
  ASSERT_TRUE(from_crlf.ok()) << from_crlf.status().ToString();
  const ObjectDatabase& a = from_lf.value();
  const ObjectDatabase& b = from_crlf.value();
  ASSERT_EQ(a.num_objects(), b.num_objects());
  ASSERT_EQ(a.num_users(), b.num_users());
  for (ObjectId i = 0; i < a.num_objects(); ++i) {
    EXPECT_EQ(a.object(i).loc, b.object(i).loc);
    // Identical file contents build identical dictionaries, so token ids
    // are directly comparable.
    const TokenVector da(a.object(i).doc.begin(), a.object(i).doc.end());
    const TokenVector db(b.object(i).doc.begin(), b.object(i).doc.end());
    EXPECT_EQ(da, db);
    EXPECT_DOUBLE_EQ(a.object(i).time, b.object(i).time);
  }
  std::remove(lf_path.c_str());
  std::remove(crlf_path.c_str());
}

TEST(TsvTest, RejectsTrailingGarbageInNumericFields) {
  // strtod-style parsing accepted "1.5abc" and silently dropped the
  // tail; the strict full-field parse must reject every such row.
  const struct {
    const char* name;
    const char* row;
  } cases[] = {
      {"bad_x.tsv", "u1\t1.5abc\t0.2\tcoffee\n"},
      {"bad_y.tsv", "u1\t0.1\t0.2 0.3\tcoffee\n"},
      {"bad_time.tsv", "u1\t0.1\t0.2\tcoffee\t7.0h\n"},
      {"empty_x.tsv", "u1\t\t0.2\tcoffee\n"},
  };
  for (const auto& c : cases) {
    const std::string path = TempPath(c.name);
    {
      std::ofstream out(path);
      out << c.row;
    }
    const Result<ObjectDatabase> r = ReadTsv(path);
    EXPECT_FALSE(r.ok()) << c.name;
    std::remove(path.c_str());
  }
  // A well-formed row with the same shape still parses.
  const std::string good = TempPath("good_row.tsv");
  {
    std::ofstream out(good);
    out << "u1\t1.5\t0.2\tcoffee\t7.0\n";
  }
  EXPECT_TRUE(ReadTsv(good).ok());
  std::remove(good.c_str());
}

TEST(TsvTest, WriteToFullDeviceFails) {
  // Disk-full path: /dev/full accepts the open but fails every flush
  // with ENOSPC. Before the close-time stream check WriteTsv reported
  // OkStatus here and the caller shipped a torn file.
  if (!std::ifstream("/dev/full").good()) GTEST_SKIP() << "no /dev/full";
  const ObjectDatabase db = BuildRandomDatabase(RandomDbSpec{});
  EXPECT_FALSE(WriteTsv(db, "/dev/full").ok());
}

}  // namespace
}  // namespace stps
