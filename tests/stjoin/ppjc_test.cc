#include "stjoin/ppjc.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "test_util.h"
#include "text/token_set.h"

namespace stps {
namespace {

std::vector<STObject> RandomObjects(Rng& rng, testing_util::DocArena& arena,
                                    size_t count, double extent,
                                    size_t vocabulary) {
  std::vector<STObject> objects(count);
  for (uint32_t i = 0; i < count; ++i) {
    objects[i].id = i;
    objects[i].user = i % 5;
    objects[i].loc = {rng.Uniform(0, extent), rng.Uniform(0, extent)};
    const size_t n = 1 + rng.NextBelow(4);
    TokenVector doc;
    for (size_t k = 0; k < n; ++k) {
      doc.push_back(static_cast<TokenId>(rng.NextBelow(vocabulary)));
    }
    NormalizeTokenSet(&doc);
    objects[i].set_doc(arena.Add(std::move(doc)));
  }
  return objects;
}

std::vector<std::pair<ObjectId, ObjectId>> Brute(
    const std::vector<STObject>& objects, const MatchThresholds& t) {
  std::vector<std::pair<ObjectId, ObjectId>> out;
  for (size_t i = 0; i < objects.size(); ++i) {
    for (size_t j = i + 1; j < objects.size(); ++j) {
      if (ObjectsMatch(objects[i], objects[j], t)) {
        out.emplace_back(objects[i].id, objects[j].id);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

struct PPJCParam {
  double eps_loc;
  double eps_doc;
  double extent;
};

class PPJCSweepTest : public ::testing::TestWithParam<PPJCParam> {};

TEST_P(PPJCSweepTest, MatchesBruteForce) {
  const PPJCParam p = GetParam();
  const MatchThresholds t{p.eps_loc, p.eps_doc};
  Rng rng(404 + static_cast<uint64_t>(p.eps_loc * 1000));
  testing_util::DocArena arena;
  for (int trial = 0; trial < 15; ++trial) {
    const auto objects = RandomObjects(rng, arena, 150, p.extent, 10);
    EXPECT_EQ(PPJCSelfJoin(std::span<const STObject>(objects), t),
              Brute(objects, t));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PPJCSweepTest,
    ::testing::Values(PPJCParam{0.05, 0.3, 1.0},
                      PPJCParam{0.1, 0.5, 1.0},
                      PPJCParam{0.2, 0.3, 1.0},
                      PPJCParam{0.02, 0.8, 0.3},
                      PPJCParam{0.5, 0.4, 1.0},     // cells span the world
                      PPJCParam{0.001, 0.3, 50.0}   // very sparse grid
                      ));

TEST(PPJCTest, TrivialInputs) {
  const MatchThresholds t{0.1, 0.5};
  EXPECT_TRUE(PPJCSelfJoin({}, t).empty());
  testing_util::DocArena arena;
  std::vector<STObject> one(1);
  one[0] = {.id = 0, .user = 0, .loc = {0.5, 0.5}};
  one[0].set_doc(arena.Add({1}));
  EXPECT_TRUE(PPJCSelfJoin(std::span<const STObject>(one), t).empty());
}

TEST(PPJCTest, AllIdenticalObjectsProduceAllPairs) {
  testing_util::DocArena arena;
  const std::span<const TokenId> doc = arena.Add({3, 4, 5});
  std::vector<STObject> objects(10);
  for (uint32_t i = 0; i < objects.size(); ++i) {
    objects[i] = {.id = i, .user = 0, .loc = {0.5, 0.5}};
    objects[i].set_doc(doc);
  }
  const MatchThresholds t{0.01, 0.9};
  const auto result = PPJCSelfJoin(std::span<const STObject>(objects), t);
  EXPECT_EQ(result.size(), 45u);  // C(10,2)
}

}  // namespace
}  // namespace stps
