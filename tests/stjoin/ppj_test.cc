#include "stjoin/ppj.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "test_util.h"
#include "text/token_set.h"

namespace stps {
namespace {

std::vector<STObject> RandomObjects(Rng& rng, testing_util::DocArena& arena,
                                    size_t count, ObjectId base_id,
                                    size_t vocabulary, double extent) {
  std::vector<STObject> objects(count);
  for (uint32_t i = 0; i < count; ++i) {
    STObject& o = objects[i];
    o.id = base_id + i;
    o.user = 0;
    o.loc = {rng.Uniform(0, extent), rng.Uniform(0, extent)};
    const size_t n = 1 + rng.NextBelow(5);
    TokenVector doc;
    for (size_t k = 0; k < n; ++k) {
      doc.push_back(static_cast<TokenId>(rng.NextBelow(vocabulary)));
    }
    NormalizeTokenSet(&doc);
    o.set_doc(arena.Add(std::move(doc)));
  }
  return objects;
}

std::vector<const STObject*> Pointers(const std::vector<STObject>& objects) {
  std::vector<const STObject*> ptrs;
  for (const auto& o : objects) ptrs.push_back(&o);
  return ptrs;
}

struct PPJParam {
  double eps_loc;
  double eps_doc;
  size_t count;  // objects per side; large values exercise the index path
};

class PPJSweepTest : public ::testing::TestWithParam<PPJParam> {};

TEST_P(PPJSweepTest, CrossPairsMatchBruteForce) {
  const PPJParam p = GetParam();
  const MatchThresholds t{p.eps_loc, p.eps_doc};
  Rng rng(101);
  testing_util::DocArena arena;
  for (int trial = 0; trial < 10; ++trial) {
    const auto left = RandomObjects(rng, arena, p.count, 0, 12, 1.0);
    const auto right = RandomObjects(rng, arena, p.count, 1000, 12, 1.0);
    std::vector<std::pair<ObjectId, ObjectId>> expected;
    for (const auto& a : left) {
      for (const auto& b : right) {
        if (ObjectsMatch(a, b, t)) expected.emplace_back(a.id, b.id);
      }
    }
    const auto lp = Pointers(left);
    const auto rp = Pointers(right);
    auto actual = PPJCrossPairs(std::span<const STObject* const>(lp),
                                std::span<const STObject* const>(rp), t);
    std::sort(actual.begin(), actual.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(actual, expected);
  }
}

TEST_P(PPJSweepTest, SelfPairsMatchBruteForce) {
  const PPJParam p = GetParam();
  const MatchThresholds t{p.eps_loc, p.eps_doc};
  Rng rng(202);
  testing_util::DocArena arena;
  for (int trial = 0; trial < 10; ++trial) {
    const auto objects = RandomObjects(rng, arena, p.count, 0, 12, 1.0);
    std::vector<std::pair<ObjectId, ObjectId>> expected;
    for (size_t i = 0; i < objects.size(); ++i) {
      for (size_t j = i + 1; j < objects.size(); ++j) {
        if (ObjectsMatch(objects[i], objects[j], t)) {
          expected.emplace_back(objects[i].id, objects[j].id);
        }
      }
    }
    const auto ptrs = Pointers(objects);
    auto actual =
        PPJSelfPairs(std::span<const STObject* const>(ptrs), t);
    std::sort(actual.begin(), actual.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(actual, expected);
  }
}

TEST_P(PPJSweepTest, MarkSetsExactlyTheMatchedFlags) {
  const PPJParam p = GetParam();
  const MatchThresholds t{p.eps_loc, p.eps_doc};
  Rng rng(303);
  testing_util::DocArena arena;
  for (int trial = 0; trial < 10; ++trial) {
    const auto left = RandomObjects(rng, arena, p.count, 0, 12, 1.0);
    const auto right = RandomObjects(rng, arena, p.count, 1000, 12, 1.0);
    std::vector<ObjectRef> lrefs, rrefs;
    for (uint32_t i = 0; i < left.size(); ++i) lrefs.push_back({&left[i], i});
    for (uint32_t i = 0; i < right.size(); ++i) {
      rrefs.push_back({&right[i], i});
    }
    std::vector<uint8_t> lm(left.size(), 0), rm(right.size(), 0);
    const uint32_t newly =
        PPJCrossMark(std::span<const ObjectRef>(lrefs),
                     std::span<const ObjectRef>(rrefs), t, &lm, &rm);
    // Expected flags by brute force.
    std::vector<uint8_t> elm(left.size(), 0), erm(right.size(), 0);
    for (uint32_t i = 0; i < left.size(); ++i) {
      for (uint32_t j = 0; j < right.size(); ++j) {
        if (ObjectsMatch(left[i], right[j], t)) {
          elm[i] = 1;
          erm[j] = 1;
        }
      }
    }
    EXPECT_EQ(lm, elm);
    EXPECT_EQ(rm, erm);
    const uint32_t expected_count =
        static_cast<uint32_t>(std::count(elm.begin(), elm.end(), 1)) +
        static_cast<uint32_t>(std::count(erm.begin(), erm.end(), 1));
    EXPECT_EQ(newly, expected_count);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PPJSweepTest,
    ::testing::Values(PPJParam{0.1, 0.3, 10},   // nested-loop path
                      PPJParam{0.3, 0.5, 20},
                      PPJParam{0.05, 0.8, 15},
                      PPJParam{1.5, 0.3, 40},   // everything spatially near
                      PPJParam{0.2, 0.4, 60},   // indexed path (60*60>1024)
                      PPJParam{0.1, 0.7, 80}));

TEST(PPJTest, MarkIsIncrementalAcrossCalls) {
  // Flags already set survive and are not double counted.
  const MatchThresholds t{1.0, 0.5};
  testing_util::DocArena arena;
  std::vector<STObject> left(1), right(1);
  left[0] = {.id = 0, .user = 0, .loc = {0, 0}};
  left[0].set_doc(arena.Add({1, 2}));
  right[0] = {.id = 1, .user = 1, .loc = {0.1, 0.1}};
  right[0].set_doc(arena.Add({1, 2}));
  std::vector<ObjectRef> lr = {{&left[0], 0}}, rr = {{&right[0], 0}};
  std::vector<uint8_t> lm(1, 0), rm(1, 0);
  EXPECT_EQ(PPJCrossMark(std::span<const ObjectRef>(lr),
                         std::span<const ObjectRef>(rr), t, &lm, &rm),
            2u);
  EXPECT_EQ(PPJCrossMark(std::span<const ObjectRef>(lr),
                         std::span<const ObjectRef>(rr), t, &lm, &rm),
            0u);
}

TEST(PPJTest, EmptySidesYieldNothing) {
  const MatchThresholds t{1.0, 0.5};
  EXPECT_TRUE(PPJCrossPairs({}, {}, t).empty());
  EXPECT_TRUE(PPJSelfPairs({}, t).empty());
}

}  // namespace
}  // namespace stps
