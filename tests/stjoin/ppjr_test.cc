#include "stjoin/ppjr.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "stjoin/ppjc.h"
#include "test_util.h"
#include "text/token_set.h"

namespace stps {
namespace {

std::vector<STObject> RandomObjects(Rng& rng, testing_util::DocArena& arena,
                                    size_t count, double extent) {
  std::vector<STObject> objects(count);
  for (uint32_t i = 0; i < count; ++i) {
    objects[i].id = i;
    objects[i].loc = {rng.Uniform(0, extent), rng.Uniform(0, extent)};
    const size_t n = 1 + rng.NextBelow(4);
    TokenVector doc;
    for (size_t k = 0; k < n; ++k) {
      doc.push_back(static_cast<TokenId>(rng.NextBelow(10)));
    }
    NormalizeTokenSet(&doc);
    objects[i].set_doc(arena.Add(std::move(doc)));
  }
  return objects;
}

struct PPJRParam {
  double eps_loc;
  double eps_doc;
  int fanout;
};

class PPJRSweepTest : public ::testing::TestWithParam<PPJRParam> {};

TEST_P(PPJRSweepTest, AgreesWithPPJC) {
  const PPJRParam p = GetParam();
  const MatchThresholds t{p.eps_loc, p.eps_doc};
  Rng rng(606);
  testing_util::DocArena arena;
  for (int trial = 0; trial < 10; ++trial) {
    const auto objects = RandomObjects(rng, arena, 200, 1.0);
    const auto grid_result =
        PPJCSelfJoin(std::span<const STObject>(objects), t);
    const auto rtree_result =
        PPJRSelfJoin(std::span<const STObject>(objects), t, p.fanout);
    ASSERT_EQ(rtree_result, grid_result)
        << "fanout=" << p.fanout << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PPJRSweepTest,
    ::testing::Values(PPJRParam{0.05, 0.3, 4}, PPJRParam{0.05, 0.3, 32},
                      PPJRParam{0.1, 0.5, 16}, PPJRParam{0.2, 0.3, 64},
                      PPJRParam{0.02, 0.8, 8}));

TEST(PPJRTest, TrivialInputs) {
  const MatchThresholds t{0.1, 0.5};
  EXPECT_TRUE(PPJRSelfJoin({}, t).empty());
  testing_util::DocArena arena;
  std::vector<STObject> one(1);
  one[0].loc = {0.5, 0.5};
  one[0].set_doc(arena.Add({1}));
  EXPECT_TRUE(PPJRSelfJoin(std::span<const STObject>(one), t).empty());
}

TEST(PPJRTest, ArbitraryObjectIdsSurvive) {
  // PPJ-R maps via positions internally; output ids must be the object
  // ids, not positions.
  testing_util::DocArena arena;
  const std::span<const TokenId> doc = arena.Add({1, 2});
  std::vector<STObject> objects(2);
  objects[0] = {.id = 100, .user = 0, .loc = {0.0, 0.0}};
  objects[0].set_doc(doc);
  objects[1] = {.id = 55, .user = 0, .loc = {0.0, 0.0}};
  objects[1].set_doc(doc);
  const MatchThresholds t{0.1, 0.9};
  const auto result = PPJRSelfJoin(std::span<const STObject>(objects), t, 4);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].first, 55u);
  EXPECT_EQ(result[0].second, 100u);
}

}  // namespace
}  // namespace stps
