#include "datagen/generator.h"

#include <gtest/gtest.h>

#include "datagen/dataset_stats.h"
#include "core/similarity.h"
#include "datagen/presets.h"

namespace stps {
namespace {

TEST(GeneratorTest, ProducesRequestedUserCount) {
  DatasetSpec spec;
  spec.num_users = 50;
  spec.objects_per_user_mean = 10;
  spec.objects_per_user_stddev = 5;
  const ObjectDatabase db = GenerateDataset(spec);
  EXPECT_EQ(db.num_users(), 50u);
  for (UserId u = 0; u < db.num_users(); ++u) {
    EXPECT_GE(db.UserObjectCount(u), spec.min_objects_per_user);
  }
}

TEST(GeneratorTest, DeterministicForEqualSeeds) {
  DatasetSpec spec;
  spec.num_users = 30;
  spec.seed = 77;
  const ObjectDatabase a = GenerateDataset(spec);
  const ObjectDatabase b = GenerateDataset(spec);
  ASSERT_EQ(a.num_objects(), b.num_objects());
  for (ObjectId i = 0; i < a.num_objects(); ++i) {
    EXPECT_EQ(a.object(i).loc, b.object(i).loc);
    EXPECT_EQ(TokenVector(a.object(i).doc.begin(), a.object(i).doc.end()),
              TokenVector(b.object(i).doc.begin(), b.object(i).doc.end()));
    EXPECT_EQ(a.object(i).user, b.object(i).user);
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  DatasetSpec spec;
  spec.num_users = 30;
  spec.seed = 1;
  const ObjectDatabase a = GenerateDataset(spec);
  spec.seed = 2;
  const ObjectDatabase b = GenerateDataset(spec);
  // Same structure, different content.
  EXPECT_EQ(a.num_users(), b.num_users());
  bool any_difference = a.num_objects() != b.num_objects();
  if (!any_difference) {
    for (ObjectId i = 0; i < a.num_objects() && !any_difference; ++i) {
      any_difference = !(a.object(i).loc == b.object(i).loc);
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(GeneratorTest, ObjectsStayInsideExtent) {
  DatasetSpec spec;
  spec.num_users = 40;
  spec.extent = {10, 20, 12, 23};
  const ObjectDatabase db = GenerateDataset(spec);
  for (const STObject& o : db.AllObjects()) {
    EXPECT_TRUE(spec.extent.Contains(o.loc));
  }
}

TEST(GeneratorTest, EveryObjectHasTokens) {
  const DatasetSpec spec = PresetSpec(DatasetKind::kGeoTextLike, 60, 5);
  const ObjectDatabase db = GenerateDataset(spec);
  for (const STObject& o : db.AllObjects()) {
    EXPECT_GE(o.doc.size(), 1u);
  }
}

class PresetCalibrationTest : public ::testing::TestWithParam<DatasetKind> {
};

TEST_P(PresetCalibrationTest, StatsLandNearTable1Targets) {
  const DatasetKind kind = GetParam();
  const DatasetSpec spec = PresetSpec(kind, 300, 11);
  const ObjectDatabase db = GenerateDataset(spec);
  const DatasetStats stats = ComputeDatasetStats(db);
  // Objects-per-user tracks the spec within 40% (heavy-tailed sampling on
  // a small instance; the max-cap also trims the mean).
  EXPECT_NEAR(stats.objects_per_user_mean, spec.objects_per_user_mean,
              spec.objects_per_user_mean * 0.4)
      << DatasetKindName(kind);
  // Tokens-per-object lands within 35% of the target (within-object
  // duplicate collapsing biases it down for token-rich datasets).
  EXPECT_NEAR(stats.tokens_per_object_mean, spec.tokens_per_object_mean,
              spec.tokens_per_object_mean * 0.35)
      << DatasetKindName(kind);
  // Regime ordering sanity rather than absolute calibration.
  EXPECT_GT(stats.num_distinct_tokens, 100u);
}

INSTANTIATE_TEST_SUITE_P(AllPresets, PresetCalibrationTest,
                         ::testing::Values(DatasetKind::kFlickrLike,
                                           DatasetKind::kTwitterLike,
                                           DatasetKind::kGeoTextLike));

TEST(PresetTest, RegimesAreOrderedAsInTable1) {
  const ObjectDatabase flickr =
      GenerateDataset(PresetSpec(DatasetKind::kFlickrLike, 200, 3));
  const ObjectDatabase twitter =
      GenerateDataset(PresetSpec(DatasetKind::kTwitterLike, 200, 3));
  const ObjectDatabase geotext =
      GenerateDataset(PresetSpec(DatasetKind::kGeoTextLike, 200, 3));
  const DatasetStats fs = ComputeDatasetStats(flickr);
  const DatasetStats ts = ComputeDatasetStats(twitter);
  const DatasetStats gs = ComputeDatasetStats(geotext);
  // Tokens per object: Flickr >> Twitter > GeoText.
  EXPECT_GT(fs.tokens_per_object_mean, ts.tokens_per_object_mean);
  EXPECT_GT(ts.tokens_per_object_mean, gs.tokens_per_object_mean);
  // Objects per user: Twitter > Flickr > GeoText.
  EXPECT_GT(ts.objects_per_user_mean, fs.objects_per_user_mean);
  EXPECT_GT(fs.objects_per_user_mean, gs.objects_per_user_mean);
}

TEST(PresetTest, DefaultQueriesMatchPaperDefaults) {
  EXPECT_DOUBLE_EQ(DefaultQuery(DatasetKind::kFlickrLike).eps_doc, 0.6);
  EXPECT_DOUBLE_EQ(DefaultQuery(DatasetKind::kTwitterLike).eps_doc, 0.4);
  EXPECT_DOUBLE_EQ(DefaultQuery(DatasetKind::kGeoTextLike).eps_doc, 0.3);
  for (const DatasetKind kind :
       {DatasetKind::kFlickrLike, DatasetKind::kTwitterLike,
        DatasetKind::kGeoTextLike}) {
    EXPECT_DOUBLE_EQ(DefaultQuery(kind).eps_loc, 0.001);
  }
}


TEST(GeneratorTest, TwinUsersProduceHighSigmaPairs) {
  // The twin mechanism is what gives synthetic corpora result pairs at
  // the paper's strict thresholds; verify twins actually reach them.
  DatasetSpec spec = PresetSpec(DatasetKind::kTwitterLike, 120, 41);
  spec.twin_fraction = 0.5;  // force many twins
  spec.max_objects_per_user = 40;
  const ObjectDatabase db = GenerateDataset(spec);
  const STPSQuery query = DefaultQuery(DatasetKind::kTwitterLike);
  const auto result = BruteForceSTPSJoin(db, query);
  EXPECT_GT(result.size(), 10u);
  for (const ScoredUserPair& pair : result) {
    EXPECT_GE(pair.score, query.eps_u);
  }
}

TEST(GeneratorTest, ZeroTwinFractionYieldsNoCopies) {
  DatasetSpec spec = PresetSpec(DatasetKind::kTwitterLike, 60, 43);
  spec.twin_fraction = 0.0;
  const ObjectDatabase db = GenerateDataset(spec);
  // Without twins the strict default thresholds find (almost) nothing.
  const auto result =
      BruteForceSTPSJoin(db, DefaultQuery(DatasetKind::kTwitterLike));
  EXPECT_LE(result.size(), 1u);
}

}  // namespace
}  // namespace stps
