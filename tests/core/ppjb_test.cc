#include "core/ppjb.h"

#include <gtest/gtest.h>

#include "core/similarity.h"
#include "core/user_grid.h"
#include "test_util.h"

namespace stps {
namespace {

using testing_util::BuildRandomDatabase;
using testing_util::RandomDbSpec;

struct KernelParam {
  double eps_loc;
  double eps_doc;
  uint64_t seed;
};

class PairKernelTest : public ::testing::TestWithParam<KernelParam> {};

TEST_P(PairKernelTest, PPJCPairEqualsExactSigma) {
  const KernelParam p = GetParam();
  RandomDbSpec spec;
  spec.seed = p.seed;
  const ObjectDatabase db = BuildRandomDatabase(spec);
  const UserGrid grid(db, p.eps_loc);
  const MatchThresholds t{p.eps_loc, p.eps_doc};
  for (UserId a = 0; a < db.num_users(); ++a) {
    for (UserId b = a + 1; b < db.num_users(); ++b) {
      const double expected =
          ExactSigma(db.UserObjects(a), db.UserObjects(b), t);
      const double actual =
          PPJCPair(grid.UserCells(a), db.UserObjectCount(a),
                   grid.UserCells(b), db.UserObjectCount(b),
                   grid.geometry(), t);
      ASSERT_DOUBLE_EQ(actual, expected) << "pair " << a << "," << b;
    }
  }
}

TEST_P(PairKernelTest, PPJBPairUnboundedEqualsExactSigma) {
  const KernelParam p = GetParam();
  RandomDbSpec spec;
  spec.seed = p.seed + 100;
  const ObjectDatabase db = BuildRandomDatabase(spec);
  const UserGrid grid(db, p.eps_loc);
  const MatchThresholds t{p.eps_loc, p.eps_doc};
  for (UserId a = 0; a < db.num_users(); ++a) {
    for (UserId b = a + 1; b < db.num_users(); ++b) {
      const double expected =
          ExactSigma(db.UserObjects(a), db.UserObjects(b), t);
      const double actual =
          PPJBPair(grid.UserCells(a), db.UserObjectCount(a),
                   grid.UserCells(b), db.UserObjectCount(b),
                   grid.geometry(), t, /*eps_u=*/0.0);
      ASSERT_DOUBLE_EQ(actual, expected) << "pair " << a << "," << b;
    }
  }
}

TEST_P(PairKernelTest, PPJBPairBoundedIsExactAboveThreshold) {
  const KernelParam p = GetParam();
  RandomDbSpec spec;
  spec.seed = p.seed + 200;
  const ObjectDatabase db = BuildRandomDatabase(spec);
  const UserGrid grid(db, p.eps_loc);
  const MatchThresholds t{p.eps_loc, p.eps_doc};
  for (const double eps_u : {0.1, 0.3, 0.5, 0.8}) {
    for (UserId a = 0; a < db.num_users(); ++a) {
      for (UserId b = a + 1; b < db.num_users(); ++b) {
        const double expected =
            ExactSigma(db.UserObjects(a), db.UserObjects(b), t);
        const double actual =
            PPJBPair(grid.UserCells(a), db.UserObjectCount(a),
                     grid.UserCells(b), db.UserObjectCount(b),
                     grid.geometry(), t, eps_u);
        if (expected >= eps_u) {
          // Early termination must never fire on a qualifying pair.
          ASSERT_DOUBLE_EQ(actual, expected)
              << "pair " << a << "," << b << " eps_u=" << eps_u;
        } else {
          // Below threshold anything < eps_u is acceptable (0 = pruned).
          ASSERT_LT(actual, eps_u)
              << "pair " << a << "," << b << " eps_u=" << eps_u;
        }
      }
    }
  }
}

TEST_P(PairKernelTest, PairSigmaEqualsExactSigma) {
  const KernelParam p = GetParam();
  RandomDbSpec spec;
  spec.seed = p.seed + 300;
  spec.num_users = 12;
  const ObjectDatabase db = BuildRandomDatabase(spec);
  const MatchThresholds t{p.eps_loc, p.eps_doc};
  for (UserId a = 0; a < db.num_users(); ++a) {
    for (UserId b = a + 1; b < db.num_users(); ++b) {
      ASSERT_DOUBLE_EQ(
          PairSigma(db.UserObjects(a), db.UserObjects(b), t),
          ExactSigma(db.UserObjects(a), db.UserObjects(b), t));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PairKernelTest,
    ::testing::Values(KernelParam{0.05, 0.3, 1}, KernelParam{0.1, 0.3, 2},
                      KernelParam{0.15, 0.5, 3}, KernelParam{0.02, 0.2, 4},
                      KernelParam{0.4, 0.4, 5}, KernelParam{0.08, 0.8, 6}));

TEST(UserGridTest, CellListsArePartitionOfUserObjects) {
  const ObjectDatabase db = BuildRandomDatabase(RandomDbSpec{});
  const UserGrid grid(db, 0.07);
  for (UserId u = 0; u < db.num_users(); ++u) {
    size_t total = 0;
    int64_t prev = -1;
    for (const UserPartition& cell : grid.UserCells(u)) {
      EXPECT_GT(cell.id, prev);  // strictly ascending cell ids
      prev = cell.id;
      EXPECT_FALSE(cell.objects.empty());
      for (const ObjectRef& ref : cell.objects) {
        EXPECT_EQ(grid.geometry().CellOf(ref.object->loc), cell.id);
        EXPECT_EQ(ref.object->user, u);
        EXPECT_EQ(db.LocalIndex(*ref.object), ref.local);
      }
      total += cell.objects.size();
    }
    EXPECT_EQ(total, db.UserObjectCount(u));
  }
}

TEST(UserGridHelpersTest, FindAndCount) {
  static const ObjectRef refs[] = {{nullptr, 0}, {nullptr, 1}};
  UserPartitionList list;
  list.push_back({3, {}});
  list.push_back({7, refs});
  EXPECT_EQ(FindPartition(list, 3), &list[0]);
  EXPECT_EQ(FindPartition(list, 7), &list[1]);
  EXPECT_EQ(FindPartition(list, 5), nullptr);
  EXPECT_EQ(PartitionObjectCount(list, 7), 2u);
  EXPECT_EQ(PartitionObjectCount(list, 99), 0u);
}

TEST(UserGridHelpersTest, MergePartitionLists) {
  UserPartitionList a, b;
  a.push_back({1, {}});
  a.push_back({5, {}});
  b.push_back({5, {}});
  b.push_back({9, {}});
  const auto merged = MergePartitionLists(a, b);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].id, 1);
  EXPECT_NE(merged[0].u, nullptr);
  EXPECT_EQ(merged[0].v, nullptr);
  EXPECT_EQ(merged[1].id, 5);
  EXPECT_NE(merged[1].u, nullptr);
  EXPECT_NE(merged[1].v, nullptr);
  EXPECT_EQ(merged[2].id, 9);
  EXPECT_EQ(merged[2].u, nullptr);
  EXPECT_NE(merged[2].v, nullptr);
}

}  // namespace
}  // namespace stps
