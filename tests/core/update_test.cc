// UpdatableDatabase correctness: epoch/snapshot semantics, free-list and
// compaction bookkeeping, and the differential update contract — after
// ANY interleaving of InsertObjects/DeleteUser, the published snapshot
// answers every join / top-k variant bit-identically to a fresh
// DatabaseBuilder::Build over the surviving raw objects.
//
// The concurrent tests double as the TSan reader/writer target (see
// scripts/run_tsan_tests.sh): readers hold snapshots and run joins while
// writers mutate and publish.

#include "core/update.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/stpsjoin.h"
#include "test_util.h"

namespace stps {
namespace {

using testing_util::SameResults;

// Deterministic raw check-in stream with enough user/spatial/token
// collisions that joins at the test thresholds return real results.
RawObject RandomRaw(Rng* rng, size_t user_pool, size_t vocabulary) {
  RawObject object;
  object.user = "user" + std::to_string(rng->NextBelow(user_pool));
  if (rng->Bernoulli(0.7)) {
    // Hotspot: most points cluster so eps_loc = 0.15 connects users.
    const double cx = 0.2 + 0.15 * static_cast<double>(rng->NextBelow(3));
    object.loc = {rng->Gaussian(cx, 0.03), rng->Gaussian(cx, 0.03)};
  } else {
    object.loc = {rng->Uniform(0, 1), rng->Uniform(0, 1)};
  }
  const size_t tokens = 1 + rng->NextBelow(4);
  for (size_t t = 0; t < tokens; ++t) {
    object.keywords.push_back("kw" +
                              std::to_string(rng->NextBelow(vocabulary)));
  }
  object.time = 0.0;
  return object;
}

// The oracle: the surviving raw objects in insertion order, exactly what
// the update contract promises the snapshot is equivalent to.
ObjectDatabase BuildOracle(const std::vector<RawObject>& log,
                           const std::vector<bool>& deleted) {
  DatabaseBuilder builder;
  for (size_t i = 0; i < log.size(); ++i) {
    if (deleted[i]) continue;
    builder.AddObject(log[i].user, log[i].loc,
                      std::span<const std::string>(log[i].keywords),
                      log[i].time);
  }
  return std::move(builder).Build();
}

// Runs one join/top-k configuration on both databases and demands
// bit-identical results (ids and scores).
void ExpectSameJoins(const ObjectDatabase& lhs, const ObjectDatabase& rhs) {
  STPSQuery join;
  join.eps_loc = 0.15;
  join.eps_doc = 0.25;
  join.eps_u = 0.2;

  const std::vector<ScoredUserPair> brute_l = BruteForceSTPSJoin(lhs, join);
  const std::vector<ScoredUserPair> brute_r = BruteForceSTPSJoin(rhs, join);
  EXPECT_TRUE(SameResults(brute_l, brute_r, 0.0));

  for (const JoinAlgorithm algorithm :
       {JoinAlgorithm::kSPPJF, JoinAlgorithm::kSPPJB, JoinAlgorithm::kSPPJC,
        JoinAlgorithm::kSPPJD, JoinAlgorithm::kAuto}) {
    JoinOptions options;
    options.algorithm = algorithm;
    EXPECT_TRUE(SameResults(RunSTPSJoin(lhs, join, options),
                            RunSTPSJoin(rhs, join, options), 0.0))
        << "join algorithm " << static_cast<int>(algorithm);
  }
  {
    STPSQuery parallel = join;
    parallel.parallel.num_threads = 8;
    JoinOptions options;
    options.algorithm = JoinAlgorithm::kSPPJF;
    EXPECT_TRUE(SameResults(RunSTPSJoin(lhs, parallel, options),
                            RunSTPSJoin(rhs, parallel, options), 0.0));
  }
  {
    STPSQuery sketch = join;
    sketch.sketch.enabled = true;
    JoinOptions options;
    options.algorithm = JoinAlgorithm::kSPPJF;
    EXPECT_TRUE(SameResults(RunSTPSJoin(lhs, sketch, options),
                            RunSTPSJoin(rhs, sketch, options), 0.0));
    EXPECT_TRUE(SameResults(RunSTPSJoin(lhs, sketch, options), brute_l, 0.0));
  }

  TopKQuery topk;
  topk.eps_loc = 0.15;
  topk.eps_doc = 0.25;
  topk.k = 5;
  for (const TopKAlgorithm algorithm :
       {TopKAlgorithm::kF, TopKAlgorithm::kP, TopKAlgorithm::kAuto}) {
    EXPECT_TRUE(SameResults(RunTopKSTPSJoin(lhs, topk, algorithm),
                            RunTopKSTPSJoin(rhs, topk, algorithm), 0.0))
        << "topk algorithm " << static_cast<int>(algorithm);
  }
  {
    TopKQuery parallel = topk;
    parallel.parallel.num_threads = 2;
    EXPECT_TRUE(
        SameResults(RunTopKSTPSJoin(lhs, parallel, TopKAlgorithm::kP),
                    RunTopKSTPSJoin(rhs, parallel, TopKAlgorithm::kP), 0.0));
  }

  // The single-user probe must agree with the brute join's rows.
  for (UserId u = 0; u < lhs.num_users(); ++u) {
    std::vector<ScoredUserPair> expected;
    for (const ScoredUserPair& pair : brute_l) {
      if (pair.a == u || pair.b == u) expected.push_back(pair);
    }
    std::sort(expected.begin(), expected.end(), TopKBetter);
    EXPECT_TRUE(SameResults(FindSimilarUsers(lhs, u, join), expected, 0.0));
  }
}

TEST(UpdatableDatabaseTest, StartsAtEmptyEpochZero) {
  UpdatableDatabase db;
  const auto snapshot = db.snapshot();
  EXPECT_EQ(snapshot->epoch, 0u);
  EXPECT_EQ(snapshot->db.num_objects(), 0u);
  EXPECT_EQ(snapshot->db.num_users(), 0u);
  EXPECT_TRUE(snapshot->db.has_planner_stats());
  EXPECT_FALSE(db.dirty());
  // Queries on the empty epoch are well-defined.
  STPSQuery query;
  query.eps_loc = 0.1;
  query.eps_doc = 0.2;
  query.eps_u = 0.2;
  EXPECT_TRUE(RunSTPSJoin(snapshot->db, query).empty());
}

TEST(UpdatableDatabaseTest, InsertPublishDeleteRoundTrip) {
  UpdatableDatabase db;
  RawObject a{"alice", {0.1, 0.1}, {"coffee", "park"}, 0.0};
  RawObject b{"bob", {0.11, 0.1}, {"coffee"}, 0.0};
  db.InsertObject(a);
  db.InsertObject(b);
  EXPECT_TRUE(db.dirty());
  EXPECT_EQ(db.live_objects(), 2u);
  EXPECT_EQ(db.epoch(), 0u);  // nothing published yet

  const auto before = db.snapshot();
  const auto published = db.Publish();
  EXPECT_EQ(published->epoch, 1u);
  EXPECT_EQ(published->db.num_objects(), 2u);
  EXPECT_EQ(published->db.num_users(), 2u);
  EXPECT_FALSE(db.dirty());
  // RCU: the pre-publish snapshot is untouched.
  EXPECT_EQ(before->epoch, 0u);
  EXPECT_EQ(before->db.num_objects(), 0u);

  EXPECT_TRUE(db.DeleteUser("alice"));
  EXPECT_FALSE(db.DeleteUser("alice"));    // already gone
  EXPECT_FALSE(db.DeleteUser("charlie"));  // never existed
  EXPECT_EQ(db.live_objects(), 1u);
  EXPECT_EQ(db.live_users(), 1u);
  // The published snapshot still serves the old view until re-publish.
  EXPECT_EQ(db.snapshot()->db.num_objects(), 2u);
  const auto next = db.Publish();
  EXPECT_EQ(next->epoch, 2u);
  EXPECT_EQ(next->db.num_objects(), 1u);
  EXPECT_EQ(next->db.UserName(0), "bob");

  // Deleting every user publishes back down to an empty database.
  EXPECT_TRUE(db.DeleteUser("bob"));
  EXPECT_EQ(db.Publish()->db.num_objects(), 0u);

  // A deleted user can check in again.
  db.InsertObject(a);
  const auto again = db.Publish();
  EXPECT_EQ(again->db.num_users(), 1u);
  EXPECT_EQ(again->db.UserName(0), "alice");
}

TEST(UpdatableDatabaseTest, PublishIfDirtyAndThreshold) {
  UpdateOptions options;
  options.publish_threshold = 3;
  UpdatableDatabase db(options);
  RawObject a{"alice", {0.1, 0.1}, {"coffee"}, 0.0};
  db.InsertObject(a);
  db.InsertObject(a);
  EXPECT_EQ(db.epoch(), 0u);  // below threshold
  db.InsertObject(a);
  EXPECT_EQ(db.epoch(), 1u);  // third mutation auto-published
  EXPECT_FALSE(db.dirty());
  const PublishResult clean = db.PublishIfDirty();
  EXPECT_EQ(clean.snapshot->epoch, 1u);  // no-op when clean
  EXPECT_FALSE(clean.published);
  db.InsertObject(a);
  const PublishResult published = db.PublishIfDirty();
  EXPECT_EQ(published.snapshot->epoch, 2u);
  EXPECT_TRUE(published.published);
  EXPECT_GE(published.publish_ms, 0.0);
}

TEST(UpdatableDatabaseTest, SeedFromDatabaseIsEquivalent) {
  testing_util::RandomDbSpec spec;
  spec.num_users = 20;
  spec.seed = 7;
  const ObjectDatabase original = testing_util::BuildRandomDatabase(spec);
  UpdatableDatabase db;
  db.SeedFrom(original);
  const auto snapshot = db.snapshot();
  ASSERT_EQ(snapshot->db.num_objects(), original.num_objects());
  ASSERT_EQ(snapshot->db.num_users(), original.num_users());
  for (UserId u = 0; u < original.num_users(); ++u) {
    EXPECT_EQ(snapshot->db.UserName(u), original.UserName(u));
  }
  ExpectSameJoins(snapshot->db, original);
}

// The differential interleaving fuzz: random insert/delete streams, with
// publishes compared against the rebuild-from-survivors oracle across
// all join and top-k variants.
void RunDifferential(uint64_t seed, const UpdateOptions& options,
                     size_t rounds, size_t compare_every) {
  Rng rng(seed);
  UpdatableDatabase db(options);
  std::vector<RawObject> log;
  std::vector<bool> deleted;

  for (size_t round = 1; round <= rounds; ++round) {
    if (!log.empty() && rng.Bernoulli(0.3)) {
      // Delete a random user (sometimes one that is already gone).
      const std::string victim =
          "user" + std::to_string(rng.NextBelow(12));
      bool any_live = false;
      for (size_t i = 0; i < log.size(); ++i) {
        if (!deleted[i] && log[i].user == victim) any_live = true;
      }
      EXPECT_EQ(db.DeleteUser(victim), any_live);
      for (size_t i = 0; i < log.size(); ++i) {
        if (log[i].user == victim) deleted[i] = true;
      }
    } else {
      const size_t batch = 1 + rng.NextBelow(5);
      std::vector<RawObject> objects;
      for (size_t i = 0; i < batch; ++i) {
        objects.push_back(RandomRaw(&rng, 12, 18));
        log.push_back(objects.back());
        deleted.push_back(false);
      }
      db.InsertObjects(std::span<const RawObject>(objects));
    }

    if (round % compare_every == 0 || round == rounds) {
      const auto snapshot = db.PublishIfDirty().snapshot;
      const ObjectDatabase oracle = BuildOracle(log, deleted);
      ASSERT_EQ(snapshot->db.num_objects(), oracle.num_objects());
      ASSERT_EQ(snapshot->db.num_users(), oracle.num_users());
      for (UserId u = 0; u < oracle.num_users(); ++u) {
        ASSERT_EQ(snapshot->db.UserName(u), oracle.UserName(u));
      }
      ExpectSameJoins(snapshot->db, oracle);
    }
  }
}

TEST(UpdatableDatabaseTest, DifferentialInterleavings) {
  RunDifferential(/*seed=*/11, UpdateOptions{}, /*rounds=*/24,
                  /*compare_every=*/8);
}

TEST(UpdatableDatabaseTest, DifferentialWithEagerCompaction) {
  UpdateOptions options;
  options.compact_fraction = 0.0;  // compact on every delete
  RunDifferential(/*seed=*/13, options, /*rounds=*/24, /*compare_every=*/8);
}

TEST(UpdatableDatabaseTest, DifferentialWithAutoPublish) {
  UpdateOptions options;
  options.publish_threshold = 7;
  RunDifferential(/*seed=*/17, options, /*rounds=*/20, /*compare_every=*/10);
}

TEST(UpdatableDatabaseTest, CompactionReclaimsAndPreservesResults) {
  UpdateOptions options;
  options.compact_fraction = 0.1;
  UpdatableDatabase db(options);
  Rng rng(23);
  std::vector<RawObject> log;
  std::vector<bool> deleted;
  // Insert-heavy phase, then delete most users: forces both arena and
  // slot compactions through the 10% threshold.
  for (size_t i = 0; i < 120; ++i) {
    log.push_back(RandomRaw(&rng, 10, 16));
    deleted.push_back(false);
    db.InsertObject(log.back());
  }
  for (size_t u = 0; u < 10; u += 2) {
    const std::string victim = "user" + std::to_string(u);
    db.DeleteUser(victim);
    for (size_t i = 0; i < log.size(); ++i) {
      if (log[i].user == victim) deleted[i] = true;
    }
  }
  const UpdateStats stats = db.stats();
  EXPECT_GT(stats.arena_compactions + stats.slot_compactions, 0u);
  const auto snapshot = db.Publish();
  const ObjectDatabase oracle = BuildOracle(log, deleted);
  ASSERT_EQ(snapshot->db.num_objects(), oracle.num_objects());
  ExpectSameJoins(snapshot->db, oracle);

  // Freed slots are actually reused: inserting after the deletes does
  // not grow the store past its prior footprint.
  const size_t live_before = db.live_objects();
  db.InsertObject(RandomRaw(&rng, 10, 16));
  EXPECT_EQ(db.live_objects(), live_before + 1);
}

// TSan target: concurrent readers run joins on their snapshots while a
// writer inserts, deletes, and publishes. Readers check internal
// consistency (index join == brute force on the same snapshot) and that
// epochs never move backwards.
TEST(UpdatableDatabaseConcurrencyTest, ReadersNeverBlockOrTear) {
  UpdateOptions options;
  options.publish_threshold = 5;
  UpdatableDatabase db(options);
  {
    Rng seed_rng(31);
    std::vector<RawObject> initial;
    for (size_t i = 0; i < 40; ++i) initial.push_back(RandomRaw(&seed_rng, 8, 14));
    db.InsertObjects(std::span<const RawObject>(initial));
    db.Publish();
  }

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&db, &stop, &failures, r] {
      uint64_t last_epoch = 0;
      STPSQuery query;
      query.eps_loc = 0.15;
      query.eps_doc = 0.25;
      query.eps_u = 0.2;
      query.parallel.num_threads = (r == 0) ? 2 : 1;
      while (!stop.load(std::memory_order_acquire)) {
        const auto snapshot = db.snapshot();
        if (snapshot->epoch < last_epoch) failures.fetch_add(1);
        last_epoch = snapshot->epoch;
        JoinOptions options;
        options.algorithm = JoinAlgorithm::kSPPJF;
        const auto fast = RunSTPSJoin(snapshot->db, query, options);
        const auto brute = BruteForceSTPSJoin(snapshot->db, query);
        if (!SameResults(fast, brute, 0.0)) failures.fetch_add(1);
      }
    });
  }

  std::thread writer([&db] {
    Rng rng(37);
    for (size_t i = 0; i < 60; ++i) {
      if (rng.Bernoulli(0.25)) {
        db.DeleteUser("user" + std::to_string(rng.NextBelow(8)));
      } else {
        db.InsertObject(RandomRaw(&rng, 8, 14));
      }
      if (i % 10 == 9) db.Publish();
    }
  });
  writer.join();
  stop.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(db.epoch(), 6u);
}

// Two concurrent writers plus a deleter: the store serialises mutations
// without losing or duplicating objects.
TEST(UpdatableDatabaseConcurrencyTest, ConcurrentWritersSerialise) {
  UpdatableDatabase db;
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&db, w] {
      for (int i = 0; i < 50; ++i) {
        RawObject object;
        object.user = "writer" + std::to_string(w);
        object.loc = {0.1 * w, 0.1};
        object.keywords = {"kw" + std::to_string(i % 5)};
        db.InsertObject(object);
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  EXPECT_EQ(db.live_objects(), 100u);
  const auto snapshot = db.Publish();
  EXPECT_EQ(snapshot->db.num_objects(), 100u);
  EXPECT_EQ(snapshot->db.num_users(), 2u);
  EXPECT_TRUE(db.DeleteUser("writer0"));
  EXPECT_EQ(db.Publish()->db.num_objects(), 50u);
}

}  // namespace
}  // namespace stps
