#include "core/tuning.h"

#include <gtest/gtest.h>

#include "core/ppjb.h"
#include "core/similarity.h"
#include "core/stpsjoin.h"
#include "planner/cost_model.h"
#include "planner/feedback.h"
#include "test_util.h"

namespace stps {
namespace {

using testing_util::BuildRandomDatabase;
using testing_util::RandomDbSpec;

ObjectDatabase DenseDb(uint64_t seed) {
  RandomDbSpec spec;
  spec.seed = seed;
  spec.num_users = 40;
  spec.hotspot_probability = 0.9;  // lots of matches at relaxed thresholds
  spec.vocabulary = 15;
  return BuildRandomDatabase(spec);
}

TEST(TuningTest, ConvergesToTargetSize) {
  const ObjectDatabase db = DenseDb(1);
  TuningOptions options;
  options.initial = {0.2, 0.1, 0.05};  // relaxed
  options.target_size = 5;
  const TuningResult result = TuneThresholds(db, options);
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.result.size(), 0u);
  EXPECT_LE(result.result.size(), 5u);
  EXPECT_GT(result.iterations, 0u);
}

TEST(TuningTest, FinalPairsSatisfyFinalThresholds) {
  const ObjectDatabase db = DenseDb(2);
  TuningOptions options;
  options.initial = {0.2, 0.1, 0.05};
  options.target_size = 8;
  const TuningResult result = TuneThresholds(db, options);
  ASSERT_TRUE(result.converged);
  const MatchThresholds t{result.thresholds.eps_loc,
                          result.thresholds.eps_doc};
  // Every reported pair must reach eps_u at the discovered thresholds —
  // and its score must be the exact sigma.
  for (const ScoredUserPair& pair : result.result) {
    const double sigma =
        ExactSigma(db.UserObjects(pair.a), db.UserObjects(pair.b), t);
    EXPECT_GE(sigma, result.thresholds.eps_u);
    EXPECT_DOUBLE_EQ(sigma, pair.score);
  }
  // And the full join at the discovered thresholds returns exactly the
  // reported result-set size (the search never drops qualifying pairs
  // because tightening is monotone).
  const auto full = BruteForceSTPSJoin(db, result.thresholds);
  EXPECT_EQ(full.size(), result.result.size());
}

TEST(TuningTest, AlreadySmallResultReturnsImmediately) {
  const ObjectDatabase db = DenseDb(3);
  TuningOptions options;
  options.initial = {0.01, 0.9, 0.9};  // strict: tiny result
  options.target_size = 50;
  const TuningResult result = TuneThresholds(db, options);
  EXPECT_EQ(result.iterations, 0u);
  EXPECT_EQ(result.thresholds.eps_loc, options.initial.eps_loc);
}

TEST(TuningTest, DeterministicStrategyAlsoConverges) {
  const ObjectDatabase db = DenseDb(4);
  TuningOptions options;
  options.initial = {0.2, 0.1, 0.05};
  options.target_size = 6;
  options.probabilistic = false;
  const TuningResult result = TuneThresholds(db, options);
  EXPECT_TRUE(result.converged);
  EXPECT_LE(result.result.size(), 6u);
  EXPECT_GT(result.result.size(), 0u);
}

TEST(TuningTest, SameSeedIsReproducible) {
  const ObjectDatabase db = DenseDb(5);
  TuningOptions options;
  options.initial = {0.2, 0.1, 0.05};
  options.target_size = 5;
  options.seed = 123;
  const TuningResult a = TuneThresholds(db, options);
  const TuningResult b = TuneThresholds(db, options);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.result.size(), b.result.size());
  EXPECT_DOUBLE_EQ(a.thresholds.eps_loc, b.thresholds.eps_loc);
  EXPECT_DOUBLE_EQ(a.thresholds.eps_doc, b.thresholds.eps_doc);
  EXPECT_DOUBLE_EQ(a.thresholds.eps_u, b.thresholds.eps_u);
}


TEST(TuningTest, BacktracksInsteadOfDying) {
  // A database where tightening eps_doc immediately empties the result:
  // all matching objects share exactly half their tokens (J = 1/3), so
  // any eps_doc above 1/3 kills every pair, while eps_loc and eps_u
  // steps shrink the result gracefully. The DFS must route around the
  // dead parameter.
  DatabaseBuilder builder;
  for (int u = 0; u < 12; ++u) {
    const std::string name = "u" + std::to_string(u);
    for (int i = 0; i < 3; ++i) {
      const std::vector<std::string> kws = {"shared",
                                            "own" + std::to_string(u)};
      // Users pair up; the first two pairs sit very close (0.002), the
      // rest at 0.02, so the descending eps_loc ladder (0.05 - k*0.0125)
      // can isolate exactly two pairs at eps_loc = 0.0125.
      const double gap = (u / 2) < 2 ? 0.002 : 0.02;
      const double x = 0.1 * (u / 2) + (u % 2) * gap;
      builder.AddObject(name, Point{x, 0.01 * i},
                        std::span<const std::string>(kws));
    }
  }
  const ObjectDatabase db = std::move(builder).Build();
  TuningOptions options;
  options.initial = {0.05, 1.0 / 3 - 0.01, 0.2};
  options.target_size = 2;
  options.step_fraction = 0.25;
  options.seed = 5;
  const TuningResult result = TuneThresholds(db, options);
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.result.size(), 0u);
  EXPECT_LE(result.result.size(), 2u);
  // eps_doc can never have been tightened (any step crosses 1/3).
  EXPECT_LT(result.thresholds.eps_doc, 1.0 / 3);
}

// The initial join now routes through the planner (kAuto). Every shape
// the planner can pick is exact, so the tuned thresholds must not depend
// on the planner's mood — pin that by poisoning the feedback map between
// two searches and requiring identical TuningResults.
TEST(TuningTest, ResultIndependentOfPlannerChoice) {
  const ObjectDatabase db = DenseDb(6);
  TuningOptions options;
  options.initial = {0.2, 0.1, 0.05};
  options.target_size = 5;
  options.seed = 7;

  PlannerFeedback::Global().Reset();
  const TuningResult baseline = TuneThresholds(db, options);

  // Steer the planner toward each algorithm in turn; thresholds, result
  // pairs, and iteration count must not move.
  const PlanEstimate estimate =
      EstimateJoinStages(db.planner_stats(), options.initial.eps_loc,
                         options.initial.eps_doc, options.initial.eps_u);
  JoinStats fake;
  for (const JoinAlgorithm fast :
       {JoinAlgorithm::kSPPJC, JoinAlgorithm::kSPPJB,
        JoinAlgorithm::kBruteForce}) {
    PlannerFeedback::Global().Reset();
    for (const JoinAlgorithm algorithm :
         {JoinAlgorithm::kSPPJC, JoinAlgorithm::kSPPJB, JoinAlgorithm::kSPPJF,
          JoinAlgorithm::kSPPJD, JoinAlgorithm::kBruteForce}) {
      PlanShape shape;
      shape.join = algorithm;
      const double cost =
          EstimateShapeCost(db.planner_stats(), shape, estimate);
      for (int i = 0; i < 8; ++i) {
        PlannerFeedback::Global().Record(shape, estimate, cost, fake,
                                         algorithm == fast ? 1e-3 : 1e5);
      }
    }
    const TuningResult steered = TuneThresholds(db, options);
    EXPECT_DOUBLE_EQ(steered.thresholds.eps_loc, baseline.thresholds.eps_loc)
        << "steered toward " << JoinAlgorithmName(fast);
    EXPECT_DOUBLE_EQ(steered.thresholds.eps_doc, baseline.thresholds.eps_doc)
        << "steered toward " << JoinAlgorithmName(fast);
    EXPECT_DOUBLE_EQ(steered.thresholds.eps_u, baseline.thresholds.eps_u)
        << "steered toward " << JoinAlgorithmName(fast);
    EXPECT_EQ(steered.iterations, baseline.iterations);
    EXPECT_EQ(steered.converged, baseline.converged);
    ASSERT_EQ(steered.result.size(), baseline.result.size());
    for (size_t i = 0; i < steered.result.size(); ++i) {
      EXPECT_EQ(steered.result[i].a, baseline.result[i].a);
      EXPECT_EQ(steered.result[i].b, baseline.result[i].b);
      EXPECT_DOUBLE_EQ(steered.result[i].score, baseline.result[i].score);
    }
  }
  PlannerFeedback::Global().Reset();
}

TEST(TuningTest, MaxIterationsBoundsTheSearch) {
  const ObjectDatabase db = DenseDb(9);
  TuningOptions options;
  options.initial = {0.2, 0.1, 0.05};
  options.target_size = 1;  // very hard target
  options.max_iterations = 3;
  const TuningResult result = TuneThresholds(db, options);
  EXPECT_LE(result.iterations, 3u);
}

}  // namespace
}  // namespace stps
