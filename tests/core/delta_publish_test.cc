// Delta publish correctness: the O(delta) splice path of
// UpdatableDatabase::Publish must produce a database *structurally
// bit-identical* to a fresh DatabaseBuilder::Build over the survivors —
// every column, the dictionary, the sketch arrays, and the planner
// stats — not merely one that answers queries the same way. The tests
// here force the delta and full paths alternately (the update_test
// differential only hits whichever path the thresholds pick), verify
// the fallback triggers (bounds growth, boundary deletes, dirty
// fraction, disabled delta), check the PublishResult/UpdateStats
// publish counters, and run concurrent readers against delta publishes
// (the TSan target; see scripts/run_tsan_tests.sh).

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/stpsjoin.h"
#include "core/update.h"
#include "planner/planner_stats.h"
#include "sketch/sketch.h"
#include "test_util.h"

namespace stps {
namespace {

using testing_util::SameResults;

// Four immortal corner check-ins pinning bounds() to [0,1]x[0,1]: while
// the anchor user is never deleted and every other point stays strictly
// inside, no mutation can grow the bounds or delete a boundary point, so
// the delta path is never blocked by the global-structure guards.
std::vector<RawObject> AnchorObjects() {
  std::vector<RawObject> anchors;
  for (const Point corner :
       {Point{0.0, 0.0}, Point{0.0, 1.0}, Point{1.0, 0.0}, Point{1.0, 1.0}}) {
    anchors.push_back({"anchor", corner, {"anchorkw"}, 0.0});
  }
  return anchors;
}

// Deterministic in-bounds check-in stream (strictly inside the anchor
// frame) with enough collisions that joins return real results.
RawObject RandomInterior(Rng* rng, size_t user_pool, size_t vocabulary) {
  RawObject object;
  object.user = "user" + std::to_string(rng->NextBelow(user_pool));
  const double cx = 0.25 + 0.2 * static_cast<double>(rng->NextBelow(3));
  object.loc = {std::clamp(rng->Gaussian(cx, 0.05), 0.05, 0.95),
                std::clamp(rng->Gaussian(cx, 0.05), 0.05, 0.95)};
  const size_t tokens = 1 + rng->NextBelow(4);
  for (size_t t = 0; t < tokens; ++t) {
    object.keywords.push_back("kw" +
                              std::to_string(rng->NextBelow(vocabulary)));
  }
  return object;
}

ObjectDatabase BuildOracle(const std::vector<RawObject>& log,
                           const std::vector<bool>& deleted) {
  DatabaseBuilder builder;
  for (size_t i = 0; i < log.size(); ++i) {
    if (deleted[i]) continue;
    builder.AddObject(log[i].user, log[i].loc,
                      std::span<const std::string>(log[i].keywords),
                      log[i].time);
  }
  return std::move(builder).Build();
}

template <typename T>
void ExpectSpansEqual(std::span<const T> lhs, std::span<const T> rhs,
                      const char* what) {
  ASSERT_EQ(lhs.size(), rhs.size()) << what;
  for (size_t i = 0; i < lhs.size(); ++i) {
    ASSERT_EQ(lhs[i], rhs[i]) << what << "[" << i << "]";
  }
}

// The strong contract: every physical structure of the two databases is
// element-wise identical. Queries cannot distinguish databases that pass
// this — including their JoinStats and planner estimates.
void ExpectSameDatabase(const ObjectDatabase& lhs, const ObjectDatabase& rhs) {
  ASSERT_EQ(lhs.num_objects(), rhs.num_objects());
  ASSERT_EQ(lhs.num_users(), rhs.num_users());
  EXPECT_EQ(lhs.bounds().min_x, rhs.bounds().min_x);
  EXPECT_EQ(lhs.bounds().min_y, rhs.bounds().min_y);
  EXPECT_EQ(lhs.bounds().max_x, rhs.bounds().max_x);
  EXPECT_EQ(lhs.bounds().max_y, rhs.bounds().max_y);

  for (UserId u = 0; u < lhs.num_users(); ++u) {
    ASSERT_EQ(lhs.UserName(u), rhs.UserName(u)) << "user " << u;
    ASSERT_EQ(lhs.UserObjectCount(u), rhs.UserObjectCount(u)) << "user " << u;
  }

  ExpectSpansEqual(lhs.xs(), rhs.xs(), "xs");
  ExpectSpansEqual(lhs.ys(), rhs.ys(), "ys");
  ExpectSpansEqual(lhs.users(), rhs.users(), "users");
  ExpectSpansEqual(lhs.sigs(), rhs.sigs(), "sigs");
  ExpectSpansEqual(lhs.insertion_order(), rhs.insertion_order(),
                   "insertion_order");

  for (ObjectId id = 0; id < lhs.num_objects(); ++id) {
    const STObject& a = lhs.object(id);
    const STObject& b = rhs.object(id);
    ASSERT_EQ(a.user, b.user) << "object " << id;
    ASSERT_EQ(a.loc.x, b.loc.x) << "object " << id;
    ASSERT_EQ(a.loc.y, b.loc.y) << "object " << id;
    ASSERT_EQ(a.time, b.time) << "object " << id;
    ASSERT_EQ(a.sig, b.sig) << "object " << id;
    ExpectSpansEqual(lhs.ObjectTokens(id), rhs.ObjectTokens(id), "tokens");
  }

  // Dictionary: same token strings in the same id order with the same
  // recorded frequencies.
  ASSERT_EQ(lhs.dictionary().size(), rhs.dictionary().size());
  for (TokenId t = 0; t < lhs.dictionary().size(); ++t) {
    ASSERT_EQ(lhs.dictionary().TokenString(t), rhs.dictionary().TokenString(t))
        << "token " << t;
    ASSERT_EQ(lhs.dictionary().Frequency(t), rhs.dictionary().Frequency(t))
        << "token " << t;
  }

  ASSERT_TRUE(lhs.has_planner_stats());
  ASSERT_TRUE(rhs.has_planner_stats());
  EXPECT_TRUE(lhs.planner_stats() == rhs.planner_stats());

  ASSERT_TRUE(lhs.has_sketches());
  ASSERT_TRUE(rhs.has_sketches());
  const SketchParts a = lhs.sketches().parts();
  const SketchParts b = rhs.sketches().parts();
  EXPECT_TRUE(a.params == b.params);
  EXPECT_EQ(a.num_users, b.num_users);
  EXPECT_EQ(a.band_salt, b.band_salt);
  EXPECT_EQ(a.min_x, b.min_x);
  EXPECT_EQ(a.min_y, b.min_y);
  EXPECT_EQ(a.width_x, b.width_x);
  EXPECT_EQ(a.width_y, b.width_y);
  ExpectSpansEqual(a.minhash, b.minhash, "sketch minhash");
  ExpectSpansEqual(a.occ_cells, b.occ_cells, "sketch occ_cells");
  ExpectSpansEqual(a.occ_begin, b.occ_begin, "sketch occ_begin");
  ExpectSpansEqual(a.masks, b.masks, "sketch masks");
  ExpectSpansEqual(a.user_keys, b.user_keys, "sketch user_keys");
  ExpectSpansEqual(a.user_key_begin, b.user_key_begin,
                   "sketch user_key_begin");
  ExpectSpansEqual(a.post_keys, b.post_keys, "sketch post_keys");
  ExpectSpansEqual(a.post_begin, b.post_begin, "sketch post_begin");
  ExpectSpansEqual(a.post_users, b.post_users, "sketch post_users");
  ExpectSpansEqual(a.row_salts, b.row_salts, "sketch row_salts");
}

// Join-level agreement at the requested thread counts and sketch modes.
// Weaker than ExpectSameDatabase but exercises the actual kernels,
// including kAuto (which needs real planner stats to plan).
void ExpectSameJoinsAllModes(const ObjectDatabase& lhs,
                             const ObjectDatabase& rhs) {
  STPSQuery join;
  join.eps_loc = 0.15;
  join.eps_doc = 0.25;
  join.eps_u = 0.2;
  const std::vector<ScoredUserPair> brute = BruteForceSTPSJoin(lhs, join);
  EXPECT_TRUE(SameResults(brute, BruteForceSTPSJoin(rhs, join), 0.0));
  for (const int threads : {1, 2, 8}) {
    for (const bool sketch : {false, true}) {
      STPSQuery query = join;
      query.parallel.num_threads = threads;
      query.sketch.enabled = sketch;
      for (const JoinAlgorithm algorithm :
           {JoinAlgorithm::kSPPJF, JoinAlgorithm::kAuto}) {
        JoinOptions options;
        options.algorithm = algorithm;
        const auto l = RunSTPSJoin(lhs, query, options);
        EXPECT_TRUE(SameResults(l, RunSTPSJoin(rhs, query, options), 0.0))
            << "threads=" << threads << " sketch=" << sketch
            << " algorithm=" << static_cast<int>(algorithm);
        EXPECT_TRUE(SameResults(l, brute, 0.0));
      }
    }
  }
  TopKQuery topk;
  topk.eps_loc = 0.15;
  topk.eps_doc = 0.25;
  topk.k = 5;
  for (const TopKAlgorithm algorithm :
       {TopKAlgorithm::kP, TopKAlgorithm::kAuto}) {
    EXPECT_TRUE(SameResults(RunTopKSTPSJoin(lhs, topk, algorithm),
                            RunTopKSTPSJoin(rhs, topk, algorithm), 0.0));
  }
}

// Seeds db (and the shadow log) with the anchor frame plus `count`
// interior objects, publishing the base epoch (a full build).
void SeedBase(UpdatableDatabase* db, Rng* rng, size_t count, size_t user_pool,
              std::vector<RawObject>* log, std::vector<bool>* deleted) {
  std::vector<RawObject> batch = AnchorObjects();
  for (size_t i = 0; i < count; ++i) {
    batch.push_back(RandomInterior(rng, user_pool, 18));
  }
  for (const RawObject& object : batch) {
    log->push_back(object);
    deleted->push_back(false);
  }
  db->InsertObjects(std::span<const RawObject>(batch));
  db->Publish();
}

void DeleteUserEverywhere(UpdatableDatabase* db, const std::string& victim,
                          std::vector<RawObject>* log,
                          std::vector<bool>* deleted) {
  db->DeleteUser(victim);
  for (size_t i = 0; i < log->size(); ++i) {
    if ((*log)[i].user == victim) (*deleted)[i] = true;
  }
}

TEST(DeltaPublishTest, SmallDeltaTakesSplicePathAndIsBitIdentical) {
  Rng rng(101);
  UpdatableDatabase db;  // default delta_publish_max_fraction = 0.25
  std::vector<RawObject> log;
  std::vector<bool> deleted;
  SeedBase(&db, &rng, 120, /*user_pool=*/30, &log, &deleted);
  ASSERT_EQ(db.stats().full_publishes, 1u);  // seed epoch: no previous db

  // Dirty exactly one of ~31 users (3%): well under the 25% threshold.
  std::vector<RawObject> batch;
  for (int i = 0; i < 3; ++i) {
    RawObject object = RandomInterior(&rng, 30, 18);
    object.user = "user0";
    batch.push_back(object);
    log.push_back(object);
    deleted.push_back(false);
  }
  db.InsertObjects(std::span<const RawObject>(batch));
  const PublishResult result = db.PublishIfDirty();
  EXPECT_TRUE(result.published);
  EXPECT_TRUE(result.delta);
  EXPECT_GE(result.publish_ms, 0.0);

  const UpdateStats stats = db.stats();
  EXPECT_EQ(stats.delta_publishes, 1u);
  EXPECT_EQ(stats.full_publishes, 1u);
  EXPECT_EQ(stats.dirty_users_published, 1u);
  EXPECT_GT(stats.blocks_reused, 0u);   // the ~30 clean users
  EXPECT_GT(stats.blocks_rebuilt, 0u);  // seed epoch + user0 now
  EXPECT_TRUE(stats.last_publish_delta);

  const ObjectDatabase oracle = BuildOracle(log, deleted);
  ExpectSameDatabase(result.snapshot->db, oracle);
  ExpectSameJoinsAllModes(result.snapshot->db, oracle);
}

TEST(DeltaPublishTest, DeleteOnlyDeltaIsBitIdentical) {
  Rng rng(103);
  UpdatableDatabase db;
  std::vector<RawObject> log;
  std::vector<bool> deleted;
  SeedBase(&db, &rng, 120, /*user_pool=*/30, &log, &deleted);

  DeleteUserEverywhere(&db, "user3", &log, &deleted);
  const PublishResult result = db.PublishIfDirty();
  EXPECT_TRUE(result.published);
  EXPECT_TRUE(result.delta);
  const ObjectDatabase oracle = BuildOracle(log, deleted);
  ExpectSameDatabase(result.snapshot->db, oracle);

  // Reinserting the deleted user in the same window as another delete
  // still splices: both are dirty, the other ~28 users are reused.
  DeleteUserEverywhere(&db, "user5", &log, &deleted);
  RawObject back = RandomInterior(&rng, 30, 18);
  back.user = "user3";
  db.InsertObject(back);
  log.push_back(back);
  deleted.push_back(false);
  const PublishResult second = db.PublishIfDirty();
  EXPECT_TRUE(second.published);
  EXPECT_TRUE(second.delta);
  const ObjectDatabase oracle2 = BuildOracle(log, deleted);
  ExpectSameDatabase(second.snapshot->db, oracle2);
  ExpectSameJoinsAllModes(second.snapshot->db, oracle2);
}

TEST(DeltaPublishTest, FallbackTriggers) {
  // (a) Out-of-bounds insert forces the full path.
  {
    Rng rng(107);
    UpdatableDatabase db;
    std::vector<RawObject> log;
    std::vector<bool> deleted;
    SeedBase(&db, &rng, 60, /*user_pool=*/20, &log, &deleted);
    RawObject outside = RandomInterior(&rng, 20, 18);
    outside.loc = {1.5, 0.5};  // outside the anchor frame: bounds grow
    db.InsertObject(outside);
    log.push_back(outside);
    deleted.push_back(false);
    const PublishResult result = db.PublishIfDirty();
    EXPECT_TRUE(result.published);
    EXPECT_FALSE(result.delta);
    EXPECT_FALSE(db.stats().last_publish_delta);
    ExpectSameDatabase(result.snapshot->db, BuildOracle(log, deleted));
  }
  // (b) Deleting a boundary-defining user forces the full path (bounds
  // may shrink, which would change every Z-order key).
  {
    Rng rng(109);
    UpdatableDatabase db;
    std::vector<RawObject> log;
    std::vector<bool> deleted;
    SeedBase(&db, &rng, 60, /*user_pool=*/20, &log, &deleted);
    DeleteUserEverywhere(&db, "anchor", &log, &deleted);
    const PublishResult result = db.PublishIfDirty();
    EXPECT_TRUE(result.published);
    EXPECT_FALSE(result.delta);
    ExpectSameDatabase(result.snapshot->db, BuildOracle(log, deleted));
  }
  // (c) Dirty fraction above the threshold forces the full path.
  {
    Rng rng(113);
    UpdateOptions options;
    options.delta_publish_max_fraction = 0.1;
    UpdatableDatabase db(options);
    std::vector<RawObject> log;
    std::vector<bool> deleted;
    SeedBase(&db, &rng, 60, /*user_pool=*/10, &log, &deleted);
    // Touch ~half the users: far above 10%.
    for (int u = 0; u < 5; ++u) {
      RawObject object = RandomInterior(&rng, 10, 18);
      object.user = "user" + std::to_string(u);
      db.InsertObject(object);
      log.push_back(object);
      deleted.push_back(false);
    }
    const PublishResult result = db.PublishIfDirty();
    EXPECT_TRUE(result.published);
    EXPECT_FALSE(result.delta);
    EXPECT_EQ(db.stats().delta_publishes, 0u);
    ExpectSameDatabase(result.snapshot->db, BuildOracle(log, deleted));
  }
  // (d) delta_publish_max_fraction <= 0 disables the delta path even for
  // a one-user delta.
  {
    Rng rng(127);
    UpdateOptions options;
    options.delta_publish_max_fraction = 0.0;
    UpdatableDatabase db(options);
    std::vector<RawObject> log;
    std::vector<bool> deleted;
    SeedBase(&db, &rng, 60, /*user_pool=*/20, &log, &deleted);
    RawObject object = RandomInterior(&rng, 20, 18);
    db.InsertObject(object);
    log.push_back(object);
    deleted.push_back(false);
    const PublishResult result = db.PublishIfDirty();
    EXPECT_TRUE(result.published);
    EXPECT_FALSE(result.delta);
    EXPECT_EQ(db.stats().delta_publishes, 0u);
    EXPECT_EQ(db.stats().full_publishes, 2u);
    ExpectSameDatabase(result.snapshot->db, BuildOracle(log, deleted));
  }
}

// The interleaved differential fuzz, forcing the two paths alternately:
// odd rounds make a small (1-2 user) delta, even rounds a sweeping one,
// and a delta-disabled twin database consumes the same stream so every
// comparison also checks splice == full == oracle three ways.
TEST(DeltaPublishTest, ForcedAlternationDifferential) {
  Rng rng(131);
  UpdateOptions delta_options;
  delta_options.delta_publish_max_fraction = 0.3;
  UpdatableDatabase db(delta_options);
  UpdateOptions full_options;
  full_options.delta_publish_max_fraction = 0.0;  // always full rebuild
  UpdatableDatabase full_db(full_options);

  std::vector<RawObject> log;
  std::vector<bool> deleted;
  {
    Rng seed_rng(131);
    SeedBase(&db, &seed_rng, 100, /*user_pool=*/25, &log, &deleted);
  }
  // The twin consumes the exact same seed stream.
  full_db.InsertObjects(std::span<const RawObject>(log));
  full_db.Publish();

  for (size_t round = 1; round <= 10; ++round) {
    const bool small = (round % 2 == 1);
    std::vector<RawObject> batch;
    if (small) {
      // 1-2 dirty users out of ~26 — forces the splice path.
      const size_t victims = 1 + rng.NextBelow(2);
      for (size_t v = 0; v < victims; ++v) {
        const std::string user = "user" + std::to_string(rng.NextBelow(25));
        if (rng.Bernoulli(0.35)) {
          DeleteUserEverywhere(&db, user, &log, &deleted);
          full_db.DeleteUser(user);
        } else {
          RawObject object = RandomInterior(&rng, 25, 18);
          object.user = user;
          batch.push_back(object);
        }
      }
    } else {
      // Touch ~half the pool — forces the full path.
      for (size_t u = 0; u < 25; u += 2) {
        RawObject object = RandomInterior(&rng, 25, 18);
        object.user = "user" + std::to_string(u);
        batch.push_back(object);
      }
    }
    if (!batch.empty()) {
      db.InsertObjects(std::span<const RawObject>(batch));
      full_db.InsertObjects(std::span<const RawObject>(batch));
      for (const RawObject& object : batch) {
        log.push_back(object);
        deleted.push_back(false);
      }
    }
    const PublishResult result = db.PublishIfDirty();
    const PublishResult full_result = full_db.PublishIfDirty();
    if (result.published) {
      EXPECT_EQ(result.delta, small)
          << "round " << round << " took the wrong publish path";
    }
    if (full_result.published) {
      EXPECT_FALSE(full_result.delta);
    }
    const ObjectDatabase oracle = BuildOracle(log, deleted);
    ExpectSameDatabase(result.snapshot->db, oracle);
    ExpectSameDatabase(full_result.snapshot->db, oracle);
    if (round == 5 || round == 10) {
      ExpectSameJoinsAllModes(result.snapshot->db, oracle);
    }
  }
  // Both paths actually ran.
  EXPECT_GE(db.stats().delta_publishes, 4u);
  EXPECT_GE(db.stats().full_publishes, 5u);  // seed + 5 sweeping rounds
  EXPECT_GT(db.stats().blocks_reused, 0u);
  EXPECT_EQ(full_db.stats().delta_publishes, 0u);
}

TEST(DeltaPublishTest, FormatUpdateStatsMentionsPublishPaths) {
  Rng rng(137);
  UpdatableDatabase db;
  std::vector<RawObject> log;
  std::vector<bool> deleted;
  SeedBase(&db, &rng, 40, /*user_pool=*/15, &log, &deleted);
  RawObject object = RandomInterior(&rng, 15, 18);
  db.InsertObject(object);
  db.PublishIfDirty();
  const std::string formatted = FormatUpdateStats(db.stats());
  EXPECT_NE(formatted.find("delta=1"), std::string::npos) << formatted;
  EXPECT_NE(formatted.find("full=1"), std::string::npos) << formatted;
  EXPECT_NE(formatted.find("reused="), std::string::npos) << formatted;
}

// TSan target: readers join on their snapshots while the writer streams
// small deltas and publishes through the splice path. Readers check
// internal consistency (index join == brute force) so a torn splice
// (e.g. a span into a freed previous epoch) surfaces as a wrong result
// or a sanitizer report.
TEST(DeltaPublishConcurrencyTest, ReadersDuringDeltaPublishes) {
  Rng seed_rng(139);
  UpdatableDatabase db;
  std::vector<RawObject> log;
  std::vector<bool> deleted;
  SeedBase(&db, &seed_rng, 80, /*user_pool=*/12, &log, &deleted);

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&db, &stop, &failures, r] {
      STPSQuery query;
      query.eps_loc = 0.15;
      query.eps_doc = 0.25;
      query.eps_u = 0.2;
      query.parallel.num_threads = (r == 0) ? 2 : 1;
      uint64_t last_epoch = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const auto snapshot = db.snapshot();
        if (snapshot->epoch < last_epoch) failures.fetch_add(1);
        last_epoch = snapshot->epoch;
        JoinOptions options;
        options.algorithm = JoinAlgorithm::kSPPJF;
        const auto fast = RunSTPSJoin(snapshot->db, query, options);
        const auto brute = BruteForceSTPSJoin(snapshot->db, query);
        if (!SameResults(fast, brute, 0.0)) failures.fetch_add(1);
      }
    });
  }

  Rng rng(149);
  for (size_t i = 0; i < 30; ++i) {
    RawObject object = RandomInterior(&rng, 12, 18);
    db.InsertObject(object);
    if (i % 3 == 2) db.PublishIfDirty();
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(db.stats().delta_publishes, 0u);
}

}  // namespace
}  // namespace stps
