// Layout-permutation invariance: the Z-order/SoA database layout reorders
// objects physically, and the filter drivers iterate candidates in
// different orders than the seed code — none of which may leak into
// results. Feeding the same logical records in shuffled insertion orders
// must produce identical *name-keyed* result sets (user ids are assigned
// by first sight, so ids legitimately differ between permutations) with
// bit-identical scores, for every join variant, sequential and parallel.

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/database.h"
#include "core/sppj_d.h"
#include "core/stpsjoin.h"
#include "core/topk.h"

namespace stps {
namespace {

struct Record {
  std::string user;
  Point loc;
  std::vector<std::string> doc;
  double time = 0.0;
};

// Clustered records with heavy token overlap, so every variant exercises
// its filter, bound, and refine stages.
std::vector<Record> MakeRecords() {
  Rng rng(424242);
  std::vector<Record> records;
  const Point hotspots[] = {{0.0, 0.0}, {1.0, 1.0}, {5.0, -2.0}};
  for (int u = 0; u < 24; ++u) {
    const int objects = 2 + static_cast<int>(rng.NextBelow(5));
    for (int o = 0; o < objects; ++o) {
      Record r;
      r.user = "user" + std::to_string(u);
      const Point& h = hotspots[rng.NextBelow(3)];
      r.loc = {h.x + rng.NextDouble() * 0.3, h.y + rng.NextDouble() * 0.3};
      const int vocab = 2 + static_cast<int>(rng.NextBelow(5));
      for (int t = 0; t < vocab; ++t) {
        r.doc.push_back("tok" + std::to_string(rng.NextBelow(12)));
      }
      r.time = static_cast<double>(rng.NextBelow(100));
      records.push_back(std::move(r));
    }
  }
  return records;
}

ObjectDatabase BuildShuffled(std::vector<Record> records, uint64_t seed) {
  if (seed != 0) {  // seed 0 = original order
    Rng rng(seed);
    for (size_t i = records.size(); i > 1; --i) {
      std::swap(records[i - 1], records[rng.NextBelow(i)]);
    }
  }
  DatabaseBuilder builder;
  for (const Record& r : records) {
    builder.AddObject(r.user, r.loc, std::span<const std::string>(r.doc),
                      r.time);
  }
  return std::move(builder).Build();
}

using NamedPair = std::tuple<std::string, std::string, double>;

// Canonical name-keyed form: (min name, max name, score), sorted.
std::vector<NamedPair> Named(const ObjectDatabase& db,
                             const std::vector<ScoredUserPair>& pairs) {
  std::vector<NamedPair> named;
  named.reserve(pairs.size());
  for (const ScoredUserPair& p : pairs) {
    std::string a(db.UserName(p.a));
    std::string b(db.UserName(p.b));
    if (b < a) std::swap(a, b);
    named.emplace_back(std::move(a), std::move(b), p.score);
  }
  std::sort(named.begin(), named.end());
  return named;
}

std::vector<double> Scores(const std::vector<ScoredUserPair>& pairs) {
  std::vector<double> scores;
  scores.reserve(pairs.size());
  for (const ScoredUserPair& p : pairs) scores.push_back(p.score);
  std::sort(scores.begin(), scores.end());
  return scores;
}

constexpr uint64_t kShuffleSeeds[] = {0, 17, 91, 2024};

TEST(LayoutPermutationTest, JoinVariantsAreInsertionOrderInvariant) {
  const std::vector<Record> records = MakeRecords();
  const STPSQuery queries[] = {
      {0.25, 0.3, 0.1},
      {0.1, 0.5, 0.05},
      {0.4, 0.2, 0.15},
  };
  for (const STPSQuery& base : queries) {
    // Reference: original insertion order, sequential S-PPJ-C.
    const ObjectDatabase ref_db = BuildShuffled(records, 0);
    JoinOptions ref_options;
    ref_options.algorithm = JoinAlgorithm::kSPPJC;
    ref_options.rtree_fanout = 16;
    const std::vector<NamedPair> expected =
        Named(ref_db, RunSTPSJoin(ref_db, base, ref_options));
    ASSERT_FALSE(expected.empty());  // guard against a vacuous test

    for (const uint64_t seed : kShuffleSeeds) {
      const ObjectDatabase db = BuildShuffled(records, seed);
      for (const JoinAlgorithm algorithm :
           {JoinAlgorithm::kSPPJC, JoinAlgorithm::kSPPJB,
            JoinAlgorithm::kSPPJF, JoinAlgorithm::kSPPJD}) {
        JoinOptions options;
        options.algorithm = algorithm;
        options.rtree_fanout = 16;
        STPSQuery query = base;
        EXPECT_EQ(Named(db, RunSTPSJoin(db, query, options)), expected)
            << JoinAlgorithmName(algorithm) << " shuffle=" << seed;
        query.parallel = ParallelOptions{3, 1};
        EXPECT_EQ(Named(db, RunSTPSJoin(db, query, options)), expected)
            << "parallel " << JoinAlgorithmName(algorithm)
            << " shuffle=" << seed;
      }
    }
  }
}

TEST(LayoutPermutationTest, TopKVariantsAreInsertionOrderInvariant) {
  const std::vector<Record> records = MakeRecords();
  const ObjectDatabase ref_db = BuildShuffled(records, 0);

  // k past the result size: the full match set must come back, so the
  // name-keyed pair sets are comparable exactly.
  const TopKQuery all{0.25, 0.3, 10000};
  const std::vector<NamedPair> expected_all =
      Named(ref_db, RunTopKSTPSJoin(ref_db, all, TopKAlgorithm::kF));
  ASSERT_FALSE(expected_all.empty());

  // Small k: the boundary may cut through a band of tied scores, and ties
  // are broken on permutation-dependent user ids — so the guaranteed
  // invariant is the score multiset, not the pair identities.
  const TopKQuery small{0.25, 0.3, 5};
  const std::vector<double> expected_scores =
      Scores(RunTopKSTPSJoin(ref_db, small, TopKAlgorithm::kF));
  ASSERT_EQ(expected_scores.size(), 5u);

  for (const uint64_t seed : kShuffleSeeds) {
    const ObjectDatabase db = BuildShuffled(records, seed);
    for (const TopKAlgorithm algorithm :
         {TopKAlgorithm::kF, TopKAlgorithm::kS, TopKAlgorithm::kP}) {
      EXPECT_EQ(Named(db, RunTopKSTPSJoin(db, all, algorithm)), expected_all)
          << TopKAlgorithmName(algorithm) << " shuffle=" << seed;
      EXPECT_EQ(Scores(RunTopKSTPSJoin(db, small, algorithm)),
                expected_scores)
          << TopKAlgorithmName(algorithm) << " shuffle=" << seed;
      TopKQuery parallel_small = small;
      parallel_small.parallel = ParallelOptions{3, 0};
      EXPECT_EQ(Scores(RunTopKSTPSJoin(db, parallel_small, algorithm)),
                expected_scores)
          << "parallel " << TopKAlgorithmName(algorithm)
          << " shuffle=" << seed;
    }
    EXPECT_EQ(Named(db, TopKSPPJD(db, all, /*fanout=*/16)), expected_all)
        << "TopKSPPJD shuffle=" << seed;
    EXPECT_EQ(Scores(TopKSPPJD(db, small, /*fanout=*/16)), expected_scores)
        << "TopKSPPJD shuffle=" << seed;
  }
}

}  // namespace
}  // namespace stps
