#include "core/hausdorff.h"

#include <limits>

#include <gtest/gtest.h>

#include "test_util.h"

namespace stps {
namespace {

using testing_util::BuildRandomDatabase;
using testing_util::RandomDbSpec;

STObject At(double x, double y) {
  STObject o;
  o.loc = {x, y};
  return o;
}

TEST(HausdorffTest, KnownValues) {
  const std::vector<STObject> a = {At(0, 0), At(1, 0)};
  const std::vector<STObject> b = {At(0, 0), At(4, 0)};
  // h(a->b): points 0 and 1 are 0 and 1 away from b -> 1.
  EXPECT_DOUBLE_EQ(DirectedHausdorff(a, b), 1.0);
  // h(b->a): point (4,0) is 3 away from (1,0) -> 3.
  EXPECT_DOUBLE_EQ(DirectedHausdorff(b, a), 3.0);
  EXPECT_DOUBLE_EQ(HausdorffDistance(a, b), 3.0);
}

TEST(HausdorffTest, IdenticalSetsAreAtDistanceZero) {
  const std::vector<STObject> a = {At(1, 2), At(3, 4)};
  EXPECT_DOUBLE_EQ(HausdorffDistance(a, a), 0.0);
}

TEST(HausdorffTest, EmptySetConventions) {
  const std::vector<STObject> a = {At(0, 0)};
  const std::vector<STObject> empty;
  EXPECT_DOUBLE_EQ(DirectedHausdorff(empty, a), 0.0);
  EXPECT_EQ(DirectedHausdorff(a, empty),
            std::numeric_limits<double>::infinity());
}

TEST(HausdorffTest, SymmetricAndMatchesBruteForce) {
  const ObjectDatabase db = BuildRandomDatabase(RandomDbSpec{});
  for (UserId u = 0; u < 10; ++u) {
    for (UserId v = u + 1; v < 10; ++v) {
      const auto a = db.UserObjects(u);
      const auto b = db.UserObjects(v);
      EXPECT_DOUBLE_EQ(HausdorffDistance(a, b), HausdorffDistance(b, a));
      // Brute-force directed distance without the early break.
      double expected = 0.0;
      for (const STObject& oa : a) {
        double min_d = std::numeric_limits<double>::infinity();
        for (const STObject& ob : b) {
          min_d = std::min(min_d, Distance(oa.loc, ob.loc));
        }
        expected = std::max(expected, min_d);
      }
      EXPECT_NEAR(DirectedHausdorff(a, b), expected, 1e-12);
    }
  }
}

TEST(HausdorffTest, TopKSortedAscendingAndTwinsRankFirst) {
  RandomDbSpec spec;
  spec.seed = 31;
  const ObjectDatabase db = BuildRandomDatabase(spec);
  const auto top = HausdorffTopK(db, 10);
  ASSERT_EQ(top.size(), 10u);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_LE(top[i - 1].score, top[i].score);
  }
}

TEST(HausdorffTest, TriangleInequalityHolds) {
  RandomDbSpec spec;
  spec.seed = 77;
  spec.num_users = 12;
  const ObjectDatabase db = BuildRandomDatabase(spec);
  for (UserId a = 0; a < 6; ++a) {
    for (UserId b = 0; b < 6; ++b) {
      for (UserId c = 0; c < 6; ++c) {
        const double ab =
            HausdorffDistance(db.UserObjects(a), db.UserObjects(b));
        const double bc =
            HausdorffDistance(db.UserObjects(b), db.UserObjects(c));
        const double ac =
            HausdorffDistance(db.UserObjects(a), db.UserObjects(c));
        EXPECT_LE(ac, ab + bc + 1e-9);
      }
    }
  }
}

}  // namespace
}  // namespace stps
