// Sharded join driver: shard planning invariants, and bit-identical
// results + stats against the unsharded parallel driver at every shard
// count (the ISSUE-level contract behind `--shards N`).

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/sharded_join.h"
#include "core/sppj_f_parallel.h"
#include "core/stpsjoin.h"
#include "test_util.h"

namespace stps {
namespace {

using testing_util::BuildFigure1Database;
using testing_util::BuildRandomDatabase;
using testing_util::RandomDbSpec;

STPSQuery DefaultQuery() {
  STPSQuery query;
  query.eps_loc = 0.1;
  query.eps_doc = 0.3;
  query.eps_u = 0.2;
  return query;
}

TEST(PlanUserShardsTest, RangesPartitionAllUsers) {
  const ObjectDatabase db = BuildRandomDatabase(RandomDbSpec{});
  for (const int shards : {1, 2, 3, 8, 64, 1000}) {
    const std::vector<ShardRange> ranges = PlanUserShards(db, shards);
    ASSERT_FALSE(ranges.empty());
    EXPECT_LE(ranges.size(), static_cast<size_t>(shards));
    EXPECT_EQ(ranges.front().begin, 0u);
    EXPECT_EQ(ranges.back().end, db.num_users());
    for (size_t i = 0; i < ranges.size(); ++i) {
      EXPECT_LT(ranges[i].begin, ranges[i].end) << "empty shard " << i;
      if (i > 0) EXPECT_EQ(ranges[i].begin, ranges[i - 1].end);
    }
  }
}

TEST(PlanUserShardsTest, MoreShardsThanUsersDegradesGracefully) {
  const ObjectDatabase db = BuildFigure1Database();  // 3 users
  const std::vector<ShardRange> ranges = PlanUserShards(db, 8);
  EXPECT_EQ(ranges.size(), db.num_users());  // one user per shard, no empties
  EXPECT_EQ(ranges.front().begin, 0u);
  EXPECT_EQ(ranges.back().end, db.num_users());
}

TEST(PlanUserShardsTest, EmptyDatabaseYieldsNoShards)  {
  DatabaseBuilder builder;
  const ObjectDatabase db = std::move(builder).Build();
  EXPECT_TRUE(PlanUserShards(db, 4).empty());
}

TEST(ShardedJoinTest, BitIdenticalToUnshardedAtEveryShardCount) {
  const ObjectDatabase db = BuildRandomDatabase(RandomDbSpec{});
  const STPSQuery query = DefaultQuery();
  JoinStats reference_stats;
  const std::vector<ScoredUserPair> reference =
      SPPJFParallel(db, query, ParallelOptions{2, 0}, &reference_stats);
  for (const int shards : {1, 2, 8}) {
    JoinStats stats;
    const std::vector<ScoredUserPair> sharded =
        ShardedSTPSJoin(db, query, shards, &stats);
    ASSERT_EQ(sharded.size(), reference.size()) << "shards=" << shards;
    for (size_t i = 0; i < sharded.size(); ++i) {
      EXPECT_EQ(sharded[i].a, reference[i].a) << "shards=" << shards;
      EXPECT_EQ(sharded[i].b, reference[i].b) << "shards=" << shards;
      EXPECT_EQ(sharded[i].score, reference[i].score) << "shards=" << shards;
    }
    EXPECT_TRUE(stats == reference_stats)
        << "shards=" << shards << "\n"
        << FormatJoinStats(stats) << "\n"
        << FormatJoinStats(reference_stats);
  }
}

TEST(ShardedJoinTest, SkewedUserSizesStayIdentical) {
  // One giant user plus many small ones: the cut heuristic must not
  // change results, only balance.
  DatabaseBuilder builder;
  std::vector<std::string> kws;
  for (int i = 0; i < 200; ++i) {
    kws = {"kw" + std::to_string(i % 7)};
    builder.AddObject("whale", Point{0.01 * (i % 10), 0.01 * (i / 10)},
                      std::span<const std::string>(kws));
  }
  for (int u = 0; u < 20; ++u) {
    kws = {"kw" + std::to_string(u % 7)};
    builder.AddObject("minnow" + std::to_string(u),
                      Point{0.01 * (u % 10), 0.01 * (u / 10)},
                      std::span<const std::string>(kws));
  }
  const ObjectDatabase db = std::move(builder).Build();
  STPSQuery query = DefaultQuery();
  query.eps_u = 0.05;
  const std::vector<ScoredUserPair> reference =
      SPPJFParallel(db, query, /*num_threads=*/2);
  for (const int shards : {2, 8}) {
    const std::vector<ScoredUserPair> sharded =
        ShardedSTPSJoin(db, query, shards);
    ASSERT_EQ(sharded.size(), reference.size());
    for (size_t i = 0; i < sharded.size(); ++i) {
      EXPECT_EQ(sharded[i].a, reference[i].a);
      EXPECT_EQ(sharded[i].b, reference[i].b);
      EXPECT_EQ(sharded[i].score, reference[i].score);
    }
  }
}

TEST(ShardedJoinTest, EmptyDatabaseReturnsNothing) {
  DatabaseBuilder builder;
  const ObjectDatabase db = std::move(builder).Build();
  JoinStats stats;
  EXPECT_TRUE(ShardedSTPSJoin(db, DefaultQuery(), 4, &stats).empty());
  EXPECT_EQ(stats.pairs_candidate, 0u);
}

TEST(ShardedJoinTest, RoutedThroughRunSTPSJoin) {
  const ObjectDatabase db = BuildRandomDatabase(RandomDbSpec{});
  const STPSQuery query = DefaultQuery();
  JoinOptions unsharded;
  unsharded.algorithm = JoinAlgorithm::kSPPJF;
  const auto reference = RunSTPSJoin(db, query, unsharded);
  JoinOptions options;
  options.algorithm = JoinAlgorithm::kSPPJF;
  options.shards = 8;
  const auto sharded = RunSTPSJoin(db, query, options);
  ASSERT_EQ(sharded.size(), reference.size());
  for (size_t i = 0; i < sharded.size(); ++i) {
    EXPECT_EQ(sharded[i].a, reference[i].a);
    EXPECT_EQ(sharded[i].b, reference[i].b);
    EXPECT_EQ(sharded[i].score, reference[i].score);
  }
}

}  // namespace
}  // namespace stps
