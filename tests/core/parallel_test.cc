// Determinism suite for the pool-parallel join drivers: every parallel
// algorithm must produce bit-identical results (tolerance 0) to its
// sequential counterpart at 1, 2, and 8 threads, with identical
// JoinStats counters, on seeded random datasets.

#include <gtest/gtest.h>

#include "core/sppj_b.h"
#include "core/sppj_c.h"
#include "core/sppj_d.h"
#include "core/sppj_f.h"
#include "core/sppj_f_parallel.h"
#include "core/stpsjoin.h"
#include "core/topk.h"
#include "test_util.h"

namespace stps {
namespace {

using testing_util::BuildRandomDatabase;
using testing_util::RandomDbSpec;
using testing_util::SameResults;

class ParallelJoinTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelJoinTest, SPPJFMatchesSequentialBitIdentical) {
  const ParallelOptions parallel{GetParam(), 0};
  for (const uint64_t seed : {1u, 2u, 3u}) {
    RandomDbSpec spec;
    spec.seed = seed;
    const ObjectDatabase db = BuildRandomDatabase(spec);
    const STPSQuery query{0.1, 0.3, 0.25};
    JoinStats seq_stats, par_stats;
    const auto expected = SPPJF(db, query, &seq_stats);
    const auto actual = SPPJFParallel(db, query, parallel, &par_stats);
    EXPECT_TRUE(SameResults(actual, expected, /*tolerance=*/0.0))
        << "threads=" << parallel.num_threads << " seed=" << seed;
    EXPECT_EQ(par_stats, seq_stats)
        << "threads=" << parallel.num_threads << " seed=" << seed;
  }
}

TEST_P(ParallelJoinTest, SPPJBMatchesSequentialBitIdentical) {
  const ParallelOptions parallel{GetParam(), 0};
  for (const uint64_t seed : {1u, 2u}) {
    RandomDbSpec spec;
    spec.seed = seed;
    spec.num_users = 20;
    const ObjectDatabase db = BuildRandomDatabase(spec);
    const STPSQuery query{0.1, 0.3, 0.25};
    JoinStats seq_stats, par_stats;
    const auto expected = SPPJB(db, query, &seq_stats);
    const auto actual = SPPJBParallel(db, query, parallel, &par_stats);
    EXPECT_TRUE(SameResults(actual, expected, /*tolerance=*/0.0))
        << "threads=" << parallel.num_threads << " seed=" << seed;
    EXPECT_EQ(par_stats, seq_stats);
  }
}

TEST_P(ParallelJoinTest, SPPJCMatchesSequentialBitIdentical) {
  const ParallelOptions parallel{GetParam(), 0};
  for (const uint64_t seed : {1u, 2u}) {
    RandomDbSpec spec;
    spec.seed = seed;
    spec.num_users = 20;
    const ObjectDatabase db = BuildRandomDatabase(spec);
    const STPSQuery query{0.1, 0.3, 0.25};
    JoinStats seq_stats, par_stats;
    const auto expected = SPPJC(db, query, &seq_stats);
    const auto actual = SPPJCParallel(db, query, parallel, &par_stats);
    EXPECT_TRUE(SameResults(actual, expected, /*tolerance=*/0.0))
        << "threads=" << parallel.num_threads << " seed=" << seed;
    EXPECT_EQ(par_stats, seq_stats);
  }
}

TEST_P(ParallelJoinTest, SPPJDMatchesSequentialBitIdentical) {
  const ParallelOptions parallel{GetParam(), 0};
  for (const uint64_t seed : {1u, 2u}) {
    RandomDbSpec spec;
    spec.seed = seed;
    const ObjectDatabase db = BuildRandomDatabase(spec);
    const STPSQuery query{0.1, 0.3, 0.25};
    for (const PartitioningScheme scheme :
         {PartitioningScheme::kRTree, PartitioningScheme::kQuadTree}) {
      SPPJDOptions options;
      options.fanout = 16;
      options.partitioning = scheme;
      JoinStats seq_stats, par_stats;
      const auto expected = SPPJD(db, query, options, &seq_stats);
      const auto actual =
          SPPJDParallel(db, query, options, parallel, &par_stats);
      EXPECT_TRUE(SameResults(actual, expected, /*tolerance=*/0.0))
          << "threads=" << parallel.num_threads << " seed=" << seed;
      EXPECT_EQ(par_stats, seq_stats);
    }
  }
}

TEST_P(ParallelJoinTest, TopKMatchesSequentialBitIdentical) {
  const ParallelOptions parallel{GetParam(), 0};
  for (const uint64_t seed : {1u, 2u}) {
    RandomDbSpec spec;
    spec.seed = seed;
    const ObjectDatabase db = BuildRandomDatabase(spec);
    for (const size_t k : {size_t{1}, size_t{5}, size_t{40}}) {
      TopKQuery query;
      query.eps_loc = 0.1;
      query.eps_doc = 0.3;
      query.k = k;
      for (const TopKVariant variant :
           {TopKVariant::kF, TopKVariant::kS, TopKVariant::kP}) {
        const auto expected = TopKSTPSJoin(db, query, variant);
        const auto actual =
            TopKSTPSJoinParallel(db, query, variant, parallel);
        EXPECT_TRUE(SameResults(actual, expected, /*tolerance=*/0.0))
            << "threads=" << parallel.num_threads << " seed=" << seed
            << " k=" << k << " variant=" << static_cast<int>(variant);
      }
    }
  }
}

TEST_P(ParallelJoinTest, DeterministicAcrossRuns) {
  const ParallelOptions parallel{GetParam(), 0};
  const ObjectDatabase db = BuildRandomDatabase(RandomDbSpec{});
  const STPSQuery query{0.08, 0.4, 0.2};
  const auto first = SPPJFParallel(db, query, parallel);
  const auto second = SPPJFParallel(db, query, parallel);
  EXPECT_TRUE(SameResults(first, second, /*tolerance=*/0.0));
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelJoinTest,
                         ::testing::Values(1, 2, 8));

TEST(ParallelJoinTest, EmptyDatabase) {
  DatabaseBuilder builder;
  const ObjectDatabase db = std::move(builder).Build();
  EXPECT_TRUE(SPPJFParallel(db, {0.1, 0.3, 0.3}, 4).empty());
}

TEST(ParallelJoinTest, MoreThreadsThanUsers) {
  RandomDbSpec spec;
  spec.num_users = 3;
  const ObjectDatabase db = BuildRandomDatabase(spec);
  const STPSQuery query{0.2, 0.2, 0.1};
  EXPECT_TRUE(SameResults(SPPJFParallel(db, query, 16), SPPJF(db, query)));
}

TEST(ParallelJoinTest, QueryParallelOptionsRouteThroughRunSTPSJoin) {
  const ObjectDatabase db = BuildRandomDatabase(RandomDbSpec{});
  STPSQuery query{0.1, 0.3, 0.25};
  for (const JoinAlgorithm algorithm :
       {JoinAlgorithm::kSPPJC, JoinAlgorithm::kSPPJB, JoinAlgorithm::kSPPJF,
        JoinAlgorithm::kSPPJD}) {
    JoinOptions options;
    options.algorithm = algorithm;
    const auto expected = RunSTPSJoin(db, query, options);
    query.parallel = ParallelOptions{8, 2};
    const auto actual = RunSTPSJoin(db, query, options);
    query.parallel = ParallelOptions{};
    EXPECT_TRUE(SameResults(actual, expected, /*tolerance=*/0.0))
        << JoinAlgorithmName(algorithm);
  }
}

TEST(ParallelJoinTest, QueryParallelOptionsRouteThroughRunTopK) {
  const ObjectDatabase db = BuildRandomDatabase(RandomDbSpec{});
  TopKQuery query;
  query.eps_loc = 0.1;
  query.eps_doc = 0.3;
  query.k = 10;
  for (const TopKAlgorithm algorithm :
       {TopKAlgorithm::kF, TopKAlgorithm::kS, TopKAlgorithm::kP}) {
    const auto expected = RunTopKSTPSJoin(db, query, algorithm);
    query.parallel = ParallelOptions{8, 1};
    const auto actual = RunTopKSTPSJoin(db, query, algorithm);
    query.parallel = ParallelOptions{};
    EXPECT_TRUE(SameResults(actual, expected, /*tolerance=*/0.0))
        << TopKAlgorithmName(algorithm);
  }
}

// Regression for the candidate-cell dedup in the S-PPJ-F filter: the
// probing user's cells are processed in ascending order, but a
// candidate's supporting cells (their_cells) arrive interleaved across
// that outer loop, so a last-element check alone leaves duplicates and
// would inflate the sigma_bar count bound. Layout (eps_loc = 0.1, so
// cells are 0.1 wide): the candidate sits in cells (0,0) and (2,0); the
// prober's cell (1,0) pulls both in, then its cell (0,1) pulls (0,0) in
// again -> their_cells sequence (0,0), (2,0), (0,0).
TEST(ParallelJoinTest, InterleavedCandidateCellsAreDeduplicated) {
  DatabaseBuilder builder;
  const auto add = [&builder](const char* user, double x, double y,
                              std::vector<std::string> kws) {
    builder.AddObject(user, Point{x, y}, std::span<const std::string>(kws));
  };
  add("a", 0.05, 0.05, {"t1"});
  add("a", 0.25, 0.05, {"t1"});
  add("b", 0.15, 0.05, {"t1"});
  add("b", 0.05, 0.15, {"t1"});
  const ObjectDatabase db = std::move(builder).Build();
  const STPSQuery query{0.1, 0.5, 0.3};

  const auto expected = BruteForceSTPSJoin(db, query);
  JoinStats seq_stats;
  const auto sequential = SPPJF(db, query, &seq_stats);
  EXPECT_TRUE(SameResults(sequential, expected));
  EXPECT_EQ(seq_stats.pairs_candidate,
            seq_stats.pairs_pruned_count + seq_stats.pairs_verified);
  for (const int threads : {1, 2, 8}) {
    JoinStats par_stats;
    const auto parallel = SPPJFParallel(
        db, query, ParallelOptions{threads, 1}, &par_stats);
    EXPECT_TRUE(SameResults(parallel, sequential, /*tolerance=*/0.0));
    // Identical counters imply both sides saw the same deduplicated
    // supporting-cell sets (a missed dedup shifts pairs_pruned_count).
    EXPECT_EQ(par_stats, seq_stats) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace stps
