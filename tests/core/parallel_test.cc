#include "core/sppj_f_parallel.h"

#include <gtest/gtest.h>

#include "core/sppj_f.h"
#include "test_util.h"

namespace stps {
namespace {

using testing_util::BuildRandomDatabase;
using testing_util::RandomDbSpec;
using testing_util::SameResults;

class ParallelSPPJFTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelSPPJFTest, MatchesSequentialAcrossSeeds) {
  const int threads = GetParam();
  for (const uint64_t seed : {1u, 2u, 3u}) {
    RandomDbSpec spec;
    spec.seed = seed;
    const ObjectDatabase db = BuildRandomDatabase(spec);
    const STPSQuery query{0.1, 0.3, 0.25};
    EXPECT_TRUE(SameResults(SPPJFParallel(db, query, threads),
                            SPPJF(db, query)))
        << "threads=" << threads << " seed=" << seed;
  }
}

TEST_P(ParallelSPPJFTest, DeterministicAcrossRuns) {
  const int threads = GetParam();
  const ObjectDatabase db = BuildRandomDatabase(RandomDbSpec{});
  const STPSQuery query{0.08, 0.4, 0.2};
  const auto first = SPPJFParallel(db, query, threads);
  const auto second = SPPJFParallel(db, query, threads);
  EXPECT_TRUE(SameResults(first, second));
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelSPPJFTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(ParallelSPPJFTest, EmptyDatabase) {
  DatabaseBuilder builder;
  const ObjectDatabase db = std::move(builder).Build();
  EXPECT_TRUE(SPPJFParallel(db, {0.1, 0.3, 0.3}, 4).empty());
}

TEST(ParallelSPPJFTest, MoreThreadsThanUsers) {
  RandomDbSpec spec;
  spec.num_users = 3;
  const ObjectDatabase db = BuildRandomDatabase(spec);
  const STPSQuery query{0.2, 0.2, 0.1};
  EXPECT_TRUE(SameResults(SPPJFParallel(db, query, 16), SPPJF(db, query)));
}

}  // namespace
}  // namespace stps
