#include "core/topk.h"

#include <gtest/gtest.h>

#include "core/stpsjoin.h"
#include "test_util.h"

namespace stps {
namespace {

using testing_util::BuildRandomDatabase;
using testing_util::RandomDbSpec;
using testing_util::SameResults;

struct TopKParam {
  double eps_loc;
  double eps_doc;
  size_t k;
  uint64_t seed;
};

class TopKAlgorithmsTest : public ::testing::TestWithParam<TopKParam> {
 protected:
  ObjectDatabase MakeDb() const {
    RandomDbSpec spec;
    spec.seed = GetParam().seed;
    return BuildRandomDatabase(spec);
  }
  TopKQuery MakeQuery() const {
    const TopKParam p = GetParam();
    return {p.eps_loc, p.eps_doc, p.k};
  }
};

TEST_P(TopKAlgorithmsTest, VariantFMatchesBruteForce) {
  const ObjectDatabase db = MakeDb();
  const TopKQuery query = MakeQuery();
  EXPECT_TRUE(SameResults(TopKSPPJF(db, query), BruteForceTopK(db, query)));
}

TEST_P(TopKAlgorithmsTest, VariantSMatchesBruteForce) {
  const ObjectDatabase db = MakeDb();
  const TopKQuery query = MakeQuery();
  EXPECT_TRUE(SameResults(TopKSPPJS(db, query), BruteForceTopK(db, query)));
}

TEST_P(TopKAlgorithmsTest, VariantPMatchesBruteForce) {
  const ObjectDatabase db = MakeDb();
  const TopKQuery query = MakeQuery();
  EXPECT_TRUE(SameResults(TopKSPPJP(db, query), BruteForceTopK(db, query)));
}


TEST_P(TopKAlgorithmsTest, VariantDMatchesBruteForce) {
  const ObjectDatabase db = MakeDb();
  const TopKQuery query = MakeQuery();
  const auto expected = BruteForceTopK(db, query);
  for (const int fanout : {8, 32, 128}) {
    EXPECT_TRUE(SameResults(TopKSPPJD(db, query, fanout), expected))
        << "fanout=" << fanout;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TopKAlgorithmsTest,
    ::testing::Values(TopKParam{0.1, 0.3, 1, 1}, TopKParam{0.1, 0.3, 5, 2},
                      TopKParam{0.1, 0.3, 10, 3},
                      TopKParam{0.05, 0.5, 25, 4},
                      TopKParam{0.2, 0.25, 50, 5},
                      TopKParam{0.05, 0.4, 200, 6},  // k > #positive pairs
                      TopKParam{0.15, 0.6, 8, 7}));

TEST(TopKTest, ResultsAreSortedBestFirst) {
  const ObjectDatabase db = BuildRandomDatabase(RandomDbSpec{});
  const TopKQuery query{0.1, 0.3, 20};
  for (const auto variant :
       {TopKVariant::kF, TopKVariant::kS, TopKVariant::kP}) {
    const auto result = TopKSTPSJoin(db, query, variant);
    for (size_t i = 1; i < result.size(); ++i) {
      EXPECT_TRUE(TopKBetter(result[i - 1], result[i]));
    }
  }
}

TEST(TopKTest, KOneFindsTheGlobalBestPair) {
  RandomDbSpec spec;
  spec.seed = 99;
  const ObjectDatabase db = BuildRandomDatabase(spec);
  const TopKQuery query{0.1, 0.3, 1};
  const auto expected = BruteForceTopK(db, query);
  ASSERT_EQ(expected.size(), 1u);
  EXPECT_TRUE(SameResults(TopKSPPJF(db, query), expected));
  EXPECT_TRUE(SameResults(TopKSPPJP(db, query), expected));
}

TEST(TopKTest, UmbrellaDispatch) {
  const ObjectDatabase db = BuildRandomDatabase(RandomDbSpec{});
  const TopKQuery query{0.1, 0.3, 7};
  const auto expected = BruteForceTopK(db, query);
  for (const auto algorithm :
       {TopKAlgorithm::kBruteForce, TopKAlgorithm::kF, TopKAlgorithm::kS,
        TopKAlgorithm::kP}) {
    EXPECT_TRUE(SameResults(RunTopKSTPSJoin(db, query, algorithm), expected))
        << TopKAlgorithmName(algorithm);
  }
}

TEST(TopKTest, ScoresNeverExceedThoseOfSmallerK) {
  const ObjectDatabase db = BuildRandomDatabase(RandomDbSpec{});
  const auto top5 = TopKSPPJP(db, {0.1, 0.3, 5});
  const auto top10 = TopKSPPJP(db, {0.1, 0.3, 10});
  ASSERT_LE(top5.size(), top10.size());
  for (size_t i = 0; i < top5.size(); ++i) {
    EXPECT_EQ(top5[i].a, top10[i].a);
    EXPECT_EQ(top5[i].b, top10[i].b);
  }
}

}  // namespace
}  // namespace stps
