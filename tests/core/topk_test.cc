#include "core/topk.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <string>
#include <vector>

#include "core/stpsjoin.h"
#include "test_util.h"

namespace stps {
namespace {

using testing_util::BuildRandomDatabase;
using testing_util::RandomDbSpec;
using testing_util::SameResults;

struct TopKParam {
  double eps_loc;
  double eps_doc;
  size_t k;
  uint64_t seed;
};

class TopKAlgorithmsTest : public ::testing::TestWithParam<TopKParam> {
 protected:
  ObjectDatabase MakeDb() const {
    RandomDbSpec spec;
    spec.seed = GetParam().seed;
    return BuildRandomDatabase(spec);
  }
  TopKQuery MakeQuery() const {
    const TopKParam p = GetParam();
    return {p.eps_loc, p.eps_doc, p.k};
  }
};

TEST_P(TopKAlgorithmsTest, VariantFMatchesBruteForce) {
  const ObjectDatabase db = MakeDb();
  const TopKQuery query = MakeQuery();
  EXPECT_TRUE(SameResults(TopKSPPJF(db, query), BruteForceTopK(db, query)));
}

TEST_P(TopKAlgorithmsTest, VariantSMatchesBruteForce) {
  const ObjectDatabase db = MakeDb();
  const TopKQuery query = MakeQuery();
  EXPECT_TRUE(SameResults(TopKSPPJS(db, query), BruteForceTopK(db, query)));
}

TEST_P(TopKAlgorithmsTest, VariantPMatchesBruteForce) {
  const ObjectDatabase db = MakeDb();
  const TopKQuery query = MakeQuery();
  EXPECT_TRUE(SameResults(TopKSPPJP(db, query), BruteForceTopK(db, query)));
}


TEST_P(TopKAlgorithmsTest, VariantDMatchesBruteForce) {
  const ObjectDatabase db = MakeDb();
  const TopKQuery query = MakeQuery();
  const auto expected = BruteForceTopK(db, query);
  for (const int fanout : {8, 32, 128}) {
    EXPECT_TRUE(SameResults(TopKSPPJD(db, query, fanout), expected))
        << "fanout=" << fanout;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TopKAlgorithmsTest,
    ::testing::Values(TopKParam{0.1, 0.3, 1, 1}, TopKParam{0.1, 0.3, 5, 2},
                      TopKParam{0.1, 0.3, 10, 3},
                      TopKParam{0.05, 0.5, 25, 4},
                      TopKParam{0.2, 0.25, 50, 5},
                      TopKParam{0.05, 0.4, 200, 6},  // k > #positive pairs
                      TopKParam{0.15, 0.6, 8, 7}));

TEST(TopKTest, ResultsAreSortedBestFirst) {
  const ObjectDatabase db = BuildRandomDatabase(RandomDbSpec{});
  const TopKQuery query{0.1, 0.3, 20};
  for (const auto variant :
       {TopKVariant::kF, TopKVariant::kS, TopKVariant::kP}) {
    const auto result = TopKSTPSJoin(db, query, variant);
    for (size_t i = 1; i < result.size(); ++i) {
      EXPECT_TRUE(TopKBetter(result[i - 1], result[i]));
    }
  }
}

TEST(TopKTest, KOneFindsTheGlobalBestPair) {
  RandomDbSpec spec;
  spec.seed = 99;
  const ObjectDatabase db = BuildRandomDatabase(spec);
  const TopKQuery query{0.1, 0.3, 1};
  const auto expected = BruteForceTopK(db, query);
  ASSERT_EQ(expected.size(), 1u);
  EXPECT_TRUE(SameResults(TopKSPPJF(db, query), expected));
  EXPECT_TRUE(SameResults(TopKSPPJP(db, query), expected));
}

TEST(TopKTest, UmbrellaDispatch) {
  const ObjectDatabase db = BuildRandomDatabase(RandomDbSpec{});
  const TopKQuery query{0.1, 0.3, 7};
  const auto expected = BruteForceTopK(db, query);
  for (const auto algorithm :
       {TopKAlgorithm::kBruteForce, TopKAlgorithm::kF, TopKAlgorithm::kS,
        TopKAlgorithm::kP}) {
    EXPECT_TRUE(SameResults(RunTopKSTPSJoin(db, query, algorithm), expected))
        << TopKAlgorithmName(algorithm);
  }
}

// Regression for the tie-at-the-cut bug: with more than k pairs sharing
// the k-th score, every variant (sequential and parallel at any thread
// count) must resolve the tie identically — by the TopKBetter total order
// (score descending, then ascending ids) — instead of depending on which
// candidate reached the queue first, or on a float sigma-bar prune that
// killed score-exactly-equals-threshold candidates one ULP at a time.
TEST(TopKTest, TiedScoresStraddlingTheCutAreDeterministic) {
  DatabaseBuilder builder;
  const std::vector<std::string> shared_a = {"alpha", "beta"};
  const std::vector<std::string> shared_b = {"gamma", "delta"};
  // Group A: 4 single-object users at the same location with identical
  // docs. Every within-group pair scores sigma = 1 (6 pairs).
  for (int i = 0; i < 4; ++i) {
    builder.AddObject("a" + std::to_string(i), Point{0.0, 0.0},
                      std::span<const std::string>(shared_a));
  }
  // Group B: 6 two-object users. The first object matches across the
  // group (duplicate location, identical doc); the second never matches
  // anything (far away, unique token). Every within-group pair scores
  // sigma = 2/4 = 1/2 (15 pairs) — a 15-way tie.
  for (int i = 0; i < 6; ++i) {
    const std::string user = "b" + std::to_string(i);
    builder.AddObject(user, Point{10.0, 10.0},
                      std::span<const std::string>(shared_b));
    const std::vector<std::string> unique = {"only" + std::to_string(i)};
    builder.AddObject(user,
                      Point{20.0 + 5.0 * static_cast<double>(i), -30.0},
                      std::span<const std::string>(unique));
  }
  const ObjectDatabase db = std::move(builder).Build();
  // k = 10 cuts through the tied band: 6 pairs at 1.0 plus the first 4 of
  // the 15 pairs at 0.5.
  const TopKQuery query{0.1, 0.5, 10};
  const auto expected = BruteForceTopK(db, query);
  ASSERT_EQ(expected.size(), 10u);
  EXPECT_DOUBLE_EQ(expected[5].score, 1.0);
  EXPECT_DOUBLE_EQ(expected[6].score, 0.5);
  EXPECT_DOUBLE_EQ(expected[9].score, 0.5);
  for (const auto variant :
       {TopKVariant::kF, TopKVariant::kS, TopKVariant::kP}) {
    EXPECT_TRUE(SameResults(TopKSTPSJoin(db, query, variant), expected));
    for (const int threads : {1, 2, 4, 8}) {
      const ParallelOptions parallel{threads, 0};
      EXPECT_TRUE(SameResults(
          TopKSTPSJoinParallel(db, query, variant, parallel), expected))
          << "threads=" << threads;
    }
  }
  for (const int fanout : {8, 128}) {
    EXPECT_TRUE(SameResults(TopKSPPJD(db, query, fanout), expected))
        << "fanout=" << fanout;
  }
  // k = 8 also lands inside the tie; k = 25 clears it (6 + 15 = 21 pairs
  // with sigma > 0 in total).
  for (const size_t k : {8u, 25u}) {
    const TopKQuery q{0.1, 0.5, k};
    const auto want = BruteForceTopK(db, q);
    EXPECT_EQ(want.size(), std::min<size_t>(k, 21));
    for (const auto variant :
         {TopKVariant::kF, TopKVariant::kS, TopKVariant::kP}) {
      EXPECT_TRUE(SameResults(TopKSTPSJoin(db, q, variant), want));
      const ParallelOptions parallel{4, 0};
      EXPECT_TRUE(SameResults(TopKSTPSJoinParallel(db, q, variant, parallel),
                              want));
    }
  }
}

TEST(TopKTest, ScoresNeverExceedThoseOfSmallerK) {
  const ObjectDatabase db = BuildRandomDatabase(RandomDbSpec{});
  const auto top5 = TopKSPPJP(db, {0.1, 0.3, 5});
  const auto top10 = TopKSPPJP(db, {0.1, 0.3, 10});
  ASSERT_LE(top5.size(), top10.size());
  for (size_t i = 0; i < top5.size(); ++i) {
    EXPECT_EQ(top5[i].a, top10[i].a);
    EXPECT_EQ(top5[i].b, top10[i].b);
  }
}

}  // namespace
}  // namespace stps
