// Tests for the temporal extension (the paper's future-work dimension):
// objects carry timestamps and a finite eps_time restricts matches.

#include <gtest/gtest.h>

#include "core/stpsjoin.h"
#include "datagen/generator.h"
#include "datagen/presets.h"
#include "test_util.h"

namespace stps {
namespace {

using testing_util::SameResults;

ObjectDatabase TimedDb() {
  DatabaseBuilder builder;
  const std::vector<std::string> kws = {"coffee", "park"};
  const auto span_kws = std::span<const std::string>(kws);
  // Same place, same words, different days.
  builder.AddObject("early", Point{0.5, 0.5}, span_kws, /*time=*/1.0);
  builder.AddObject("early", Point{0.51, 0.5}, span_kws, /*time=*/2.0);
  builder.AddObject("late", Point{0.5, 0.51}, span_kws, /*time=*/30.0);
  builder.AddObject("late", Point{0.51, 0.51}, span_kws, /*time=*/31.0);
  builder.AddObject("both", Point{0.5, 0.5}, span_kws, /*time=*/1.5);
  builder.AddObject("both", Point{0.5, 0.5}, span_kws, /*time=*/30.5);
  return std::move(builder).Build();
}

TEST(TemporalMatchTest, PredicateRespectsEpsTime) {
  const ObjectDatabase db = TimedDb();
  const STObject& early = db.UserObjects(0)[0];  // t=1
  const STObject& late = db.UserObjects(1)[0];   // t=30
  MatchThresholds t{0.1, 0.5};
  EXPECT_TRUE(ObjectsMatch(early, late, t));  // eps_time = inf by default
  t.eps_time = 5.0;
  EXPECT_FALSE(ObjectsMatch(early, late, t));
  t.eps_time = 29.0;
  EXPECT_TRUE(ObjectsMatch(early, late, t));
}

TEST(TemporalJoinTest, FiniteEpsTimeSplitsTheUsers) {
  const ObjectDatabase db = TimedDb();
  // Without the temporal dimension all three users pair up.
  STPSQuery query{0.1, 0.5, 0.5};
  EXPECT_EQ(RunSTPSJoin(db, query).size(), 3u);
  // With eps_time = 5, "early" and "late" no longer match; "both"
  // still matches each of them with half of its objects.
  query.eps_time = 5.0;
  const auto result = RunSTPSJoin(db, query);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(db.UserName(result[0].a), "early");
  EXPECT_EQ(db.UserName(result[0].b), "both");
  EXPECT_EQ(db.UserName(result[1].a), "late");
  EXPECT_EQ(db.UserName(result[1].b), "both");
}

TEST(TemporalJoinTest, AllAlgorithmsAgreeUnderEpsTime) {
  DatasetSpec spec = PresetSpec(DatasetKind::kTwitterLike, 30, 17);
  spec.max_objects_per_user = 40;
  const ObjectDatabase db = GenerateDataset(spec);
  STPSQuery query = DefaultQuery(DatasetKind::kTwitterLike);
  query.eps_loc *= 10;
  query.eps_doc = 0.2;
  query.eps_u = 0.05;
  query.eps_time = spec.time_horizon / 10;
  const auto expected = BruteForceSTPSJoin(db, query);
  for (const JoinAlgorithm algorithm :
       {JoinAlgorithm::kSPPJC, JoinAlgorithm::kSPPJB, JoinAlgorithm::kSPPJF,
        JoinAlgorithm::kSPPJD}) {
    JoinOptions options;
    options.algorithm = algorithm;
    EXPECT_TRUE(SameResults(RunSTPSJoin(db, query, options), expected))
        << JoinAlgorithmName(algorithm);
  }
}

TEST(TemporalJoinTest, TighterEpsTimeShrinksTheResult) {
  const DatasetSpec spec = PresetSpec(DatasetKind::kGeoTextLike, 60, 23);
  const ObjectDatabase db = GenerateDataset(spec);
  STPSQuery query = DefaultQuery(DatasetKind::kGeoTextLike);
  query.eps_u = 0.1;
  const size_t unlimited = BruteForceSTPSJoin(db, query).size();
  query.eps_time = spec.time_horizon / 50;
  const size_t limited = BruteForceSTPSJoin(db, query).size();
  EXPECT_LE(limited, unlimited);
}

TEST(TemporalTopKTest, VariantsAgreeUnderEpsTime) {
  DatasetSpec spec = PresetSpec(DatasetKind::kGeoTextLike, 40, 29);
  const ObjectDatabase db = GenerateDataset(spec);
  TopKQuery query{0.01, 0.2, 8};
  query.eps_time = spec.time_horizon / 4;
  const auto expected = BruteForceTopK(db, query);
  for (const TopKAlgorithm algorithm :
       {TopKAlgorithm::kF, TopKAlgorithm::kS, TopKAlgorithm::kP}) {
    EXPECT_TRUE(SameResults(RunTopKSTPSJoin(db, query, algorithm), expected))
        << TopKAlgorithmName(algorithm);
  }
}

TEST(TemporalGeneratorTest, TimestampsFillTheHorizon) {
  DatasetSpec spec = PresetSpec(DatasetKind::kTwitterLike, 30, 37);
  spec.time_horizon = 100.0;
  const ObjectDatabase db = GenerateDataset(spec);
  double min_t = 1e18, max_t = -1e18;
  for (const STObject& o : db.AllObjects()) {
    min_t = std::min(min_t, o.time);
    max_t = std::max(max_t, o.time);
  }
  EXPECT_LT(min_t, 20.0);
  EXPECT_GT(max_t, 80.0);
}

}  // namespace
}  // namespace stps
