#include <algorithm>

#include <gtest/gtest.h>

#include "core/sppj_d.h"
#include "core/user_grid.h"
#include "test_util.h"
#include "text/token_set.h"

namespace stps {
namespace {

using testing_util::BuildRandomDatabase;
using testing_util::RandomDbSpec;

class LeafIndexTest : public ::testing::TestWithParam<int> {};

TEST_P(LeafIndexTest, UserLeavesPartitionTheUserObjects) {
  const int fanout = GetParam();
  const ObjectDatabase db = BuildRandomDatabase(RandomDbSpec{});
  const LeafPartitionIndex index(db, 0.05, fanout);
  EXPECT_GT(index.num_leaves(), 0u);
  for (UserId u = 0; u < db.num_users(); ++u) {
    size_t total = 0;
    int64_t prev = -1;
    for (const UserPartition& leaf : index.UserLeaves(u)) {
      EXPECT_GT(leaf.id, prev);
      prev = leaf.id;
      EXPECT_LT(static_cast<size_t>(leaf.id), index.num_leaves());
      EXPECT_FALSE(leaf.objects.empty());
      for (const ObjectRef& ref : leaf.objects) {
        EXPECT_EQ(ref.object->user, u);
        EXPECT_EQ(db.LocalIndex(*ref.object), ref.local);
      }
      total += leaf.objects.size();
    }
    EXPECT_EQ(total, db.UserObjectCount(u));
  }
}

TEST_P(LeafIndexTest, TokenUsersAreSortedAndComplete) {
  const int fanout = GetParam();
  const ObjectDatabase db = BuildRandomDatabase(RandomDbSpec{});
  const LeafPartitionIndex index(db, 0.05, fanout);
  for (UserId u = 0; u < db.num_users(); ++u) {
    for (const UserPartition& leaf : index.UserLeaves(u)) {
      const TokenVector tokens =
          DistinctTokens(std::span<const ObjectRef>(leaf.objects));
      for (const TokenId t : tokens) {
        const std::vector<UserId>* users =
            index.TokenUsers(static_cast<uint32_t>(leaf.id), t);
        ASSERT_NE(users, nullptr);
        EXPECT_TRUE(std::is_sorted(users->begin(), users->end()));
        EXPECT_TRUE(std::binary_search(users->begin(), users->end(), u));
      }
    }
  }
}

TEST_P(LeafIndexTest, AdjacencyCoversEveryCloseObjectPair) {
  const int fanout = GetParam();
  const double eps_loc = 0.06;
  const ObjectDatabase db = BuildRandomDatabase(RandomDbSpec{});
  const LeafPartitionIndex index(db, eps_loc, fanout);
  // Locate each object's leaf.
  std::vector<uint32_t> leaf_of(db.num_objects(), 0);
  for (UserId u = 0; u < db.num_users(); ++u) {
    for (const UserPartition& leaf : index.UserLeaves(u)) {
      for (const ObjectRef& ref : leaf.objects) {
        leaf_of[ref.object->id] = static_cast<uint32_t>(leaf.id);
      }
    }
  }
  // Every spatially-close object pair must live in adjacent leaves, and
  // both objects must lie inside the intersection of the extended MBRs
  // (the region PPJ-D restricts its joins to).
  for (ObjectId a = 0; a < db.num_objects(); ++a) {
    for (ObjectId b = a + 1; b < db.num_objects(); ++b) {
      const STObject& oa = db.object(a);
      const STObject& ob = db.object(b);
      if (!WithinDistance(oa.loc, ob.loc, eps_loc)) continue;
      const uint32_t la = leaf_of[a], lb = leaf_of[b];
      const auto& relevant = index.RelevantLeaves(la);
      ASSERT_TRUE(std::binary_search(relevant.begin(), relevant.end(), lb))
          << "close objects in non-adjacent leaves";
      const Rect box =
          index.ExtendedMbr(la).Intersection(index.ExtendedMbr(lb));
      EXPECT_TRUE(box.Contains(oa.loc));
      EXPECT_TRUE(box.Contains(ob.loc));
    }
  }
}

TEST_P(LeafIndexTest, PPJDPairEqualsExactSigma) {
  const int fanout = GetParam();
  const ObjectDatabase db = BuildRandomDatabase(RandomDbSpec{});
  const MatchThresholds t{0.06, 0.3};
  const LeafPartitionIndex index(db, t.eps_loc, fanout);
  for (UserId a = 0; a < 15 && a < db.num_users(); ++a) {
    for (UserId b = a + 1; b < 15 && b < db.num_users(); ++b) {
      const double expected =
          ExactSigma(db.UserObjects(a), db.UserObjects(b), t);
      const size_t matched =
          ExactSigmaMatched(db.UserObjects(a), db.UserObjects(b), t);
      const size_t total = db.UserObjectCount(a) + db.UserObjectCount(b);
      const double unbounded =
          PPJDPair(index.UserLeaves(a), db.UserObjectCount(a),
                   index.UserLeaves(b), db.UserObjectCount(b), index, t,
                   /*eps_u=*/0.0);
      ASSERT_DOUBLE_EQ(unbounded, expected);
      // Bounded: exact when the pair truly meets eps_u, pruned to 0
      // otherwise. The decision is the exact counting predicate — a
      // rounded-quotient oracle (expected >= eps_u) would be wrong when
      // matched/total rounds up across the threshold (e.g. sigma = 1/5
      // rounds to a double above 0.2, yet 1/5 < the double 0.2).
      for (const double eps_u : {0.2, 0.5}) {
        const double bounded =
            PPJDPair(index.UserLeaves(a), db.UserObjectCount(a),
                     index.UserLeaves(b), db.UserObjectCount(b), index, t,
                     eps_u);
        if (SigmaAtLeast(matched, total, eps_u)) {
          ASSERT_DOUBLE_EQ(bounded, expected);
        } else {
          ASSERT_EQ(bounded, 0.0);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Fanouts, LeafIndexTest,
                         ::testing::Values(4, 16, 64, 200));

TEST(SpatioTextualGridIndexTest, TokenProbesFindIndexedUsers) {
  const ObjectDatabase db = BuildRandomDatabase(RandomDbSpec{});
  const UserGrid grid(db, 0.05);
  SpatioTextualGridIndex index;
  // Index the first half of the users.
  const UserId half = static_cast<UserId>(db.num_users() / 2);
  for (UserId u = 0; u < half; ++u) {
    index.AddUser(u, grid.UserCells(u));
  }
  // Every indexed (cell, token, user) is findable; none of the unindexed
  // users appear anywhere.
  for (UserId u = 0; u < db.num_users(); ++u) {
    for (const UserPartition& cell : grid.UserCells(u)) {
      EXPECT_TRUE(index.CellOccupied(cell.id) || u >= half);
      const TokenVector tokens =
          DistinctTokens(std::span<const ObjectRef>(cell.objects));
      for (const TokenId t : tokens) {
        const std::vector<UserId>* users = index.TokenUsers(cell.id, t);
        if (u < half) {
          ASSERT_NE(users, nullptr);
          EXPECT_NE(std::find(users->begin(), users->end(), u),
                    users->end());
        } else if (users != nullptr) {
          EXPECT_EQ(std::find(users->begin(), users->end(), u),
                    users->end());
        }
      }
    }
  }
  EXPECT_EQ(index.TokenUsers(/*cell=*/-1234567, /*t=*/0), nullptr);
}

}  // namespace
}  // namespace stps
