// Degenerate and boundary configurations for the STPSJoin algorithms:
// single-cell worlds, identical users, thin extents, extreme thresholds.
// Every algorithm must agree with the brute-force reference on all of
// them.

#include <gtest/gtest.h>

#include "core/stpsjoin.h"
#include "core/topk.h"
#include "test_util.h"

namespace stps {
namespace {

using testing_util::SameResults;

void ExpectAllAlgorithmsAgree(const ObjectDatabase& db,
                              const STPSQuery& query, const char* label) {
  const auto expected = BruteForceSTPSJoin(db, query);
  for (const JoinAlgorithm algorithm :
       {JoinAlgorithm::kSPPJC, JoinAlgorithm::kSPPJB, JoinAlgorithm::kSPPJF,
        JoinAlgorithm::kSPPJD}) {
    JoinOptions options;
    options.algorithm = algorithm;
    options.rtree_fanout = 8;
    EXPECT_TRUE(SameResults(RunSTPSJoin(db, query, options), expected))
        << label << " / " << JoinAlgorithmName(algorithm);
  }
}

ObjectDatabase BuildWith(
    const std::vector<std::tuple<const char*, double, double,
                                 std::vector<std::string>>>& rows) {
  DatabaseBuilder builder;
  for (const auto& [user, x, y, kws] : rows) {
    builder.AddObject(user, Point{x, y},
                      std::span<const std::string>(kws));
  }
  return std::move(builder).Build();
}

TEST(EdgeCaseTest, AllObjectsInOneCell) {
  // World smaller than one eps_loc cell: every pair of objects is a
  // spatial candidate.
  const ObjectDatabase db = BuildWith({
      {"a", 0.001, 0.001, {"x", "y"}},
      {"a", 0.002, 0.002, {"z"}},
      {"b", 0.001, 0.002, {"x", "y"}},
      {"b", 0.003, 0.001, {"w"}},
      {"c", 0.002, 0.001, {"x", "y"}},
  });
  ExpectAllAlgorithmsAgree(db, {1.0, 0.5, 0.4}, "one cell");
}

TEST(EdgeCaseTest, IdenticalUsers) {
  const std::vector<std::string> kws = {"same", "tags"};
  DatabaseBuilder builder;
  for (const char* user : {"a", "b", "c", "d"}) {
    builder.AddObject(user, Point{0.4, 0.4},
                      std::span<const std::string>(kws));
    builder.AddObject(user, Point{0.6, 0.6},
                      std::span<const std::string>(kws));
  }
  const ObjectDatabase db = std::move(builder).Build();
  const STPSQuery query{0.05, 0.9, 0.99};
  const auto result = RunSTPSJoin(db, query);
  EXPECT_EQ(result.size(), 6u);  // C(4,2), all with sigma = 1
  for (const auto& pair : result) {
    EXPECT_DOUBLE_EQ(pair.score, 1.0);
  }
  ExpectAllAlgorithmsAgree(db, query, "identical users");
}

TEST(EdgeCaseTest, SingleUserHasNoPairs) {
  const ObjectDatabase db = BuildWith({
      {"only", 0.1, 0.1, {"a"}},
      {"only", 0.2, 0.2, {"b"}},
  });
  const STPSQuery query{0.5, 0.1, 0.1};
  EXPECT_TRUE(RunSTPSJoin(db, query).empty());
  EXPECT_TRUE(RunTopKSTPSJoin(db, {0.5, 0.1, 5}).empty());
}

TEST(EdgeCaseTest, OneObjectPerUser) {
  const ObjectDatabase db = BuildWith({
      {"a", 0.10, 0.10, {"cafe", "wifi"}},
      {"b", 0.11, 0.10, {"cafe", "wifi"}},
      {"c", 0.90, 0.90, {"cafe", "wifi"}},
      {"d", 0.90, 0.91, {"gym"}},
  });
  const STPSQuery query{0.05, 0.9, 0.9};
  const auto result = RunSTPSJoin(db, query);
  ASSERT_EQ(result.size(), 1u);  // only a-b: near and textually identical
  EXPECT_EQ(db.UserName(result[0].a), "a");
  EXPECT_EQ(db.UserName(result[0].b), "b");
  ExpectAllAlgorithmsAgree(db, query, "one object per user");
}

TEST(EdgeCaseTest, ThinHorizontalWorld) {
  // All objects on a line: the grid degenerates to a single row, which
  // exercises the PPJ-B parity traversal's single-row path.
  DatabaseBuilder builder;
  const std::vector<std::string> kws = {"line"};
  for (int i = 0; i < 20; ++i) {
    builder.AddObject(i % 2 == 0 ? "even" : "odd",
                      Point{0.05 * i, 0.0},
                      std::span<const std::string>(kws));
  }
  const ObjectDatabase db = std::move(builder).Build();
  for (const double eps_loc : {0.01, 0.05, 0.2, 2.0}) {
    ExpectAllAlgorithmsAgree(db, {eps_loc, 0.5, 0.3}, "thin world");
  }
}

TEST(EdgeCaseTest, ThinVerticalWorld) {
  DatabaseBuilder builder;
  const std::vector<std::string> kws = {"column"};
  for (int i = 0; i < 20; ++i) {
    builder.AddObject(i % 3 == 0 ? "u0" : (i % 3 == 1 ? "u1" : "u2"),
                      Point{0.0, 0.07 * i},
                      std::span<const std::string>(kws));
  }
  const ObjectDatabase db = std::move(builder).Build();
  for (const double eps_loc : {0.02, 0.08, 0.5}) {
    ExpectAllAlgorithmsAgree(db, {eps_loc, 0.5, 0.2}, "vertical world");
  }
}

TEST(EdgeCaseTest, AllObjectsAtTheSamePoint) {
  DatabaseBuilder builder;
  for (int u = 0; u < 5; ++u) {
    for (int i = 0; i < 4; ++i) {
      const std::vector<std::string> kws = {"p" + std::to_string(i)};
      builder.AddObject("u" + std::to_string(u), Point{0.5, 0.5},
                        std::span<const std::string>(kws));
    }
  }
  const ObjectDatabase db = std::move(builder).Build();
  ExpectAllAlgorithmsAgree(db, {0.001, 0.9, 0.9}, "same point");
  // Everyone posts the same keyword set at the same spot: all pairs at
  // sigma 1.
  const auto result = RunSTPSJoin(db, {0.001, 0.9, 0.9});
  EXPECT_EQ(result.size(), 10u);
}

TEST(EdgeCaseTest, ExactMatchThresholds) {
  // eps_doc = 1 requires identical token sets; eps_u = 1 requires every
  // object matched.
  const ObjectDatabase db = BuildWith({
      {"a", 0.1, 0.1, {"x"}},
      {"a", 0.2, 0.2, {"y"}},
      {"b", 0.1, 0.1, {"x"}},
      {"b", 0.2, 0.2, {"y"}},
      {"c", 0.1, 0.1, {"x"}},
      {"c", 0.2, 0.2, {"y", "extra"}},
  });
  const STPSQuery query{0.01, 1.0, 1.0};
  const auto result = RunSTPSJoin(db, query);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(db.UserName(result[0].a), "a");
  EXPECT_EQ(db.UserName(result[0].b), "b");
  ExpectAllAlgorithmsAgree(db, query, "exact thresholds");
}

TEST(EdgeCaseTest, EpsLocLargerThanWorld) {
  const ObjectDatabase db = BuildWith({
      {"a", 0.0, 0.0, {"k"}},
      {"b", 1.0, 1.0, {"k"}},
      {"c", 0.5, 0.5, {"other"}},
  });
  // Spatial threshold covers everything; textual decides.
  const STPSQuery query{10.0, 0.9, 0.9};
  const auto result = RunSTPSJoin(db, query);
  ASSERT_EQ(result.size(), 1u);
  ExpectAllAlgorithmsAgree(db, query, "huge eps_loc");
}

TEST(EdgeCaseTest, TopKOnTinyDatabase) {
  const ObjectDatabase db = BuildWith({
      {"a", 0.1, 0.1, {"x"}},
      {"b", 0.1, 0.1, {"x"}},
  });
  const TopKQuery query{0.01, 0.5, 10};
  for (const TopKAlgorithm algorithm :
       {TopKAlgorithm::kF, TopKAlgorithm::kS, TopKAlgorithm::kP}) {
    const auto result = RunTopKSTPSJoin(db, query, algorithm);
    ASSERT_EQ(result.size(), 1u) << TopKAlgorithmName(algorithm);
    EXPECT_DOUBLE_EQ(result[0].score, 1.0);
  }
  EXPECT_EQ(TopKSPPJD(db, query, 4).size(), 1u);
}

TEST(EdgeCaseTest, UsersWithDisjointVocabulariesNeverPair) {
  DatabaseBuilder builder;
  for (int u = 0; u < 6; ++u) {
    for (int i = 0; i < 3; ++i) {
      const std::vector<std::string> kws = {"tok_u" + std::to_string(u)};
      builder.AddObject("u" + std::to_string(u),
                        Point{0.5 + 0.001 * i, 0.5},
                        std::span<const std::string>(kws));
    }
  }
  const ObjectDatabase db = std::move(builder).Build();
  const STPSQuery query{0.1, 0.1, 0.1};
  EXPECT_TRUE(RunSTPSJoin(db, query).empty());
  EXPECT_TRUE(RunTopKSTPSJoin(db, {0.1, 0.1, 5}).empty());
}

}  // namespace
}  // namespace stps
