#include "core/database.h"

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "spatial/batch.h"
#include "text/token_set.h"

namespace stps {
namespace {

ObjectDatabase SmallDb() {
  DatabaseBuilder builder;
  const auto add = [&builder](const char* user, double x, double y,
                              std::vector<std::string> kws) {
    builder.AddObject(user, Point{x, y}, std::span<const std::string>(kws));
  };
  add("alice", 1, 2, {"coffee", "park"});
  add("bob", 3, 4, {"coffee"});
  add("alice", 5, 6, {"park", "park", "dog"});  // duplicate keyword
  add("carol", 7, 8, {"coffee", "dog"});
  return std::move(builder).Build();
}

TEST(DatabaseBuilderTest, GroupsObjectsPerUser) {
  const ObjectDatabase db = SmallDb();
  EXPECT_EQ(db.num_users(), 3u);
  EXPECT_EQ(db.num_objects(), 4u);
  EXPECT_EQ(db.UserName(0), "alice");
  EXPECT_EQ(db.UserName(1), "bob");
  EXPECT_EQ(db.UserName(2), "carol");
  EXPECT_EQ(db.UserObjectCount(0), 2u);
  EXPECT_EQ(db.UserObjectCount(1), 1u);
  EXPECT_EQ(db.UserObjectCount(2), 1u);
  // Alice's objects are Z-ordered within the user; for these coordinates
  // the Morton keys ascend with the insertion order.
  const auto alice = db.UserObjects(0);
  EXPECT_EQ(alice[0].loc, (Point{1, 2}));
  EXPECT_EQ(alice[1].loc, (Point{5, 6}));
}

TEST(DatabaseBuilderTest, ObjectIdsAreDenseSlots) {
  const ObjectDatabase db = SmallDb();
  for (ObjectId id = 0; id < db.num_objects(); ++id) {
    EXPECT_EQ(db.object(id).id, id);
  }
  // LocalIndex addresses the position within the user span.
  for (UserId u = 0; u < db.num_users(); ++u) {
    const auto objects = db.UserObjects(u);
    for (uint32_t i = 0; i < objects.size(); ++i) {
      EXPECT_EQ(db.LocalIndex(objects[i]), i);
    }
  }
}

TEST(DatabaseBuilderTest, DuplicateKeywordsCollapse) {
  const ObjectDatabase db = SmallDb();
  const auto alice = db.UserObjects(0);
  EXPECT_EQ(alice[1].doc.size(), 2u);  // park, dog
}

TEST(DatabaseBuilderTest, TokenIdsFollowDocumentFrequencyOrder) {
  const ObjectDatabase db = SmallDb();
  const Dictionary& dict = db.dictionary();
  // df: coffee=3, park=2, dog=2.
  TokenId coffee, park, dog;
  ASSERT_TRUE(dict.Lookup("coffee", &coffee));
  ASSERT_TRUE(dict.Lookup("park", &park));
  ASSERT_TRUE(dict.Lookup("dog", &dog));
  EXPECT_EQ(dict.Frequency(coffee), 3u);
  EXPECT_EQ(dict.Frequency(park), 2u);
  EXPECT_EQ(dict.Frequency(dog), 2u);
  EXPECT_GT(coffee, park);
  EXPECT_GT(coffee, dog);
  // Every stored doc is a canonical (sorted unique) token set.
  for (const STObject& o : db.AllObjects()) {
    EXPECT_TRUE(IsNormalizedTokenSet(o.doc));
  }
}

TEST(DatabaseBuilderTest, BoundsCoverAllObjects) {
  const ObjectDatabase db = SmallDb();
  EXPECT_EQ(db.bounds(), (Rect{1, 2, 7, 8}));
  for (const STObject& o : db.AllObjects()) {
    EXPECT_TRUE(db.bounds().Contains(o.loc));
  }
}

// A larger scattered database for the layout tests below.
ObjectDatabase ScatteredDb() {
  DatabaseBuilder builder;
  uint64_t state = 12345;
  const auto next = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };
  for (int i = 0; i < 60; ++i) {
    const std::string user = "u" + std::to_string(next() % 7);
    const Point loc{static_cast<double>(next() % 1000) / 10.0,
                    static_cast<double>(next() % 1000) / 10.0};
    const std::vector<std::string> kws = {"k" + std::to_string(next() % 9)};
    builder.AddObject(user, loc, std::span<const std::string>(kws));
  }
  return std::move(builder).Build();
}

TEST(DatabaseLayoutTest, SoAMirrorsMatchObjectSlots) {
  const ObjectDatabase db = ScatteredDb();
  ASSERT_EQ(db.xs().size(), db.num_objects());
  ASSERT_EQ(db.ys().size(), db.num_objects());
  ASSERT_EQ(db.users().size(), db.num_objects());
  ASSERT_EQ(db.sigs().size(), db.num_objects());
  for (ObjectId id = 0; id < db.num_objects(); ++id) {
    const STObject& o = db.object(id);
    EXPECT_EQ(db.xs()[id], o.loc.x);
    EXPECT_EQ(db.ys()[id], o.loc.y);
    EXPECT_EQ(db.users()[id], o.user);
    EXPECT_EQ(db.sigs()[id], o.sig);
  }
}

TEST(DatabaseLayoutTest, SlotsAreZOrderedWithinEachUser) {
  const ObjectDatabase db = ScatteredDb();
  for (UserId u = 0; u < db.num_users(); ++u) {
    const auto objects = db.UserObjects(u);
    for (size_t i = 1; i < objects.size(); ++i) {
      const uint64_t prev = ZOrderKey(db.bounds(), objects[i - 1].loc);
      const uint64_t cur = ZOrderKey(db.bounds(), objects[i].loc);
      EXPECT_LE(prev, cur) << "user " << u << " slot " << i;
      if (prev == cur) {
        // Ties keep insertion order (the sort is stable).
        EXPECT_LT(db.insertion_order()[objects[i - 1].id],
                  db.insertion_order()[objects[i].id]);
      }
    }
  }
}

TEST(DatabaseLayoutTest, InsertionOrderIsAPermutation) {
  const ObjectDatabase db = ScatteredDb();
  const auto order = db.insertion_order();
  ASSERT_EQ(order.size(), db.num_objects());
  std::vector<bool> seen(order.size(), false);
  for (const uint32_t seq : order) {
    ASSERT_LT(seq, order.size());
    EXPECT_FALSE(seen[seq]);  // bijective
    seen[seq] = true;
  }
}

TEST(DatabaseBuilderTest, EmptyBuilderYieldsEmptyDatabase) {
  DatabaseBuilder builder;
  const ObjectDatabase db = std::move(builder).Build();
  EXPECT_EQ(db.num_users(), 0u);
  EXPECT_EQ(db.num_objects(), 0u);
}

TEST(DatabaseBuilderTest, FindUserInvertsUserName) {
  const ObjectDatabase db = SmallDb();
  for (UserId u = 0; u < db.num_users(); ++u) {
    UserId found = db.num_users();
    ASSERT_TRUE(db.FindUser(db.UserName(u), &found)) << db.UserName(u);
    EXPECT_EQ(found, u);
  }
  UserId found = 0;
  EXPECT_FALSE(db.FindUser("nosuchuser", &found));
}

TEST(DatabaseBuilderTest, StringViewOverload) {
  DatabaseBuilder builder;
  const std::vector<std::string_view> kws = {"a", "b"};
  builder.AddObject("u", Point{0, 0},
                    std::span<const std::string_view>(kws));
  const ObjectDatabase db = std::move(builder).Build();
  EXPECT_EQ(db.num_objects(), 1u);
  EXPECT_EQ(db.object(0).doc.size(), 2u);
}

}  // namespace
}  // namespace stps
