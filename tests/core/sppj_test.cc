#include <gtest/gtest.h>

#include "core/sppj_b.h"
#include "core/sppj_c.h"
#include "core/sppj_d.h"
#include "core/sppj_f.h"
#include "core/stpsjoin.h"
#include "test_util.h"

namespace stps {
namespace {

using testing_util::BuildFigure1Database;
using testing_util::BuildRandomDatabase;
using testing_util::RandomDbSpec;
using testing_util::SameResults;

struct JoinParam {
  double eps_loc;
  double eps_doc;
  double eps_u;
  uint64_t seed;
};

class STPSJoinAlgorithmsTest : public ::testing::TestWithParam<JoinParam> {
 protected:
  ObjectDatabase MakeDb() const {
    RandomDbSpec spec;
    spec.seed = GetParam().seed;
    return BuildRandomDatabase(spec);
  }
  STPSQuery MakeQuery() const {
    const JoinParam p = GetParam();
    return {p.eps_loc, p.eps_doc, p.eps_u};
  }
};

TEST_P(STPSJoinAlgorithmsTest, SPPJCMatchesBruteForce) {
  const ObjectDatabase db = MakeDb();
  const STPSQuery query = MakeQuery();
  EXPECT_TRUE(SameResults(SPPJC(db, query), BruteForceSTPSJoin(db, query)));
}

TEST_P(STPSJoinAlgorithmsTest, SPPJBMatchesBruteForce) {
  const ObjectDatabase db = MakeDb();
  const STPSQuery query = MakeQuery();
  EXPECT_TRUE(SameResults(SPPJB(db, query), BruteForceSTPSJoin(db, query)));
}

TEST_P(STPSJoinAlgorithmsTest, SPPJFMatchesBruteForce) {
  const ObjectDatabase db = MakeDb();
  const STPSQuery query = MakeQuery();
  EXPECT_TRUE(SameResults(SPPJF(db, query), BruteForceSTPSJoin(db, query)));
}

TEST_P(STPSJoinAlgorithmsTest, SPPJFAblationVariantsStayExact) {
  const ObjectDatabase db = MakeDb();
  const STPSQuery query = MakeQuery();
  const auto expected = BruteForceSTPSJoin(db, query);
  EXPECT_TRUE(SameResults(SPPJFAblation(db, query, false, true), expected));
  EXPECT_TRUE(SameResults(SPPJFAblation(db, query, true, false), expected));
  EXPECT_TRUE(SameResults(SPPJFAblation(db, query, false, false), expected));
}

TEST_P(STPSJoinAlgorithmsTest, SPPJDMatchesBruteForceAcrossFanouts) {
  const ObjectDatabase db = MakeDb();
  const STPSQuery query = MakeQuery();
  const auto expected = BruteForceSTPSJoin(db, query);
  for (const int fanout : {4, 16, 64}) {
    EXPECT_TRUE(SameResults(SPPJD(db, query, SPPJDOptions{fanout}), expected))
        << "fanout=" << fanout;
  }
}


TEST_P(STPSJoinAlgorithmsTest, SPPJDQuadTreeBackendMatchesBruteForce) {
  const ObjectDatabase db = MakeDb();
  const STPSQuery query = MakeQuery();
  const auto expected = BruteForceSTPSJoin(db, query);
  for (const int capacity : {4, 16, 64}) {
    SPPJDOptions options;
    options.fanout = capacity;
    options.partitioning = PartitioningScheme::kQuadTree;
    EXPECT_TRUE(SameResults(SPPJD(db, query, options), expected))
        << "capacity=" << capacity;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ThresholdSweep, STPSJoinAlgorithmsTest,
    ::testing::Values(JoinParam{0.05, 0.3, 0.3, 1},
                      JoinParam{0.10, 0.30, 0.20, 2},
                      JoinParam{0.15, 0.50, 0.40, 3},
                      JoinParam{0.02, 0.20, 0.10, 4},
                      JoinParam{0.30, 0.40, 0.60, 5},
                      JoinParam{0.08, 0.60, 0.30, 6},
                      JoinParam{0.12, 0.25, 0.15, 7},
                      JoinParam{0.05, 0.90, 0.80, 8}));

TEST(STPSJoinTest, Figure1AllAlgorithmsAgree) {
  const ObjectDatabase db = BuildFigure1Database();
  const STPSQuery query{0.05, 1.0 / 3, 0.3};
  const auto expected = BruteForceSTPSJoin(db, query);
  ASSERT_EQ(expected.size(), 1u);
  EXPECT_TRUE(SameResults(SPPJC(db, query), expected));
  EXPECT_TRUE(SameResults(SPPJB(db, query), expected));
  EXPECT_TRUE(SameResults(SPPJF(db, query), expected));
  EXPECT_TRUE(SameResults(SPPJD(db, query, SPPJDOptions{8}), expected));
}

TEST(STPSJoinTest, UmbrellaDispatchesEveryAlgorithm) {
  const ObjectDatabase db = BuildRandomDatabase(RandomDbSpec{});
  const STPSQuery query{0.1, 0.3, 0.3};
  const auto expected = BruteForceSTPSJoin(db, query);
  for (const JoinAlgorithm algorithm :
       {JoinAlgorithm::kBruteForce, JoinAlgorithm::kSPPJC,
        JoinAlgorithm::kSPPJB, JoinAlgorithm::kSPPJF,
        JoinAlgorithm::kSPPJD}) {
    JoinOptions options;
    options.algorithm = algorithm;
    options.rtree_fanout = 32;
    EXPECT_TRUE(SameResults(RunSTPSJoin(db, query, options), expected))
        << JoinAlgorithmName(algorithm);
  }
}

TEST(STPSJoinTest, EmptyThresholdYieldsAllPairsForBaselines) {
  RandomDbSpec spec;
  spec.num_users = 8;
  const ObjectDatabase db = BuildRandomDatabase(spec);
  const STPSQuery query{0.1, 0.3, 0.0};  // eps_u = 0: every pair qualifies
  EXPECT_EQ(SPPJC(db, query).size(), 28u);  // C(8,2)
  EXPECT_EQ(SPPJB(db, query).size(), 28u);
}

TEST(STPSJoinTest, HighThresholdsYieldEmptyResults) {
  const ObjectDatabase db = BuildRandomDatabase(RandomDbSpec{});
  const STPSQuery query{0.0001, 0.999, 0.999};
  EXPECT_TRUE(SPPJF(db, query).empty());
  EXPECT_TRUE(SPPJD(db, query, SPPJDOptions{16}).empty());
}

TEST(STPSJoinTest, AlgorithmNamesAreStable) {
  EXPECT_EQ(JoinAlgorithmName(JoinAlgorithm::kSPPJF), "S-PPJ-F");
  EXPECT_EQ(JoinAlgorithmName(JoinAlgorithm::kSPPJD), "S-PPJ-D");
  EXPECT_EQ(TopKAlgorithmName(TopKAlgorithm::kP), "TOPK-S-PPJ-P");
}

}  // namespace
}  // namespace stps
