#include "core/similarity.h"

#include <gtest/gtest.h>

#include <cmath>

#include "test_util.h"

namespace stps {
namespace {

using testing_util::BuildFigure1Database;
using testing_util::BuildRandomDatabase;
using testing_util::RandomDbSpec;

TEST(ExactSigmaTest, Figure1Scenario) {
  const ObjectDatabase db = BuildFigure1Database();
  // Thresholds that make the shop objects of u1 and u3 match.
  const MatchThresholds t{0.05, 1.0 / 3};
  // User ids follow first-sight order in BuildFigure1Database: u1, u3, u2.
  UserId u1 = 0, u3 = 1, u2 = 2;
  ASSERT_EQ(db.UserName(u1), "u1");
  ASSERT_EQ(db.UserName(u3), "u3");
  ASSERT_EQ(db.UserName(u2), "u2");
  // u1: {shop,jeans} matches u3's {shop,market}: J = 1/3, nearby.
  // u1 has 2 objects (1 matched), u3 has 3 objects (1 matched).
  EXPECT_DOUBLE_EQ(ExactSigma(db.UserObjects(u1), db.UserObjects(u3), t),
                   2.0 / 5);
  // u2 matches nobody at these thresholds.
  EXPECT_DOUBLE_EQ(ExactSigma(db.UserObjects(u1), db.UserObjects(u2), t),
                   0.0);
  EXPECT_DOUBLE_EQ(ExactSigma(db.UserObjects(u2), db.UserObjects(u3), t),
                   0.0);
}

TEST(ExactSigmaTest, IsSymmetric) {
  const ObjectDatabase db = BuildRandomDatabase(RandomDbSpec{});
  const MatchThresholds t{0.1, 0.3};
  for (UserId a = 0; a < 10; ++a) {
    for (UserId b = a + 1; b < 10; ++b) {
      EXPECT_DOUBLE_EQ(ExactSigma(db.UserObjects(a), db.UserObjects(b), t),
                       ExactSigma(db.UserObjects(b), db.UserObjects(a), t));
    }
  }
}

TEST(ExactSigmaTest, BoundedByZeroAndOne) {
  RandomDbSpec spec;
  spec.seed = 5;
  const ObjectDatabase db = BuildRandomDatabase(spec);
  const MatchThresholds t{0.2, 0.2};
  for (UserId a = 0; a < db.num_users(); ++a) {
    for (UserId b = a + 1; b < db.num_users(); ++b) {
      const double sigma =
          ExactSigma(db.UserObjects(a), db.UserObjects(b), t);
      EXPECT_GE(sigma, 0.0);
      EXPECT_LE(sigma, 1.0);
    }
  }
}

TEST(ExactSigmaTest, IdenticalUsersScoreOne) {
  DatabaseBuilder builder;
  const std::vector<std::string> kws = {"a", "b"};
  builder.AddObject("x", Point{0, 0}, std::span<const std::string>(kws));
  builder.AddObject("y", Point{0, 0}, std::span<const std::string>(kws));
  const ObjectDatabase db = std::move(builder).Build();
  EXPECT_DOUBLE_EQ(
      ExactSigma(db.UserObjects(0), db.UserObjects(1), {0.01, 0.9}), 1.0);
}

TEST(SigmaUnmatchedBudgetTest, Lemma1Arithmetic) {
  // eps_u = 0.3, sizes 10+10: at least ceil(0.3*20) = 6 objects must match,
  // so at most 20 - 6 = 14 may stay unmatched.
  EXPECT_EQ(SigmaUnmatchedBudget(20, 0.3), 14);
  EXPECT_EQ(SigmaUnmatchedBudget(8, 1.0), 0);
  // eps_u just above an attainable ratio leaves one fewer unmatched slot.
  EXPECT_EQ(SigmaUnmatchedBudget(10, 0.5), 5);
  EXPECT_EQ(SigmaUnmatchedBudget(10, std::nextafter(0.5, 1.0)), 4);
  // Unsatisfiable thresholds report a negative budget: every candidate is
  // prunable before any object is examined.
  EXPECT_EQ(SigmaUnmatchedBudget(8, std::nextafter(1.0, 2.0)), -1);
  EXPECT_EQ(SigmaUnmatchedBudget(0, 0.5), -1);
  // eps_u <= 0 never prunes.
  EXPECT_EQ(SigmaUnmatchedBudget(8, 0.0), 8);
}

TEST(BruteForceSTPSJoinTest, Figure1Join) {
  const ObjectDatabase db = BuildFigure1Database();
  const STPSQuery query{0.05, 1.0 / 3, 0.3};
  const auto result = BruteForceSTPSJoin(db, query);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(db.UserName(result[0].a), "u1");
  EXPECT_EQ(db.UserName(result[0].b), "u3");
  EXPECT_DOUBLE_EQ(result[0].score, 0.4);
}

TEST(BruteForceTopKTest, ReturnsBestFirstAndRespectsK) {
  const ObjectDatabase db = BuildRandomDatabase(RandomDbSpec{});
  const TopKQuery query{0.15, 0.25, 5};
  const auto top = BruteForceTopK(db, query);
  EXPECT_LE(top.size(), 5u);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_TRUE(TopKBetter(top[i - 1], top[i]));
  }
  for (const auto& pair : top) {
    EXPECT_GT(pair.score, 0.0);
    EXPECT_LT(pair.a, pair.b);
  }
}

TEST(TopKBetterTest, TotalOrderSemantics) {
  const ScoredUserPair high{0, 1, 0.9}, low{0, 2, 0.5};
  const ScoredUserPair tie_a{1, 2, 0.5}, tie_b{1, 3, 0.5};
  EXPECT_TRUE(TopKBetter(high, low));
  EXPECT_FALSE(TopKBetter(low, high));
  EXPECT_TRUE(TopKBetter(low, tie_a));   // (0,2) < (1,2)
  EXPECT_TRUE(TopKBetter(tie_a, tie_b));
  EXPECT_FALSE(TopKBetter(tie_a, tie_a));
}

}  // namespace
}  // namespace stps
