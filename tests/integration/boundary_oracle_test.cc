// Boundary-adversarial differential oracle (the companion of
// common/predicates.h). Every database here is built so that threshold
// comparisons land exactly ON predicate boundaries — point pairs at
// exactly eps_loc apart and one ULP to either side, token sets whose
// Jaccard is exactly the threshold rational, user pairs whose sigma equals
// eps_u as a rational, duplicate locations, empty and singleton docs —
// and every join variant (sequential and pool-parallel) plus every top-k
// variant is differentially checked against the brute-force O(n^2)
// reference. Before the unified predicate layer, each layer rounded
// thresholds its own way, and these inputs are precisely the ones where
// the layers used to disagree by one ULP.

#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/predicates.h"
#include "common/rng.h"
#include "core/sppj_d.h"
#include "core/stpsjoin.h"
#include "core/topk.h"
#include "test_util.h"

namespace stps {
namespace {

using testing_util::SameResults;

constexpr double kInf = std::numeric_limits<double>::infinity();

// Token sets are drawn from the nested prefix family P_k = {w0, ..., wk}:
// Jaccard(P_i, P_j) = (i+1)/(j+1) for i <= j, so every small rational is
// realisable exactly, including the query thresholds themselves.
std::vector<std::string> PrefixDoc(int k) {
  std::vector<std::string> doc;
  for (int i = 0; i <= k; ++i) doc.push_back("w" + std::to_string(i));
  return doc;
}

// Builds the adversarial database for a given lattice pitch (== eps_loc of
// the boundary queries). Deterministic in `seed`.
ObjectDatabase BuildAdversarialDatabase(double eps_loc, uint64_t seed) {
  Rng rng(seed);
  DatabaseBuilder builder;
  const auto add = [&builder](const std::string& user, Point p,
                              const std::vector<std::string>& doc) {
    builder.AddObject(user, p, std::span<const std::string>(doc));
  };

  // --- Lattice block: points at exact multiples of eps_loc. Axis
  // neighbours are exactly eps_loc apart (subtraction of equal-exponent
  // multiples is exact for these pitches), diagonal neighbours exactly
  // sqrt(2) * eps_loc — both sides of every spatial boundary.
  const int kLattice = 5;
  for (int u = 0; u < 6; ++u) {
    const std::string user = "lat" + std::to_string(u);
    const int objects = 2 + static_cast<int>(rng.NextBelow(4));
    for (int o = 0; o < objects; ++o) {
      const int gx = static_cast<int>(rng.NextBelow(kLattice));
      const int gy = static_cast<int>(rng.NextBelow(kLattice));
      Point p{eps_loc * gx, eps_loc * gy};
      // A third of the lattice points are nudged one ULP outward or
      // inward, turning "exactly eps_loc apart" into "one ULP above /
      // below eps_loc apart".
      const uint64_t nudge = rng.NextBelow(3);
      if (nudge == 1) p.x = std::nextafter(p.x, kInf);
      if (nudge == 2) p.x = std::nextafter(p.x, -kInf);
      add(user, p, PrefixDoc(static_cast<int>(rng.NextBelow(6))));
    }
  }

  // --- Duplicate-location block: users stacked on the same two points
  // with docs straddling the Jaccard boundary (P_1 vs P_3 gives exactly
  // 1/2, P_1 vs P_5 exactly 1/3, P_0 vs P_4 exactly 1/5).
  const Point stack_a{10.0, 10.0};
  const Point stack_b{10.0 + eps_loc, 10.0};
  for (int u = 0; u < 5; ++u) {
    const std::string user = "dup" + std::to_string(u);
    add(user, stack_a, PrefixDoc(2 * u % 6));
    add(user, u % 2 == 0 ? stack_a : stack_b, PrefixDoc(u % 4));
  }

  // --- Sigma-boundary block: engineered so pairs hit sigma = 1/2 and 1/3
  // exactly. Each "half" user has one object in the shared pile (always
  // matches within the block) and one isolated object; each "third" user
  // has one shared and two isolated (sigma = 2/6 = 1/3 within its group).
  const Point far_pile{-50.0, -50.0};
  for (int u = 0; u < 4; ++u) {
    const std::string user = "half" + std::to_string(u);
    add(user, far_pile, PrefixDoc(3));
    add(user, {-60.0 - 10.0 * u, 40.0}, {"iso_h" + std::to_string(u)});
  }
  const Point third_pile{-80.0, -80.0};
  for (int u = 0; u < 4; ++u) {
    const std::string user = "third" + std::to_string(u);
    add(user, third_pile, PrefixDoc(4));
    add(user, {-90.0 - 10.0 * u, 60.0}, {"iso_t" + std::to_string(u)});
    add(user, {-90.0 - 10.0 * u, 80.0}, {"iso_u" + std::to_string(u)});
  }

  // --- Degenerate-doc block: empty docs (never match any positive
  // eps_doc) and singleton docs (Jaccard is 0, 1/2, or 1 — nothing else)
  // sitting right on top of lattice points.
  add("deg0", {0.0, 0.0}, {});
  add("deg0", {eps_loc, 0.0}, {"w0"});
  add("deg1", {0.0, 0.0}, {"w0"});
  add("deg1", {0.0, eps_loc}, {});
  add("deg2", {eps_loc, eps_loc}, {"w0", "w1"});

  return std::move(builder).Build();
}

// One boundary query set per lattice pitch: thresholds sit exactly on the
// rationals the database realises, one ULP to either side, and on
// non-representable literals whose rounding direction is known.
std::vector<STPSQuery> BoundaryJoinQueries(double eps_loc) {
  std::vector<STPSQuery> queries;
  const double third = 1.0 / 3.0;
  for (const double eps_doc :
       {0.5, std::nextafter(0.5, 1.0), third, std::nextafter(third, 0.0),
        0.2, 1.0}) {
    for (const double eps_u :
         {0.5, std::nextafter(0.5, 1.0), std::nextafter(0.5, 0.0), third,
          0.25, 1.0}) {
      queries.push_back({eps_loc, eps_doc, eps_u});
    }
  }
  // Spatial boundary: eps_loc one ULP below the pitch drops the exact
  // lattice-neighbour pairs.
  queries.push_back({std::nextafter(eps_loc, 0.0), 0.5, 0.5});
  queries.push_back({std::nextafter(eps_loc, kInf), 0.5, 0.5});
  // sqrt(2)*pitch: the diagonal-neighbour boundary.
  queries.push_back({std::sqrt(2.0) * eps_loc, third, third});
  return queries;
}

class BoundaryOracleTest : public ::testing::TestWithParam<double> {};

TEST_P(BoundaryOracleTest, AllJoinVariantsMatchBruteForce) {
  const double eps_loc = GetParam();
  for (const uint64_t seed : {7u, 21u, 63u}) {
    const ObjectDatabase db = BuildAdversarialDatabase(eps_loc, seed);
    for (const STPSQuery& base : BoundaryJoinQueries(eps_loc)) {
      STPSQuery query = base;
      const auto expected = BruteForceSTPSJoin(db, query);
      for (const JoinAlgorithm algorithm :
           {JoinAlgorithm::kSPPJC, JoinAlgorithm::kSPPJB,
            JoinAlgorithm::kSPPJF, JoinAlgorithm::kSPPJD}) {
        JoinOptions options;
        options.algorithm = algorithm;
        options.rtree_fanout = 16;
        ASSERT_TRUE(SameResults(RunSTPSJoin(db, query, options), expected,
                                /*tolerance=*/0.0))
            << JoinAlgorithmName(algorithm) << " seed=" << seed
            << " eps_loc=" << query.eps_loc << " eps_doc=" << query.eps_doc
            << " eps_u=" << query.eps_u;
        // Pool-parallel must be bit-identical.
        query.parallel = ParallelOptions{4, 1};
        ASSERT_TRUE(SameResults(RunSTPSJoin(db, query, options), expected,
                                /*tolerance=*/0.0))
            << "parallel " << JoinAlgorithmName(algorithm)
            << " seed=" << seed << " eps_doc=" << query.eps_doc
            << " eps_u=" << query.eps_u;
        query.parallel = ParallelOptions{};
        // Sketch-accelerated candidate generation must survive the same
        // ULP-adversarial boundaries: the band index may only widen the
        // candidate set, so the verified results stay bit-identical at
        // every thread count.
        query.sketch.enabled = true;
        for (const int threads : {1, 2, 8}) {
          query.parallel = ParallelOptions{threads, 1};
          JoinStats sketch_stats;
          ASSERT_TRUE(SameResults(RunSTPSJoin(db, query, options,
                                              &sketch_stats),
                                  expected, /*tolerance=*/0.0))
              << "sketch " << JoinAlgorithmName(algorithm)
              << " threads=" << threads << " seed=" << seed
              << " eps_doc=" << query.eps_doc << " eps_u=" << query.eps_u;
          EXPECT_EQ(sketch_stats.matches_found, expected.size());
          EXPECT_GE(sketch_stats.sketch_candidate_pairs,
                    sketch_stats.matches_found);
        }
        query.sketch = SketchOptions{};
        query.parallel = ParallelOptions{};
      }
      // The quadtree backend of S-PPJ-D routes through different
      // partition geometry; same boundaries, same answer.
      SPPJDOptions d_options;
      d_options.fanout = 16;
      d_options.partitioning = PartitioningScheme::kQuadTree;
      ASSERT_TRUE(SameResults(SPPJD(db, query, d_options), expected,
                              /*tolerance=*/0.0))
          << "quadtree seed=" << seed << " eps_doc=" << query.eps_doc
          << " eps_u=" << query.eps_u;
    }
  }
}

TEST_P(BoundaryOracleTest, AllTopKVariantsMatchBruteForce) {
  const double eps_loc = GetParam();
  const double third = 1.0 / 3.0;
  for (const uint64_t seed : {7u, 21u, 63u}) {
    const ObjectDatabase db = BuildAdversarialDatabase(eps_loc, seed);
    for (const double eps_doc : {0.5, third, 0.2}) {
      // k values chosen to land inside the tied score bands the sigma
      // blocks create (many pairs at exactly 1/2 and 1/3).
      for (const size_t k : {1u, 3u, 7u, 12u, 50u}) {
        TopKQuery query{eps_loc, eps_doc, k};
        const auto expected = BruteForceTopK(db, query);
        for (const TopKAlgorithm algorithm :
             {TopKAlgorithm::kF, TopKAlgorithm::kS, TopKAlgorithm::kP}) {
          ASSERT_TRUE(SameResults(RunTopKSTPSJoin(db, query, algorithm),
                                  expected, /*tolerance=*/0.0))
              << TopKAlgorithmName(algorithm) << " seed=" << seed
              << " eps_doc=" << eps_doc << " k=" << k;
          query.parallel = ParallelOptions{4, 0};
          ASSERT_TRUE(SameResults(RunTopKSTPSJoin(db, query, algorithm),
                                  expected, /*tolerance=*/0.0))
              << "parallel " << TopKAlgorithmName(algorithm)
              << " seed=" << seed << " eps_doc=" << eps_doc << " k=" << k;
          query.parallel = ParallelOptions{};
          // Sketch candidates arrive in heavy-hitters order; the queue's
          // tie semantics must still produce the brute-force top-k on
          // the exactly-tied score bands, at every thread count.
          query.sketch.enabled = true;
          for (const int threads : {1, 2, 8}) {
            query.parallel = ParallelOptions{threads, 0};
            JoinStats sketch_stats;
            ASSERT_TRUE(
                SameResults(RunTopKSTPSJoin(db, query, algorithm,
                                            &sketch_stats),
                            expected, /*tolerance=*/0.0))
                << "sketch " << TopKAlgorithmName(algorithm)
                << " threads=" << threads << " seed=" << seed
                << " eps_doc=" << eps_doc << " k=" << k;
            EXPECT_GE(sketch_stats.sketch_candidate_pairs,
                      sketch_stats.matches_found);
          }
          query.sketch = SketchOptions{};
          query.parallel = ParallelOptions{};
        }
        ASSERT_TRUE(SameResults(TopKSPPJD(db, query, /*fanout=*/16),
                                expected, /*tolerance=*/0.0))
            << "TopKSPPJD seed=" << seed << " eps_doc=" << eps_doc
            << " k=" << k;
      }
    }
  }
}

// Pitches chosen adversarially: 0.125 is a power of two (lattice
// coordinates and distances all exact), 0.1 rounds up in binary, 0.3
// rounds down, and 0.07 has no short binary expansion at all.
INSTANTIATE_TEST_SUITE_P(Pitches, BoundaryOracleTest,
                         ::testing::Values(0.125, 0.1, 0.3, 0.07));

// A reported top-k tail score fed back as a threshold join must re-admit
// every top-k pair (the round-trip the paper's tuning loop performs).
TEST(BoundaryOracleTest, TopKScoreRoundTripsThroughThresholdJoin) {
  const ObjectDatabase db = BuildAdversarialDatabase(0.1, 7);
  for (const size_t k : {3u, 7u, 12u}) {
    const TopKQuery topk{0.1, 1.0 / 3.0, k};
    const auto top = RunTopKSTPSJoin(db, topk, TopKAlgorithm::kP);
    if (top.empty()) continue;
    const STPSQuery query{topk.eps_loc, topk.eps_doc,
                          ThresholdFromScore(top.back().score)};
    const auto joined = RunSTPSJoin(db, query);
    ASSERT_GE(joined.size(), top.size()) << "k=" << k;
    for (const auto& pair : top) {
      bool found = false;
      for (const auto& j : joined) {
        if (j.a == pair.a && j.b == pair.b) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "k=" << k << " pair (" << pair.a << ","
                         << pair.b << ") score=" << pair.score;
    }
  }
}

}  // namespace
}  // namespace stps
