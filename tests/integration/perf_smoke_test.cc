// Performance smoke test: the paper's headline claim — the filter-and-
// refine S-PPJ-F beats the S-PPJ-C baseline — asserted as a regression
// test with a wide safety margin (the measured gap is ~10-30x; the test
// demands only 2x, so scheduler noise cannot flake it while a pruning
// regression that disables the filters still fails it).

#include <gtest/gtest.h>

#include "common/timer.h"
#include "core/sppj_c.h"
#include "core/sppj_f.h"
#include "datagen/generator.h"
#include "datagen/presets.h"

namespace stps {
namespace {

TEST(PerfSmokeTest, SPPJFBeatsBaselineOnTwitterLike) {
  const ObjectDatabase db = GenerateDataset(
      PresetSpec(DatasetKind::kTwitterLike, 150, 1));
  const STPSQuery query = DefaultQuery(DatasetKind::kTwitterLike);

  Timer baseline_timer;
  const auto baseline = SPPJC(db, query);
  const double baseline_ms = baseline_timer.ElapsedMillis();

  Timer filtered_timer;
  const auto filtered = SPPJF(db, query);
  const double filtered_ms = filtered_timer.ElapsedMillis();

  ASSERT_EQ(baseline.size(), filtered.size());
  EXPECT_LT(filtered_ms * 2.0, baseline_ms)
      << "S-PPJ-F (" << filtered_ms << " ms) no longer clearly beats "
      << "S-PPJ-C (" << baseline_ms << " ms)";
}

TEST(PerfSmokeTest, SigmaBarFilterActuallyPrunes) {
  // The A1 ablation as a regression guard: disabling the sigma_bar bound
  // must cost at least 1.5x on a pruning-friendly workload.
  const ObjectDatabase db = GenerateDataset(
      PresetSpec(DatasetKind::kTwitterLike, 150, 2));
  const STPSQuery query = DefaultQuery(DatasetKind::kTwitterLike);

  Timer with_timer;
  SPPJFAblation(db, query, /*use_sigma_bound=*/true,
                /*use_refine_bound=*/true);
  const double with_ms = with_timer.ElapsedMillis();

  Timer without_timer;
  SPPJFAblation(db, query, /*use_sigma_bound=*/false,
                /*use_refine_bound=*/true);
  const double without_ms = without_timer.ElapsedMillis();

  EXPECT_LT(with_ms * 1.5, without_ms)
      << "sigma_bar bound stopped pruning: " << with_ms << " ms with vs "
      << without_ms << " ms without";
}

}  // namespace
}  // namespace stps
