// Performance smoke test: the paper's headline claims asserted as
// regression tests over JoinStats work counters instead of wall-clock.
// Counter budgets are exactly reproducible — same database, same
// counters, on any machine at any load — so the test cannot flake under
// scheduler noise, while a regression that disables a filter still moves
// the counters by an order of magnitude and fails the budget.

#include <gtest/gtest.h>

#include "core/join_stats.h"
#include "core/sppj_c.h"
#include "core/sppj_f.h"
#include "core/stpsjoin.h"
#include "datagen/generator.h"
#include "datagen/presets.h"

namespace stps {
namespace {

TEST(PerfSmokeTest, SPPJFBeatsBaselineOnTwitterLike) {
  // Headline claim: filter-and-refine S-PPJ-F does far fewer exact pair
  // verifications than the S-PPJ-C baseline, which verifies every
  // spatially close candidate. The measured gap is ~10-30x; the budget
  // demands only 2x.
  const ObjectDatabase db = GenerateDataset(
      PresetSpec(DatasetKind::kTwitterLike, 150, 1));
  const STPSQuery query = DefaultQuery(DatasetKind::kTwitterLike);

  JoinStats baseline_stats;
  const auto baseline = SPPJC(db, query, &baseline_stats);

  JoinStats filtered_stats;
  const auto filtered = SPPJF(db, query, &filtered_stats);

  ASSERT_EQ(baseline.size(), filtered.size());
  EXPECT_GT(filtered_stats.pairs_pruned_count, 0u);
  EXPECT_LT(filtered_stats.pairs_verified * 2, baseline_stats.pairs_verified)
      << "S-PPJ-F (" << filtered_stats.pairs_verified
      << " verifications) no longer clearly beats S-PPJ-C ("
      << baseline_stats.pairs_verified << " verifications)";
}

TEST(PerfSmokeTest, SigmaBarFilterActuallyPrunes) {
  // The A1 ablation as a regression guard: disabling the sigma_bar bound
  // must cost at least 1.5x more exact verifications on a
  // pruning-friendly workload.
  const ObjectDatabase db = GenerateDataset(
      PresetSpec(DatasetKind::kTwitterLike, 150, 2));
  const STPSQuery query = DefaultQuery(DatasetKind::kTwitterLike);

  JoinStats with_stats;
  SPPJFAblation(db, query, /*use_sigma_bound=*/true,
                /*use_refine_bound=*/true, &with_stats);

  JoinStats without_stats;
  SPPJFAblation(db, query, /*use_sigma_bound=*/false,
                /*use_refine_bound=*/true, &without_stats);

  EXPECT_GT(with_stats.pairs_pruned_count, 0u);
  EXPECT_EQ(without_stats.pairs_pruned_count, 0u)
      << "ablation left the sigma_bar bound enabled";
  EXPECT_LE(with_stats.pairs_verified * 3, without_stats.pairs_verified * 2)
      << "sigma_bar bound stopped pruning: " << with_stats.pairs_verified
      << " verifications with vs " << without_stats.pairs_verified
      << " without";
}

TEST(PerfSmokeTest, SketchCandidatesUndercutVerifyEverythingBaseline) {
  // The sketch layer's reason to exist: on a sparse many-users workload
  // its band-index candidate set — every one of which is exactly
  // verified — must stay well below the S-PPJ-C baseline's verification
  // count while producing the same matches. (On dense city-extent
  // corpora nearly every pair is a true candidate; there the sketch has
  // nothing to skip, which is why this budget uses the sparse preset.)
  const ObjectDatabase db = GenerateDataset(
      PresetSpec(DatasetKind::kCheckinSparse, 400, 3));
  STPSQuery query = DefaultQuery(DatasetKind::kCheckinSparse);

  JoinStats baseline_stats;
  const auto baseline = SPPJC(db, query, &baseline_stats);

  query.sketch.enabled = true;
  JoinStats sketch_stats;
  const auto sketched = RunSTPSJoin(db, query, {}, &sketch_stats);

  ASSERT_EQ(baseline.size(), sketched.size());
  EXPECT_EQ(sketch_stats.sketch_candidate_pairs, sketch_stats.pairs_verified);
  EXPECT_LT(sketch_stats.pairs_verified * 2, baseline_stats.pairs_verified)
      << "sketch candidates (" << sketch_stats.pairs_verified
      << ") no longer undercut S-PPJ-C (" << baseline_stats.pairs_verified
      << ")";
}

}  // namespace
}  // namespace stps
