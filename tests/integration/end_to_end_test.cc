// End-to-end integration: generate a synthetic dataset, persist it, load
// it back, and verify that all join algorithms and top-k variants agree
// with each other and with the brute-force reference on the loaded data.

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "common/predicates.h"
#include "core/stpsjoin.h"
#include "core/tuning.h"
#include "datagen/generator.h"
#include "datagen/presets.h"
#include "io/tsv.h"
#include "test_util.h"

namespace stps {
namespace {

using testing_util::SameResults;

class EndToEndTest : public ::testing::TestWithParam<DatasetKind> {};

TEST_P(EndToEndTest, GenerateSaveLoadJoin) {
  const DatasetKind kind = GetParam();
  // Small instance so the brute-force reference stays fast.
  DatasetSpec spec = PresetSpec(kind, 40, 99);
  spec.max_objects_per_user = 60;
  const ObjectDatabase generated = GenerateDataset(spec);

  const std::string path = std::string(::testing::TempDir()) + "/e2e_" +
                           DatasetKindName(kind) + ".tsv";
  ASSERT_TRUE(WriteTsv(generated, path).ok());
  Result<ObjectDatabase> loaded = ReadTsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const ObjectDatabase& db = loaded.value();
  ASSERT_EQ(db.num_objects(), generated.num_objects());

  // Use relaxed variants of the paper's default thresholds so the small
  // instance produces a non-trivial result set.
  STPSQuery query = DefaultQuery(kind);
  query.eps_loc *= 10;
  query.eps_doc *= 0.5;
  query.eps_u = 0.05;

  const auto expected = BruteForceSTPSJoin(db, query);
  for (const JoinAlgorithm algorithm :
       {JoinAlgorithm::kSPPJC, JoinAlgorithm::kSPPJB, JoinAlgorithm::kSPPJF,
        JoinAlgorithm::kSPPJD}) {
    JoinOptions options;
    options.algorithm = algorithm;
    options.rtree_fanout = 32;
    EXPECT_TRUE(SameResults(RunSTPSJoin(db, query, options), expected))
        << DatasetKindName(kind) << " / " << JoinAlgorithmName(algorithm);
  }

  const TopKQuery topk{query.eps_loc, query.eps_doc, 10};
  const auto expected_topk = BruteForceTopK(db, topk);
  for (const TopKAlgorithm algorithm :
       {TopKAlgorithm::kF, TopKAlgorithm::kS, TopKAlgorithm::kP}) {
    EXPECT_TRUE(
        SameResults(RunTopKSTPSJoin(db, topk, algorithm), expected_topk))
        << DatasetKindName(kind) << " / " << TopKAlgorithmName(algorithm);
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(AllPresets, EndToEndTest,
                         ::testing::Values(DatasetKind::kFlickrLike,
                                           DatasetKind::kTwitterLike,
                                           DatasetKind::kGeoTextLike));

TEST(EndToEndTest, TopKThresholdConsistency) {
  // The k-th top-k score, used as a threshold join, returns at least k
  // pairs — the two query types are mutually consistent.
  const DatasetSpec spec = PresetSpec(DatasetKind::kTwitterLike, 30, 5);
  const ObjectDatabase db = GenerateDataset(spec);
  const TopKQuery topk{0.01, 0.2, 5};
  const auto top = RunTopKSTPSJoin(db, topk, TopKAlgorithm::kP);
  if (top.size() == 5) {
    // Reported scores are round-to-nearest quotients, so a score can sit
    // half a ULP above the pair's true rational sigma; ThresholdFromScore
    // steps one ULP down so the threshold join provably re-admits every
    // top-k pair (common/predicates.h).
    STPSQuery query{topk.eps_loc, topk.eps_doc,
                    ThresholdFromScore(top.back().score)};
    const auto joined = RunSTPSJoin(db, query);
    EXPECT_GE(joined.size(), top.size());
    // The top pairs are all contained in the threshold join result.
    for (const auto& pair : top) {
      bool found = false;
      for (const auto& j : joined) {
        if (j.a == pair.a && j.b == pair.b) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found);
    }
  }
}

TEST(EndToEndTest, TuningOnGeneratedData) {
  const DatasetSpec spec = PresetSpec(DatasetKind::kFlickrLike, 30, 13);
  const ObjectDatabase db = GenerateDataset(spec);
  TuningOptions options;
  options.initial = {0.02, 0.1, 0.02};
  options.target_size = 10;
  const TuningResult result = TuneThresholds(db, options);
  if (result.converged) {
    EXPECT_GT(result.result.size(), 0u);
    EXPECT_LE(result.result.size(), 10u);
  }
}

}  // namespace
}  // namespace stps
