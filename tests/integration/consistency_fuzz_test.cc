// Randomised cross-algorithm consistency: many random databases and
// random queries, every STPSJoin algorithm and every top-k variant —
// sequential and pool-parallel — must produce identical results, and the
// JoinStats filter counters must satisfy their accounting invariants.
// This is the broadest net in the suite — any unsound pruning bound,
// traversal gap, duplicate join, or worker race shows up here.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/sppj_d.h"
#include "core/stpsjoin.h"
#include "core/topk.h"
#include "test_util.h"

namespace stps {
namespace {

using testing_util::BuildRandomDatabase;
using testing_util::RandomDbSpec;
using testing_util::SameResults;

// The counters partition every considered pair into disjoint outcomes;
// see join_stats.h. `matches` < 0 skips the exact-match check (top-k
// counts every sigma > 0 discovery, not just the surviving k).
void CheckStatsInvariants(const JoinStats& stats, int64_t matches,
                          const char* label) {
  EXPECT_EQ(stats.pairs_candidate,
            stats.pairs_pruned_count + stats.pairs_verified)
      << label;
  EXPECT_GE(stats.pairs_verified, stats.matches_found) << label;
  if (matches >= 0) {
    EXPECT_EQ(stats.matches_found, static_cast<uint64_t>(matches)) << label;
  }
}

// Sketch-driver accounting: every band-index candidate flows into the
// exact verify path (so the sketch counter IS the candidate counter) and
// candidates dominate survivors — the monotone chain
// sketch_candidate_pairs == pairs_candidate >= matches_found.
void CheckSketchInvariants(const JoinStats& stats, const char* label) {
  EXPECT_EQ(stats.sketch_candidate_pairs, stats.pairs_candidate) << label;
  EXPECT_GE(stats.sketch_candidate_pairs, stats.matches_found) << label;
}

class ConsistencyFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConsistencyFuzzTest, AllJoinAlgorithmsAgreeOnRandomConfigs) {
  Rng rng(GetParam());
  for (int round = 0; round < 7; ++round) {
    RandomDbSpec spec;
    spec.seed = rng.Next();
    spec.num_users = 15 + rng.NextBelow(25);
    spec.vocabulary = 10 + rng.NextBelow(30);
    spec.num_hotspots = 2 + rng.NextBelow(8);
    spec.hotspot_sigma = rng.Uniform(0.01, 0.08);
    spec.hotspot_probability = rng.Uniform(0.4, 0.95);
    const ObjectDatabase db = BuildRandomDatabase(spec);
    STPSQuery query;
    query.eps_loc = rng.Uniform(0.01, 0.3);
    query.eps_doc = rng.Uniform(0.1, 0.9);
    query.eps_u = rng.Uniform(0.05, 0.8);
    // Half of the rounds also exercise the temporal extension (all
    // generated timestamps are 0, so pick eps_time around that — either
    // permissive or prohibitive).
    if (rng.Bernoulli(0.3)) query.eps_time = rng.Uniform(0.0, 2.0);
    const auto expected = BruteForceSTPSJoin(db, query);
    for (const JoinAlgorithm algorithm :
         {JoinAlgorithm::kSPPJC, JoinAlgorithm::kSPPJB,
          JoinAlgorithm::kSPPJF, JoinAlgorithm::kSPPJD}) {
      JoinOptions options;
      options.algorithm = algorithm;
      options.rtree_fanout = 2 + static_cast<int>(rng.NextBelow(60));
      // The umbrella always uses the R-tree; additionally exercise the
      // quadtree backend of S-PPJ-D directly.
      if (algorithm == JoinAlgorithm::kSPPJD) {
        SPPJDOptions d_options;
        d_options.fanout = options.rtree_fanout;
        d_options.partitioning = PartitioningScheme::kQuadTree;
        ASSERT_TRUE(SameResults(SPPJD(db, query, d_options), expected))
            << "quadtree backend, seed=" << spec.seed;
      }
      JoinStats stats;
      const auto sequential = RunSTPSJoin(db, query, options, &stats);
      ASSERT_TRUE(SameResults(sequential, expected))
          << JoinAlgorithmName(algorithm) << " seed=" << spec.seed
          << " eps_loc=" << query.eps_loc << " eps_doc=" << query.eps_doc
          << " eps_u=" << query.eps_u
          << " fanout=" << options.rtree_fanout;
      CheckStatsInvariants(stats, static_cast<int64_t>(expected.size()),
                           JoinAlgorithmName(algorithm).data());

      // The pool-parallel driver must be bit-identical with identical
      // counters (thread count varies with the round).
      query.parallel =
          ParallelOptions{2 + round % 3, static_cast<size_t>(round % 4)};
      JoinStats parallel_stats;
      const auto parallel = RunSTPSJoin(db, query, options, &parallel_stats);
      query.parallel = ParallelOptions{};
      ASSERT_TRUE(SameResults(parallel, expected, /*tolerance=*/0.0))
          << "parallel " << JoinAlgorithmName(algorithm)
          << " seed=" << spec.seed;
      // Field-level comparisons first (sharper failure messages than the
      // aggregate equality): the work a pair triggers must not depend on
      // which worker ran it.
      EXPECT_EQ(parallel_stats.matches_found, stats.matches_found)
          << "parallel " << JoinAlgorithmName(algorithm)
          << " seed=" << spec.seed;
      EXPECT_EQ(parallel_stats.pairs_verified, stats.pairs_verified)
          << "parallel " << JoinAlgorithmName(algorithm)
          << " seed=" << spec.seed;
      EXPECT_EQ(parallel_stats.signature_rejections,
                stats.signature_rejections)
          << "parallel " << JoinAlgorithmName(algorithm)
          << " seed=" << spec.seed;
      EXPECT_EQ(parallel_stats, stats)
          << "parallel " << JoinAlgorithmName(algorithm)
          << " seed=" << spec.seed;

      // Sketch-accelerated candidate generation: bit-identical results
      // and identical counters at 1, 2, and 8 threads (the sketch driver
      // verifies a fixed candidate list, so not even matches_found may
      // depend on the thread count).
      query.sketch.enabled = true;
      JoinStats first_sketch_stats;
      for (const int threads : {1, 2, 8}) {
        query.parallel =
            ParallelOptions{threads, static_cast<size_t>(round % 3)};
        JoinStats sketch_stats;
        const auto sketched =
            RunSTPSJoin(db, query, options, &sketch_stats);
        ASSERT_TRUE(SameResults(sketched, expected, /*tolerance=*/0.0))
            << "sketch " << JoinAlgorithmName(algorithm)
            << " threads=" << threads << " seed=" << spec.seed;
        CheckStatsInvariants(sketch_stats,
                             static_cast<int64_t>(expected.size()),
                             JoinAlgorithmName(algorithm).data());
        CheckSketchInvariants(sketch_stats,
                              JoinAlgorithmName(algorithm).data());
        if (threads == 1) {
          first_sketch_stats = sketch_stats;
        } else {
          EXPECT_EQ(sketch_stats, first_sketch_stats)
              << "sketch " << JoinAlgorithmName(algorithm)
              << " threads=" << threads << " seed=" << spec.seed;
        }
      }
      query.sketch = SketchOptions{};
      query.parallel = ParallelOptions{};
    }

    // The planner route: whatever shape kAuto resolves to (the choice
    // may vary with thread budget and learned feedback), the results must
    // be the brute-force results, bit for bit.
    for (const int threads : {1, 2, 8}) {
      query.parallel = ParallelOptions{threads, 0};
      JoinOptions auto_options;
      auto_options.algorithm = JoinAlgorithm::kAuto;
      JoinStats auto_stats;
      ASSERT_TRUE(SameResults(RunSTPSJoin(db, query, auto_options,
                                          &auto_stats),
                              expected, /*tolerance=*/0.0))
          << "kAuto threads=" << threads << " seed=" << spec.seed;
      CheckStatsInvariants(auto_stats, static_cast<int64_t>(expected.size()),
                           "kAuto");
    }
    query.parallel = ParallelOptions{};
  }
}

// Duplicate object locations (and duplicate docs) stress tie handling in
// grid cell assignment, partition merging, and the matched-flag counting:
// every co-located pair either matches or is rejected purely textually.
TEST(ConsistencyDuplicateLocationsTest, AllAlgorithmsAgree) {
  DatabaseBuilder builder;
  const std::vector<std::string> docs[] = {
      {"coffee", "park"}, {"coffee", "park"}, {"museum"},
      {"coffee", "museum", "park"}, {"park"}};
  // Five users, all objects stacked on three distinct points; several
  // objects share both location and keyword set exactly.
  const Point points[] = {{0.25, 0.25}, {0.25, 0.25}, {0.75, 0.75}};
  Rng rng(12345);
  for (int u = 0; u < 5; ++u) {
    const std::string user = "user" + std::to_string(u);
    for (int o = 0; o < 6; ++o) {
      const auto& doc = docs[rng.NextBelow(5)];
      builder.AddObject(user, points[rng.NextBelow(3)],
                        std::span<const std::string>(doc));
    }
  }
  const ObjectDatabase db = std::move(builder).Build();
  for (const double eps_doc : {0.2, 0.5, 1.0}) {
    STPSQuery query;
    query.eps_loc = 0.1;
    query.eps_doc = eps_doc;
    query.eps_u = 0.3;
    const auto expected = BruteForceSTPSJoin(db, query);
    for (const JoinAlgorithm algorithm :
         {JoinAlgorithm::kSPPJC, JoinAlgorithm::kSPPJB,
          JoinAlgorithm::kSPPJF, JoinAlgorithm::kSPPJD}) {
      JoinOptions options;
      options.algorithm = algorithm;
      JoinStats stats;
      ASSERT_TRUE(SameResults(RunSTPSJoin(db, query, options, &stats),
                              expected))
          << JoinAlgorithmName(algorithm) << " eps_doc=" << eps_doc;
      CheckStatsInvariants(stats, static_cast<int64_t>(expected.size()),
                           JoinAlgorithmName(algorithm).data());

      query.parallel = ParallelOptions{3, 1};
      JoinStats parallel_stats;
      const auto parallel = RunSTPSJoin(db, query, options, &parallel_stats);
      query.parallel = ParallelOptions{};
      ASSERT_TRUE(SameResults(parallel, expected, /*tolerance=*/0.0))
          << "parallel " << JoinAlgorithmName(algorithm)
          << " eps_doc=" << eps_doc;
      EXPECT_EQ(parallel_stats.matches_found, stats.matches_found)
          << JoinAlgorithmName(algorithm) << " eps_doc=" << eps_doc;
      EXPECT_EQ(parallel_stats.pairs_verified, stats.pairs_verified)
          << JoinAlgorithmName(algorithm) << " eps_doc=" << eps_doc;
      EXPECT_EQ(parallel_stats, stats)
          << JoinAlgorithmName(algorithm) << " eps_doc=" << eps_doc;

      // Duplicate locations collapse many pairs into one sketch cell and
      // band; the candidate superset must still cover every match.
      query.sketch.enabled = true;
      for (const int threads : {1, 3}) {
        query.parallel = ParallelOptions{threads, 1};
        JoinStats sketch_stats;
        ASSERT_TRUE(SameResults(RunSTPSJoin(db, query, options,
                                            &sketch_stats),
                                expected, /*tolerance=*/0.0))
            << "sketch " << JoinAlgorithmName(algorithm)
            << " threads=" << threads << " eps_doc=" << eps_doc;
        CheckStatsInvariants(sketch_stats,
                             static_cast<int64_t>(expected.size()),
                             JoinAlgorithmName(algorithm).data());
        CheckSketchInvariants(sketch_stats,
                              JoinAlgorithmName(algorithm).data());
      }
      query.sketch = SketchOptions{};
      query.parallel = ParallelOptions{};
    }
  }
}

TEST_P(ConsistencyFuzzTest, AllTopKVariantsAgreeOnRandomConfigs) {
  Rng rng(GetParam() + 9999);
  for (int round = 0; round < 7; ++round) {
    RandomDbSpec spec;
    spec.seed = rng.Next();
    spec.num_users = 15 + rng.NextBelow(25);
    spec.vocabulary = 10 + rng.NextBelow(30);
    const ObjectDatabase db = BuildRandomDatabase(spec);
    TopKQuery query;
    query.eps_loc = rng.Uniform(0.01, 0.3);
    query.eps_doc = rng.Uniform(0.1, 0.9);
    query.k = 1 + rng.NextBelow(30);
    const auto expected = BruteForceTopK(db, query);
    for (const TopKAlgorithm algorithm :
         {TopKAlgorithm::kF, TopKAlgorithm::kS, TopKAlgorithm::kP}) {
      JoinStats stats;
      ASSERT_TRUE(SameResults(RunTopKSTPSJoin(db, query, algorithm, &stats),
                              expected))
          << TopKAlgorithmName(algorithm) << " seed=" << spec.seed
          << " k=" << query.k << " eps_loc=" << query.eps_loc
          << " eps_doc=" << query.eps_doc;
      CheckStatsInvariants(stats, /*matches=*/-1,
                           TopKAlgorithmName(algorithm).data());

      query.parallel = ParallelOptions{2 + round % 3, 0};
      JoinStats parallel_stats;
      const auto parallel =
          RunTopKSTPSJoin(db, query, algorithm, &parallel_stats);
      query.parallel = ParallelOptions{};
      ASSERT_TRUE(SameResults(parallel, expected, /*tolerance=*/0.0))
          << "parallel " << TopKAlgorithmName(algorithm)
          << " seed=" << spec.seed << " k=" << query.k;
      CheckStatsInvariants(parallel_stats, /*matches=*/-1,
                           TopKAlgorithmName(algorithm).data());

      // Sketch candidates in heavy-hitters order: bit-identical top-k at
      // 1, 2, and 8 threads, at a round-varying heavy-list capacity (the
      // verification order must never leak into the results).
      query.sketch.enabled = true;
      query.sketch.heavy_capacity = 1 + static_cast<uint32_t>(round) * 7;
      for (const int threads : {1, 2, 8}) {
        query.parallel = ParallelOptions{threads, 0};
        JoinStats sketch_stats;
        ASSERT_TRUE(
            SameResults(RunTopKSTPSJoin(db, query, algorithm, &sketch_stats),
                        expected, /*tolerance=*/0.0))
            << "sketch " << TopKAlgorithmName(algorithm)
            << " threads=" << threads << " seed=" << spec.seed
            << " k=" << query.k;
        CheckStatsInvariants(sketch_stats, /*matches=*/-1,
                             TopKAlgorithmName(algorithm).data());
        CheckSketchInvariants(sketch_stats,
                              TopKAlgorithmName(algorithm).data());
      }
      query.sketch = SketchOptions{};
      query.parallel = ParallelOptions{};
    }

    // kAuto top-k resolves through the planner; the unique top-k under
    // the TopKBetter order must come back whatever shape it picks.
    for (const int threads : {1, 2, 8}) {
      query.parallel = ParallelOptions{threads, 0};
      ASSERT_TRUE(
          SameResults(RunTopKSTPSJoin(db, query, TopKAlgorithm::kAuto),
                      expected, /*tolerance=*/0.0))
          << "kAuto topk threads=" << threads << " seed=" << spec.seed
          << " k=" << query.k;
    }
    query.parallel = ParallelOptions{};
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConsistencyFuzzTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace stps
