// Shared helpers for the stps test suite: random databases with enough
// spatial and textual collisions to exercise every code path, the paper's
// Figure 1 example, and comparison utilities.

#ifndef STPS_TESTS_TEST_UTIL_H_
#define STPS_TESTS_TEST_UTIL_H_

#include <cmath>
#include <deque>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/database.h"
#include "core/similarity.h"

namespace stps {
namespace testing_util {

/// Owns token storage for standalone STObjects (whose `doc` member is a
/// non-owning span). Growing the arena never invalidates handed-out
/// spans: sets live in a deque and each set's heap buffer stays put.
class DocArena {
 public:
  std::span<const TokenId> Add(TokenVector tokens) {
    docs_.push_back(std::move(tokens));
    return docs_.back();
  }

 private:
  std::deque<TokenVector> docs_;
};

/// Knobs for BuildRandomDatabase. Defaults give a small, dense instance
/// where matches are common at eps_loc ~ 0.1, eps_doc ~ 0.3.
struct RandomDbSpec {
  size_t num_users = 30;
  size_t min_objects = 2;
  size_t max_objects = 12;
  size_t vocabulary = 25;    // small vocab -> frequent token collisions
  size_t min_tokens = 1;
  size_t max_tokens = 5;
  double extent = 1.0;       // world is [0, extent]^2
  size_t num_hotspots = 6;   // most points land near a hotspot
  double hotspot_sigma = 0.03;
  double hotspot_probability = 0.7;
  uint64_t seed = 1;
};

/// Builds a random database per `spec`. Deterministic in the spec.
inline ObjectDatabase BuildRandomDatabase(const RandomDbSpec& spec) {
  Rng rng(spec.seed);
  std::vector<Point> hotspots(spec.num_hotspots);
  for (auto& h : hotspots) {
    h = {rng.Uniform(0, spec.extent), rng.Uniform(0, spec.extent)};
  }
  DatabaseBuilder builder;
  std::vector<std::string> keywords;
  for (size_t u = 0; u < spec.num_users; ++u) {
    const std::string key = "user" + std::to_string(u);
    const size_t count = static_cast<size_t>(
        rng.UniformInt(static_cast<int64_t>(spec.min_objects),
                       static_cast<int64_t>(spec.max_objects)));
    for (size_t i = 0; i < count; ++i) {
      Point p;
      if (!hotspots.empty() && rng.Bernoulli(spec.hotspot_probability)) {
        const Point& h = hotspots[rng.NextBelow(hotspots.size())];
        p = {rng.Gaussian(h.x, spec.hotspot_sigma),
             rng.Gaussian(h.y, spec.hotspot_sigma)};
      } else {
        p = {rng.Uniform(0, spec.extent), rng.Uniform(0, spec.extent)};
      }
      const size_t tokens = static_cast<size_t>(
          rng.UniformInt(static_cast<int64_t>(spec.min_tokens),
                         static_cast<int64_t>(spec.max_tokens)));
      keywords.clear();
      for (size_t k = 0; k < tokens; ++k) {
        keywords.push_back("kw" +
                           std::to_string(rng.NextBelow(spec.vocabulary)));
      }
      builder.AddObject(key, p, std::span<const std::string>(keywords));
    }
  }
  return std::move(builder).Build();
}

/// The running example of Figure 1: three users around two "places"
/// (a shopping area and a stadium), with u1 and u3 being the only pair of
/// users with mutually matching objects at sensible thresholds.
inline ObjectDatabase BuildFigure1Database() {
  DatabaseBuilder builder;
  const auto add = [&builder](const char* user, double x, double y,
                              std::vector<std::string> kws) {
    builder.AddObject(user, Point{x, y}, std::span<const std::string>(kws));
  };
  // Shopping cluster (close together).
  add("u1", 0.10, 0.10, {"shop", "jeans"});
  add("u3", 0.11, 0.105, {"shop", "market"});
  // Stadium cluster.
  add("u2", 0.50, 0.52, {"football", "match", "stadium"});
  add("u2", 0.51, 0.50, {"football", "derby"});
  // Scattered, non-matching objects.
  add("u1", 0.80, 0.20, {"tube", "ride"});
  add("u2", 0.82, 0.70, {"hurry", "tube", "time"});
  add("u3", 0.30, 0.80, {"thames", "bridge"});
  add("u3", 0.86, 0.24, {"bus", "ride"});
  return std::move(builder).Build();
}

/// True when the two result vectors contain the same pairs with scores
/// equal to `tolerance`.
inline bool SameResults(const std::vector<ScoredUserPair>& x,
                        const std::vector<ScoredUserPair>& y,
                        double tolerance = 1e-12) {
  if (x.size() != y.size()) return false;
  for (size_t i = 0; i < x.size(); ++i) {
    if (x[i].a != y[i].a || x[i].b != y[i].b) return false;
    if (std::fabs(x[i].score - y[i].score) > tolerance) return false;
  }
  return true;
}

}  // namespace testing_util
}  // namespace stps

#endif  // STPS_TESTS_TEST_UTIL_H_
