#include "textjoin/ppjoin.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "text/token_set.h"

namespace stps {
namespace {

std::vector<TokenVector> RandomRecords(Rng& rng, size_t count,
                                       size_t vocabulary, size_t max_tokens) {
  std::vector<TokenVector> records(count);
  for (auto& rec : records) {
    const size_t n = 1 + rng.NextBelow(max_tokens);
    for (size_t i = 0; i < n; ++i) {
      rec.push_back(static_cast<TokenId>(rng.NextBelow(vocabulary)));
    }
    NormalizeTokenSet(&rec);
  }
  return records;
}

std::vector<IndexPair> BruteSelf(const std::vector<TokenVector>& records,
                                 double t) {
  std::vector<IndexPair> out;
  for (uint32_t i = 0; i < records.size(); ++i) {
    for (uint32_t j = i + 1; j < records.size(); ++j) {
      if (JaccardAtLeast(records[i], records[j], t)) out.emplace_back(i, j);
    }
  }
  return out;
}

std::vector<IndexPair> BruteCross(const std::vector<TokenVector>& left,
                                  const std::vector<TokenVector>& right,
                                  double t) {
  std::vector<IndexPair> out;
  for (uint32_t i = 0; i < left.size(); ++i) {
    for (uint32_t j = 0; j < right.size(); ++j) {
      if (JaccardAtLeast(left[i], right[j], t)) out.emplace_back(i, j);
    }
  }
  return out;
}

TEST(PPJoinSelfTest, TinyHandComputedExample) {
  const std::vector<TokenVector> records = {
      {1, 2, 3}, {1, 2, 3, 4}, {7, 8}, {2, 3, 4}};
  TextJoinOptions opt;
  opt.threshold = 0.5;
  const auto result = PPJoinSelf(records, opt);
  // J(0,1)=3/4, J(0,3)=2/4, J(1,3)=3/4; J with {7,8} all 0.
  const std::vector<IndexPair> expected = {{0, 1}, {0, 3}, {1, 3}};
  EXPECT_EQ(result, expected);
}

TEST(PPJoinSelfTest, EmptyAndSingletonInputs) {
  TextJoinOptions opt;
  opt.threshold = 0.5;
  EXPECT_TRUE(PPJoinSelf({}, opt).empty());
  EXPECT_TRUE(PPJoinSelf({{1, 2}}, opt).empty());
}

TEST(PPJoinSelfTest, IgnoresEmptyRecords) {
  const std::vector<TokenVector> records = {{}, {1, 2}, {}, {1, 2}};
  TextJoinOptions opt;
  opt.threshold = 0.5;
  const auto result = PPJoinSelf(records, opt);
  EXPECT_EQ(result, (std::vector<IndexPair>{{1, 3}}));
}

TEST(PPJoinSelfTest, ThresholdOneFindsExactDuplicatesOnly) {
  const std::vector<TokenVector> records = {
      {1, 2}, {1, 2}, {1, 2, 3}, {1, 2}};
  TextJoinOptions opt;
  opt.threshold = 1.0;
  const auto result = PPJoinSelf(records, opt);
  EXPECT_EQ(result, (std::vector<IndexPair>{{0, 1}, {0, 3}, {1, 3}}));
}

struct SweepParam {
  double threshold;
  bool positional;
  bool suffix;
};

class PPJoinSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(PPJoinSweepTest, SelfJoinMatchesBruteForce) {
  const SweepParam param = GetParam();
  TextJoinOptions opt;
  opt.threshold = param.threshold;
  opt.positional_filter = param.positional;
  opt.suffix_filter = param.suffix;
  Rng rng(1000 + static_cast<uint64_t>(param.threshold * 100));
  for (int trial = 0; trial < 30; ++trial) {
    const auto records = RandomRecords(rng, 60, 15, 8);
    const auto expected = BruteSelf(records, param.threshold);
    const auto actual = PPJoinSelf(records, opt);
    ASSERT_EQ(actual, expected)
        << "t=" << param.threshold << " trial=" << trial;
  }
}

TEST_P(PPJoinSweepTest, CrossJoinMatchesBruteForce) {
  const SweepParam param = GetParam();
  TextJoinOptions opt;
  opt.threshold = param.threshold;
  opt.positional_filter = param.positional;
  opt.suffix_filter = param.suffix;
  Rng rng(2000 + static_cast<uint64_t>(param.threshold * 100));
  for (int trial = 0; trial < 30; ++trial) {
    const auto left = RandomRecords(rng, 40, 15, 8);
    const auto right = RandomRecords(rng, 50, 15, 8);
    const auto expected = BruteCross(left, right, param.threshold);
    auto actual = PPJoinCross(std::span<const TokenVector>(left),
                              std::span<const TokenVector>(right), opt);
    ASSERT_EQ(actual, expected)
        << "t=" << param.threshold << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    FilterAndThresholdSweep, PPJoinSweepTest,
    ::testing::Values(SweepParam{0.3, true, true},
                      SweepParam{0.3, true, false},
                      SweepParam{0.3, false, false},
                      SweepParam{0.5, true, true},
                      SweepParam{0.5, false, true},
                      SweepParam{0.7, true, true},
                      SweepParam{0.8, true, false},
                      SweepParam{0.9, true, true},
                      SweepParam{1.0, true, true}));

TEST(SuffixFilterTest, BoundNeverExceedsTrueHammingDistance) {
  Rng rng(31337);
  for (int trial = 0; trial < 5000; ++trial) {
    TokenVector a, b;
    const size_t na = rng.NextBelow(10);
    const size_t nb = rng.NextBelow(10);
    for (size_t i = 0; i < na; ++i) {
      a.push_back(static_cast<TokenId>(rng.NextBelow(16)));
    }
    for (size_t i = 0; i < nb; ++i) {
      b.push_back(static_cast<TokenId>(rng.NextBelow(16)));
    }
    NormalizeTokenSet(&a);
    NormalizeTokenSet(&b);
    const int overlap = static_cast<int>(OverlapSize(a, b));
    const int true_hamming =
        static_cast<int>(a.size() + b.size()) - 2 * overlap;
    for (const int hmax : {0, 1, 2, 3, 5, 100}) {
      const int bound = textjoin_internal::SuffixFilterBound(
          std::span<const TokenId>(a), std::span<const TokenId>(b), hmax, 0,
          2);
      // Soundness: whenever the true distance fits in the budget, the
      // lower bound must not exceed it (otherwise joins lose matches).
      if (true_hamming <= hmax) {
        EXPECT_LE(bound, true_hamming)
            << "hmax=" << hmax << " |a|=" << a.size() << " |b|=" << b.size();
      }
    }
  }
}

}  // namespace
}  // namespace stps
