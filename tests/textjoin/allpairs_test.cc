#include "textjoin/allpairs.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "text/token_set.h"

namespace stps {
namespace {

std::vector<TokenVector> RandomRecords(Rng& rng, size_t count) {
  std::vector<TokenVector> records(count);
  for (auto& rec : records) {
    const size_t n = 1 + rng.NextBelow(7);
    for (size_t i = 0; i < n; ++i) {
      rec.push_back(static_cast<TokenId>(rng.NextBelow(14)));
    }
    NormalizeTokenSet(&rec);
  }
  return records;
}

class AllPairsTest : public ::testing::TestWithParam<double> {};

TEST_P(AllPairsTest, AgreesWithPPJoin) {
  const double threshold = GetParam();
  Rng rng(555);
  TextJoinOptions ppjoin_opt;
  ppjoin_opt.threshold = threshold;
  for (int trial = 0; trial < 20; ++trial) {
    const auto records = RandomRecords(rng, 80);
    EXPECT_EQ(AllPairsSelf(records, threshold),
              PPJoinSelf(records, ppjoin_opt));
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, AllPairsTest,
                         ::testing::Values(0.3, 0.5, 0.7, 0.9));

TEST(AllPairsTest, HandExample) {
  const std::vector<TokenVector> records = {{1, 2}, {1, 2}, {3}};
  const auto result = AllPairsSelf(records, 0.99);
  EXPECT_EQ(result, (std::vector<IndexPair>{{0, 1}}));
}

}  // namespace
}  // namespace stps
