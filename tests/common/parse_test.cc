// Strict-parse helpers: whole-field validation, range gates, and the
// non-finite rejection that keeps "nan"/"inf" out of threshold checks
// (a NaN epsilon compares false against every range bound, so it would
// sail through server-side validation straight into STPS_CHECK aborts).

#include "common/parse.h"

#include <gtest/gtest.h>

namespace stps {
namespace {

TEST(ParseDoubleTest, AcceptsOrdinaryNumbers) {
  double value = -1.0;
  EXPECT_TRUE(ParseDouble("0", &value));
  EXPECT_EQ(value, 0.0);
  EXPECT_TRUE(ParseDouble("0.25", &value));
  EXPECT_EQ(value, 0.25);
  EXPECT_TRUE(ParseDouble("-3.5e2", &value));
  EXPECT_EQ(value, -350.0);
  EXPECT_TRUE(ParseDouble("+1.5", &value));
  EXPECT_EQ(value, 1.5);
}

TEST(ParseDoubleTest, RejectsMalformedFields) {
  double value = 42.0;
  EXPECT_FALSE(ParseDouble("", &value));
  EXPECT_FALSE(ParseDouble("abc", &value));
  EXPECT_FALSE(ParseDouble("1.5abc", &value));
  EXPECT_FALSE(ParseDouble("1e999", &value));  // overflow
  EXPECT_EQ(value, 42.0) << "*out must be untouched on failure";
}

TEST(ParseDoubleTest, RejectsNonFiniteValues) {
  double value = 42.0;
  EXPECT_FALSE(ParseDouble("nan", &value));
  EXPECT_FALSE(ParseDouble("NaN", &value));
  EXPECT_FALSE(ParseDouble("-nan", &value));
  EXPECT_FALSE(ParseDouble("nan(0x1)", &value));
  EXPECT_FALSE(ParseDouble("inf", &value));
  EXPECT_FALSE(ParseDouble("INF", &value));
  EXPECT_FALSE(ParseDouble("-inf", &value));
  EXPECT_FALSE(ParseDouble("infinity", &value));
  EXPECT_FALSE(ParseDouble("+inf", &value));
  EXPECT_EQ(value, 42.0) << "*out must be untouched on failure";
}

TEST(ParseUint64Test, RejectsSignsAndGarbage) {
  uint64_t value = 7;
  EXPECT_TRUE(ParseUint64("123", &value));
  EXPECT_EQ(value, 123u);
  EXPECT_FALSE(ParseUint64("", &value));
  EXPECT_FALSE(ParseUint64("-1", &value));
  EXPECT_FALSE(ParseUint64("+1", &value));
  EXPECT_FALSE(ParseUint64("12x", &value));
  EXPECT_FALSE(ParseUint64("99999999999999999999999", &value));  // overflow
}

TEST(ParseIntTest, EnforcesInclusiveRange) {
  int value = -1;
  EXPECT_TRUE(ParseInt("4", 1, 8, &value));
  EXPECT_EQ(value, 4);
  EXPECT_TRUE(ParseInt("1", 1, 8, &value));
  EXPECT_TRUE(ParseInt("8", 1, 8, &value));
  EXPECT_FALSE(ParseInt("0", 1, 8, &value));
  EXPECT_FALSE(ParseInt("9", 1, 8, &value));
  EXPECT_FALSE(ParseInt("4.5", 1, 8, &value));
}

}  // namespace
}  // namespace stps
