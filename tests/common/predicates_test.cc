// Unit tests for the canonical threshold-predicate layer. The exactness
// claims are tested two ways: hand-picked boundary cases whose answers are
// known from the binary representation of the threshold (e.g. the double
// 0.1 is strictly greater than the rational 1/10), and extremality
// properties (each derived bound is the extremal integer satisfying its
// RatioAtLeast condition, verified by checking both sides of the boundary).

#include "common/predicates.h"

#include <cfloat>
#include <cmath>
#include <cstdint>
#include <limits>

#include <gtest/gtest.h>

namespace stps {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double UlpUp(double x) { return std::nextafter(x, kInf); }
double UlpDown(double x) { return std::nextafter(x, -kInf); }

TEST(RatioAtLeastTest, ExactlyRepresentableThresholds) {
  // 0.5, 0.25, 1.0, 1.5 are exact binary rationals: the predicate must
  // behave like the textbook comparison.
  EXPECT_TRUE(RatioAtLeast(1, 2, 0.5));
  EXPECT_FALSE(RatioAtLeast(1, 3, 0.5));
  EXPECT_TRUE(RatioAtLeast(2, 3, 0.5));
  EXPECT_TRUE(RatioAtLeast(1, 4, 0.25));
  EXPECT_FALSE(RatioAtLeast(1, 5, 0.25));
  EXPECT_TRUE(RatioAtLeast(7, 7, 1.0));
  EXPECT_FALSE(RatioAtLeast(6, 7, 1.0));
  EXPECT_TRUE(RatioAtLeast(3, 2, 1.5));
  EXPECT_FALSE(RatioAtLeast(3, 2, UlpUp(1.5)));
}

TEST(RatioAtLeastTest, NonRepresentableThresholdsResolveByTrueValue) {
  // The double literal 0.1 rounds UP in binary: it is strictly greater
  // than the rational 1/10, so 1/10 does not reach it...
  EXPECT_FALSE(RatioAtLeast(1, 10, 0.1));
  // ...but one ULP below the literal is less than 1/10.
  EXPECT_TRUE(RatioAtLeast(1, 10, UlpDown(0.1)));
  // The double literal 0.3 rounds DOWN: 3/10 is strictly greater.
  EXPECT_TRUE(RatioAtLeast(3, 10, 0.3));
  EXPECT_FALSE(RatioAtLeast(3, 10, UlpUp(0.3)));
  // 2/3 rounds down as well.
  EXPECT_TRUE(RatioAtLeast(2, 3, 2.0 / 3.0));
  EXPECT_FALSE(RatioAtLeast(2, 3, UlpUp(2.0 / 3.0)));
  // Scaled copies of the same rational decide identically.
  for (uint64_t m = 1; m <= 1000; m += 37) {
    EXPECT_FALSE(RatioAtLeast(m, 10 * m, 0.1)) << m;
    EXPECT_TRUE(RatioAtLeast(m, 10 * m, UlpDown(0.1))) << m;
    EXPECT_TRUE(RatioAtLeast(3 * m, 10 * m, 0.3)) << m;
  }
}

TEST(RatioAtLeastTest, Conventions) {
  // threshold <= 0: vacuously true (also for num == 0).
  EXPECT_TRUE(RatioAtLeast(0, 5, 0.0));
  EXPECT_TRUE(RatioAtLeast(0, 0, -1.0));
  // num == 0 with positive threshold: false.
  EXPECT_FALSE(RatioAtLeast(0, 5, 1e-300));
  // den == 0 with positive threshold: matches the kernels' empty-set
  // semantics — any positive numerator passes, zero does not.
  EXPECT_TRUE(RatioAtLeast(1, 0, 0.5));
  EXPECT_FALSE(RatioAtLeast(0, 0, 0.5));
  // Non-finite thresholds reject everything.
  EXPECT_FALSE(RatioAtLeast(5, 1, kInf));
  EXPECT_FALSE(RatioAtLeast(5, 1, std::numeric_limits<double>::quiet_NaN()));
}

TEST(RatioAtLeastTest, ExtremeMagnitudes) {
  const uint64_t big = std::numeric_limits<uint64_t>::max();
  EXPECT_TRUE(RatioAtLeast(big, big, 1.0));
  EXPECT_FALSE(RatioAtLeast(big - 1, big, 1.0));
  EXPECT_TRUE(RatioAtLeast(big, big - 1, 1.0));
  // Thresholds with large positive exponents (the e >= 0 branch and its
  // 64-bit overflow guard).
  EXPECT_TRUE(RatioAtLeast(1ULL << 62, 1, std::ldexp(1.0, 62)));
  EXPECT_FALSE(RatioAtLeast(1ULL << 62, 1, std::ldexp(1.0, 63)));
  EXPECT_FALSE(RatioAtLeast(big, 1, std::ldexp(1.0, 64)));
  EXPECT_FALSE(RatioAtLeast(big, 1, DBL_MAX));
  // Subnormal thresholds (the deep-negative-exponent shift guard): any
  // positive count ratio clears the smallest positive double.
  EXPECT_TRUE(RatioAtLeast(1, big, DBL_TRUE_MIN));
  EXPECT_TRUE(RatioAtLeast(1, big, DBL_MIN));
  EXPECT_FALSE(RatioAtLeast(0, big, DBL_TRUE_MIN));
}

// Exhaustive small-domain check against an error-free long double oracle:
// for num, den <= 48 and thresholds near every rational in that range, a
// distinct rational differs from a 53-bit threshold by at least
// 1/(48 * 2^52) ~ 2^-58, far above the 2^-64 rounding of the 64-bit
// mantissa division, so the oracle comparison is exact.
TEST(RatioAtLeastTest, AgreesWithLongDoubleOracleOnSmallDomain) {
  for (uint64_t den = 1; den <= 48; ++den) {
    for (uint64_t num = 0; num <= den + 2; ++num) {
      for (uint64_t tn = 1; tn <= 48; ++tn) {
        for (uint64_t td = tn; td <= 48; td += 3) {
          const double base =
              static_cast<double>(tn) / static_cast<double>(td);
          for (const double t : {UlpDown(base), base, UlpUp(base)}) {
            const bool expected = static_cast<long double>(num) / den >=
                                  static_cast<long double>(t);
            ASSERT_EQ(RatioAtLeast(num, den, t), expected)
                << num << "/" << den << " vs " << t;
          }
        }
      }
    }
  }
}

TEST(MinCountForRatioTest, IsTheExtremalInteger) {
  for (uint64_t den = 1; den <= 120; ++den) {
    for (const double base : {0.1, 0.3, 1.0 / 3, 0.5, 2.0 / 3, 0.9, 1.0}) {
      for (const double t : {UlpDown(base), base, UlpUp(base)}) {
        const uint64_t c = MinCountForRatio(den, t);
        if (t > 1.0) {  // UlpUp(1.0): unattainable sentinel
          ASSERT_EQ(c, den + 1) << den << " " << t;
          continue;
        }
        ASSERT_LE(c, den) << den << " " << t;  // t <= 1 is always attainable
        ASSERT_TRUE(RatioAtLeast(c, den, t)) << den << " " << t;
        if (c > 0) {
          ASSERT_FALSE(RatioAtLeast(c - 1, den, t)) << den << " " << t;
        }
      }
    }
    // Unattainable threshold: sentinel den + 1.
    EXPECT_EQ(MinCountForRatio(den, UlpUp(1.0)), den + 1);
    EXPECT_EQ(MinCountForRatio(den, 2.0), den + 1);
  }
  EXPECT_EQ(MinCountForRatio(0, 0.5), 1u);  // unattainable: 1 > den
  EXPECT_EQ(MinCountForRatio(0, 0.0), 0u);
  EXPECT_EQ(MinCountForRatio(17, 0.0), 0u);
}

TEST(MinOverlapForJaccardTest, IsExactlyTheJaccardPredicateBoundary) {
  for (size_t sa = 0; sa <= 14; ++sa) {
    for (size_t sb = 0; sb <= 14; ++sb) {
      if (sa + sb == 0) continue;  // empties are guarded by callers
      for (const double base : {0.1, 0.25, 1.0 / 3, 0.5, 2.0 / 3, 0.8, 1.0}) {
        for (const double t : {UlpDown(base), base, UlpUp(base)}) {
          const size_t required = MinOverlapForJaccard(sa, sb, t);
          for (size_t o = 0; o <= std::min(sa, sb); ++o) {
            ASSERT_EQ(JaccardAtLeast(o, sa, sb, t), o >= required)
                << sa << " " << sb << " " << o << " " << t;
          }
        }
      }
    }
  }
}

TEST(SizeBoundsForJaccardTest, AreExtremal) {
  for (size_t sx = 1; sx <= 60; ++sx) {
    for (const double base : {0.1, 1.0 / 3, 0.5, 0.75, 1.0}) {
      for (const double t : {UlpDown(base), base, UlpUp(base)}) {
        if (t > 1.0) continue;
        const size_t lo = MinSizeForJaccard(sx, t);
        const size_t hi = MaxSizeForJaccard(sx, t);
        // The classical size filter: |y| outside [lo, hi] cannot match.
        // lo is the smallest n with n >= t * sx, hi the largest with
        // sx >= t * n.
        ASSERT_TRUE(RatioAtLeast(lo, sx, t)) << sx << " " << t;
        if (lo > 0) ASSERT_FALSE(RatioAtLeast(lo - 1, sx, t));
        ASSERT_TRUE(RatioAtLeast(sx, hi, t)) << sx << " " << t;
        ASSERT_FALSE(RatioAtLeast(sx, hi + 1, t)) << sx << " " << t;
      }
    }
  }
  EXPECT_EQ(MaxSizeForJaccard(10, 0.0), std::numeric_limits<size_t>::max());
  // Tiny threshold saturates instead of overflowing.
  EXPECT_EQ(MaxSizeForJaccard(1000, DBL_TRUE_MIN),
            std::numeric_limits<size_t>::max());
}

TEST(SigmaUnmatchedBudgetTest, ExactlyComplementsSigmaAtLeast) {
  // The Lemma 1 early stop `unmatched > budget` must trigger exactly when
  // even matching every remaining object cannot reach eps_u.
  for (size_t total = 0; total <= 90; ++total) {
    for (const double base : {0.2, 1.0 / 3, 0.5, 0.7, 1.0}) {
      for (const double eps_u : {UlpDown(base), base, UlpUp(base)}) {
        const int64_t budget = SigmaUnmatchedBudget(total, eps_u);
        for (size_t unmatched = 0; unmatched <= total; ++unmatched) {
          const size_t best_possible_matched = total - unmatched;
          ASSERT_EQ(static_cast<int64_t>(unmatched) > budget,
                    !SigmaAtLeast(best_possible_matched, total, eps_u))
              << total << " " << unmatched << " " << eps_u;
        }
      }
    }
  }
}

TEST(DirectedRoundingTest, FilterBoxesNeverRoundInward) {
  // AddRoundUp / SubRoundDown bound the exact sum/difference: rounding to
  // nearest is off by at most half a ULP, the extra nextafter step covers
  // a full ULP.
  EXPECT_GT(AddRoundUp(1.0, DBL_EPSILON / 4), 1.0);       // 1.0 + eps/4 == 1.0
  EXPECT_LT(SubRoundDown(1.0, DBL_EPSILON / 4), 1.0);
  EXPECT_GE(AddRoundUp(0.1, 0.2), 0.3);
  EXPECT_LE(SubRoundDown(0.3, 0.2), 0.1);
  // Property over a sweep: the directed result bounds the long double sum.
  for (int i = 0; i < 200; ++i) {
    const double a = std::ldexp(1.7 + i * 0.013, i % 11 - 5);
    const double b = std::ldexp(0.3 + i * 0.029, (i * 7) % 9 - 4);
    EXPECT_GE(static_cast<long double>(AddRoundUp(a, b)),
              static_cast<long double>(a) + b);
    EXPECT_LE(static_cast<long double>(SubRoundDown(a, b)),
              static_cast<long double>(a) - b);
  }
}

TEST(WithinEpsLocTest, SquaredFormBoundary) {
  // 3-4-5 triangle: distance exactly 5.
  EXPECT_TRUE(WithinEpsLoc(25.0, 5.0));
  EXPECT_FALSE(WithinEpsLoc(UlpUp(25.0), 5.0));
  EXPECT_TRUE(WithinEpsLoc(0.0, 0.0));
  EXPECT_FALSE(WithinEpsLoc(DBL_TRUE_MIN, 0.0));
}

TEST(ScoreHelpersTest, MatchedCountRoundTripsAndThresholdReadmits) {
  for (size_t total = 1; total <= 400; total += 7) {
    for (size_t m = 0; m <= total; m += 3) {
      const double score = static_cast<double>(m) / total;
      EXPECT_EQ(MatchedCountFromScore(score, total), m);
      // A reported score fed back as a threshold must re-admit its pair.
      EXPECT_TRUE(SigmaAtLeast(m, total, ThresholdFromScore(score)))
          << m << "/" << total;
    }
  }
  EXPECT_EQ(ThresholdFromScore(0.0), 0.0);
  EXPECT_EQ(ThresholdFromScore(-1.0), 0.0);
}

}  // namespace
}  // namespace stps
