#include "common/status.h"

#include <gtest/gtest.h>

namespace stps {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::IOError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "IOError: disk on fire");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  const std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

}  // namespace
}  // namespace stps
