#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

namespace stps {
namespace {

TEST(ThreadPoolTest, ConstructionAndTeardown) {
  for (const int n : {1, 2, 3, 8}) {
    ThreadPool pool(n);
    EXPECT_EQ(pool.num_threads(), n);
  }  // destructor must join cleanly with no work submitted
}

TEST(ThreadPoolTest, TeardownWithUnwaitedWork) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
    // No explicit WaitIdle: the destructor must drain before joining.
  }
  EXPECT_EQ(ran.load(), 100);
}

class ThreadPoolParamTest : public ::testing::TestWithParam<int> {};

TEST_P(ThreadPoolParamTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(GetParam());
  for (const size_t grain : {size_t{0}, size_t{1}, size_t{7}, size_t{100}}) {
    const size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    pool.ParallelForEach(0, n, grain, [&hits](size_t i, int worker) {
      ASSERT_GE(worker, 0);
      hits[i].fetch_add(1);
    });
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "i=" << i << " grain=" << grain;
    }
  }
}

TEST_P(ThreadPoolParamTest, ChunksPartitionTheRange) {
  ThreadPool pool(GetParam());
  std::mutex mu;
  std::vector<std::pair<size_t, size_t>> chunks;
  pool.ParallelFor(10, 273, 16,
                   [&](size_t begin, size_t end, int worker) {
                     ASSERT_LT(begin, end);
                     ASSERT_GE(worker, 0);
                     ASSERT_LT(worker, pool.num_threads());
                     std::lock_guard<std::mutex> lock(mu);
                     chunks.push_back({begin, end});
                   });
  std::sort(chunks.begin(), chunks.end());
  ASSERT_FALSE(chunks.empty());
  EXPECT_EQ(chunks.front().first, 10u);
  EXPECT_EQ(chunks.back().second, 273u);
  for (size_t i = 1; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i].first, chunks[i - 1].second);  // gap- and overlap-free
  }
}

TEST_P(ThreadPoolParamTest, EmptyRangeIsANoOp) {
  ThreadPool pool(GetParam());
  bool ran = false;
  pool.ParallelFor(5, 5, 1, [&ran](size_t, size_t, int) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST_P(ThreadPoolParamTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(GetParam());
  const size_t outer = 8, inner = 50;
  std::vector<std::atomic<int>> hits(outer * inner);
  for (auto& h : hits) h.store(0);
  pool.ParallelForEach(0, outer, 1, [&](size_t i, int) {
    pool.ParallelForEach(0, inner, 4, [&, i](size_t j, int) {
      hits[i * inner + j].fetch_add(1);
    });
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "slot " << i;
  }
}

TEST_P(ThreadPoolParamTest, ExceptionPropagatesAndPoolStaysUsable) {
  ThreadPool pool(GetParam());
  EXPECT_THROW(
      pool.ParallelForEach(0, 100, 1,
                           [](size_t i, int) {
                             if (i == 37) throw std::runtime_error("boom");
                           }),
      std::runtime_error);
  // The pool must still work after a failed batch.
  std::atomic<int> sum{0};
  pool.ParallelForEach(0, 10, 1,
                       [&sum](size_t i, int) { sum.fetch_add(int(i)); });
  EXPECT_EQ(sum.load(), 45);
}

TEST_P(ThreadPoolParamTest, SubmitAndWaitIdle) {
  ThreadPool pool(GetParam());
  std::atomic<int> ran{0};
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(ran.load(), 64);
}

TEST_P(ThreadPoolParamTest, WorkerSlotsAreDistinctPerConcurrentTask) {
  ThreadPool pool(GetParam());
  // Worker ids must always be a valid per-pool slot; record who ran what.
  std::mutex mu;
  std::set<int> seen;
  pool.ParallelForEach(0, 200, 1, [&](size_t, int worker) {
    ASSERT_GE(worker, 0);
    ASSERT_LT(worker, pool.num_threads());
    std::lock_guard<std::mutex> lock(mu);
    seen.insert(worker);
  });
  EXPECT_GE(seen.size(), 1u);
  EXPECT_LE(seen.size(), static_cast<size_t>(pool.num_threads()));
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ThreadPoolParamTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(ThreadPoolTest, SingleThreadRunsInAscendingOrderOnCaller) {
  // num_threads == 1 is the serial reference: same thread, ascending.
  ThreadPool pool(1);
  std::vector<size_t> visited;
  pool.ParallelForEach(0, 50, 7, [&visited](size_t i, int worker) {
    EXPECT_EQ(worker, 0);
    visited.push_back(i);
  });
  ASSERT_EQ(visited.size(), 50u);
  for (size_t i = 0; i < visited.size(); ++i) {
    EXPECT_EQ(visited[i], i);
  }
}

TEST(ThreadPoolTest, NestedSubmitFromWorker) {
  ThreadPool pool(4);
  std::atomic<int> outer_ran{0}, inner_ran{0};
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&pool, &outer_ran, &inner_ran] {
      outer_ran.fetch_add(1);
      pool.Submit([&inner_ran] { inner_ran.fetch_add(1); });
    });
  }
  pool.WaitIdle();
  EXPECT_EQ(outer_ran.load(), 16);
  EXPECT_EQ(inner_ran.load(), 16);
}

TEST(ThreadPoolTest, DetachedExceptionSurfacesInWaitIdle) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::logic_error("detached"); });
  EXPECT_THROW(pool.WaitIdle(), std::logic_error);
  // A second WaitIdle must not rethrow the already-reported error.
  pool.WaitIdle();
}

}  // namespace
}  // namespace stps
