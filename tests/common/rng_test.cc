#include "common/rng.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

namespace stps {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.Uniform(-2.5, 3.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 3.5);
  }
}

TEST(RngTest, NextBelowCoversRangeWithoutBias) {
  Rng rng(11);
  std::vector<int> histogram(7, 0);
  const int kDraws = 70000;
  for (int i = 0; i < kDraws; ++i) {
    ++histogram[rng.NextBelow(7)];
  }
  for (const int count : histogram) {
    // Each bucket should hold ~10000; allow 10% deviation.
    EXPECT_NEAR(count, kDraws / 7, kDraws / 70);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0.0, sum_sq = 0.0;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const double v = rng.Gaussian(5.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / kDraws;
  const double var = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(ZipfSamplerTest, ProbabilitiesDecreaseAndSumToOne) {
  const ZipfSampler sampler(100, 1.0);
  double total = 0.0;
  double prev = 1.0;
  for (size_t r = 0; r < sampler.size(); ++r) {
    const double p = sampler.Probability(r);
    EXPECT_LE(p, prev + 1e-12);
    prev = p;
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfSamplerTest, EmpiricalRankFrequenciesFollowLaw) {
  const ZipfSampler sampler(50, 1.0);
  Rng rng(23);
  std::vector<int> counts(50, 0);
  const int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[sampler.Sample(rng)];
  }
  // Rank 0 should be drawn about twice as often as rank 1.
  EXPECT_NEAR(static_cast<double>(counts[0]) / counts[1], 2.0, 0.2);
  // Frequencies broadly decrease with rank.
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[40]);
}

TEST(ZipfSamplerTest, ThetaZeroIsUniform) {
  const ZipfSampler sampler(10, 0.0);
  for (size_t r = 0; r < 10; ++r) {
    EXPECT_NEAR(sampler.Probability(r), 0.1, 1e-12);
  }
}

TEST(LogNormalParamsTest, RealisesRequestedMoments) {
  const LogNormalParams p = LogNormalParams::FromMoments(100.0, 400.0);
  Rng rng(29);
  double sum = 0.0, sum_sq = 0.0;
  const int kDraws = 2000000;
  for (int i = 0; i < kDraws; ++i) {
    const double v = rng.LogNormal(p.mu, p.sigma);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / kDraws;
  // Heavy-tailed: generous tolerance on the mean, sanity on the spread.
  EXPECT_NEAR(mean, 100.0, 10.0);
  const double var = sum_sq / kDraws - mean * mean;
  EXPECT_GT(var, 100.0 * 100.0);  // stddev well above the mean
}

TEST(LogNormalParamsTest, ZeroStddevDegeneratesToConstant) {
  const LogNormalParams p = LogNormalParams::FromMoments(42.0, 0.0);
  EXPECT_NEAR(p.sigma, 0.0, 1e-12);
  Rng rng(31);
  EXPECT_NEAR(rng.LogNormal(p.mu, p.sigma), 42.0, 1e-9);
}

}  // namespace
}  // namespace stps
