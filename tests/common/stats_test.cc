#include "common/stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace stps {
namespace {

TEST(RunningStatsTest, EmptyIsAllZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.Mean(), 0.0);
  EXPECT_EQ(s.StdDev(), 0.0);
  EXPECT_EQ(s.Min(), 0.0);
  EXPECT_EQ(s.Max(), 0.0);
  EXPECT_EQ(s.Sum(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.Mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.StdDev(), 0.0);
  EXPECT_DOUBLE_EQ(s.Min(), 3.5);
  EXPECT_DOUBLE_EQ(s.Max(), 3.5);
}

TEST(RunningStatsTest, KnownSequence) {
  RunningStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.StdDev(), 2.0);  // classic population-stddev example
  EXPECT_DOUBLE_EQ(s.Min(), 2.0);
  EXPECT_DOUBLE_EQ(s.Max(), 9.0);
  EXPECT_DOUBLE_EQ(s.Sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesSequentialFeed) {
  RunningStats all, left, right;
  for (int i = 0; i < 100; ++i) {
    const double v = std::sin(i) * 10 + i * 0.1;
    all.Add(v);
    (i < 37 ? left : right).Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.Mean(), all.Mean(), 1e-9);
  EXPECT_NEAR(left.StdDev(), all.StdDev(), 1e-9);
  EXPECT_NEAR(left.Min(), all.Min(), 1e-12);
  EXPECT_NEAR(left.Max(), all.Max(), 1e-12);
}

TEST(RunningStatsTest, MergeWithEmptySides) {
  RunningStats a, empty;
  a.Add(1.0);
  a.Add(2.0);
  RunningStats b = a;
  b.Merge(empty);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.Mean(), 1.5);
  RunningStats c;
  c.Merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.Mean(), 1.5);
}

}  // namespace
}  // namespace stps
